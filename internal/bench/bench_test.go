package bench

import (
	"strconv"
	"strings"
	"testing"

	"github.com/explore-by-example/aide/internal/eval"
)

// tinyConfig keeps experiment smoke tests fast.
func tinyConfig() Config {
	return Config{Rows: 10_000, Sessions: 1, MaxIter: 120, Seed: 0}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"ablate-beta", "ablate-minleaf",
		"fig10a", "fig10b", "fig10c", "fig10d", "fig10e", "fig10f",
		"fig8a", "fig8b", "fig8c", "fig8d", "fig8e", "fig8f",
		"fig9a", "fig9b", "fig9c", "table1",
	}
	got := All()
	if len(got) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(got), len(want))
	}
	for i, e := range got {
		if e.ID != want[i] {
			t.Errorf("experiment %d = %q, want %q", i, e.ID, want[i])
		}
		if e.Title == "" || e.Run == nil {
			t.Errorf("experiment %q missing title or runner", e.ID)
		}
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run("nope", tinyConfig()); err == nil {
		t.Error("unknown id should error")
	}
}

func TestLookup(t *testing.T) {
	if _, ok := Lookup("fig8a"); !ok {
		t.Error("fig8a should exist")
	}
	if _, ok := Lookup("bogus"); ok {
		t.Error("bogus should not exist")
	}
}

func TestReportString(t *testing.T) {
	rep := &Report{
		ID:     "x",
		Title:  "demo",
		Header: []string{"a", "long-column"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"a note"},
	}
	s := rep.String()
	for _, want := range []string{"== x: demo ==", "long-column", "333", "note: a note"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	c.defaults()
	if c.Rows != 100_000 || c.Sessions != 10 || c.MaxIter != 250 {
		t.Errorf("defaults = %+v", c)
	}
	if DefaultConfig().Rows != 100_000 {
		t.Error("DefaultConfig wrong")
	}
	if QuickConfig().Rows != 20_000 {
		t.Error("QuickConfig wrong")
	}
}

func TestFmtHelpers(t *testing.T) {
	if got := fmtSamples(0, 0, 10); got != "-" {
		t.Errorf("fmtSamples unconverged = %q", got)
	}
	if got := fmtSamples(123.4, 10, 10); got != "123" {
		t.Errorf("fmtSamples = %q", got)
	}
	if got := fmtSamples(100, 7, 10); got != "100 (7/10)" {
		t.Errorf("fmtSamples partial = %q", got)
	}
	if got := fmtF(0.5); got != "0.500" {
		t.Errorf("fmtF = %q", got)
	}
	if mean(nil) != 0 {
		t.Error("mean(nil) != 0")
	}
	if mean([]float64{1, 3}) != 2 {
		t.Error("mean wrong")
	}
}

func TestFAtSamples(t *testing.T) {
	tr := eval.Trace{Samples: []int{20, 40, 60}, F: []float64{0.2, 0.8, 0.5}}
	if got := fAtSamples(tr, 50); got != 0.8 {
		t.Errorf("fAtSamples(50) = %v", got)
	}
	if got := fAtSamples(tr, 10); got != 0 {
		t.Errorf("fAtSamples(10) = %v", got)
	}
	if got := fAtSamples(tr, 100); got != 0.8 {
		t.Errorf("fAtSamples(100) = %v", got)
	}
}

func TestIterToAccuracy(t *testing.T) {
	tr := eval.Trace{F: []float64{0.1, 0.6, 0.9}}
	if i, ok := iterToAccuracy(tr, 0.6); !ok || i != 1 {
		t.Errorf("iterToAccuracy = %d,%v", i, ok)
	}
	if _, ok := iterToAccuracy(tr, 0.95); ok {
		t.Error("unreached accuracy should be not-ok")
	}
}

// Smoke tests: every experiment must run end to end at tiny scale and
// produce a plausible report. (Shape assertions live in the individual
// checks below where variance allows.)
func TestAllExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke tests are slow")
	}
	cfg := tinyConfig()
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			rep, err := Run(e.ID, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Rows) == 0 {
				t.Fatal("no rows")
			}
			for _, row := range rep.Rows {
				if len(row) != len(rep.Header) {
					t.Errorf("row %v does not match header %v", row, rep.Header)
				}
			}
			t.Logf("\n%s", rep.String())
		})
	}
}

// Shape check: AIDE needs far fewer samples than the baselines (fig8d's
// headline) — run at a modest scale with enough sessions to be stable.
func TestShapeAIDEBeatsBaselines(t *testing.T) {
	if testing.Short() {
		t.Skip("slow shape test")
	}
	cfg := Config{Rows: 30_000, Sessions: 3, MaxIter: 150, Seed: 10}
	v, err := sdssView(cfg.Rows, cfg.Seed, denseAttrs...)
	if err != nil {
		t.Fatal(err)
	}
	results := map[string]float64{}
	for _, kind := range []string{"aide", "random"} {
		avg, conv, err := avgSamplesTo(cfg, 0.7, func(seed int64) (eval.Trace, error) {
			target, err := eval.GenerateTarget(v, eval.TargetSpec{NumAreas: 1, Size: eval.Large}, seed)
			if err != nil {
				return eval.Trace{}, err
			}
			e, err := makeExplorer(kind, v, target, seed)
			if err != nil {
				return eval.Trace{}, err
			}
			maxIter := cfg.MaxIter
			if kind != "aide" {
				maxIter *= 4
			}
			return eval.RunTrace(e, v, target, 0.7, maxIter)
		})
		if err != nil {
			t.Fatal(err)
		}
		if conv == 0 {
			t.Fatalf("%s never converged", kind)
		}
		results[kind] = avg
	}
	if results["aide"] >= results["random"] {
		t.Errorf("AIDE used %.0f samples, Random %.0f: expected AIDE to win",
			results["aide"], results["random"])
	}
}

// Shape check: accuracy at a fixed budget does not degrade with database
// size (fig9a's conclusion).
func TestShapeDatabaseSizeIndependence(t *testing.T) {
	if testing.Short() {
		t.Skip("slow shape test")
	}
	cfg := Config{Rows: 20_000, Sessions: 2, MaxIter: 150, Seed: 5}
	var fs []float64
	for _, rows := range []int{20_000, 100_000} {
		v, err := sdssView(rows, cfg.Seed, denseAttrs...)
		if err != nil {
			t.Fatal(err)
		}
		var vals []float64
		for i := 0; i < cfg.Sessions; i++ {
			tr, err := traceForSize(cfg, v, eval.Large, 1, cfg.Seed+int64(i)+1, 1.0, nil)
			if err != nil {
				t.Fatal(err)
			}
			vals = append(vals, fAtSamples(tr, 500))
		}
		fs = append(fs, mean(vals))
	}
	if fs[1] < fs[0]-0.25 {
		t.Errorf("accuracy dropped sharply with database size: %v", fs)
	}
}

func TestMakeExplorerKinds(t *testing.T) {
	v, err := sdssView(5_000, 1, "rowc", "colc")
	if err != nil {
		t.Fatal(err)
	}
	target, err := eval.GenerateTarget(v, eval.TargetSpec{NumAreas: 1, Size: eval.Large}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []string{"aide", "random", "grid"} {
		if _, err := makeExplorer(kind, v, target, 1); err != nil {
			t.Errorf("makeExplorer(%q) = %v", kind, err)
		}
	}
	if _, err := makeExplorer("bogus", v, target, 1); err == nil {
		t.Error("bogus kind should error")
	}
}

func TestTable1UsersWellFormed(t *testing.T) {
	users := table1Users()
	if len(users) != 7 {
		t.Fatalf("users = %d, want 7 (as in the paper)", len(users))
	}
	twoAttr := 0
	for i, u := range users {
		if len(u.attrs) < 2 || u.reviewSeconds < 3 || u.reviewSeconds > 26 {
			t.Errorf("user %d malformed: %+v", i, u)
		}
		if len(u.attrs) == 2 {
			twoAttr++
		}
	}
	if twoAttr != 5 {
		t.Errorf("%d two-attribute users, want 5 (Section 6.5)", twoAttr)
	}
}

func TestDBSizesScaling(t *testing.T) {
	cfg := Config{Rows: 1000}
	sizes := dbSizes(cfg)
	if sizes[0].rows != 1000 || sizes[1].rows != 5000 || sizes[2].rows != 10000 {
		t.Errorf("dbSizes = %+v", sizes)
	}
	for _, s := range sizes {
		if _, err := strconv.Atoi(strings.TrimSuffix(s.label, "GB")); err != nil {
			t.Errorf("label %q not parseable", s.label)
		}
	}
}

func TestReportWriteCSV(t *testing.T) {
	rep := &Report{
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "x,y"}, {"2", "z"}},
	}
	var buf strings.Builder
	if err := rep.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := "a,b\n1,\"x,y\"\n2,z\n"
	if got != want {
		t.Errorf("WriteCSV = %q, want %q", got, want)
	}
}
