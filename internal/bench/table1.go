package bench

import (
	"fmt"
	"math/rand"

	"github.com/explore-by-example/aide/internal/dataset"
	"github.com/explore-by-example/aide/internal/engine"
	"github.com/explore-by-example/aide/internal/eval"
	"github.com/explore-by-example/aide/internal/explore"
)

func init() {
	register("table1", "user study: manual exploration vs AIDE on AuctionMark", runTable1)
}

// table1User describes one simulated study participant. The paper's seven
// users explored an AuctionMark ITEM table looking for "auction items
// that are good deals"; five used two attributes, the others three, four
// and five (Section 6.5). Per-tuple reviewing time varied 3-26 seconds.
type table1User struct {
	attrs         []string
	reviewSeconds float64
}

func table1Users() []table1User {
	all := []string{
		"initial_price", "current_price", "num_bids", "num_comments",
		"days_in_auction", "price_diff", "days_to_close",
	}
	return []table1User{
		{attrs: all[:2], reviewSeconds: 11},
		{attrs: []string{"current_price", "num_bids"}, reviewSeconds: 6},
		{attrs: []string{"price_diff", "days_to_close"}, reviewSeconds: 3},
		{attrs: []string{"initial_price", "price_diff"}, reviewSeconds: 5},
		{attrs: []string{"num_bids", "price_diff"}, reviewSeconds: 5.5},
		{attrs: all[:3], reviewSeconds: 6},
		{attrs: all[:5], reviewSeconds: 26},
	}
}

// runTable1 regenerates Table 1. For each simulated user: a hidden target
// query over their attributes, a scripted manual-exploration session
// (returned/reviewed objects), and an AIDE session against the same
// target. Reviewing savings and total exploration times follow the
// paper's accounting: manual time ~= reviewed x per-tuple review time;
// AIDE time = AIDE-reviewed x per-tuple review time + system wait time.
func runTable1(cfg Config) (*Report, error) {
	rep := &Report{Header: []string{
		"User", "Manual: returned", "Manual: reviewed", "AIDE: reviewed",
		"Reviewing savings", "Manual time (min)", "AIDE time (min)",
	}}
	// The paper's exploration dataset was 1.77 GB derived from ITEM; use
	// the configured scale.
	tab := dataset.GenerateAuction(cfg.Rows, cfg.Seed)

	var savings, timeSavings []float64
	for u, user := range table1Users() {
		v, err := engine.NewView(tab, user.attrs)
		if err != nil {
			return nil, err
		}
		seed := cfg.Seed + int64(u) + 1
		// The user study's interests sat on dense regions of a highly
		// skewed space; constrain at most two attributes (the common case
		// in the study) on multi-attribute users via ActiveDims.
		active := len(user.attrs)
		if active > 2 {
			active = 2
		}
		target, err := table1Target(v, active, seed)
		if err != nil {
			return nil, err
		}
		manual := eval.SimulateManual(v, target, eval.ManualParams{}, seed)

		sim := eval.NewSimulatedUser(target)
		opts := explore.DefaultOptions()
		opts.Seed = seed
		// The study's exploration space is highly skewed with interests on
		// dense regions (Section 6.5) — exactly the case the skew-aware
		// clustering discovery handles (Section 3.1).
		opts.Discovery = explore.DiscoveryClustering
		s, err := explore.NewSession(v, sim, opts)
		if err != nil {
			return nil, err
		}
		trace, err := eval.RunTrace(s, v, target, manual.FinalF, cfg.MaxIter)
		if err != nil {
			return nil, err
		}

		saving := 0.0
		if manual.ReviewedObjects > 0 {
			saving = (1 - float64(sim.Reviewed)/float64(manual.ReviewedObjects)) * 100
		}
		savings = append(savings, saving)

		manualMin := float64(manual.ReviewedObjects) * user.reviewSeconds / 60
		aideMin := float64(sim.Reviewed)*user.reviewSeconds/60 + s.Stats().ExecTime.Minutes()
		if manualMin > 0 {
			timeSavings = append(timeSavings, (1-aideMin/manualMin)*100)
		}

		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d", u+1),
			fmt.Sprintf("%d", manual.ReturnedObjects),
			fmt.Sprintf("%d", manual.ReviewedObjects),
			fmt.Sprintf("%d", sim.Reviewed),
			fmt.Sprintf("%.1f%%", saving),
			fmt.Sprintf("%.1f", manualMin),
			fmt.Sprintf("%.1f", aideMin),
		})
		cfg.logf("table1 user %d done (AIDE maxF %.3f vs manual F %.3f)\n", u+1, trace.MaxF(), manual.FinalF)
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("average reviewing savings %.0f%% (paper: 66%%), average total-time savings %.0f%% (paper: 47%%)",
			mean(savings), mean(timeSavings)),
	)
	return rep, nil
}

// table1Target places a single dense relevant area constrained on the
// first `active` attributes, retrying placement seeds until one fits (the
// skewed auction space can make a given seed unplaceable).
func table1Target(v *engine.View, active int, seed int64) (eval.Target, error) {
	rng := rand.New(rand.NewSource(seed))
	var lastErr error
	for try := 0; try < 10; try++ {
		target, err := eval.GenerateTarget(v, eval.TargetSpec{
			NumAreas:   1,
			Size:       eval.Large,
			ActiveDims: active,
			DenseOnly:  true,
		}, rng.Int63())
		if err == nil {
			return target, nil
		}
		lastErr = err
	}
	// Fall back to any non-empty placement.
	target, err := eval.GenerateTarget(v, eval.TargetSpec{
		NumAreas:   1,
		Size:       eval.Large,
		ActiveDims: active,
	}, seed)
	if err != nil {
		return eval.Target{}, fmt.Errorf("bench: placing table1 target: %w (dense placement: %v)", err, lastErr)
	}
	return target, nil
}
