package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"github.com/explore-by-example/aide/internal/obs"
)

// Flight-journal replay (aidebench -trace): turns a session's recorded
// wide events — the <id>.events.jsonl the service writes next to each
// WAL, or a saved /v1/sessions/{id}/events stream — into a per-phase
// latency breakdown and a convergence trajectory, offline, without the
// server or the dataset.

// TracePhaseStats aggregates one steering phase's latency across the
// journal's iterations.
type TracePhaseStats struct {
	// Phase is the phase name as recorded (discovery, misclassified,
	// boundary, train).
	Phase string `json:"phase"`
	// Iterations counts iterations in which the phase ran (spent time
	// or produced samples).
	Iterations int `json:"iterations"`
	// TotalMS is the phase's summed execution time; MeanMS/P50MS/P95MS
	// summarize its per-iteration distribution (nearest-rank quantiles).
	TotalMS float64 `json:"total_ms"`
	MeanMS  float64 `json:"mean_ms"`
	P50MS   float64 `json:"p50_ms"`
	P95MS   float64 `json:"p95_ms"`
	// Samples and Queries are the phase's summed labeling and
	// extraction-query effort.
	Samples int `json:"samples"`
	Queries int `json:"queries"`
}

// TraceIteration is one journal event reduced to the convergence
// signals: how the labeled set, the classifier and the predicted query
// evolved.
type TraceIteration struct {
	Iteration     int     `json:"iteration"`
	DurationMS    float64 `json:"duration_ms"`
	NewSamples    int     `json:"new_samples"`
	NewRelevant   int     `json:"new_relevant"`
	TotalLabeled  int     `json:"total_labeled"`
	TreeNodes     int     `json:"tree_nodes"`
	RelevantAreas int     `json:"relevant_areas"`
	// PredicateChanged reports whether the rendered predicate differs
	// from the previous iteration's — a false tail means the steering
	// loop has converged.
	PredicateChanged bool `json:"predicate_changed"`
}

// TraceReport is the replay of one session's flight journal.
type TraceReport struct {
	// Session is the recording session's id (from the first event).
	Session string `json:"session"`
	// Events is how many iterations the journal holds; a ring-served
	// journal may have dropped older ones (first iteration > 0).
	Events         int `json:"events"`
	FirstIteration int `json:"first_iteration"`
	LastIteration  int `json:"last_iteration"`

	// TotalMS sums iteration durations; TotalLabeled and Conflicts are
	// the final cumulative labeling effort and summed label conflicts.
	TotalMS      float64 `json:"total_ms"`
	TotalLabeled int     `json:"total_labeled"`
	Conflicts    int     `json:"conflicts"`

	// CacheHits/CacheMisses/CacheHitRate sum the per-iteration
	// predicate-cache deltas.
	CacheHits    int64   `json:"cache_hits"`
	CacheMisses  int64   `json:"cache_misses"`
	CacheHitRate float64 `json:"cache_hit_rate"`

	// Degradations counts budget fallbacks by reason across the journal.
	Degradations map[string]int `json:"degradations,omitempty"`

	// Phases is the per-phase latency/effort breakdown, largest total
	// time first.
	Phases []TracePhaseStats `json:"phases"`

	// Convergence is the iteration-by-iteration trajectory, oldest
	// first. StableTail is the length of the final run of iterations
	// whose predicate did not change.
	Convergence []TraceIteration `json:"convergence"`
	StableTail  int              `json:"stable_tail"`

	// FinalPredicate is the last recorded predicted-query predicate.
	FinalPredicate string `json:"final_predicate,omitempty"`
}

// ReplayTrace builds a TraceReport from journal events (as parsed by
// obs.ReadJournal), which must all belong to one session.
func ReplayTrace(events []obs.FlightEvent) (*TraceReport, error) {
	if len(events) == 0 {
		return nil, fmt.Errorf("bench: empty flight journal")
	}
	rep := &TraceReport{
		Session:        events[0].Session,
		Events:         len(events),
		FirstIteration: events[0].Iteration,
		LastIteration:  events[len(events)-1].Iteration,
	}
	phaseMS := map[string][]float64{}
	phaseSamples := map[string]int{}
	phaseQueries := map[string]int{}
	prevPredicate := ""
	for i, ev := range events {
		if ev.Session != rep.Session {
			return nil, fmt.Errorf("bench: journal mixes sessions %q and %q", rep.Session, ev.Session)
		}
		rep.TotalMS += ev.DurationMS
		rep.TotalLabeled = ev.TotalLabeled
		rep.Conflicts += ev.Conflicts
		rep.CacheHits += ev.CacheHits
		rep.CacheMisses += ev.CacheMisses
		for _, d := range ev.Degradations {
			if rep.Degradations == nil {
				rep.Degradations = map[string]int{}
			}
			rep.Degradations[d]++
		}
		for ph, ms := range ev.PhaseMS {
			phaseMS[ph] = append(phaseMS[ph], ms)
		}
		for ph, n := range ev.PhaseSamples {
			phaseSamples[ph] += n
		}
		for ph, n := range ev.PhaseQueries {
			phaseQueries[ph] += n
		}
		changed := i == 0 || ev.Predicate != prevPredicate
		prevPredicate = ev.Predicate
		rep.Convergence = append(rep.Convergence, TraceIteration{
			Iteration:        ev.Iteration,
			DurationMS:       ev.DurationMS,
			NewSamples:       ev.NewSamples,
			NewRelevant:      ev.NewRelevant,
			TotalLabeled:     ev.TotalLabeled,
			TreeNodes:        ev.TreeNodes,
			RelevantAreas:    ev.RelevantAreas,
			PredicateChanged: changed,
		})
		if ev.Predicate != "" {
			rep.FinalPredicate = ev.Predicate
		}
	}
	if total := rep.CacheHits + rep.CacheMisses; total > 0 {
		rep.CacheHitRate = float64(rep.CacheHits) / float64(total)
	}
	for i := len(rep.Convergence) - 1; i >= 0 && !rep.Convergence[i].PredicateChanged; i-- {
		rep.StableTail++
	}

	names := make([]string, 0, len(phaseMS))
	for ph := range phaseMS {
		names = append(names, ph)
	}
	for ph := range phaseSamples {
		if _, ok := phaseMS[ph]; !ok {
			names = append(names, ph)
		}
	}
	sort.Strings(names)
	for _, ph := range names {
		ms := phaseMS[ph]
		st := TracePhaseStats{
			Phase:   ph,
			Samples: phaseSamples[ph],
			Queries: phaseQueries[ph],
		}
		if len(ms) > 0 {
			sorted := append([]float64(nil), ms...)
			sort.Float64s(sorted)
			for _, v := range ms {
				st.TotalMS += v
			}
			st.Iterations = len(ms)
			st.MeanMS = st.TotalMS / float64(len(ms))
			st.P50MS = nearestRankF(sorted, 0.50)
			st.P95MS = nearestRankF(sorted, 0.95)
		} else {
			st.Iterations = 0
		}
		rep.Phases = append(rep.Phases, st)
	}
	sort.SliceStable(rep.Phases, func(i, j int) bool {
		return rep.Phases[i].TotalMS > rep.Phases[j].TotalMS
	})
	return rep, nil
}

// nearestRankF returns the q-th nearest-rank quantile of sorted values.
func nearestRankF(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// WriteJSON renders the report as indented JSON.
func (r *TraceReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// String renders a human-readable replay summary.
func (r *TraceReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace: session=%s iterations=%d..%d (%d events) total=%.1fms labeled=%d\n",
		r.Session, r.FirstIteration, r.LastIteration, r.Events, r.TotalMS, r.TotalLabeled)
	if r.CacheHits+r.CacheMisses > 0 {
		fmt.Fprintf(&b, "cache: %d hits / %d misses (%.1f%% hit rate)\n",
			r.CacheHits, r.CacheMisses, 100*r.CacheHitRate)
	}
	if r.Conflicts > 0 {
		fmt.Fprintf(&b, "conflicts: %d\n", r.Conflicts)
	}
	if len(r.Degradations) > 0 {
		names := make([]string, 0, len(r.Degradations))
		for d := range r.Degradations {
			names = append(names, d)
		}
		sort.Strings(names)
		for _, d := range names {
			fmt.Fprintf(&b, "degraded: %s x%d\n", d, r.Degradations[d])
		}
	}
	fmt.Fprintf(&b, "%-14s %6s %12s %10s %10s %10s %8s %8s\n",
		"phase", "iters", "total ms", "mean ms", "p50 ms", "p95 ms", "samples", "queries")
	for _, p := range r.Phases {
		fmt.Fprintf(&b, "%-14s %6d %12.1f %10.2f %10.2f %10.2f %8d %8d\n",
			p.Phase, p.Iterations, p.TotalMS, p.MeanMS, p.P50MS, p.P95MS, p.Samples, p.Queries)
	}
	if n := len(r.Convergence); n > 0 {
		last := r.Convergence[n-1]
		fmt.Fprintf(&b, "convergence: tree=%d nodes, %d relevant areas, predicate stable for last %d iterations\n",
			last.TreeNodes, last.RelevantAreas, r.StableTail)
	}
	if r.FinalPredicate != "" {
		fmt.Fprintf(&b, "final predicate: %s\n", r.FinalPredicate)
	}
	return b.String()
}
