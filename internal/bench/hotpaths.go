package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"reflect"
	"runtime"
	"sort"
	"time"

	"github.com/explore-by-example/aide/internal/cart"
	"github.com/explore-by-example/aide/internal/dataset"
	"github.com/explore-by-example/aide/internal/engine"
	"github.com/explore-by-example/aide/internal/explore"
	"github.com/explore-by-example/aide/internal/geom"
	"github.com/explore-by-example/aide/internal/kmeans"
	"github.com/explore-by-example/aide/internal/obs"
	"github.com/explore-by-example/aide/internal/par"
)

// benchKernelSeconds records each kernel's timed reps at the configured
// worker count (the production path), labeled by kernel, so
// `aidebench -metrics` carries the same latency distributions
// BENCH_hotpaths.json summarizes as p50/p95/p99.
var benchKernelSeconds = obs.GetHistogramVec("bench_kernel_seconds", "kernel")

// HotpathConfig scales the worker-pool benchmark (aidebench -json).
type HotpathConfig struct {
	// Rows is the table size behind the scan and index-build kernels
	// (default 150000).
	Rows int
	// TrainPoints is the CART training-set size (default 6000).
	TrainPoints int
	// ClusterPoints is the k-means point count (default 40000).
	ClusterPoints int
	// Workers is the parallel side's worker count (0: automatic —
	// AIDE_WORKERS or GOMAXPROCS). The sequential side is always 1.
	Workers int
	// Seed drives dataset generation.
	Seed int64
	// MinTime is the minimum measurement window per timing pass
	// (default 200ms).
	MinTime time.Duration
}

// DefaultHotpathConfig returns the scale used for BENCH_hotpaths.json.
func DefaultHotpathConfig() HotpathConfig {
	return HotpathConfig{
		Rows:          150_000,
		TrainPoints:   6_000,
		ClusterPoints: 40_000,
		Seed:          1,
		MinTime:       200 * time.Millisecond,
	}
}

// HotpathResult is one kernel's sequential-vs-parallel measurement.
type HotpathResult struct {
	// Name identifies the kernel: cart_train, grid_scan, index_build,
	// kmeans_cluster.
	Name string `json:"name"`
	// NsPerOpWorkers1 is ns/op on the forced-sequential path.
	NsPerOpWorkers1 int64 `json:"ns_per_op_workers_1"`
	// NsPerOpWorkersN is ns/op at the configured worker count.
	NsPerOpWorkersN int64 `json:"ns_per_op_workers_n"`
	// Speedup is NsPerOpWorkers1 / NsPerOpWorkersN.
	Speedup float64 `json:"speedup"`
	// BytesPerOpWorkers1/N and AllocsPerOpWorkers1/N track heap traffic
	// per op (testing.B AllocedBytesPerOp-style), so allocation
	// regressions on the hot paths are as visible as time regressions.
	BytesPerOpWorkers1  int64 `json:"bytes_per_op_workers_1"`
	BytesPerOpWorkersN  int64 `json:"bytes_per_op_workers_n"`
	AllocsPerOpWorkers1 int64 `json:"allocs_per_op_workers_1"`
	AllocsPerOpWorkersN int64 `json:"allocs_per_op_workers_n"`
	// P50/P95/P99NsWorkers1/N are nearest-rank latency quantiles over
	// the individual timed reps of each pass. ns_per_op is the mean; the
	// spread between p50 and p99 exposes jitter (GC pauses, scheduling)
	// that a mean alone hides.
	P50NsWorkers1 int64 `json:"p50_ns_workers_1"`
	P95NsWorkers1 int64 `json:"p95_ns_workers_1"`
	P99NsWorkers1 int64 `json:"p99_ns_workers_1"`
	P50NsWorkersN int64 `json:"p50_ns_workers_n"`
	P95NsWorkersN int64 `json:"p95_ns_workers_n"`
	P99NsWorkersN int64 `json:"p99_ns_workers_n"`
	// Identical reports that the parallel output matched the sequential
	// output exactly — the determinism gate the speedup rides on.
	Identical bool `json:"identical"`
}

// HotpathReport is the machine-readable perf trajectory written to
// BENCH_hotpaths.json so future changes can be compared against it.
type HotpathReport struct {
	GOMAXPROCS    int `json:"gomaxprocs"`
	Workers       int `json:"workers"`
	Rows          int `json:"rows"`
	TrainPoints   int `json:"train_points"`
	ClusterPoints int `json:"cluster_points"`
	// Warning is set when the run configuration makes a headline number
	// misleading — in particular when GOMAXPROCS < Workers, where the
	// "parallel" side time-slices its workers on fewer cores and every
	// speedup figure is a single-core artifact. Speedups are never
	// reported without this field explaining the caveat.
	Warning string          `json:"warning,omitempty"`
	Results []HotpathResult `json:"results"`
	// ShardRoundtripsPerIteration is the measured scatter-round count per
	// steering iteration over a 4-shard session once discovery has
	// drained its frontier. The batched execution path's contract is 1.0:
	// one ExecuteBatch — one scatter, one backend round per healthy
	// shard — per iteration.
	ShardRoundtripsPerIteration float64 `json:"shard_roundtrips_per_iteration"`
}

// WriteJSON renders the report as indented JSON.
func (r *HotpathReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// String renders a human-readable summary table.
func (r *HotpathReport) String() string {
	s := fmt.Sprintf("hotpaths: GOMAXPROCS=%d workers=%d rows=%d\n", r.GOMAXPROCS, r.Workers, r.Rows)
	if r.Warning != "" {
		s += "WARNING: " + r.Warning + "\n"
	}
	s += fmt.Sprintf("%-16s %14s %14s %14s %14s %8s %12s %12s %10s\n",
		"kernel", "w=1 ns/op", "w=N ns/op", "w=N p50", "w=N p99", "speedup", "w=N B/op", "w=N allocs", "identical")
	for _, b := range r.Results {
		s += fmt.Sprintf("%-16s %14d %14d %14d %14d %7.2fx %12d %12d %10v\n",
			b.Name, b.NsPerOpWorkers1, b.NsPerOpWorkersN, b.P50NsWorkersN, b.P99NsWorkersN,
			b.Speedup, b.BytesPerOpWorkersN, b.AllocsPerOpWorkersN, b.Identical)
	}
	s += fmt.Sprintf("shard roundtrips per iteration: %.2f (batched session loop; 1.0 = one scatter per iteration)\n",
		r.ShardRoundtripsPerIteration)
	return s
}

// measurement is one timed pass's per-op cost.
type measurement struct {
	nsPerOp     int64
	bytesPerOp  int64
	allocsPerOp int64
	// p50Ns/p95Ns/p99Ns are nearest-rank quantiles over the pass's
	// individual rep durations.
	p50Ns, p95Ns, p99Ns int64
}

// measure times op: one warmup call, then repeated timing passes until
// minTime has elapsed, returning per-op time (mean and p50/p95/p99 over
// the reps) and heap traffic over the measured passes (ReadMemStats
// deltas, the same counters -benchmem reports). Each rep is also
// observed into hist when non-nil, so the full distribution lands in
// the metrics registry.
func measure(minTime time.Duration, hist *obs.Histogram, op func()) measurement {
	op() // warmup
	var elapsed time.Duration
	var samples []time.Duration
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for elapsed < minTime {
		start := time.Now()
		op()
		d := time.Since(start)
		elapsed += d
		samples = append(samples, d)
		if hist != nil {
			hist.Observe(d.Seconds())
		}
	}
	runtime.ReadMemStats(&after)
	n := int64(len(samples))
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	return measurement{
		nsPerOp:     elapsed.Nanoseconds() / n,
		bytesPerOp:  int64(after.TotalAlloc-before.TotalAlloc) / n,
		allocsPerOp: int64(after.Mallocs-before.Mallocs) / n,
		p50Ns:       nearestRankNs(samples, 0.50),
		p95Ns:       nearestRankNs(samples, 0.95),
		p99Ns:       nearestRankNs(samples, 0.99),
	}
}

// nearestRankNs returns the q-th nearest-rank quantile of the sorted
// durations in nanoseconds.
func nearestRankNs(sorted []time.Duration, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx].Nanoseconds()
}

// RunHotpaths benchmarks the four parallelized hot paths — CART training,
// grid scanning, view index construction and k-means clustering — at
// workers=1 versus the configured worker count, verifying on every kernel
// that both sides produce identical output.
func RunHotpaths(cfg HotpathConfig) (*HotpathReport, error) {
	def := DefaultHotpathConfig()
	if cfg.Rows <= 0 {
		cfg.Rows = def.Rows
	}
	if cfg.TrainPoints <= 0 {
		cfg.TrainPoints = def.TrainPoints
	}
	if cfg.ClusterPoints <= 0 {
		cfg.ClusterPoints = def.ClusterPoints
	}
	if cfg.MinTime <= 0 {
		cfg.MinTime = def.MinTime
	}
	workers := par.Resolve(cfg.Workers)
	rep := &HotpathReport{
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Workers:       workers,
		Rows:          cfg.Rows,
		TrainPoints:   cfg.TrainPoints,
		ClusterPoints: cfg.ClusterPoints,
	}
	if rep.GOMAXPROCS < rep.Workers {
		rep.Warning = fmt.Sprintf(
			"GOMAXPROCS=%d < workers=%d: the parallel side is time-sliced on %d core(s), so speedup figures do not measure multicore scaling",
			rep.GOMAXPROCS, rep.Workers, rep.GOMAXPROCS)
	}

	// cart_train: induction over a 4-d labeled set, the per-iteration
	// classifier retraining cost of the steering loop.
	points, labels := hotpathTrainingSet(cfg.TrainPoints, 4, cfg.Seed)
	trainAt := func(w int) *cart.Tree {
		p := cart.DefaultParams()
		p.Workers = w
		t, err := cart.Train(points, labels, p)
		if err != nil {
			panic(err)
		}
		return t
	}
	seqTree, parTree := trainAt(1), trainAt(workers)
	rep.Results = append(rep.Results, hotpathResult("cart_train",
		measure(cfg.MinTime, nil, func() { trainAt(1) }),
		measure(cfg.MinTime, benchKernelSeconds.With("cart_train"), func() { trainAt(workers) }),
		seqTree.String(nil) == parTree.String(nil)))

	// grid_scan: Count + RowsIn over a large region of a 2-d view — the
	// shape of evaluation queries and density probes.
	tab := dataset.GenerateSDSS(cfg.Rows, cfg.Seed)
	seqView, err := engine.NewViewWorkers(tab, []string{"rowc", "colc"}, 1)
	if err != nil {
		return nil, err
	}
	parView := seqView.WithWorkers(workers)
	rect := geom.R(10, 90, 10, 90)
	scanIdentical := seqView.Count(rect) == parView.Count(rect) &&
		reflect.DeepEqual(seqView.RowsIn(rect), parView.RowsIn(rect))
	rep.Results = append(rep.Results, hotpathResult("grid_scan",
		measure(cfg.MinTime, nil, func() { seqView.Count(rect); seqView.RowsIn(rect) }),
		measure(cfg.MinTime, benchKernelSeconds.With("grid_scan"), func() { parView.Count(rect); parView.RowsIn(rect) }),
		scanIdentical))

	// grid_scan_sharded: the same Count + RowsIn scattered over 4
	// supervised shards, against the unsharded sequential baseline — the
	// fan-out/gather overhead the robustness machinery costs on a healthy
	// run, gated on bit-identical results.
	shardView := seqView.WithShards(engine.ShardOptions{Shards: 4})
	shardIdentical := seqView.Count(rect) == shardView.Count(rect) &&
		reflect.DeepEqual(seqView.RowsIn(rect), shardView.RowsIn(rect))
	rep.Results = append(rep.Results, hotpathResult("grid_scan_sharded",
		measure(cfg.MinTime, nil, func() { seqView.Count(rect); seqView.RowsIn(rect) }),
		measure(cfg.MinTime, benchKernelSeconds.With("grid_scan_sharded"), func() { shardView.Count(rect); shardView.RowsIn(rect) }),
		shardIdentical))

	// grid_scan_batched: 16 small probes marching across the clustered
	// sky view's sparse dec tail, cycling Count / RowsIn / SampleRect —
	// the shape of one session iteration's query set (discovery density
	// probes plus exploitation samples), where per-query fixed cost
	// dominates the shared row work. The w=1 column is the sequential
	// per-rect loop, the wN column is ONE ExecuteBatch (sample draws
	// included on both sides, same rng stream). Both run on the same
	// single-threaded view, so the speedup is pure batching: shared
	// planning and cell walks, pooled scratch, one observation per pass
	// instead of sixteen. Gated on bit-identical counts, rows, and
	// sample draws.
	skyView, err := engine.NewViewWorkers(tab, []string{"ra", "dec"}, 1)
	if err != nil {
		return nil, err
	}
	batchRects := make([]geom.Rect, 16)
	batchQueries := make([]engine.BatchQuery, len(batchRects))
	for i := range batchRects {
		lo, dlo := 8+float64(i)*5.5, 82+float64(i)*0.5
		batchRects[i] = geom.R(lo, lo+2, dlo, dlo+2)
		switch i % 3 {
		case 0:
			batchQueries[i] = engine.BatchQuery{Kind: engine.BatchCount, Rect: batchRects[i]}
		case 1:
			batchQueries[i] = engine.BatchQuery{Kind: engine.BatchRows, Rect: batchRects[i]}
		default:
			batchQueries[i] = engine.BatchQuery{Kind: engine.BatchSample, Rect: batchRects[i], N: 2}
		}
	}
	runSequential := func(rng *rand.Rand) {
		for i, r := range batchRects {
			switch i % 3 {
			case 0:
				skyView.Count(r)
			case 1:
				skyView.RowsIn(r)
			default:
				skyView.SampleRect(r, 2, rng)
			}
		}
	}
	runBatched := func(rng *rand.Rand) {
		br := skyView.ExecuteBatch(batchQueries)
		for i := range batchQueries {
			if batchQueries[i].Kind == engine.BatchSample {
				br.Sample(i, rng)
			}
		}
	}
	sameRows := func(a, b []int) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	batchIdentical := func() bool {
		rngSeq := rand.New(rand.NewSource(cfg.Seed))
		rngBat := rand.New(rand.NewSource(cfg.Seed))
		br := skyView.ExecuteBatch(batchQueries)
		for i, r := range batchRects {
			switch i % 3 {
			case 0:
				if br.Count(i) != skyView.Count(r) {
					return false
				}
			case 1:
				if !sameRows(br.Rows(i), skyView.RowsIn(r)) {
					return false
				}
			default:
				if !sameRows(br.Sample(i, rngBat), skyView.SampleRect(r, 2, rngSeq)) {
					return false
				}
			}
		}
		return true
	}()
	seqRng := rand.New(rand.NewSource(cfg.Seed))
	batRng := rand.New(rand.NewSource(cfg.Seed))
	rep.Results = append(rep.Results, hotpathResult("grid_scan_batched",
		measure(cfg.MinTime, nil, func() { runSequential(seqRng) }),
		measure(cfg.MinTime, benchKernelSeconds.With("grid_scan_batched"), func() { runBatched(batRng) }),
		batchIdentical))

	// index_build: NewView over four attributes — per-attribute
	// normalization + sorted indexes + grid-cell assignment.
	attrs := []string{"ra", "dec", "rowc", "field"}
	buildAt := func(w int) *engine.View {
		v, err := engine.NewViewWorkers(tab, attrs, w)
		if err != nil {
			panic(err)
		}
		return v
	}
	bSeq, bPar := buildAt(1), buildAt(workers)
	probe := geom.R(20, 70, 20, 70, 20, 70, 20, 70)
	rep.Results = append(rep.Results, hotpathResult("index_build",
		measure(cfg.MinTime, nil, func() { buildAt(1) }),
		measure(cfg.MinTime, benchKernelSeconds.With("index_build"), func() { buildAt(workers) }),
		bSeq.Count(probe) == bPar.Count(probe)))

	// kmeans_cluster: the assignment-dominated clustering behind
	// skew-aware discovery and misclassified exploitation.
	cpoints := hotpathClusterSet(cfg.ClusterPoints, 4, cfg.Seed)
	clusterAt := func(w int) *kmeans.Result {
		res, err := kmeans.Cluster(cpoints, kmeans.Params{K: 16, MaxIters: 20, Workers: w},
			rand.New(rand.NewSource(cfg.Seed)))
		if err != nil {
			panic(err)
		}
		return res
	}
	cSeq, cPar := clusterAt(1), clusterAt(workers)
	rep.Results = append(rep.Results, hotpathResult("kmeans_cluster",
		measure(cfg.MinTime, nil, func() { clusterAt(1) }),
		measure(cfg.MinTime, benchKernelSeconds.With("kmeans_cluster"), func() { clusterAt(workers) }),
		reflect.DeepEqual(cSeq.Assign, cPar.Assign) && cSeq.Inertia == cPar.Inertia))

	rt, err := measureShardRoundtrips(cfg)
	if err != nil {
		return nil, err
	}
	rep.ShardRoundtripsPerIteration = rt

	return rep, nil
}

// measureShardRoundtrips runs a short steering session over a 4-shard
// view and reports scatter rounds per iteration once discovery has
// drained its frontier — the round-trip economy the batched session loop
// is built for. 1.0 means each iteration's whole exploitation sample set
// traveled as one batch.
func measureShardRoundtrips(cfg HotpathConfig) (float64, error) {
	rows := cfg.Rows
	if rows > 30_000 {
		rows = 30_000 // the metric counts rounds, not rows; keep it cheap
	}
	tab := dataset.GenerateSDSS(rows, cfg.Seed)
	v, err := engine.NewViewWorkers(tab, []string{"rowc", "colc"}, 1)
	if err != nil {
		return 0, err
	}
	sv := v.WithShards(engine.ShardOptions{Shards: 4})
	target := geom.R(5, 45, 5, 45)
	opts := explore.DefaultOptions()
	// No zooming: discovery drains all 16 level-0 cells in the first
	// iteration, so every measured iteration is pure exploitation.
	opts.MaxZoomLevels = 0
	s, err := explore.NewSession(sv, explore.OracleFunc(func(view *engine.View, row int) bool {
		return target.Contains(view.NormPoint(row))
	}), opts)
	if err != nil {
		return 0, err
	}
	if _, err := s.RunIteration(); err != nil { // discovery iteration
		return 0, err
	}
	scatters := obs.GetCounter("engine.shard_scatter_rounds")
	before := scatters.Value()
	const iters = 5
	for i := 0; i < iters; i++ {
		if _, err := s.RunIteration(); err != nil {
			return 0, err
		}
	}
	return float64(scatters.Value()-before) / iters, nil
}

func hotpathResult(name string, seq, parl measurement, identical bool) HotpathResult {
	speedup := 0.0
	if parl.nsPerOp > 0 {
		speedup = float64(seq.nsPerOp) / float64(parl.nsPerOp)
	}
	return HotpathResult{
		Name:                name,
		NsPerOpWorkers1:     seq.nsPerOp,
		NsPerOpWorkersN:     parl.nsPerOp,
		Speedup:             speedup,
		BytesPerOpWorkers1:  seq.bytesPerOp,
		BytesPerOpWorkersN:  parl.bytesPerOp,
		AllocsPerOpWorkers1: seq.allocsPerOp,
		AllocsPerOpWorkersN: parl.allocsPerOp,
		P50NsWorkers1:       seq.p50Ns,
		P95NsWorkers1:       seq.p95Ns,
		P99NsWorkers1:       seq.p99Ns,
		P50NsWorkersN:       parl.p50Ns,
		P95NsWorkersN:       parl.p95Ns,
		P99NsWorkersN:       parl.p99Ns,
		Identical:           identical,
	}
}

// hotpathTrainingSet labels uniform d-dim points against two target boxes.
func hotpathTrainingSet(n, d int, seed int64) ([]geom.Point, []bool) {
	rng := rand.New(rand.NewSource(seed))
	targets := []geom.Rect{make(geom.Rect, d), make(geom.Rect, d)}
	for i := range targets[0] {
		targets[0][i] = geom.Interval{Lo: 20, Hi: 40}
		targets[1][i] = geom.Interval{Lo: 55, Hi: 80}
	}
	points := make([]geom.Point, n)
	labels := make([]bool, n)
	for i := range points {
		p := make(geom.Point, d)
		for j := range p {
			p[j] = rng.Float64() * 100
		}
		points[i] = p
		labels[i] = targets[0].Contains(p) || targets[1].Contains(p)
	}
	return points, labels
}

// hotpathClusterSet draws d-dim points from a handful of Gaussian blobs.
func hotpathClusterSet(n, d int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	centers := make([]geom.Point, 6)
	for i := range centers {
		c := make(geom.Point, d)
		for j := range c {
			c[j] = rng.Float64() * 100
		}
		centers[i] = c
	}
	points := make([]geom.Point, n)
	for i := range points {
		c := centers[rng.Intn(len(centers))]
		p := make(geom.Point, d)
		for j := range p {
			p[j] = c[j] + rng.NormFloat64()*6
		}
		points[i] = p
	}
	return points
}
