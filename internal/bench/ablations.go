package bench

import (
	"fmt"

	"github.com/explore-by-example/aide/internal/eval"
	"github.com/explore-by-example/aide/internal/explore"
)

// Ablations for this implementation's own design choices (DESIGN.md),
// beyond the paper's figures. They answer "did we need that?" for the
// two knobs where we deviated from or had to interpret the paper.

func init() {
	register("ablate-minleaf", "ablation: decision-tree MinLeaf and the misclassified phase", runAblateMinLeaf)
	register("ablate-beta", "ablation: level-0 grid granularity beta", runAblateBeta)
}

// runAblateMinLeaf demonstrates why DefaultParams uses MinLeaf=3 instead
// of a fully grown tree: with MinLeaf=1 the training error is zero, so
// the misclassified-exploitation phase never has false negatives to
// exploit and convergence slows (Section 4.1's mechanism made visible).
func runAblateMinLeaf(cfg Config) (*Report, error) {
	rep := &Report{Header: []string{"MinLeaf", "Samples to 70%", "Misclass samples", "Misclass queries"}}
	v, err := sdssView(cfg.Rows, cfg.Seed, denseAttrs...)
	if err != nil {
		return nil, err
	}
	for _, minLeaf := range []int{1, 2, 3, 5, 8} {
		total, converged := 0, 0
		var misSamples, misQueries []float64
		for i := 0; i < cfg.Sessions; i++ {
			seed := cfg.Seed + int64(i) + 1
			target, err := eval.GenerateTarget(v, eval.TargetSpec{NumAreas: 1, Size: eval.Large}, seed)
			if err != nil {
				return nil, err
			}
			opts := explore.DefaultOptions()
			opts.Seed = seed
			opts.Tree.MinLeaf = minLeaf
			run, err := runAIDE(v, v, target, opts, 0.7, cfg.MaxIter)
			if err != nil {
				return nil, err
			}
			if n, ok := run.trace.SamplesToAccuracy(0.7); ok {
				total += n
				converged++
			}
			st := run.sess.Stats()
			misSamples = append(misSamples, float64(st.PhaseSamples[explore.PhaseMisclass]))
			misQueries = append(misQueries, float64(st.PhaseQueries[explore.PhaseMisclass]))
		}
		avg := 0.0
		if converged > 0 {
			avg = float64(total) / float64(converged)
		}
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d", minLeaf),
			fmtSamples(avg, converged, cfg.Sessions),
			fmt.Sprintf("%.0f", mean(misSamples)),
			fmt.Sprintf("%.0f", mean(misQueries)),
		})
		cfg.logf("ablate-minleaf %d done\n", minLeaf)
	}
	rep.Notes = append(rep.Notes,
		"MinLeaf=1 grows a zero-training-error tree: the misclassified phase never fires (0 misclass samples) and effort shifts to slow boundary/discovery refinement",
	)
	return rep, nil
}

// runAblateBeta sweeps the level-0 grid granularity (the paper's beta,
// default 4): coarser grids spend less on the first sweep but zoom more;
// finer grids pay a bigger sweep up front.
func runAblateBeta(cfg Config) (*Report, error) {
	rep := &Report{Header: []string{"Beta0", "Level-0 cells", "Samples to 70% (large)", "Samples to 70% (medium)"}}
	v, err := sdssView(cfg.Rows, cfg.Seed, denseAttrs...)
	if err != nil {
		return nil, err
	}
	for _, beta := range []int{2, 4, 8, 16} {
		row := []string{fmt.Sprintf("%d", beta), fmt.Sprintf("%d", beta*beta)}
		for _, size := range []eval.SizeClass{eval.Large, eval.Medium} {
			avg, conv, err := avgSamplesTo(cfg, 0.7, func(seed int64) (eval.Trace, error) {
				target, err := eval.GenerateTarget(v, eval.TargetSpec{NumAreas: 1, Size: size}, seed)
				if err != nil {
					return eval.Trace{}, err
				}
				opts := explore.DefaultOptions()
				opts.Seed = seed
				opts.Beta0 = beta
				run, err := runAIDE(v, v, target, opts, 0.7, cfg.MaxIter)
				if err != nil {
					return eval.Trace{}, err
				}
				return run.trace, nil
			})
			if err != nil {
				return nil, err
			}
			row = append(row, fmtSamples(avg, conv, cfg.Sessions))
		}
		rep.Rows = append(rep.Rows, row)
		cfg.logf("ablate-beta %d done\n", beta)
	}
	rep.Notes = append(rep.Notes,
		"the default beta=4 balances sweep cost against zoom depth; very fine level-0 grids pay their full sweep before the first hit",
	)
	return rep, nil
}
