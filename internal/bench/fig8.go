package bench

import (
	"fmt"

	"github.com/explore-by-example/aide/internal/engine"
	"github.com/explore-by-example/aide/internal/eval"
	"github.com/explore-by-example/aide/internal/explore"
)

// The default exploration space of Section 6.1: a dense 2-D space over
// rowc and colc.
var denseAttrs = []string{"rowc", "colc"}

func init() {
	register("fig8a", "accuracy vs samples for increasing area size (1 area)", runFig8a)
	register("fig8b", "accuracy vs samples for increasing number of areas (large areas)", runFig8b)
	register("fig8c", "time per iteration vs accuracy for increasing area size (1 area)", runFig8c)
	register("fig8d", "AIDE vs Random vs Random-Grid, samples to >70% accuracy (1 area)", runFig8d)
	register("fig8e", "AIDE vs Random vs Random-Grid vs number of areas (large areas, >70%)", runFig8e)
	register("fig8f", "impact of exploration phases (1 large area)", runFig8f)
}

// traceForSize runs one AIDE session on a fresh 1-area target of the
// given size.
func traceForSize(cfg Config, v *engine.View, size eval.SizeClass, areas int, seed int64, stopF float64, mut func(*explore.Options)) (eval.Trace, error) {
	target, err := eval.GenerateTarget(v, eval.TargetSpec{NumAreas: areas, Size: size}, seed)
	if err != nil {
		return eval.Trace{}, err
	}
	opts := explore.DefaultOptions()
	opts.Seed = seed
	if mut != nil {
		mut(&opts)
	}
	run, err := runAIDE(v, v, target, opts, stopF, cfg.MaxIter)
	if err != nil {
		return eval.Trace{}, err
	}
	return run.trace, nil
}

// runFig8a regenerates Figure 8(a): samples needed per accuracy level for
// large, medium and small single-area targets.
func runFig8a(cfg Config) (*Report, error) {
	rep := &Report{Header: []string{"F-measure", "AIDE-Large", "AIDE-Medium", "AIDE-Small"}}
	v, err := sdssView(cfg.Rows, cfg.Seed, denseAttrs...)
	if err != nil {
		return nil, err
	}
	sizes := []eval.SizeClass{eval.Large, eval.Medium, eval.Small}
	// One full trace per (size, seed); harvest every accuracy level from it.
	traces := make(map[eval.SizeClass][]eval.Trace)
	for _, size := range sizes {
		maxIter := cfg.MaxIter
		if size == eval.Small {
			maxIter *= 2 // small areas legitimately need deeper search
		}
		for i := 0; i < cfg.Sessions; i++ {
			tr, err := traceForSize(cfg, v, size, 1, cfg.Seed+int64(i)+1, 1.0, nil)
			if err != nil {
				return nil, err
			}
			traces[size] = append(traces[size], tr)
			cfg.logf("fig8a %s session %d: maxF=%.3f samples=%d\n", size, i+1, tr.MaxF(), lastSample(tr))
		}
		_ = maxIter
	}
	for _, f := range accuracyLevels {
		row := []string{fmt.Sprintf("%.0f%%", f*100)}
		for _, size := range sizes {
			avg, conv := harvest(traces[size], f)
			row = append(row, fmtSamples(avg, conv, cfg.Sessions))
		}
		rep.Rows = append(rep.Rows, row)
	}
	rep.Notes = append(rep.Notes, "paper shape: larger areas reach each accuracy with fewer samples")
	return rep, nil
}

// runFig8b regenerates Figure 8(b): samples per accuracy level for 1, 3,
// 5, 7 large relevant areas.
func runFig8b(cfg Config) (*Report, error) {
	rep := &Report{Header: []string{"F-measure", "1-Area", "3-Areas", "5-Areas", "7-Areas"}}
	v, err := sdssView(cfg.Rows, cfg.Seed, denseAttrs...)
	if err != nil {
		return nil, err
	}
	areaCounts := []int{1, 3, 5, 7}
	traces := make(map[int][]eval.Trace)
	for _, k := range areaCounts {
		for i := 0; i < cfg.Sessions; i++ {
			tr, err := traceForSize(cfg, v, eval.Large, k, cfg.Seed+int64(i)+1, 1.0, nil)
			if err != nil {
				return nil, err
			}
			traces[k] = append(traces[k], tr)
			cfg.logf("fig8b areas=%d session %d: maxF=%.3f\n", k, i+1, tr.MaxF())
		}
	}
	for _, f := range accuracyLevels {
		row := []string{fmt.Sprintf("%.0f%%", f*100)}
		for _, k := range areaCounts {
			avg, conv := harvest(traces[k], f)
			row = append(row, fmtSamples(avg, conv, cfg.Sessions))
		}
		rep.Rows = append(rep.Rows, row)
	}
	rep.Notes = append(rep.Notes, "paper shape: more areas require more samples at every accuracy level")
	return rep, nil
}

// runFig8c regenerates Figure 8(c): average per-iteration system
// execution time (user wait time) needed to reach each accuracy level.
func runFig8c(cfg Config) (*Report, error) {
	rep := &Report{Header: []string{"F-measure", "AIDE-Large (s)", "AIDE-Medium (s)", "AIDE-Small (s)"}}
	v, err := sdssView(cfg.Rows, cfg.Seed, denseAttrs...)
	if err != nil {
		return nil, err
	}
	sizes := []eval.SizeClass{eval.Large, eval.Medium, eval.Small}
	traces := make(map[eval.SizeClass][]eval.Trace)
	for _, size := range sizes {
		for i := 0; i < cfg.Sessions; i++ {
			tr, err := traceForSize(cfg, v, size, 1, cfg.Seed+int64(i)+1, 1.0, nil)
			if err != nil {
				return nil, err
			}
			traces[size] = append(traces[size], tr)
		}
	}
	for _, f := range accuracyLevels {
		row := []string{fmt.Sprintf("%.0f%%", f*100)}
		for _, size := range sizes {
			var times []float64
			for _, tr := range traces[size] {
				if idx, ok := iterToAccuracy(tr, f); ok {
					times = append(times, mean(tr.IterDuration[:idx+1]))
				}
			}
			if len(times) == 0 {
				row = append(row, "-")
			} else {
				row = append(row, fmt.Sprintf("%.4f", mean(times)))
			}
		}
		rep.Rows = append(rep.Rows, row)
	}
	rep.Notes = append(rep.Notes,
		"per-iteration wait time stays interactive (sub-second at this scale) and grows with accuracy",
	)
	return rep, nil
}

// runFig8d regenerates Figure 8(d): AIDE vs the random baselines, samples
// to reach >=70% accuracy on single areas of each size.
func runFig8d(cfg Config) (*Report, error) {
	rep := &Report{Header: []string{"Area size", "AIDE", "Random", "Random-Grid"}}
	v, err := sdssView(cfg.Rows, cfg.Seed, denseAttrs...)
	if err != nil {
		return nil, err
	}
	// Random baselines need far more samples; allow them more iterations.
	baseIter := cfg.MaxIter * 3
	for _, size := range []eval.SizeClass{eval.Large, eval.Medium, eval.Small} {
		row := []string{size.String()}
		for _, kind := range []string{"aide", "random", "grid"} {
			avg, conv, err := avgSamplesTo(cfg, 0.7, func(seed int64) (eval.Trace, error) {
				target, err := eval.GenerateTarget(v, eval.TargetSpec{NumAreas: 1, Size: size}, seed)
				if err != nil {
					return eval.Trace{}, err
				}
				e, err := makeExplorer(kind, v, target, seed)
				if err != nil {
					return eval.Trace{}, err
				}
				maxIter := cfg.MaxIter
				if kind != "aide" {
					maxIter = baseIter
				}
				if size == eval.Small {
					maxIter *= 2
				}
				return eval.RunTrace(e, v, target, 0.7, maxIter)
			})
			if err != nil {
				return nil, err
			}
			row = append(row, fmtSamples(avg, conv, cfg.Sessions))
			cfg.logf("fig8d %s %s done\n", size, kind)
		}
		rep.Rows = append(rep.Rows, row)
	}
	rep.Notes = append(rep.Notes, "paper shape: AIDE needs a small fraction of the baselines' samples; baselines fail on small areas")
	return rep, nil
}

// runFig8e regenerates Figure 8(e): the same comparison across 1-7 large
// areas.
func runFig8e(cfg Config) (*Report, error) {
	rep := &Report{Header: []string{"Areas", "AIDE", "Random", "Random-Grid"}}
	v, err := sdssView(cfg.Rows, cfg.Seed, denseAttrs...)
	if err != nil {
		return nil, err
	}
	for _, k := range []int{1, 3, 5, 7} {
		row := []string{fmt.Sprintf("%d", k)}
		for _, kind := range []string{"aide", "random", "grid"} {
			avg, conv, err := avgSamplesTo(cfg, 0.7, func(seed int64) (eval.Trace, error) {
				target, err := eval.GenerateTarget(v, eval.TargetSpec{NumAreas: k, Size: eval.Large}, seed)
				if err != nil {
					return eval.Trace{}, err
				}
				e, err := makeExplorer(kind, v, target, seed)
				if err != nil {
					return eval.Trace{}, err
				}
				maxIter := cfg.MaxIter
				if kind != "aide" {
					maxIter = cfg.MaxIter * 3
				}
				return eval.RunTrace(e, v, target, 0.7, maxIter)
			})
			if err != nil {
				return nil, err
			}
			row = append(row, fmtSamples(avg, conv, cfg.Sessions))
			cfg.logf("fig8e areas=%d %s done\n", k, kind)
		}
		rep.Rows = append(rep.Rows, row)
	}
	rep.Notes = append(rep.Notes, "paper shape: AIDE stays under ~500 samples while baselines exceed 1000")
	return rep, nil
}

// runFig8f regenerates Figure 8(f): the phase ablation. Random-Grid is
// AIDE with only the object-discovery phase; +Misclassified adds the
// misclassified exploitation; full AIDE adds boundary exploitation.
func runFig8f(cfg Config) (*Report, error) {
	rep := &Report{Header: []string{"F-measure", "Random-Grid", "Random-Grid+Misclassified", "AIDE"}}
	v, err := sdssView(cfg.Rows, cfg.Seed, denseAttrs...)
	if err != nil {
		return nil, err
	}
	variants := []struct {
		name string
		mut  func(*explore.Options)
	}{
		{"grid-only", func(o *explore.Options) { o.DisableMisclass = true; o.DisableBoundary = true }},
		{"grid+misclass", func(o *explore.Options) { o.DisableBoundary = true }},
		{"full", nil},
	}
	traces := make(map[string][]eval.Trace)
	for _, variant := range variants {
		for i := 0; i < cfg.Sessions; i++ {
			tr, err := traceForSize(cfg, v, eval.Large, 1, cfg.Seed+int64(i)+1, 1.0, variant.mut)
			if err != nil {
				return nil, err
			}
			traces[variant.name] = append(traces[variant.name], tr)
			cfg.logf("fig8f %s session %d maxF=%.3f\n", variant.name, i+1, tr.MaxF())
		}
	}
	for _, f := range accuracyLevels {
		row := []string{fmt.Sprintf("%.0f%%", f*100)}
		for _, variant := range variants {
			avg, conv := harvest(traces[variant.name], f)
			row = append(row, fmtSamples(avg, conv, cfg.Sessions))
		}
		rep.Rows = append(rep.Rows, row)
	}
	rep.Notes = append(rep.Notes, "paper shape: each added phase reduces the samples needed at every accuracy level")
	return rep, nil
}

// makeExplorer builds AIDE or a baseline against the target.
func makeExplorer(kind string, v *engine.View, target eval.Target, seed int64) (explore.Explorer, error) {
	user := eval.NewSimulatedUser(target)
	switch kind {
	case "aide":
		opts := explore.DefaultOptions()
		opts.Seed = seed
		return explore.NewSession(v, user, opts)
	case "random":
		return explore.NewRandom(v, user, 20, seed)
	case "grid":
		return explore.NewRandomGrid(v, user, 20, 4, seed)
	default:
		return nil, fmt.Errorf("bench: unknown explorer kind %q", kind)
	}
}

// harvest averages samples-to-accuracy over traces.
func harvest(traces []eval.Trace, f float64) (avg float64, converged int) {
	total := 0
	for _, tr := range traces {
		if n, ok := tr.SamplesToAccuracy(f); ok {
			total += n
			converged++
		}
	}
	if converged == 0 {
		return 0, 0
	}
	return float64(total) / float64(converged), converged
}

// iterToAccuracy returns the iteration index at which the trace first
// reached f.
func iterToAccuracy(tr eval.Trace, f float64) (int, bool) {
	for i, v := range tr.F {
		if v >= f {
			return i, true
		}
	}
	return 0, false
}

func lastSample(tr eval.Trace) int {
	if len(tr.Samples) == 0 {
		return 0
	}
	return tr.Samples[len(tr.Samples)-1]
}
