// Package bench regenerates every table and figure of the paper's
// evaluation (Section 6). Each experiment has an id matching the paper
// artifact (fig8a .. fig10f, table1); Run executes one and returns a
// Report whose rows mirror the series the paper plots.
//
// Absolute numbers differ from the paper — the substrate here is an
// in-memory engine over synthetic SDSS-like data rather than MySQL over
// the real 10-100 GB SDSS — but each experiment's *shape* (orderings,
// rough factors, crossovers) reproduces the published result;
// EXPERIMENTS.md records both side by side.
package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"github.com/explore-by-example/aide/internal/dataset"
	"github.com/explore-by-example/aide/internal/engine"
	"github.com/explore-by-example/aide/internal/eval"
	"github.com/explore-by-example/aide/internal/explore"
)

// Config scales an experiment run.
type Config struct {
	// Rows is the default dataset size (the "10 GB" stand-in).
	Rows int
	// Sessions is how many exploration sessions are averaged per data
	// point (the paper averages ten).
	Sessions int
	// MaxIter bounds each session.
	MaxIter int
	// Seed offsets all randomness; sessions use Seed+1..Seed+Sessions.
	Seed int64
	// Verbose streams per-session progress to Out.
	Verbose bool
	// Out receives progress output (may be nil).
	Out io.Writer
}

// DefaultConfig returns full-scale settings: 100k rows standing in for
// the paper's 10 GB / 3M-row dataset, ten sessions per point.
func DefaultConfig() Config {
	return Config{Rows: 100_000, Sessions: 10, MaxIter: 250, Seed: 0}
}

// QuickConfig returns reduced settings for smoke tests and testing.B.
func QuickConfig() Config {
	return Config{Rows: 20_000, Sessions: 2, MaxIter: 150, Seed: 0}
}

func (c *Config) defaults() {
	if c.Rows <= 0 {
		c.Rows = 100_000
	}
	if c.Sessions <= 0 {
		c.Sessions = 10
	}
	if c.MaxIter <= 0 {
		c.MaxIter = 250
	}
}

func (c *Config) logf(format string, args ...any) {
	if c.Verbose && c.Out != nil {
		fmt.Fprintf(c.Out, format, args...)
	}
}

// Report is one experiment's regenerated table.
type Report struct {
	// ID is the experiment id (e.g. "fig8a").
	ID string
	// Title describes the paper artifact.
	Title string
	// Header names the columns.
	Header []string
	// Rows are the data rows, already formatted.
	Rows [][]string
	// Notes carry caveats (e.g. sessions that never converged).
	Notes []string
	// Elapsed is the wall time of the experiment run.
	Elapsed time.Duration
}

// String renders the report as an aligned text table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(r.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	fmt.Fprintf(&b, "(elapsed %s)\n", r.Elapsed.Round(time.Millisecond))
	return b.String()
}

// Experiment is a runnable paper artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func(Config) (*Report, error)
}

// registry holds every experiment keyed by id.
var registry = map[string]Experiment{}

func register(id, title string, run func(Config) (*Report, error)) {
	registry[id] = Experiment{ID: id, Title: title, Run: run}
}

// Lookup returns the experiment with the given id.
func Lookup(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// All returns every experiment sorted by id.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Run executes the experiment with the given id.
func Run(id string, cfg Config) (*Report, error) {
	e, ok := Lookup(id)
	if !ok {
		ids := make([]string, 0, len(registry))
		for _, x := range All() {
			ids = append(ids, x.ID)
		}
		return nil, fmt.Errorf("bench: unknown experiment %q (have %s)", id, strings.Join(ids, ", "))
	}
	cfg.defaults()
	start := time.Now()
	rep, err := e.Run(cfg)
	if err != nil {
		return nil, err
	}
	rep.ID = e.ID
	rep.Title = e.Title
	rep.Elapsed = time.Since(start)
	return rep, nil
}

// --- shared helpers ----------------------------------------------------

// sdssView builds (and memoizes per run) an SDSS view over the given
// attributes.
func sdssView(rows int, seed int64, attrs ...string) (*engine.View, error) {
	tab := dataset.GenerateSDSS(rows, seed)
	return engine.NewView(tab, attrs)
}

// sessionRun holds one session's outcome.
type sessionRun struct {
	trace eval.Trace
	user  *eval.SimulatedUser
	sess  *explore.Session
}

// runAIDE executes one AIDE session against a generated target.
func runAIDE(v *engine.View, evalView *engine.View, target eval.Target, opts explore.Options, stopF float64, maxIter int) (sessionRun, error) {
	user := eval.NewSimulatedUser(target)
	s, err := explore.NewSession(v, user, opts)
	if err != nil {
		return sessionRun{}, err
	}
	tr, err := eval.RunTrace(s, evalView, target, stopF, maxIter)
	if err != nil {
		return sessionRun{}, err
	}
	return sessionRun{trace: tr, user: user, sess: s}, nil
}

// avgSamplesTo averages, over cfg.Sessions seeds, the samples needed to
// reach accuracy f. It returns the average over converged sessions and
// the converged count.
func avgSamplesTo(cfg Config, f float64, run func(seed int64) (eval.Trace, error)) (float64, int, error) {
	total, converged := 0, 0
	for i := 0; i < cfg.Sessions; i++ {
		tr, err := run(cfg.Seed + int64(i) + 1)
		if err != nil {
			return 0, 0, err
		}
		if n, ok := tr.SamplesToAccuracy(f); ok {
			total += n
			converged++
		}
	}
	if converged == 0 {
		return 0, 0, nil
	}
	return float64(total) / float64(converged), converged, nil
}

// fmtSamples renders an average sample count, or "-" for never-reached.
func fmtSamples(avg float64, converged, sessions int) string {
	if converged == 0 {
		return "-"
	}
	s := fmt.Sprintf("%.0f", avg)
	if converged < sessions {
		s += fmt.Sprintf(" (%d/%d)", converged, sessions)
	}
	return s
}

// fmtF renders an F-measure.
func fmtF(f float64) string { return fmt.Sprintf("%.3f", f) }

// fAtSamples returns the best F the trace achieved by the time n samples
// were labeled.
func fAtSamples(tr eval.Trace, n int) float64 {
	best := 0.0
	for i := range tr.Samples {
		if tr.Samples[i] > n {
			break
		}
		if tr.F[i] > best {
			best = tr.F[i]
		}
	}
	return best
}

// accuracyLevels are the x-axis ticks of Figures 8(a)-(b) and 8(f).
var accuracyLevels = []float64{0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}

// mean returns the arithmetic mean (0 for empty input).
func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// WriteCSV writes the report's table as CSV (header row first), the
// machine-readable companion to String for plotting tools.
func (r *Report) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(r.Header); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
