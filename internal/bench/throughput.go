package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/explore-by-example/aide/internal/dataset"
	"github.com/explore-by-example/aide/internal/engine"
	"github.com/explore-by-example/aide/internal/eval"
	"github.com/explore-by-example/aide/internal/explore"
)

// ThroughputConfig scales the multi-session compute-reuse benchmark
// (aidebench -throughput).
type ThroughputConfig struct {
	// Sessions is the number of concurrent exploration sessions
	// (default 8).
	Sessions int
	// Rows is the dataset size; index build is O(Rows log Rows) per view,
	// which is exactly the cost the shared registry amortizes
	// (default 150000).
	Rows int
	// Iterations is the steering iterations each session runs
	// (default 8).
	Iterations int
	// Seed drives dataset and target generation; session i runs with
	// Seed+i.
	Seed int64
	// CacheBytes is the shared predicate-result cache budget for the
	// shared-view mode (default 32 MiB).
	CacheBytes int64
}

// DefaultThroughputConfig returns the scale used for
// BENCH_throughput.json.
func DefaultThroughputConfig() ThroughputConfig {
	return ThroughputConfig{
		Sessions:   8,
		Rows:       150_000,
		Iterations: 8,
		Seed:       1,
		CacheBytes: 32 << 20,
	}
}

// ThroughputResult is one mode's aggregate over all sessions.
type ThroughputResult struct {
	// Mode is "per_session_views" (every session builds its own view, no
	// cache — the pre-reuse baseline) or "shared_view" (one registry view
	// plus one shared predicate-result cache).
	Mode string `json:"mode"`
	// WallMillis is the wall-clock time from launching the first session
	// to the last one finishing.
	WallMillis float64 `json:"wall_millis"`
	// SessionsPerSec is Sessions / wall seconds.
	SessionsPerSec float64 `json:"sessions_per_sec"`
	// P95IterationMillis is the 95th-percentile single-iteration latency
	// across every iteration of every session.
	P95IterationMillis float64 `json:"p95_iteration_millis"`
	// BytesPerSession and AllocsPerSession are heap traffic per session
	// (ReadMemStats deltas over the whole mode, divided by Sessions).
	BytesPerSession  int64 `json:"bytes_per_session"`
	AllocsPerSession int64 `json:"allocs_per_session"`
	// CacheHits/CacheMisses/CacheHitRate report the shared cache's
	// traffic (zero in per-session mode, which runs uncached).
	CacheHits    int64   `json:"cache_hits"`
	CacheMisses  int64   `json:"cache_misses"`
	CacheHitRate float64 `json:"cache_hit_rate"`
}

// ThroughputReport is the machine-readable compute-reuse trajectory
// written to BENCH_throughput.json.
type ThroughputReport struct {
	GOMAXPROCS int   `json:"gomaxprocs"`
	Sessions   int   `json:"sessions"`
	Rows       int   `json:"rows"`
	Iterations int   `json:"iterations"`
	CacheBytes int64 `json:"cache_bytes"`

	PerSession ThroughputResult `json:"per_session"`
	Shared     ThroughputResult `json:"shared"`

	// Speedup is shared sessions/sec over per-session sessions/sec.
	Speedup float64 `json:"speedup"`
	// BitIdentical reports every session's final query SQL matched the
	// uncached single-view reference in both modes — the correctness gate
	// the reuse rides on.
	BitIdentical bool `json:"bit_identical"`
	// BoundarySamples is the total boundary-exploitation samples across
	// the shared mode's sessions; zero would mean the workload never
	// reached the phase the cache is meant to serve.
	BoundarySamples int `json:"boundary_samples"`
}

// WriteJSON renders the report as indented JSON.
func (r *ThroughputReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// String renders a human-readable summary.
func (r *ThroughputReport) String() string {
	s := fmt.Sprintf("throughput: GOMAXPROCS=%d sessions=%d rows=%d iters=%d cache=%dB\n",
		r.GOMAXPROCS, r.Sessions, r.Rows, r.Iterations, r.CacheBytes)
	s += fmt.Sprintf("%-18s %12s %14s %12s %14s %10s\n",
		"mode", "sess/sec", "p95 iter ms", "MB/session", "allocs/sess", "hit rate")
	for _, m := range []ThroughputResult{r.PerSession, r.Shared} {
		s += fmt.Sprintf("%-18s %12.2f %14.2f %12.1f %14d %9.1f%%\n",
			m.Mode, m.SessionsPerSec, m.P95IterationMillis,
			float64(m.BytesPerSession)/(1<<20), m.AllocsPerSession, m.CacheHitRate*100)
	}
	s += fmt.Sprintf("speedup %.2fx, bit-identical %v, boundary samples %d\n",
		r.Speedup, r.BitIdentical, r.BoundarySamples)
	return s
}

// Gate returns an error when the report violates a correctness
// invariant: final queries not bit-identical to the uncached reference,
// or a boundary-exploitation workload that never hit the shared cache.
// Speedup is deliberately not gated here — absolute ratios are
// machine-dependent; the committed BENCH_throughput.json tracks them.
func (r *ThroughputReport) Gate() error {
	if !r.BitIdentical {
		return fmt.Errorf("throughput: cached/shared sessions are not bit-identical to the uncached reference")
	}
	if r.BoundarySamples == 0 {
		return fmt.Errorf("throughput: workload never exercised boundary exploitation; gate is vacuous")
	}
	if r.Shared.CacheHits == 0 {
		return fmt.Errorf("throughput: shared cache saw zero hits across %d sessions", r.Sessions)
	}
	return nil
}

// throughputSession runs one steering session to completion and returns
// its final SQL, per-iteration durations, and boundary sample count.
func throughputSession(view *engine.View, target eval.Target, seed int64, iters int) (string, []time.Duration, int, error) {
	opts := explore.DefaultOptions()
	opts.Seed = seed
	opts.Workers = 1
	opts.MaxIterations = iters
	sess, err := explore.NewSession(view, eval.NewSimulatedUser(target), opts)
	if err != nil {
		return "", nil, 0, err
	}
	durs := make([]time.Duration, 0, iters)
	for i := 0; i < iters; i++ {
		res, err := sess.RunIteration()
		if err != nil {
			return "", nil, 0, err
		}
		durs = append(durs, res.Duration)
		if res.NewSamples == 0 {
			break
		}
	}
	boundary := sess.Stats().PhaseSamples[explore.PhaseBoundary]
	return sess.FinalQuery().SQL(), durs, boundary, nil
}

// runThroughputMode launches cfg.Sessions concurrent sessions, each over
// the view mkView returns for it, and aggregates the mode's cost.
func runThroughputMode(cfg ThroughputConfig, mode string, target eval.Target,
	mkView func(i int) (*engine.View, error)) (ThroughputResult, []string, int, error) {

	sqls := make([]string, cfg.Sessions)
	iterDurs := make([][]time.Duration, cfg.Sessions)
	boundary := make([]int, cfg.Sessions)
	errs := make([]error, cfg.Sessions)

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < cfg.Sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := mkView(i)
			if err != nil {
				errs[i] = err
				return
			}
			sqls[i], iterDurs[i], boundary[i], errs[i] =
				throughputSession(v, target, cfg.Seed+int64(i), cfg.Iterations)
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	for _, err := range errs {
		if err != nil {
			return ThroughputResult{}, nil, 0, err
		}
	}

	var all []time.Duration
	for _, ds := range iterDurs {
		all = append(all, ds...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	p95 := time.Duration(0)
	if len(all) > 0 {
		p95 = all[min(len(all)-1, (len(all)*95)/100)]
	}
	totalBoundary := 0
	for _, b := range boundary {
		totalBoundary += b
	}
	res := ThroughputResult{
		Mode:             mode,
		WallMillis:       float64(wall.Nanoseconds()) / 1e6,
		SessionsPerSec:   float64(cfg.Sessions) / wall.Seconds(),
		BytesPerSession:  int64(after.TotalAlloc-before.TotalAlloc) / int64(cfg.Sessions),
		AllocsPerSession: int64(after.Mallocs-before.Mallocs) / int64(cfg.Sessions),
	}
	if len(all) > 0 {
		res.P95IterationMillis = float64(p95.Nanoseconds()) / 1e6
	}
	return res, sqls, totalBoundary, nil
}

// RunThroughput measures N concurrent sessions over per-session views
// (the pre-reuse baseline: every session pays its own index build, no
// cache) against N sessions over one registry-shared view with a shared
// predicate-result cache, verifying that every session's final query is
// bit-identical to an uncached reference either way.
func RunThroughput(cfg ThroughputConfig) (*ThroughputReport, error) {
	def := DefaultThroughputConfig()
	if cfg.Sessions <= 0 {
		cfg.Sessions = def.Sessions
	}
	if cfg.Rows <= 0 {
		cfg.Rows = def.Rows
	}
	if cfg.Iterations <= 0 {
		cfg.Iterations = def.Iterations
	}
	if cfg.CacheBytes <= 0 {
		cfg.CacheBytes = def.CacheBytes
	}

	tab := dataset.GenerateSDSS(cfg.Rows, cfg.Seed)
	attrs := []string{"rowc", "colc"}

	// Reference: uncached, unshared, computed outside any timed region.
	refView, err := engine.NewViewWorkers(tab, attrs, 1)
	if err != nil {
		return nil, err
	}
	target, err := eval.GenerateTarget(refView, eval.TargetSpec{NumAreas: 2, Size: eval.Large}, cfg.Seed)
	if err != nil {
		return nil, err
	}
	refSQL := make([]string, cfg.Sessions)
	for i := range refSQL {
		sql, _, _, err := throughputSession(refView, target, cfg.Seed+int64(i), cfg.Iterations)
		if err != nil {
			return nil, err
		}
		refSQL[i] = sql
	}

	rep := &ThroughputReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Sessions:   cfg.Sessions,
		Rows:       cfg.Rows,
		Iterations: cfg.Iterations,
		CacheBytes: cfg.CacheBytes,
	}

	// Baseline: every session builds a private view inside the timed
	// region and runs uncached.
	perSession, perSQL, _, err := runThroughputMode(cfg, "per_session_views", target,
		func(int) (*engine.View, error) { return engine.NewViewWorkers(tab, attrs, 1) })
	if err != nil {
		return nil, err
	}
	rep.PerSession = perSession

	// Reuse: sessions acquire through a fresh registry (the first build
	// is paid once, inside the timed region) and share one cache.
	registry := engine.NewRegistry()
	cache := engine.NewCache(cfg.CacheBytes)
	shared, sharedSQL, boundary, err := runThroughputMode(cfg, "shared_view", target,
		func(int) (*engine.View, error) {
			v, err := registry.AcquireWorkers(tab, attrs, 1)
			if err != nil {
				return nil, err
			}
			return v.WithCache(cache), nil
		})
	if err != nil {
		return nil, err
	}
	stats := cache.Stats()
	shared.CacheHits = stats.Hits
	shared.CacheMisses = stats.Misses
	shared.CacheHitRate = stats.HitRate()
	rep.Shared = shared
	rep.BoundarySamples = boundary

	if perSession.SessionsPerSec > 0 {
		rep.Speedup = shared.SessionsPerSec / perSession.SessionsPerSec
	}
	rep.BitIdentical = true
	for i := range refSQL {
		if perSQL[i] != refSQL[i] || sharedSQL[i] != refSQL[i] {
			rep.BitIdentical = false
			break
		}
	}
	return rep, nil
}
