package bench

import (
	"fmt"

	"github.com/explore-by-example/aide/internal/eval"
	"github.com/explore-by-example/aide/internal/explore"
)

func init() {
	register("fig9a", "accuracy vs samples across database sizes (1 large area)", runFig9a)
	register("fig9b", "sampled datasets: accuracy delta and time improvement", runFig9b)
	register("fig9c", "sampled datasets: time improvement vs number of areas", runFig9c)
}

// dbSizes maps the paper's dataset sizes to scaled row counts: cfg.Rows
// stands in for 10 GB (3M rows in the paper), 5x for 50 GB, 10x for
// 100 GB. Scaling is linear in rows exactly as the paper's sizes are.
func dbSizes(cfg Config) []struct {
	label string
	rows  int
} {
	return []struct {
		label string
		rows  int
	}{
		{"10GB", cfg.Rows},
		{"50GB", cfg.Rows * 5},
		{"100GB", cfg.Rows * 10},
	}
}

// sampleBudgets are the x-axis ticks of Figure 9(a).
var sampleBudgets = []int{250, 300, 350, 400, 450, 500}

// runFig9a regenerates Figure 9(a): accuracy achieved within given label
// budgets, per database size. The paper's conclusion — database size does
// not affect effectiveness — should reproduce exactly.
func runFig9a(cfg Config) (*Report, error) {
	sizes := dbSizes(cfg)
	rep := &Report{Header: []string{"Samples"}}
	for _, s := range sizes {
		rep.Header = append(rep.Header, s.label)
	}
	traces := make(map[string][]eval.Trace)
	for _, s := range sizes {
		v, err := sdssView(s.rows, cfg.Seed, denseAttrs...)
		if err != nil {
			return nil, err
		}
		for i := 0; i < cfg.Sessions; i++ {
			tr, err := traceForSize(cfg, v, eval.Large, 1, cfg.Seed+int64(i)+1, 1.0, nil)
			if err != nil {
				return nil, err
			}
			traces[s.label] = append(traces[s.label], tr)
			cfg.logf("fig9a %s session %d maxF=%.3f\n", s.label, i+1, tr.MaxF())
		}
	}
	for _, budget := range sampleBudgets {
		row := []string{fmt.Sprintf("%d", budget)}
		for _, s := range sizes {
			var fs []float64
			for _, tr := range traces[s.label] {
				fs = append(fs, fAtSamples(tr, budget))
			}
			row = append(row, fmtF(mean(fs)))
		}
		rep.Rows = append(rep.Rows, row)
	}
	rep.Notes = append(rep.Notes, "paper shape: accuracy at a given sample budget is independent of database size")
	return rep, nil
}

// runFig9b regenerates Figure 9(b): exploring a 10% simple random sample
// instead of the full dataset — the absolute accuracy difference should
// stay small while system execution time drops by a large factor.
func runFig9b(cfg Config) (*Report, error) {
	rep := &Report{Header: []string{"DB size", "Accuracy delta", "Time improvement"}}
	for _, s := range dbSizes(cfg) {
		v, err := sdssView(s.rows, cfg.Seed, denseAttrs...)
		if err != nil {
			return nil, err
		}
		sampled, err := v.Sampled(0.1, cfg.Seed+99)
		if err != nil {
			return nil, err
		}
		var accDeltas, fullTimes, sampTimes []float64
		for i := 0; i < cfg.Sessions; i++ {
			seed := cfg.Seed + int64(i) + 1
			target, err := eval.GenerateTarget(v, eval.TargetSpec{NumAreas: 1, Size: eval.Large}, seed)
			if err != nil {
				return nil, err
			}
			opts := explore.DefaultOptions()
			opts.Seed = seed
			full, err := runAIDE(v, v, target, opts, 0, cfg.MaxIter)
			if err != nil {
				return nil, err
			}
			// Exploration runs on the sampled view; accuracy is still
			// measured on the full data, as the paper does.
			samp, err := runAIDE(sampled, v, target, opts, 0, cfg.MaxIter)
			if err != nil {
				return nil, err
			}
			d := full.trace.MaxF() - samp.trace.MaxF()
			if d < 0 {
				d = -d
			}
			accDeltas = append(accDeltas, d)
			fullTimes = append(fullTimes, full.trace.AvgIterSeconds())
			sampTimes = append(sampTimes, samp.trace.AvgIterSeconds())
			cfg.logf("fig9b %s session %d: fullF=%.3f sampF=%.3f\n", s.label, i+1, full.trace.MaxF(), samp.trace.MaxF())
		}
		improvement := 0.0
		if ft := mean(fullTimes); ft > 0 {
			improvement = (ft - mean(sampTimes)) / ft * 100
		}
		rep.Rows = append(rep.Rows, []string{
			s.label,
			fmt.Sprintf("%.2f%%", mean(accDeltas)*100),
			fmt.Sprintf("%.0f%%", improvement),
		})
	}
	rep.Notes = append(rep.Notes, "paper shape: <=~7% accuracy delta; larger databases gain more time")
	return rep, nil
}

// runFig9c regenerates Figure 9(c): per-iteration time improvement from
// sampled datasets as query complexity (number of areas) grows.
func runFig9c(cfg Config) (*Report, error) {
	rep := &Report{Header: []string{"Areas", "Full (s/iter)", "Sampled (s/iter)", "Improvement"}}
	v, err := sdssView(cfg.Rows*5, cfg.Seed, denseAttrs...) // the "50GB" point
	if err != nil {
		return nil, err
	}
	sampled, err := v.Sampled(0.1, cfg.Seed+99)
	if err != nil {
		return nil, err
	}
	for _, k := range []int{1, 3, 5, 7} {
		var fullTimes, sampTimes []float64
		for i := 0; i < cfg.Sessions; i++ {
			seed := cfg.Seed + int64(i) + 1
			target, err := eval.GenerateTarget(v, eval.TargetSpec{NumAreas: k, Size: eval.Large}, seed)
			if err != nil {
				return nil, err
			}
			opts := explore.DefaultOptions()
			opts.Seed = seed
			full, err := runAIDE(v, v, target, opts, 0.7, cfg.MaxIter)
			if err != nil {
				return nil, err
			}
			samp, err := runAIDE(sampled, v, target, opts, 0.7, cfg.MaxIter)
			if err != nil {
				return nil, err
			}
			fullTimes = append(fullTimes, full.trace.AvgIterSeconds())
			sampTimes = append(sampTimes, samp.trace.AvgIterSeconds())
		}
		ft, st := mean(fullTimes), mean(sampTimes)
		improvement := 0.0
		if ft > 0 {
			improvement = (ft - st) / ft * 100
		}
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d", k),
			fmt.Sprintf("%.4f", ft),
			fmt.Sprintf("%.4f", st),
			fmt.Sprintf("%.0f%%", improvement),
		})
		cfg.logf("fig9c areas=%d done\n", k)
	}
	rep.Notes = append(rep.Notes, "paper shape: sampled datasets cut per-iteration time by a large factor at every complexity")
	return rep, nil
}
