package bench

import (
	"strings"
	"testing"

	"github.com/explore-by-example/aide/internal/obs"
)

func traceTestEvents() []obs.FlightEvent {
	return []obs.FlightEvent{
		{
			Schema: 1, Session: "s1", Iteration: 0, DurationMS: 10,
			PhaseMS:      map[string]float64{"discovery": 8, "train": 2},
			PhaseSamples: map[string]int{"discovery": 10},
			PhaseQueries: map[string]int{"discovery": 3},
			NewSamples:   10, NewRelevant: 1, TotalLabeled: 10,
			CacheHits: 0, CacheMisses: 4, TreeNodes: 3, RelevantAreas: 1,
			Predicate: "a > 1",
		},
		{
			Schema: 1, Session: "s1", Iteration: 1, DurationMS: 6,
			PhaseMS:      map[string]float64{"boundary": 4, "train": 2},
			PhaseSamples: map[string]int{"boundary": 10},
			PhaseQueries: map[string]int{"boundary": 2},
			NewSamples:   10, NewRelevant: 4, TotalLabeled: 20,
			CacheHits: 3, CacheMisses: 1, TreeNodes: 5, RelevantAreas: 2,
			Degradations: []string{"kmeans_iters"},
			Predicate:    "a > 2",
		},
		{
			Schema: 1, Session: "s1", Iteration: 2, DurationMS: 5,
			PhaseMS:      map[string]float64{"boundary": 3, "train": 2},
			PhaseSamples: map[string]int{"boundary": 10},
			PhaseQueries: map[string]int{"boundary": 2},
			NewSamples:   10, NewRelevant: 5, TotalLabeled: 30,
			CacheHits: 4, CacheMisses: 0, TreeNodes: 5, RelevantAreas: 2,
			Predicate: "a > 2",
		},
	}
}

func TestReplayTrace(t *testing.T) {
	rep, err := ReplayTrace(traceTestEvents())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Session != "s1" || rep.Events != 3 || rep.FirstIteration != 0 || rep.LastIteration != 2 {
		t.Errorf("header = %+v", rep)
	}
	if rep.TotalMS != 21 || rep.TotalLabeled != 30 {
		t.Errorf("totals = %v ms / %d labeled, want 21/30", rep.TotalMS, rep.TotalLabeled)
	}
	if rep.CacheHits != 7 || rep.CacheMisses != 5 {
		t.Errorf("cache = %d/%d, want 7/5", rep.CacheHits, rep.CacheMisses)
	}
	if rep.Degradations["kmeans_iters"] != 1 {
		t.Errorf("degradations = %v", rep.Degradations)
	}

	byPhase := map[string]TracePhaseStats{}
	for _, p := range rep.Phases {
		byPhase[p.Phase] = p
	}
	if tr := byPhase["train"]; tr.Iterations != 3 || tr.TotalMS != 6 || tr.MeanMS != 2 {
		t.Errorf("train phase = %+v", tr)
	}
	if b := byPhase["boundary"]; b.TotalMS != 7 || b.Samples != 20 || b.Queries != 4 {
		t.Errorf("boundary phase = %+v", b)
	}
	// Largest total time first: discovery (8ms) leads.
	if rep.Phases[0].Phase != "discovery" {
		t.Errorf("phase order = %v", rep.Phases)
	}

	// Convergence: predicate changed on iterations 0 and 1, stable after.
	if len(rep.Convergence) != 3 || !rep.Convergence[1].PredicateChanged || rep.Convergence[2].PredicateChanged {
		t.Errorf("convergence = %+v", rep.Convergence)
	}
	if rep.StableTail != 1 || rep.FinalPredicate != "a > 2" {
		t.Errorf("stable tail = %d, final = %q", rep.StableTail, rep.FinalPredicate)
	}

	out := rep.String()
	for _, want := range []string{"session=s1", "discovery", "boundary", "train", "58.3% hit rate", "a > 2"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestReplayTraceRejects(t *testing.T) {
	if _, err := ReplayTrace(nil); err == nil {
		t.Error("empty journal accepted")
	}
	mixed := traceTestEvents()
	mixed[1].Session = "s2"
	if _, err := ReplayTrace(mixed); err == nil {
		t.Error("mixed-session journal accepted")
	}
}
