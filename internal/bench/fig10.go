package bench

import (
	"fmt"

	"github.com/explore-by-example/aide/internal/eval"
	"github.com/explore-by-example/aide/internal/explore"
)

func init() {
	register("fig10a", "samples vs exploration-space dimensionality (2D-5D, large areas, >70%)", runFig10a)
	register("fig10b", "time vs exploration-space dimensionality (2D-5D, large areas, >70%)", runFig10b)
	register("fig10c", "skewed exploration spaces: grid vs clustering vs sampled (>70%, 1 large area)", runFig10c)
	register("fig10d", "distance-based hint optimization (>80%, medium areas)", runFig10d)
	register("fig10e", "clustered vs per-object misclassified exploitation (>80%, large areas)", runFig10e)
	register("fig10f", "adaptive vs fixed boundary sample size (accuracy at 500 samples)", runFig10f)
}

// dimAttrs lists the exploration attributes per dimensionality (2D-5D),
// always leading with the two the targets actually constrain.
var dimAttrs = [][]string{
	{"rowc", "colc"},
	{"rowc", "colc", "field"},
	{"rowc", "colc", "field", "fieldID"},
	{"rowc", "colc", "field", "fieldID", "dec"},
}

// multiDimRun runs one (dims, areas) cell and reports samples and
// per-iteration time averages to >=70%.
func multiDimRun(cfg Config, attrs []string, areas int) (samples string, seconds string, err error) {
	v, err := sdssView(cfg.Rows, cfg.Seed, attrs...)
	if err != nil {
		return "", "", err
	}
	total, converged := 0, 0
	var times []float64
	for i := 0; i < cfg.Sessions; i++ {
		seed := cfg.Seed + int64(i) + 1
		// Targets constrain only the first two attributes; the remaining
		// dimensions are irrelevant and must be eliminated by AIDE
		// (Section 6.3).
		target, err := eval.GenerateTarget(v, eval.TargetSpec{
			NumAreas:   areas,
			Size:       eval.Large,
			ActiveDims: 2,
		}, seed)
		if err != nil {
			return "", "", err
		}
		opts := explore.DefaultOptions()
		opts.Seed = seed
		run, err := runAIDE(v, v, target, opts, 0.7, cfg.MaxIter)
		if err != nil {
			return "", "", err
		}
		if n, ok := run.trace.SamplesToAccuracy(0.7); ok {
			total += n
			converged++
			times = append(times, run.trace.AvgIterSeconds())
		}
	}
	if converged == 0 {
		return "-", "-", nil
	}
	return fmtSamples(float64(total)/float64(converged), converged, cfg.Sessions),
		fmt.Sprintf("%.4f", mean(times)), nil
}

// runFig10a regenerates Figure 10(a): label effort across 2-5 dimensional
// exploration spaces where only two attributes matter.
func runFig10a(cfg Config) (*Report, error) {
	rep := &Report{Header: []string{"Areas", "2D", "3D", "4D", "5D"}}
	for _, areas := range []int{1, 3, 5, 7} {
		row := []string{fmt.Sprintf("%d", areas)}
		for _, attrs := range dimAttrs {
			samples, _, err := multiDimRun(cfg, attrs, areas)
			if err != nil {
				return nil, err
			}
			row = append(row, samples)
			cfg.logf("fig10a areas=%d dims=%d done\n", areas, len(attrs))
		}
		rep.Rows = append(rep.Rows, row)
	}
	rep.Notes = append(rep.Notes,
		"paper shape: samples grow mildly with dimensionality; irrelevant attributes are eliminated from the final query",
	)
	return rep, nil
}

// runFig10b regenerates Figure 10(b): per-iteration time across
// dimensionalities.
func runFig10b(cfg Config) (*Report, error) {
	rep := &Report{Header: []string{"Areas", "2D (s)", "3D (s)", "4D (s)", "5D (s)"}}
	for _, areas := range []int{1, 3, 5, 7} {
		row := []string{fmt.Sprintf("%d", areas)}
		for _, attrs := range dimAttrs {
			_, secs, err := multiDimRun(cfg, attrs, areas)
			if err != nil {
				return nil, err
			}
			row = append(row, secs)
		}
		rep.Rows = append(rep.Rows, row)
	}
	rep.Notes = append(rep.Notes, "paper shape: each added dimension adds modest per-iteration overhead")
	return rep, nil
}

// runFig10c regenerates Figure 10(c): skew handling. Three 2-D spaces —
// NoSkew (rowc, colc), HalfSkew (rowc, dec), Skew (dec, ra) — explored by
// plain grid AIDE, clustering-based AIDE, and grid AIDE over a 10%
// sampled dataset.
func runFig10c(cfg Config) (*Report, error) {
	rep := &Report{Header: []string{"Space", "AIDE", "AIDE-Clustering", "AIDE-Sample"}}
	spaces := []struct {
		label string
		attrs []string
		dense bool
	}{
		{"NoSkew", []string{"rowc", "colc"}, true},
		{"HalfSkew", []string{"rowc", "dec"}, false},
		{"Skew", []string{"dec", "ra"}, true},
	}
	for _, sp := range spaces {
		v, err := sdssView(cfg.Rows, cfg.Seed, sp.attrs...)
		if err != nil {
			return nil, err
		}
		sampled, err := v.Sampled(0.1, cfg.Seed+99)
		if err != nil {
			return nil, err
		}
		row := []string{sp.label}
		for _, variant := range []string{"grid", "clustering", "sample"} {
			avg, conv, err := avgSamplesTo(cfg, 0.7, func(seed int64) (eval.Trace, error) {
				// Skew/NoSkew targets sit on dense regions (Section 6.4);
				// HalfSkew targets may cover sparse areas too.
				target, err := eval.GenerateTarget(v, eval.TargetSpec{
					NumAreas:  1,
					Size:      eval.Large,
					DenseOnly: sp.dense,
				}, seed)
				if err != nil {
					return eval.Trace{}, err
				}
				opts := explore.DefaultOptions()
				opts.Seed = seed
				runView := v
				switch variant {
				case "clustering":
					opts.Discovery = explore.DiscoveryClustering
				case "sample":
					runView = sampled
				}
				run, err := runAIDE(runView, v, target, opts, 0.7, cfg.MaxIter)
				if err != nil {
					return eval.Trace{}, err
				}
				return run.trace, nil
			})
			if err != nil {
				return nil, err
			}
			row = append(row, fmtSamples(avg, conv, cfg.Sessions))
			cfg.logf("fig10c %s %s done\n", sp.label, variant)
		}
		rep.Rows = append(rep.Rows, row)
	}
	rep.Notes = append(rep.Notes,
		"paper shape: clustering wins on Skew, ties on NoSkew, loses on HalfSkew; sampled datasets track the full dataset everywhere",
	)
	return rep, nil
}

// runFig10d regenerates Figure 10(d): the distance-based hint. The user
// promises medium relevant areas are at least 4 units wide, so discovery
// starts at the exploration level guaranteed to hit them.
func runFig10d(cfg Config) (*Report, error) {
	rep := &Report{Header: []string{"Areas", "AIDE", "AIDE+DistanceHint"}}
	v, err := sdssView(cfg.Rows, cfg.Seed, denseAttrs...)
	if err != nil {
		return nil, err
	}
	for _, k := range []int{1, 3, 5, 7} {
		row := []string{fmt.Sprintf("%d", k)}
		for _, hint := range []float64{0, 4} {
			avg, conv, err := avgSamplesTo(cfg, 0.8, func(seed int64) (eval.Trace, error) {
				target, err := eval.GenerateTarget(v, eval.TargetSpec{NumAreas: k, Size: eval.Medium}, seed)
				if err != nil {
					return eval.Trace{}, err
				}
				opts := explore.DefaultOptions()
				opts.Seed = seed
				opts.DistanceHint = hint
				run, err := runAIDE(v, v, target, opts, 0.8, cfg.MaxIter*2)
				if err != nil {
					return eval.Trace{}, err
				}
				return run.trace, nil
			})
			if err != nil {
				return nil, err
			}
			row = append(row, fmtSamples(avg, conv, cfg.Sessions))
			cfg.logf("fig10d areas=%d hint=%v done\n", k, hint)
		}
		rep.Rows = append(rep.Rows, row)
	}
	rep.Notes = append(rep.Notes, "paper shape: the hint removes wasted shallow-level sampling, reducing label effort")
	return rep, nil
}

// runFig10e regenerates Figure 10(e): exploration time with
// clustering-based misclassified exploitation (one extraction query per
// cluster) versus one query per misclassified object.
func runFig10e(cfg Config) (*Report, error) {
	rep := &Report{Header: []string{"Areas", "SamplePerMisclassified (s)", "SamplePerCluster (s)", "Improvement", "Misclass queries/obj", "Misclass queries/clu"}}
	v, err := sdssView(cfg.Rows, cfg.Seed, denseAttrs...)
	if err != nil {
		return nil, err
	}
	for _, k := range []int{1, 3, 5, 7} {
		times := map[explore.MisclassStrategy][]float64{}
		queries := map[explore.MisclassStrategy][]float64{}
		for _, strat := range []explore.MisclassStrategy{explore.MisclassPerObject, explore.MisclassClustered} {
			for i := 0; i < cfg.Sessions; i++ {
				seed := cfg.Seed + int64(i) + 1
				target, err := eval.GenerateTarget(v, eval.TargetSpec{NumAreas: k, Size: eval.Large}, seed)
				if err != nil {
					return nil, err
				}
				opts := explore.DefaultOptions()
				opts.Seed = seed
				opts.Misclass = strat
				run, err := runAIDE(v, v, target, opts, 0.8, cfg.MaxIter)
				if err != nil {
					return nil, err
				}
				st := run.sess.Stats()
				times[strat] = append(times[strat], st.ExecTime.Seconds())
				queries[strat] = append(queries[strat], float64(st.PhaseQueries[explore.PhaseMisclass]))
			}
			cfg.logf("fig10e areas=%d %v done\n", k, strat)
		}
		po, cl := mean(times[explore.MisclassPerObject]), mean(times[explore.MisclassClustered])
		improvement := 0.0
		if po > 0 {
			improvement = (po - cl) / po * 100
		}
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d", k),
			fmt.Sprintf("%.3f", po),
			fmt.Sprintf("%.3f", cl),
			fmt.Sprintf("%.0f%%", improvement),
			fmt.Sprintf("%.0f", mean(queries[explore.MisclassPerObject])),
			fmt.Sprintf("%.0f", mean(queries[explore.MisclassClustered])),
		})
	}
	rep.Notes = append(rep.Notes,
		"paper shape: clustering reduces extraction queries (and, on a disk-backed engine, exploration time) without hurting accuracy",
		"this in-memory engine has near-zero per-query overhead, so the query-count columns carry the signal",
	)
	return rep, nil
}

// runFig10f regenerates Figure 10(f): accuracy at a 500-label budget with
// the adaptive boundary sample size versus a fixed per-face size.
func runFig10f(cfg Config) (*Report, error) {
	rep := &Report{Header: []string{"Areas", "SampleSize-Fixed", "SampleSize-Adaptive"}}
	v, err := sdssView(cfg.Rows, cfg.Seed, denseAttrs...)
	if err != nil {
		return nil, err
	}
	const budget = 500
	for _, k := range []int{1, 3, 5, 7} {
		row := []string{fmt.Sprintf("%d", k)}
		for _, adaptive := range []bool{false, true} {
			var fs []float64
			for i := 0; i < cfg.Sessions; i++ {
				seed := cfg.Seed + int64(i) + 1
				target, err := eval.GenerateTarget(v, eval.TargetSpec{NumAreas: k, Size: eval.Large}, seed)
				if err != nil {
					return nil, err
				}
				opts := explore.DefaultOptions()
				opts.Seed = seed
				opts.AdaptiveBoundary = adaptive
				user := eval.NewSimulatedUser(target)
				s, err := explore.NewSession(v, user, opts)
				if err != nil {
					return nil, err
				}
				tr, err := eval.RunTrace(s, v, target, 0, budget/opts.SamplesPerIteration+1)
				if err != nil {
					return nil, err
				}
				fs = append(fs, fAtSamples(tr, budget))
			}
			row = append(row, fmtF(mean(fs)))
			cfg.logf("fig10f areas=%d adaptive=%v done\n", k, adaptive)
		}
		rep.Rows = append(rep.Rows, row)
	}
	rep.Notes = append(rep.Notes,
		"paper shape: the adaptive size shifts effort to discovery and misclassified exploitation, improving accuracy at a fixed budget",
	)
	return rep, nil
}
