// Package kmeans implements Lloyd's k-means clustering with k-means++
// seeding. AIDE uses it in two places: the skew-aware object-discovery
// optimization partitions the data space into clusters and samples around
// centroids instead of grid-cell centers (Section 3.1), and the
// clustering-based misclassified exploitation groups false negatives so
// one sample-extraction query serves a whole cluster (Section 4.2).
package kmeans

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"github.com/explore-by-example/aide/internal/geom"
	"github.com/explore-by-example/aide/internal/par"
)

// Parallel kernels: assignment (nearest-centroid search) and seeding
// (distance-to-nearest-center). minAssignChunk keeps goroutine overhead
// off small point sets.
var (
	kernelAssign = par.NewKernel("kmeans.assign")
	kernelSeed   = par.NewKernel("kmeans.seed")
)

const minAssignChunk = 256

// Result holds the output of a clustering run.
type Result struct {
	// Centroids are the k cluster centers (k may be reduced when fewer
	// distinct points exist).
	Centroids []geom.Point
	// Assign maps each input point index to its centroid index.
	Assign []int
	// Sizes[i] is the number of points assigned to centroid i.
	Sizes []int
	// Inertia is the total squared distance of points to their centroids.
	Inertia float64
	// Iters is the number of Lloyd iterations performed.
	Iters int
}

// Radius returns the maximum Chebyshev distance from the centroid to any
// member of cluster c: the per-cluster sampling radius used by
// clustering-based discovery ("gamma < delta, where delta is the radius
// of the cluster", Section 3.1).
func (r *Result) Radius(points []geom.Point, c int) float64 {
	var m float64
	for i, a := range r.Assign {
		if a != c {
			continue
		}
		if d := r.Centroids[c].ChebyshevDist(points[i]); d > m {
			m = d
		}
	}
	return m
}

// Members returns the indexes of points assigned to cluster c.
func (r *Result) Members(c int) []int {
	var out []int
	for i, a := range r.Assign {
		if a == c {
			out = append(out, i)
		}
	}
	return out
}

// BoundingRect returns the axis-aligned bounding box of cluster c's
// members expanded by y on every side and clipped to bounds. This is the
// sampling area of clustering-based misclassified exploitation: "we
// collect samples within a distance y from the farthest cluster member in
// each dimension" (Section 4.2). It returns ok=false for an empty
// cluster.
func (r *Result) BoundingRect(points []geom.Point, c int, y float64, bounds geom.Rect) (geom.Rect, bool) {
	var box geom.Rect
	for i, a := range r.Assign {
		if a != c {
			continue
		}
		p := points[i]
		if box == nil {
			box = make(geom.Rect, len(p))
			for d := range p {
				box[d] = geom.Interval{Lo: p[d], Hi: p[d]}
			}
			continue
		}
		for d := range p {
			if p[d] < box[d].Lo {
				box[d].Lo = p[d]
			}
			if p[d] > box[d].Hi {
				box[d].Hi = p[d]
			}
		}
	}
	if box == nil {
		return nil, false
	}
	return box.Expand(y, bounds), true
}

// Params controls a clustering run.
type Params struct {
	// K is the requested number of clusters; it is reduced to the number
	// of distinct points when larger.
	K int
	// MaxIters bounds Lloyd iterations (default 50 when zero).
	MaxIters int
	// Tol stops early when centroid movement falls below it (default 1e-6).
	Tol float64
	// Workers sets the worker count for the assignment step: 0 means
	// automatic (AIDE_WORKERS or GOMAXPROCS), 1 forces the sequential
	// path. Results are bit-identical at every worker count: each point's
	// nearest centroid is independent, and every floating-point
	// accumulation (centroid sums, inertia) stays sequential in point
	// order.
	Workers int
}

// ErrBadParams marks Params rejected by Validate.
var ErrBadParams = errors.New("kmeans: invalid params")

// Validate rejects nonsensical parameter values with a typed error. Zero
// values are legal (they select the documented defaults); negatives and
// non-finite tolerances are construction bugs and fail fast.
func (p Params) Validate() error {
	if p.K < 0 {
		return fmt.Errorf("%w: K = %d", ErrBadParams, p.K)
	}
	if p.MaxIters < 0 {
		return fmt.Errorf("%w: MaxIters = %d", ErrBadParams, p.MaxIters)
	}
	if p.Tol < 0 || math.IsNaN(p.Tol) || math.IsInf(p.Tol, 0) {
		return fmt.Errorf("%w: Tol = %v", ErrBadParams, p.Tol)
	}
	if p.Workers < 0 {
		return fmt.Errorf("%w: Workers = %d", ErrBadParams, p.Workers)
	}
	return nil
}

// Cluster partitions points into K clusters. The run is deterministic for
// a given rng state. It returns an error for empty input or K < 1.
func Cluster(points []geom.Point, params Params, rng *rand.Rand) (*Result, error) {
	return ClusterCtx(context.Background(), points, params, rng)
}

// ClusterCtx is Cluster with cooperative cancellation: the Lloyd loop
// checks ctx once per iteration and returns ctx.Err() when cancelled
// (the partial result is dropped). An uncancelled ctx yields a result
// bit-identical to Cluster's.
func ClusterCtx(ctx context.Context, points []geom.Point, params Params, rng *rand.Rand) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(points) == 0 {
		return nil, fmt.Errorf("kmeans: no points")
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if params.K < 1 {
		return nil, fmt.Errorf("%w: K = %d", ErrBadParams, params.K)
	}
	if params.MaxIters == 0 {
		params.MaxIters = 50
	}
	if params.Tol == 0 {
		params.Tol = 1e-6
	}
	d := len(points[0])
	for i, p := range points {
		if len(p) != d {
			return nil, fmt.Errorf("kmeans: point %d has %d dims, want %d", i, len(p), d)
		}
	}

	cents := seedPlusPlus(points, params.K, rng, params.Workers)
	k := len(cents)
	assign := make([]int, len(points))
	sizes := make([]int, k)

	// Double-buffered centroid set: sums accumulate into next (never the
	// buffer cents currently aliases) and the two swap at the end of each
	// iteration, so Lloyd's loop allocates nothing per iteration.
	next := make([]geom.Point, k)
	for c := range next {
		next[c] = make(geom.Point, d)
	}

	iters := 0
	for iters < params.MaxIters {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("kmeans: cancelled after %d iterations: %w", iters, err)
		}
		iters++
		// Assignment step: each point's nearest centroid is independent,
		// so it fans out across the worker pool; size counting stays
		// sequential (cheap integer work).
		assignNearest(points, cents, params.Workers, assign, nil)
		for i := range sizes {
			sizes[i] = 0
		}
		for _, a := range assign {
			sizes[a]++
		}
		// Update step.
		for c := range next {
			clear(next[c])
		}
		for i, p := range points {
			c := next[assign[i]]
			for j := range p {
				c[j] += p[j]
			}
		}
		moved := 0.0
		for c := range next {
			if sizes[c] == 0 {
				// Re-seed an empty cluster at the farthest point from its
				// old centroid to keep k stable.
				copy(next[c], farthestPoint(points, cents))
				sizes[c] = 0
				moved = math.Inf(1)
				continue
			}
			for j := range next[c] {
				next[c][j] /= float64(sizes[c])
			}
			moved += math.Sqrt(sqDist(cents[c], next[c]))
		}
		cents, next = next, cents
		if moved < params.Tol {
			break
		}
	}

	// Final assignment with the converged centroids. Distances compute in
	// parallel; inertia accumulates sequentially in point order so the
	// float sum is reproducible at every worker count.
	res := &Result{Centroids: cents, Assign: assign, Sizes: make([]int, k)}
	dists := make([]float64, len(points))
	assignNearest(points, cents, params.Workers, res.Assign, dists)
	for i := range points {
		res.Sizes[res.Assign[i]]++
		res.Inertia += dists[i]
	}
	res.Iters = iters
	return res, nil
}

// assignNearest writes each point's nearest-centroid index into assign
// and its squared distance into dists (either may be nil), chunking the
// points across the worker pool. Writes are disjoint per point, so the
// result is independent of the worker count.
func assignNearest(points, cents []geom.Point, workers int, assign []int, dists []float64) {
	// Work hint: one distance computation per (point, centroid) pair.
	// Misclassified-exploitation clusterings over a handful of false
	// negatives run inline; full-dataset discovery clusterings still fan
	// out.
	par.ForWork(kernelAssign, workers, len(points), minAssignChunk, len(points)*len(cents), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			best, bestD := 0, math.Inf(1)
			for c, cent := range cents {
				if d := sqDist(points[i], cent); d < bestD {
					best, bestD = c, d
				}
			}
			if assign != nil {
				assign[i] = best
			}
			if dists != nil {
				dists[i] = bestD
			}
		}
	})
}

// seedPlusPlus picks initial centroids with the k-means++ strategy:
// subsequent centers are drawn with probability proportional to squared
// distance from the nearest existing center. Duplicated points cannot
// yield more centers than distinct values, so the returned slice may be
// shorter than k.
func seedPlusPlus(points []geom.Point, k int, rng *rand.Rand, workers int) []geom.Point {
	cents := []geom.Point{points[rng.Intn(len(points))].Clone()}
	dist := make([]float64, len(points))
	for len(cents) < k {
		// Distance-to-nearest-center is independent per point; the total
		// (which shapes the rng draw) accumulates sequentially in point
		// order to stay reproducible at every worker count. Work scales
		// with (point, center) pairs, so tiny inputs skip the pool.
		par.ForWork(kernelSeed, workers, len(points), minAssignChunk, len(points)*len(cents), func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				best := math.Inf(1)
				for _, c := range cents {
					if d := sqDist(points[i], c); d < best {
						best = d
					}
				}
				dist[i] = best
			}
		})
		var total float64
		for _, d := range dist {
			total += d
		}
		if total == 0 {
			break // fewer distinct points than k
		}
		pick := rng.Float64() * total
		idx := 0
		for i, w := range dist {
			pick -= w
			if pick <= 0 {
				idx = i
				break
			}
		}
		cents = append(cents, points[idx].Clone())
	}
	return cents
}

// farthestPoint returns the point with maximum distance to its nearest
// centroid.
func farthestPoint(points []geom.Point, cents []geom.Point) geom.Point {
	bestIdx, bestD := 0, -1.0
	for i, p := range points {
		near := math.Inf(1)
		for _, c := range cents {
			if d := sqDist(p, c); d < near {
				near = d
			}
		}
		if near > bestD {
			bestD = near
			bestIdx = i
		}
	}
	return points[bestIdx]
}

func sqDist(a, b geom.Point) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
