package kmeans

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"github.com/explore-by-example/aide/internal/geom"
)

// clusterPoints builds n points around nc Gaussian blobs in d dims.
func clusterPoints(n, d, nc int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	centers := make([]geom.Point, nc)
	for i := range centers {
		c := make(geom.Point, d)
		for j := range c {
			c[j] = rng.Float64() * 100
		}
		centers[i] = c
	}
	points := make([]geom.Point, n)
	for i := range points {
		c := centers[rng.Intn(nc)]
		p := make(geom.Point, d)
		for j := range p {
			p[j] = c[j] + rng.NormFloat64()*5
		}
		points[i] = p
	}
	return points
}

// TestClusterParallelEquivalence asserts bit-identical clustering across
// worker counts: same centroids, assignments, sizes, inertia, iterations.
func TestClusterParallelEquivalence(t *testing.T) {
	for _, tc := range []struct{ n, d, k int }{
		{100, 2, 3}, {1500, 2, 8}, {2000, 4, 16}, {50, 3, 60}, // k > distinct
	} {
		for seed := int64(1); seed <= 4; seed++ {
			points := clusterPoints(tc.n, tc.d, 5, seed)
			run := func(workers int) *Result {
				rng := rand.New(rand.NewSource(seed))
				res, err := Cluster(points, Params{K: tc.k, Workers: workers}, rng)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			seq := run(1)
			for _, workers := range []int{2, 8} {
				got := run(workers)
				if !reflect.DeepEqual(got.Assign, seq.Assign) {
					t.Fatalf("n=%d d=%d k=%d seed=%d workers=%d: assignments differ", tc.n, tc.d, tc.k, seed, workers)
				}
				if !reflect.DeepEqual(got.Centroids, seq.Centroids) {
					t.Fatalf("n=%d d=%d k=%d seed=%d workers=%d: centroids differ", tc.n, tc.d, tc.k, seed, workers)
				}
				if !reflect.DeepEqual(got.Sizes, seq.Sizes) {
					t.Fatalf("n=%d d=%d k=%d seed=%d workers=%d: sizes differ", tc.n, tc.d, tc.k, seed, workers)
				}
				if got.Inertia != seq.Inertia || got.Iters != seq.Iters {
					t.Fatalf("n=%d d=%d k=%d seed=%d workers=%d: inertia %v/%v iters %d/%d",
						tc.n, tc.d, tc.k, seed, workers, got.Inertia, seq.Inertia, got.Iters, seq.Iters)
				}
				if math.IsNaN(got.Inertia) {
					t.Fatal("NaN inertia")
				}
			}
		}
	}
}
