package kmeans

import (
	"context"
	"math/rand"
	"testing"

	"github.com/explore-by-example/aide/internal/geom"
)

func TestClusterCtxUncancelledMatchesCluster(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	points := make([]geom.Point, 500)
	for i := range points {
		points[i] = geom.Point{rng.Float64() * 100, rng.Float64() * 100}
	}
	a, err := Cluster(points, Params{K: 8}, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	b, err := ClusterCtx(ctx, points, Params{K: 8}, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if a.Inertia != b.Inertia || a.Iters != b.Iters {
		t.Fatalf("inertia/iters differ: (%v, %d) vs (%v, %d)", a.Inertia, a.Iters, b.Inertia, b.Iters)
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatalf("assignment %d differs", i)
		}
	}
}

func TestClusterCtxCancelled(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	points := make([]geom.Point, 100)
	for i := range points {
		points[i] = geom.Point{rng.Float64() * 100, rng.Float64() * 100}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ClusterCtx(ctx, points, Params{K: 4}, rand.New(rand.NewSource(5))); err == nil {
		t.Fatal("want error from cancelled ClusterCtx")
	}
}
