package kmeans

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/explore-by-example/aide/internal/geom"
)

// blobs generates n points around each of the given centers.
func blobs(centers []geom.Point, n int, std float64, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	var out []geom.Point
	for _, c := range centers {
		for i := 0; i < n; i++ {
			p := make(geom.Point, len(c))
			for j := range p {
				p[j] = c[j] + rng.NormFloat64()*std
			}
			out = append(out, p)
		}
	}
	return out
}

func TestClusterErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Cluster(nil, Params{K: 2}, rng); err == nil {
		t.Error("empty input should error")
	}
	if _, err := Cluster([]geom.Point{{1}}, Params{K: 0}, rng); err == nil {
		t.Error("K=0 should error")
	}
	if _, err := Cluster([]geom.Point{{1}, {1, 2}}, Params{K: 1}, rng); err == nil {
		t.Error("ragged points should error")
	}
}

func TestClusterSeparatesBlobs(t *testing.T) {
	centers := []geom.Point{{10, 10}, {90, 90}, {10, 90}}
	points := blobs(centers, 100, 2, 5)
	rng := rand.New(rand.NewSource(2))
	res, err := Cluster(points, Params{K: 3}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centroids) != 3 {
		t.Fatalf("centroids = %d", len(res.Centroids))
	}
	// Each true center should have a centroid within distance 3.
	for _, c := range centers {
		best := math.Inf(1)
		for _, got := range res.Centroids {
			if d := c.Dist(got); d < best {
				best = d
			}
		}
		if best > 3 {
			t.Errorf("no centroid near %v (closest %.2f away)", c, best)
		}
	}
	// All points in one blob share an assignment.
	for b := 0; b < 3; b++ {
		want := res.Assign[b*100]
		for i := b * 100; i < (b+1)*100; i++ {
			if res.Assign[i] != want {
				t.Errorf("blob %d split across clusters", b)
				break
			}
		}
	}
	if res.Sizes[res.Assign[0]] != 100 {
		t.Errorf("cluster size = %d, want 100", res.Sizes[res.Assign[0]])
	}
}

func TestClusterFewerDistinctPointsThanK(t *testing.T) {
	points := []geom.Point{{1, 1}, {1, 1}, {2, 2}}
	rng := rand.New(rand.NewSource(3))
	res, err := Cluster(points, Params{K: 5}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centroids) > 2 {
		t.Errorf("got %d centroids for 2 distinct points", len(res.Centroids))
	}
}

func TestClusterSinglePoint(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	res, err := Cluster([]geom.Point{{5, 5}}, Params{K: 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Centroids[0][0] != 5 || res.Inertia != 0 {
		t.Errorf("result = %+v", res)
	}
}

func TestMembersAndRadius(t *testing.T) {
	points := []geom.Point{{0, 0}, {2, 0}, {100, 100}}
	rng := rand.New(rand.NewSource(5))
	res, err := Cluster(points, Params{K: 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Find the cluster containing point 0.
	c := res.Assign[0]
	members := res.Members(c)
	if len(members) != 2 {
		t.Fatalf("members = %v", members)
	}
	// Centroid is (1,0); Chebyshev radius is 1.
	if r := res.Radius(points, c); math.Abs(r-1) > 1e-9 {
		t.Errorf("Radius = %v, want 1", r)
	}
}

func TestBoundingRect(t *testing.T) {
	points := []geom.Point{{10, 10}, {20, 30}, {90, 90}}
	rng := rand.New(rand.NewSource(6))
	res, err := Cluster(points, Params{K: 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Assign[0]
	bounds := geom.NewRect(2)
	box, ok := res.BoundingRect(points, c, 5, bounds)
	if !ok {
		t.Fatal("cluster should be non-empty")
	}
	want := geom.R(5, 25, 5, 35)
	if !box.Equal(want) {
		t.Errorf("BoundingRect = %v, want %v", box, want)
	}
	// Empty cluster id beyond range returns ok=false.
	if _, ok := res.BoundingRect(points, 99, 5, bounds); ok {
		t.Error("nonexistent cluster should return ok=false")
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	points := blobs([]geom.Point{{20, 20}, {80, 80}}, 50, 3, 7)
	a, err := Cluster(points, Params{K: 2}, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Cluster(points, Params{K: 2}, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("same seed produced different assignments")
		}
	}
}

func TestMaxItersRespected(t *testing.T) {
	points := blobs([]geom.Point{{20, 20}, {80, 80}}, 50, 3, 8)
	rng := rand.New(rand.NewSource(12))
	res, err := Cluster(points, Params{K: 2, MaxIters: 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters > 1 {
		t.Errorf("Iters = %d, want <= 1", res.Iters)
	}
}

// Property: every point is assigned to its nearest centroid, and inertia
// equals the sum of squared nearest distances.
func TestQuickAssignmentOptimality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(60)
		d := 1 + rng.Intn(3)
		points := make([]geom.Point, n)
		for i := range points {
			p := make(geom.Point, d)
			for j := range p {
				p[j] = rng.Float64() * 100
			}
			points[i] = p
		}
		k := 1 + rng.Intn(4)
		res, err := Cluster(points, Params{K: k}, rng)
		if err != nil {
			return false
		}
		var wantInertia float64
		for i, p := range points {
			best, bestD := -1, math.Inf(1)
			for c, cent := range res.Centroids {
				if dist := sqDist(p, cent); dist < bestD {
					best, bestD = c, dist
				}
			}
			if sqDist(p, res.Centroids[res.Assign[i]]) > bestD+1e-9 {
				return false
			}
			_ = best
			wantInertia += bestD
		}
		return math.Abs(res.Inertia-wantInertia) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: sizes sum to the number of points and match Assign.
func TestQuickSizesConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(50)
		points := make([]geom.Point, n)
		for i := range points {
			points[i] = geom.Point{rng.Float64() * 100, rng.Float64() * 100}
		}
		res, err := Cluster(points, Params{K: 1 + rng.Intn(5)}, rng)
		if err != nil {
			return false
		}
		counts := make([]int, len(res.Centroids))
		total := 0
		for _, a := range res.Assign {
			if a < 0 || a >= len(res.Centroids) {
				return false
			}
			counts[a]++
		}
		for c, got := range res.Sizes {
			if got != counts[c] {
				return false
			}
			total += got
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestParamsValidate(t *testing.T) {
	bad := []Params{
		{K: -1},
		{K: 2, MaxIters: -1},
		{K: 2, Tol: -1},
		{K: 2, Tol: math.NaN()},
		{K: 2, Tol: math.Inf(1)},
		{K: 2, Workers: -1},
	}
	points := []geom.Point{{1, 1}, {2, 2}, {3, 3}}
	for _, p := range bad {
		if err := p.Validate(); !errors.Is(err, ErrBadParams) {
			t.Errorf("params %+v: Validate = %v, want ErrBadParams", p, err)
		}
		if _, err := Cluster(points, p, rand.New(rand.NewSource(1))); !errors.Is(err, ErrBadParams) {
			t.Errorf("Cluster with %+v: err = %v, want ErrBadParams", p, err)
		}
	}
	// Zero MaxIters/Tol keep their documented defaults.
	if err := (Params{K: 2}).Validate(); err != nil {
		t.Errorf("zero-default params rejected: %v", err)
	}
	if _, err := Cluster(points, Params{K: 2}, rand.New(rand.NewSource(1))); err != nil {
		t.Errorf("default params failed: %v", err)
	}
}
