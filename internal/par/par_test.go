package par

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestChunkCount(t *testing.T) {
	cases := []struct {
		workers, n, minChunk, want int
	}{
		{1, 100, 1, 1},
		{4, 100, 1, 4},
		{4, 3, 1, 3},     // never more chunks than items
		{4, 0, 1, 0},     // empty range
		{4, -5, 1, 0},    // negative range
		{8, 100, 50, 2},  // minChunk bounds chunk count
		{8, 100, 200, 1}, // range smaller than one chunk
		{8, 100, 0, 8},   // minChunk <= 0 treated as 1
	}
	for _, c := range cases {
		if got := ChunkCount(c.workers, c.n, c.minChunk); got != c.want {
			t.Errorf("ChunkCount(%d, %d, %d) = %d, want %d", c.workers, c.n, c.minChunk, got, c.want)
		}
	}
}

func TestChunkBoundsCoverExactly(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 64, 1000, 1001} {
		for chunks := 1; chunks <= 9 && chunks <= n; chunks++ {
			prev := 0
			for c := 0; c < chunks; c++ {
				lo, hi := chunkBounds(c, chunks, n)
				if lo != prev {
					t.Fatalf("n=%d chunks=%d chunk %d: lo=%d want %d", n, chunks, c, lo, prev)
				}
				if hi <= lo {
					t.Fatalf("n=%d chunks=%d chunk %d: empty range [%d,%d)", n, chunks, c, lo, hi)
				}
				prev = hi
			}
			if prev != n {
				t.Fatalf("n=%d chunks=%d: covered %d items", n, chunks, prev)
			}
		}
	}
}

func TestForVisitsEachItemOnce(t *testing.T) {
	k := NewKernel("test.for_once")
	for _, workers := range []int{1, 2, 4, 16} {
		const n = 1000
		var visits [n]atomic.Int32
		For(k, workers, n, 1, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				visits[i].Add(1)
			}
		})
		for i := range visits {
			if got := visits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: item %d visited %d times", workers, i, got)
			}
		}
	}
}

func TestForSequentialRunsInCaller(t *testing.T) {
	// workers == 1 must be a plain loop in the calling goroutine:
	// chunk index 0, full range, no concurrency.
	k := NewKernel("test.seq")
	calls := 0
	For(k, 1, 50, 1, func(chunk, lo, hi int) {
		calls++
		if chunk != 0 || lo != 0 || hi != 50 {
			t.Fatalf("sequential call got (chunk=%d, lo=%d, hi=%d)", chunk, lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("sequential For made %d calls, want 1", calls)
	}
}

func TestMapOrderedMerge(t *testing.T) {
	k := NewKernel("test.map")
	for _, workers := range []int{1, 3, 8} {
		got := Map(k, workers, 100, 1, func(chunk, lo, hi int) string {
			return fmt.Sprintf("%d:[%d,%d)", chunk, lo, hi)
		})
		if len(got) != ChunkCount(workers, 100, 1) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), ChunkCount(workers, 100, 1))
		}
		prev := 0
		for c, s := range got {
			var chunk, lo, hi int
			if _, err := fmt.Sscanf(s, "%d:[%d,%d)", &chunk, &lo, &hi); err != nil {
				t.Fatal(err)
			}
			if chunk != c || lo != prev {
				t.Fatalf("workers=%d: result %d out of order: %s", workers, c, s)
			}
			prev = hi
		}
		if prev != 100 {
			t.Fatalf("workers=%d: results cover %d items", workers, prev)
		}
	}
}

func TestMapDeterministicAcrossWorkerCounts(t *testing.T) {
	k := NewKernel("test.det")
	sum := func(workers int) int {
		parts := Map(k, workers, 10_000, 1, func(_, lo, hi int) int {
			s := 0
			for i := lo; i < hi; i++ {
				s += i * i
			}
			return s
		})
		total := 0
		for _, p := range parts {
			total += p
		}
		return total
	}
	want := sum(1)
	for _, workers := range []int{2, 3, 8, 32} {
		if got := sum(workers); got != want {
			t.Fatalf("workers=%d: sum %d, want %d", workers, got, want)
		}
	}
}

func TestForPanicPropagation(t *testing.T) {
	k := NewKernel("test.panic")
	for _, workers := range []int{1, 8} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: panic not propagated", workers)
				}
				if s, ok := r.(string); !ok || s != "boom" {
					t.Fatalf("workers=%d: recovered %v", workers, r)
				}
			}()
			For(k, workers, 100, 1, func(_, lo, hi int) {
				for i := lo; i < hi; i++ {
					if i == 37 {
						panic("boom")
					}
				}
			})
		}()
	}
}

// TestForFromPoolWorkers hammers the kernel from more independent caller
// goroutines than the pool has workers; the bounded queue must fall back
// to inline execution rather than deadlock, and every invocation must
// still complete. (True nesting — For inside a For chunk — is covered by
// TestForNested.)
func TestForFromPoolWorkers(t *testing.T) {
	k := NewKernel("test.saturate")
	const callers = 64
	var wg sync.WaitGroup
	var total atomic.Int64
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			For(k, 8, 512, 1, func(_, lo, hi int) {
				total.Add(int64(hi - lo))
			})
		}()
	}
	wg.Wait()
	if got := total.Load(); got != callers*512 {
		t.Fatalf("items processed = %d, want %d", got, callers*512)
	}
}

// TestForNested calls For from inside another For's chunk callbacks at
// workers > 1 — the reentrancy shape the package doc guarantees is
// deadlock-free. With a parking wait this hangs once every pool worker
// is blocked in an inner wait; the help-drain wait must keep the queue
// moving. A watchdog fails fast instead of tripping the go test timeout.
func TestForNested(t *testing.T) {
	outer := NewKernel("test.nested_outer")
	inner := NewKernel("test.nested_inner")
	finished := make(chan int64)
	go func() {
		var total atomic.Int64
		// More outer chunks than pool workers, each blocking on an inner
		// parallel call — the repro that deadlocked a bare wg.Wait().
		For(outer, 16, 64, 1, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				For(inner, 8, 512, 1, func(_, ilo, ihi int) {
					total.Add(int64(ihi - ilo))
				})
			}
		})
		finished <- total.Load()
	}()
	select {
	case got := <-finished:
		if want := int64(64 * 512); got != want {
			t.Fatalf("nested For processed %d items, want %d", got, want)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("nested For deadlocked (30s watchdog)")
	}
}

// TestForNestedDeep drives three levels of nesting concurrently from
// several callers, the worst case for pool-worker starvation.
func TestForNestedDeep(t *testing.T) {
	k := NewKernel("test.nested_deep")
	finished := make(chan int64)
	go func() {
		var total atomic.Int64
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				For(k, 8, 8, 1, func(_, lo, hi int) {
					for i := lo; i < hi; i++ {
						For(k, 8, 8, 1, func(_, mlo, mhi int) {
							for j := mlo; j < mhi; j++ {
								For(k, 8, 64, 1, func(_, ilo, ihi int) {
									total.Add(int64(ihi - ilo))
								})
							}
						})
					}
				})
			}()
		}
		wg.Wait()
		finished <- total.Load()
	}()
	select {
	case got := <-finished:
		if want := int64(4 * 8 * 8 * 64); got != want {
			t.Fatalf("deep nested For processed %d items, want %d", got, want)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("deep nested For deadlocked (30s watchdog)")
	}
}

// TestForNestedPanic checks that a panic raised inside an inner For
// surfaces through the outer call even while waits are help-draining
// other callers' tasks.
func TestForNestedPanic(t *testing.T) {
	outer := NewKernel("test.nested_panic_outer")
	inner := NewKernel("test.nested_panic_inner")
	defer func() {
		if r := recover(); r != "inner boom" {
			t.Fatalf("recovered %v, want inner boom", r)
		}
	}()
	For(outer, 8, 16, 1, func(_, lo, hi int) {
		For(inner, 8, 128, 1, func(_, ilo, ihi int) {
			for i := ilo; i < ihi; i++ {
				if i == 77 {
					panic("inner boom")
				}
			}
		})
	})
}

func TestResolve(t *testing.T) {
	if got := Resolve(3); got != 3 {
		t.Fatalf("Resolve(3) = %d", got)
	}
	if got := Resolve(0); got != Workers() {
		t.Fatalf("Resolve(0) = %d, want Workers() = %d", got, Workers())
	}
	if got := Resolve(-1); got != Workers() {
		t.Fatalf("Resolve(-1) = %d, want Workers() = %d", got, Workers())
	}
	if Workers() < 1 {
		t.Fatalf("Workers() = %d", Workers())
	}
}
