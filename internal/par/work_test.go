package par

import (
	"sync/atomic"
	"testing"
)

// Sub-threshold work hints must run the whole range inline as one chunk,
// and above-threshold hints must behave exactly like For.
func TestForWorkInlineBelowThreshold(t *testing.T) {
	k := NewKernel("test_forwork_seq")
	var calls atomic.Int32
	seen := make([]bool, 100)
	ForWork(k, 8, len(seen), 1, MinParallelWork()-1, func(chunk, lo, hi int) {
		calls.Add(1)
		if chunk != 0 || lo != 0 || hi != len(seen) {
			t.Errorf("sub-threshold chunk = (%d,%d,%d), want (0,0,%d)", chunk, lo, hi, len(seen))
		}
		for i := lo; i < hi; i++ {
			seen[i] = true
		}
	})
	if calls.Load() != 1 {
		t.Fatalf("sub-threshold ForWork ran %d chunks, want 1", calls.Load())
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("item %d not visited", i)
		}
	}
}

func TestForWorkParallelAboveThreshold(t *testing.T) {
	k := NewKernel("test_forwork_par")
	n := 100
	var visited atomic.Int64
	chunks := ChunkCount(4, n, 1)
	var maxChunk atomic.Int32
	ForWork(k, 4, n, 1, MinParallelWork(), func(chunk, lo, hi int) {
		visited.Add(int64(hi - lo))
		for {
			cur := maxChunk.Load()
			if int32(chunk) <= cur || maxChunk.CompareAndSwap(cur, int32(chunk)) {
				break
			}
		}
	})
	if visited.Load() != int64(n) {
		t.Fatalf("visited %d items, want %d", visited.Load(), n)
	}
	if got := int(maxChunk.Load()); got != chunks-1 {
		t.Fatalf("max chunk index %d, want %d (same chunking as For)", got, chunks-1)
	}
}

func TestForWorkEmptyRange(t *testing.T) {
	k := NewKernel("test_forwork_empty")
	called := false
	ForWork(k, 4, 0, 1, 0, func(chunk, lo, hi int) { called = true })
	if called {
		t.Fatal("fn called for empty range")
	}
}

func TestMapWorkMatchesMap(t *testing.T) {
	k := NewKernel("test_mapwork")
	n := 64
	sum := func(chunk, lo, hi int) int {
		s := 0
		for i := lo; i < hi; i++ {
			s += i
		}
		return s
	}
	reduce := func(parts []int) int {
		total := 0
		for _, p := range parts {
			total += p
		}
		return total
	}
	want := reduce(Map(k, 4, n, 1, sum))
	if got := reduce(MapWork(k, 4, n, 1, 0, sum)); got != want {
		t.Fatalf("sub-threshold MapWork total = %d, want %d", got, want)
	}
	if parts := MapWork(k, 4, n, 1, 0, sum); len(parts) != 1 {
		t.Fatalf("sub-threshold MapWork returned %d chunks, want 1", len(parts))
	}
	if got := reduce(MapWork(k, 4, n, 1, MinParallelWork(), sum)); got != want {
		t.Fatalf("above-threshold MapWork total = %d, want %d", got, want)
	}
	if got := MapWork(k, 4, 0, 1, 1<<30, sum); got != nil {
		t.Fatalf("MapWork over empty range = %v, want nil", got)
	}
}
