package par

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestDomainScatterRunsAll(t *testing.T) {
	d := NewDomain("test.scatter", 2)
	var hits [17]atomic.Int32
	d.Scatter(len(hits), func(i int) { hits[i].Add(1) })
	for i := range hits {
		if hits[i].Load() != 1 {
			t.Fatalf("index %d ran %d times", i, hits[i].Load())
		}
	}
	// n == 1 runs inline, n == 0 is a no-op.
	ran := false
	d.Scatter(1, func(int) { ran = true })
	if !ran {
		t.Fatal("Scatter(1) did not run")
	}
	d.Scatter(0, func(int) { t.Error("Scatter(0) ran") })
}

func TestDomainScatterPropagatesPanic(t *testing.T) {
	d := NewDomain("test.panic", 2)
	defer func() {
		if recover() == nil {
			t.Fatal("panic did not propagate")
		}
	}()
	d.Scatter(4, func(i int) {
		if i == 2 {
			panic("boom")
		}
	})
}

func TestDomainGoBoundsConcurrency(t *testing.T) {
	const size = 3
	d := NewDomain("test.bound", size)
	var cur, peak atomic.Int32
	var wg sync.WaitGroup
	wg.Add(20)
	for i := 0; i < 20; i++ {
		d.Go(func() {
			defer wg.Done()
			n := cur.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
		})
	}
	wg.Wait()
	if p := peak.Load(); p > size {
		t.Fatalf("peak concurrency %d exceeds domain size %d", p, size)
	}
}

func TestDomainGoOutlivesScatter(t *testing.T) {
	// A Go launched from inside a Scatter body must not deadlock the
	// scatter (hedged attempts outlive their shard's wait).
	d := NewDomain("test.detach", 1)
	done := make(chan struct{})
	d.Scatter(2, func(i int) {
		if i == 0 {
			d.Go(func() { close(done) })
		}
	})
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("detached Go never ran")
	}
}
