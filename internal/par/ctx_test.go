package par

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"github.com/explore-by-example/aide/internal/obs"
)

var ctxKernel = NewKernel("test.ctx")

func TestForCtxUncancelledMatchesFor(t *testing.T) {
	const n = 1000
	want := make([]int32, n)
	For(ctxKernel, 8, n, 1, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			want[i] = int32(i * 3)
		}
	})
	got := make([]int32, n)
	if err := ForCtx(context.Background(), ctxKernel, 8, n, 1, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			got[i] = int32(i * 3)
		}
	}); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("item %d: For=%d ForCtx=%d", i, want[i], got[i])
		}
	}
}

func TestForCtxNilContext(t *testing.T) {
	ran := false
	if err := ForCtx(nil, ctxKernel, 1, 4, 1, func(_, lo, hi int) { ran = true }); err != nil { //nolint:staticcheck
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("nil ctx should behave like Background")
	}
}

func TestForCtxPreCancelledRunsNothing(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	before := obs.GetCounter("aide_cancellations_total").Value()
	var ran atomic.Int32
	err := ForCtx(ctx, ctxKernel, 8, 1000, 1, func(_, lo, hi int) { ran.Add(1) })
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("%d chunks ran under a pre-cancelled ctx", ran.Load())
	}
	if after := obs.GetCounter("aide_cancellations_total").Value(); after <= before {
		t.Error("cancellation counter did not increase")
	}
}

func TestForCtxStopsSchedulingAfterCancel(t *testing.T) {
	// The first chunk to run cancels the context; with many more chunks
	// than workers, most chunks must never start. In-flight chunks always
	// finish, so every chunk that did run completed fully.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const n, minChunk = 4096, 1
	chunks := ChunkCount(64, n, minChunk)
	if chunks < 8 {
		t.Skipf("need >= 8 chunks to observe skipping, got %d", chunks)
	}
	var started atomic.Int32
	var completed atomic.Int32
	err := ForCtx(ctx, ctxKernel, 64, n, minChunk, func(_, lo, hi int) {
		started.Add(1)
		cancel()
		time.Sleep(time.Millisecond)
		completed.Add(1)
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if started.Load() == int32(chunks) {
		t.Errorf("all %d chunks started despite cancellation", chunks)
	}
	if started.Load() != completed.Load() {
		t.Errorf("started %d != completed %d: an in-flight chunk was torn",
			started.Load(), completed.Load())
	}
}

func TestMapCtxCancelledReturnsError(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := MapCtx(ctx, ctxKernel, 8, 100, 1, func(_, lo, hi int) int { return hi - lo })
	if err == nil {
		t.Fatal("want error from cancelled MapCtx")
	}
	_ = out // partial results are garbage by contract
}

func TestMapCtxUncancelledMatchesMap(t *testing.T) {
	sum := func(parts []int) int {
		s := 0
		for _, p := range parts {
			s += p
		}
		return s
	}
	plain := Map(ctxKernel, 8, 777, 1, func(_, lo, hi int) int { return hi - lo })
	withCtx, err := MapCtx(context.Background(), ctxKernel, 8, 777, 1, func(_, lo, hi int) int { return hi - lo })
	if err != nil {
		t.Fatal(err)
	}
	if sum(plain) != 777 || sum(withCtx) != 777 {
		t.Fatalf("sums: Map=%d MapCtx=%d, want 777", sum(plain), sum(withCtx))
	}
	if len(plain) != len(withCtx) {
		t.Fatalf("chunk counts differ: %d vs %d", len(plain), len(withCtx))
	}
}

func TestForCtxSequentialPathIgnoresLateCancel(t *testing.T) {
	// One-chunk calls run inline; cancellation is only checked up front,
	// so a never-cancelled ctx must not change behavior.
	ran := false
	if err := ForCtx(context.Background(), ctxKernel, 1, 10, 1, func(_, lo, hi int) {
		if lo != 0 || hi != 10 {
			t.Errorf("bounds = [%d, %d)", lo, hi)
		}
		ran = true
	}); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("sequential path did not run")
	}
}
