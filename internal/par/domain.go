package par

import (
	"sync"

	"github.com/explore-by-example/aide/internal/obs"
)

// Domain is a named goroutine domain for scatter-gather fan-out that
// must stay off the shared worker pool. The pool's help-draining For
// loops assume every queued task finishes promptly; shard attempts
// under injected latency or per-shard deadlines can outlive their
// caller, so running them on pool workers would starve unrelated
// scans. A Domain gives that work its own goroutines: Scatter fans a
// small known width (one goroutine per shard), Go launches bounded
// detached attempts (hedges, probes) that may outlive the scatter.
//
// Observability: par_domain_active{domain} gauges the live goroutine
// count and par_domain_launched{domain} counts launches.
type Domain struct {
	name     string
	sem      chan struct{}
	active   *obs.Gauge
	launched *obs.Counter
}

// NewDomain creates a domain whose Go calls are bounded to size
// concurrent goroutines (size < 1 is raised to 1). Scatter width is
// not bounded by size — its callers fan out a fixed shard count — so
// a Go issued from inside a Scatter body can never deadlock against
// the scatter itself.
func NewDomain(name string, size int) *Domain {
	if size < 1 {
		size = 1
	}
	return &Domain{
		name:     name,
		sem:      make(chan struct{}, size),
		active:   obs.GetGaugeVec("par_domain_active", "domain").With(name),
		launched: obs.GetCounterVec("par_domain_launched", "domain").With(name),
	}
}

// Name returns the domain's name.
func (d *Domain) Name() string { return d.name }

// Size returns the Go concurrency bound.
func (d *Domain) Size() int { return cap(d.sem) }

// Go runs fn on its own goroutine, blocking the caller until a domain
// slot is free. The goroutine is detached: Go returns as soon as fn is
// launched, and fn must install its own recover — a panic that escapes
// fn crashes the process, exactly like any unattended goroutine.
func (d *Domain) Go(fn func()) {
	d.sem <- struct{}{}
	d.launched.Inc()
	d.active.Add(1)
	go func() {
		defer func() {
			d.active.Add(-1)
			<-d.sem
		}()
		fn()
	}()
}

// Scatter runs fn(0) … fn(n-1) concurrently, one goroutine each, and
// waits for all of them. It is the per-operation shard fan-out: n is a
// shard count, small and fixed, so the width is not drawn from the Go
// slot budget. The first panic raised by any fn is re-raised on the
// caller after every goroutine finishes; n <= 1 runs inline.
func (d *Domain) Scatter(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if n == 1 {
		fn(0)
		return
	}
	var wg sync.WaitGroup
	var panicOnce sync.Once
	var panicVal any
	d.launched.Add(int64(n))
	d.active.Add(float64(n))
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicVal = r })
				}
				d.active.Add(-1)
				wg.Done()
			}()
			fn(i)
		}(i)
	}
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
}
