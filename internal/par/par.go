// Package par is the parallel-execution kernel behind AIDE's hot paths:
// CART split search, grid-index scans, view index construction and
// k-means assignment. It provides a bounded process-wide worker pool
// (sized from GOMAXPROCS, overridable with AIDE_WORKERS) plus chunked
// For/Map helpers whose results are merged in deterministic chunk order,
// so every caller produces output independent of the worker count.
//
// Design rules the package enforces:
//
//   - Determinism: work over [0,n) is split into contiguous chunks whose
//     boundaries depend only on (n, workers, minChunk); Map returns
//     per-chunk results in chunk order, so a sequential left-to-right
//     reduce is reproducible bit-for-bit at any worker count.
//   - Sequential escape hatch: workers == 1 (or a range too small to
//     chunk) runs entirely in the caller's goroutine — no channels, no
//     goroutines, identical to a plain loop.
//   - No deadlocks under saturation or nesting: the pool's queue is
//     bounded and submission never blocks (a full queue runs the chunk
//     inline in the submitting goroutine), and a caller waiting for its
//     outstanding chunks helps drain the pool's queue instead of
//     parking. A pool worker blocked inside a nested For therefore
//     keeps executing queued tasks, so kernels may be invoked from pool
//     workers — including For within a For chunk — without risk.
//   - Panic propagation: a panic in any chunk is captured and re-raised
//     in the caller after all chunks finish.
//   - Cooperative cancellation: ForCtx/MapCtx stop scheduling new chunks
//     once their context is cancelled (in-flight chunks finish, skipped
//     chunks never run) and return ctx.Err(); each abandoned call bumps
//     the aide_cancellations_total counter. Results are identical to the
//     ctx-free variants whenever the context is never cancelled.
//
// Utilization is reported through the internal/obs registry: a
// "par.workers" gauge (pool size), a "par.queue_depth" gauge sampled at
// submission (pool saturation), process-wide "par.tasks" /
// "par.inline_runs" counters, and per-kernel task counters
// ("par.kernel.<name>.tasks", "par.kernel.<name>.seq_runs").
package par

import (
	"context"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"github.com/explore-by-example/aide/internal/obs"
)

var (
	obsWorkers    = obs.GetGauge("par.workers")
	obsQueueDepth = obs.GetGauge("par.queue_depth")
	obsTasks      = obs.GetCounter("par.tasks")
	obsInlineRuns = obs.GetCounter("par.inline_runs")

	// par_pool{state="queued"|"running"} is the labeled pool-occupancy
	// pair: queued is sampled at submission and drain, running is
	// maintained by the executors. Two atomics per chunk — chunks are
	// coarse, so this stays off the per-item hot path.
	obsPoolQueued  = obs.GetGaugeVec("par_pool", "state").With("queued")
	obsPoolRunning = obs.GetGaugeVec("par_pool", "state").With("running")
	// obsCancellations counts For/Map calls abandoned by context
	// cancellation — the process-wide signal that deadlines and client
	// disconnects actually stop parallel work.
	obsCancellations = obs.GetCounter("aide_cancellations_total")
)

// Workers returns the effective default worker count: the AIDE_WORKERS
// environment variable when set to a positive integer, else GOMAXPROCS.
// A worker count of 1 forces every kernel onto the sequential path.
func Workers() int { return defaultWorkers() }

var defaultWorkers = sync.OnceValue(func() int {
	if s := os.Getenv("AIDE_WORKERS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n >= 1 {
			return n
		}
	}
	return runtime.GOMAXPROCS(0)
})

// Resolve maps a caller-facing worker knob to an effective count:
// values <= 0 mean "automatic" (Workers()), anything else is taken
// literally.
func Resolve(n int) int {
	if n <= 0 {
		return Workers()
	}
	return n
}

// DefaultMinParallelWork is the work-hint threshold below which ForWork
// and MapWork run sequentially in the caller's goroutine. "Work" is a
// caller-chosen proxy for total cost (typically items × a per-item cost
// factor); 8192 covers the regime where chunk scheduling and the
// help-drain wait cost more than the loop body itself — e.g. the
// per-dimension Gini sweeps at deep CART nodes, whose tiny index slices
// made the chunked path a net slowdown.
const DefaultMinParallelWork = 1 << 13

// MinParallelWork returns the effective sequential-below threshold for
// ForWork/MapWork: the AIDE_MIN_PARALLEL environment variable when set
// to a non-negative integer (0 disables the gate), else
// DefaultMinParallelWork.
func MinParallelWork() int { return minParallelWork() }

var minParallelWork = sync.OnceValue(func() int {
	if s := os.Getenv("AIDE_MIN_PARALLEL"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n >= 0 {
			return n
		}
	}
	return DefaultMinParallelWork
})

// Kernel identifies one parallelized hot path; it carries the per-kernel
// obs counters so scheduling cost on the hot path stays two atomic adds.
type Kernel struct {
	name    string
	tasks   *obs.Counter // chunks dispatched to the pool
	seqRuns *obs.Counter // invocations that ran fully sequentially
}

// NewKernel registers (or reuses) the named kernel's counters. Call once
// at package init of the instrumented package.
func NewKernel(name string) *Kernel {
	return &Kernel{
		name:    name,
		tasks:   obs.GetCounter("par.kernel." + name + ".tasks"),
		seqRuns: obs.GetCounter("par.kernel." + name + ".seq_runs"),
	}
}

// ChunkCount returns the number of chunks For and Map will use for a
// range of n items at the given worker knob: at most Resolve(workers)
// chunks, and never so many that a chunk holds fewer than minChunk items
// (minChunk <= 0 is treated as 1). n <= 0 yields 0.
func ChunkCount(workers, n, minChunk int) int {
	if n <= 0 {
		return 0
	}
	if minChunk < 1 {
		minChunk = 1
	}
	c := Resolve(workers)
	if max := n / minChunk; c > max {
		c = max
	}
	if c < 1 {
		c = 1
	}
	return c
}

// chunkBounds returns the half-open [lo, hi) item range of chunk c out
// of chunks over n items: contiguous, near-equal, deterministic.
func chunkBounds(c, chunks, n int) (int, int) {
	base, rem := n/chunks, n%chunks
	lo := c*base + min(c, rem)
	hi := lo + base
	if c < rem {
		hi++
	}
	return lo, hi
}

// For runs fn over [0, n) split into ChunkCount(workers, n, minChunk)
// contiguous chunks. fn receives the dense chunk index (usable to pick a
// per-chunk scratch buffer — each index runs exactly once per call) and
// its half-open item range. With one chunk, fn runs in the caller's
// goroutine. A panic in any chunk is re-raised in the caller after all
// chunks complete.
func For(k *Kernel, workers, n, minChunk int, fn func(chunk, lo, hi int)) {
	_ = ForCtx(context.Background(), k, workers, n, minChunk, fn)
}

// ForCtx is For with cooperative cancellation: once ctx is cancelled no
// further chunks are scheduled (in-flight chunks run to completion, so
// fn never observes a torn chunk) and ForCtx returns ctx.Err(). A nil or
// never-cancelled ctx makes ForCtx identical to For — chunk boundaries,
// execution and results are bit-for-bit the same — so cancellation
// support costs nothing when unused. Chunks skipped by cancellation
// never run; callers must treat any partial effects of fn as garbage
// when an error is returned.
func ForCtx(ctx context.Context, k *Kernel, workers, n, minChunk int, fn func(chunk, lo, hi int)) error {
	if ctx == nil {
		ctx = context.Background()
	}
	chunks := ChunkCount(workers, n, minChunk)
	if chunks == 0 {
		return ctx.Err()
	}
	if err := ctx.Err(); err != nil {
		obsCancellations.Inc()
		return err
	}
	if chunks == 1 {
		k.seqRuns.Inc()
		fn(0, 0, n)
		return nil
	}
	var pending atomic.Int32
	done := make(chan struct{})
	var panicMu sync.Mutex
	var panicVal any
	panicked := false
	pending.Store(int32(chunks))
	run := func(c, lo, hi int) {
		obsPoolRunning.Add(1)
		defer func() {
			obsPoolRunning.Add(-1)
			if r := recover(); r != nil {
				panicMu.Lock()
				if !panicked {
					panicked = true
					panicVal = r
				}
				panicMu.Unlock()
			}
			if pending.Add(-1) == 0 {
				close(done)
			}
		}()
		fn(c, lo, hi)
	}
	k.tasks.Add(int64(chunks))
	obsTasks.Add(int64(chunks))
	// The last chunk always runs in the caller: it saves one handoff and
	// guarantees progress even if every pool worker is busy. Cancellation
	// is checked once per chunk before scheduling — the "one chunk
	// boundary" latency bound on abandoning a scan.
	cancelled := false
	for c := 0; c < chunks-1; c++ {
		if ctx.Err() != nil {
			// Skip every not-yet-scheduled chunk (including the
			// caller-run last one); in-flight chunks drain below.
			if pending.Add(-int32(chunks-c)) == 0 {
				close(done)
			}
			cancelled = true
			break
		}
		lo, hi := chunkBounds(c, chunks, n)
		c := c
		if !pool.trySubmit(func() { run(c, lo, hi) }) {
			obsInlineRuns.Inc()
			run(c, lo, hi)
		}
	}
	if !cancelled {
		if ctx.Err() != nil {
			if pending.Add(-1) == 0 {
				close(done)
			}
			cancelled = true
		} else {
			lo, hi := chunkBounds(chunks-1, chunks, n)
			run(chunks-1, lo, hi)
		}
	}
	// Help-drain wait: while our chunks are outstanding, execute queued
	// pool tasks instead of parking. This is what makes nesting
	// deadlock-free — a pool worker blocked here on an inner For still
	// drains the queue, so queued chunks (ours or anyone's) always find
	// an executor. Every queued task is a run closure with its own
	// recover, so stolen panics stay with their own For call.
	for {
		select {
		case <-done:
			if panicked {
				panic(panicVal)
			}
			if cancelled {
				obsCancellations.Inc()
				return ctx.Err()
			}
			return nil
		default:
		}
		select {
		case <-done:
			if panicked {
				panic(panicVal)
			}
			if cancelled {
				obsCancellations.Inc()
				return ctx.Err()
			}
			return nil
		case task := <-pool.tasks:
			obsPoolQueued.Set(float64(len(pool.tasks)))
			task()
		}
	}
}

// ForWork is For with an explicit work hint: when work — a caller-chosen
// estimate of the call's total cost, typically items × a per-item cost
// factor — is below MinParallelWork(), the whole range runs sequentially
// in the caller's goroutine, exactly like workers == 1. Because every
// kernel is bit-identical at any worker count by construction, gating on
// the hint changes scheduling only, never results. Use it for kernels
// invoked across a huge dynamic range of input sizes (CART split search,
// k-means assignment) where sub-threshold calls would pay more in chunk
// handoff than they save.
func ForWork(k *Kernel, workers, n, minChunk, work int, fn func(chunk, lo, hi int)) {
	if work < MinParallelWork() {
		if n <= 0 {
			return
		}
		k.seqRuns.Inc()
		fn(0, 0, n)
		return
	}
	For(k, workers, n, minChunk, fn)
}

// MapWork is Map with the same work-hint gate as ForWork: sub-threshold
// calls return a single-chunk result computed inline, identical to the
// workers == 1 path.
func MapWork[T any](k *Kernel, workers, n, minChunk, work int, fn func(chunk, lo, hi int) T) []T {
	if work < MinParallelWork() {
		if n <= 0 {
			return nil
		}
		k.seqRuns.Inc()
		return []T{fn(0, 0, n)}
	}
	return Map(k, workers, n, minChunk, fn)
}

// Map runs fn over [0, n) like For and returns the per-chunk results in
// chunk order, the deterministic input to an ordered reduce.
func Map[T any](k *Kernel, workers, n, minChunk int, fn func(chunk, lo, hi int) T) []T {
	out, _ := MapCtx(context.Background(), k, workers, n, minChunk, fn)
	return out
}

// MapCtx is Map with cooperative cancellation (see ForCtx). On
// cancellation the returned slice still has one slot per chunk but slots
// of skipped chunks hold zero values — callers must discard it when the
// error is non-nil.
func MapCtx[T any](ctx context.Context, k *Kernel, workers, n, minChunk int, fn func(chunk, lo, hi int) T) ([]T, error) {
	chunks := ChunkCount(workers, n, minChunk)
	if chunks == 0 {
		return nil, nil
	}
	out := make([]T, chunks)
	err := ForCtx(ctx, k, workers, n, minChunk, func(chunk, lo, hi int) {
		out[chunk] = fn(chunk, lo, hi)
	})
	return out, err
}

// workerPool is the process-wide bounded pool. Workers start lazily on
// first submission and live for the process lifetime; the task queue is
// bounded so saturation falls back to inline execution instead of
// unbounded buffering.
type workerPool struct {
	once  sync.Once
	tasks chan func()
}

var pool workerPool

func (p *workerPool) start() {
	// Size from the effective worker knob, not just GOMAXPROCS, so
	// AIDE_WORKERS above GOMAXPROCS actually adds pool capacity and the
	// "par.workers" gauge reports the setting callers see.
	size := runtime.GOMAXPROCS(0)
	if w := Workers(); w > size {
		size = w
	}
	obsWorkers.Set(float64(size))
	p.tasks = make(chan func(), 4*size)
	for i := 0; i < size; i++ {
		go func() {
			for fn := range p.tasks {
				obsPoolQueued.Set(float64(len(p.tasks)))
				fn()
			}
		}()
	}
}

// trySubmit enqueues fn without blocking; false means the queue is full
// and the caller must run fn itself.
func (p *workerPool) trySubmit(fn func()) bool {
	p.once.Do(p.start)
	select {
	case p.tasks <- fn:
		depth := float64(len(p.tasks))
		obsQueueDepth.Set(depth)
		obsPoolQueued.Set(depth)
		return true
	default:
		return false
	}
}
