package viz

import (
	"strings"
	"testing"

	"github.com/explore-by-example/aide/internal/geom"
)

func TestNewCanvasValidation(t *testing.T) {
	if _, err := NewCanvas(1, 10, 0, 1); err == nil {
		t.Error("too-small canvas should error")
	}
	if _, err := NewCanvas(10, 10, 1, 1); err == nil {
		t.Error("equal projection dims should error")
	}
	if _, err := NewCanvas(10, 10, -1, 0); err == nil {
		t.Error("negative dim should error")
	}
}

func TestPlotPlacesMarks(t *testing.T) {
	c, err := NewCanvas(10, 10, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	c.Plot(geom.Point{0, 0}, 'a')     // bottom-left
	c.Plot(geom.Point{100, 100}, 'd') // clamped corner (same cell as 'b')
	c.Plot(geom.Point{99, 99}, 'b')   // top-right, overwrites 'd'
	c.Plot(geom.Point{50, 50}, 'c')   // middle
	s := c.String()
	lines := strings.Split(s, "\n")
	// Border rows are first/last; row 1 is the top (high y).
	if !strings.Contains(lines[10], "a") {
		t.Errorf("bottom row missing 'a': %q", lines[10])
	}
	if !strings.Contains(lines[1], "b") {
		t.Errorf("top row missing 'b': %q", lines[1])
	}
	if !strings.Contains(lines[5], "c") {
		t.Errorf("middle row missing 'c': %q", lines[5])
	}
}

func TestPlotIgnoresBadPoints(t *testing.T) {
	c, _ := NewCanvas(5, 5, 0, 1)
	c.Plot(geom.Point{-10, 50}, 'x') // out of domain
	c.Plot(geom.Point{50}, 'x')      // too few dims
	if strings.Contains(c.String(), "x") {
		t.Error("bad points should not be drawn")
	}
}

func TestPlotSamplesMarks(t *testing.T) {
	c, _ := NewCanvas(20, 10, 0, 1)
	points := []geom.Point{{10, 10}, {90, 90}}
	labels := []bool{true, false}
	c.PlotSamples(points, labels)
	s := c.String()
	if !strings.Contains(s, "+") || !strings.Contains(s, ".") {
		t.Errorf("sample marks missing:\n%s", s)
	}
}

func TestOutlineDrawsBorderOnly(t *testing.T) {
	c, _ := NewCanvas(20, 20, 0, 1)
	c.Outline(geom.R(20, 80, 20, 80))
	s := c.String()
	if !strings.Contains(s, "#") {
		t.Fatalf("no outline drawn:\n%s", s)
	}
	// Interior cell (center) must stay blank.
	lines := strings.Split(s, "\n")
	mid := lines[10]
	if mid[10] != ' ' {
		t.Errorf("interior filled: %q", mid)
	}
}

func TestRender(t *testing.T) {
	points := []geom.Point{{30, 30}, {31, 33}, {70, 70}}
	labels := []bool{true, true, false}
	areas := []geom.Rect{geom.R(25, 40, 25, 40)}
	s, err := Render(40, 20, 0, 1, points, labels, areas)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"+", ".", "#", "legend:"} {
		if !strings.Contains(s, want) {
			t.Errorf("render missing %q:\n%s", want, s)
		}
	}
}

func TestRenderErrors(t *testing.T) {
	if _, err := Render(0, 0, 0, 1, nil, nil, nil); err == nil {
		t.Error("bad canvas size should error")
	}
}

func TestOutlineSkipsLowDimRect(t *testing.T) {
	c, _ := NewCanvas(10, 10, 0, 2)
	c.Outline(geom.R(0, 50)) // 1-D rect, projection needs dim 2
	if strings.Contains(c.String(), "#") {
		t.Error("low-dim rect should be skipped")
	}
}
