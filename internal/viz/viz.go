// Package viz renders 2-D exploration state as ASCII art for terminal
// front-ends: the data density, the labeled samples, and the predicted
// relevant areas — a poor man's version of the scatter displays IDE
// front-ends draw over AIDE.
package viz

import (
	"fmt"
	"strings"

	"github.com/explore-by-example/aide/internal/geom"
)

// Canvas is a character grid over the normalized [0,100]^2 space of two
// chosen exploration dimensions. Draw order matters: later marks
// overwrite earlier ones.
type Canvas struct {
	w, h  int
	cells []byte
	dimX  int
	dimY  int
}

// NewCanvas creates a w x h canvas projecting dimensions dimX
// (horizontal) and dimY (vertical, top = high values).
func NewCanvas(w, h, dimX, dimY int) (*Canvas, error) {
	if w < 2 || h < 2 {
		return nil, fmt.Errorf("viz: canvas %dx%d too small", w, h)
	}
	if dimX == dimY || dimX < 0 || dimY < 0 {
		return nil, fmt.Errorf("viz: bad projection dims %d,%d", dimX, dimY)
	}
	c := &Canvas{w: w, h: h, dimX: dimX, dimY: dimY, cells: make([]byte, w*h)}
	for i := range c.cells {
		c.cells[i] = ' '
	}
	return c, nil
}

// cellOf maps a normalized point to canvas coordinates.
func (c *Canvas) cellOf(p geom.Point) (int, int, bool) {
	if c.dimX >= len(p) || c.dimY >= len(p) {
		return 0, 0, false
	}
	if p[c.dimX] < geom.NormMin || p[c.dimX] > geom.NormMax ||
		p[c.dimY] < geom.NormMin || p[c.dimY] > geom.NormMax {
		return 0, 0, false
	}
	x := int(p[c.dimX] / (geom.NormMax - geom.NormMin) * float64(c.w))
	y := int(p[c.dimY] / (geom.NormMax - geom.NormMin) * float64(c.h))
	if x >= c.w {
		x = c.w - 1
	}
	if y >= c.h {
		y = c.h - 1
	}
	if x < 0 || y < 0 {
		return 0, 0, false
	}
	return x, c.h - 1 - y, true // invert: top row = high values
}

// Plot marks a normalized point with the given rune.
func (c *Canvas) Plot(p geom.Point, mark byte) {
	if x, y, ok := c.cellOf(p); ok {
		c.cells[y*c.w+x] = mark
	}
}

// PlotSamples marks labeled samples: '+' for relevant, '.' for
// irrelevant.
func (c *Canvas) PlotSamples(points []geom.Point, labels []bool) {
	for i, p := range points {
		mark := byte('.')
		if i < len(labels) && labels[i] {
			mark = '+'
		}
		c.Plot(p, mark)
	}
}

// Outline traces the border of a normalized rectangle with '#'
// characters (corners included), leaving the interior untouched so
// samples stay visible.
func (c *Canvas) Outline(r geom.Rect) {
	if c.dimX >= len(r) || c.dimY >= len(r) {
		return
	}
	x0, y0, ok0 := c.cellOf(point2(r, c.dimX, c.dimY, r[c.dimX].Lo, r[c.dimY].Lo))
	x1, y1, ok1 := c.cellOf(point2(r, c.dimX, c.dimY, r[c.dimX].Hi, r[c.dimY].Hi))
	if !ok0 || !ok1 {
		return
	}
	if y1 > y0 {
		y0, y1 = y1, y0 // y is inverted
	}
	for x := x0; x <= x1; x++ {
		c.cells[y0*c.w+x] = '#'
		c.cells[y1*c.w+x] = '#'
	}
	for y := y1; y <= y0; y++ {
		c.cells[y*c.w+x0] = '#'
		c.cells[y*c.w+x1] = '#'
	}
}

// point2 builds a point with the two projected dims set; other dims are
// zero (ignored by cellOf).
func point2(r geom.Rect, dimX, dimY int, vx, vy float64) geom.Point {
	p := make(geom.Point, len(r))
	p[dimX] = vx
	p[dimY] = vy
	return p
}

// String renders the canvas with a simple border.
func (c *Canvas) String() string {
	var b strings.Builder
	b.WriteByte('+')
	b.WriteString(strings.Repeat("-", c.w))
	b.WriteString("+\n")
	for y := 0; y < c.h; y++ {
		b.WriteByte('|')
		b.Write(c.cells[y*c.w : (y+1)*c.w])
		b.WriteString("|\n")
	}
	b.WriteByte('+')
	b.WriteString(strings.Repeat("-", c.w))
	b.WriteString("+\n")
	return b.String()
}

// Render draws a complete exploration snapshot: labeled samples plus the
// outlines of the predicted areas, projected on dims (dimX, dimY), and
// returns the ASCII art with a legend.
func Render(w, h, dimX, dimY int, points []geom.Point, labels []bool, areas []geom.Rect) (string, error) {
	c, err := NewCanvas(w, h, dimX, dimY)
	if err != nil {
		return "", err
	}
	c.PlotSamples(points, labels)
	for _, a := range areas {
		c.Outline(a)
	}
	return c.String() + "legend: + relevant sample   . irrelevant sample   # predicted area\n", nil
}
