// Package geom provides the geometric primitives used throughout AIDE:
// points in a d-dimensional exploration space, axis-aligned
// hyper-rectangles, domain normalization to the canonical [0,100] range,
// and distance functions.
//
// All of AIDE's exploration phases (grid discovery, misclassified
// exploitation, boundary exploitation) reason about regions of the data
// space as hyper-rectangles, mirroring the decision-tree areas described
// in Section 5.1 of the paper.
package geom

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// ErrInvalid is the sentinel wrapped by every validation error this
// package reports: NaN or infinite coordinates, inverted intervals,
// dimension mismatches. Callers gate with errors.Is(err, geom.ErrInvalid).
var ErrInvalid = errors.New("geom: invalid geometry")

// NormMin and NormMax bound the canonical normalized domain. The paper
// normalizes every attribute domain to [0,100] so that distances are
// comparable across attributes (Section 3, footnote 2).
const (
	NormMin = 0.0
	NormMax = 100.0
)

// Point is a location in a d-dimensional exploration space.
type Point []float64

// Clone returns a copy of p.
func (p Point) Clone() Point {
	q := make(Point, len(p))
	copy(q, p)
	return q
}

// Validate rejects NaN and infinite coordinates. Points cross the
// geom/dataset/engine boundary from user-controlled inputs (CSV loads,
// HTTP bodies, hints), so non-finite values must be caught before they
// poison index arithmetic or classifier training.
func (p Point) Validate() error {
	for i, v := range p {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: point coordinate %d is %v", ErrInvalid, i, v)
		}
	}
	return nil
}

// Dist returns the Euclidean distance between p and q.
// It panics if the dimensionalities differ.
func (p Point) Dist(q Point) float64 {
	if len(p) != len(q) {
		panic(fmt.Sprintf("geom: dimension mismatch %d vs %d", len(p), len(q)))
	}
	var sum float64
	for i := range p {
		d := p[i] - q[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}

// ChebyshevDist returns the L-infinity distance between p and q: the
// maximum per-dimension absolute difference. AIDE's sampling areas are
// defined "within distance y along each dimension" (Section 4.2), which
// is a Chebyshev ball, i.e. a hyper-rectangle.
func (p Point) ChebyshevDist(q Point) float64 {
	if len(p) != len(q) {
		panic(fmt.Sprintf("geom: dimension mismatch %d vs %d", len(p), len(q)))
	}
	var m float64
	for i := range p {
		d := math.Abs(p[i] - q[i])
		if d > m {
			m = d
		}
	}
	return m
}

// Interval is a closed numeric range [Lo, Hi].
type Interval struct {
	Lo, Hi float64
}

// Width returns Hi-Lo; zero or negative widths denote empty or degenerate
// intervals.
func (iv Interval) Width() float64 { return iv.Hi - iv.Lo }

// Contains reports whether v lies in [Lo, Hi].
func (iv Interval) Contains(v float64) bool { return v >= iv.Lo && v <= iv.Hi }

// Clamp returns v restricted to [Lo, Hi].
func (iv Interval) Clamp(v float64) float64 {
	if v < iv.Lo {
		return iv.Lo
	}
	if v > iv.Hi {
		return iv.Hi
	}
	return v
}

// Validate rejects NaN or infinite endpoints and inverted intervals.
func (iv Interval) Validate() error {
	if math.IsNaN(iv.Lo) || math.IsInf(iv.Lo, 0) || math.IsNaN(iv.Hi) || math.IsInf(iv.Hi, 0) {
		return fmt.Errorf("%w: interval [%v,%v] has non-finite endpoint", ErrInvalid, iv.Lo, iv.Hi)
	}
	if iv.Lo > iv.Hi {
		return fmt.Errorf("%w: inverted interval [%v,%v]", ErrInvalid, iv.Lo, iv.Hi)
	}
	return nil
}

// IsFinite reports whether both endpoints are finite (no NaN, no ±Inf).
func (iv Interval) IsFinite() bool {
	return !math.IsNaN(iv.Lo) && !math.IsInf(iv.Lo, 0) && !math.IsNaN(iv.Hi) && !math.IsInf(iv.Hi, 0)
}

// Intersect returns the overlap of two intervals and whether it is
// non-empty.
func (iv Interval) Intersect(other Interval) (Interval, bool) {
	lo := math.Max(iv.Lo, other.Lo)
	hi := math.Min(iv.Hi, other.Hi)
	if lo > hi {
		return Interval{}, false
	}
	return Interval{lo, hi}, true
}

// Rect is an axis-aligned hyper-rectangle: one Interval per dimension.
// A Rect with zero dimensions is considered empty.
type Rect []Interval

// NewRect allocates a d-dimensional rectangle covering the whole
// normalized domain [NormMin, NormMax] in every dimension.
func NewRect(d int) Rect {
	r := make(Rect, d)
	for i := range r {
		r[i] = Interval{NormMin, NormMax}
	}
	return r
}

// R builds a Rect from (lo, hi) pairs: R(0,10, 20,30) is the 2-D rect
// [0,10]x[20,30]. It panics on an odd number of arguments.
func R(pairs ...float64) Rect {
	if len(pairs)%2 != 0 {
		panic("geom: R requires lo,hi pairs")
	}
	r := make(Rect, len(pairs)/2)
	for i := range r {
		r[i] = Interval{Lo: pairs[2*i], Hi: pairs[2*i+1]}
	}
	return r
}

// RectAround returns the Chebyshev ball of radius y around center, clipped
// to bounds. This is the "random samples within a normalized distance y on
// each dimension" sampling area of Section 4.2.
func RectAround(center Point, y float64, bounds Rect) Rect {
	r := make(Rect, len(center))
	for i := range center {
		r[i] = Interval{center[i] - y, center[i] + y}
		if bounds != nil {
			if got, ok := r[i].Intersect(bounds[i]); ok {
				r[i] = got
			} else {
				r[i] = Interval{bounds[i].Clamp(center[i]), bounds[i].Clamp(center[i])}
			}
		}
	}
	return r
}

// Dims returns the dimensionality of the rectangle.
func (r Rect) Dims() int { return len(r) }

// Clone returns a deep copy of r.
func (r Rect) Clone() Rect {
	q := make(Rect, len(r))
	copy(q, r)
	return q
}

// Validate rejects rectangles with non-finite endpoints or inverted
// intervals. A zero-dimensional rectangle is valid (and empty).
func (r Rect) Validate() error {
	for i := range r {
		if err := r[i].Validate(); err != nil {
			return fmt.Errorf("dimension %d: %w", i, err)
		}
	}
	return nil
}

// Clamp returns a copy of r with every interval clipped to bounds and
// non-finite endpoints replaced by the corresponding bound. Inverted
// intervals are preserved (still empty after clamping); the result is
// always finite when bounds is finite.
func (r Rect) Clamp(bounds Rect) Rect {
	out := make(Rect, len(r))
	for i := range r {
		lo, hi := r[i].Lo, r[i].Hi
		if math.IsNaN(lo) || math.IsInf(lo, -1) {
			lo = bounds[i].Lo
		}
		if math.IsNaN(hi) || math.IsInf(hi, 1) {
			hi = bounds[i].Hi
		}
		out[i] = Interval{bounds[i].Clamp(lo), bounds[i].Clamp(hi)}
	}
	return out
}

// Contains reports whether p lies inside r (boundaries inclusive).
func (r Rect) Contains(p Point) bool {
	if len(p) != len(r) {
		panic(fmt.Sprintf("geom: dimension mismatch %d vs %d", len(p), len(r)))
	}
	for i := range r {
		if !r[i].Contains(p[i]) {
			return false
		}
	}
	return true
}

// IsEmpty reports whether any dimension has negative width (the rectangle
// contains no points). Zero-width dimensions still contain boundary points
// and are not considered empty.
func (r Rect) IsEmpty() bool {
	if len(r) == 0 {
		return true
	}
	for i := range r {
		if r[i].Lo > r[i].Hi {
			return true
		}
	}
	return false
}

// Volume returns the product of the dimension widths.
func (r Rect) Volume() float64 {
	if r.IsEmpty() {
		return 0
	}
	v := 1.0
	for i := range r {
		v *= r[i].Width()
	}
	return v
}

// Center returns the midpoint of the rectangle, the "virtual center" used
// by grid-based object discovery (Section 3).
func (r Rect) Center() Point {
	c := make(Point, len(r))
	for i := range r {
		c[i] = (r[i].Lo + r[i].Hi) / 2
	}
	return c
}

// Intersect returns the overlap of two rectangles and whether it is
// non-empty.
func (r Rect) Intersect(other Rect) (Rect, bool) {
	if len(r) != len(other) {
		panic(fmt.Sprintf("geom: dimension mismatch %d vs %d", len(r), len(other)))
	}
	out := make(Rect, len(r))
	for i := range r {
		iv, ok := r[i].Intersect(other[i])
		if !ok {
			return nil, false
		}
		out[i] = iv
	}
	return out, true
}

// Overlaps reports whether two rectangles share any point.
func (r Rect) Overlaps(other Rect) bool {
	_, ok := r.Intersect(other)
	return ok
}

// OverlapFraction returns the volume of the intersection divided by the
// volume of r. It returns 0 when r has zero volume. The non-overlapping
// sampling-area optimization (Section 5.2) skips slabs whose overlap
// fraction with the previous iteration's slab is high.
func (r Rect) OverlapFraction(other Rect) float64 {
	vol := r.Volume()
	if vol == 0 {
		return 0
	}
	inter, ok := r.Intersect(other)
	if !ok {
		return 0
	}
	return inter.Volume() / vol
}

// Expand grows the rectangle by delta on every side of every dimension,
// clipping to bounds when bounds is non-nil.
func (r Rect) Expand(delta float64, bounds Rect) Rect {
	out := make(Rect, len(r))
	for i := range r {
		out[i] = Interval{r[i].Lo - delta, r[i].Hi + delta}
		if bounds != nil {
			if iv, ok := out[i].Intersect(bounds[i]); ok {
				out[i] = iv
			}
		}
	}
	return out
}

// FaceSlab returns the sampling slab around one face of the rectangle:
// dimension dim, upper face when upper is true. The slab spans
// [boundary-x, boundary+x] in dim. When wholeDomain is true the remaining
// dimensions cover the full bounds (the irrelevant-attribute
// optimization of Section 5.2); otherwise they keep the rectangle's own
// extents.
func (r Rect) FaceSlab(dim int, upper bool, x float64, bounds Rect, wholeDomain bool) Rect {
	out := make(Rect, len(r))
	for i := range r {
		switch {
		case i == dim:
			b := r[i].Lo
			if upper {
				b = r[i].Hi
			}
			out[i] = Interval{b - x, b + x}
		case wholeDomain:
			out[i] = bounds[i]
		default:
			out[i] = r[i]
		}
		if bounds != nil {
			if iv, ok := out[i].Intersect(bounds[i]); ok {
				out[i] = iv
			} else {
				// Face lies entirely outside bounds; collapse to the
				// nearest boundary value so the slab stays valid.
				v := bounds[i].Clamp(out[i].Lo)
				out[i] = Interval{v, v}
			}
		}
	}
	return out
}

// Equal reports whether two rectangles have identical intervals.
func (r Rect) Equal(other Rect) bool {
	if len(r) != len(other) {
		return false
	}
	for i := range r {
		if r[i] != other[i] {
			return false
		}
	}
	return true
}

// String renders the rectangle as "[lo,hi]x[lo,hi]...".
func (r Rect) String() string {
	var b strings.Builder
	for i := range r {
		if i > 0 {
			b.WriteByte('x')
		}
		fmt.Fprintf(&b, "[%.3g,%.3g]", r[i].Lo, r[i].Hi)
	}
	return b.String()
}

// Normalizer maps raw attribute values into the canonical [0,100]
// normalized space and back. One Normalizer covers all d dimensions of an
// exploration task.
type Normalizer struct {
	mins   []float64
	widths []float64 // raw max-min per dimension; zero means constant attribute
}

// NewNormalizer builds a Normalizer for attributes with the given raw
// [min,max] domains. It returns an error when the slices disagree in
// length or a domain is inverted.
func NewNormalizer(mins, maxs []float64) (*Normalizer, error) {
	if len(mins) != len(maxs) {
		return nil, fmt.Errorf("geom: %d mins vs %d maxs", len(mins), len(maxs))
	}
	n := &Normalizer{mins: make([]float64, len(mins)), widths: make([]float64, len(mins))}
	for i := range mins {
		if iv := (Interval{mins[i], maxs[i]}); !iv.IsFinite() {
			return nil, fmt.Errorf("%w: non-finite domain on dimension %d: [%g,%g]", ErrInvalid, i, mins[i], maxs[i])
		}
		if maxs[i] < mins[i] {
			return nil, fmt.Errorf("%w: inverted domain on dimension %d: [%g,%g]", ErrInvalid, i, mins[i], maxs[i])
		}
		n.mins[i] = mins[i]
		n.widths[i] = maxs[i] - mins[i]
	}
	return n, nil
}

// Dims returns the number of dimensions the normalizer covers.
func (n *Normalizer) Dims() int { return len(n.mins) }

// ToNorm maps a raw point into normalized space. Constant attributes map
// to the domain midpoint.
func (n *Normalizer) ToNorm(raw Point) Point {
	out := make(Point, len(raw))
	for i := range raw {
		out[i] = n.ToNormValue(i, raw[i])
	}
	return out
}

// ToNormValue maps one raw attribute value into [0,100].
func (n *Normalizer) ToNormValue(dim int, v float64) float64 {
	if n.widths[dim] == 0 {
		return (NormMin + NormMax) / 2
	}
	return (v - n.mins[dim]) / n.widths[dim] * (NormMax - NormMin)
}

// ToRaw maps a normalized point back into raw attribute space.
func (n *Normalizer) ToRaw(norm Point) Point {
	out := make(Point, len(norm))
	for i := range norm {
		out[i] = n.ToRawValue(i, norm[i])
	}
	return out
}

// ToRawValue maps one normalized value back to the raw domain.
func (n *Normalizer) ToRawValue(dim int, v float64) float64 {
	return n.mins[dim] + v/(NormMax-NormMin)*n.widths[dim]
}

// ToRawRect converts a normalized rectangle to raw coordinates.
func (n *Normalizer) ToRawRect(r Rect) Rect {
	out := make(Rect, len(r))
	for i := range r {
		out[i] = Interval{n.ToRawValue(i, r[i].Lo), n.ToRawValue(i, r[i].Hi)}
	}
	return out
}

// ToNormRect converts a raw rectangle to normalized coordinates.
func (n *Normalizer) ToNormRect(r Rect) Rect {
	out := make(Rect, len(r))
	for i := range r {
		out[i] = Interval{n.ToNormValue(i, r[i].Lo), n.ToNormValue(i, r[i].Hi)}
	}
	return out
}

// UnionVolume returns the volume of the union of the rectangles, computed
// by inclusion-exclusion on the pairwise-disjoint decomposition along a
// sweep of the first dimension. For the small rectangle counts AIDE deals
// with (≤ tens of relevant areas) an exact O(2^n) inclusion-exclusion is
// fine for n ≤ 20; beyond that we fall back to a Monte-Carlo estimate
// driven by a deterministic low-discrepancy sequence.
func UnionVolume(rects []Rect) float64 {
	switch {
	case len(rects) == 0:
		return 0
	case len(rects) <= 20:
		return unionVolumeExact(rects)
	default:
		return unionVolumeMC(rects)
	}
}

func unionVolumeExact(rects []Rect) float64 {
	n := len(rects)
	var total float64
	// Inclusion-exclusion over non-empty subsets.
	for mask := 1; mask < 1<<uint(n); mask++ {
		var inter Rect
		ok := true
		bits := 0
		for i := 0; i < n && ok; i++ {
			if mask&(1<<uint(i)) == 0 {
				continue
			}
			bits++
			if inter == nil {
				inter = rects[i].Clone()
				continue
			}
			inter, ok = inter.Intersect(rects[i])
		}
		if !ok {
			continue
		}
		v := inter.Volume()
		if bits%2 == 1 {
			total += v
		} else {
			total -= v
		}
	}
	if total < 0 {
		total = 0
	}
	return total
}

// unionVolumeMC estimates the union volume with a Halton-sequence sample
// over the bounding box of the rectangles.
func unionVolumeMC(rects []Rect) float64 {
	d := rects[0].Dims()
	bound := rects[0].Clone()
	for _, r := range rects[1:] {
		for i := 0; i < d; i++ {
			bound[i].Lo = math.Min(bound[i].Lo, r[i].Lo)
			bound[i].Hi = math.Max(bound[i].Hi, r[i].Hi)
		}
	}
	const samples = 200000
	primes := []int{2, 3, 5, 7, 11, 13, 17, 19, 23, 29}
	hit := 0
	p := make(Point, d)
	for s := 1; s <= samples; s++ {
		for i := 0; i < d; i++ {
			u := halton(s, primes[i%len(primes)])
			p[i] = bound[i].Lo + u*bound[i].Width()
		}
		for _, r := range rects {
			if r.Contains(p) {
				hit++
				break
			}
		}
	}
	return bound.Volume() * float64(hit) / float64(samples)
}

// halton returns element i of the base-b Halton low-discrepancy sequence.
func halton(i, b int) float64 {
	f := 1.0
	r := 0.0
	for i > 0 {
		f /= float64(b)
		r += f * float64(i%b)
		i /= b
	}
	return r
}
