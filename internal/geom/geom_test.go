package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPointDist(t *testing.T) {
	p := Point{0, 0}
	q := Point{3, 4}
	if got := p.Dist(q); got != 5 {
		t.Errorf("Dist = %v, want 5", got)
	}
	if got := p.Dist(p); got != 0 {
		t.Errorf("self Dist = %v, want 0", got)
	}
}

func TestPointDistDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	Point{1}.Dist(Point{1, 2})
}

func TestChebyshevDist(t *testing.T) {
	p := Point{0, 0, 0}
	q := Point{1, -7, 3}
	if got := p.ChebyshevDist(q); got != 7 {
		t.Errorf("ChebyshevDist = %v, want 7", got)
	}
}

func TestPointClone(t *testing.T) {
	p := Point{1, 2}
	q := p.Clone()
	q[0] = 99
	if p[0] != 1 {
		t.Error("Clone aliases the original")
	}
}

func TestIntervalBasics(t *testing.T) {
	iv := Interval{2, 5}
	if iv.Width() != 3 {
		t.Errorf("Width = %v, want 3", iv.Width())
	}
	for _, tc := range []struct {
		v    float64
		want bool
	}{{2, true}, {5, true}, {3.3, true}, {1.999, false}, {5.001, false}} {
		if got := iv.Contains(tc.v); got != tc.want {
			t.Errorf("Contains(%v) = %v, want %v", tc.v, got, tc.want)
		}
	}
	if got := iv.Clamp(-1); got != 2 {
		t.Errorf("Clamp(-1) = %v, want 2", got)
	}
	if got := iv.Clamp(100); got != 5 {
		t.Errorf("Clamp(100) = %v, want 5", got)
	}
	if got := iv.Clamp(3); got != 3 {
		t.Errorf("Clamp(3) = %v, want 3", got)
	}
}

func TestIntervalIntersect(t *testing.T) {
	a := Interval{0, 10}
	b := Interval{5, 20}
	got, ok := a.Intersect(b)
	if !ok || got != (Interval{5, 10}) {
		t.Errorf("Intersect = %v,%v, want {5 10},true", got, ok)
	}
	_, ok = a.Intersect(Interval{11, 12})
	if ok {
		t.Error("disjoint intervals should not intersect")
	}
	// Touching intervals intersect in a single point.
	got, ok = a.Intersect(Interval{10, 12})
	if !ok || got != (Interval{10, 10}) {
		t.Errorf("touching Intersect = %v,%v", got, ok)
	}
}

func TestNewRectCoversNormalizedDomain(t *testing.T) {
	r := NewRect(3)
	if r.Dims() != 3 {
		t.Fatalf("Dims = %d", r.Dims())
	}
	for i := range r {
		if r[i] != (Interval{NormMin, NormMax}) {
			t.Errorf("dim %d = %v", i, r[i])
		}
	}
	if got := r.Volume(); got != 1e6 {
		t.Errorf("Volume = %v, want 1e6", got)
	}
}

func TestRectContains(t *testing.T) {
	r := Rect{{0, 10}, {20, 30}}
	if !r.Contains(Point{5, 25}) {
		t.Error("interior point should be contained")
	}
	if !r.Contains(Point{0, 30}) {
		t.Error("corner should be contained")
	}
	if r.Contains(Point{11, 25}) {
		t.Error("outside point should not be contained")
	}
}

func TestRectCenterAndVolume(t *testing.T) {
	r := Rect{{0, 10}, {20, 40}}
	c := r.Center()
	if c[0] != 5 || c[1] != 30 {
		t.Errorf("Center = %v", c)
	}
	if got := r.Volume(); got != 200 {
		t.Errorf("Volume = %v, want 200", got)
	}
}

func TestRectIntersectAndOverlaps(t *testing.T) {
	a := Rect{{0, 10}, {0, 10}}
	b := Rect{{5, 15}, {5, 15}}
	inter, ok := a.Intersect(b)
	if !ok {
		t.Fatal("rects should intersect")
	}
	want := Rect{{5, 10}, {5, 10}}
	if !inter.Equal(want) {
		t.Errorf("Intersect = %v, want %v", inter, want)
	}
	c := Rect{{20, 30}, {0, 10}}
	if a.Overlaps(c) {
		t.Error("disjoint rects should not overlap")
	}
}

func TestRectOverlapFraction(t *testing.T) {
	a := Rect{{0, 10}, {0, 10}}
	b := Rect{{5, 15}, {0, 10}}
	if got := a.OverlapFraction(b); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("OverlapFraction = %v, want 0.5", got)
	}
	zero := Rect{{3, 3}, {0, 10}}
	if got := zero.OverlapFraction(a); got != 0 {
		t.Errorf("zero-volume OverlapFraction = %v, want 0", got)
	}
}

func TestRectExpand(t *testing.T) {
	r := Rect{{5, 10}, {5, 10}}
	bounds := NewRect(2)
	got := r.Expand(10, bounds)
	want := Rect{{0, 20}, {0, 20}}
	if !got.Equal(want) {
		t.Errorf("Expand = %v, want %v", got, want)
	}
	unbounded := r.Expand(10, nil)
	if !unbounded.Equal(Rect{{-5, 20}, {-5, 20}}) {
		t.Errorf("Expand nil bounds = %v", unbounded)
	}
}

func TestFaceSlab(t *testing.T) {
	r := Rect{{20, 40}, {0, 10}}
	bounds := NewRect(2)
	// Upper face of dim 1 (dosage=10 in the paper's Figure 6 example),
	// whole-domain sampling on the other dimension.
	slab := r.FaceSlab(1, true, 1, bounds, true)
	want := Rect{{0, 100}, {9, 11}}
	if !slab.Equal(want) {
		t.Errorf("FaceSlab = %v, want %v", slab, want)
	}
	// Without whole-domain sampling the other dims keep the rect extent.
	slab = r.FaceSlab(1, true, 1, bounds, false)
	want = Rect{{20, 40}, {9, 11}}
	if !slab.Equal(want) {
		t.Errorf("FaceSlab narrow = %v, want %v", slab, want)
	}
	// Lower face at the domain edge clips to bounds.
	slab = r.FaceSlab(1, false, 1, bounds, false)
	want = Rect{{20, 40}, {0, 1}}
	if !slab.Equal(want) {
		t.Errorf("FaceSlab at edge = %v, want %v", slab, want)
	}
}

func TestRectAround(t *testing.T) {
	bounds := NewRect(2)
	r := RectAround(Point{50, 0}, 5, bounds)
	want := Rect{{45, 55}, {0, 5}}
	if !r.Equal(want) {
		t.Errorf("RectAround = %v, want %v", r, want)
	}
	// Center outside bounds collapses to the nearest boundary.
	r = RectAround(Point{50, 200}, 5, bounds)
	if r[1] != (Interval{100, 100}) {
		t.Errorf("RectAround outside = %v", r)
	}
}

func TestRectIsEmpty(t *testing.T) {
	if (Rect{}).IsEmpty() != true {
		t.Error("zero-dim rect should be empty")
	}
	if (Rect{{0, 1}}).IsEmpty() {
		t.Error("valid rect should not be empty")
	}
	if !(Rect{{1, 0}}).IsEmpty() {
		t.Error("inverted rect should be empty")
	}
	if (Rect{{1, 1}}).IsEmpty() {
		t.Error("degenerate rect still contains its boundary")
	}
}

func TestNormalizerRoundTrip(t *testing.T) {
	n, err := NewNormalizer([]float64{-10, 0}, []float64{10, 1000})
	if err != nil {
		t.Fatal(err)
	}
	raw := Point{5, 250}
	norm := n.ToNorm(raw)
	if math.Abs(norm[0]-75) > 1e-9 || math.Abs(norm[1]-25) > 1e-9 {
		t.Errorf("ToNorm = %v", norm)
	}
	back := n.ToRaw(norm)
	for i := range raw {
		if math.Abs(back[i]-raw[i]) > 1e-9 {
			t.Errorf("round trip dim %d: %v -> %v", i, raw[i], back[i])
		}
	}
}

func TestNormalizerConstantAttribute(t *testing.T) {
	n, err := NewNormalizer([]float64{7}, []float64{7})
	if err != nil {
		t.Fatal(err)
	}
	if got := n.ToNormValue(0, 7); got != 50 {
		t.Errorf("constant attr ToNormValue = %v, want 50", got)
	}
}

func TestNormalizerErrors(t *testing.T) {
	if _, err := NewNormalizer([]float64{0, 1}, []float64{1}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := NewNormalizer([]float64{5}, []float64{4}); err == nil {
		t.Error("inverted domain should error")
	}
}

func TestNormalizerRects(t *testing.T) {
	n, err := NewNormalizer([]float64{0, 0}, []float64{200, 50})
	if err != nil {
		t.Fatal(err)
	}
	norm := Rect{{0, 50}, {0, 100}}
	raw := n.ToRawRect(norm)
	want := Rect{{0, 100}, {0, 50}}
	if !raw.Equal(want) {
		t.Errorf("ToRawRect = %v, want %v", raw, want)
	}
	back := n.ToNormRect(raw)
	if !back.Equal(norm) {
		t.Errorf("ToNormRect = %v, want %v", back, norm)
	}
}

func TestUnionVolumeDisjoint(t *testing.T) {
	rects := []Rect{
		{{0, 10}, {0, 10}},
		{{20, 30}, {0, 10}},
	}
	if got := UnionVolume(rects); math.Abs(got-200) > 1e-9 {
		t.Errorf("UnionVolume = %v, want 200", got)
	}
}

func TestUnionVolumeOverlapping(t *testing.T) {
	rects := []Rect{
		{{0, 10}, {0, 10}},
		{{5, 15}, {0, 10}},
	}
	if got := UnionVolume(rects); math.Abs(got-150) > 1e-9 {
		t.Errorf("UnionVolume = %v, want 150", got)
	}
}

func TestUnionVolumeNested(t *testing.T) {
	rects := []Rect{
		{{0, 10}, {0, 10}},
		{{2, 4}, {2, 4}},
	}
	if got := UnionVolume(rects); math.Abs(got-100) > 1e-9 {
		t.Errorf("UnionVolume = %v, want 100", got)
	}
}

func TestUnionVolumeEmpty(t *testing.T) {
	if got := UnionVolume(nil); got != 0 {
		t.Errorf("UnionVolume(nil) = %v", got)
	}
}

func TestUnionVolumeMonteCarloPath(t *testing.T) {
	// More than 20 rects triggers the Monte-Carlo estimator. Use 21
	// disjoint unit squares so the exact answer is 21.
	var rects []Rect
	for i := 0; i < 21; i++ {
		lo := float64(i * 2)
		rects = append(rects, Rect{{lo, lo + 1}, {0, 1}})
	}
	got := UnionVolume(rects)
	if math.Abs(got-21) > 1.5 {
		t.Errorf("Monte-Carlo UnionVolume = %v, want ~21", got)
	}
}

// Property: normalization round-trips within floating point tolerance.
func TestQuickNormalizerRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 1 + rng.Intn(5)
		mins := make([]float64, d)
		maxs := make([]float64, d)
		for i := range mins {
			mins[i] = rng.Float64()*200 - 100
			maxs[i] = mins[i] + rng.Float64()*100 + 0.001
		}
		n, err := NewNormalizer(mins, maxs)
		if err != nil {
			return false
		}
		p := make(Point, d)
		for i := range p {
			p[i] = mins[i] + rng.Float64()*(maxs[i]-mins[i])
		}
		back := n.ToRaw(n.ToNorm(p))
		for i := range p {
			if math.Abs(back[i]-p[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the intersection of two rects is contained in both.
func TestQuickRectIntersectContained(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 1 + rng.Intn(4)
		mk := func() Rect {
			r := make(Rect, d)
			for i := range r {
				a := rng.Float64() * 100
				b := rng.Float64() * 100
				if a > b {
					a, b = b, a
				}
				r[i] = Interval{a, b}
			}
			return r
		}
		a, b := mk(), mk()
		inter, ok := a.Intersect(b)
		if !ok {
			return true
		}
		// Every sampled point of the intersection is in both rects.
		for s := 0; s < 10; s++ {
			p := make(Point, d)
			for i := range p {
				p[i] = inter[i].Lo + rng.Float64()*inter[i].Width()
			}
			if !a.Contains(p) || !b.Contains(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: union volume is at least the max individual volume and at most
// the sum of volumes.
func TestQuickUnionVolumeBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		d := 1 + rng.Intn(3)
		var rects []Rect
		var sum, maxVol float64
		for j := 0; j < n; j++ {
			r := make(Rect, d)
			for i := range r {
				a := rng.Float64() * 100
				w := rng.Float64() * 20
				r[i] = Interval{a, a + w}
			}
			rects = append(rects, r)
			v := r.Volume()
			sum += v
			if v > maxVol {
				maxVol = v
			}
		}
		u := UnionVolume(rects)
		return u >= maxVol-1e-9 && u <= sum+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHalton(t *testing.T) {
	// First base-2 Halton values: 1/2, 1/4, 3/4, 1/8...
	want := []float64{0.5, 0.25, 0.75, 0.125}
	for i, w := range want {
		if got := halton(i+1, 2); math.Abs(got-w) > 1e-12 {
			t.Errorf("halton(%d,2) = %v, want %v", i+1, got, w)
		}
	}
}

func TestRectString(t *testing.T) {
	r := Rect{{0, 10}, {5, 6}}
	if got := r.String(); got != "[0,10]x[5,6]" {
		t.Errorf("String = %q", got)
	}
}
