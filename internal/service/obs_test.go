package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/explore-by-example/aide/internal/dataset"
	"github.com/explore-by-example/aide/internal/engine"
	"github.com/explore-by-example/aide/internal/geom"
)

// driveSession runs a short scripted exploration over HTTP and returns
// the session id (still live).
func driveSession(t *testing.T, c *Client, v *engine.View, labels int) string {
	t.Helper()
	ctx := context.Background()
	id, err := c.CreateSession(ctx, CreateSessionRequest{
		View: "uniform", Seed: 5, SamplesPerIteration: 10, MaxIterations: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	target := geom.R(20, 70, 25, 75)
	for i := 0; i < labels; i++ {
		sample, err := c.NextSample(ctx, id)
		if errors.Is(err, ErrSessionDone) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		p := v.Normalizer().ToNorm(geom.Point{sample.Values["a0"], sample.Values["a1"]})
		if err := c.SubmitLabel(ctx, id, sample.Row, target.Contains(p)); err != nil {
			t.Fatal(err)
		}
	}
	return id
}

func TestMetricsAndTraceEndpoints(t *testing.T) {
	srv, v := newTestServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := NewClient(ts.URL, nil)
	ctx := context.Background()

	id := driveSession(t, c, v, 35)
	defer c.Close(ctx, id)

	// /v1/metrics: valid JSON with nonzero engine + service counters.
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"engine.queries", "engine.rows_examined", "engine.sample_calls",
		"explore.iterations", "explore.labels_received",
		"service.sessions_created", "service.http.requests.sample",
	} {
		v, ok := m[name].(float64)
		if !ok || v <= 0 {
			t.Errorf("metric %s = %v, want > 0", name, m[name])
		}
	}
	// Histograms render as summaries.
	hist, ok := m["engine.query_seconds"].(map[string]any)
	if !ok {
		t.Fatalf("engine.query_seconds = %v", m["engine.query_seconds"])
	}
	if cnt, _ := hist["count"].(float64); cnt <= 0 {
		t.Errorf("engine.query_seconds count = %v", hist["count"])
	}
	for _, q := range []string{"p50", "p95", "p99", "sum"} {
		if _, ok := hist[q]; !ok {
			t.Errorf("engine.query_seconds missing %s: %v", q, hist)
		}
	}

	// /v1/sessions/{id}/trace: per-iteration spans with phase children.
	tr, err := c.Trace(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if tr.ID != id || tr.View != "uniform" {
		t.Errorf("trace header = %+v", tr)
	}
	if tr.Total == 0 || len(tr.Spans) == 0 {
		t.Fatalf("no spans recorded: %+v", tr)
	}
	phases := map[string]bool{}
	for _, sp := range tr.Spans {
		if sp.Name != "iteration" {
			t.Errorf("root span = %q", sp.Name)
		}
		for _, ch := range sp.Children {
			phases[ch.Name] = true
		}
	}
	if !phases["discovery"] || !phases["train"] {
		t.Errorf("phase spans seen = %v, want discovery and train", phases)
	}

	// Unknown session id 404s.
	resp, err := ts.Client().Get(ts.URL + "/v1/sessions/nosuch/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("trace of unknown session = %d", resp.StatusCode)
	}
}

func TestHealthzAndViewsMetadata(t *testing.T) {
	srv, v := newTestServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := NewClient(ts.URL, nil)
	ctx := context.Background()

	if err := c.Health(ctx); err != nil {
		t.Fatal(err)
	}
	infos, err := c.Views(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 {
		t.Fatalf("views = %+v", infos)
	}
	if infos[0].Name != "uniform" || infos[0].Rows != v.NumRows() {
		t.Errorf("view info = %+v", infos[0])
	}
	if len(infos[0].Attrs) != 2 || infos[0].Attrs[0] != "a0" {
		t.Errorf("view attrs = %v", infos[0].Attrs)
	}
}

func TestSessionJanitor(t *testing.T) {
	srv, _ := newTestServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := NewClient(ts.URL, nil)
	ctx := context.Background()

	id, err := c.CreateSession(ctx, CreateSessionRequest{View: "uniform", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}

	// Fresh sessions survive a long-TTL sweep.
	if n := srv.ExpireIdle(time.Hour); n != 0 {
		t.Errorf("expired %d fresh sessions", n)
	}
	if _, err := c.Status(ctx, id); err != nil {
		t.Errorf("session gone after no-op sweep: %v", err)
	}

	// A zero TTL makes everything idle: the session must be evicted and
	// its goroutine unblocked (cancelled).
	before := obsSessionsExpired.Value()
	if n := srv.ExpireIdle(0); n != 1 {
		t.Fatalf("expired %d sessions, want 1", n)
	}
	if got := obsSessionsExpired.Value(); got != before+1 {
		t.Errorf("sessions_expired went %d -> %d", before, got)
	}
	if _, err := c.Status(ctx, id); err == nil {
		t.Error("evicted session still reachable")
	}

	// The background janitor does the same on a timer.
	id2, err := c.CreateSession(ctx, CreateSessionRequest{View: "uniform", Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv.SessionTTL = time.Nanosecond
	jctx, jcancel := context.WithCancel(context.Background())
	defer jcancel()
	srv.StartJanitor(jctx, 5*time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := c.Status(ctx, id2); err != nil {
			return // evicted
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Error("janitor never evicted the idle session")
}

func TestRequestLogMiddleware(t *testing.T) {
	srv, _ := newTestServer(t)
	var logBuf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&logBuf, nil))
	ts := httptest.NewServer(WithRequestLog(logger, srv))
	defer ts.Close()

	// A generated request id is echoed back and logged.
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	genID := resp.Header.Get("X-Request-ID")
	if genID == "" {
		t.Fatal("no X-Request-ID assigned")
	}

	// A caller-supplied id is preserved.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/views", nil)
	req.Header.Set("X-Request-ID", "my-id-42")
	resp, err = ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "my-id-42" {
		t.Errorf("request id = %q, want my-id-42", got)
	}

	// Log lines are JSON with the expected fields.
	lines := strings.Split(strings.TrimSpace(logBuf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d log lines, want 2:\n%s", len(lines), logBuf.String())
	}
	var entry map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &entry); err != nil {
		t.Fatalf("log line not JSON: %v", err)
	}
	if entry["request_id"] != "my-id-42" || entry["path"] != "/v1/views" ||
		entry["method"] != http.MethodGet || entry["status"] != float64(200) {
		t.Errorf("log entry = %v", entry)
	}
}

func TestStatusWriterCapturesErrors(t *testing.T) {
	// An error response increments service.http.errors.
	tab := dataset.GenerateUniform(1_000, 2, 1)
	v, err := engine.NewView(tab, []string{"a0", "a1"})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(map[string]*engine.View{"u": v})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	before := obsHTTPErrors.Value()
	resp, err := ts.Client().Get(ts.URL + "/bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := obsHTTPErrors.Value(); got != before+1 {
		t.Errorf("http.errors went %d -> %d, want +1", before, got)
	}
}
