package service

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestBackoffSaturation pins the backoff ceiling's edge behavior: the
// doubling schedule caps at MaxBackoff, and attempts large enough to
// overflow the shift saturate at the cap instead of going negative (a
// negative ceiling would panic sleepBackoff's jitter draw).
func TestBackoffSaturation(t *testing.T) {
	c := &Client{BaseBackoff: 100 * time.Millisecond, MaxBackoff: 5 * time.Second}
	cases := []struct {
		attempt int
		want    time.Duration
	}{
		{0, 100 * time.Millisecond},
		{1, 200 * time.Millisecond},
		{5, 3200 * time.Millisecond},
		{6, 5 * time.Second},  // first doubling past the cap
		{20, 5 * time.Second}, // far past the cap
		{60, 5 * time.Second}, // 100ms << 60 overflows int64 to <= 0
		{63, 5 * time.Second},
	}
	for _, tc := range cases {
		if got := c.backoff(tc.attempt); got != tc.want {
			t.Errorf("backoff(%d) = %v, want %v", tc.attempt, got, tc.want)
		}
	}
	// Attempts beyond the shift width must also saturate, never panic or
	// go negative.
	for _, attempt := range []int{64, 100, 1000} {
		if got := c.backoff(attempt); got != 5*time.Second {
			t.Errorf("backoff(%d) = %v, want saturation at 5s", attempt, got)
		}
	}

	// Zero-valued config falls back to the documented defaults.
	var zero Client
	if got := zero.backoff(0); got != 100*time.Millisecond {
		t.Errorf("zero-config backoff(0) = %v, want 100ms", got)
	}
	if got := zero.backoff(63); got != 5*time.Second {
		t.Errorf("zero-config backoff(63) = %v, want 5s default cap", got)
	}
}

// TestSleepBackoffRetryAfterFloor pins that a server Retry-After ask
// larger than the jitter ceiling raises the whole sleep to the floor:
// the draw from [0, ceiling] can never undercut the server's ask.
func TestSleepBackoffRetryAfterFloor(t *testing.T) {
	const floor = 30 * time.Millisecond
	start := time.Now()
	if err := sleepBackoff(context.Background(), time.Millisecond, floor); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < floor {
		t.Fatalf("slept %v, want at least the %v Retry-After floor", elapsed, floor)
	}
}

// TestSleepBackoffContextCancellation pins that cancelling the context
// interrupts a long backoff sleep promptly with the context's error.
func TestSleepBackoffContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err := sleepBackoff(ctx, time.Minute, time.Minute)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v, want prompt return", elapsed)
	}

	// An already-cancelled context returns immediately, even with a zero
	// ceiling (the +1 in the jitter draw keeps Int63n legal).
	if err := sleepBackoff(ctx, 0, time.Minute); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled sleep err = %v, want context.Canceled", err)
	}
}
