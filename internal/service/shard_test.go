package service

import (
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/explore-by-example/aide/internal/dataset"
	"github.com/explore-by-example/aide/internal/durable"
	"github.com/explore-by-example/aide/internal/engine"
	"github.com/explore-by-example/aide/internal/faultinject"
	"github.com/explore-by-example/aide/internal/geom"
	"github.com/explore-by-example/aide/internal/obs"
)

// shardedServer registers one uniform table split into 4 supervised
// shards and returns the server plus its registered view.
func shardedServer(t *testing.T) (*Server, *engine.View) {
	t.Helper()
	srv := NewServer(nil)
	srv.Registry = engine.NewRegistry()
	srv.Shards = 4
	mon, err := obs.NewSLOMonitor(obs.DefaultSLOConfig())
	if err != nil {
		t.Fatal(err)
	}
	srv.SLO = mon
	tab := dataset.GenerateUniform(10_000, 2, 1)
	if err := srv.RegisterTable("uniform", tab, []string{"a0", "a1"}, 1); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv, srv.views["uniform"]
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode
}

// TestShardHealthEndpoints pins the degraded-but-serving contract on
// /healthz and /v1/slo: both report per-shard supervisor state, and a
// quarantined shard never flips liveness or slo_healthy.
func TestShardHealthEndpoints(t *testing.T) {
	srv, view := shardedServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	type sloResp struct {
		Healthy bool              `json:"healthy"`
		Shards  []ViewShardHealth `json:"shards"`
	}

	// Healthy state: all 4 shards healthy, nothing degraded.
	var hz map[string]any
	if code := getJSON(t, ts.URL+"/healthz", &hz); code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}
	if hz["status"] != "ok" || hz["slo_healthy"] != true {
		t.Fatalf("healthy server reported %v", hz)
	}
	if _, degraded := hz["shards_degraded"]; degraded {
		t.Fatal("healthy shards flagged degraded")
	}
	var slo sloResp
	getJSON(t, ts.URL+"/v1/slo", &slo)
	if !slo.Healthy || len(slo.Shards) != 1 || slo.Shards[0].Healthy != 4 {
		t.Fatalf("healthy /v1/slo = %+v", slo)
	}
	for _, st := range slo.Shards[0].States {
		if st.State != "healthy" {
			t.Fatalf("shard %d reported %q", st.Index, st.State)
		}
	}

	// Quarantine shard 1: two consecutive failed ops against the
	// registered view.
	faultinject.Activate(faultinject.New(faultinject.Config{
		Seed: 1, ErrorRate: 1,
		Points: []string{faultinject.PointAt(engine.FaultShardScan, 1)},
	}))
	defer faultinject.Deactivate()
	full := geom.R(0, 100, 0, 100)
	view.Count(full)
	view.Count(full)

	if code := getJSON(t, ts.URL+"/healthz", &hz); code != http.StatusOK {
		t.Fatalf("degraded healthz = %d, liveness must not flip", code)
	}
	if hz["status"] != "ok" || hz["slo_healthy"] != true {
		t.Fatalf("quarantined shard flipped liveness/SLO: %v", hz)
	}
	if hz["shards_degraded"] != true {
		t.Fatalf("degraded shards not flagged: %v", hz)
	}
	getJSON(t, ts.URL+"/v1/slo", &slo)
	if !slo.Healthy {
		t.Fatal("quarantined shard burned the SLO budget")
	}
	if slo.Shards[0].Healthy != 3 {
		t.Fatalf("degraded /v1/slo healthy count = %d, want 3", slo.Shards[0].Healthy)
	}
	if st := slo.Shards[0].States[1].State; st != "quarantined" {
		t.Fatalf("shard 1 state = %q, want quarantined", st)
	}
}

// TestShardScatterRoundsExposed pins the batched execution path's
// round-trip observable at the service surface: every sharded engine
// pass — a single query or a whole ExecuteBatch — costs exactly one
// scatter round, counted in engine.shard_scatter_rounds, and the
// counter is scrapeable from /metrics so operators can divide it by
// aide_iterations_total and alert when the one-scatter-per-iteration
// contract drifts.
func TestShardScatterRoundsExposed(t *testing.T) {
	srv, view := shardedServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	rounds := obs.GetCounter("engine.shard_scatter_rounds")
	before := rounds.Value()
	full := geom.R(0, 100, 0, 100)
	view.Count(full)
	batch := view.ExecuteBatch([]engine.BatchQuery{
		{Kind: engine.BatchCount, Rect: geom.R(10, 40, 10, 40)},
		{Kind: engine.BatchCount, Rect: geom.R(50, 90, 50, 90)},
		{Kind: engine.BatchRows, Rect: geom.R(20, 30, 20, 30)},
	})
	if batch.Count(0) <= 0 {
		t.Fatal("batched count over a 4-shard view returned nothing")
	}
	if got := rounds.Value() - before; got != 2 {
		t.Fatalf("one Count + one 3-query ExecuteBatch cost %d scatter rounds, want 2", got)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "engine_shard_scatter_rounds") {
		t.Fatal("/metrics exposition is missing engine_shard_scatter_rounds")
	}
}

// TestRecoverAcceptsAnyShardCount is the WAL-compatibility regression
// alongside TestRecoverRefusesChangedData: shard count is execution
// policy, not content, so View.Fingerprint is identical at any shard
// count and a sharded server replays logs written by an unsharded one —
// to the identical predicate.
func TestRecoverAcceptsAnyShardCount(t *testing.T) {
	dir := t.TempDir()
	target := geom.R(30, 45, 50, 65)
	req := CreateSessionRequest{
		View:                "uniform",
		Seed:                7,
		SamplesPerIteration: 10,
		MaxIterations:       12,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	discard := slog.New(slog.NewTextHandler(io.Discard, nil))
	tab := dataset.GenerateUniform(10_000, 2, 1)

	// Phase 1: label against an unsharded server, then "crash".
	vA := uniformView(t, 1)
	mA, err := durable.NewManager(dir, durable.Options{Fsync: durable.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	srvA := NewServer(map[string]*engine.View{"uniform": vA})
	srvA.SampleWait = 5 * time.Second
	srvA.Durable = mA
	tsA := httptest.NewServer(srvA)
	cA := NewClient(tsA.URL, nil)
	id, err := cA.CreateSession(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if n := labelLoop(t, cA, ctx, id, vA, target, 15); n != 15 {
		t.Fatalf("labeled %d before crash, want 15", n)
	}
	var before QueryResponse
	for attempt := 0; attempt < 20; attempt++ {
		if before, err = cA.PredictedQuery(ctx, id); err == nil && before.SQL != "" {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	tsA.Close()

	// Phase 2: a 4-shard server over the same data accepts the log —
	// the fingerprint is shard-count independent — and replays it to the
	// same predicate.
	srvB := NewServer(nil)
	srvB.Registry = engine.NewRegistry()
	srvB.Shards = 4
	srvB.SampleWait = 5 * time.Second
	if err := srvB.RegisterTable("uniform", tab, []string{"a0", "a1"}, 1); err != nil {
		t.Fatal(err)
	}
	defer srvB.Close()
	if got, want := srvB.views["uniform"].Fingerprint(), vA.Fingerprint(); got != want {
		t.Fatalf("sharded fingerprint %q != unsharded %q", got, want)
	}
	mB, err := durable.NewManager(dir, durable.Options{Fsync: durable.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	srvB.Durable = mB
	if n, err := srvB.RecoverSessions(discard); err != nil || n != 1 {
		t.Fatalf("sharded RecoverSessions = %d, %v; want 1 recovered", n, err)
	}
	tsB := httptest.NewServer(srvB)
	defer tsB.Close()
	cB := NewClient(tsB.URL, nil)
	var after QueryResponse
	for attempt := 0; attempt < 50; attempt++ {
		if after, err = cB.PredictedQuery(ctx, id); err == nil && after.SQL != "" {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("recovered session has no query: %v", err)
	}
	if before.SQL != "" && !queriesEqual(before, after) {
		t.Fatalf("recovered-on-sharded predicate differs:\n before %s\n after  %s", before.SQL, after.SQL)
	}
}
