package service

import (
	"context"
	"log/slog"
	"net/http"
	"time"
)

// requestIDKey is the context key the middleware stores request ids
// under.
type requestIDKey struct{}

// RequestIDFrom returns the request id the middleware assigned, or "".
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// statusWriter captures the response status code for logging/metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the underlying writer so long-poll responses stream.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// WithRequestLog wraps next with request-ID assignment and structured
// request logging. Each request gets an id — taken from an incoming
// X-Request-ID header or freshly generated — which is echoed in the
// response header, stored in the request context, and attached to the
// completion log line together with method, path, status and duration.
func WithRequestLog(logger *slog.Logger, next http.Handler) http.Handler {
	if logger == nil {
		logger = slog.Default()
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := r.Header.Get("X-Request-ID")
		if id == "" {
			id = newID()
		}
		w.Header().Set("X-Request-ID", id)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r.WithContext(context.WithValue(r.Context(), requestIDKey{}, id)))
		logger.LogAttrs(r.Context(), slog.LevelInfo, "request",
			slog.String("request_id", id),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", sw.status),
			slog.Duration("duration", time.Since(start)),
			slog.String("remote", r.RemoteAddr),
		)
	})
}
