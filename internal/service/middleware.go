package service

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"runtime/debug"
	"time"
)

// requestIDKey is the context key the middleware stores request ids
// under.
type requestIDKey struct{}

// RequestIDFrom returns the request id the middleware assigned, or "".
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// statusWriter captures the response status code for logging/metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the underlying writer so long-poll responses stream.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// WithRecovery wraps next so a panicking handler answers 500 — with the
// request ID for correlation — instead of killing the connection and,
// under http.Serve's default recover, hiding the failure from the
// client. The server process stays alive; the panic is logged with its
// stack and counted in aide_recovered_panics_total.
func WithRecovery(logger *slog.Logger, next http.Handler) http.Handler {
	if logger == nil {
		logger = slog.Default()
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			obsRecoveredPanics.Inc()
			logger.LogAttrs(r.Context(), slog.LevelError, "panic in handler",
				slog.String("request_id", RequestIDFrom(r.Context())),
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.String("panic", fmt.Sprint(rec)),
				slog.String("stack", string(debug.Stack())),
			)
			// The handler may have started writing; WriteHeader on an
			// already-written response is a no-op plus a log line, which
			// beats a torn connection.
			httpErrorCtx(sw, r, http.StatusInternalServerError, "internal error")
		}()
		next.ServeHTTP(sw, r)
	})
}

// WithDeadline attaches a per-request deadline to every request's
// context. Handlers observe it through r.Context() — the long-poll
// sample endpoint returns 408, engine scans bound to a request context
// stop at the next chunk boundary. A non-positive d disables the
// deadline.
func WithDeadline(d time.Duration, next http.Handler) http.Handler {
	if d <= 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

// WithRequestLog wraps next with request-ID assignment and structured
// request logging. Each request gets an id — taken from an incoming
// X-Request-ID header or freshly generated — which is echoed in the
// response header, stored in the request context, and attached to the
// completion log line together with method, path, status and duration.
func WithRequestLog(logger *slog.Logger, next http.Handler) http.Handler {
	if logger == nil {
		logger = slog.Default()
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := r.Header.Get("X-Request-ID")
		if id == "" {
			id = newID()
		}
		w.Header().Set("X-Request-ID", id)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r.WithContext(context.WithValue(r.Context(), requestIDKey{}, id)))
		logger.LogAttrs(r.Context(), slog.LevelInfo, "request",
			slog.String("request_id", id),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", sw.status),
			slog.Duration("duration", time.Since(start)),
			slog.String("remote", r.RemoteAddr),
		)
	})
}
