package service

import (
	"github.com/explore-by-example/aide/internal/obs"
)

// Process-wide service metrics, resolved once. Per-endpoint series are
// looked up through the registry at request time (an RWMutex read), kept
// out of the per-sample hot paths.
var (
	obsInflight        = obs.GetGauge("service.http.inflight")
	obsHTTPErrors      = obs.GetCounter("service.http.errors")
	obsSampleWait      = obs.GetHistogram("service.sample_wait_seconds")
	obsSessionsCreated = obs.GetCounter("service.sessions_created")
	obsSessionsDeleted = obs.GetCounter("service.sessions_deleted")
	obsSessionsExpired = obs.GetCounter("service.sessions_expired")
	obsSessionsActive  = obs.GetGauge("service.sessions_active")
	obsSessionErrors   = obs.GetCounter("service.session_errors")

	// Fault-tolerance series.
	obsRecoveredPanics   = obs.GetCounter("aide_recovered_panics_total")
	obsSessionsRecovered = obs.GetCounter("aide_sessions_recovered_total")
	obsShedRequests      = obs.GetCounter("service.http.shed")
	obsSessionRestarts   = obs.GetCounter("service.session_restarts")
	obsQuarantined       = obs.GetCounter("service.sessions_quarantined")
)

// httpRequests returns the request counter of one endpoint.
func httpRequests(endpoint string) *obs.Counter {
	return obs.GetCounter("service.http.requests." + endpoint)
}

// httpSeconds returns the latency histogram of one endpoint.
func httpSeconds(endpoint string) *obs.Histogram {
	return obs.GetHistogram("service.http.seconds." + endpoint)
}
