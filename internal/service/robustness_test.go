package service

import (
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/explore-by-example/aide/internal/explore"
	"github.com/explore-by-example/aide/internal/geom"
)

// TestBudgetedSessionReportsDegradations drives a budget-capped session
// over HTTP and asserts the degradations surface in the status response,
// the iteration trace, and the /v1/metrics counters.
func TestBudgetedSessionReportsDegradations(t *testing.T) {
	srv, v := newTestServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := NewClient(ts.URL, nil)
	ctx := context.Background()

	id, err := c.CreateSession(ctx, CreateSessionRequest{
		View: "uniform", Seed: 5,
		SamplesPerIteration:    10,
		MaxIterations:          15,
		MaxSamplesPerIteration: 4,
		ConflictPolicy:         "majority",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close(ctx, id)

	target := geom.R(20, 70, 25, 75)
	for i := 0; i < 200; i++ {
		sample, err := c.NextSample(ctx, id)
		if errors.Is(err, ErrSessionDone) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		p := v.Normalizer().ToNorm(geom.Point{sample.Values["a0"], sample.Values["a1"]})
		if err := c.SubmitLabel(ctx, id, sample.Row, target.Contains(p)); err != nil {
			t.Fatal(err)
		}
	}

	st, err := c.Status(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range st.Degradations {
		if d == explore.DegradeIterSamplesCap {
			found = true
		}
	}
	if !found {
		t.Errorf("status degradations = %v, want %s", st.Degradations, explore.DegradeIterSamplesCap)
	}
	if st.Conflicts.ConflictEvents != 0 {
		// The service oracle memoizes labels, so a consistent client can
		// never contradict itself.
		t.Errorf("consistent HTTP labeling produced conflicts: %+v", st.Conflicts)
	}

	// The per-iteration trace records the same degradations.
	tr, err := c.Trace(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	traced := false
	for _, sp := range tr.Spans {
		if d, ok := sp.Attrs["degradations"].(string); ok && strings.Contains(d, explore.DegradeIterSamplesCap) {
			traced = true
		}
	}
	if !traced {
		t.Error("no iteration span carries the samples-cap degradation")
	}

	// The robustness counters are registered and visible over /v1/metrics.
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := m["aide_degradations_total"].(float64); !ok || v <= 0 {
		t.Errorf("aide_degradations_total = %v, want > 0", m["aide_degradations_total"])
	}
	trips := "aide_budget_trips_total.iteration_samples_cap"
	if v, ok := m[trips].(float64); !ok || v <= 0 {
		t.Errorf("%s = %v, want > 0", trips, m[trips])
	}
	if _, ok := m["aide_label_conflicts_total"].(float64); !ok {
		t.Errorf("aide_label_conflicts_total missing from /v1/metrics: %v", m["aide_label_conflicts_total"])
	}
}

// TestCreateSessionValidatesRobustnessParams exercises the new wire
// parameters' validation and the server-wide defaults.
func TestCreateSessionValidatesRobustnessParams(t *testing.T) {
	srv, _ := newTestServer(t)
	srv.DefaultBudget = explore.Budget{MaxLabeledRows: 500}
	srv.DefaultConflictPolicy = explore.ConflictMajority
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := NewClient(ts.URL, nil)
	ctx := context.Background()

	if _, err := c.CreateSession(ctx, CreateSessionRequest{View: "uniform", ConflictPolicy: "bogus"}); err == nil {
		t.Error("unknown conflict policy accepted")
	}
	if _, err := c.CreateSession(ctx, CreateSessionRequest{View: "uniform", MaxLabeledRows: -4}); err == nil {
		t.Error("negative budget accepted")
	}

	// Server defaults flow into sessions that don't override them, and
	// request values win when both are set.
	opts, err := srv.optsFromRequest(CreateSessionRequest{View: "uniform"})
	if err != nil {
		t.Fatal(err)
	}
	if opts.Budget.MaxLabeledRows != 500 || opts.ConflictPolicy != explore.ConflictMajority {
		t.Errorf("defaults not applied: budget %+v policy %v", opts.Budget, opts.ConflictPolicy)
	}
	opts, err = srv.optsFromRequest(CreateSessionRequest{
		View: "uniform", MaxLabeledRows: 80, ConflictPolicy: "strict", MaxTreeNodes: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if opts.Budget.MaxLabeledRows != 80 || opts.ConflictPolicy != explore.ConflictStrict || opts.Budget.MaxTreeNodes != 9 {
		t.Errorf("request overrides lost: budget %+v policy %v", opts.Budget, opts.ConflictPolicy)
	}

	id, err := c.CreateSession(ctx, CreateSessionRequest{View: "uniform", Seed: 3, ConflictPolicy: "last-wins"})
	if err != nil {
		t.Fatalf("valid policy rejected: %v", err)
	}
	c.Close(ctx, id)
}
