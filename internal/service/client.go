package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"

	"github.com/explore-by-example/aide/internal/explore"
	"github.com/explore-by-example/aide/internal/obs"
)

// Client is a Go client for the exploration service. It wraps the
// sequential label protocol so a caller loops:
//
//	id, _ := c.CreateSession(ctx, service.CreateSessionRequest{View: "sdss"})
//	for {
//		sample, err := c.NextSample(ctx, id)
//		if errors.Is(err, service.ErrSessionDone) { break }
//		...show sample.Values to the user...
//		c.SubmitLabel(ctx, id, sample.Row, relevant)
//	}
//	q, _ := c.PredictedQuery(ctx, id)
type Client struct {
	base string
	http *http.Client

	// MaxRetries bounds how many times a request is retried after a 503
	// (the server shedding load or an injected fault; both answer before
	// doing any work, so retrying is always safe). Default 4; negative
	// disables retries.
	MaxRetries int
	// BaseBackoff is the first retry's backoff ceiling; each further
	// attempt doubles it up to MaxBackoff, and the actual sleep is drawn
	// uniformly from [0, ceiling) ("full jitter") so synchronized
	// clients spread out. A Retry-After header raises the floor to the
	// server's ask. Defaults 100ms / 5s.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
}

// NewClient creates a client for a server at baseURL (e.g.
// "http://localhost:8080"). httpClient may be nil for
// http.DefaultClient.
func NewClient(baseURL string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{
		base:        strings.TrimRight(baseURL, "/"),
		http:        httpClient,
		MaxRetries:  4,
		BaseBackoff: 100 * time.Millisecond,
		MaxBackoff:  5 * time.Second,
	}
}

// CreateSession starts a new exploration session.
func (c *Client) CreateSession(ctx context.Context, req CreateSessionRequest) (string, error) {
	var resp CreateSessionResponse
	if err := c.do(ctx, http.MethodPost, "/v1/sessions", req, &resp); err != nil {
		return "", err
	}
	return resp.ID, nil
}

// NextSample fetches the next tuple awaiting a label. It returns
// ErrSessionDone once the session has finished.
func (c *Client) NextSample(ctx context.Context, id string) (Sample, error) {
	var s Sample
	if err := c.do(ctx, http.MethodGet, "/v1/sessions/"+id+"/sample", nil, &s); err != nil {
		return Sample{}, err
	}
	if s.Done {
		return Sample{}, ErrSessionDone
	}
	return s, nil
}

// SubmitLabel answers the outstanding sample.
func (c *Client) SubmitLabel(ctx context.Context, id string, row int, relevant bool) error {
	return c.do(ctx, http.MethodPost, "/v1/sessions/"+id+"/label",
		LabelRequest{Row: row, Relevant: relevant}, nil)
}

// Status returns the session's progress snapshot.
func (c *Client) Status(ctx context.Context, id string) (Status, error) {
	var st Status
	err := c.do(ctx, http.MethodGet, "/v1/sessions/"+id+"/status", nil, &st)
	return st, err
}

// PredictedQuery returns the current predicted query.
func (c *Client) PredictedQuery(ctx context.Context, id string) (QueryResponse, error) {
	var q QueryResponse
	err := c.do(ctx, http.MethodGet, "/v1/sessions/"+id+"/query", nil, &q)
	return q, err
}

// Close stops and discards the session.
func (c *Client) Close(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/sessions/"+id, nil, nil)
}

// Views lists the views the server exposes, with row counts and
// exploration attributes.
func (c *Client) Views(ctx context.Context) ([]ViewInfo, error) {
	var resp struct {
		Views []ViewInfo `json:"views"`
	}
	if err := c.do(ctx, http.MethodGet, "/v1/views", nil, &resp); err != nil {
		return nil, err
	}
	return resp.Views, nil
}

// ViewNames lists the names of the views the server exposes.
func (c *Client) ViewNames(ctx context.Context) ([]string, error) {
	infos, err := c.Views(ctx)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(infos))
	for i, v := range infos {
		names[i] = v.Name
	}
	return names, nil
}

// Trace returns the session's recent per-iteration trace spans.
func (c *Client) Trace(ctx context.Context, id string) (TraceResponse, error) {
	var tr TraceResponse
	err := c.do(ctx, http.MethodGet, "/v1/sessions/"+id+"/trace", nil, &tr)
	return tr, err
}

// Metrics returns the server's metric snapshot: counters and gauges as
// numbers, histograms as objects with count/sum/p50/p95/p99.
func (c *Client) Metrics(ctx context.Context) (map[string]any, error) {
	var m map[string]any
	if err := c.do(ctx, http.MethodGet, "/v1/metrics", nil, &m); err != nil {
		return nil, err
	}
	return m, nil
}

// Health reports whether the server answers its liveness probe.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// PrometheusMetrics returns the server's /metrics text exposition
// (Prometheus format 0.0.4), verbatim.
func (c *Client) PrometheusMetrics(ctx context.Context) ([]byte, error) {
	var raw []byte
	if err := c.do(ctx, http.MethodGet, "/metrics", nil, &raw); err != nil {
		return nil, err
	}
	return raw, nil
}

// SLO returns the server's multi-window SLO burn-rate status.
func (c *Client) SLO(ctx context.Context) (obs.SLOStatus, error) {
	var st obs.SLOStatus
	err := c.do(ctx, http.MethodGet, "/v1/slo", nil, &st)
	return st, err
}

// Events returns the session's retained flight-recorder events, oldest
// first, parsed from the server's JSONL stream.
func (c *Client) Events(ctx context.Context, id string) ([]obs.FlightEvent, error) {
	var raw []byte
	if err := c.do(ctx, http.MethodGet, "/v1/sessions/"+id+"/events", nil, &raw); err != nil {
		return nil, err
	}
	return obs.ReadJournal(bytes.NewReader(raw))
}

// Status mirrors the server's progress snapshot (the SQL field carries a
// nested QueryResponse payload; prefer PredictedQuery).
type Status struct {
	Iteration     int     `json:"iteration"`
	TotalLabeled  int     `json:"total_labeled"`
	TotalRelevant int     `json:"total_relevant"`
	RelevantAreas int     `json:"relevant_areas"`
	Done          bool    `json:"done"`
	WaitSeconds   float64 `json:"avg_wait_seconds"`
	// Conflicts summarizes contradictory labels and their resolution.
	Conflicts explore.ConflictStats `json:"conflicts"`
	// Degradations lists budget fallbacks from the latest iteration.
	Degradations []string `json:"degradations,omitempty"`
}

// do executes one JSON request/response exchange, retrying 503s (load
// shedding, injected unavailability) with jittered exponential backoff.
// A 503 is answered before the server does any work, so retrying is
// safe for every method including POST. The context bounds the whole
// exchange: cancellation interrupts backoff sleeps immediately.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var buf []byte
	if body != nil {
		var err error
		buf, err = json.Marshal(body)
		if err != nil {
			return fmt.Errorf("service: encoding request: %w", err)
		}
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		retryAfter, err := c.doOnce(ctx, method, path, buf, out)
		if err == nil {
			return nil
		}
		lastErr = err
		if retryAfter < 0 || attempt >= c.MaxRetries {
			return lastErr
		}
		if err := sleepBackoff(ctx, c.backoff(attempt), retryAfter); err != nil {
			return fmt.Errorf("service: retrying %s %s: %w", method, path, err)
		}
	}
}

// doOnce runs one attempt. retryAfter >= 0 marks the error retryable,
// carrying the server's Retry-After ask (0 when absent).
func (c *Client) doOnce(ctx context.Context, method, path string, body []byte, out any) (retryAfter time.Duration, err error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return -1, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return -1, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		var e struct {
			Error string `json:"error"`
		}
		msg := resp.Status
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			msg = e.Error
		}
		err := fmt.Errorf("service: %s %s: %s", method, path, msg)
		if resp.StatusCode == http.StatusServiceUnavailable {
			ra := time.Duration(0)
			if secs, perr := strconv.Atoi(resp.Header.Get("Retry-After")); perr == nil && secs >= 0 {
				ra = time.Duration(secs) * time.Second
			}
			return ra, err
		}
		return -1, err
	}
	if out == nil {
		return -1, nil
	}
	if raw, ok := out.(*[]byte); ok {
		// Non-JSON endpoints (Prometheus exposition, JSONL event
		// streams) are fetched verbatim.
		*raw, err = io.ReadAll(resp.Body)
		if err != nil {
			return -1, fmt.Errorf("service: reading response: %w", err)
		}
		return -1, nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return -1, fmt.Errorf("service: decoding response: %w", err)
	}
	return -1, nil
}

// backoff returns the ceiling for the attempt'th retry sleep.
func (c *Client) backoff(attempt int) time.Duration {
	base := c.BaseBackoff
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	max := c.MaxBackoff
	if max <= 0 {
		max = 5 * time.Second
	}
	d := base << uint(attempt)
	if d <= 0 || d > max { // <<-overflow or past the cap
		d = max
	}
	return d
}

// sleepBackoff sleeps a full-jitter draw from [0, ceiling), floored by
// the server's Retry-After ask, or returns early when ctx ends.
func sleepBackoff(ctx context.Context, ceiling, floor time.Duration) error {
	d := time.Duration(rand.Int63n(int64(ceiling) + 1))
	if d < floor {
		d = floor
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
