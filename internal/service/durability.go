package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"

	"github.com/explore-by-example/aide/internal/durable"
	"github.com/explore-by-example/aide/internal/explore"
)

// RecoverSessions replays every write-ahead log in the durable data
// directory, resurrecting the sessions a previous process left behind —
// after a crash, a SIGKILL, or a janitor eviction. Call it once, before
// serving traffic.
//
// Each recovered session keeps its original ID, so clients reconnect to
// the same URLs. Recovery replays the log through a fresh session: the
// creation record rebuilds the configuration, and the label history
// answers the oracle instantly, so the deterministic steering loop
// re-traverses the exact trajectory the user steered — bit-identical
// predicates — without asking for a single label again. If the log was
// compacted, replay starts from the embedded snapshot instead
// (converging, not bit-identical; see Server.SnapshotEvery).
//
// A log that cannot be recovered (unknown view, corrupt create record)
// is skipped with a log line, never deleted: the bytes may still be
// salvageable by hand.
func (s *Server) RecoverSessions(logger *slog.Logger) (int, error) {
	if s.Durable == nil {
		return 0, nil
	}
	if logger == nil {
		logger = slog.Default()
	}
	ids, err := s.Durable.List()
	if err != nil {
		return 0, err
	}
	recovered := 0
	for _, id := range ids {
		if err := s.recoverOne(id); err != nil {
			logger.Warn("session recovery skipped", "session", id, "error", err)
			continue
		}
		recovered++
		obsSessionsRecovered.Inc()
	}
	return recovered, nil
}

func (s *Server) recoverOne(id string) error {
	s.mu.Lock()
	_, exists := s.sessions[id]
	s.mu.Unlock()
	if exists {
		return fmt.Errorf("session %s already live", id)
	}
	log, recs, err := s.Durable.Open(id)
	if err != nil {
		return err
	}
	if len(recs) == 0 || recs[0].Type != durable.RecCreate {
		log.Close()
		return fmt.Errorf("log has no create record")
	}
	var req CreateSessionRequest
	if err := json.Unmarshal(recs[0].Payload, &req); err != nil {
		log.Close()
		return fmt.Errorf("corrupt create record: %w", err)
	}
	s.mu.Lock()
	view := s.views[req.View]
	s.mu.Unlock()
	if view == nil {
		log.Close()
		return fmt.Errorf("view %q not registered", req.View)
	}
	// Replay is only bit-identical over the exact data the labels were
	// recorded against. Old logs (pre-fingerprint) carry no fingerprint
	// and are replayed on trust.
	if req.ViewFingerprint != "" && req.ViewFingerprint != view.Fingerprint() {
		log.Close()
		return fmt.Errorf("view %q fingerprint mismatch: log has %s, view is %s",
			req.View, req.ViewFingerprint, view.Fingerprint())
	}
	opts, err := s.optsFromRequest(req)
	if err != nil {
		log.Close()
		return fmt.Errorf("corrupt create record: %w", err)
	}

	// Replay starts after the latest snapshot (if the log was
	// compacted); labels before it are already inside the snapshot.
	var snapshot []byte
	start := 1
	for i, r := range recs {
		if r.Type == durable.RecSnapshot {
			snapshot = r.Payload
			start = i + 1
		}
	}
	ls := s.newLiveSession(id, req, opts)
	ls.wal = log
	for _, r := range recs[start:] {
		if r.Type != durable.RecLabel {
			continue
		}
		row, relevant, err := durable.DecodeLabel(r.Payload)
		if err != nil {
			continue // checksummed but malformed: skip, like a corrupt record
		}
		ls.hist[int(row)] = relevant
		ls.histN++
	}
	// The next compaction waits for SnapshotEvery labels beyond what the
	// log already holds.
	ls.compactedAt = ls.histN
	ls.baseSnapshot = snapshot

	var sess *explore.Session
	if snapshot != nil {
		sess, err = explore.Resume(bytes.NewReader(snapshot), view, s.oracleFor(ls))
	} else {
		sess, err = explore.NewSession(view, s.oracleFor(ls), opts)
	}
	if err != nil {
		ls.cancel()
		log.Close()
		return fmt.Errorf("rebuilding session: %w", err)
	}
	// The flight journal reopens in append mode: a recovered session's
	// events continue the same file its previous incarnation wrote.
	s.openFlight(ls)
	ls.instrument(sess)

	s.mu.Lock()
	s.sessions[id] = ls
	s.mu.Unlock()
	obsSessionsActive.Add(1)
	go s.runSession(ls, sess, view)
	return nil
}
