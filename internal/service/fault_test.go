package service

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/explore-by-example/aide/internal/dataset"
	"github.com/explore-by-example/aide/internal/durable"
	"github.com/explore-by-example/aide/internal/engine"
	"github.com/explore-by-example/aide/internal/geom"
)

func newTestDurable(t *testing.T) (*durable.Manager, error) {
	t.Helper()
	return durable.NewManager(t.TempDir(), durable.Options{Fsync: durable.FsyncNever})
}

// uniformView regenerates the deterministic test view; two calls with
// the same seed produce bit-identical data, which is what lets a second
// server recover sessions logged by a first.
func uniformView(t *testing.T, seed int64) *engine.View {
	t.Helper()
	tab := dataset.GenerateUniform(10_000, 2, seed)
	v, err := engine.NewView(tab, []string{"a0", "a1"})
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestRecoverSessionsReplay kills a server mid-exploration (abandoning
// it, as a crash would) and recovers its session on a fresh server from
// the WAL alone. The recovered session must keep its ID, never re-ask a
// label, and end with predictions bit-identical to a control run that
// was never interrupted.
func TestRecoverSessionsReplay(t *testing.T) {
	dir := t.TempDir()
	target := geom.R(30, 45, 50, 65)
	req := CreateSessionRequest{
		View:                "uniform",
		Seed:                7,
		SamplesPerIteration: 10,
		MaxIterations:       12,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	// Phase 1: explore partway, then "crash".
	vA := uniformView(t, 1)
	mA, err := durable.NewManager(dir, durable.Options{Fsync: durable.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	srvA := NewServer(map[string]*engine.View{"uniform": vA})
	srvA.SampleWait = 5 * time.Second
	srvA.Durable = mA
	tsA := httptest.NewServer(srvA)
	cA := NewClient(tsA.URL, nil)
	id, err := cA.CreateSession(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if n := labelLoop(t, cA, ctx, id, vA, target, 35); n != 35 {
		t.Fatalf("labeled %d before crash, want 35", n)
	}
	tsA.Close() // no DELETE, no manager close: the process just died

	// Phase 2: a fresh server over the same data recovers the session.
	vB := uniformView(t, 1)
	mB, err := durable.NewManager(dir, durable.Options{Fsync: durable.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	srvB := NewServer(map[string]*engine.View{"uniform": vB})
	srvB.SampleWait = 5 * time.Second
	srvB.Durable = mB
	n, err := srvB.RecoverSessions(slog.New(slog.NewTextHandler(io.Discard, nil)))
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("recovered %d sessions, want 1", n)
	}
	tsB := httptest.NewServer(srvB)
	defer tsB.Close()
	cB := NewClient(tsB.URL, nil)
	// Same ID, same URLs: the client reconnects as if nothing happened.
	if _, err := cB.Status(ctx, id); err != nil {
		t.Fatalf("recovered session not addressable: %v", err)
	}
	labelLoop(t, cB, ctx, id, vB, target, 300)
	qRecovered, err := cB.PredictedQuery(ctx, id)
	if err != nil {
		t.Fatal(err)
	}

	// Control: the same exploration, never interrupted.
	vC := uniformView(t, 1)
	srvC := NewServer(map[string]*engine.View{"uniform": vC})
	srvC.SampleWait = 5 * time.Second
	tsC := httptest.NewServer(srvC)
	defer tsC.Close()
	cC := NewClient(tsC.URL, nil)
	idC, err := cC.CreateSession(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	labelLoop(t, cC, ctx, idC, vC, target, 300)
	qControl, err := cC.PredictedQuery(ctx, idC)
	if err != nil {
		t.Fatal(err)
	}

	if len(qControl.Areas) == 0 {
		t.Fatal("control run predicted nothing")
	}
	if !queriesEqual(qRecovered, qControl) {
		t.Errorf("recovered run diverged from control:\nrecovered: %q\ncontrol:   %q",
			qRecovered.SQL, qControl.SQL)
	}
}

// TestExpireIdleKeepsWAL checks the janitor/persistence contract:
// eviction frees the in-memory session but keeps the log, so the
// exploration survives a later restart; only DELETE destroys it.
func TestExpireIdleKeepsWAL(t *testing.T) {
	m, err := newTestDurable(t)
	if err != nil {
		t.Fatal(err)
	}
	v := uniformView(t, 1)
	srv := NewServer(map[string]*engine.View{"uniform": v})
	srv.SampleWait = 5 * time.Second
	srv.Durable = m
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := NewClient(ts.URL, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	id, err := c.CreateSession(ctx, CreateSessionRequest{View: "uniform", Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	labelLoop(t, c, ctx, id, v, geom.R(30, 45, 50, 65), 5)

	if n := srv.ExpireIdle(0); n != 1 {
		t.Fatalf("evicted %d sessions, want 1", n)
	}
	if _, err := c.Status(ctx, id); err == nil {
		t.Error("evicted session should 404")
	}
	walPath := filepath.Join(m.Dir(), id+".wal")
	if _, err := os.Stat(walPath); err != nil {
		t.Fatalf("eviction destroyed the WAL: %v", err)
	}

	// Recovery resurrects the evicted session under the same ID.
	if n, err := srv.RecoverSessions(slog.New(slog.NewTextHandler(io.Discard, nil))); err != nil || n != 1 {
		t.Fatalf("RecoverSessions = %d, %v", n, err)
	}
	if _, err := c.Status(ctx, id); err != nil {
		t.Fatalf("resurrected session not addressable: %v", err)
	}
	labelLoop(t, c, ctx, id, v, geom.R(30, 45, 50, 65), 3)

	// DELETE is the one destructive path.
	if err := c.Close(ctx, id); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(walPath); !os.IsNotExist(err) {
		t.Errorf("DELETE left the WAL behind: %v", err)
	}
}

// TestSnapshotCompaction drives enough labels past SnapshotEvery and
// checks the log was rewritten around a snapshot record, and that a
// compacted log still recovers to a working session.
func TestSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	m, err := durable.NewManager(dir, durable.Options{Fsync: durable.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	v := uniformView(t, 1)
	srv := NewServer(map[string]*engine.View{"uniform": v})
	srv.SampleWait = 5 * time.Second
	srv.Durable = m
	srv.SnapshotEvery = 10
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := NewClient(ts.URL, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	id, err := c.CreateSession(ctx, CreateSessionRequest{
		View: "uniform", Seed: 7, SamplesPerIteration: 10, MaxIterations: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	labelLoop(t, c, ctx, id, v, geom.R(30, 45, 50, 65), 40)

	// Compaction runs on the session goroutine between iterations; give
	// it a beat.
	var recs []durable.Record
	deadline := time.Now().Add(10 * time.Second)
	for {
		recs, err = durable.ReadLog(filepath.Join(dir, id+".wal"))
		if err == nil {
			snap := false
			for _, r := range recs {
				if r.Type == durable.RecSnapshot {
					snap = true
				}
			}
			if snap {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("log never compacted; %d records", len(recs))
		}
		time.Sleep(20 * time.Millisecond)
	}
	if recs[0].Type != durable.RecCreate || recs[1].Type != durable.RecSnapshot {
		t.Fatalf("compacted log starts %v, %v; want create, snapshot", recs[0].Type, recs[1].Type)
	}

	// A compacted log recovers (converging resume, not bit-identical).
	ts.Close()
	v2 := uniformView(t, 1)
	m2, err := durable.NewManager(dir, durable.Options{Fsync: durable.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	srv2 := NewServer(map[string]*engine.View{"uniform": v2})
	srv2.SampleWait = 5 * time.Second
	srv2.Durable = m2
	if n, err := srv2.RecoverSessions(slog.New(slog.NewTextHandler(io.Discard, nil))); err != nil || n != 1 {
		t.Fatalf("RecoverSessions = %d, %v", n, err)
	}
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()
	c2 := NewClient(ts2.URL, nil)
	st, err := c2.Status(ctx, id)
	if err != nil {
		t.Fatalf("recovered session not addressable: %v", err)
	}
	if st.TotalLabeled == 0 {
		t.Error("snapshot recovery lost the labeled set")
	}
	labelLoop(t, c2, ctx, id, v2, geom.R(30, 45, 50, 65), 5)
}

// TestClientRetryBackoff checks 503s are retried with backoff and a
// Retry-After floor, and everything else is not.
func TestClientRetryBackoff(t *testing.T) {
	var calls atomic.Int64
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprint(w, `{"error":"overloaded"}`)
			return
		}
		fmt.Fprint(w, `{"status":"ok"}`)
	})
	ts := httptest.NewServer(h)
	defer ts.Close()
	c := NewClient(ts.URL, nil)
	c.BaseBackoff = time.Millisecond
	if err := c.Health(context.Background()); err != nil {
		t.Fatalf("health after retries: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d calls, want 3 (two 503s + success)", got)
	}

	// Non-503 errors are never retried.
	calls.Store(100) // handler now always succeeds; use a 404 server instead
	ts404 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusNotFound)
	}))
	defer ts404.Close()
	c404 := NewClient(ts404.URL, nil)
	c404.BaseBackoff = time.Millisecond
	before := calls.Load()
	if err := c404.Health(context.Background()); err == nil {
		t.Fatal("404 should error")
	}
	if calls.Load() != before+1 {
		t.Errorf("404 was retried: %d extra calls", calls.Load()-before)
	}
}

// TestClientRetryHonorsContext checks a cancelled context interrupts
// the backoff sleep, not just the HTTP exchange.
func TestClientRetryHonorsContext(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	c := NewClient(ts.URL, nil)
	c.BaseBackoff = 10 * time.Second

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := c.Health(ctx)
	if err == nil {
		t.Fatal("want error")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("retry ignored context for %v", elapsed)
	}
	if !strings.Contains(err.Error(), context.DeadlineExceeded.Error()) {
		t.Errorf("error = %v, want the deadline surfaced", err)
	}
}

// TestMaxInflightSheds occupies the only slot with a long poll and
// checks the next request is shed with 503 + Retry-After, while
// /healthz stays exempt.
func TestMaxInflightSheds(t *testing.T) {
	srv, _ := newTestServer(t)
	srv.SampleWait = 1 * time.Second
	srv.MaxInflight = 1
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := NewClient(ts.URL, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	id, err := c.CreateSession(ctx, CreateSessionRequest{View: "uniform", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close(ctx, id)
	// Fetch the first sample without labeling it: the session goroutine
	// now blocks on the reply, so the next GET /sample long-polls its
	// full SampleWait, pinning the single inflight slot.
	if _, err := c.NextSample(ctx, id); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.Get(ts.URL + "/v1/sessions/" + id + "/sample")
		if err == nil {
			resp.Body.Close()
		}
	}()
	time.Sleep(100 * time.Millisecond) // let the long poll occupy the slot

	resp, err := http.Get(ts.URL + "/v1/sessions/" + id + "/status")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("status under load = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After")
	}
	// Liveness is exempt from shedding.
	respH, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	respH.Body.Close()
	if respH.StatusCode != http.StatusOK {
		t.Errorf("healthz under load = %d, want 200", respH.StatusCode)
	}
	<-done
	// The slot is free again.
	if _, err := c.Status(ctx, id); err != nil {
		t.Errorf("status after load: %v", err)
	}
}

// TestMaxBodyBytes rejects oversized request bodies.
func TestMaxBodyBytes(t *testing.T) {
	srv, _ := newTestServer(t)
	srv.MaxBodyBytes = 64
	ts := httptest.NewServer(srv)
	defer ts.Close()

	big := `{"view":"uniform","seed":1,"pad":"` + strings.Repeat("x", 1024) + `"}`
	resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized body status = %d, want 400", resp.StatusCode)
	}
}

// TestRecoveryMiddleware turns handler panics into 500s carrying the
// request ID instead of torn connections.
func TestRecoveryMiddleware(t *testing.T) {
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	h := WithRequestLog(logger, WithRecovery(logger, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("boom")
	})))
	ts := httptest.NewServer(h)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/anything")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("status = %d, want 500", resp.StatusCode)
	}
	if resp.Header.Get("X-Request-ID") == "" {
		t.Error("missing X-Request-ID header")
	}
	if !strings.Contains(string(body), "request_id") {
		t.Errorf("body %q missing request_id", body)
	}
}

// TestDeadlineMiddleware attaches a deadline visible to handlers.
func TestDeadlineMiddleware(t *testing.T) {
	h := WithDeadline(50*time.Millisecond, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, ok := r.Context().Deadline(); !ok {
			t.Error("handler saw no deadline")
		}
		select {
		case <-r.Context().Done():
			w.WriteHeader(http.StatusRequestTimeout)
		case <-time.After(5 * time.Second):
			w.WriteHeader(http.StatusOK)
		}
	}))
	ts := httptest.NewServer(h)
	defer ts.Close()
	start := time.Now()
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestTimeout {
		t.Errorf("status = %d, want 408", resp.StatusCode)
	}
	if time.Since(start) > 3*time.Second {
		t.Error("deadline did not fire")
	}
}
