package service

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"github.com/explore-by-example/aide/internal/durable"
	"github.com/explore-by-example/aide/internal/engine"
	"github.com/explore-by-example/aide/internal/geom"
	"github.com/explore-by-example/aide/internal/obs"
)

func TestPrometheusEndpoint(t *testing.T) {
	srv, v := newTestServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := NewClient(ts.URL, nil)
	ctx := context.Background()

	id := driveSession(t, c, v, 35)
	defer c.Close(ctx, id)

	raw, err := c.PrometheusMetrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateExposition(raw); err != nil {
		t.Fatalf("scrape invalid: %v", err)
	}
	out := string(raw)
	for _, want := range []string{
		// Labeled families from the instrumented layers.
		`aide_iteration_seconds_bucket{phase="train",le=`,
		`engine_cache_ops{op=`,
		// Runtime gauges ride along in the default registry.
		"# TYPE go_goroutines gauge",
		"go_memstats_heap_alloc_bytes",
		// Dotted internal names are sanitized.
		"service_sessions_created",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type = %q", ct)
	}

	// The JSON snapshot carries the same runtime gauges (the satellite
	// guarantee: both /v1/metrics and /metrics expose them).
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if g, ok := m["go_goroutines"].(float64); !ok || g < 1 {
		t.Errorf("go_goroutines in /v1/metrics = %v", m["go_goroutines"])
	}
	if _, ok := m[`aide_iteration_seconds{phase="train"}`]; !ok {
		t.Error(`/v1/metrics missing aide_iteration_seconds{phase="train"}`)
	}
}

func TestSLOEndpointAndHealthz(t *testing.T) {
	srv, v := newTestServer(t)
	mon, err := obs.NewSLOMonitor(obs.DefaultSLOConfig())
	if err != nil {
		t.Fatal(err)
	}
	srv.SLO = mon
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := NewClient(ts.URL, nil)
	ctx := context.Background()

	id := driveSession(t, c, v, 25)
	defer c.Close(ctx, id)

	st, err := c.SLO(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Healthy {
		t.Errorf("slo status = %+v, want healthy", st)
	}
	if st.Latency.Long.Total == 0 {
		t.Error("no requests recorded against the SLO")
	}
	if st.Latency.ThresholdMS != 500 {
		t.Errorf("latency threshold = %v ms, want 500", st.Latency.ThresholdMS)
	}

	// healthz carries the SLO detail without changing liveness semantics.
	var hz map[string]any
	if err := c.do(ctx, http.MethodGet, "/healthz", nil, &hz); err != nil {
		t.Fatal(err)
	}
	if hz["status"] != "ok" || hz["slo_healthy"] != true {
		t.Errorf("healthz = %v", hz)
	}
	if _, ok := hz["slo"].(map[string]any); !ok {
		t.Errorf("healthz slo detail = %v", hz["slo"])
	}
}

func TestFlightEventsEndpointAndJournal(t *testing.T) {
	srv, v := newTestServer(t)
	m, err := durable.NewManager(t.TempDir(), durable.Options{Fsync: durable.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	srv.Durable = m
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := NewClient(ts.URL, nil)
	ctx := context.Background()

	id := driveSession(t, c, v, 35)

	events, err := c.Events(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no flight events after 35 labels")
	}
	prevIter := -1
	for _, ev := range events {
		if ev.Schema != obs.FlightEventSchema || ev.Session != id {
			t.Fatalf("event not stamped: %+v", ev)
		}
		if ev.Iteration <= prevIter {
			t.Errorf("iterations not increasing: %d after %d", ev.Iteration, prevIter)
		}
		prevIter = ev.Iteration
		if ev.DurationMS < 0 || ev.TotalLabeled <= 0 {
			t.Errorf("implausible event: %+v", ev)
		}
	}
	// Phase timing lands in at least one event (discovery or train).
	sawPhase := false
	for _, ev := range events {
		if len(ev.PhaseMS) > 0 {
			sawPhase = true
		}
	}
	if !sawPhase {
		t.Error("no event carries phase timings")
	}

	// The persistent journal next to the WAL is well-formed JSONL holding
	// at least the retained events.
	path := srv.eventsPath(id)
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("journal missing: %v", err)
	}
	fromDisk, err := obs.ReadJournal(f)
	f.Close()
	if err != nil {
		t.Fatalf("journal malformed: %v", err)
	}
	if len(fromDisk) < len(events) {
		t.Errorf("journal holds %d events, ring served %d", len(fromDisk), len(events))
	}

	// DELETE removes the journal with the session.
	if err := c.Close(ctx, id); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("journal still on disk after DELETE: %v", err)
	}
}

func TestFlightJournalSurvivesRecovery(t *testing.T) {
	dir := t.TempDir()
	mA, err := durable.NewManager(dir, durable.Options{Fsync: durable.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	srvA, v := newTestServer(t)
	srvA.Durable = mA
	tsA := httptest.NewServer(srvA)
	cA := NewClient(tsA.URL, nil)
	ctx := context.Background()

	id := driveSession(t, cA, v, 25)
	eventsA, err := cA.Events(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	tsA.Close() // simulate process death; journal and WAL stay on disk

	mB, err := durable.NewManager(dir, durable.Options{Fsync: durable.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	srvB, _ := newTestServer(t)
	srvB.Durable = mB
	if n, err := srvB.RecoverSessions(nil); err != nil || n != 1 {
		t.Fatalf("recovered %d sessions, err %v", n, err)
	}
	tsB := httptest.NewServer(srvB)
	defer tsB.Close()
	cB := NewClient(tsB.URL, nil)

	// Drive a few more labels through the recovered incarnation; its
	// events append to the same journal.
	if n := driveMoreLabels(t, cB, v, id, 10); n == 0 {
		t.Fatal("recovered session served no samples")
	}

	f, err := os.Open(srvB.eventsPath(id))
	if err != nil {
		t.Fatal(err)
	}
	all, err := obs.ReadJournal(f)
	f.Close()
	if err != nil {
		t.Fatalf("journal malformed after recovery append: %v", err)
	}
	if len(all) <= len(eventsA) {
		t.Errorf("journal did not grow across recovery: %d then %d", len(eventsA), len(all))
	}
	cB.Close(ctx, id)
}

// driveMoreLabels continues labeling an existing session.
func driveMoreLabels(t *testing.T, c *Client, v *engine.View, id string, labels int) int {
	t.Helper()
	ctx := context.Background()
	n := 0
	for i := 0; i < labels; i++ {
		sample, err := c.NextSample(ctx, id)
		if err != nil {
			break
		}
		p := v.Normalizer().ToNorm(geom.Point{sample.Values["a0"], sample.Values["a1"]})
		if err := c.SubmitLabel(ctx, id, sample.Row, geom.R(20, 70, 25, 75).Contains(p)); err != nil {
			t.Fatal(err)
		}
		n++
	}
	return n
}

func TestRequestIDsOnIterationSpans(t *testing.T) {
	srv, v := newTestServer(t)
	ts := httptest.NewServer(WithRequestLog(nil, srv))
	defer ts.Close()
	c := NewClient(ts.URL, nil)
	ctx := context.Background()

	id := driveSession(t, c, v, 35)
	defer c.Close(ctx, id)

	tr, err := c.Trace(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, sp := range tr.Spans {
		ids, ok := sp.Attrs["request_ids"].(string)
		if ok && ids != "" {
			found = true
		}
	}
	if !found {
		t.Errorf("no iteration span carries request_ids; spans = %+v", tr.Spans)
	}
}
