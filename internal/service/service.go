// Package service exposes AIDE exploration sessions over HTTP+JSON — the
// middleware role AIDE plays in the paper's system architecture, where a
// front-end shows samples to the user and the steering logic runs behind
// it. Each session runs in its own goroutine; the human-in-the-loop
// protocol is sequential, matching the framework's oracle:
//
//	POST   /v1/sessions                 create a session        -> {id}
//	GET    /v1/sessions/{id}/sample     next tuple to label     -> {row, values} (long-poll)
//	POST   /v1/sessions/{id}/label      submit a label          <- {row, relevant}
//	GET    /v1/sessions/{id}/status     progress snapshot
//	GET    /v1/sessions/{id}/query      current predicted query
//	GET    /v1/sessions/{id}/trace      recent per-iteration trace spans
//	GET    /v1/sessions/{id}/events     flight-recorder events (JSONL)
//	DELETE /v1/sessions/{id}            stop and discard
//	GET    /v1/views                    registered views (rows, attrs)
//	GET    /v1/metrics                  process metrics (expvar-style JSON)
//	GET    /v1/slo                      SLO burn-rate status
//	GET    /metrics                     Prometheus text exposition
//	GET    /healthz                     liveness probe (+ SLO detail)
//
// Sessions idle longer than SessionTTL are evicted by the janitor
// (StartJanitor) so abandoned long-poll sessions do not leak.
//
// The Client type wraps the protocol for Go callers.
package service

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/explore-by-example/aide/internal/dataset"
	"github.com/explore-by-example/aide/internal/durable"
	"github.com/explore-by-example/aide/internal/engine"
	"github.com/explore-by-example/aide/internal/explore"
	"github.com/explore-by-example/aide/internal/faultinject"
	"github.com/explore-by-example/aide/internal/obs"
	"github.com/explore-by-example/aide/internal/shardrpc"
)

// Server routes exploration-session requests over a set of registered
// views. It implements http.Handler.
type Server struct {
	mu       sync.Mutex
	views    map[string]*engine.View
	sessions map[string]*liveSession
	// SampleWait bounds how long GET /sample blocks waiting for the
	// session to propose a tuple (default 30s).
	SampleWait time.Duration
	// SessionTTL is how long a session may sit idle (no requests) before
	// the janitor evicts it (default 30m).
	SessionTTL time.Duration
	// TraceCapacity is how many recent iteration traces each session
	// retains for GET /sessions/{id}/trace (default 64).
	TraceCapacity int
	// FlightCapacity is how many recent flight-recorder events each
	// session retains in memory for GET /sessions/{id}/events (default
	// 256). With Durable set, every event is additionally persisted to a
	// JSONL journal next to the session's WAL.
	FlightCapacity int
	// Metrics is the registry /v1/metrics (JSON) and /metrics (Prometheus
	// text exposition) serve (default obs.Default, which the engine and
	// steering loop report into).
	Metrics *obs.Registry
	// SLO, when set, records every request's latency and outcome and
	// serves multi-window burn rates on GET /v1/slo plus a health detail
	// on /healthz. The long-poll sample endpoint is excluded from SLO
	// accounting: its latency is dominated by user think-time, not
	// service health. Nil disables SLO monitoring.
	SLO *obs.SLOMonitor

	// Durable, when set, write-ahead-logs every session so it survives a
	// process crash: creation parameters and each acknowledged label hit
	// the log before the label is acked, and RecoverSessions replays the
	// logs on start. Nil disables persistence.
	Durable *durable.Manager
	// SnapshotEvery compacts a session's log after this many new labels,
	// replacing the label history with a snapshot record. Compaction
	// bounds replay cost but makes recovery converge-identical rather
	// than bit-identical (snapshot resume reseeds the generator); 0
	// disables compaction. Default 0.
	SnapshotEvery int
	// MaxInflight sheds load: beyond this many concurrent requests the
	// server answers 503 with a Retry-After header instead of queueing.
	// 0 disables shedding.
	MaxInflight int
	// MaxBodyBytes caps request bodies (default 1 MiB).
	MaxBodyBytes int64
	// MaxSessionRestarts bounds how many times a panicked session is
	// rebuilt and replayed before it is quarantined (default 2).
	MaxSessionRestarts int
	// DefaultBudget is applied to every session that does not override a
	// given cap in its creation request. Zero fields are unlimited.
	DefaultBudget explore.Budget
	// DefaultConflictPolicy resolves contradictory labels for sessions
	// whose creation request leaves conflict_policy empty (default
	// last-wins).
	DefaultConflictPolicy explore.ConflictPolicy

	// Registry, when set, is where RegisterTable acquires shared views
	// from (nil: engine.SharedViews). Views acquired through a registry
	// are refcounted process-wide: every server — and every session — over
	// the same dataset shares one covering index, so creating a session
	// costs O(1) instead of O(index build) after the first.
	Registry *engine.Registry
	// CacheBytes, when positive, attaches a shared predicate-result cache
	// of roughly this many bytes to each view registered with
	// RegisterTable, memoizing Count/RowsIn across all of the view's
	// sessions (bit-identical results; see engine.Cache). Zero disables.
	CacheBytes int64

	// Shards, when positive, splits each view registered with
	// RegisterTable into that many supervised cell-range shards
	// (engine.View.WithShards). Results are bit-identical to the
	// unsharded view; a failing shard degrades to partial results with a
	// named degradation instead of failing the query. Zero disables.
	Shards int
	// ShardDeadline bounds one shard's attempt; a shard past it is
	// retried and, failing that, dropped from the answer for the op
	// (0: no deadline).
	ShardDeadline time.Duration
	// HedgeAfter launches a hedged duplicate attempt when a shard has
	// not answered after this long (0: no hedging).
	HedgeAfter time.Duration
	// ShardAddrs lists remote shard-worker addresses (host:port for TCP,
	// filesystem paths for unix sockets). With Shards > 0, RegisterTable
	// dials every worker, verifies it built the same view (fingerprint +
	// shard count pinned in the hello exchange), and routes the shard
	// indexes the worker announces over the shardrpc transport; shards no
	// worker claims stay in-process — a mixed local/remote topology,
	// bit-identical to the all-local one. Workers must serve the view
	// being registered, so ShardAddrs is typically used with exactly one
	// registered view. Empty disables.
	ShardAddrs []string
	// ShardRPC tunes the remote-shard transport (zero value: shardrpc
	// defaults).
	ShardRPC shardrpc.Options

	// acquired tracks the base registry views RegisterTable took, so
	// Close can release them.
	acquired []*engine.View
	// shardClients tracks dialed shard workers, closed with the server.
	shardClients []*shardrpc.Client

	// inflight counts requests currently being served, for the
	// MaxInflight shedding gate.
	inflight atomic.Int64
}

// NewServer creates a server over the given named views.
func NewServer(views map[string]*engine.View) *Server {
	vs := make(map[string]*engine.View, len(views))
	for k, v := range views {
		vs[k] = v
	}
	return &Server{
		views:              vs,
		sessions:           make(map[string]*liveSession),
		SampleWait:         30 * time.Second,
		SessionTTL:         30 * time.Minute,
		TraceCapacity:      64,
		Metrics:            obs.Default,
		MaxBodyBytes:       1 << 20,
		MaxSessionRestarts: 2,
	}
}

// registry returns the view registry RegisterTable acquires from.
func (s *Server) registry() *engine.Registry {
	if s.Registry != nil {
		return s.Registry
	}
	return engine.SharedViews
}

// RegisterTable registers name over a view of tab acquired through the
// server's registry. Servers (and, within a server, sessions) that
// register the same data with the same attrs and workers share one
// immutable view — the covering indexes are built at most once
// process-wide, so after the first registration this is O(1). When
// s.CacheBytes is positive the view also gets a shared predicate-result
// cache memoizing Count/RowsIn across all of its sessions. Call Close to
// release the acquired views.
func (s *Server) RegisterTable(name string, tab *dataset.Table, attrs []string, workers int) error {
	v, err := s.registry().AcquireShardedWorkers(tab, attrs, workers, engine.ShardOptions{
		Shards:     s.Shards,
		Deadline:   s.ShardDeadline,
		HedgeAfter: s.HedgeAfter,
	})
	if err != nil {
		return err
	}
	shared := v
	if s.CacheBytes > 0 && shared.Cache() == nil {
		shared = shared.WithCache(engine.NewCache(s.CacheBytes))
	}
	var clients []*shardrpc.Client
	if s.Shards > 0 && len(s.ShardAddrs) > 0 {
		var remote map[int]engine.ShardBackend
		remote, clients, err = s.dialShardWorkers(shared)
		if err == nil {
			shared, err = shared.WithShardBackends(remote)
		}
		if err != nil {
			for _, c := range clients {
				c.Close()
			}
			s.registry().Release(v)
			return err
		}
	}
	s.mu.Lock()
	if _, dup := s.views[name]; dup {
		s.mu.Unlock()
		for _, c := range clients {
			c.Close()
		}
		s.registry().Release(v)
		return fmt.Errorf("service: view %q already registered", name)
	}
	if s.views == nil {
		s.views = make(map[string]*engine.View)
	}
	s.views[name] = shared
	s.acquired = append(s.acquired, v)
	s.shardClients = append(s.shardClients, clients...)
	s.mu.Unlock()
	return nil
}

// dialShardWorkers connects to every configured shard worker for the
// view and collects the remote backends they announce. Two workers
// claiming the same shard is a topology error.
func (s *Server) dialShardWorkers(v *engine.View) (map[int]engine.ShardBackend, []*shardrpc.Client, error) {
	remote := make(map[int]engine.ShardBackend)
	var clients []*shardrpc.Client
	fail := func(err error) (map[int]engine.ShardBackend, []*shardrpc.Client, error) {
		for _, c := range clients {
			c.Close()
		}
		return nil, nil, err
	}
	for _, addr := range s.ShardAddrs {
		c, err := shardrpc.Dial(addr, v.Fingerprint(), v.ShardCount(), s.ShardRPC)
		if err != nil {
			return fail(fmt.Errorf("service: shard worker %s: %w", addr, err))
		}
		clients = append(clients, c)
		for idx, b := range c.Backends() {
			if _, dup := remote[idx]; dup {
				return fail(fmt.Errorf("service: shard %d claimed by two workers (%s)", idx, addr))
			}
			remote[idx] = b
		}
	}
	return remote, clients, nil
}

// Close releases every registry view acquired by RegisterTable. Views
// passed directly to NewServer are untouched. Safe to call more than
// once.
func (s *Server) Close() {
	s.mu.Lock()
	acquired := s.acquired
	s.acquired = nil
	clients := s.shardClients
	s.shardClients = nil
	s.mu.Unlock()
	for _, c := range clients {
		c.Close()
	}
	for _, v := range acquired {
		s.registry().Release(v)
	}
}

// Views lists the registered view names.
func (s *Server) Views() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.views))
	for k := range s.views {
		out = append(out, k)
	}
	return out
}

// ViewInfo is one registered view's metadata, served by GET /v1/views.
type ViewInfo struct {
	Name  string   `json:"name"`
	Rows  int      `json:"rows"`
	Attrs []string `json:"attrs"`
}

// ViewShardHealth is one sharded view's supervisor snapshot, served on
// /healthz and /v1/slo. A quarantined shard means queries over the view
// degrade to named partial results ("shard_partial:n/N"); it does NOT
// make the service unhealthy — the view is degraded but serving.
type ViewShardHealth struct {
	View    string                   `json:"view"`
	Shards  int                      `json:"shards"`
	Healthy int                      `json:"healthy"`
	States  []engine.ShardHealthInfo `json:"states"`
}

// Degraded reports whether any shard is off the healthy state.
func (h ViewShardHealth) Degraded() bool { return h.Healthy < h.Shards }

// ShardHealth returns the supervisor snapshot of every sharded view,
// sorted by view name (nil when no view is sharded).
func (s *Server) ShardHealth() []ViewShardHealth {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []ViewShardHealth
	for name, v := range s.views {
		infos := v.ShardHealth()
		if infos == nil {
			continue
		}
		h := ViewShardHealth{View: name, Shards: len(infos), States: infos}
		for _, si := range infos {
			if si.State == engine.ShardHealthy.String() {
				h.Healthy++
			}
		}
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].View < out[j].View })
	return out
}

// ViewInfos returns metadata for every registered view, sorted by name.
func (s *Server) ViewInfos() []ViewInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ViewInfo, 0, len(s.views))
	for name, v := range s.views {
		out = append(out, ViewInfo{Name: name, Rows: v.NumRows(), Attrs: v.Attrs()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// TraceResponse is the reply to GET /v1/sessions/{id}/trace: the
// session's most recent per-iteration trace trees, oldest first.
type TraceResponse struct {
	ID   string `json:"id"`
	View string `json:"view"`
	// Total counts every iteration traced over the session's lifetime;
	// Spans holds only the most recent ones (bounded ring buffer).
	Total int64          `json:"total_iterations"`
	Spans []obs.SpanData `json:"spans"`
}

// ExpireIdle evicts every session idle longer than ttl, returning how
// many were evicted. The janitor calls this periodically; tests may call
// it directly.
//
// Eviction frees memory and goroutines, not durability: the session's
// write-ahead log is synced and closed but left on disk, so a server
// restart resurrects the exploration via RecoverSessions. Only an
// explicit DELETE destroys the log.
func (s *Server) ExpireIdle(ttl time.Duration) int {
	cutoff := time.Now().Add(-ttl).UnixNano()
	var victims []*liveSession
	s.mu.Lock()
	for id, ls := range s.sessions {
		if ls.lastActive.Load() < cutoff {
			victims = append(victims, ls)
			delete(s.sessions, id)
		}
	}
	s.mu.Unlock()
	for _, ls := range victims {
		ls.cancel()
		if ls.wal != nil {
			_ = ls.wal.Close()
		}
		ls.closeEvents()
		obsSessionsExpired.Inc()
		obsSessionsActive.Add(-1)
	}
	return len(victims)
}

// StartJanitor runs the idle-session janitor every interval until ctx is
// cancelled, evicting sessions idle longer than SessionTTL so abandoned
// long-poll sessions do not leak goroutines or memory.
func (s *Server) StartJanitor(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = time.Minute
	}
	go func() {
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
				ttl := s.SessionTTL
				if ttl <= 0 {
					ttl = 30 * time.Minute
				}
				s.ExpireIdle(ttl)
			}
		}
	}()
}

// labelRequest is one pending "please label this tuple" exchange between
// the session goroutine and HTTP handlers.
type labelRequest struct {
	row   int
	reply chan bool
}

// sessionStatus is the progress snapshot handlers serve; the session
// goroutine replaces it after every iteration.
type sessionStatus struct {
	Iteration     int     `json:"iteration"`
	TotalLabeled  int     `json:"total_labeled"`
	TotalRelevant int     `json:"total_relevant"`
	RelevantAreas int     `json:"relevant_areas"`
	Done          bool    `json:"done"`
	SQL           string  `json:"sql"`
	WaitSeconds   float64 `json:"avg_wait_seconds"`
	// Conflicts summarizes contradictory labels seen so far and how the
	// session resolved them.
	Conflicts explore.ConflictStats `json:"conflicts"`
	// Degradations lists the budget fallbacks applied in the most recent
	// iteration (empty when the session ran unconstrained).
	Degradations []string `json:"degradations,omitempty"`
}

// liveSession is one running exploration.
type liveSession struct {
	id      string
	view    string
	cancel  context.CancelFunc
	ctx     context.Context
	pending chan labelRequest
	current chan labelRequest // holds the request being labeled, capacity 1
	rec     *obs.Recorder     // per-iteration trace ring buffer

	// flight is the session's wide-event journal; events, when non-nil,
	// is its persistent JSONL sink next to the WAL.
	flight *obs.FlightRecorder
	events *os.File

	// reqIDs collects the ids of requests that drove the session since
	// the last iteration; the span annotator stamps them on the next
	// iteration's root span (bounded — overflow is counted, not stored).
	reqMu      sync.Mutex
	reqIDs     []string
	reqDropped int

	// Creation parameters, kept for the WAL create record and for
	// rebuilding the session after a panic.
	req     CreateSessionRequest
	opts    explore.Options
	created []byte // marshaled req: the WAL create payload

	// wal is the session's write-ahead log (nil: persistence off).
	wal *durable.Log

	// lastActive is the unix-nano time of the last request touching this
	// session; the janitor evicts sessions idle past the TTL.
	lastActive atomic.Int64

	// Label history: every acknowledged (row, relevant) pair, recorded
	// before the label is acked. It is the session's source of truth for
	// replay — a rebuilt or recovered session's oracle consults it first,
	// so known rows are answered instantly and the deterministic steering
	// loop reproduces the exact same trajectory without re-asking the
	// user.
	histMu       sync.Mutex
	hist         map[int]bool
	histN        int
	baseSnapshot []byte // latest compaction snapshot; replay starts here
	compactedAt  int    // histN at the last compaction

	mu       sync.Mutex
	status   sessionStatus
	err      error
	restarts int // panic rebuilds so far
}

// histGet reports a recorded label.
func (ls *liveSession) histGet(row int) (bool, bool) {
	ls.histMu.Lock()
	defer ls.histMu.Unlock()
	lab, ok := ls.hist[row]
	return lab, ok
}

// recordLabel persists one acknowledged label: history first, then the
// WAL. An append error means the label is NOT durable and the caller
// must not ack it.
func (ls *liveSession) recordLabel(row int, relevant bool) error {
	if ls.wal != nil {
		if err := ls.wal.AppendLabel(int64(row), relevant); err != nil {
			return err
		}
	}
	ls.histMu.Lock()
	ls.hist[row] = relevant
	ls.histN++
	ls.histMu.Unlock()
	return nil
}

// histCount returns how many labels were recorded.
func (ls *liveSession) histCount() int {
	ls.histMu.Lock()
	defer ls.histMu.Unlock()
	return ls.histN
}

// touch marks the session as active now.
func (ls *liveSession) touch() { ls.lastActive.Store(time.Now().UnixNano()) }

func (ls *liveSession) snapshot() (sessionStatus, error) {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	return ls.status, ls.err
}

// CreateSessionRequest is the body of POST /v1/sessions.
type CreateSessionRequest struct {
	// View names a view registered with the server.
	View string `json:"view"`
	// Seed drives the session's randomness.
	Seed int64 `json:"seed"`
	// SamplesPerIteration caps labels per iteration (0: default 20).
	SamplesPerIteration int `json:"samples_per_iteration,omitempty"`
	// Discovery is "grid", "clustering" or "hybrid" ("" = grid).
	Discovery string `json:"discovery,omitempty"`
	// DistanceHint, when positive, is the minimum relevant-area width
	// promise (normalized units).
	DistanceHint float64 `json:"distance_hint,omitempty"`
	// MaxIterations bounds the session (0: default 200).
	MaxIterations int `json:"max_iterations,omitempty"`
	// Workers sets the session's parallel-kernel worker count (0:
	// automatic — AIDE_WORKERS or GOMAXPROCS; 1: sequential). Session
	// results are identical at every setting.
	Workers int `json:"workers,omitempty"`
	// ConflictPolicy resolves contradictory labels for the same tuple:
	// "last-wins", "majority" or "strict" ("" = server default).
	ConflictPolicy string `json:"conflict_policy,omitempty"`
	// MaxLabeledRows caps the session's total labeled rows (0 = server
	// default; the session idles once the cap is hit).
	MaxLabeledRows int `json:"max_labeled_rows,omitempty"`
	// MaxIterationMillis soft-caps one steering iteration's wall time;
	// the iteration finishes early with a degradation instead of failing.
	MaxIterationMillis int64 `json:"max_iteration_millis,omitempty"`
	// MaxSamplesPerIteration hard-caps labels per iteration below
	// SamplesPerIteration.
	MaxSamplesPerIteration int `json:"max_samples_per_iteration,omitempty"`
	// MaxTreeNodes caps the decision-tree classifier's size.
	MaxTreeNodes int `json:"max_tree_nodes,omitempty"`
	// MaxMemBytes bounds estimated per-iteration scratch memory;
	// clustering discovery degrades to grid when it would exceed this.
	MaxMemBytes int64 `json:"max_mem_bytes,omitempty"`
	// CacheBytes, when positive, attaches a session-private predicate
	// result cache of roughly this many bytes (no effect when the view
	// already carries a server-wide shared cache, which then wins).
	CacheBytes int64 `json:"cache_bytes,omitempty"`
	// ViewFingerprint is set by the server on the persisted creation
	// record (not by clients): the content fingerprint of the view the
	// session was created over. Crash recovery refuses to replay a log
	// against a view whose data has changed since.
	ViewFingerprint string `json:"view_fingerprint,omitempty"`
}

// CreateSessionResponse is the reply to POST /v1/sessions.
type CreateSessionResponse struct {
	ID string `json:"id"`
}

// Sample is one tuple awaiting a label.
type Sample struct {
	Row    int                `json:"row"`
	Values map[string]float64 `json:"values"`
	// Done reports the session has finished; Row is invalid.
	Done bool `json:"done"`
}

// LabelRequest is the body of POST /v1/sessions/{id}/label.
type LabelRequest struct {
	Row      int  `json:"row"`
	Relevant bool `json:"relevant"`
}

// QueryResponse is the reply to GET /v1/sessions/{id}/query.
type QueryResponse struct {
	SQL   string     `json:"sql"`
	Areas [][]Bounds `json:"areas"`
	Attrs []string   `json:"attrs"`
	Table string     `json:"table"`
}

// Bounds is one attribute range of a predicted area.
type Bounds struct {
	Lo float64 `json:"lo"`
	Hi float64 `json:"hi"`
}

// ServeHTTP implements http.Handler. Every request is counted and timed
// per endpoint into the obs registry. Requests beyond MaxInflight are
// shed with 503 + Retry-After before any work happens — and the
// fault-injection gate sits at the same pre-dispatch point, so an
// injected 503 is as side-effect-free (and as safely retryable) as a
// shed one.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	sw, ok := w.(*statusWriter)
	if !ok {
		sw = &statusWriter{ResponseWriter: w, status: http.StatusOK}
	}
	n := s.inflight.Add(1)
	obsInflight.Add(1)
	defer func() {
		s.inflight.Add(-1)
		obsInflight.Add(-1)
	}()
	endpoint := "shed"
	switch {
	case r.URL.Path == "/healthz":
		// The liveness probe is never shed or fault-injected: it answers
		// as long as the process is alive, which is what it measures.
		endpoint = s.dispatch(sw, r)
	case s.MaxInflight > 0 && n > int64(s.MaxInflight):
		obsShedRequests.Inc()
		sw.Header().Set("Retry-After", "1")
		httpError(sw, http.StatusServiceUnavailable, "server overloaded; retry")
	case faultinject.Err("service.request") != nil:
		// Injected pre-dispatch unavailability: nothing has been read or
		// mutated, so clients retry exactly like a shed request.
		endpoint = "fault"
		sw.Header().Set("Retry-After", "1")
		httpError(sw, http.StatusServiceUnavailable, "injected unavailability; retry")
	default:
		endpoint = s.dispatch(sw, r)
	}
	httpRequests(endpoint).Inc()
	httpSeconds(endpoint).Observe(time.Since(start).Seconds())
	if sw.status >= 400 {
		obsHTTPErrors.Inc()
	}
	// SLO accounting: every request except the long-poll sample endpoint
	// (whose latency is user think-time, not service health). 5xx counts
	// against the availability objective. Record is nil-safe.
	if endpoint != "sample" {
		s.SLO.Record(time.Since(start), sw.status >= 500)
	}
}

// dispatch routes the request and returns the endpoint label its metrics
// are recorded under.
func (s *Server) dispatch(w http.ResponseWriter, r *http.Request) string {
	if r.URL.Path == "/healthz" && r.Method == http.MethodGet {
		// Liveness stays "ok" as long as the process answers; the SLO
		// detail rides along so probes can see burn-rate degradation
		// without flipping liveness.
		resp := map[string]any{"status": "ok"}
		if s.SLO != nil {
			st := s.SLO.Status()
			resp["slo_healthy"] = st.Healthy
			resp["slo"] = st
		}
		if sh := s.ShardHealth(); sh != nil {
			// Shard detail rides along like the SLO detail does: a
			// quarantined shard marks the response degraded without ever
			// flipping liveness — the process is alive and serving partial
			// results by contract.
			resp["shards"] = sh
			for _, h := range sh {
				if h.Degraded() {
					resp["shards_degraded"] = true
					break
				}
			}
		}
		writeJSON(w, http.StatusOK, resp)
		return "healthz"
	}
	if r.URL.Path == "/metrics" && r.Method == http.MethodGet {
		reg := s.Metrics
		if reg == nil {
			reg = obs.Default
		}
		reg.PromHandler().ServeHTTP(w, r)
		return "prometheus"
	}
	path := strings.TrimPrefix(r.URL.Path, "/v1/")
	switch {
	case path == "sessions" && r.Method == http.MethodPost:
		s.createSession(w, r)
		return "create_session"
	case strings.HasPrefix(path, "sessions/"):
		rest := strings.TrimPrefix(path, "sessions/")
		parts := strings.SplitN(rest, "/", 2)
		id := parts[0]
		action := ""
		if len(parts) == 2 {
			action = parts[1]
		}
		return s.dispatchSession(w, r, id, action)
	case path == "views" && r.Method == http.MethodGet:
		writeJSON(w, http.StatusOK, map[string][]ViewInfo{"views": s.ViewInfos()})
		return "views"
	case path == "metrics" && r.Method == http.MethodGet:
		reg := s.Metrics
		if reg == nil {
			reg = obs.Default
		}
		reg.Handler().ServeHTTP(w, r)
		return "metrics"
	case path == "slo" && r.Method == http.MethodGet:
		// Shard health is reported next to — never folded into — the SLO
		// verdict: quarantined shards degrade answers by contract, they do
		// not burn the availability budget.
		writeJSON(w, http.StatusOK, struct {
			obs.SLOStatus
			Shards []ViewShardHealth `json:"shards,omitempty"`
		}{s.SLO.Status(), s.ShardHealth()})
		return "slo"
	default:
		httpError(w, http.StatusNotFound, "no such endpoint")
		return "notfound"
	}
}

func (s *Server) dispatchSession(w http.ResponseWriter, r *http.Request, id, action string) string {
	s.mu.Lock()
	ls := s.sessions[id]
	s.mu.Unlock()
	if ls == nil {
		httpError(w, http.StatusNotFound, "no such session")
		return "session_notfound"
	}
	ls.touch()
	// A quarantined session answers every interaction with its failure
	// (and the request ID, for correlating with server logs) instead of
	// hanging a long poll against a dead goroutine. DELETE still works so
	// the client can discard it; status/trace still work for diagnosis.
	if action == "sample" || action == "label" || action == "query" {
		ls.mu.Lock()
		failed := ls.err
		ls.mu.Unlock()
		if failed != nil {
			httpErrorCtx(w, r, http.StatusInternalServerError, "session failed: "+failed.Error())
			return "quarantined"
		}
	}
	switch {
	case action == "" && r.Method == http.MethodDelete:
		s.deleteSession(w, id, ls)
		return "delete_session"
	case action == "sample" && r.Method == http.MethodGet:
		s.nextSample(w, r, ls)
		return "sample"
	case action == "label" && r.Method == http.MethodPost:
		s.label(w, r, ls)
		return "label"
	case action == "status" && r.Method == http.MethodGet:
		st, err := ls.snapshot()
		if err != nil {
			httpError(w, http.StatusInternalServerError, err.Error())
			return "status"
		}
		writeJSON(w, http.StatusOK, st)
		return "status"
	case action == "trace" && r.Method == http.MethodGet:
		writeJSON(w, http.StatusOK, TraceResponse{
			ID:    ls.id,
			View:  ls.view,
			Total: ls.rec.Total(),
			Spans: ls.rec.Snapshot(),
		})
		return "trace"
	case action == "events" && r.Method == http.MethodGet:
		// The retained flight-recorder events, streamed as JSONL — the
		// same format the persistent journal holds.
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		_ = ls.flight.WriteJSONL(w)
		return "events"
	case action == "query" && r.Method == http.MethodGet:
		st, _ := ls.snapshot()
		var resp QueryResponse
		if err := json.Unmarshal([]byte(st.SQL), &resp); err != nil {
			// SQL field holds the marshaled QueryResponse; see runSession.
			httpError(w, http.StatusInternalServerError, "no query available yet")
			return "query"
		}
		writeJSON(w, http.StatusOK, resp)
		return "query"
	default:
		httpError(w, http.StatusMethodNotAllowed, "unsupported method or action")
		return "badaction"
	}
}

// optsFromRequest validates and translates the wire-level creation
// parameters, layering server-wide budget and conflict-policy defaults
// under the request's explicit values. It is shared by session creation,
// crash recovery and post-panic rebuild so all three produce the
// identical configuration.
func (s *Server) optsFromRequest(req CreateSessionRequest) (explore.Options, error) {
	opts := explore.DefaultOptions()
	opts.Seed = req.Seed
	if req.SamplesPerIteration > 0 {
		opts.SamplesPerIteration = req.SamplesPerIteration
	}
	if req.MaxIterations > 0 {
		opts.MaxIterations = req.MaxIterations
	}
	if req.Workers > 0 {
		opts.Workers = req.Workers
	}
	if req.DistanceHint > 0 {
		opts.DistanceHint = req.DistanceHint
	}
	switch req.Discovery {
	case "", "grid":
		opts.Discovery = explore.DiscoveryGrid
	case "clustering":
		opts.Discovery = explore.DiscoveryClustering
	case "hybrid":
		opts.Discovery = explore.DiscoveryHybrid
	default:
		return opts, fmt.Errorf("unknown discovery strategy %q", req.Discovery)
	}
	opts.ConflictPolicy = s.DefaultConflictPolicy
	if req.ConflictPolicy != "" {
		policy, err := explore.ParseConflictPolicy(req.ConflictPolicy)
		if err != nil {
			return opts, err
		}
		opts.ConflictPolicy = policy
	}
	opts.Budget = s.DefaultBudget
	if req.MaxLabeledRows != 0 {
		opts.Budget.MaxLabeledRows = req.MaxLabeledRows
	}
	if req.MaxIterationMillis != 0 {
		opts.Budget.MaxIterationTime = time.Duration(req.MaxIterationMillis) * time.Millisecond
	}
	if req.MaxSamplesPerIteration != 0 {
		opts.Budget.MaxSamplesPerIteration = req.MaxSamplesPerIteration
	}
	if req.MaxTreeNodes != 0 {
		opts.Budget.MaxTreeNodes = req.MaxTreeNodes
	}
	if req.MaxMemBytes != 0 {
		opts.Budget.MaxMemBytes = req.MaxMemBytes
	}
	if req.CacheBytes != 0 {
		opts.CacheBytes = req.CacheBytes
	}
	return opts, nil
}

// newLiveSession builds the bookkeeping side of a session.
func (s *Server) newLiveSession(id string, req CreateSessionRequest, opts explore.Options) *liveSession {
	ctx, cancel := context.WithCancel(context.Background())
	payload, _ := json.Marshal(req)
	ls := &liveSession{
		id:      id,
		view:    req.View,
		ctx:     ctx,
		cancel:  cancel,
		pending: make(chan labelRequest),
		rec:     obs.NewRecorder(s.TraceCapacity),
		req:     req,
		opts:    opts,
		created: payload,
		hist:    make(map[int]bool),
	}
	ls.touch()
	return ls
}

// oracleFor builds the session's oracle. Recorded labels answer
// instantly — that is what makes post-panic rebuild and crash-recovery
// replay reproduce the original trajectory without re-asking the user —
// and unknown rows block on the HTTP label exchange.
func (s *Server) oracleFor(ls *liveSession) explore.Oracle {
	return explore.OracleFunc(func(v *engine.View, row int) bool {
		if lab, ok := ls.histGet(row); ok {
			return lab
		}
		reply := make(chan bool, 1)
		select {
		case ls.pending <- labelRequest{row: row, reply: reply}:
		case <-ls.ctx.Done():
			return false
		}
		select {
		case lab := <-reply:
			return lab
		case <-ls.ctx.Done():
			return false
		}
	})
}

func (s *Server) createSession(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody())
	var req CreateSessionRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	s.mu.Lock()
	view := s.views[req.View]
	s.mu.Unlock()
	if view == nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("unknown view %q", req.View))
		return
	}
	opts, err := s.optsFromRequest(req)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}

	// Stamp the view's content fingerprint into the creation record before
	// it is marshaled into the WAL, so recovery can refuse to replay the
	// session against changed data.
	req.ViewFingerprint = view.Fingerprint()
	ls := s.newLiveSession(newID(), req, opts)
	sess, err := explore.NewSession(view, s.oracleFor(ls), opts)
	if err != nil {
		ls.cancel()
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}

	if s.Durable != nil {
		log, err := s.Durable.Create(ls.id, ls.created)
		if err != nil {
			ls.cancel()
			httpErrorCtx(w, r, http.StatusInternalServerError, "persisting session: "+err.Error())
			return
		}
		ls.wal = log
	}
	s.openFlight(ls)
	ls.instrument(sess)

	s.mu.Lock()
	s.sessions[ls.id] = ls
	s.mu.Unlock()
	obsSessionsCreated.Inc()
	obsSessionsActive.Add(1)

	go s.runSession(ls, sess, view)
	writeJSON(w, http.StatusCreated, CreateSessionResponse{ID: ls.id})
}

// maxBody returns the request-body cap.
func (s *Server) maxBody() int64 {
	if s.MaxBodyBytes > 0 {
		return s.MaxBodyBytes
	}
	return 1 << 20
}

// safeIteration runs one iteration with the session-lifetime context
// bound to it, converting a panic anywhere below — classifier, engine
// kernels, injected faults — into an error instead of killing the
// process.
func safeIteration(ls *liveSession, sess *explore.Session) (res *explore.IterationResult, err error, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			panicked = true
			err = fmt.Errorf("service: session %s iteration panicked: %v", ls.id, r)
		}
	}()
	res, err = sess.RunIterationCtx(ls.ctx)
	return res, err, false
}

// rebuildSession reconstructs the exploration after a panic poisoned
// the in-memory state. The label history answers every already-given
// label instantly, so the deterministic steering loop fast-forwards
// through the same trajectory; if a compaction snapshot exists the
// rebuild resumes from it instead of replaying from scratch.
func (s *Server) rebuildSession(ls *liveSession, view *engine.View) (*explore.Session, error) {
	ls.histMu.Lock()
	snap := ls.baseSnapshot
	ls.histMu.Unlock()
	var (
		sess *explore.Session
		err  error
	)
	if snap != nil {
		sess, err = explore.Resume(bytes.NewReader(snap), view, s.oracleFor(ls))
	} else {
		sess, err = explore.NewSession(view, s.oracleFor(ls), ls.opts)
	}
	if err != nil {
		return nil, err
	}
	ls.instrument(sess)
	return sess, nil
}

// maybeCompact snapshots and compacts the session's WAL once enough
// labels accumulated since the last compaction. Runs on the session
// goroutine between iterations, where the snapshot is consistent.
func (s *Server) maybeCompact(ls *liveSession, sess *explore.Session) {
	if s.SnapshotEvery <= 0 || ls.wal == nil {
		return
	}
	ls.histMu.Lock()
	due := ls.histN-ls.compactedAt >= s.SnapshotEvery
	ls.histMu.Unlock()
	if !due {
		return
	}
	var buf bytes.Buffer
	if err := sess.Save(&buf); err != nil {
		return // snapshotting is an optimization; the label log still has everything
	}
	if err := ls.wal.Compact(ls.created, buf.Bytes(), nil); err != nil {
		return
	}
	ls.histMu.Lock()
	ls.baseSnapshot = buf.Bytes()
	ls.compactedAt = ls.histN
	ls.histMu.Unlock()
}

// runSession drives the steering loop until cancellation, exhaustion or
// the iteration cap, keeping the status snapshot current. A panic in an
// iteration does not kill the session, let alone the server: the
// session is rebuilt from the label history and replayed, up to
// MaxSessionRestarts times, after which it is quarantined — its error
// is served with a 500 on further requests while every other session
// keeps running.
func (s *Server) runSession(ls *liveSession, sess *explore.Session, view *engine.View) {
	defer ls.cancel()
	maxIter := ls.opts.MaxIterations
	update := func(res *explore.IterationResult, done bool) {
		q := sess.FinalQuery()
		qr := QueryResponse{SQL: q.SQL(), Attrs: q.Attrs, Table: q.Table}
		for _, a := range q.Areas {
			bounds := make([]Bounds, len(a))
			for d := range a {
				bounds[d] = Bounds{Lo: a[d].Lo, Hi: a[d].Hi}
			}
			qr.Areas = append(qr.Areas, bounds)
		}
		payload, _ := json.Marshal(qr)
		st := sess.Stats()
		status := sessionStatus{
			TotalLabeled:  st.TotalLabeled,
			TotalRelevant: st.TotalRelevant,
			Iteration:     st.Iterations,
			Done:          done,
			SQL:           string(payload),
			Conflicts:     st.Conflicts,
			Degradations:  st.Degradations,
		}
		if res != nil {
			status.RelevantAreas = res.RelevantAreas
		}
		if st.Iterations > 0 {
			status.WaitSeconds = st.ExecTime.Seconds() / float64(st.Iterations)
		}
		ls.mu.Lock()
		ls.status = status
		ls.mu.Unlock()
	}
	update(nil, false)

	idle := 0
	for sess.Stats().Iterations < maxIter {
		if ls.ctx.Err() != nil {
			break
		}
		res, err, panicked := safeIteration(ls, sess)
		if panicked {
			obsRecoveredPanics.Inc()
			ls.mu.Lock()
			ls.restarts++
			restarts := ls.restarts
			ls.mu.Unlock()
			if restarts > s.maxRestarts() {
				// Quarantine: the session keeps panicking even from a
				// clean replay, so its state (or the data under it) is
				// poisoned. Mark it failed and stop; the server and all
				// other sessions are unaffected.
				obsQuarantined.Inc()
				obsSessionErrors.Inc()
				ls.mu.Lock()
				ls.err = err
				ls.mu.Unlock()
				break
			}
			obsSessionRestarts.Inc()
			rebuilt, rerr := s.rebuildSession(ls, view)
			if rerr != nil {
				obsSessionErrors.Inc()
				ls.mu.Lock()
				ls.err = fmt.Errorf("service: rebuilding after panic: %w", rerr)
				ls.mu.Unlock()
				break
			}
			sess = rebuilt
			continue
		}
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				break // session shut down mid-iteration; not a failure
			}
			obsSessionErrors.Inc()
			ls.mu.Lock()
			ls.err = err
			ls.mu.Unlock()
			break
		}
		done := false
		if res.NewSamples == 0 {
			idle++
			done = idle >= 3
		} else {
			idle = 0
		}
		update(res, done || sess.Stats().Iterations >= maxIter)
		s.maybeCompact(ls, sess)
		if done {
			break
		}
	}
	// Mark done on exit regardless of why.
	ls.mu.Lock()
	ls.status.Done = true
	ls.mu.Unlock()
}

// maxRestarts returns the panic-rebuild budget.
func (s *Server) maxRestarts() int {
	if s.MaxSessionRestarts > 0 {
		return s.MaxSessionRestarts
	}
	return 2
}

func (s *Server) nextSample(w http.ResponseWriter, r *http.Request, ls *liveSession) {
	wait := s.SampleWait
	if wait <= 0 {
		wait = 30 * time.Second
	}
	start := time.Now()
	// The long-poll wait — how long the handler blocked before a sample
	// (or timeout/cancellation) arrived — is the user-facing latency the
	// paper's system-execution-time metric measures.
	defer func() { obsSampleWait.Observe(time.Since(start).Seconds()) }()
	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case req := <-ls.pending:
		// Park the request for the matching POST /label.
		ls.mu.Lock()
		if ls.current == nil {
			ls.current = make(chan labelRequest, 1)
		}
		cur := ls.current
		ls.mu.Unlock()
		cur <- req
		view := s.viewOf(ls)
		values := map[string]float64{}
		if view != nil {
			full := view.FullRow(req.row)
			for i, name := range view.Table().Schema().Names() {
				values[name] = full[i]
			}
		}
		writeJSON(w, http.StatusOK, Sample{Row: req.row, Values: values})
	case <-ls.ctx.Done():
		writeJSON(w, http.StatusOK, Sample{Done: true})
	case <-r.Context().Done():
		httpError(w, http.StatusRequestTimeout, "client went away")
	case <-timer.C:
		st, _ := ls.snapshot()
		if st.Done {
			writeJSON(w, http.StatusOK, Sample{Done: true})
			return
		}
		httpError(w, http.StatusServiceUnavailable, "no sample pending; retry")
	}
}

func (s *Server) label(w http.ResponseWriter, r *http.Request, ls *liveSession) {
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody())
	var req LabelRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	ls.mu.Lock()
	cur := ls.current
	ls.mu.Unlock()
	if cur == nil {
		httpError(w, http.StatusConflict, "no sample outstanding; GET /sample first")
		return
	}
	select {
	case pending := <-cur:
		if pending.row != req.Row {
			// Put it back: the label names the wrong tuple.
			cur <- pending
			httpError(w, http.StatusConflict, fmt.Sprintf("outstanding sample is row %d, not %d", pending.row, req.Row))
			return
		}
		// Remember which request drove this label so the next iteration's
		// root span can be correlated with the request log.
		ls.noteRequest(RequestIDFrom(r.Context()))
		// Write-ahead: the label reaches history and the WAL before it
		// is acked or fed to the session, so an acked label survives a
		// crash and an unpersisted one is never acked.
		if err := ls.recordLabel(req.Row, req.Relevant); err != nil {
			cur <- pending // still outstanding; the client may retry
			httpErrorCtx(w, r, http.StatusInternalServerError, "persisting label: "+err.Error())
			return
		}
		pending.reply <- req.Relevant
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	default:
		httpError(w, http.StatusConflict, "no sample outstanding; GET /sample first")
	}
}

func (s *Server) deleteSession(w http.ResponseWriter, id string, ls *liveSession) {
	ls.cancel()
	s.mu.Lock()
	_, present := s.sessions[id]
	delete(s.sessions, id)
	s.mu.Unlock()
	if present {
		obsSessionsDeleted.Inc()
		obsSessionsActive.Add(-1)
	}
	// An explicit DELETE is the one operation that destroys durable
	// state: the user discarded the exploration, so its log — and its
	// flight journal — go too. (Janitor eviction, by contrast, keeps
	// both; see ExpireIdle.)
	s.removeEvents(ls)
	if s.Durable != nil {
		_ = s.Durable.Remove(id)
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "deleted"})
}

func (s *Server) viewOf(ls *liveSession) *engine.View {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.views[ls.view]
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

// httpErrorCtx is httpError plus the request ID (when the request-log
// middleware assigned one), so a client-visible failure can be matched
// to the server-side log line and stack trace.
func httpErrorCtx(w http.ResponseWriter, r *http.Request, code int, msg string) {
	body := map[string]string{"error": msg}
	if id := RequestIDFrom(r.Context()); id != "" {
		body["request_id"] = id
	}
	writeJSON(w, code, body)
}

func newID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is unrecoverable; fall back to a constant
		// would collide, so panic loudly.
		panic(fmt.Sprintf("service: crypto/rand: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// ErrSessionDone is returned by Client.NextSample when the session has
// finished.
var ErrSessionDone = errors.New("service: session done")
