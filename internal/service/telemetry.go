package service

import (
	"os"
	"path/filepath"
	"strings"

	"github.com/explore-by-example/aide/internal/explore"
	"github.com/explore-by-example/aide/internal/obs"
)

// Per-session telemetry plumbing: the flight recorder (wide events +
// persistent JSONL journal next to the WAL) and the request-id span
// annotator that correlates /v1/sessions/{id}/trace with request logs.

// maxSpanRequestIDs bounds how many request ids one iteration's root
// span carries; a busy session's overflow is counted, not stored.
const maxSpanRequestIDs = 8

// flightCap returns the per-session flight-recorder ring capacity.
func (s *Server) flightCap() int {
	if s.FlightCapacity > 0 {
		return s.FlightCapacity
	}
	return 256
}

// eventsPath is the session's flight journal location: next to its WAL.
func (s *Server) eventsPath(id string) string {
	return filepath.Join(s.Durable.Dir(), id+".events.jsonl")
}

// openFlight attaches a flight recorder to the session. With durable
// persistence on, events are also appended to <id>.events.jsonl in the
// durable directory; a journal that cannot be opened degrades to
// in-memory-only events — the journal is telemetry, not durability, so
// it must never fail session creation.
func (s *Server) openFlight(ls *liveSession) {
	var sink *os.File
	if s.Durable != nil {
		if f, err := os.OpenFile(s.eventsPath(ls.id), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644); err == nil {
			ls.events = f
			sink = f
		}
	}
	if sink != nil {
		ls.flight = obs.NewFlightRecorder(ls.id, s.flightCap(), sink)
	} else {
		ls.flight = obs.NewFlightRecorder(ls.id, s.flightCap(), nil)
	}
}

// closeEvents closes the persistent journal sink, if any. The file stays
// on disk (janitor eviction, shutdown); only removeEvents deletes it.
func (ls *liveSession) closeEvents() {
	if ls.events != nil {
		_ = ls.events.Close()
		ls.events = nil
	}
}

// removeEvents deletes the session's persistent journal (DELETE only).
func (s *Server) removeEvents(ls *liveSession) {
	ls.closeEvents()
	if s.Durable != nil {
		_ = os.Remove(s.eventsPath(ls.id))
	}
}

// instrument wires the session's telemetry: trace recorder, flight
// recorder and the request-id span annotator. Creation, crash recovery
// and post-panic rebuild all route through it so every incarnation of a
// session reports identically.
func (ls *liveSession) instrument(sess *explore.Session) {
	sess.SetRecorder(ls.rec)
	sess.SetFlightRecorder(ls.flight)
	sess.SetSpanAnnotator(ls.annotateSpan)
}

// noteRequest remembers one request id that drove this session (label
// submissions); consecutive duplicates collapse.
func (ls *liveSession) noteRequest(id string) {
	if id == "" {
		return
	}
	ls.reqMu.Lock()
	switch {
	case len(ls.reqIDs) > 0 && ls.reqIDs[len(ls.reqIDs)-1] == id:
	case len(ls.reqIDs) >= maxSpanRequestIDs:
		ls.reqDropped++
	default:
		ls.reqIDs = append(ls.reqIDs, id)
	}
	ls.reqMu.Unlock()
}

// annotateSpan drains the collected request ids onto an iteration's
// root span. Runs on the session goroutine at iteration start.
func (ls *liveSession) annotateSpan(sp *obs.Span) {
	ls.reqMu.Lock()
	ids := ls.reqIDs
	dropped := ls.reqDropped
	ls.reqIDs = nil
	ls.reqDropped = 0
	ls.reqMu.Unlock()
	if len(ids) == 0 {
		return
	}
	sp.SetAttr("request_ids", strings.Join(ids, ","))
	if dropped > 0 {
		sp.SetAttr("request_ids_dropped", dropped)
	}
}
