package service

import (
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/explore-by-example/aide/internal/dataset"
	"github.com/explore-by-example/aide/internal/engine"
	"github.com/explore-by-example/aide/internal/geom"
)

// newTestServer builds a server over a small uniform view.
func newTestServer(t *testing.T) (*Server, *engine.View) {
	t.Helper()
	tab := dataset.GenerateUniform(10_000, 2, 1)
	v, err := engine.NewView(tab, []string{"a0", "a1"})
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(map[string]*engine.View{"uniform": v})
	s.SampleWait = 5 * time.Second
	return s, v
}

func TestFullSessionOverHTTP(t *testing.T) {
	srv, v := newTestServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := NewClient(ts.URL, nil)
	ctx := context.Background()

	views, err := c.ViewNames(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(views) != 1 || views[0] != "uniform" {
		t.Errorf("views = %v", views)
	}

	id, err := c.CreateSession(ctx, CreateSessionRequest{
		View:                "uniform",
		Seed:                7,
		SamplesPerIteration: 10,
		MaxIterations:       25,
	})
	if err != nil {
		t.Fatal(err)
	}

	// The hidden interest the HTTP "user" labels against.
	target := geom.R(30, 45, 50, 65)
	labeled := 0
	for labeled < 200 {
		sample, err := c.NextSample(ctx, id)
		if errors.Is(err, ErrSessionDone) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		p := geom.Point{sample.Values["a0"], sample.Values["a1"]}
		norm := v.Normalizer().ToNorm(p)
		if err := c.SubmitLabel(ctx, id, sample.Row, target.Contains(norm)); err != nil {
			t.Fatal(err)
		}
		labeled++
	}
	if labeled == 0 {
		t.Fatal("no samples served")
	}

	st, err := c.Status(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if st.TotalLabeled == 0 {
		t.Errorf("status = %+v", st)
	}

	q, err := c.PredictedQuery(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if q.Table != "uniform" {
		t.Errorf("query table = %q", q.Table)
	}
	if len(q.Areas) == 0 {
		t.Error("no predicted areas after 200 labels on an easy target")
	}
	if !strings.Contains(q.SQL, "SELECT * FROM uniform") {
		t.Errorf("SQL = %q", q.SQL)
	}

	if err := c.Close(ctx, id); err != nil {
		t.Fatal(err)
	}
	// Second delete: session is gone.
	if err := c.Close(ctx, id); err == nil {
		t.Error("deleting a deleted session should error")
	}
}

func TestCreateSessionValidation(t *testing.T) {
	srv, _ := newTestServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := NewClient(ts.URL, nil)
	ctx := context.Background()

	if _, err := c.CreateSession(ctx, CreateSessionRequest{View: "nope"}); err == nil {
		t.Error("unknown view should error")
	}
	if _, err := c.CreateSession(ctx, CreateSessionRequest{View: "uniform", Discovery: "bogus"}); err == nil {
		t.Error("unknown discovery should error")
	}
	if _, err := c.CreateSession(ctx, CreateSessionRequest{View: "uniform", Discovery: "clustering", Seed: 3}); err != nil {
		t.Errorf("clustering discovery: %v", err)
	}
}

func TestLabelProtocolErrors(t *testing.T) {
	srv, _ := newTestServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := NewClient(ts.URL, nil)
	ctx := context.Background()

	id, err := c.CreateSession(ctx, CreateSessionRequest{View: "uniform", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close(ctx, id)

	// Label before any sample was fetched.
	if err := c.SubmitLabel(ctx, id, 0, true); err == nil {
		t.Error("labeling without an outstanding sample should error")
	}
	sample, err := c.NextSample(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	// Wrong row id.
	if err := c.SubmitLabel(ctx, id, sample.Row+999, true); err == nil {
		t.Error("labeling the wrong row should error")
	}
	// Correct row still works after the mismatch.
	if err := c.SubmitLabel(ctx, id, sample.Row, false); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownSessionAndEndpoints(t *testing.T) {
	srv, _ := newTestServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := NewClient(ts.URL, nil)
	ctx := context.Background()

	if _, err := c.Status(ctx, "nosuch"); err == nil {
		t.Error("unknown session should error")
	}
	if _, err := c.NextSample(ctx, "nosuch"); err == nil {
		t.Error("unknown session should error")
	}
	resp, err := ts.Client().Get(ts.URL + "/bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Errorf("bogus path status = %d", resp.StatusCode)
	}
}

func TestSessionRunsToCompletion(t *testing.T) {
	// A tiny view exhausts quickly; the client must observe Done.
	tab := dataset.GenerateUniform(50, 2, 2)
	v, err := engine.NewView(tab, []string{"a0", "a1"})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(map[string]*engine.View{"tiny": v})
	srv.SampleWait = 5 * time.Second
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := NewClient(ts.URL, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	id, err := c.CreateSession(ctx, CreateSessionRequest{View: "tiny", Seed: 1, MaxIterations: 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		sample, err := c.NextSample(ctx, id)
		if errors.Is(err, ErrSessionDone) {
			return // success
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := c.SubmitLabel(ctx, id, sample.Row, false); err != nil {
			t.Fatal(err)
		}
	}
	t.Fatal("session never reported done")
}

func TestDistanceHintPlumbing(t *testing.T) {
	srv, _ := newTestServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := NewClient(ts.URL, nil)
	ctx := context.Background()
	id, err := c.CreateSession(ctx, CreateSessionRequest{View: "uniform", Seed: 1, DistanceHint: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close(ctx, id)
	// With a 10-unit hint, discovery starts at level with width <= 10
	// (level 2 for beta0=4): the first sample arrives fine.
	if _, err := c.NextSample(ctx, id); err != nil {
		t.Fatal(err)
	}
}
