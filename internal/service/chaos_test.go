package service

import (
	"context"
	"errors"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/explore-by-example/aide/internal/dataset"
	"github.com/explore-by-example/aide/internal/engine"
	"github.com/explore-by-example/aide/internal/faultinject"
	"github.com/explore-by-example/aide/internal/geom"
)

// chaosSeed returns the fault-injection seed, from AIDE_FAULT_SEED when
// the CI matrix sets it.
func chaosSeed(t *testing.T) int64 {
	t.Helper()
	env := os.Getenv("AIDE_FAULT_SEED")
	if env == "" {
		return 1
	}
	seed, err := strconv.ParseInt(env, 10, 64)
	if err != nil {
		t.Fatalf("bad AIDE_FAULT_SEED %q: %v", env, err)
	}
	return seed
}

// driveSession plays the HTTP user: label every proposed sample by
// whether it falls in target, until the session reports done or
// maxLabels is reached. Label submissions are retried a few times
// because injected WAL faults can fail an individual persist.
func labelLoop(t *testing.T, c *Client, ctx context.Context, id string, v *engine.View, target geom.Rect, maxLabels int) int {
	t.Helper()
	labeled := 0
	for labeled < maxLabels {
		sample, err := c.NextSample(ctx, id)
		if errors.Is(err, ErrSessionDone) {
			break
		}
		if err != nil {
			t.Fatalf("after %d labels: NextSample: %v", labeled, err)
		}
		p := geom.Point{sample.Values["a0"], sample.Values["a1"]}
		relevant := target.Contains(v.Normalizer().ToNorm(p))
		var lerr error
		for attempt := 0; attempt < 6; attempt++ {
			if lerr = c.SubmitLabel(ctx, id, sample.Row, relevant); lerr == nil {
				break
			}
		}
		if lerr != nil {
			t.Fatalf("after %d labels: SubmitLabel: %v", labeled, lerr)
		}
		labeled++
	}
	return labeled
}

// queriesEqual compares predicted queries area by area, bound by bound.
func queriesEqual(a, b QueryResponse) bool {
	if a.SQL != b.SQL || len(a.Areas) != len(b.Areas) {
		return false
	}
	for i := range a.Areas {
		if len(a.Areas[i]) != len(b.Areas[i]) {
			return false
		}
		for d := range a.Areas[i] {
			if a.Areas[i][d] != b.Areas[i][d] {
				return false
			}
		}
	}
	return true
}

// TestChaosBitIdenticalUnderFaults runs one full exploration fault-free,
// then reruns it with injected 503s, latency, engine panics and WAL
// short writes, and requires the final predicted query to be
// bit-identical: retries, panic-rebuild replay and WAL append repair
// must be invisible to the exploration's outcome.
func TestChaosBitIdenticalUnderFaults(t *testing.T) {
	tab := dataset.GenerateUniform(10_000, 2, 1)
	v, err := engine.NewView(tab, []string{"a0", "a1"})
	if err != nil {
		t.Fatal(err)
	}
	target := geom.R(30, 45, 50, 65)
	req := CreateSessionRequest{
		View:                "uniform",
		Seed:                7,
		SamplesPerIteration: 10,
		MaxIterations:       12,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	run := func(withFaults bool) QueryResponse {
		srv := NewServer(map[string]*engine.View{"uniform": v})
		srv.SampleWait = 5 * time.Second
		if withFaults {
			m, err := newTestDurable(t)
			if err != nil {
				t.Fatal(err)
			}
			srv.Durable = m
		}
		ts := httptest.NewServer(srv)
		defer ts.Close()
		c := NewClient(ts.URL, nil)
		c.MaxRetries = 8 // drive the failure probability of a 503 streak to ~0
		c.BaseBackoff = time.Millisecond

		if withFaults {
			faultinject.Activate(faultinject.New(faultinject.Config{
				Seed:        chaosSeed(t),
				ErrorRate:   0.15,
				LatencyRate: 0.05,
				Latency:     time.Millisecond,
				PanicBudget: 2,
				PartialRate: 0.25,
			}))
			defer faultinject.Deactivate()
		}

		id, err := c.CreateSession(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		if n := labelLoop(t, c, ctx, id, v, target, 200); n == 0 {
			t.Fatal("no samples served")
		}
		q, err := c.PredictedQuery(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		// The server must be alive and healthy after the storm.
		if err := c.Health(ctx); err != nil {
			t.Fatalf("health check after run: %v", err)
		}
		if err := c.Close(ctx, id); err != nil {
			t.Fatal(err)
		}
		return q
	}

	clean := run(false)
	faulty := run(true)
	if len(clean.Areas) == 0 {
		t.Fatal("fault-free run predicted nothing; target too hard for the budget")
	}
	if !queriesEqual(clean, faulty) {
		t.Errorf("predictions diverged under faults:\nclean:  %q\nfaulty: %q", clean.SQL, faulty.SQL)
	}
}

// TestChaosQuarantinePoisonedSession exhausts the panic-rebuild budget
// and checks the session is quarantined — 500s with the failure — while
// the server and other sessions keep working.
func TestChaosQuarantinePoisonedSession(t *testing.T) {
	srv, v := newTestServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := NewClient(ts.URL, nil)
	c.BaseBackoff = time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	faultinject.Activate(faultinject.New(faultinject.Config{
		Seed:        chaosSeed(t),
		PanicBudget: 1000, // never stops panicking: rebuilds cannot help
		Points:      []string{"engine.scan"},
	}))
	defer faultinject.Deactivate()

	id, err := c.CreateSession(ctx, CreateSessionRequest{View: "uniform", Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// The session goroutine panics on its first scan, rebuilds, panics
	// again, and quarantines. Wait for the failed mark.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, err := c.Status(ctx, id); err != nil {
			if !strings.Contains(err.Error(), "panicked") {
				t.Fatalf("status error = %v, want the panic surfaced", err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("session never quarantined")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Interactions answer 500 with the failure, not a hang.
	if _, err := c.NextSample(ctx, id); err == nil || !strings.Contains(err.Error(), "session failed") {
		t.Errorf("sample on quarantined session = %v, want failure", err)
	}
	// The server is alive; an unpoisoned session works next to the
	// quarantined one once the injector is off.
	faultinject.Deactivate()
	if err := c.Health(ctx); err != nil {
		t.Fatalf("server unhealthy after quarantine: %v", err)
	}
	id2, err := c.CreateSession(ctx, CreateSessionRequest{View: "uniform", Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if n := labelLoop(t, c, ctx, id2, v, geom.R(30, 45, 50, 65), 10); n == 0 {
		t.Error("healthy session served no samples")
	}
	// The poisoned session can still be discarded.
	if err := c.Close(ctx, id); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(ctx, id2); err != nil {
		t.Fatal(err)
	}
}
