package service

import (
	"context"
	"io"
	"log/slog"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/explore-by-example/aide/internal/dataset"
	"github.com/explore-by-example/aide/internal/durable"
	"github.com/explore-by-example/aide/internal/engine"
	"github.com/explore-by-example/aide/internal/geom"
)

// TestRegisterTableSharesViewsAndCaches asserts two servers registering
// the same data through one registry share a single underlying view,
// that each gets a predicate cache when CacheBytes is set, and that
// Close releases what RegisterTable acquired.
func TestRegisterTableSharesViewsAndCaches(t *testing.T) {
	reg := engine.NewRegistry()
	tab := dataset.GenerateUniform(10_000, 2, 1)

	s1 := NewServer(nil)
	s1.Registry = reg
	s1.CacheBytes = 1 << 20
	if err := s1.RegisterTable("uniform", tab, []string{"a0", "a1"}, 1); err != nil {
		t.Fatal(err)
	}
	s2 := NewServer(nil)
	s2.Registry = reg
	if err := s2.RegisterTable("uniform", tab, []string{"a0", "a1"}, 1); err != nil {
		t.Fatal(err)
	}
	if got := reg.Len(); got != 1 {
		t.Fatalf("two servers over the same data hold %d registry views, want 1", got)
	}
	v1, v2 := s1.views["uniform"], s2.views["uniform"]
	if v1 == nil || v2 == nil {
		t.Fatal("RegisterTable did not register the view")
	}
	if v1.Fingerprint() != v2.Fingerprint() {
		t.Fatal("shared registrations disagree on fingerprint")
	}
	if v1.Cache() == nil {
		t.Fatal("CacheBytes > 0 did not attach a cache")
	}
	if v2.Cache() != nil {
		t.Fatal("CacheBytes == 0 attached a cache")
	}
	if err := s1.RegisterTable("uniform", tab, []string{"a0", "a1"}, 1); err == nil {
		t.Fatal("duplicate name registration succeeded")
	}
	s1.Close()
	if got := reg.Len(); got != 1 {
		t.Fatalf("after one server closed, registry has %d views, want 1", got)
	}
	s2.Close()
	if got := reg.Len(); got != 0 {
		t.Fatalf("after both servers closed, registry has %d views, want 0", got)
	}
	s2.Close() // idempotent
}

// TestRecoverRefusesChangedData asserts crash recovery refuses to replay
// a WAL against a view whose data content changed since the session was
// created — replay over different rows would silently produce garbage
// predicates — while the log itself survives for a server with the
// original data.
func TestRecoverRefusesChangedData(t *testing.T) {
	dir := t.TempDir()
	target := geom.R(30, 45, 50, 65)
	req := CreateSessionRequest{
		View:                "uniform",
		Seed:                7,
		SamplesPerIteration: 10,
		MaxIterations:       12,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	discard := slog.New(slog.NewTextHandler(io.Discard, nil))

	// Phase 1: explore partway over seed-1 data, then "crash".
	vA := uniformView(t, 1)
	mA, err := durable.NewManager(dir, durable.Options{Fsync: durable.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	srvA := NewServer(map[string]*engine.View{"uniform": vA})
	srvA.SampleWait = 5 * time.Second
	srvA.Durable = mA
	tsA := httptest.NewServer(srvA)
	cA := NewClient(tsA.URL, nil)
	id, err := cA.CreateSession(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if n := labelLoop(t, cA, ctx, id, vA, target, 15); n != 15 {
		t.Fatalf("labeled %d before crash, want 15", n)
	}
	tsA.Close()

	// Phase 2: a server whose "uniform" view holds different data must
	// skip the session, not replay it.
	vB := uniformView(t, 2)
	mB, err := durable.NewManager(dir, durable.Options{Fsync: durable.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	srvB := NewServer(map[string]*engine.View{"uniform": vB})
	srvB.Durable = mB
	if n, err := srvB.RecoverSessions(discard); err != nil || n != 0 {
		t.Fatalf("RecoverSessions over changed data = %d, %v; want 0 skipped", n, err)
	}

	// Phase 3: the skipped log is intact; the original data recovers it.
	vC := uniformView(t, 1)
	mC, err := durable.NewManager(dir, durable.Options{Fsync: durable.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	srvC := NewServer(map[string]*engine.View{"uniform": vC})
	srvC.SampleWait = 5 * time.Second
	srvC.Durable = mC
	if n, err := srvC.RecoverSessions(discard); err != nil || n != 1 {
		t.Fatalf("RecoverSessions over original data = %d, %v; want 1", n, err)
	}
}
