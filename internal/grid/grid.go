// Package grid implements AIDE's hierarchical exploration grids
// (Section 3 of the paper). Each exploration level divides the normalized
// [0,100]^d space into beta^d equal-width cells; lower levels are
// finer-grained, and the object-discovery phase "zooms in" on a cell by
// descending to that cell's children at the next level. The grid keeps
// the exploration wide, tracks which sub-areas were already explored, and
// lets different areas be explored at different granularities.
package grid

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/explore-by-example/aide/internal/geom"
)

// Grid describes a hierarchy of exploration levels over a d-dimensional
// normalized space. Level 0 has Beta0 cells per dimension; each deeper
// level doubles the per-dimension cell count, so zooming into a cell
// yields 2^d children.
type Grid struct {
	dims  int
	beta0 int
}

// New creates a grid hierarchy. beta0 is the level-0 granularity (cells
// per dimension); the paper's beta parameter.
func New(dims, beta0 int) (*Grid, error) {
	if dims < 1 {
		return nil, fmt.Errorf("grid: dims = %d", dims)
	}
	if beta0 < 1 {
		return nil, fmt.Errorf("grid: beta0 = %d", beta0)
	}
	return &Grid{dims: dims, beta0: beta0}, nil
}

// Dims returns the dimensionality.
func (g *Grid) Dims() int { return g.dims }

// Beta returns the cells-per-dimension at the given level.
func (g *Grid) Beta(level int) int { return g.beta0 << uint(level) }

// Width returns the cell width (normalized units) at the given level: the
// paper's delta = 100/beta.
func (g *Grid) Width(level int) float64 {
	return (geom.NormMax - geom.NormMin) / float64(g.Beta(level))
}

// LevelForWidth returns the shallowest level whose cell width is at most
// maxWidth. This implements the distance-based hint of Section 3.1: when
// the user promises every relevant area is at least maxWidth wide,
// starting at this level guarantees discovery hits every area.
func (g *Grid) LevelForWidth(maxWidth float64) int {
	level := 0
	for g.Width(level) > maxWidth {
		level++
		if level > 30 {
			break // 100/2^30 — far below any meaningful width
		}
	}
	return level
}

// Cell addresses one grid cell: a level plus per-dimension coordinates in
// [0, Beta(level)).
type Cell struct {
	Level int
	Coord []int
}

// Key returns a canonical map key for the cell.
func (c Cell) Key() string {
	var b strings.Builder
	b.WriteString(strconv.Itoa(c.Level))
	for _, v := range c.Coord {
		b.WriteByte(':')
		b.WriteString(strconv.Itoa(v))
	}
	return b.String()
}

// Rect returns the cell's extent in normalized space.
func (g *Grid) Rect(c Cell) geom.Rect {
	w := g.Width(c.Level)
	r := make(geom.Rect, g.dims)
	for i, v := range c.Coord {
		lo := geom.NormMin + float64(v)*w
		r[i] = geom.Interval{Lo: lo, Hi: lo + w}
	}
	return r
}

// Center returns the cell's virtual center, the anchor of per-cell sample
// retrieval.
func (g *Grid) Center(c Cell) geom.Point {
	return g.Rect(c).Center()
}

// Children returns the 2^d sub-cells of c at the next level (the zoom-in
// operation).
func (g *Grid) Children(c Cell) []Cell {
	n := 1 << uint(g.dims)
	out := make([]Cell, 0, n)
	for mask := 0; mask < n; mask++ {
		coord := make([]int, g.dims)
		for i := 0; i < g.dims; i++ {
			coord[i] = c.Coord[i] * 2
			if mask&(1<<uint(i)) != 0 {
				coord[i]++
			}
		}
		out = append(out, Cell{Level: c.Level + 1, Coord: coord})
	}
	return out
}

// CellsAt enumerates all beta^d cells of a level. The caller is
// responsible for keeping level small enough that the enumeration is
// sensible (level 0 with beta0=4 in 5-D is 1024 cells; discovery never
// enumerates deep levels wholesale — it zooms per cell).
func (g *Grid) CellsAt(level int) []Cell {
	beta := g.Beta(level)
	total := 1
	for i := 0; i < g.dims; i++ {
		total *= beta
	}
	out := make([]Cell, 0, total)
	coord := make([]int, g.dims)
	for {
		c := Cell{Level: level, Coord: make([]int, g.dims)}
		copy(c.Coord, coord)
		out = append(out, c)
		i := g.dims - 1
		for ; i >= 0; i-- {
			coord[i]++
			if coord[i] < beta {
				break
			}
			coord[i] = 0
		}
		if i < 0 {
			return out
		}
	}
}

// CellsIn enumerates the cells of a level that overlap rect. This powers
// the range-based hint of Section 3.1: exploration restricted to the
// user-specified attribute ranges.
func (g *Grid) CellsIn(level int, rect geom.Rect) []Cell {
	if len(rect) != g.dims {
		panic(fmt.Sprintf("grid: rect has %d dims, grid has %d", len(rect), g.dims))
	}
	beta := g.Beta(level)
	w := g.Width(level)
	lo := make([]int, g.dims)
	hi := make([]int, g.dims)
	for i := 0; i < g.dims; i++ {
		l := int((rect[i].Lo - geom.NormMin) / w)
		h := int((rect[i].Hi - geom.NormMin) / w)
		// A rect whose upper edge coincides exactly with a cell boundary
		// only touches the next cell at a zero-measure face; exclude it
		// (range hints mean "explore inside this region").
		if h > l && geom.NormMin+float64(h)*w == rect[i].Hi {
			h--
		}
		if l < 0 {
			l = 0
		}
		if h >= beta {
			h = beta - 1
		}
		if l > h {
			return nil
		}
		lo[i], hi[i] = l, h
	}
	var out []Cell
	coord := make([]int, g.dims)
	copy(coord, lo)
	for {
		c := Cell{Level: level, Coord: make([]int, g.dims)}
		copy(c.Coord, coord)
		out = append(out, c)
		i := g.dims - 1
		for ; i >= 0; i-- {
			coord[i]++
			if coord[i] <= hi[i] {
				break
			}
			coord[i] = lo[i]
		}
		if i < 0 {
			return out
		}
	}
}

// CellOf returns the cell of the given level containing p.
func (g *Grid) CellOf(level int, p geom.Point) Cell {
	beta := g.Beta(level)
	w := g.Width(level)
	coord := make([]int, g.dims)
	for i := 0; i < g.dims; i++ {
		c := int((p[i] - geom.NormMin) / w)
		if c >= beta {
			c = beta - 1
		}
		if c < 0 {
			c = 0
		}
		coord[i] = c
	}
	return Cell{Level: level, Coord: coord}
}

// NumCells returns beta^d for a level, the paper's per-level sample
// requirement ("at each exploration level the system requires beta^d
// samples").
func (g *Grid) NumCells(level int) int {
	beta := g.Beta(level)
	total := 1
	for i := 0; i < g.dims; i++ {
		total *= beta
	}
	return total
}
