package grid

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/explore-by-example/aide/internal/geom"
)

func mustGrid(t *testing.T, dims, beta0 int) *Grid {
	t.Helper()
	g, err := New(dims, beta0)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewErrors(t *testing.T) {
	if _, err := New(0, 4); err == nil {
		t.Error("dims=0 should error")
	}
	if _, err := New(2, 0); err == nil {
		t.Error("beta0=0 should error")
	}
}

func TestBetaAndWidth(t *testing.T) {
	g := mustGrid(t, 2, 4)
	if g.Beta(0) != 4 || g.Beta(1) != 8 || g.Beta(2) != 16 {
		t.Errorf("Beta progression wrong: %d %d %d", g.Beta(0), g.Beta(1), g.Beta(2))
	}
	if g.Width(0) != 25 {
		t.Errorf("Width(0) = %v, want 25", g.Width(0))
	}
	if g.Width(1) != 12.5 {
		t.Errorf("Width(1) = %v, want 12.5", g.Width(1))
	}
	if g.Dims() != 2 {
		t.Error("Dims wrong")
	}
}

func TestLevelForWidth(t *testing.T) {
	g := mustGrid(t, 2, 4)
	if got := g.LevelForWidth(25); got != 0 {
		t.Errorf("LevelForWidth(25) = %d, want 0", got)
	}
	if got := g.LevelForWidth(24); got != 1 {
		t.Errorf("LevelForWidth(24) = %d, want 1", got)
	}
	if got := g.LevelForWidth(4); got != 3 {
		t.Errorf("LevelForWidth(4) = %d, want 3 (width 3.125)", got)
	}
	// Degenerate hint terminates.
	if got := g.LevelForWidth(0); got < 30 {
		t.Errorf("LevelForWidth(0) = %d, want cap at >30", got)
	}
}

func TestCellRectAndCenter(t *testing.T) {
	g := mustGrid(t, 2, 4)
	c := Cell{Level: 0, Coord: []int{1, 2}}
	r := g.Rect(c)
	want := geom.R(25, 50, 50, 75)
	if !r.Equal(want) {
		t.Errorf("Rect = %v, want %v", r, want)
	}
	center := g.Center(c)
	if center[0] != 37.5 || center[1] != 62.5 {
		t.Errorf("Center = %v", center)
	}
}

func TestChildren(t *testing.T) {
	g := mustGrid(t, 2, 4)
	c := Cell{Level: 0, Coord: []int{1, 2}}
	kids := g.Children(c)
	if len(kids) != 4 {
		t.Fatalf("children = %d, want 4", len(kids))
	}
	// Children tile the parent's rect exactly.
	parent := g.Rect(c)
	var vol float64
	for _, k := range kids {
		if k.Level != 1 {
			t.Errorf("child level = %d", k.Level)
		}
		kr := g.Rect(k)
		inter, ok := parent.Intersect(kr)
		if !ok || !inter.Equal(kr) {
			t.Errorf("child %v not inside parent", kr)
		}
		vol += kr.Volume()
	}
	if math.Abs(vol-parent.Volume()) > 1e-9 {
		t.Errorf("children volume %v != parent %v", vol, parent.Volume())
	}
}

func TestCellsAt(t *testing.T) {
	g := mustGrid(t, 2, 4)
	cells := g.CellsAt(0)
	if len(cells) != 16 {
		t.Fatalf("CellsAt(0) = %d cells, want 16", len(cells))
	}
	if g.NumCells(0) != 16 || g.NumCells(1) != 64 {
		t.Error("NumCells wrong")
	}
	// All distinct keys; union of rects covers the domain.
	seen := map[string]bool{}
	var vol float64
	for _, c := range cells {
		k := c.Key()
		if seen[k] {
			t.Errorf("duplicate cell %s", k)
		}
		seen[k] = true
		vol += g.Rect(c).Volume()
	}
	if math.Abs(vol-1e4) > 1e-6 {
		t.Errorf("total volume = %v, want 10000", vol)
	}
}

func TestCellsIn(t *testing.T) {
	g := mustGrid(t, 2, 4)
	// Rect covering the lower-left quadrant overlaps cells (0..1, 0..1).
	cells := g.CellsIn(0, geom.R(0, 49, 0, 49))
	if len(cells) != 4 {
		t.Fatalf("CellsIn = %d cells, want 4", len(cells))
	}
	// A thin rect inside one cell returns exactly that cell.
	cells = g.CellsIn(0, geom.R(30, 30, 60, 60))
	if len(cells) != 1 || cells[0].Coord[0] != 1 || cells[0].Coord[1] != 2 {
		t.Errorf("CellsIn thin = %v", cells)
	}
	// An out-of-domain rect yields nothing.
	cells = g.CellsIn(0, geom.R(150, 160, 0, 10))
	if cells != nil {
		t.Errorf("CellsIn out of domain = %v", cells)
	}
}

func TestCellOf(t *testing.T) {
	g := mustGrid(t, 2, 4)
	c := g.CellOf(0, geom.Point{30, 60})
	if c.Coord[0] != 1 || c.Coord[1] != 2 {
		t.Errorf("CellOf = %v", c.Coord)
	}
	// Domain max clamps into the last cell.
	c = g.CellOf(0, geom.Point{100, 100})
	if c.Coord[0] != 3 || c.Coord[1] != 3 {
		t.Errorf("CellOf(100,100) = %v", c.Coord)
	}
	c = g.CellOf(0, geom.Point{-5, 0})
	if c.Coord[0] != 0 {
		t.Errorf("CellOf(-5,0) = %v", c.Coord)
	}
}

func TestKeyUniqueAcrossLevels(t *testing.T) {
	a := Cell{Level: 0, Coord: []int{1, 2}}
	b := Cell{Level: 1, Coord: []int{1, 2}}
	if a.Key() == b.Key() {
		t.Error("keys should differ across levels")
	}
	if a.Key() != "0:1:2" {
		t.Errorf("Key = %q", a.Key())
	}
}

func TestCellsInPanicsOnDimMismatch(t *testing.T) {
	g := mustGrid(t, 2, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.CellsIn(0, geom.R(0, 1))
}

// Property: CellOf(p) returns a cell whose rect contains p (interior
// points).
func TestQuickCellOfContains(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dims := 1 + rng.Intn(4)
		g, err := New(dims, 1+rng.Intn(6))
		if err != nil {
			return false
		}
		level := rng.Intn(3)
		p := make(geom.Point, dims)
		for i := range p {
			p[i] = rng.Float64() * 100
		}
		c := g.CellOf(level, p)
		return g.Rect(c).Contains(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: every cell returned by CellsIn overlaps the query rect, and
// cells containing a random in-rect point are included.
func TestQuickCellsInComplete(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := New(2, 4)
		if err != nil {
			return false
		}
		a0, b0 := rng.Float64()*100, rng.Float64()*100
		if a0 > b0 {
			a0, b0 = b0, a0
		}
		a1, b1 := rng.Float64()*100, rng.Float64()*100
		if a1 > b1 {
			a1, b1 = b1, a1
		}
		rect := geom.R(a0, b0, a1, b1)
		cells := g.CellsIn(1, rect)
		keys := map[string]bool{}
		for _, c := range cells {
			if !g.Rect(c).Overlaps(rect) {
				return false
			}
			keys[c.Key()] = true
		}
		// Random point inside rect must land in a returned cell.
		for s := 0; s < 5; s++ {
			p := geom.Point{
				rect[0].Lo + rng.Float64()*rect[0].Width(),
				rect[1].Lo + rng.Float64()*rect[1].Width(),
			}
			if !keys[g.CellOf(1, p).Key()] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
