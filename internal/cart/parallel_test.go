package cart

import (
	"math/rand"
	"testing"

	"github.com/explore-by-example/aide/internal/geom"
)

// randomTrainingSet builds n labeled points in d dimensions against a
// random rectangular target, the worst-case shape for split-search ties.
func randomTrainingSet(n, d int, seed int64) ([]geom.Point, []bool) {
	rng := rand.New(rand.NewSource(seed))
	target := make(geom.Rect, d)
	for i := range target {
		lo := rng.Float64() * 70
		target[i] = geom.Interval{Lo: lo, Hi: lo + 10 + rng.Float64()*20}
	}
	points := make([]geom.Point, n)
	labels := make([]bool, n)
	for i := range points {
		p := make(geom.Point, d)
		for j := range p {
			p[j] = rng.Float64() * 100
		}
		points[i] = p
		labels[i] = target.Contains(p)
	}
	return points, labels
}

// TestTrainParallelEquivalence asserts that induction is bit-identical
// across worker counts: same splits, same thresholds, same leaves.
func TestTrainParallelEquivalence(t *testing.T) {
	for _, tc := range []struct{ n, d int }{
		{200, 1}, {500, 2}, {500, 4}, {300, 7},
	} {
		for seed := int64(1); seed <= 5; seed++ {
			points, labels := randomTrainingSet(tc.n, tc.d, seed)
			params := DefaultParams()
			params.Workers = 1
			seq, err := Train(points, labels, params)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 8} {
				params.Workers = workers
				got, err := Train(points, labels, params)
				if err != nil {
					t.Fatal(err)
				}
				if got.String(nil) != seq.String(nil) {
					t.Fatalf("n=%d d=%d seed=%d: workers=%d tree differs from sequential\n--- workers=1:\n%s--- workers=%d:\n%s",
						tc.n, tc.d, seed, workers, seq.String(nil), workers, got.String(nil))
				}
				if got.Depth() != seq.Depth() || got.NumLeaves() != seq.NumLeaves() {
					t.Fatalf("n=%d d=%d seed=%d workers=%d: shape differs", tc.n, tc.d, seed, workers)
				}
			}
		}
	}
}

// TestTrainScratchReuse trains twice on the same tree-sized inputs and
// asserts repeatability: the hoisted scratch buffers must not leak state
// between dimensions or trainings.
func TestTrainScratchReuse(t *testing.T) {
	points, labels := randomTrainingSet(800, 3, 42)
	params := DefaultParams()
	params.Workers = 4
	first, err := Train(points, labels, params)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Train(points, labels, params)
	if err != nil {
		t.Fatal(err)
	}
	if first.String(nil) != second.String(nil) {
		t.Fatal("repeated training produced different trees")
	}
}
