package cart

import (
	"context"
	"math/rand"
	"testing"

	"github.com/explore-by-example/aide/internal/geom"
)

func trainSet(n int, seed int64) ([]geom.Point, []bool) {
	rng := rand.New(rand.NewSource(seed))
	points := make([]geom.Point, n)
	labels := make([]bool, n)
	for i := range points {
		p := geom.Point{rng.Float64() * 100, rng.Float64() * 100}
		points[i] = p
		labels[i] = p[0] > 30 && p[0] < 60 && p[1] > 40 && p[1] < 80
	}
	return points, labels
}

func TestTrainCtxUncancelledMatchesTrain(t *testing.T) {
	points, labels := trainSet(2000, 11)
	a, err := Train(points, labels, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	b, err := TrainCtx(ctx, points, labels, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	bounds := geom.R(0, 0, 100, 100)
	ra, rb := a.RelevantAreas(bounds), b.RelevantAreas(bounds)
	if len(ra) != len(rb) {
		t.Fatalf("areas: %d vs %d", len(ra), len(rb))
	}
	for i := range ra {
		for d := range ra[i] {
			if ra[i][d] != rb[i][d] {
				t.Fatalf("area %d dim %d: %v vs %v", i, d, ra[i][d], rb[i][d])
			}
		}
	}
}

func TestTrainCtxCancelled(t *testing.T) {
	points, labels := trainSet(2000, 11)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := TrainCtx(ctx, points, labels, DefaultParams()); err == nil {
		t.Fatal("want error from cancelled TrainCtx")
	}
}
