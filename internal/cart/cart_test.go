package cart

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/explore-by-example/aide/internal/geom"
)

// labeledGrid builds training data on a lattice where label = inside(rect).
func labeledGrid(n int, rect geom.Rect, seed int64) ([]geom.Point, []bool) {
	rng := rand.New(rand.NewSource(seed))
	d := rect.Dims()
	points := make([]geom.Point, n)
	labels := make([]bool, n)
	for i := 0; i < n; i++ {
		p := make(geom.Point, d)
		for j := range p {
			p[j] = rng.Float64() * 100
		}
		points[i] = p
		labels[i] = rect.Contains(p)
	}
	return points, labels
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, nil, DefaultParams()); err == nil {
		t.Error("empty training set should error")
	}
	if _, err := Train([]geom.Point{{1}}, nil, DefaultParams()); err == nil {
		t.Error("label mismatch should error")
	}
	if _, err := Train([]geom.Point{{}}, []bool{true}, DefaultParams()); err == nil {
		t.Error("zero-dim points should error")
	}
	if _, err := Train([]geom.Point{{1, 2}, {1}}, []bool{true, false}, DefaultParams()); err == nil {
		t.Error("ragged points should error")
	}
}

func TestPureLeaf(t *testing.T) {
	points := []geom.Point{{1, 1}, {2, 2}, {3, 3}}
	tree, err := Train(points, []bool{true, true, true}, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if tree.Depth() != 0 || tree.NumLeaves() != 1 {
		t.Errorf("pure tree depth=%d leaves=%d", tree.Depth(), tree.NumLeaves())
	}
	if !tree.Predict(geom.Point{50, 50}) {
		t.Error("all-relevant tree should predict relevant everywhere")
	}
}

func TestSimple1DSplit(t *testing.T) {
	// Relevant iff x <= 40 (training values at 10..100 step 10).
	var points []geom.Point
	var labels []bool
	for x := 10.0; x <= 100; x += 10 {
		points = append(points, geom.Point{x})
		labels = append(labels, x <= 40)
	}
	tree, err := Train(points, labels, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if !tree.Predict(geom.Point{20}) || tree.Predict(geom.Point{80}) {
		t.Error("1-D split misclassifies")
	}
	// Threshold should be the midpoint 45.
	areas := tree.RelevantAreas(geom.NewRect(1))
	if len(areas) != 1 {
		t.Fatalf("areas = %v", areas)
	}
	if areas[0][0].Hi != 45 {
		t.Errorf("split threshold = %v, want 45", areas[0][0].Hi)
	}
}

func TestPaperExampleTree(t *testing.T) {
	// Reconstruct the running example of Figure 2: relevant iff
	// (age <= 20 && 10 < dosage <= 15) or (20 < age <= 40 && dosage <= 10).
	target := []geom.Rect{
		geom.R(0, 20, 10.01, 15),
		geom.R(20.01, 40, 0, 10),
	}
	rng := rand.New(rand.NewSource(42))
	var points []geom.Point
	var labels []bool
	for i := 0; i < 4000; i++ {
		p := geom.Point{rng.Float64() * 40, rng.Float64() * 15}
		points = append(points, p)
		lab := false
		for _, r := range target {
			if r.Contains(p) {
				lab = true
			}
		}
		labels = append(labels, lab)
	}
	tree, err := Train(points, labels, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	// Spot-check the four quadrants of the example.
	cases := []struct {
		p    geom.Point
		want bool
	}{
		{geom.Point{10, 12}, true},   // age<=20, 10<dosage<=15
		{geom.Point{10, 5}, false},   // age<=20, dosage<=10
		{geom.Point{30, 5}, true},    // 20<age<=40, dosage<=10
		{geom.Point{30, 12}, false},  // 20<age<=40, dosage>10
		{geom.Point{39, 9.5}, true},  // inside second area
		{geom.Point{19, 10.5}, true}, // inside first area
	}
	for _, tc := range cases {
		if got := tree.Predict(tc.p); got != tc.want {
			t.Errorf("Predict(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestRelevantAreasPartitionSpace(t *testing.T) {
	rect := geom.R(20, 50, 60, 90)
	points, labels := labeledGrid(2000, rect, 7)
	tree, err := Train(points, labels, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	bounds := geom.NewRect(2)
	rel := tree.RelevantAreas(bounds)
	irr := tree.IrrelevantAreas(bounds)
	if len(rel) == 0 || len(irr) == 0 {
		t.Fatalf("rel=%d irr=%d areas", len(rel), len(irr))
	}
	// Relevant + irrelevant areas partition the bounds: volumes add up
	// and leaf count matches.
	var vol float64
	for _, r := range append(append([]geom.Rect{}, rel...), irr...) {
		vol += r.Volume()
	}
	if diff := vol - bounds.Volume(); diff > 1e-6 || diff < -1e-6 {
		t.Errorf("area volumes sum to %v, want %v", vol, bounds.Volume())
	}
	if len(rel)+len(irr) != tree.NumLeaves() {
		t.Errorf("%d+%d areas != %d leaves", len(rel), len(irr), tree.NumLeaves())
	}
	// Predict agrees with area membership.
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 200; i++ {
		p := geom.Point{rng.Float64() * 100, rng.Float64() * 100}
		inRel := false
		for _, r := range rel {
			if r.Contains(p) {
				inRel = true
				break
			}
		}
		if got := tree.Predict(p); got != inRel {
			// Boundary points can legitimately fall in two areas; skip
			// exact-boundary cases.
			onBoundary := false
			for _, r := range rel {
				for d := range r {
					if p[d] == r[d].Lo || p[d] == r[d].Hi {
						onBoundary = true
					}
				}
			}
			if !onBoundary {
				t.Errorf("Predict(%v) = %v but area membership = %v", p, got, inRel)
			}
		}
	}
}

func TestMaxDepth(t *testing.T) {
	rect := geom.R(20, 50, 60, 90)
	points, labels := labeledGrid(2000, rect, 9)
	tree, err := Train(points, labels, Params{MaxDepth: 2, MinLeaf: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Depth() > 2 {
		t.Errorf("depth = %d exceeds MaxDepth 2", tree.Depth())
	}
}

func TestMinLeaf(t *testing.T) {
	points := []geom.Point{{1}, {2}, {3}, {4}}
	labels := []bool{true, false, false, false}
	tree, err := Train(points, labels, Params{MinLeaf: 2})
	if err != nil {
		t.Fatal(err)
	}
	// The only useful split (<=1.5) leaves one sample on the left, so
	// MinLeaf=2 forbids it: the tree stays a single majority leaf.
	if tree.NumLeaves() != 1 {
		t.Errorf("leaves = %d, want 1", tree.NumLeaves())
	}
	if tree.Predict(geom.Point{1}) {
		t.Error("majority leaf should predict irrelevant")
	}
}

func TestSplitDims(t *testing.T) {
	// Label depends only on dim 0; dim 1 is noise.
	rng := rand.New(rand.NewSource(3))
	var points []geom.Point
	var labels []bool
	for i := 0; i < 500; i++ {
		p := geom.Point{rng.Float64() * 100, rng.Float64() * 100}
		points = append(points, p)
		labels = append(labels, p[0] > 50)
	}
	tree, err := Train(points, labels, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	dims := tree.SplitDims()
	if !dims[0] {
		t.Error("dim 0 should be split on")
	}
	// dim 1 may appear in tiny noise splits near the threshold, but a
	// clean margin dataset should not need it.
	if len(dims) > 2 {
		t.Errorf("SplitDims = %v", dims)
	}
}

func TestPredictDeterministic(t *testing.T) {
	rect := geom.R(10, 30, 10, 30)
	points, labels := labeledGrid(800, rect, 11)
	t1, _ := Train(points, labels, DefaultParams())
	t2, _ := Train(points, labels, DefaultParams())
	if t1.String(nil) != t2.String(nil) {
		t.Error("training is not deterministic")
	}
}

func TestStringRendering(t *testing.T) {
	points := []geom.Point{{10, 1}, {20, 1}, {30, 1}, {40, 1}}
	labels := []bool{true, true, false, false}
	tree, _ := Train(points, labels, Params{MinLeaf: 1})
	s := tree.String([]string{"age", "dosage"})
	if !contains(s, "age <= 25") {
		t.Errorf("String = %q, want split on age <= 25", s)
	}
	if !contains(s, "relevant") || !contains(s, "irrelevant") {
		t.Errorf("String = %q missing labels", s)
	}
	// Without names, dims render as x0...
	s = tree.String(nil)
	if !contains(s, "x0 <= 25") {
		t.Errorf("String(nil) = %q", s)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestMergeAreasAdjacent(t *testing.T) {
	rects := []geom.Rect{
		geom.R(0, 10, 0, 10),
		geom.R(10, 20, 0, 10),
	}
	got := MergeAreas(rects)
	if len(got) != 1 || !got[0].Equal(geom.R(0, 20, 0, 10)) {
		t.Errorf("MergeAreas = %v", got)
	}
}

func TestMergeAreasGapAndMismatch(t *testing.T) {
	rects := []geom.Rect{
		geom.R(0, 10, 0, 10),
		geom.R(20, 30, 0, 10), // gap in dim 0
		geom.R(0, 10, 20, 30), // differs in dim 1
	}
	got := MergeAreas(rects)
	if len(got) != 3 {
		t.Errorf("MergeAreas merged disjoint rects: %v", got)
	}
}

func TestMergeAreasChain(t *testing.T) {
	// Three rects in a row merge into one via repeated passes.
	rects := []geom.Rect{
		geom.R(0, 10, 0, 10),
		geom.R(20, 30, 0, 10),
		geom.R(10, 20, 0, 10),
	}
	got := MergeAreas(rects)
	if len(got) != 1 || !got[0].Equal(geom.R(0, 30, 0, 10)) {
		t.Errorf("MergeAreas chain = %v", got)
	}
}

func TestMergeAreasIdentical(t *testing.T) {
	rects := []geom.Rect{geom.R(0, 10), geom.R(0, 10)}
	got := MergeAreas(rects)
	if len(got) != 1 {
		t.Errorf("identical rects should merge: %v", got)
	}
}

// Property: training accuracy on separable rectangular concepts is
// perfect with MinLeaf=1 (a fully grown tree can always shatter the
// training set when no two identical points have different labels).
func TestQuickTrainingAccuracy(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 1 + rng.Intn(3)
		rect := make(geom.Rect, d)
		for i := range rect {
			lo := rng.Float64() * 80
			rect[i] = geom.Interval{Lo: lo, Hi: lo + 5 + rng.Float64()*15}
		}
		n := 50 + rng.Intn(200)
		points := make([]geom.Point, n)
		labels := make([]bool, n)
		for i := range points {
			p := make(geom.Point, d)
			for j := range p {
				p[j] = rng.Float64() * 100
			}
			points[i] = p
			labels[i] = rect.Contains(p)
		}
		tree, err := Train(points, labels, Params{MinLeaf: 1})
		if err != nil {
			return false
		}
		for i := range points {
			if tree.Predict(points[i]) != labels[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: MergeAreas preserves the union volume.
func TestQuickMergePreservesUnion(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		var rects []geom.Rect
		for i := 0; i < n; i++ {
			lo0 := float64(rng.Intn(5)) * 10
			lo1 := float64(rng.Intn(5)) * 10
			rects = append(rects, geom.R(lo0, lo0+10, lo1, lo1+10))
		}
		before := geom.UnionVolume(rects)
		after := geom.UnionVolume(MergeAreas(rects))
		diff := before - after
		return diff < 1e-6 && diff > -1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestGini(t *testing.T) {
	if gini(0, 0) != 0 {
		t.Error("gini(0,0) should be 0")
	}
	if gini(5, 10) != 0.5 {
		t.Errorf("gini(5,10) = %v, want 0.5", gini(5, 10))
	}
	if gini(10, 10) != 0 {
		t.Error("pure node gini should be 0")
	}
}
