package cart

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"github.com/explore-by-example/aide/internal/geom"
)

// gridPoints builds a labeled 2-D training set: points inside the target
// rect are positive.
func gridPoints(n int, seed int64, target geom.Rect) ([]geom.Point, []bool) {
	rng := rand.New(rand.NewSource(seed))
	points := make([]geom.Point, n)
	labels := make([]bool, n)
	for i := range points {
		p := geom.Point{rng.Float64() * 100, rng.Float64() * 100}
		points[i] = p
		labels[i] = target.Contains(p)
	}
	return points, labels
}

func TestTrainWeightedNilDelegates(t *testing.T) {
	points, labels := gridPoints(400, 1, geom.R(20, 60, 30, 70))
	params := DefaultParams()
	plain, err := Train(points, labels, params)
	if err != nil {
		t.Fatal(err)
	}
	viaNil, err := TrainWeighted(points, labels, nil, params)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.RelevantAreas(geom.R(0, 100, 0, 100)), viaNil.RelevantAreas(geom.R(0, 100, 0, 100))) {
		t.Error("nil-weight TrainWeighted differs from Train")
	}
}

func TestTrainWeightedUniformMatchesUnweighted(t *testing.T) {
	points, labels := gridPoints(400, 2, geom.R(20, 60, 30, 70))
	params := DefaultParams()
	plain, err := Train(points, labels, params)
	if err != nil {
		t.Fatal(err)
	}
	w := make([]float64, len(points))
	for i := range w {
		w[i] = 1
	}
	weighted, err := TrainWeighted(points, labels, w, params)
	if err != nil {
		t.Fatal(err)
	}
	bounds := geom.R(0, 100, 0, 100)
	if !reflect.DeepEqual(plain.RelevantAreas(bounds), weighted.RelevantAreas(bounds)) {
		t.Error("uniform weights produced different areas than unweighted training")
	}
}

func TestTrainWeightedDownweightsConflicts(t *testing.T) {
	// A positive blob with a few mislabeled points inside it: with full
	// weight the noise carves the area, with low weight it is outvoted.
	var points []geom.Point
	var labels []bool
	var weights []float64
	for x := 0.5; x < 10; x++ {
		for y := 0.5; y < 10; y++ {
			p := geom.Point{x * 10, y * 10}
			inside := x >= 2 && x < 8 && y >= 2 && y < 8
			points = append(points, p)
			labels = append(labels, inside)
			weights = append(weights, 1)
		}
	}
	// Flip two interior points to negative with low confidence.
	flipped := 0
	for i, p := range points {
		if flipped < 2 && p[0] == 45 && labels[i] {
			labels[i] = false
			weights[i] = 0.51
			flipped++
		}
	}
	params := DefaultParams()
	params.MinLeaf = 1
	tr, err := TrainWeighted(points, labels, weights, params)
	if err != nil {
		t.Fatal(err)
	}
	// The down-weighted contradictions should not flip their leaves.
	if !tr.Predict(geom.Point{45, 45}) {
		t.Error("down-weighted negative flipped an interior leaf")
	}
}

func TestTrainWeightedRejectsBadWeights(t *testing.T) {
	points, labels := gridPoints(50, 3, geom.R(20, 60, 30, 70))
	for _, w := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		weights := make([]float64, len(points))
		for i := range weights {
			weights[i] = 1
		}
		weights[7] = w
		if _, err := TrainWeighted(points, labels, weights, DefaultParams()); err == nil {
			t.Errorf("weight %v accepted", w)
		}
	}
	if _, err := TrainWeighted(points, labels, []float64{1, 2}, DefaultParams()); err == nil {
		t.Error("length-mismatched weights accepted")
	}
}

func TestMaxNodesCap(t *testing.T) {
	// Checkerboard labels force a deep tree without a cap.
	points, labels := gridPoints(2000, 4, geom.R(10, 30, 10, 30))
	for i, p := range points {
		labels[i] = (int(p[0]/10)+int(p[1]/10))%2 == 0
	}
	for _, maxNodes := range []int{3, 5, 9, 31} {
		params := DefaultParams()
		params.MaxNodes = maxNodes
		tr, err := Train(points, labels, params)
		if err != nil {
			t.Fatal(err)
		}
		if n := tr.NumNodes(); n > maxNodes {
			t.Errorf("MaxNodes=%d: tree has %d nodes", maxNodes, n)
		}
		if !tr.Capped() {
			t.Errorf("MaxNodes=%d: checkerboard tree not marked capped", maxNodes)
		}
	}
	// Without a cap the same data trains a bigger, uncapped tree.
	free, err := Train(points, labels, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if free.Capped() {
		t.Error("uncapped training marked capped")
	}
	if free.NumNodes() <= 31 {
		t.Errorf("checkerboard tree only has %d nodes; cap test is vacuous", free.NumNodes())
	}
}

func TestParamsValidate(t *testing.T) {
	bad := []Params{
		{MaxDepth: -1},
		{MinLeaf: -1},
		{MinGain: -0.1},
		{MinGain: math.NaN()},
		{Workers: -1},
		{MaxNodes: -1},
	}
	for _, p := range bad {
		if err := p.Validate(); !errors.Is(err, ErrBadParams) {
			t.Errorf("params %+v: err = %v, want ErrBadParams", p, err)
		}
		if _, err := Train([]geom.Point{{1, 1}, {2, 2}}, []bool{true, false}, p); err == nil {
			t.Errorf("Train accepted invalid params %+v", p)
		}
	}
	if err := (Params{}).Validate(); err != nil {
		t.Errorf("zero params rejected: %v", err)
	}
	if err := DefaultParams().Validate(); err != nil {
		t.Errorf("default params rejected: %v", err)
	}
}
