package cart

import (
	"math/rand"
	"testing"

	"github.com/explore-by-example/aide/internal/geom"
)

// trainingSet builds n labeled points against a two-area target, the
// data shape the session trains on.
func trainingSet(n int, seed int64) ([]geom.Point, []bool) {
	rng := rand.New(rand.NewSource(seed))
	targets := []geom.Rect{
		geom.R(20, 28, 30, 38),
		geom.R(60, 68, 70, 78),
	}
	points := make([]geom.Point, n)
	labels := make([]bool, n)
	for i := range points {
		p := geom.Point{rng.Float64() * 100, rng.Float64() * 100}
		points[i] = p
		for _, t := range targets {
			if t.Contains(p) {
				labels[i] = true
			}
		}
	}
	return points, labels
}

func BenchmarkTrain500(b *testing.B) {
	points, labels := trainingSet(500, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(points, labels, DefaultParams()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrain2000(b *testing.B) {
	points, labels := trainingSet(2000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(points, labels, DefaultParams()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPredict(b *testing.B) {
	points, labels := trainingSet(2000, 1)
	tree, err := Train(points, labels, DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	p := geom.Point{50, 50}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.Predict(p)
	}
}

func BenchmarkRelevantAreas(b *testing.B) {
	points, labels := trainingSet(2000, 1)
	tree, err := Train(points, labels, DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	bounds := geom.NewRect(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.RelevantAreas(bounds)
	}
}

func BenchmarkMergeAreas(b *testing.B) {
	points, labels := trainingSet(2000, 1)
	tree, err := Train(points, labels, DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	areas := tree.RelevantAreas(geom.NewRect(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MergeAreas(areas)
	}
}
