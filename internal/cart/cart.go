// Package cart implements the CART decision-tree classifier (Breiman et
// al. 1984) that AIDE uses as its user-interest model (Section 2.2 of the
// paper). The tree is binary, splits numeric attributes on midpoint
// thresholds chosen by Gini impurity reduction, and — crucially for AIDE —
// is a white-box model: its decision conditions translate directly into
// hyper-rectangles that characterize the relevant and irrelevant areas of
// the exploration space, and from there into boolean query predicates.
//
// All training points are expected in AIDE's normalized [0,100] space,
// though nothing in the algorithm depends on that.
package cart

import (
	"context"
	"errors"
	"fmt"
	"math"
	"slices"
	"strings"
	"sync"

	"github.com/explore-by-example/aide/internal/geom"
	"github.com/explore-by-example/aide/internal/par"
)

// ErrBadParams marks Params rejected by Validate.
var ErrBadParams = errors.New("cart: invalid params")

// kernelSplit tracks the parallel per-dimension Gini sweeps of bestSplit.
var kernelSplit = par.NewKernel("cart.best_split")

// Params controls tree induction.
type Params struct {
	// MaxDepth bounds tree depth; 0 means unbounded.
	MaxDepth int
	// MinLeaf is the minimum number of samples each side of a split must
	// retain; splits violating it are rejected. Minimum 1.
	MinLeaf int
	// MinGain is the minimum Gini impurity decrease a split must achieve.
	MinGain float64
	// Workers sets the worker count for the per-dimension split search:
	// 0 means automatic (AIDE_WORKERS or GOMAXPROCS), 1 forces the
	// sequential path. The trained tree is bit-identical at every worker
	// count: each dimension's sweep is independent and the cross-dimension
	// merge keeps the lower-dim/lower-threshold tie-break.
	Workers int
	// MaxNodes caps the total node count (a resource budget: each split
	// adds two nodes). 0 means unbounded. When the cap stops a split, the
	// affected subtree becomes a majority-vote leaf and the tree reports
	// Capped() — a deterministic truncation of the unbounded tree.
	MaxNodes int
}

// Validate rejects negative or non-finite parameter values with a typed
// error (errors.Is(err, ErrBadParams)). Zero values are allowed: they
// mean "default" (MinLeaf 1, unbounded depth/nodes, automatic workers).
func (p Params) Validate() error {
	if p.MaxDepth < 0 {
		return fmt.Errorf("%w: MaxDepth = %d", ErrBadParams, p.MaxDepth)
	}
	if p.MinLeaf < 0 {
		return fmt.Errorf("%w: MinLeaf = %d", ErrBadParams, p.MinLeaf)
	}
	if p.MinGain < 0 || math.IsNaN(p.MinGain) || math.IsInf(p.MinGain, 0) {
		return fmt.Errorf("%w: MinGain = %v", ErrBadParams, p.MinGain)
	}
	if p.Workers < 0 {
		return fmt.Errorf("%w: Workers = %d", ErrBadParams, p.Workers)
	}
	if p.MaxNodes < 0 {
		return fmt.Errorf("%w: MaxNodes = %d", ErrBadParams, p.MaxNodes)
	}
	return nil
}

// DefaultParams returns the parameters used by AIDE. MinLeaf is 3 rather
// than 1: a lone relevant sample must NOT get a pure leaf of its own,
// because AIDE's misclassified-exploitation phase is driven by exactly
// those training-set false negatives ("there are no sufficient samples
// within that area to allow the classifier to characterize this area as
// relevant", Section 4.1). A fully grown tree would have zero training
// error and the phase would never fire.
func DefaultParams() Params {
	return Params{MaxDepth: 0, MinLeaf: 3, MinGain: 1e-9}
}

// node is one tree node. Leaves have dim == -1.
type node struct {
	dim      int     // split dimension, -1 for leaf
	thr      float64 // split threshold: left if x[dim] <= thr
	left     *node
	right    *node
	relevant bool // leaf prediction
	n        int  // training samples reaching the node
	nPos     int  // relevant training samples reaching the node
}

// Tree is a trained CART classifier.
type Tree struct {
	root   *node
	dims   int
	params Params
	nodes  int  // total node count
	capped bool // true when the MaxNodes budget stopped a split

	// Induction scratch, released after Train. scratch holds one reusable
	// (value, index) buffer per split-search chunk so recursive build
	// calls stop reallocating; dimBest collects per-dimension candidates
	// for the ordered cross-dimension merge. ctx carries TrainCtx's
	// cancellation into the recursive build (nil: never cancelled).
	// weights carries TrainWeightedCtx's per-sample weights (nil: the
	// unweighted integer-arithmetic path).
	scratch [][]keyedIndex
	dimBest []splitResult
	part    []int // right-side buffer for build's in-place partition
	ctx     context.Context
	weights []float64
}

// trainScratch is one Train call's induction scratch: the per-chunk
// keyed sort buffers the split-search kernel reuses across par.ForWork
// invocations, the per-dimension candidate table, and the partition
// buffer. Pooling it across Train calls matters because steering
// sessions retrain every iteration — without the pool, the parallel
// path reallocated every chunk buffer per call (~494 KB/op at
// workers=N vs ~198 KB/op sequential). Reuse is deterministic: every
// buffer is fully overwritten before it is read (sortKeyed resizes and
// rewrites, dimBest is written for all dims before the merge, part is
// truncated per partition).
type trainScratch struct {
	bufs    [][]keyedIndex
	dimBest []splitResult
	part    []int
}

var scratchPool = sync.Pool{New: func() any { return &trainScratch{} }}

// Train fits a tree to the given points and labels. It returns an error
// when the inputs are empty or ragged.
func Train(points []geom.Point, labels []bool, params Params) (*Tree, error) {
	return TrainCtx(context.Background(), points, labels, params)
}

// TrainCtx is Train with cooperative cancellation: induction checks ctx
// at every node boundary and returns ctx.Err() once cancelled, dropping
// the partial tree. An uncancelled ctx yields a tree bit-identical to
// Train's.
func TrainCtx(ctx context.Context, points []geom.Point, labels []bool, params Params) (*Tree, error) {
	return train(ctx, points, labels, nil, params)
}

// train is the shared induction entry point behind TrainCtx (weights nil)
// and TrainWeightedCtx (weights per sample).
func train(ctx context.Context, points []geom.Point, labels []bool, weights []float64, params Params) (*Tree, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("cart: no training samples")
	}
	if len(points) != len(labels) {
		return nil, fmt.Errorf("cart: %d points vs %d labels", len(points), len(labels))
	}
	d := len(points[0])
	if d == 0 {
		return nil, fmt.Errorf("cart: zero-dimensional points")
	}
	for i, p := range points {
		if len(p) != d {
			return nil, fmt.Errorf("cart: point %d has %d dims, want %d", i, len(p), d)
		}
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if params.MinLeaf < 1 {
		params.MinLeaf = 1
	}
	idx := make([]int, len(points))
	for i := range idx {
		idx[i] = i
	}
	t := &Tree{dims: d, params: params, weights: weights}
	if ctx != nil && ctx != context.Background() {
		t.ctx = ctx
	}
	chunks := par.ChunkCount(params.Workers, d, 1)
	sc := scratchPool.Get().(*trainScratch)
	if len(sc.bufs) < chunks {
		b := make([][]keyedIndex, chunks)
		copy(b, sc.bufs) // keep already-grown chunk buffers
		sc.bufs = b
	}
	if len(sc.dimBest) < d {
		sc.dimBest = make([]splitResult, d)
	}
	t.scratch = sc.bufs[:chunks]
	t.dimBest = sc.dimBest[:d]
	t.part = sc.part[:0]
	t.nodes = 1 // the root; each split commits two more
	t.root = t.build(points, labels, idx, 0)
	sc.part = t.part // partition buffer may have regrown; keep the capacity
	scratchPool.Put(sc)
	t.scratch, t.dimBest, t.part, t.weights = nil, nil, nil, nil
	if t.ctx != nil {
		if err := t.ctx.Err(); err != nil {
			t.ctx = nil
			return nil, fmt.Errorf("cart: training cancelled: %w", err)
		}
	}
	t.ctx = nil
	return t, nil
}

// build grows the subtree for the samples in idx. A cancelled training
// context prunes the recursion immediately (TrainCtx discards the
// partial tree).
func (t *Tree) build(points []geom.Point, labels []bool, idx []int, depth int) *node {
	if t.ctx != nil && t.ctx.Err() != nil {
		return &node{dim: -1}
	}
	n := len(idx)
	nPos := 0
	for _, i := range idx {
		if labels[i] {
			nPos++
		}
	}
	nd := &node{dim: -1, n: n, nPos: nPos, relevant: nPos*2 > n}
	if t.weights != nil {
		// Weighted majority vote: down-weighted (conflicted) samples pull
		// less on the leaf prediction.
		var wPos, wTot float64
		for _, i := range idx {
			w := t.weights[i]
			wTot += w
			if labels[i] {
				wPos += w
			}
		}
		nd.relevant = wPos*2 > wTot
	}
	if nPos == 0 || nPos == n {
		return nd // pure
	}
	if t.params.MaxDepth > 0 && depth >= t.params.MaxDepth {
		return nd
	}
	if t.params.MaxNodes > 0 && t.nodes+2 > t.params.MaxNodes {
		// Node budget exhausted: stop splitting here. Because induction is
		// depth-first in a fixed order, the truncation point — and thus the
		// whole capped tree — is deterministic.
		t.capped = true
		return nd
	}
	var (
		dim  int
		thr  float64
		gain float64
	)
	if t.weights == nil {
		dim, thr, gain = t.bestSplit(points, labels, idx)
	} else {
		dim, thr, gain = t.bestSplitWeighted(points, labels, idx)
	}
	if dim < 0 || gain < t.params.MinGain {
		return nd
	}
	// Partition idx in place around the split, preserving relative order
	// on both sides (left as a prefix, right as a suffix) exactly as the
	// old left/right append loops did. t.part buffers the right side; its
	// contents are dead before the recursive calls below, so one per-tree
	// buffer serves every node with zero per-node allocation. Permuting
	// idx is safe even when the split is then rejected: callers never
	// re-read their index slice after passing it down.
	k := 0
	t.part = t.part[:0]
	for _, i := range idx {
		if points[i][dim] <= thr {
			idx[k] = i
			k++
		} else {
			t.part = append(t.part, i)
		}
	}
	copy(idx[k:], t.part)
	left, right := idx[:k], idx[k:]
	if len(left) < t.params.MinLeaf || len(right) < t.params.MinLeaf {
		return nd
	}
	nd.dim = dim
	nd.thr = thr
	// Commit both children before recursing so the MaxNodes check above
	// accounts for right siblings the depth-first walk has not built yet.
	t.nodes += 2
	nd.left = t.build(points, labels, left, depth+1)
	nd.right = t.build(points, labels, right, depth+1)
	return nd
}

// splitResult is one dimension's best split candidate.
type splitResult struct {
	gain float64
	thr  float64
	ok   bool
}

// bestSplit scans every dimension for the midpoint threshold with maximal
// Gini gain. The per-dimension sweeps are independent, so they fan out
// across the par worker pool (chunked over dimensions, one reusable sort
// buffer per chunk); the cross-dimension merge then walks dimensions in
// ascending order, so ties break toward the lower dimension index and
// lower threshold and induction is deterministic — and identical — at
// every worker count.
//
// Tie-break semantics: each dimension keeps the first candidate whose
// gain exceeds its running per-dimension best by 1e-15, and the merge
// keeps the first dimension whose best exceeds the running cross-dim
// best by 1e-15. This is a fixed two-level rule independent of worker
// count, but it is not bit-identical to a single global left-to-right
// sweep (where acceptance within a dimension compared against bests
// from earlier dimensions) when candidates land within 1e-15 of each
// other across dimensions — a sub-epsilon near-tie that cannot occur
// with the synthetic float data exercised here and is astronomically
// rare on real data. The global-sweep rule is inherently sequential
// (dimension d's choice depends on dimensions < d), so it cannot be
// decomposed per-dimension; the two-level rule is the deterministic
// replacement.
func (t *Tree) bestSplit(points []geom.Point, labels []bool, idx []int) (bestDim int, bestThr, bestGain float64) {
	n := len(idx)
	nPos := 0
	for _, i := range idx {
		if labels[i] {
			nPos++
		}
	}
	parent := gini(nPos, n)

	// Work hint: the sweep sorts len(idx) pairs per dimension, so total
	// cost scales with dims × len(idx). Deep nodes with a handful of
	// samples run inline instead of paying chunk handoff — the fix for the
	// chunked path being a net slowdown on small subtrees.
	par.ForWork(kernelSplit, t.params.Workers, t.dims, 1, t.dims*len(idx), func(chunk, lo, hi int) {
		for d := lo; d < hi; d++ {
			t.dimBest[d] = bestSplitDim(points, labels, idx, d, parent, nPos, &t.scratch[chunk])
		}
	})

	bestDim = -1
	for d, r := range t.dimBest {
		if r.ok && r.gain > bestGain+1e-15 {
			bestDim, bestThr, bestGain = d, r.thr, r.gain
		}
	}
	return bestDim, bestThr, bestGain
}

// bestSplitDim sweeps one dimension for its best midpoint threshold. buf
// is the chunk's reusable (value, index) scratch: sorting dominates
// induction cost, so the pairs are sorted with a concrete comparator and
// the buffer is hoisted out of the recursive build to kill per-call
// allocation churn.
func bestSplitDim(points []geom.Point, labels []bool, idx []int, d int, parent float64, nPos int, buf *[]keyedIndex) splitResult {
	n := len(idx)
	keyed := sortKeyed(points, idx, d, buf)
	var best splitResult
	leftPos, leftN := 0, 0
	for k := 0; k < n-1; k++ {
		i := keyed[k].idx
		leftN++
		if labels[i] {
			leftPos++
		}
		v, next := keyed[k].key, keyed[k+1].key
		if v == next {
			continue // can only split between distinct values
		}
		rightN := n - leftN
		rightPos := nPos - leftPos
		w := float64(leftN) / float64(n)
		g := parent - w*gini(leftPos, leftN) - (1-w)*gini(rightPos, rightN)
		if g > best.gain+1e-15 {
			best = splitResult{gain: g, thr: (v + next) / 2, ok: true}
		}
	}
	return best
}

// keyedIndex pairs a sample index with its value on the dimension being
// scanned, so split search can sort with a concrete comparator.
type keyedIndex struct {
	key float64
	idx int
}

// sortKeyed fills buf with (value, index) pairs for idx on dimension d
// and sorts them ascending by value, reusing buf's capacity across calls.
func sortKeyed(points []geom.Point, idx []int, d int, buf *[]keyedIndex) []keyedIndex {
	n := len(idx)
	keyed := *buf
	if cap(keyed) < n {
		keyed = make([]keyedIndex, n)
		*buf = keyed
	} else {
		keyed = keyed[:n]
	}
	for j, i := range idx {
		keyed[j] = keyedIndex{key: points[i][d], idx: i}
	}
	slices.SortFunc(keyed, func(a, b keyedIndex) int {
		switch {
		case a.key < b.key:
			return -1
		case a.key > b.key:
			return 1
		default:
			return 0
		}
	})
	return keyed
}

// gini returns the Gini impurity of a node with pos positives out of n.
func gini(pos, n int) float64 {
	if n == 0 {
		return 0
	}
	p := float64(pos) / float64(n)
	return 2 * p * (1 - p)
}

// Dims returns the dimensionality the tree was trained on.
func (t *Tree) Dims() int { return t.dims }

// NumNodes returns the total node count of the tree.
func (t *Tree) NumNodes() int { return t.nodes }

// Capped reports whether the MaxNodes budget stopped at least one split
// during induction.
func (t *Tree) Capped() bool { return t.capped }

// Predict classifies a point as relevant (true) or irrelevant (false).
func (t *Tree) Predict(p geom.Point) bool {
	nd := t.root
	for nd.dim >= 0 {
		if p[nd.dim] <= nd.thr {
			nd = nd.left
		} else {
			nd = nd.right
		}
	}
	return nd.relevant
}

// Depth returns the tree depth (a lone leaf has depth 0).
func (t *Tree) Depth() int { return depth(t.root) }

func depth(nd *node) int {
	if nd.dim < 0 {
		return 0
	}
	l, r := depth(nd.left), depth(nd.right)
	if l > r {
		return l + 1
	}
	return r + 1
}

// NumLeaves returns the number of leaves.
func (t *Tree) NumLeaves() int { return leaves(t.root) }

func leaves(nd *node) int {
	if nd.dim < 0 {
		return 1
	}
	return leaves(nd.left) + leaves(nd.right)
}

// RelevantAreas returns the hyper-rectangles (within bounds) whose points
// the tree classifies as relevant: one rect per relevant leaf, clipped to
// bounds. This is the P^r predicate set of Section 2.3, the source of
// AIDE's final query and the areas the boundary-exploitation phase
// refines.
func (t *Tree) RelevantAreas(bounds geom.Rect) []geom.Rect {
	if len(bounds) != t.dims {
		panic(fmt.Sprintf("cart: bounds have %d dims, tree has %d", len(bounds), t.dims))
	}
	var out []geom.Rect
	collectAreas(t.root, bounds.Clone(), true, &out)
	return out
}

// IrrelevantAreas returns the rectangles classified irrelevant (the P^nr
// set).
func (t *Tree) IrrelevantAreas(bounds geom.Rect) []geom.Rect {
	if len(bounds) != t.dims {
		panic(fmt.Sprintf("cart: bounds have %d dims, tree has %d", len(bounds), t.dims))
	}
	var out []geom.Rect
	collectAreas(t.root, bounds.Clone(), false, &out)
	return out
}

func collectAreas(nd *node, rect geom.Rect, wantRelevant bool, out *[]geom.Rect) {
	if nd.dim < 0 {
		if nd.relevant == wantRelevant && !rect.IsEmpty() {
			*out = append(*out, rect.Clone())
		}
		return
	}
	left := rect.Clone()
	if nd.thr < left[nd.dim].Hi {
		left[nd.dim].Hi = nd.thr
	}
	collectAreas(nd.left, left, wantRelevant, out)
	right := rect.Clone()
	if nd.thr > right[nd.dim].Lo {
		right[nd.dim].Lo = nd.thr
	}
	collectAreas(nd.right, right, wantRelevant, out)
}

// SplitDims returns the set of dimensions the tree actually splits on.
// AIDE uses this to detect attributes the model considers relevant;
// dimensions absent from the set are candidates for elimination from the
// final query (Section 5.2, "identifying irrelevant attributes").
func (t *Tree) SplitDims() map[int]bool {
	out := make(map[int]bool)
	var walk func(*node)
	walk = func(nd *node) {
		if nd.dim < 0 {
			return
		}
		out[nd.dim] = true
		walk(nd.left)
		walk(nd.right)
	}
	walk(t.root)
	return out
}

// String renders the tree in an indented, human-readable form, with
// attribute names when provided (pass nil to use x0..x(d-1)).
func (t *Tree) String(attrs []string) string {
	name := func(d int) string {
		if d < len(attrs) {
			return attrs[d]
		}
		return fmt.Sprintf("x%d", d)
	}
	var b strings.Builder
	var walk func(nd *node, indent string)
	walk = func(nd *node, indent string) {
		if nd.dim < 0 {
			label := "irrelevant"
			if nd.relevant {
				label = "relevant"
			}
			fmt.Fprintf(&b, "%s%s (%d/%d)\n", indent, label, nd.nPos, nd.n)
			return
		}
		fmt.Fprintf(&b, "%s%s <= %.4g\n", indent, name(nd.dim), nd.thr)
		walk(nd.left, indent+"  ")
		fmt.Fprintf(&b, "%s%s > %.4g\n", indent, name(nd.dim), nd.thr)
		walk(nd.right, indent+"  ")
	}
	walk(t.root, "")
	return b.String()
}

// MergeAreas coalesces rectangles that tile a larger rectangle: two rects
// merge when they agree on every dimension but one and are adjacent (or
// overlapping) in that one. The decision tree often fragments a single
// relevant region into several leaves; merging produces the compact
// disjuncts users see in the final query. The operation preserves the
// union of the rectangles exactly.
func MergeAreas(rects []geom.Rect) []geom.Rect {
	out := make([]geom.Rect, len(rects))
	for i, r := range rects {
		out[i] = r.Clone()
	}
	merged := true
	for merged {
		merged = false
	outer:
		for i := 0; i < len(out); i++ {
			for j := i + 1; j < len(out); j++ {
				if m, ok := tryMerge(out[i], out[j]); ok {
					out[i] = m
					out = append(out[:j], out[j+1:]...)
					merged = true
					break outer
				}
			}
		}
	}
	return out
}

// tryMerge merges two rects when their union is exactly a rect.
func tryMerge(a, b geom.Rect) (geom.Rect, bool) {
	if len(a) != len(b) {
		return nil, false
	}
	diff := -1
	for d := range a {
		if a[d] == b[d] {
			continue
		}
		if diff >= 0 {
			return nil, false // differ in more than one dimension
		}
		diff = d
	}
	if diff < 0 {
		return a.Clone(), true // identical
	}
	// Adjacent or overlapping along diff?
	if a[diff].Lo > b[diff].Lo {
		a, b = b, a
	}
	if b[diff].Lo > a[diff].Hi {
		return nil, false // gap
	}
	m := a.Clone()
	if b[diff].Hi > m[diff].Hi {
		m[diff].Hi = b[diff].Hi
	}
	return m, true
}
