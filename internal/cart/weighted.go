package cart

import (
	"context"
	"fmt"
	"math"

	"github.com/explore-by-example/aide/internal/geom"
	"github.com/explore-by-example/aide/internal/par"
)

// TrainWeighted fits a tree with a per-sample weight on every training
// point: split search maximizes weighted Gini gain and leaf predictions
// use the weighted majority vote, so down-weighted samples (e.g. rows the
// user labeled contradictorily) pull less on the model without being
// dropped. Weights must be finite and positive; MinLeaf still counts
// samples, not weight mass.
//
// A nil weights slice delegates to Train — the unweighted
// integer-arithmetic path — so callers that only sometimes have weights
// keep bit-identical unweighted behavior.
func TrainWeighted(points []geom.Point, labels []bool, weights []float64, params Params) (*Tree, error) {
	return TrainWeightedCtx(context.Background(), points, labels, weights, params)
}

// TrainWeightedCtx is TrainWeighted with cooperative cancellation,
// mirroring TrainCtx.
func TrainWeightedCtx(ctx context.Context, points []geom.Point, labels []bool, weights []float64, params Params) (*Tree, error) {
	if weights == nil {
		return TrainCtx(ctx, points, labels, params)
	}
	if len(weights) != len(points) {
		return nil, fmt.Errorf("cart: %d weights vs %d points", len(weights), len(points))
	}
	for i, w := range weights {
		if math.IsNaN(w) || math.IsInf(w, 0) || w <= 0 {
			return nil, fmt.Errorf("cart: weight %d = %v (want finite > 0)", i, w)
		}
	}
	return train(ctx, points, labels, weights, params)
}

// bestSplitWeighted is bestSplit over weighted impurity. The per-dimension
// sweeps accumulate weight sums sequentially in sorted-key order, so the
// result is deterministic — and identical — at every worker count; the
// cross-dimension merge keeps the same two-level 1e-15 tie-break as the
// unweighted path.
func (t *Tree) bestSplitWeighted(points []geom.Point, labels []bool, idx []int) (bestDim int, bestThr, bestGain float64) {
	var wPos, wTot float64
	for _, i := range idx {
		w := t.weights[i]
		wTot += w
		if labels[i] {
			wPos += w
		}
	}
	parent := giniW(wPos, wTot)

	// Same work hint as the unweighted path: sub-threshold nodes sweep
	// inline instead of paying chunk handoff.
	par.ForWork(kernelSplit, t.params.Workers, t.dims, 1, t.dims*len(idx), func(chunk, lo, hi int) {
		for d := lo; d < hi; d++ {
			t.dimBest[d] = bestSplitDimWeighted(points, labels, t.weights, idx, d, parent, wPos, wTot, &t.scratch[chunk])
		}
	})

	bestDim = -1
	for d, r := range t.dimBest {
		if r.ok && r.gain > bestGain+1e-15 {
			bestDim, bestThr, bestGain = d, r.thr, r.gain
		}
	}
	return bestDim, bestThr, bestGain
}

// bestSplitDimWeighted sweeps one dimension for the midpoint threshold
// with maximal weighted Gini gain.
func bestSplitDimWeighted(points []geom.Point, labels []bool, weights []float64, idx []int, d int, parent, wPos, wTot float64, buf *[]keyedIndex) splitResult {
	n := len(idx)
	keyed := sortKeyed(points, idx, d, buf)
	var best splitResult
	var leftWPos, leftW float64
	for k := 0; k < n-1; k++ {
		i := keyed[k].idx
		leftW += weights[i]
		if labels[i] {
			leftWPos += weights[i]
		}
		v, next := keyed[k].key, keyed[k+1].key
		if v == next {
			continue // can only split between distinct values
		}
		rightW := wTot - leftW
		rightWPos := wPos - leftWPos
		frac := leftW / wTot
		g := parent - frac*giniW(leftWPos, leftW) - (1-frac)*giniW(rightWPos, rightW)
		if g > best.gain+1e-15 {
			best = splitResult{gain: g, thr: (v + next) / 2, ok: true}
		}
	}
	return best
}

// giniW is Gini impurity over weight mass.
func giniW(pos, tot float64) float64 {
	if tot <= 0 {
		return 0
	}
	p := pos / tot
	return 2 * p * (1 - p)
}
