package shardrpc

import (
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"time"

	"github.com/explore-by-example/aide/internal/engine"
	"github.com/explore-by-example/aide/internal/faultinject"
	"github.com/explore-by-example/aide/internal/geom"
	"github.com/explore-by-example/aide/internal/obs"
)

// engine_shard_rpc{op}: remote shard calls by operation, resolved once.
var (
	obsRPCHello       = obs.GetCounterVec("engine_shard_rpc", "op").With("hello")
	obsRPCPing        = obs.GetCounterVec("engine_shard_rpc", "op").With("ping")
	obsRPCCount       = obs.GetCounterVec("engine_shard_rpc", "op").With("count")
	obsRPCRowsIn      = obs.GetCounterVec("engine_shard_rpc", "op").With("rows_in")
	obsRPCRowsInAny   = obs.GetCounterVec("engine_shard_rpc", "op").With("rows_in_any")
	obsRPCSampleGrid  = obs.GetCounterVec("engine_shard_rpc", "op").With("sample_grid")
	obsRPCSortedSlice = obs.GetCounterVec("engine_shard_rpc", "op").With("sorted_slice")
	obsRPCBatch       = obs.GetCounterVec("engine_shard_rpc", "op").With("batch")
	obsRPCRetried     = obs.GetCounterVec("engine_shard_rpc", "op").With("retried")
	obsRPCErrors      = obs.GetCounterVec("engine_shard_rpc", "op").With("error")
)

func opCounter(op byte) *obs.Counter {
	switch op {
	case opHello:
		return obsRPCHello
	case opPing:
		return obsRPCPing
	case opCount:
		return obsRPCCount
	case opRowsIn:
		return obsRPCRowsIn
	case opRowsInAny:
		return obsRPCRowsInAny
	case opSampleGrid:
		return obsRPCSampleGrid
	case opBatch:
		return obsRPCBatch
	default:
		return obsRPCSortedSlice
	}
}

// Options tunes a Client. The retry discipline is the service.Client
// one — full-jitter draws from a doubling ceiling, context-free here
// because attempts are bounded by deadlines instead — with
// transport-scale default constants.
type Options struct {
	// DialTimeout bounds one connection attempt (default 2s).
	DialTimeout time.Duration
	// OpTimeout bounds one request/response exchange, enforced as the
	// connection's read/write deadline per attempt (default 10s).
	OpTimeout time.Duration
	// MaxRetries bounds how many times a failed exchange is retried on a
	// fresh connection (the failed one is discarded). Default 2;
	// negative disables retries. The engine's scatter layer retries on
	// top of this, so the default stays small.
	MaxRetries int
	// BaseBackoff is the first retry's full-jitter ceiling; each further
	// attempt doubles it up to MaxBackoff. Defaults 2ms / 50ms —
	// transport-scale versions of the service client's 100ms / 5s.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// BreakerThreshold is how many consecutive failed calls open a
	// shard's circuit breaker (default 3).
	BreakerThreshold int
	// BreakerCooldown is how many fast-failed calls an open breaker
	// sits out before admitting a half-open probe (default 8). Measured
	// in calls, not wall time, so chaos runs are deterministic.
	BreakerCooldown int
	// MaxIdleConns bounds the per-client idle connection pool
	// (default 2 — the scatter layer runs at most a primary and a hedge
	// per shard at once).
	MaxIdleConns int
}

func (o Options) withDefaults() Options {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 2 * time.Second
	}
	if o.OpTimeout <= 0 {
		o.OpTimeout = 10 * time.Second
	}
	if o.MaxRetries == 0 {
		o.MaxRetries = 2
	}
	if o.BaseBackoff <= 0 {
		o.BaseBackoff = 2 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 50 * time.Millisecond
	}
	if o.MaxIdleConns <= 0 {
		o.MaxIdleConns = 2
	}
	return o
}

// backoff returns the full-jitter ceiling for the attempt'th retry —
// service.Client's doubling-with-saturation shape.
func (o Options) backoff(attempt int) time.Duration {
	d := o.BaseBackoff << uint(attempt)
	if d <= 0 || d > o.MaxBackoff { // <<-overflow or past the cap
		d = o.MaxBackoff
	}
	return d
}

// RemoteShard describes one shard a worker announced in its hello
// response.
type RemoteShard struct {
	Index int
	Rows  int
}

// Client is a connection-pooled client for one shard worker. It is
// safe for concurrent use: each in-flight exchange owns one pooled
// connection. Every shard the worker serves gets its own circuit
// breaker; Backends exposes them as engine.ShardBackend values for
// engine.View.WithShardBackends.
type Client struct {
	network string
	addr    string
	opts    Options
	fp      string
	total   int
	served  []RemoteShard

	mu       sync.Mutex
	idle     []net.Conn
	closed   bool
	breakers map[int]*breaker

	// jitter shapes retry timing only, never results.
	jmu    sync.Mutex
	jitter *rand.Rand
}

// Network guesses the network for an address: anything with a path
// separator is a unix socket, the rest host:port TCP.
func Network(addr string) string {
	if strings.ContainsAny(addr, "/\\") {
		return "unix"
	}
	return "tcp"
}

// Dial connects to a shard worker at addr (Network picks tcp vs unix),
// performs the hello exchange for the view identified by fingerprint
// fp sharded totalShards ways, and returns a client for the shards the
// worker announced. The handshake failing — version, fingerprint or
// shard-count mismatch, or the worker unreachable — is a deploy error,
// returned immediately.
func Dial(addr, fp string, totalShards int, opts Options) (*Client, error) {
	c := &Client{
		network:  Network(addr),
		addr:     addr,
		opts:     opts.withDefaults(),
		fp:       fp,
		total:    totalShards,
		breakers: make(map[int]*breaker),
		jitter:   rand.New(rand.NewSource(time.Now().UnixNano())),
	}
	e := &enc{}
	e.u32(protocolVersion)
	e.str(fp)
	e.u32(uint32(totalShards))
	resp, err := c.call(-1, opHello, e.b)
	if err != nil {
		return nil, fmt.Errorf("shardrpc: hello %s: %w", addr, err)
	}
	d := &dec{b: resp}
	n := d.count(12)
	for i := 0; i < n; i++ {
		c.served = append(c.served, RemoteShard{Index: int(d.u32()), Rows: int(d.u64())})
	}
	if d.err != nil {
		return nil, fmt.Errorf("shardrpc: hello %s: %w", addr, d.err)
	}
	if len(c.served) == 0 {
		return nil, fmt.Errorf("shardrpc: worker %s serves no shards", addr)
	}
	for _, sh := range c.served {
		if sh.Index < 0 || sh.Index >= totalShards {
			return nil, fmt.Errorf("shardrpc: worker %s announced shard %d of %d", addr, sh.Index, totalShards)
		}
		c.breakers[sh.Index] = newBreaker(sh.Index, c.opts.BreakerThreshold, uint64(c.opts.BreakerCooldown))
	}
	return c, nil
}

// Addr returns the worker's address.
func (c *Client) Addr() string { return c.addr }

// Shards returns the shards the worker announced, in hello order.
func (c *Client) Shards() []RemoteShard {
	out := make([]RemoteShard, len(c.served))
	copy(out, c.served)
	return out
}

// Backends returns one engine.ShardBackend per served shard, keyed by
// shard index — the value engine.View.WithShardBackends takes.
func (c *Client) Backends() map[int]engine.ShardBackend {
	out := make(map[int]engine.ShardBackend, len(c.served))
	for _, sh := range c.served {
		out[sh.Index] = &remoteShard{c: c, index: sh.Index, rows: sh.Rows}
	}
	return out
}

// BreakerState returns the breaker state for one served shard
// (BreakerClosed for shards this worker does not serve).
func (c *Client) BreakerState(shard int) BreakerState {
	if b := c.breakers[shard]; b != nil {
		return b.State()
	}
	return BreakerClosed
}

// BreakerTransitions returns the bounded transition log for one served
// shard's breaker.
func (c *Client) BreakerTransitions(shard int) []BreakerTransition {
	if b := c.breakers[shard]; b != nil {
		return b.Transitions()
	}
	return nil
}

// Close closes the idle pool and retires the breakers' gauge
// contributions. In-flight exchanges fail as their connections die.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	idle := c.idle
	c.idle = nil
	c.mu.Unlock()
	for _, conn := range idle {
		conn.Close()
	}
	for _, b := range c.breakers {
		b.release()
	}
	return nil
}

// getConn returns a pooled idle connection or dials a fresh one. The
// shardrpc.dial fault point fires here: an injected error is a
// connection refusal, injected latency a slow connect.
func (c *Client) getConn(shard int) (net.Conn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, fmt.Errorf("shardrpc: client closed")
	}
	if n := len(c.idle); n > 0 {
		conn := c.idle[n-1]
		c.idle = c.idle[:n-1]
		c.mu.Unlock()
		return conn, nil
	}
	c.mu.Unlock()
	pt := faultinject.PointAt(faultinject.FaultShardRPCDial, shard)
	faultinject.Latency(pt)
	if err := faultinject.Err(pt); err != nil {
		return nil, fmt.Errorf("shardrpc: dial %s: %w", c.addr, err)
	}
	conn, err := net.DialTimeout(c.network, c.addr, c.opts.DialTimeout)
	if err != nil {
		return nil, err
	}
	return conn, nil
}

// putConn returns a healthy connection to the idle pool, or closes it
// when the pool is full or the client closed.
func (c *Client) putConn(conn net.Conn) {
	c.mu.Lock()
	if !c.closed && len(c.idle) < c.opts.MaxIdleConns {
		c.idle = append(c.idle, conn)
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
	conn.Close()
}

// call runs one exchange for a shard (shard < 0: the un-breakered
// hello), retrying transport failures with full-jitter backoff. Any
// failed attempt discards its connection — a framed stream that errored
// cannot be trusted to resync.
func (c *Client) call(shard int, op byte, payload []byte) ([]byte, error) {
	var brk *breaker
	if shard >= 0 {
		if brk = c.breakers[shard]; brk != nil {
			if err := brk.Allow(); err != nil {
				obsRPCErrors.Inc()
				return nil, err
			}
		}
	}
	resp, err := c.callRetry(shard, op, payload)
	if brk != nil {
		brk.Record(err == nil)
	}
	if err != nil {
		obsRPCErrors.Inc()
		return nil, err
	}
	opCounter(op).Inc()
	return resp, nil
}

func (c *Client) callRetry(shard int, op byte, payload []byte) ([]byte, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		resp, retriable, err := c.callOnce(shard, op, payload)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if !retriable || attempt >= c.opts.MaxRetries {
			return nil, lastErr
		}
		obsRPCRetried.Inc()
		c.jmu.Lock()
		d := time.Duration(c.jitter.Int63n(int64(c.opts.backoff(attempt)) + 1))
		c.jmu.Unlock()
		time.Sleep(d)
	}
}

// callOnce runs one request/response exchange on one connection.
// retriable distinguishes transport failures (retry on a fresh
// connection) from the server's explicit opErr answer (the exchange
// worked; retrying would repeat the same answer).
func (c *Client) callOnce(shard int, op byte, payload []byte) (resp []byte, retriable bool, err error) {
	conn, err := c.getConn(shard)
	if err != nil {
		return nil, true, err
	}
	if c.opts.OpTimeout > 0 {
		conn.SetDeadline(time.Now().Add(c.opts.OpTimeout))
	}

	// shardrpc.write faults: a short write is a torn frame — the prefix
	// goes out, then the connection dies mid-frame, and the server's CRC
	// or length check poisons its end too.
	wpt := faultinject.PointAt(faultinject.FaultShardRPCWrite, shard)
	if err := faultinject.Err(wpt); err != nil {
		conn.Close()
		return nil, true, fmt.Errorf("shardrpc: write: %w", err)
	}
	frame := &enc{}
	frame.u32(uint32(1 + len(payload)))
	body := append([]byte{op}, payload...)
	if k, torn := faultinject.ShortWrite(wpt, len(body)); torn {
		e := &enc{b: frame.b}
		e.u32(crcOf(body))
		e.b = append(e.b, body[:k]...)
		conn.Write(e.b)
		conn.Close()
		return nil, true, fmt.Errorf("shardrpc: torn frame after %d/%d bytes", k, len(body))
	}
	if err := writeFrame(conn, op, payload); err != nil {
		conn.Close()
		return nil, true, err
	}

	// shardrpc.read faults: an injected error is a mid-stream disconnect
	// while awaiting the response; injected latency a response spike.
	rpt := faultinject.PointAt(faultinject.FaultShardRPCRead, shard)
	faultinject.Latency(rpt)
	if err := faultinject.Err(rpt); err != nil {
		conn.Close()
		return nil, true, fmt.Errorf("shardrpc: read: %w", err)
	}
	rop, rpayload, err := readFrame(conn)
	if err != nil {
		conn.Close()
		return nil, true, err
	}
	if c.opts.OpTimeout > 0 {
		conn.SetDeadline(time.Time{})
	}
	switch rop {
	case opOK:
		c.putConn(conn)
		return rpayload, false, nil
	case opErr:
		d := &dec{b: rpayload}
		msg := d.str()
		c.putConn(conn)
		return nil, false, fmt.Errorf("shardrpc: %s", msg)
	default:
		conn.Close()
		return nil, true, fmt.Errorf("shardrpc: unexpected response op %d", rop)
	}
}

// remoteShard is the engine.ShardBackend a Client exposes for one
// shard: each method is one framed exchange; decode failures are
// transport errors and flow into the breaker/supervisor path like any
// other.
type remoteShard struct {
	c     *Client
	index int
	rows  int
}

func (r *remoteShard) ShardIndex() int { return r.index }
func (r *remoteShard) NumRows() int    { return r.rows }
func (r *remoteShard) Close() error    { return nil }

func (r *remoteShard) Ping() error {
	e := &enc{}
	e.u32(uint32(r.index))
	_, err := r.c.call(r.index, opPing, e.b)
	return err
}

func (r *remoteShard) Count(rect geom.Rect) (engine.ShardCount, error) {
	e := &enc{}
	e.u32(uint32(r.index))
	e.rect(rect)
	resp, err := r.c.call(r.index, opCount, e.b)
	if err != nil {
		return engine.ShardCount{}, err
	}
	d := &dec{b: resp}
	out := engine.ShardCount{Matched: d.i64(), Examined: d.i64()}
	if d.err != nil {
		return engine.ShardCount{}, d.err
	}
	return out, nil
}

func (r *remoteShard) RowsIn(rect geom.Rect) (engine.ShardRows, error) {
	e := &enc{}
	e.u32(uint32(r.index))
	e.rect(rect)
	resp, err := r.c.call(r.index, opRowsIn, e.b)
	if err != nil {
		return engine.ShardRows{}, err
	}
	return decodeRows(resp)
}

func (r *remoteShard) RowsInAny(rects []geom.Rect) (engine.ShardRows, error) {
	e := &enc{}
	e.u32(uint32(r.index))
	e.u32(uint32(len(rects)))
	for _, rect := range rects {
		e.rect(rect)
	}
	resp, err := r.c.call(r.index, opRowsInAny, e.b)
	if err != nil {
		return engine.ShardRows{}, err
	}
	return decodeRows(resp)
}

func decodeRows(resp []byte) (engine.ShardRows, error) {
	d := &dec{b: resp}
	out := engine.ShardRows{Examined: d.i64(), Rows: d.rows32()}
	if d.err != nil {
		return engine.ShardRows{}, d.err
	}
	return out, nil
}

func (r *remoteShard) SampleGrid(rect geom.Rect) (engine.ShardSample, error) {
	e := &enc{}
	e.u32(uint32(r.index))
	e.rect(rect)
	resp, err := r.c.call(r.index, opSampleGrid, e.b)
	if err != nil {
		return engine.ShardSample{}, err
	}
	d := &dec{b: resp}
	out := engine.ShardSample{Examined: d.i64()}
	n := d.count(4)
	for i := 0; i < n; i++ {
		out.Full = append(out.Full, d.block32())
	}
	out.Partial = d.rows32()
	if d.err != nil {
		return engine.ShardSample{}, d.err
	}
	return out, nil
}

// ExecuteBatch ships a whole batch of sub-queries in ONE framed
// exchange — one round-trip, one breaker admission, one
// engine_shard_rpc{op="batch"} tick — however many sub-queries ride in
// it. This is the per-iteration round-trip amortization the batched
// execution path exists for.
func (r *remoteShard) ExecuteBatch(items []engine.ShardBatchItem) ([]engine.ShardBatchResult, error) {
	if len(items) > maxBatchItems {
		return nil, fmt.Errorf("shardrpc: batch of %d items exceeds %d", len(items), maxBatchItems)
	}
	e := &enc{}
	e.u32(uint32(r.index))
	encodeBatchItems(e, items)
	resp, err := r.c.call(r.index, opBatch, e.b)
	if err != nil {
		return nil, err
	}
	return decodeBatchResults(&dec{b: resp}, items)
}

func (r *remoteShard) SortedSlice(dim int, iv geom.Interval) ([]int32, error) {
	e := &enc{}
	e.u32(uint32(r.index))
	e.u32(uint32(dim))
	e.f64(iv.Lo)
	e.f64(iv.Hi)
	resp, err := r.c.call(r.index, opSortedSlice, e.b)
	if err != nil {
		return nil, err
	}
	d := &dec{b: resp}
	rows := d.block32()
	if d.err != nil {
		return nil, d.err
	}
	return rows, nil
}
