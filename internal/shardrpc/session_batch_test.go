package shardrpc

import (
	"testing"

	"github.com/explore-by-example/aide/internal/engine"
	"github.com/explore-by-example/aide/internal/explore"
	"github.com/explore-by-example/aide/internal/geom"
)

// TestRemoteBitIdentitySessionRoundTrips pins the steering loop's
// round-trip economy end to end: once discovery has drained its frontier,
// an iteration over a mixed local/remote topology is ONE engine batch —
// exactly one opBatch round-trip per remote shard — and the session stays
// bit-identical to an unsharded one.
func TestRemoteBitIdentitySessionRoundTrips(t *testing.T) {
	base, sharded := testViews(t, 8000, 4)
	addr, _ := startWorker(t, 8000, 4, []int{1, 3})
	mixed, _ := dialWorker(t, sharded, addr, Options{})

	target := geom.R(10, 30, 10, 30)
	oracle := explore.OracleFunc(func(v *engine.View, row int) bool {
		return target.Contains(v.NormPoint(row))
	})
	opts := explore.DefaultOptions()
	// No zooming: discovery drains all 16 level-0 cells in the first
	// iteration (budget 20) and is exhausted after it, so every later
	// iteration is pure exploitation — the one-batch-per-iteration case.
	opts.MaxZoomLevels = 0

	newSession := func(v *engine.View) *explore.Session {
		s, err := explore.NewSession(v, oracle, opts)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	remote := newSession(mixed)
	local := newSession(base)

	const iters = 7
	for i := 0; i < iters; i++ {
		before := obsRPCBatch.Value()
		if _, err := remote.RunIteration(); err != nil {
			t.Fatal(err)
		}
		rounds := obsRPCBatch.Value() - before
		if _, err := local.RunIteration(); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			// Discovery iteration: one count batch plus one sample batch
			// over the frontier window, each one round per remote shard.
			if rounds != 4 {
				t.Fatalf("discovery iteration cost %d opBatch round-trips, want 4 (2 batches x 2 remote shards)", rounds)
			}
			continue
		}
		if rounds != 2 {
			t.Fatalf("iteration %d cost %d opBatch round-trips, want 2 (one batch, one round per remote shard)", i, rounds)
		}
	}

	// Bit-identity carried through: same labels, same prediction.
	rPts, rLabs := remote.LabeledPoints()
	lPts, lLabs := local.LabeledPoints()
	if len(rPts) != len(lPts) || len(rPts) == 0 {
		t.Fatalf("remote labeled %d rows, local %d", len(rPts), len(lPts))
	}
	for i := range rPts {
		if rLabs[i] != lLabs[i] || rPts[i].ChebyshevDist(lPts[i]) != 0 {
			t.Fatalf("sample %d diverged between remote and local sessions", i)
		}
	}
	rAreas, lAreas := remote.RelevantAreas(), local.RelevantAreas()
	if len(rAreas) != len(lAreas) {
		t.Fatalf("remote predicted %d areas, local %d", len(rAreas), len(lAreas))
	}
	for i := range rAreas {
		if !rAreas[i].Equal(lAreas[i]) {
			t.Fatalf("area %d diverged between remote and local sessions", i)
		}
	}
}
