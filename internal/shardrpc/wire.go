// Package shardrpc is the remote-shard transport: it ships the
// engine.ShardBackend surface — one shard's Count/RowsIn/RowsInAny/
// SampleGrid/SortedSlice plus a health ping — over a length-prefixed,
// CRC-framed binary protocol on TCP or unix sockets, so shards can run
// in separate worker processes (cmd/aideshard) with real fault
// isolation.
//
// The frame layout reuses the durable WAL's framing discipline:
//
//	[u32 length][u32 crc32-IEEE][u8 op][payload]
//
// little-endian, length = 1 + len(payload), CRC over op byte plus
// payload. A torn or corrupted frame fails the CRC (or the length
// bound) and poisons the connection — it is closed, never resynced —
// which the client turns into a retriable attempt error.
//
// Results are plain data and the coordinator keeps randomness, caching
// and gather order, so a remote shard is bit-identical to a local one;
// the engine's scatter layer cannot tell them apart except by failure
// mode. Failures flow through a per-shard three-state circuit breaker
// (breaker.go) into the engine's shard supervisor, degrading to the
// named shard_partial:n/N contract instead of wrong answers.
package shardrpc

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"github.com/explore-by-example/aide/internal/engine"
	"github.com/explore-by-example/aide/internal/geom"
)

// Protocol ops. Requests carry the shard index first (except hello);
// every exchange is one request frame, one response frame.
const (
	opHello       = byte(1) // fingerprint + total shard count -> served shard list
	opPing        = byte(2)
	opCount       = byte(3)
	opRowsIn      = byte(4)
	opRowsInAny   = byte(5)
	opSampleGrid  = byte(6)
	opSortedSlice = byte(7)
	opBatch       = byte(8) // N length-prefixed sub-queries -> N results, one round-trip

	opOK  = byte(128) // success; payload is op-specific
	opErr = byte(129) // failure; payload is the error string
)

// headerSize is the fixed frame prefix: u32 length + u32 crc.
const headerSize = 8

// maxFrameSize bounds a frame's length field — same ceiling as the
// durable WAL; anything larger is corruption, not data.
const maxFrameSize = 64 << 20

// protocolVersion is pinned inside the hello exchange; a mismatch is a
// deploy error and fails the handshake.
const protocolVersion = 1

// crcOf is the frame checksum: crc32-IEEE over op byte + payload.
func crcOf(body []byte) uint32 { return crc32.ChecksumIEEE(body) }

// writeFrame writes one [len][crc][op][payload] frame.
func writeFrame(w io.Writer, op byte, payload []byte) error {
	buf := make([]byte, headerSize+1+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(1+len(payload)))
	buf[8] = op
	copy(buf[9:], payload)
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(buf[8:]))
	_, err := w.Write(buf)
	return err
}

// readFrame reads one frame, verifying the length bound and CRC. Any
// error poisons the connection: the caller must close it.
func readFrame(r io.Reader) (op byte, payload []byte, err error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	crc := binary.LittleEndian.Uint32(hdr[4:8])
	if length == 0 || length > maxFrameSize {
		return 0, nil, fmt.Errorf("shardrpc: frame length %d out of range", length)
	}
	body := make([]byte, length)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, err
	}
	if got := crc32.ChecksumIEEE(body); got != crc {
		return 0, nil, fmt.Errorf("shardrpc: frame CRC mismatch (corrupt or torn frame)")
	}
	return body[0], body[1:], nil
}

// enc is a little append-based encoder for frame payloads.
type enc struct{ b []byte }

func (e *enc) u32(v uint32)  { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *enc) u64(v uint64)  { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *enc) i64(v int64)   { e.u64(uint64(v)) }
func (e *enc) f64(v float64) { e.u64(math.Float64bits(v)) }
func (e *enc) str(s string) {
	e.u32(uint32(len(s)))
	e.b = append(e.b, s...)
}

func (e *enc) rect(r geom.Rect) {
	e.u32(uint32(len(r)))
	for _, iv := range r {
		e.f64(iv.Lo)
		e.f64(iv.Hi)
	}
}

// rows32 encodes row ids as int32: the engine's grid stores rows as
// int32, so every id a shard can produce fits.
func (e *enc) rows32(rows []int) {
	e.u32(uint32(len(rows)))
	for _, r := range rows {
		e.u32(uint32(int32(r)))
	}
}

func (e *enc) block32(rows []int32) {
	e.u32(uint32(len(rows)))
	for _, r := range rows {
		e.u32(uint32(r))
	}
}

// dec is the matching consuming decoder; the first decode error sticks
// and every later read returns zero values.
type dec struct {
	b   []byte
	err error
}

func (d *dec) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("shardrpc: truncated payload")
	}
}

func (d *dec) u8() byte {
	if d.err != nil || len(d.b) < 1 {
		d.fail()
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *dec) u32() uint32 {
	if d.err != nil || len(d.b) < 4 {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b)
	d.b = d.b[4:]
	return v
}

func (d *dec) u64() uint64 {
	if d.err != nil || len(d.b) < 8 {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v
}

func (d *dec) i64() int64   { return int64(d.u64()) }
func (d *dec) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *dec) str() string {
	n := int(d.u32())
	if d.err != nil || n < 0 || len(d.b) < n {
		d.fail()
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

// count bounds a declared element count by the bytes actually left
// (elemSize each), so a corrupt length cannot drive a huge allocation.
func (d *dec) count(elemSize int) int {
	n := int(d.u32())
	if d.err != nil {
		return 0
	}
	if n < 0 || n*elemSize > len(d.b) {
		d.fail()
		return 0
	}
	return n
}

func (d *dec) rect() geom.Rect {
	n := d.count(16)
	if n == 0 {
		return nil
	}
	r := make(geom.Rect, n)
	for i := range r {
		r[i].Lo = d.f64()
		r[i].Hi = d.f64()
	}
	return r
}

func (d *dec) rows32() []int {
	n := d.count(4)
	if n == 0 {
		return nil
	}
	rows := make([]int, n)
	for i := range rows {
		rows[i] = int(int32(d.u32()))
	}
	return rows
}

func (d *dec) block32() []int32 {
	n := d.count(4)
	if n == 0 {
		return nil
	}
	rows := make([]int32, n)
	for i := range rows {
		rows[i] = int32(d.u32())
	}
	return rows
}

// ---- opBatch codec -------------------------------------------------
//
// A batch request is the shard index followed by N length-prefixed
// sub-queries; the response is N results in the same order. The item
// count is bounded by maxBatchItems on both ends — independent of the
// frame-size ceiling — so a corrupt or hostile count can neither drive
// a huge allocation nor smuggle an unbounded work list to a worker.

// maxBatchItems bounds the sub-queries of one opBatch exchange. A
// session iteration batches at most a few dozen requests; 4096 leaves
// room for far coarser callers while keeping the decode allocation
// proportional to real payloads.
const maxBatchItems = 4096

// Wire kinds of one batch sub-query. Grid kinds mirror engine.BatchKind
// values; sorted is the covering-index slice, which has no BatchKind
// because the engine plans it from a sample rect.
const (
	batchWireCount  = byte(0)
	batchWireRows   = byte(1)
	batchWireSample = byte(2)
	batchWireSorted = byte(3)
)

func (e *enc) u8(v byte) { e.b = append(e.b, v) }

// encodeBatchItems appends N sub-queries: u32 count, then per item a
// kind byte followed by the rect (grid kinds) or u32 dim + interval
// endpoints (sorted).
func encodeBatchItems(e *enc, items []engine.ShardBatchItem) {
	e.u32(uint32(len(items)))
	for _, it := range items {
		if it.Sorted {
			e.u8(batchWireSorted)
			e.u32(uint32(it.Dim))
			e.f64(it.Iv.Lo)
			e.f64(it.Iv.Hi)
			continue
		}
		switch it.Kind {
		case engine.BatchCount:
			e.u8(batchWireCount)
		case engine.BatchRows:
			e.u8(batchWireRows)
		default:
			e.u8(batchWireSample)
		}
		e.rect(it.Rect)
	}
}

// decodeBatchItems is the bounded inverse of encodeBatchItems.
func decodeBatchItems(d *dec) ([]engine.ShardBatchItem, error) {
	n := int(d.u32())
	if d.err != nil {
		return nil, d.err
	}
	if n < 0 || n > maxBatchItems {
		return nil, fmt.Errorf("shardrpc: batch item count %d out of range [0,%d]", n, maxBatchItems)
	}
	items := make([]engine.ShardBatchItem, 0, n)
	for i := 0; i < n; i++ {
		switch kind := d.u8(); kind {
		case batchWireSorted:
			items = append(items, engine.ShardBatchItem{
				Kind:   engine.BatchSample,
				Sorted: true,
				Dim:    int(d.u32()),
				Iv:     geom.Interval{Lo: d.f64(), Hi: d.f64()},
			})
		case batchWireCount, batchWireRows, batchWireSample:
			items = append(items, engine.ShardBatchItem{Kind: engine.BatchKind(kind), Rect: d.rect()})
		default:
			if d.err == nil {
				d.err = fmt.Errorf("shardrpc: batch item kind %d unknown", kind)
			}
		}
		if d.err != nil {
			return nil, d.err
		}
	}
	return items, nil
}

// encodeBatchResults appends N results, each shaped by its item's kind
// exactly like the corresponding single-op response payload.
func encodeBatchResults(e *enc, items []engine.ShardBatchItem, results []engine.ShardBatchResult) {
	e.u32(uint32(len(results)))
	for k, r := range results {
		switch {
		case items[k].Sorted:
			e.block32(r.Sorted)
		case items[k].Kind == engine.BatchCount:
			e.i64(r.Count.Matched)
			e.i64(r.Count.Examined)
		case items[k].Kind == engine.BatchRows:
			e.i64(r.Rows.Examined)
			e.rows32(r.Rows.Rows)
		default:
			e.i64(r.Sample.Examined)
			e.u32(uint32(len(r.Sample.Full)))
			for _, blk := range r.Sample.Full {
				e.block32(blk)
			}
			e.rows32(r.Sample.Partial)
		}
	}
}

// decodeBatchResults is the bounded inverse of encodeBatchResults; the
// request's items supply the per-result shapes.
func decodeBatchResults(d *dec, items []engine.ShardBatchItem) ([]engine.ShardBatchResult, error) {
	n := int(d.u32())
	if d.err != nil {
		return nil, d.err
	}
	if n != len(items) {
		return nil, fmt.Errorf("shardrpc: batch response carries %d results for %d items", n, len(items))
	}
	out := make([]engine.ShardBatchResult, n)
	for k := range out {
		switch {
		case items[k].Sorted:
			out[k].Sorted = d.block32()
		case items[k].Kind == engine.BatchCount:
			out[k].Count = engine.ShardCount{Matched: d.i64(), Examined: d.i64()}
		case items[k].Kind == engine.BatchRows:
			out[k].Rows = engine.ShardRows{Examined: d.i64(), Rows: d.rows32()}
		default:
			out[k].Sample.Examined = d.i64()
			nf := d.count(4)
			for i := 0; i < nf; i++ {
				out[k].Sample.Full = append(out[k].Sample.Full, d.block32())
			}
			out[k].Sample.Partial = d.rows32()
		}
		if d.err != nil {
			return nil, d.err
		}
	}
	return out, nil
}
