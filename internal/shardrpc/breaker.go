package shardrpc

import (
	"errors"
	"sync"

	"github.com/explore-by-example/aide/internal/obs"
)

// BreakerState is one step of a shard connection's circuit-breaker
// lifecycle.
//
//	Closed ──threshold consecutive failures──▶ Open
//	   ▲                                        │ cooldown calls elapse
//	   │ probe succeeds                         ▼
//	   └──────────────────────────────────── HalfOpen ──probe fails──▶ Open
//
// Closed passes every call through. Open fails fast — no dial, no
// write — so a dead worker costs the scatter path an in-memory error
// instead of a dial timeout, and the engine supervisor sees the
// failure immediately and quarantines the shard (shard_partial:n/N).
// The cooldown is measured in Allow calls, like the supervisor's
// operation ticks, so breaker transitions are deterministic under the
// seeded chaos matrix; once it elapses, HalfOpen admits exactly one
// probe call whose outcome decides between Closed and another Open
// period.
type BreakerState int32

const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

// String returns the lowercase state name used in metrics and logs.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half_open"
	}
	return "unknown"
}

// ErrBreakerOpen is the fast-fail error for calls rejected while a
// shard's breaker is open.
var ErrBreakerOpen = errors.New("shardrpc: circuit breaker open")

// defaultBreakerThreshold is how many consecutive call failures open
// the breaker.
const defaultBreakerThreshold = 3

// defaultBreakerCooldown is how many rejected Allow calls an open
// breaker sits out before admitting a half-open probe.
const defaultBreakerCooldown = 8

// maxBreakerLog bounds the transition history, like the engine
// supervisor's log.
const maxBreakerLog = 256

// BreakerTransition is one recorded breaker state change at call tick
// Tick (the breaker's own Allow counter).
type BreakerTransition struct {
	Tick  uint64
	Shard int
	From  BreakerState
	To    BreakerState
}

// shard_breaker{state}: how many shard breakers currently sit in each
// state, process-wide. Resolved once; transitions move one unit
// between two gauges.
var (
	obsBreakerClosed   = obs.GetGaugeVec("shard_breaker", "state").With("closed")
	obsBreakerOpen     = obs.GetGaugeVec("shard_breaker", "state").With("open")
	obsBreakerHalfOpen = obs.GetGaugeVec("shard_breaker", "state").With("half_open")
)

func breakerGauge(s BreakerState) *obs.Gauge {
	switch s {
	case BreakerOpen:
		return obsBreakerOpen
	case BreakerHalfOpen:
		return obsBreakerHalfOpen
	default:
		return obsBreakerClosed
	}
}

// breaker is one shard's circuit breaker. All state sits behind one
// mutex; the happy path is a counter bump and a state read.
type breaker struct {
	shard     int
	threshold int
	cooldown  uint64

	mu       sync.Mutex
	state    BreakerState
	fails    int    // consecutive failures while closed
	tick     uint64 // Allow calls seen; the clock cooldowns count in
	openedAt uint64 // tick of the most recent open
	probing  bool   // a half-open probe is in flight
	log      []BreakerTransition
}

func newBreaker(shard, threshold int, cooldown uint64) *breaker {
	if threshold <= 0 {
		threshold = defaultBreakerThreshold
	}
	if cooldown == 0 {
		cooldown = defaultBreakerCooldown
	}
	obsBreakerClosed.Add(1)
	return &breaker{shard: shard, threshold: threshold, cooldown: cooldown}
}

// Allow decides whether a call may proceed. It returns ErrBreakerOpen
// for fast-fail rejections; a nil return means the caller must report
// the call's outcome with Record.
func (b *breaker) Allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tick++
	switch b.state {
	case BreakerClosed:
		return nil
	case BreakerHalfOpen:
		if b.probing {
			return ErrBreakerOpen
		}
		b.probing = true
		return nil
	default: // BreakerOpen
		if b.tick-b.openedAt >= b.cooldown {
			b.transition(BreakerHalfOpen)
			b.probing = true
			return nil
		}
		return ErrBreakerOpen
	}
}

// Record reports an admitted call's outcome and applies the state
// machine.
func (b *breaker) Record(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerHalfOpen:
		b.probing = false
		if ok {
			b.fails = 0
			b.transition(BreakerClosed)
		} else {
			b.openedAt = b.tick
			b.transition(BreakerOpen)
		}
	case BreakerClosed:
		if ok {
			b.fails = 0
			return
		}
		b.fails++
		if b.fails >= b.threshold {
			b.openedAt = b.tick
			b.transition(BreakerOpen)
		}
	}
}

// transition applies and logs a state change, keeping the per-state
// gauges in step; callers hold b.mu.
func (b *breaker) transition(to BreakerState) {
	from := b.state
	if from == to {
		return
	}
	b.state = to
	breakerGauge(from).Add(-1)
	breakerGauge(to).Add(1)
	if len(b.log) >= maxBreakerLog {
		copy(b.log, b.log[1:])
		b.log = b.log[:maxBreakerLog-1]
	}
	b.log = append(b.log, BreakerTransition{Tick: b.tick, Shard: b.shard, From: from, To: to})
}

// State returns the breaker's current state.
func (b *breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Transitions returns a copy of the bounded transition log.
func (b *breaker) Transitions() []BreakerTransition {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]BreakerTransition, len(b.log))
	copy(out, b.log)
	return out
}

// release retires the breaker's gauge contribution when its client is
// closed.
func (b *breaker) release() {
	b.mu.Lock()
	breakerGauge(b.state).Add(-1)
	b.mu.Unlock()
}
