package shardrpc

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"github.com/explore-by-example/aide/internal/engine"
	"github.com/explore-by-example/aide/internal/geom"
)

// Server serves a subset of one sharded view's shards over the framed
// protocol. A worker process (cmd/aideshard) builds the same sharded
// view the coordinator does — same dataset, same attrs, same shard
// count, so the same fingerprint — and hands the shards it owns here.
//
// The hello exchange pins the contract: the client sends its view
// fingerprint and total shard count, the server rejects a mismatch
// (serving a shard of a different view would be silently wrong, the
// one failure mode the whole design exists to exclude) and answers
// with the shard indexes it serves plus their row counts.
type Server struct {
	fp       string
	total    int
	backends map[int]engine.ShardBackend

	mu    sync.Mutex
	ln    net.Listener
	conns map[net.Conn]struct{}
	done  bool
	wg    sync.WaitGroup
}

// NewServer creates a server for the given shards of the view
// identified by fingerprint fp, sharded totalShards ways.
func NewServer(fp string, totalShards int, backends map[int]engine.ShardBackend) *Server {
	bs := make(map[int]engine.ShardBackend, len(backends))
	for i, b := range backends {
		bs[i] = b
	}
	return &Server{
		fp:       fp,
		total:    totalShards,
		backends: bs,
		conns:    make(map[net.Conn]struct{}),
	}
}

// Shards returns the sorted-free list of shard indexes this server
// serves (map iteration order; callers sort if they care).
func (s *Server) Shards() []int {
	out := make([]int, 0, len(s.backends))
	for i := range s.backends {
		out = append(out, i)
	}
	return out
}

// Serve accepts connections on ln until Close, one goroutine per
// connection, each looping request frame -> response frame. It returns
// nil after Close, or the accept error.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		return errors.New("shardrpc: server closed")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			done := s.done
			s.mu.Unlock()
			if done {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.done {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// Close stops accepting, closes every live connection and waits for
// the per-connection goroutines.
func (s *Server) Close() {
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		return
	}
	s.done = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
}

// serveConn loops one connection: any frame-level error (torn frame,
// bad CRC, closed peer) poisons the connection and ends the loop —
// the protocol never resyncs inside a stream.
func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	for {
		op, payload, err := readFrame(conn)
		if err != nil {
			return
		}
		resp, err := s.handle(op, payload)
		if err != nil {
			e := &enc{}
			e.str(err.Error())
			if writeFrame(conn, opErr, e.b) != nil {
				return
			}
			continue
		}
		if writeFrame(conn, opOK, resp) != nil {
			return
		}
	}
}

// handle dispatches one request. A returned error becomes an opErr
// response; the connection stays usable (the request was well-framed,
// merely unserviceable).
func (s *Server) handle(op byte, payload []byte) ([]byte, error) {
	d := &dec{b: payload}
	if op == opHello {
		return s.handleHello(d)
	}
	shard := int(d.u32())
	b, okShard := s.backends[shard]
	if d.err != nil {
		return nil, d.err
	}
	if !okShard {
		return nil, fmt.Errorf("shardrpc: shard %d not served here", shard)
	}
	e := &enc{}
	switch op {
	case opPing:
		if err := b.Ping(); err != nil {
			return nil, err
		}
		return e.b, nil
	case opCount:
		rect := d.rect()
		if d.err != nil {
			return nil, d.err
		}
		out, err := b.Count(rect)
		if err != nil {
			return nil, err
		}
		e.i64(out.Matched)
		e.i64(out.Examined)
		return e.b, nil
	case opRowsIn:
		rect := d.rect()
		if d.err != nil {
			return nil, d.err
		}
		out, err := b.RowsIn(rect)
		if err != nil {
			return nil, err
		}
		e.i64(out.Examined)
		e.rows32(out.Rows)
		return e.b, nil
	case opRowsInAny:
		n := d.count(4)
		rects := make([]geom.Rect, 0, n)
		for i := 0; i < n; i++ {
			rects = append(rects, d.rect())
		}
		if d.err != nil {
			return nil, d.err
		}
		out, err := b.RowsInAny(rects)
		if err != nil {
			return nil, err
		}
		e.i64(out.Examined)
		e.rows32(out.Rows)
		return e.b, nil
	case opSampleGrid:
		rect := d.rect()
		if d.err != nil {
			return nil, d.err
		}
		out, err := b.SampleGrid(rect)
		if err != nil {
			return nil, err
		}
		e.i64(out.Examined)
		e.u32(uint32(len(out.Full)))
		for _, blk := range out.Full {
			e.block32(blk)
		}
		e.rows32(out.Partial)
		return e.b, nil
	case opSortedSlice:
		dim := int(d.u32())
		iv := geom.Interval{Lo: d.f64(), Hi: d.f64()}
		if d.err != nil {
			return nil, d.err
		}
		rows, err := b.SortedSlice(dim, iv)
		if err != nil {
			return nil, err
		}
		e.block32(rows)
		return e.b, nil
	case opBatch:
		items, err := decodeBatchItems(d)
		if err != nil {
			return nil, err
		}
		results, err := b.ExecuteBatch(items)
		if err != nil {
			return nil, err
		}
		if len(results) != len(items) {
			return nil, fmt.Errorf("shardrpc: backend answered %d results for %d items", len(results), len(items))
		}
		encodeBatchResults(e, items, results)
		return e.b, nil
	}
	return nil, fmt.Errorf("shardrpc: unknown op %d", op)
}

// handleHello validates the client's (version, fingerprint, total
// shards) tuple and announces the served shards.
func (s *Server) handleHello(d *dec) ([]byte, error) {
	version := d.u32()
	fp := d.str()
	total := int(d.u32())
	if d.err != nil {
		return nil, d.err
	}
	if version != protocolVersion {
		return nil, fmt.Errorf("shardrpc: protocol version %d, want %d", version, protocolVersion)
	}
	if fp != s.fp {
		return nil, fmt.Errorf("shardrpc: view fingerprint %s, worker serves %s", fp, s.fp)
	}
	if total != s.total {
		return nil, fmt.Errorf("shardrpc: %d total shards, worker built %d", total, s.total)
	}
	e := &enc{}
	e.u32(uint32(len(s.backends)))
	for i, b := range s.backends {
		e.u32(uint32(i))
		e.u64(uint64(b.NumRows()))
	}
	return e.b, nil
}
