package shardrpc

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"github.com/explore-by-example/aide/internal/engine"
	"github.com/explore-by-example/aide/internal/geom"
)

// remoteBatchQueries builds a mixed batch exercising every wire kind:
// grid counts/rows/samples plus covering-index samples.
func remoteBatchQueries(rng *rand.Rand) []engine.BatchQuery {
	rects := randomRects(12, 2, rng)
	out := make([]engine.BatchQuery, 0, len(rects)+2)
	for i, rect := range rects {
		q := engine.BatchQuery{Rect: rect}
		switch i % 3 {
		case 0:
			q.Kind = engine.BatchCount
		case 1:
			q.Kind = engine.BatchRows
		default:
			q.Kind = engine.BatchSample
			q.N = 5 + rng.Intn(20)
		}
		out = append(out, q)
	}
	out = append(out,
		engine.BatchQuery{Kind: engine.BatchSample, N: 15, Rect: singleDimRect(2, 0, 20, 45)},
		engine.BatchQuery{Kind: engine.BatchSample, N: 15, Rect: singleDimRect(2, 1, 33, 66)},
	)
	return out
}

// TestRemoteBitIdentityBatch pins the batched path across the wire: a
// mixed local/remote topology drains whole batches bit-identically to
// the unsharded sequential loop, and every batch costs exactly ONE
// opBatch round-trip per remote shard.
func TestRemoteBitIdentityBatch(t *testing.T) {
	base, sharded := testViews(t, 8000, 4)
	addr, _ := startWorker(t, 8000, 4, []int{1, 3})
	mixed, _ := dialWorker(t, sharded, addr, Options{})

	gen := rand.New(rand.NewSource(17))
	for round := 0; round < 6; round++ {
		queries := remoteBatchQueries(gen)
		seed := int64(round + 1)

		seqRng := rand.New(rand.NewSource(seed))
		wantCounts := make([]int, len(queries))
		wantRows := make([][]int, len(queries))
		wantSamples := make([][]int, len(queries))
		for i, q := range queries {
			switch q.Kind {
			case engine.BatchCount:
				wantCounts[i] = base.Count(q.Rect)
			case engine.BatchRows:
				wantRows[i] = base.RowsIn(q.Rect)
			case engine.BatchSample:
				wantSamples[i] = base.SampleRect(q.Rect, q.N, seqRng)
			}
		}

		before := obsRPCBatch.Value()
		br := mixed.ExecuteBatch(queries)
		// 2 of 4 shards are remote, and a batch is one round-trip each.
		if rounds := obsRPCBatch.Value() - before; rounds != 2 {
			t.Fatalf("round %d: batch cost %d opBatch round-trips, want 2 (one per remote shard)", round, rounds)
		}
		batchRng := rand.New(rand.NewSource(seed))
		for i, q := range queries {
			switch q.Kind {
			case engine.BatchCount:
				if got := br.Count(i); got != wantCounts[i] {
					t.Fatalf("round %d query %d: Count = %d, want %d", round, i, got, wantCounts[i])
				}
			case engine.BatchRows:
				if got := br.Rows(i); !reflect.DeepEqual(got, wantRows[i]) {
					t.Fatalf("round %d query %d: Rows diverged (%d vs %d)", round, i, len(got), len(wantRows[i]))
				}
			case engine.BatchSample:
				if got := br.Sample(i, batchRng); !reflect.DeepEqual(got, wantSamples[i]) {
					t.Fatalf("round %d query %d: Sample diverged\n got %v\nwant %v", round, i, got, wantSamples[i])
				}
			}
		}
	}
}

// TestBatchRejectsOversizedItemCounts pins the allocation bound on both
// ends of the opBatch exchange.
func TestBatchRejectsOversizedItemCounts(t *testing.T) {
	r := &remoteShard{index: 0}
	if _, err := r.ExecuteBatch(make([]engine.ShardBatchItem, maxBatchItems+1)); err == nil {
		t.Fatal("client accepted a batch past maxBatchItems")
	}
	// A forged count well past the limit (but with a plausible payload
	// tail) must be rejected before any allocation proportional to it.
	e := &enc{}
	e.u32(uint32(maxBatchItems + 1))
	if _, err := decodeBatchItems(&dec{b: e.b}); err == nil {
		t.Fatal("decoder accepted an oversized item count")
	}
}

// FuzzBatchCodec throws arbitrary bytes at the opBatch decoders (items
// and results) and round-trips whatever valid batches the fuzzer
// reaches: decoding must never panic, must respect the item-count
// bound, and a re-encoded decode must be stable.
func FuzzBatchCodec(f *testing.F) {
	// Seed corpus: a valid mixed batch, its matching results, and the
	// torn/oversized shapes the decoder must reject gracefully.
	items := []engine.ShardBatchItem{
		{Kind: engine.BatchCount, Rect: geom.R(10, 20, 30, 40)},
		{Kind: engine.BatchRows, Rect: geom.R(0, 100, 0, 100)},
		{Kind: engine.BatchSample, Rect: geom.R(5, 6, 7, 8)},
		{Kind: engine.BatchSample, Sorted: true, Dim: 1, Iv: geom.Interval{Lo: 25, Hi: 75}},
	}
	eItems := &enc{}
	encodeBatchItems(eItems, items)
	f.Add(eItems.b)
	results := []engine.ShardBatchResult{
		{Count: engine.ShardCount{Matched: 7, Examined: 21}},
		{Rows: engine.ShardRows{Rows: []int{1, 2, 3}, Examined: 3}},
		{Sample: engine.ShardSample{Full: [][]int32{{4, 5}}, Partial: []int{6}, Examined: 9}},
		{Sorted: []int32{8, 9, 10}},
	}
	eResults := &enc{}
	encodeBatchResults(eResults, items, results)
	f.Add(eResults.b)
	f.Add(eItems.b[:len(eItems.b)/2]) // torn mid-item
	huge := &enc{}
	huge.u32(1 << 30) // oversized declared count
	f.Add(huge.b)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, payload []byte) {
		decoded, err := decodeBatchItems(&dec{b: payload})
		if err == nil {
			if len(decoded) > maxBatchItems {
				t.Fatalf("decoder exceeded maxBatchItems: %d", len(decoded))
			}
			// Round-trip: encode the decode, decode again, re-encode, and
			// compare bytes (byte comparison, not struct equality, so NaN
			// rect endpoints — which the fuzzer will find — stay comparable).
			re := &enc{}
			encodeBatchItems(re, decoded)
			again, err := decodeBatchItems(&dec{b: re.b})
			if err != nil {
				t.Fatalf("re-decode of re-encoded items failed: %v", err)
			}
			re2 := &enc{}
			encodeBatchItems(re2, again)
			if !bytes.Equal(re.b, re2.b) {
				t.Fatal("items round-trip unstable")
			}
			// Interpret the remaining bytes as results for these items;
			// must not panic regardless of content.
			_, _ = decodeBatchResults(&dec{b: payload}, decoded)
		}
	})
}
