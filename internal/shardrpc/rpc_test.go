package shardrpc

import (
	"bytes"
	"errors"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/explore-by-example/aide/internal/dataset"
	"github.com/explore-by-example/aide/internal/engine"
	"github.com/explore-by-example/aide/internal/faultinject"
	"github.com/explore-by-example/aide/internal/geom"
	"github.com/explore-by-example/aide/internal/obs"
)

// chaosSeed returns the fault-injection seed, from AIDE_FAULT_SEED when
// the CI chaos matrix sets it.
func chaosSeed(t *testing.T) int64 {
	t.Helper()
	env := os.Getenv("AIDE_FAULT_SEED")
	if env == "" {
		return 1
	}
	seed, err := strconv.ParseInt(env, 10, 64)
	if err != nil {
		t.Fatalf("bad AIDE_FAULT_SEED %q: %v", env, err)
	}
	return seed
}

// testViews builds the deterministic base view plus its sharded
// version, the same construction a worker performs.
func testViews(t *testing.T, rows, shards int) (base, sharded *engine.View) {
	t.Helper()
	tab := dataset.GenerateSDSS(rows, 5)
	base, err := engine.NewViewWorkers(tab, []string{"rowc", "colc"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	return base, base.WithShards(engine.ShardOptions{Shards: shards})
}

// startWorker serves the given shard indexes of a worker-built view
// over a unix socket and returns its address. The worker view is built
// independently from the same inputs, exactly like cmd/aideshard.
func startWorker(t *testing.T, rows, totalShards int, indexes []int) (addr string, srv *Server) {
	t.Helper()
	_, workerView := testViews(t, rows, totalShards)
	all := workerView.LocalShardBackends()
	subset := make(map[int]engine.ShardBackend, len(indexes))
	for _, i := range indexes {
		subset[i] = all[i]
	}
	srv = NewServer(workerView.Fingerprint(), totalShards, subset)
	addr = filepath.Join(t.TempDir(), "w.sock")
	ln, err := net.Listen("unix", addr)
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(srv.Close)
	return addr, srv
}

// dialWorker dials the worker and routes its announced shards through
// the sharded view, returning the mixed local/remote topology.
func dialWorker(t *testing.T, sharded *engine.View, addr string, opts Options) (*engine.View, *Client) {
	t.Helper()
	c, err := Dial(addr, sharded.Fingerprint(), sharded.ShardCount(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	mixed, err := sharded.WithShardBackends(c.Backends())
	if err != nil {
		t.Fatal(err)
	}
	return mixed, c
}

func randomRects(n, dims int, rng *rand.Rand) []geom.Rect {
	out := make([]geom.Rect, 0, n)
	for i := 0; i < n; i++ {
		r := make(geom.Rect, dims)
		for d := range r {
			a := rng.Float64() * 100
			b := rng.Float64() * 100
			if a > b {
				a, b = b, a
			}
			r[d] = geom.Interval{Lo: a, Hi: b}
		}
		out = append(out, r)
	}
	return out
}

// singleDimRect constrains only dim, which steers SampleRect onto the
// covering-index path (remote SortedSlice).
func singleDimRect(dims, dim int, lo, hi float64) geom.Rect {
	r := make(geom.Rect, dims)
	for d := range r {
		r[d] = geom.Interval{Lo: 0, Hi: 100}
	}
	r[dim] = geom.Interval{Lo: lo, Hi: hi}
	return r
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("the payload")
	if err := writeFrame(&buf, opCount, payload); err != nil {
		t.Fatal(err)
	}
	op, got, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if op != opCount || !bytes.Equal(got, payload) {
		t.Fatalf("round trip: op=%d payload=%q", op, got)
	}
}

func TestFrameRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, opCount, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)-1] ^= 0xff // flip a payload bit: CRC must catch it
	if _, _, err := readFrame(bytes.NewReader(raw)); err == nil || !strings.Contains(err.Error(), "CRC") {
		t.Fatalf("corrupted frame: err = %v, want CRC mismatch", err)
	}

	buf.Reset()
	writeFrame(&buf, opCount, []byte("payload"))
	raw = buf.Bytes()
	raw[3] = 0xff // absurd length field
	if _, _, err := readFrame(bytes.NewReader(raw)); err == nil || !strings.Contains(err.Error(), "length") {
		t.Fatalf("oversized frame: err = %v, want length error", err)
	}

	// A torn frame (truncated mid-payload) must error, not hang or
	// succeed.
	buf.Reset()
	writeFrame(&buf, opCount, []byte("payload"))
	if _, _, err := readFrame(bytes.NewReader(buf.Bytes()[:buf.Len()-3])); err == nil {
		t.Fatal("torn frame read succeeded")
	}
}

func TestHelloRejectsMismatches(t *testing.T) {
	_, sharded := testViews(t, 2000, 4)
	addr, _ := startWorker(t, 2000, 4, []int{0, 1})

	if _, err := Dial(addr, "aide-fp1-deadbeefdeadbeef", 4, Options{}); err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("wrong fingerprint accepted: %v", err)
	}
	if _, err := Dial(addr, sharded.Fingerprint(), 8, Options{}); err == nil || !strings.Contains(err.Error(), "shards") {
		t.Fatalf("wrong shard count accepted: %v", err)
	}
	c, err := Dial(addr, sharded.Fingerprint(), 4, Options{})
	if err != nil {
		t.Fatalf("matching hello rejected: %v", err)
	}
	defer c.Close()
	if got := len(c.Shards()); got != 2 {
		t.Fatalf("announced shards = %d, want 2", got)
	}
}

// TestRemoteBitIdentity is the tentpole contract: a mixed local/remote
// topology answers every query bit-identically to the unsharded view —
// Count, RowsIn, RowsInAny, and SampleRect on both its grid and
// covering-index paths (same rng, same draws).
func TestRemoteBitIdentity(t *testing.T) {
	base, sharded := testViews(t, 8000, 4)
	addr, _ := startWorker(t, 8000, 4, []int{1, 3})
	mixed, _ := dialWorker(t, sharded, addr, Options{})

	for i, h := range mixed.ShardHealth() {
		wantRemote := i == 1 || i == 3
		if h.Remote != wantRemote {
			t.Fatalf("shard %d remote = %v, want %v", i, h.Remote, wantRemote)
		}
	}

	rng := rand.New(rand.NewSource(11))
	for ri, rect := range randomRects(30, 2, rng) {
		if got, want := mixed.Count(rect), base.Count(rect); got != want {
			t.Fatalf("rect %d: Count = %d, want %d", ri, got, want)
		}
		if got, want := mixed.RowsIn(rect), base.RowsIn(rect); !reflect.DeepEqual(got, want) {
			t.Fatalf("rect %d: RowsIn diverged (%d vs %d rows)", ri, len(got), len(want))
		}
	}
	rects := randomRects(4, 2, rng)
	if got, want := mixed.RowsInAny(rects), base.RowsInAny(rects); !reflect.DeepEqual(got, want) {
		t.Fatalf("RowsInAny diverged (%d vs %d rows)", len(got), len(want))
	}
	// Grid sampling path: identical rng state must draw identical rows.
	for ri, rect := range randomRects(10, 2, rng) {
		rngA := rand.New(rand.NewSource(int64(ri)))
		rngB := rand.New(rand.NewSource(int64(ri)))
		got := mixed.SampleRect(rect, 16, rngA)
		want := base.SampleRect(rect, 16, rngB)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("rect %d: SampleRect (grid) diverged\n got %v\nwant %v", ri, got, want)
		}
	}
	// Covering-index path: single constrained dimension, remote
	// SortedSlice merged back into global order.
	for ri, rect := range []geom.Rect{
		singleDimRect(2, 0, 10, 30),
		singleDimRect(2, 1, 42.5, 57.25),
		singleDimRect(2, 0, 0, 100),
	} {
		rngA := rand.New(rand.NewSource(int64(100 + ri)))
		rngB := rand.New(rand.NewSource(int64(100 + ri)))
		got := mixed.SampleRect(rect, 20, rngA)
		want := base.SampleRect(rect, 20, rngB)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("rect %d: SampleRect (index) diverged\n got %v\nwant %v", ri, got, want)
		}
	}
}

// TestRemoteSharedCacheBitIdentity pins that the coordinator-side
// predicate cache serves remote shards too: a second pass over the same
// rects (cache hits, no wire round-trips) stays bit-identical.
func TestRemoteSharedCacheBitIdentity(t *testing.T) {
	base, sharded := testViews(t, 4000, 4)
	addr, _ := startWorker(t, 4000, 4, []int{1, 3})
	mixed, _ := dialWorker(t, sharded.WithCache(engine.NewCache(1<<20)), addr, Options{})

	rng := rand.New(rand.NewSource(3))
	rects := randomRects(10, 2, rng)
	for pass := 0; pass < 2; pass++ {
		for ri, rect := range rects {
			if got, want := mixed.Count(rect), base.Count(rect); got != want {
				t.Fatalf("pass %d rect %d: Count = %d, want %d", pass, ri, got, want)
			}
			if got, want := mixed.RowsIn(rect), base.RowsIn(rect); !reflect.DeepEqual(got, want) {
				t.Fatalf("pass %d rect %d: RowsIn diverged", pass, ri)
			}
		}
	}
}

func TestBreakerDeterministicTransitions(t *testing.T) {
	b := newBreaker(0, 3, 4)
	defer b.release()
	if b.Allow() != nil {
		t.Fatal("closed breaker rejected a call")
	}
	b.Record(false)
	b.Allow()
	b.Record(false)
	if b.State() != BreakerClosed {
		t.Fatalf("state after 2/3 failures = %v, want closed", b.State())
	}
	b.Allow()
	b.Record(false) // third consecutive failure opens
	if b.State() != BreakerOpen {
		t.Fatalf("state after 3 failures = %v, want open", b.State())
	}
	// Open: fast-fail until the cooldown (4 Allow ticks) elapses.
	rejected := 0
	for b.State() == BreakerOpen {
		if err := b.Allow(); err != nil {
			if !errors.Is(err, ErrBreakerOpen) {
				t.Fatalf("rejection error = %v", err)
			}
			rejected++
			if rejected > 10 {
				t.Fatal("breaker never admitted a half-open probe")
			}
			continue
		}
		break
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state after cooldown = %v, want half_open", b.State())
	}
	// Only one probe at a time in half-open.
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("second concurrent probe admitted: %v", err)
	}
	b.Record(false) // failed probe -> open again
	if b.State() != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", b.State())
	}
	for b.Allow() != nil {
	}
	b.Record(true) // successful probe -> closed
	if b.State() != BreakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", b.State())
	}

	wantSeq := []struct{ from, to BreakerState }{
		{BreakerClosed, BreakerOpen},
		{BreakerOpen, BreakerHalfOpen},
		{BreakerHalfOpen, BreakerOpen},
		{BreakerOpen, BreakerHalfOpen},
		{BreakerHalfOpen, BreakerClosed},
	}
	log := b.Transitions()
	if len(log) != len(wantSeq) {
		t.Fatalf("transition log length = %d, want %d: %+v", len(log), len(wantSeq), log)
	}
	for i, w := range wantSeq {
		if log[i].From != w.from || log[i].To != w.to {
			t.Fatalf("transition %d = %v->%v, want %v->%v", i, log[i].From, log[i].To, w.from, w.to)
		}
	}
}

// TestChaosRemoteShardPartialNeverWrong runs the engine chaos
// invariant over the wire: under injected network faults — connection
// refusals, latency spikes, torn frames, mid-stream disconnects — a
// mixed local/remote topology either answers bit-identically to the
// reference or reports the named shard_partial degradation with a
// strict subset; after faults clear, breakers close, the supervisor
// recovers every shard and answers are exact again.
func TestChaosRemoteShardPartialNeverWrong(t *testing.T) {
	seed := chaosSeed(t)
	base, _ := testViews(t, 8000, 4)
	sharded := base.WithShards(engine.ShardOptions{Shards: 4, CooldownOps: 2})
	addr, _ := startWorker(t, 8000, 4, []int{1, 3})
	mixed, client := dialWorker(t, sharded, addr, Options{
		MaxRetries:      1,
		BaseBackoff:     100 * time.Microsecond,
		MaxBackoff:      time.Millisecond,
		BreakerCooldown: 2,
	})
	mixed, tracker := mixed.WithShardTracker()

	faultinject.Activate(faultinject.New(faultinject.Config{
		Seed:        seed,
		ErrorRate:   0.35,
		PartialRate: 0.25,
		LatencyRate: 0.1,
		Latency:     200 * time.Microsecond,
		Points: []string{
			faultinject.FaultShardRPCDial,
			faultinject.FaultShardRPCRead,
			faultinject.FaultShardRPCWrite,
		},
	}))
	deactivated := false
	defer func() {
		if !deactivated {
			faultinject.Deactivate()
		}
	}()

	rng := rand.New(rand.NewSource(seed))
	sawPartial := false
	for ri, rect := range randomRects(30, 2, rng) {
		want := base.RowsIn(rect)
		got := mixed.RowsIn(rect)
		name, partial := tracker.Drain()
		if !partial {
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("rect %d: undegraded result differs from reference", ri)
			}
			continue
		}
		sawPartial = true
		if !strings.HasPrefix(name, "shard_partial:") {
			t.Fatalf("rect %d: degradation %q, want shard_partial:n/N", ri, name)
		}
		ref := make(map[int]struct{}, len(want))
		for _, r := range want {
			ref[r] = struct{}{}
		}
		for _, r := range got {
			if _, ok := ref[r]; !ok {
				t.Fatalf("rect %d: degraded result contains row %d absent from reference", ri, r)
			}
		}
		if len(got) > len(want) {
			t.Fatalf("rect %d: degraded result larger than reference", ri)
		}
	}
	if !sawPartial {
		t.Fatalf("seed %d: 30 ops under network faults never degraded — injector not reaching the transport", seed)
	}

	// Faults clear: breakers must close and the supervisor must recover
	// every shard, remote included, and answers go exact again.
	faultinject.Deactivate()
	deactivated = true
	full := geom.R(0, 100, 0, 100)
	healthyAll := func() bool {
		for _, h := range mixed.ShardHealth() {
			if h.State != engine.ShardHealthy.String() {
				return false
			}
		}
		return true
	}
	for i := 0; i < 60 && !healthyAll(); i++ {
		mixed.Count(full)
	}
	if !healthyAll() {
		t.Fatalf("shards never recovered after faults cleared: %+v", mixed.ShardHealth())
	}
	for _, sh := range client.Shards() {
		if st := client.BreakerState(sh.Index); st != BreakerClosed {
			t.Fatalf("shard %d breaker = %v after recovery, want closed", sh.Index, st)
		}
	}
	tracker.Drain()
	rng = rand.New(rand.NewSource(seed + 1))
	for ri, rect := range randomRects(10, 2, rng) {
		if got, want := mixed.RowsIn(rect), base.RowsIn(rect); !reflect.DeepEqual(got, want) {
			t.Fatalf("rect %d: post-recovery result differs from reference", ri)
		}
	}
	if name, partial := tracker.Drain(); partial {
		t.Fatalf("post-recovery ops still degraded: %q", name)
	}
}

// TestChaosRemoteWorkerRestartRecovers kills the worker (server closed
// under the client, connections dead, re-dials refused), asserts the
// engine degrades to the named partial contract — never a wrong answer
// — and then restarts the worker on the same address and asserts full
// recovery: breaker closes, supervisor walks back to healthy, answers
// exact.
func TestChaosRemoteWorkerRestartRecovers(t *testing.T) {
	rows, total := 6000, 4
	base, _ := testViews(t, rows, total)
	sharded := base.WithShards(engine.ShardOptions{Shards: total, CooldownOps: 2})

	_, workerView := testViews(t, rows, total)
	all := workerView.LocalShardBackends()
	subset := map[int]engine.ShardBackend{2: all[2]}
	addr := filepath.Join(t.TempDir(), "w.sock")
	startSrv := func() *Server {
		srv := NewServer(workerView.Fingerprint(), total, subset)
		ln, err := net.Listen("unix", addr)
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(ln)
		return srv
	}
	srv := startSrv()

	mixed, client := dialWorker(t, sharded, addr, Options{
		DialTimeout:     200 * time.Millisecond,
		MaxRetries:      1,
		BaseBackoff:     100 * time.Microsecond,
		MaxBackoff:      time.Millisecond,
		BreakerCooldown: 2,
	})
	mixed, tracker := mixed.WithShardTracker()

	rng := rand.New(rand.NewSource(7))
	rects := randomRects(40, 2, rng)
	for ri, rect := range rects[:5] {
		if got, want := mixed.RowsIn(rect), base.RowsIn(rect); !reflect.DeepEqual(got, want) {
			t.Fatalf("rect %d: pre-kill result differs", ri)
		}
	}

	// Worker dies: every query must stay never-wrong, and once the
	// breaker opens the failures are in-memory fast-fails.
	srv.Close()
	sawPartial := false
	for ri, rect := range rects[5:20] {
		want := base.RowsIn(rect)
		got := mixed.RowsIn(rect)
		if name, partial := tracker.Drain(); partial {
			sawPartial = true
			if !strings.HasPrefix(name, "shard_partial:") {
				t.Fatalf("rect %d: degradation %q", ri, name)
			}
			ref := make(map[int]struct{}, len(want))
			for _, r := range want {
				ref[r] = struct{}{}
			}
			for _, r := range got {
				if _, ok := ref[r]; !ok {
					t.Fatalf("rect %d: degraded result has row %d not in reference", ri, r)
				}
			}
		} else if !reflect.DeepEqual(got, want) {
			t.Fatalf("rect %d: undegraded result differs with worker dead", ri)
		}
	}
	if !sawPartial {
		t.Fatal("worker death never surfaced as a partial result")
	}
	if st := client.BreakerState(2); st == BreakerClosed {
		t.Fatalf("breaker still closed with worker dead")
	}

	// Worker restarts on the same address: half-open probe reconnects,
	// supervisor probe readmits the shard, answers are exact again.
	srv2 := startSrv()
	defer srv2.Close()
	full := geom.R(0, 100, 0, 100)
	recovered := func() bool {
		for _, h := range mixed.ShardHealth() {
			if h.State != engine.ShardHealthy.String() {
				return false
			}
		}
		return client.BreakerState(2) == BreakerClosed
	}
	for i := 0; i < 60 && !recovered(); i++ {
		mixed.Count(full)
	}
	if !recovered() {
		t.Fatalf("never recovered after worker restart: health=%+v breaker=%v",
			mixed.ShardHealth(), client.BreakerState(2))
	}
	tracker.Drain()
	for ri, rect := range rects[20:] {
		if got, want := mixed.RowsIn(rect), base.RowsIn(rect); !reflect.DeepEqual(got, want) {
			t.Fatalf("rect %d: post-restart result differs", ri)
		}
	}
	if name, partial := tracker.Drain(); partial {
		t.Fatalf("post-restart ops still degraded: %q", name)
	}
}

// TestRPCMetricsExposition asserts the new metric families land on the
// Prometheus exposition with bounded label sets and pass the validator.
func TestRPCMetricsExposition(t *testing.T) {
	base, sharded := testViews(t, 2000, 2)
	addr, _ := startWorker(t, 2000, 2, []int{1})
	mixed, _ := dialWorker(t, sharded, addr, Options{})
	rng := rand.New(rand.NewSource(1))
	for _, rect := range randomRects(3, 2, rng) {
		if got, want := mixed.Count(rect), base.Count(rect); got != want {
			t.Fatalf("Count = %d, want %d", got, want)
		}
		mixed.SampleRect(rect, 8, rand.New(rand.NewSource(2)))
	}

	var buf bytes.Buffer
	if err := obs.Default.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`engine_shard_rpc{op="count"}`,
		`engine_shard_rpc{op="hello"}`,
		`shard_breaker{state="closed"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %s", want)
		}
	}
	if err := obs.ValidateExposition(buf.Bytes()); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, out)
	}
}

// TestServerRejectsUnservedShard pins the opErr path: asking a worker
// for a shard it does not serve is an explicit error, not a wrong
// answer, and the connection survives it.
func TestServerRejectsUnservedShard(t *testing.T) {
	_, sharded := testViews(t, 2000, 4)
	addr, _ := startWorker(t, 2000, 4, []int{1})
	c, err := Dial(addr, sharded.Fingerprint(), 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	bad := &remoteShard{c: c, index: 0, rows: 0}
	if _, err := bad.Count(geom.R(0, 100, 0, 100)); err == nil || !strings.Contains(err.Error(), "not served") {
		t.Fatalf("unserved shard: err = %v", err)
	}
	// The same connection still serves shard 1 afterwards.
	good := &remoteShard{c: c, index: 1, rows: 0}
	if _, err := good.Count(geom.R(0, 100, 0, 100)); err != nil {
		t.Fatalf("served shard after opErr: %v", err)
	}
}

func TestNetworkGuess(t *testing.T) {
	for addr, want := range map[string]string{
		"localhost:9090":  "tcp",
		":9090":           "tcp",
		"/tmp/w.sock":     "unix",
		"sub/dir/w.sock":  "unix",
		"10.0.0.1:1":      "tcp",
		`C:\temp\w.sock`:  "unix",
		"[::1]:80":        "tcp",
	} {
		if got := Network(addr); got != want {
			t.Errorf("Network(%q) = %q, want %q", addr, got, want)
		}
	}
}

func TestWithShardBackendsValidation(t *testing.T) {
	base, sharded := testViews(t, 2000, 2)
	if _, err := base.WithShardBackends(map[int]engine.ShardBackend{0: nil}); err == nil {
		t.Fatal("unsharded view accepted backends")
	}
	if _, err := sharded.WithShardBackends(map[int]engine.ShardBackend{5: nil}); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	if _, err := sharded.WithShardBackends(map[int]engine.ShardBackend{0: nil}); err == nil {
		t.Fatal("nil backend accepted")
	}
}

func BenchmarkRemoteCount(b *testing.B) {
	tab := dataset.GenerateSDSS(20000, 5)
	base, err := engine.NewViewWorkers(tab, []string{"rowc", "colc"}, 1)
	if err != nil {
		b.Fatal(err)
	}
	sharded := base.WithShards(engine.ShardOptions{Shards: 4})
	all := sharded.LocalShardBackends()
	subset := map[int]engine.ShardBackend{1: all[1], 3: all[3]}
	srv := NewServer(base.Fingerprint(), 4, subset)
	dir, err := os.MkdirTemp("", "shardrpc")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	addr := filepath.Join(dir, "w.sock")
	ln, err := net.Listen("unix", addr)
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()
	c, err := Dial(addr, base.Fingerprint(), 4, Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	mixed, err := sharded.WithShardBackends(c.Backends())
	if err != nil {
		b.Fatal(err)
	}
	rect := geom.R(20, 70, 30, 80)
	want := base.Count(rect)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := mixed.Count(rect); got != want {
			b.Fatalf("Count = %d, want %d", got, want)
		}
	}
}
