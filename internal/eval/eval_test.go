package eval

import (
	"math"
	"strings"
	"testing"

	"github.com/explore-by-example/aide/internal/dataset"
	"github.com/explore-by-example/aide/internal/engine"
	"github.com/explore-by-example/aide/internal/explore"
	"github.com/explore-by-example/aide/internal/geom"
)

func uniformView(t testing.TB, n int, seed int64) *engine.View {
	t.Helper()
	tab := dataset.GenerateUniform(n, 2, seed)
	v, err := engine.NewView(tab, []string{"a0", "a1"})
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestEvaluatorPerfectPrediction(t *testing.T) {
	v := uniformView(t, 5000, 1)
	target := []geom.Rect{geom.R(10, 30, 10, 30)}
	ev, err := NewEvaluator(v, target)
	if err != nil {
		t.Fatal(err)
	}
	m := ev.Measure(target)
	if m.F != 1 || m.Precision != 1 || m.Recall != 1 {
		t.Errorf("perfect prediction metrics = %+v", m)
	}
	if m.FP != 0 || m.FN != 0 {
		t.Errorf("perfect prediction has FP=%d FN=%d", m.FP, m.FN)
	}
	if m.TP != ev.TargetCount() {
		t.Errorf("TP=%d, target count=%d", m.TP, ev.TargetCount())
	}
}

func TestEvaluatorEmptyPrediction(t *testing.T) {
	v := uniformView(t, 5000, 2)
	ev, err := NewEvaluator(v, []geom.Rect{geom.R(10, 30, 10, 30)})
	if err != nil {
		t.Fatal(err)
	}
	m := ev.Measure(nil)
	if m.Recall != 0 || m.F != 0 {
		t.Errorf("empty prediction metrics = %+v", m)
	}
	if m.Precision != 1 {
		t.Errorf("empty prediction precision = %v, want 1 (vacuous)", m.Precision)
	}
}

func TestEvaluatorHalfOverlap(t *testing.T) {
	v := uniformView(t, 40000, 3)
	target := []geom.Rect{geom.R(0, 20, 0, 20)}
	ev, err := NewEvaluator(v, target)
	if err != nil {
		t.Fatal(err)
	}
	// Predict the right half plus an equal-sized false area.
	pred := []geom.Rect{geom.R(10, 20, 0, 20), geom.R(50, 60, 0, 20)}
	m := ev.Measure(pred)
	// Expected: TP ~ half the target, FP ~ same size as TP.
	if math.Abs(m.Recall-0.5) > 0.06 {
		t.Errorf("recall = %v, want ~0.5", m.Recall)
	}
	if math.Abs(m.Precision-0.5) > 0.06 {
		t.Errorf("precision = %v, want ~0.5", m.Precision)
	}
	if m.F <= 0.4 || m.F >= 0.6 {
		t.Errorf("F = %v, want ~0.5", m.F)
	}
}

func TestEvaluatorOverlappingPredictionsNotDoubleCounted(t *testing.T) {
	v := uniformView(t, 10000, 4)
	target := []geom.Rect{geom.R(0, 20, 0, 20)}
	ev, err := NewEvaluator(v, target)
	if err != nil {
		t.Fatal(err)
	}
	once := ev.Measure(target)
	twice := ev.Measure([]geom.Rect{target[0], target[0].Clone()})
	if once.TP != twice.TP || once.FP != twice.FP {
		t.Errorf("duplicate predictions double-counted: %+v vs %+v", once, twice)
	}
}

func TestEvaluatorDimMismatch(t *testing.T) {
	v := uniformView(t, 100, 5)
	if _, err := NewEvaluator(v, []geom.Rect{geom.R(0, 1)}); err == nil {
		t.Error("dim mismatch should error")
	}
}

func TestSizeClassWidths(t *testing.T) {
	for _, tc := range []struct {
		class  SizeClass
		lo, hi float64
		name   string
	}{
		{Small, 1, 3, "small"},
		{Medium, 4, 6, "medium"},
		{Large, 7, 9, "large"},
	} {
		lo, hi := tc.class.WidthRange()
		if lo != tc.lo || hi != tc.hi {
			t.Errorf("%v width range = %v-%v", tc.class, lo, hi)
		}
		if tc.class.String() != tc.name {
			t.Errorf("String = %q, want %q", tc.class.String(), tc.name)
		}
	}
	if SizeClass(9).String() == "" {
		t.Error("unknown size class should render")
	}
}

func TestGenerateTargetRespectsSpec(t *testing.T) {
	v := uniformView(t, 50000, 6)
	target, err := GenerateTarget(v, TargetSpec{NumAreas: 3, Size: Medium}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(target.Areas) != 3 {
		t.Fatalf("areas = %d", len(target.Areas))
	}
	for i, a := range target.Areas {
		for d := range a {
			w := a[d].Width()
			if w < 4-1e-9 || w > 6+1e-9 {
				t.Errorf("area %d dim %d width %v outside medium 4-6", i, d, w)
			}
		}
		if v.Count(a) < 10 {
			t.Errorf("area %d holds %d rows, want >= 10", i, v.Count(a))
		}
		for j := i + 1; j < len(target.Areas); j++ {
			if a.Overlaps(target.Areas[j]) {
				t.Errorf("areas %d and %d overlap", i, j)
			}
		}
	}
}

func TestGenerateTargetDeterministic(t *testing.T) {
	v := uniformView(t, 20000, 8)
	a, err := GenerateTarget(v, TargetSpec{NumAreas: 2, Size: Large}, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateTarget(v, TargetSpec{NumAreas: 2, Size: Large}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Areas {
		if !a.Areas[i].Equal(b.Areas[i]) {
			t.Error("same seed produced different targets")
		}
	}
}

func TestGenerateTargetActiveDims(t *testing.T) {
	tab := dataset.GenerateUniform(20000, 4, 9)
	v, err := engine.NewView(tab, []string{"a0", "a1", "a2", "a3"})
	if err != nil {
		t.Fatal(err)
	}
	target, err := GenerateTarget(v, TargetSpec{NumAreas: 1, Size: Large, ActiveDims: 2}, 5)
	if err != nil {
		t.Fatal(err)
	}
	a := target.Areas[0]
	for d := 0; d < 2; d++ {
		if a[d].Width() > 9.1 {
			t.Errorf("active dim %d unconstrained: %v", d, a[d])
		}
	}
	for d := 2; d < 4; d++ {
		if a[d].Lo != geom.NormMin || a[d].Hi != geom.NormMax {
			t.Errorf("inactive dim %d constrained: %v", d, a[d])
		}
	}
}

func TestGenerateTargetErrors(t *testing.T) {
	v := uniformView(t, 1000, 10)
	if _, err := GenerateTarget(v, TargetSpec{NumAreas: 0}, 1); err == nil {
		t.Error("NumAreas=0 should error")
	}
	// Impossible density requirement: tiny table, high MinRows.
	if _, err := GenerateTarget(v, TargetSpec{NumAreas: 1, Size: Small, MinRows: 100000, MaxTries: 50}, 1); err == nil {
		t.Error("unsatisfiable MinRows should error")
	}
}

func TestGenerateTargetDenseOnly(t *testing.T) {
	specs := []dataset.ClusterSpec{{Center: []float64{30, 30}, Std: 6, Weight: 1}}
	tab := dataset.GenerateClusters(30000, 2, specs, 0.1, 11)
	v, err := engine.NewView(tab, []string{"a0", "a1"})
	if err != nil {
		t.Fatal(err)
	}
	target, err := GenerateTarget(v, TargetSpec{NumAreas: 1, Size: Large, DenseOnly: true}, 12)
	if err != nil {
		t.Fatal(err)
	}
	a := target.Areas[0]
	avg := float64(v.NumRows()) / geom.NewRect(2).Volume()
	if float64(v.Count(a))/a.Volume() < avg {
		t.Error("DenseOnly produced a sparse area")
	}
}

func TestTargetQueryRendering(t *testing.T) {
	v := uniformView(t, 1000, 13)
	target := Target{Areas: []geom.Rect{geom.R(0, 50, 0, 50)}}
	q := target.Query(v)
	if q.Table != "uniform" || len(q.Areas) != 1 {
		t.Errorf("query = %+v", q)
	}
	if !strings.Contains(q.SQL(), "a0 >= 0") {
		t.Errorf("SQL = %q", q.SQL())
	}
	if !target.Contains(geom.Point{10, 10}) || target.Contains(geom.Point{60, 60}) {
		t.Error("Contains wrong")
	}
}

func TestSimulatedUserLabelsAndCounts(t *testing.T) {
	v := uniformView(t, 1000, 14)
	target := Target{Areas: []geom.Rect{geom.R(0, 50, 0, 100)}}
	u := NewSimulatedUser(target)
	labels := 0
	for row := 0; row < 100; row++ {
		if u.Label(v, row) {
			labels++
		}
	}
	if u.Reviewed != 100 {
		t.Errorf("Reviewed = %d, want 100", u.Reviewed)
	}
	if labels == 0 || labels == 100 {
		t.Errorf("labels = %d, suspicious", labels)
	}
	// Label agrees with ground truth.
	for row := 0; row < 100; row++ {
		if u.Label(v, row) != target.Contains(v.NormPoint(row)) {
			t.Fatal("label disagrees with target")
		}
	}
}

func TestTraceHelpers(t *testing.T) {
	tr := Trace{
		Samples:      []int{20, 40, 60},
		F:            []float64{0.1, 0.75, 0.9},
		IterDuration: []float64{0.5, 1.5, 1.0},
	}
	n, ok := tr.SamplesToAccuracy(0.7)
	if !ok || n != 40 {
		t.Errorf("SamplesToAccuracy = %d,%v", n, ok)
	}
	if _, ok := tr.SamplesToAccuracy(0.95); ok {
		t.Error("unreached accuracy should return ok=false")
	}
	if tr.MaxF() != 0.9 {
		t.Errorf("MaxF = %v", tr.MaxF())
	}
	if tr.AvgIterSeconds() != 1.0 {
		t.Errorf("AvgIterSeconds = %v", tr.AvgIterSeconds())
	}
	if (Trace{}).AvgIterSeconds() != 0 {
		t.Error("empty trace avg should be 0")
	}
	if (Trace{}).MaxF() != 0 {
		t.Error("empty trace MaxF should be 0")
	}
}

func TestRunTraceConverges(t *testing.T) {
	v := uniformView(t, 20000, 15)
	target, err := GenerateTarget(v, TargetSpec{NumAreas: 1, Size: Large}, 16)
	if err != nil {
		t.Fatal(err)
	}
	user := NewSimulatedUser(target)
	opts := explore.DefaultOptions()
	s, err := explore.NewSession(v, user, opts)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := RunTrace(s, v, target, 0.7, 120)
	if err != nil {
		t.Fatal(err)
	}
	if tr.MaxF() < 0.7 {
		t.Errorf("session never reached 0.7 F (max %v)", tr.MaxF())
	}
	if n, ok := tr.SamplesToAccuracy(0.7); !ok || n <= 0 {
		t.Errorf("SamplesToAccuracy = %d,%v", n, ok)
	}
	// Every labeled row was reviewed; re-proposed rows are reviewed again
	// for conflict detection, so Reviewed can exceed the labeled count.
	if user.Reviewed < s.LabeledCount() {
		t.Errorf("user reviewed %d, session labeled %d", user.Reviewed, s.LabeledCount())
	}
}

func TestSimulateManual(t *testing.T) {
	v := uniformView(t, 30000, 17)
	target, err := GenerateTarget(v, TargetSpec{NumAreas: 1, Size: Large}, 18)
	if err != nil {
		t.Fatal(err)
	}
	res := SimulateManual(v, target, ManualParams{}, 19)
	if res.Queries == 0 {
		t.Fatal("manual simulation issued no queries")
	}
	if res.ReviewedObjects <= 0 {
		t.Error("manual simulation reviewed nothing")
	}
	if res.ReturnedObjects < res.ReviewedObjects/2 {
		t.Errorf("returned %d < reviewed %d; implausible", res.ReturnedObjects, res.ReviewedObjects)
	}
	if res.FinalF < 0.5 {
		t.Errorf("manual exploration final F = %v, want >= 0.5", res.FinalF)
	}
}

func TestSimulateManualMultiArea(t *testing.T) {
	v := uniformView(t, 30000, 20)
	target, err := GenerateTarget(v, TargetSpec{NumAreas: 3, Size: Large}, 21)
	if err != nil {
		t.Fatal(err)
	}
	res := SimulateManual(v, target, ManualParams{}, 22)
	if res.Queries < 3 {
		t.Errorf("multi-area manual exploration used %d queries", res.Queries)
	}
	if res.FinalF < 0.4 {
		t.Errorf("multi-area manual final F = %v", res.FinalF)
	}
}

func TestManualParamsDefaults(t *testing.T) {
	var p ManualParams
	p.defaults()
	if p.PageSize != 40 || p.MaxQueries != 60 || p.TargetF != 0.9 || p.AdjustNoise != 0.8 || p.StepFraction != 0.25 {
		t.Errorf("defaults = %+v", p)
	}
}

// AIDE should reduce reviewing effort versus manual exploration on the
// same task — the user study's headline claim (Table 1).
func TestAIDEBeatsManualOnReviewingEffort(t *testing.T) {
	tab := dataset.GenerateAuction(30000, 23)
	v, err := engine.NewView(tab, []string{"current_price", "num_bids"})
	if err != nil {
		t.Fatal(err)
	}
	target, err := GenerateTarget(v, TargetSpec{NumAreas: 1, Size: Large, DenseOnly: true}, 24)
	if err != nil {
		t.Fatal(err)
	}
	manual := SimulateManual(v, target, ManualParams{}, 25)

	user := NewSimulatedUser(target)
	s, err := explore.NewSession(v, user, explore.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunTrace(s, v, target, manual.FinalF, 150); err != nil {
		t.Fatal(err)
	}
	if user.Reviewed >= manual.ReviewedObjects {
		t.Errorf("AIDE reviewed %d, manual reviewed %d: no savings", user.Reviewed, manual.ReviewedObjects)
	}
}
