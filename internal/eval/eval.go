// Package eval provides AIDE's evaluation harness: the F-measure
// effectiveness metric over the full data space (Section 2.3), the
// target-query workload generator modeled on the paper's SDSS-derived
// query set (Section 6.1), the simulated user that labels samples against
// a ground-truth target query, and the scripted manual-exploration
// simulator behind the user-study comparison (Section 6.5).
package eval

import (
	"fmt"

	"github.com/explore-by-example/aide/internal/engine"
	"github.com/explore-by-example/aide/internal/geom"
)

// Metrics reports classifier effectiveness over the total data space T.
type Metrics struct {
	// TP, FP, FN are true positives, false positives and false negatives
	// of the predicted areas against the target areas, counted over all
	// rows.
	TP, FP, FN int
	// Precision = tp/(tp+fp); 1 when nothing is predicted relevant.
	Precision float64
	// Recall = tp/(tp+fn); 1 when nothing is truly relevant.
	Recall float64
	// F is the harmonic mean of precision and recall (Equation 1).
	F float64
}

// Evaluator computes Metrics for successive predictions against one fixed
// target query. It precomputes the target membership mask so per-iteration
// evaluation costs one pass over the predicted areas only.
type Evaluator struct {
	view        *engine.View
	targetMask  []bool
	targetCount int

	stamp []int32 // scratch: last epoch each row was marked predicted
	epoch int32
}

// NewEvaluator builds an evaluator for the given target areas (normalized
// space).
func NewEvaluator(v *engine.View, target []geom.Rect) (*Evaluator, error) {
	for _, r := range target {
		if r.Dims() != v.Dims() {
			return nil, fmt.Errorf("eval: target area has %d dims, view has %d", r.Dims(), v.Dims())
		}
	}
	e := &Evaluator{
		view:       v,
		targetMask: make([]bool, v.NumRows()),
		stamp:      make([]int32, v.NumRows()),
	}
	for _, r := range target {
		for _, row := range v.RowsIn(r) {
			if !e.targetMask[row] {
				e.targetMask[row] = true
				e.targetCount++
			}
		}
	}
	return e, nil
}

// TargetCount returns the number of truly relevant rows.
func (e *Evaluator) TargetCount() int { return e.targetCount }

// Measure evaluates predicted areas (normalized space) against the
// target.
func (e *Evaluator) Measure(predicted []geom.Rect) Metrics {
	e.epoch++
	var m Metrics
	for _, r := range predicted {
		for _, row := range e.view.RowsIn(r) {
			if e.stamp[row] == e.epoch {
				continue // already counted via an overlapping area
			}
			e.stamp[row] = e.epoch
			if e.targetMask[row] {
				m.TP++
			} else {
				m.FP++
			}
		}
	}
	m.FN = e.targetCount - m.TP
	m.Precision = ratio(m.TP, m.TP+m.FP)
	m.Recall = ratio(m.TP, m.TP+m.FN)
	if m.Precision+m.Recall > 0 {
		m.F = 2 * m.Precision * m.Recall / (m.Precision + m.Recall)
	}
	return m
}

func ratio(num, den int) float64 {
	if den == 0 {
		return 1
	}
	return float64(num) / float64(den)
}
