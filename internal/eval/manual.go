package eval

import (
	"math"
	"math/rand"

	"github.com/explore-by-example/aide/internal/engine"
	"github.com/explore-by-example/aide/internal/geom"
)

// ManualResult summarizes one scripted manual-exploration session: the
// baseline AIDE is compared against in the user study (Table 1). The
// paper's human subjects iteratively wrote range queries, skimmed the
// returned objects, and adjusted predicates until the result set matched
// their interest; the counters here mirror the columns of Table 1.
type ManualResult struct {
	// ReturnedObjects is the total number of tuples all issued queries
	// returned (the paper's "Manual: returned objects" — hundreds of
	// thousands).
	ReturnedObjects int
	// ReviewedObjects is the number of tuples the user actually read
	// while steering their predicates (the paper's "Manual: reviewed
	// objects").
	ReviewedObjects int
	// Queries is the number of exploratory queries issued.
	Queries int
	// FinalF is the F-measure of the user's final query against the
	// target.
	FinalF float64
}

// ManualParams tunes the scripted manual explorer.
type ManualParams struct {
	// PageSize is how many returned tuples the user reviews per query
	// before deciding how to adjust predicates (default 40).
	PageSize int
	// MaxQueries bounds the session (default 60).
	MaxQueries int
	// TargetF is the accuracy at which the user is satisfied
	// (default 0.9).
	TargetF float64
	// AdjustNoise is the relative error of each predicate adjustment,
	// modeling trial-and-error (default 0.8).
	AdjustNoise float64
	// StepFraction is how far toward the true boundary each adjustment
	// moves (default 0.25 — users converge by cautious trial and error).
	StepFraction float64
}

func (p *ManualParams) defaults() {
	if p.PageSize <= 0 {
		p.PageSize = 40
	}
	if p.MaxQueries <= 0 {
		p.MaxQueries = 60
	}
	if p.TargetF <= 0 {
		p.TargetF = 0.9
	}
	if p.AdjustNoise <= 0 {
		p.AdjustNoise = 0.8
	}
	if p.StepFraction <= 0 {
		p.StepFraction = 0.25
	}
}

// SimulateManual runs a scripted manual exploration toward the target:
//
//  1. The user browses random tuples until the first relevant one is
//     found (each browsed tuple is reviewed).
//  2. They form an initial wide range query around it.
//  3. Each round they run the query, skim a page of its results, and
//     nudge every predicate boundary toward the true one with noise —
//     modeling the widen/narrow cycle of real exploration — until their
//     query is accurate enough or they give up.
//
// Multi-area targets repeat the process per area (the user hunts each
// region separately and ORs the predicates).
func SimulateManual(v *engine.View, target Target, params ManualParams, seed int64) ManualResult {
	params.defaults()
	rng := rand.New(rand.NewSource(seed))
	var res ManualResult

	ev, err := NewEvaluator(v, target.Areas)
	if err != nil {
		return res
	}
	bounds := geom.NewRect(v.Dims())
	var finalRects []geom.Rect

	for _, area := range target.Areas {
		// Step 1: browse until a relevant tuple from this area turns up.
		var seedPoint geom.Point
		for tries := 0; tries < 100000; tries++ {
			rows := v.SampleAll(1, rng)
			if len(rows) == 0 {
				break
			}
			res.ReviewedObjects++
			p := v.NormPoint(rows[0])
			if area.Contains(p) {
				seedPoint = p
				break
			}
		}
		if seedPoint == nil {
			// Extremely selective area: the user asks a colleague for one
			// example (we seed from the area center) after a long fruitless
			// browse.
			seedPoint = area.Center()
		}

		// Step 2: initial wide guess.
		guess := geom.RectAround(seedPoint, 15, bounds)

		// Step 3: iterative refinement.
		for q := 0; q < params.MaxQueries; q++ {
			res.Queries++
			returned := v.Count(guess)
			res.ReturnedObjects += returned
			page := params.PageSize
			if returned < page {
				page = returned
			}
			res.ReviewedObjects += page

			m := ev.Measure(append(append([]geom.Rect{}, finalRects...), guess))
			if m.F >= params.TargetF {
				break
			}
			// Nudge each face toward the truth with noise proportional to
			// the remaining error.
			for d := range guess {
				guess[d].Lo = nudge(guess[d].Lo, area[d].Lo, params.StepFraction, params.AdjustNoise, rng)
				guess[d].Hi = nudge(guess[d].Hi, area[d].Hi, params.StepFraction, params.AdjustNoise, rng)
				if guess[d].Lo > guess[d].Hi {
					guess[d].Lo, guess[d].Hi = guess[d].Hi, guess[d].Lo
				}
				guess[d].Lo = bounds[d].Clamp(guess[d].Lo)
				guess[d].Hi = bounds[d].Clamp(guess[d].Hi)
			}
		}
		finalRects = append(finalRects, guess.Clone())
	}

	res.FinalF = ev.Measure(finalRects).F
	return res
}

// nudge moves cur a fraction of the way toward want, with multiplicative
// noise on the step (occasionally overshooting or backtracking, the way
// real predicate fiddling does).
func nudge(cur, want, step0, noise float64, rng *rand.Rand) float64 {
	step := (want - cur) * step0 * (1 + noise*(rng.Float64()*2-1))
	next := cur + step
	if math.IsNaN(next) || math.IsInf(next, 0) {
		return cur
	}
	return next
}
