package eval

import (
	"net"
	"path/filepath"
	"testing"

	"github.com/explore-by-example/aide/internal/dataset"
	"github.com/explore-by-example/aide/internal/engine"
	"github.com/explore-by-example/aide/internal/explore"
	"github.com/explore-by-example/aide/internal/shardrpc"
)

// TestGoldenBitIdentityRemoteShards re-runs the pinned golden sessions
// on a mixed local/remote topology: the view is sharded 4 ways and two
// shards are served by an in-process shardrpc worker over a unix
// socket, built independently from the same inputs like cmd/aideshard.
// The historical bytes must survive the network hop — remote shards are
// indistinguishable from local ones on the fault-free path.
func TestGoldenBitIdentityRemoteShards(t *testing.T) {
	const shards = 4
	sdss := dataset.GenerateSDSS(20000, 7)
	v1, err := engine.NewView(sdss, []string{"rowc", "colc"})
	if err != nil {
		t.Fatal(err)
	}
	t1, err := GenerateTarget(v1, TargetSpec{NumAreas: 2, Size: Large}, 11)
	if err != nil {
		t.Fatal(err)
	}
	uni := dataset.GenerateUniform(10000, 2, 3)
	v2, err := engine.NewView(uni, []string{"a0", "a1"})
	if err != nil {
		t.Fatal(err)
	}
	t2, err := GenerateTarget(v2, TargetSpec{NumAreas: 1, Size: Large}, 5)
	if err != nil {
		t.Fatal(err)
	}

	// mixed shards a view 4 ways, starts a worker for shards 1 and 3 on
	// a unix socket (a second view built from the same table stands in
	// for the worker's own build), dials it and splices the remote
	// backends in.
	mixed := func(t *testing.T, base *engine.View, tab *dataset.Table, attrs []string) *engine.View {
		t.Helper()
		workerBase, err := engine.NewView(tab, attrs)
		if err != nil {
			t.Fatal(err)
		}
		workerView := workerBase.WithShards(engine.ShardOptions{Shards: shards})
		all := workerView.LocalShardBackends()
		subset := map[int]engine.ShardBackend{1: all[1], 3: all[3]}
		srv := shardrpc.NewServer(workerBase.Fingerprint(), shards, subset)
		addr := filepath.Join(t.TempDir(), "w.sock")
		ln, err := net.Listen("unix", addr)
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(ln)
		t.Cleanup(srv.Close)
		c, err := shardrpc.Dial(addr, base.Fingerprint(), shards, shardrpc.Options{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		view, err := base.WithShards(engine.ShardOptions{Shards: shards}).WithShardBackends(c.Backends())
		if err != nil {
			t.Fatal(err)
		}
		return view
	}

	cases := []struct {
		name        string
		view        *engine.View
		tab         *dataset.Table
		attrs       []string
		target      Target
		seed        int64
		discovery   explore.DiscoveryStrategy
		maxIter     int
		wantLabeled int
		wantSQL     string
	}{
		{
			name: "sdss-grid", view: v1, tab: sdss, attrs: []string{"rowc", "colc"},
			target: t1, seed: 42,
			discovery: explore.DiscoveryGrid, maxIter: 40, wantLabeled: 400,
			wantSQL: `SELECT * FROM PhotoObjAll WHERE (rowc >= 155.75593 AND rowc <= 237.073233 AND colc >= 1738.670318 AND colc <= 2048) OR (rowc >= 1112.251242 AND rowc <= 1221.56503 AND colc >= 1065.286244 AND colc <= 1239.969774);`,
		},
		{
			name: "uni-cluster", view: v2, tab: uni, attrs: []string{"a0", "a1"},
			target: t2, seed: 9,
			discovery: explore.DiscoveryClustering, maxIter: 40, wantLabeled: 400,
			wantSQL: `SELECT * FROM uniform WHERE (a0 >= 47.484197 AND a0 <= 55.360533 AND a1 >= 54.483519 AND a1 <= 63.225439);`,
		},
		{
			name: "sdss-hybrid", view: v1, tab: sdss, attrs: []string{"rowc", "colc"},
			target: t1, seed: 5,
			discovery: explore.DiscoveryHybrid, maxIter: 30, wantLabeled: 400,
			wantSQL: `SELECT * FROM PhotoObjAll WHERE (rowc >= 1109.266226 AND rowc <= 1218.146335 AND colc >= 1067.401043 AND colc <= 1239.421102) OR (rowc >= 0 AND rowc <= 277.633617 AND colc >= 1720.227043 AND colc <= 1854.032457);`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			view := mixed(t, tc.view, tc.tab, tc.attrs)
			opts := explore.DefaultOptions()
			opts.Seed = tc.seed
			opts.Discovery = tc.discovery
			labeled, sql, s := runGolden(t, view, tc.target, opts, tc.maxIter)
			if labeled != tc.wantLabeled {
				t.Errorf("labeled = %d, want %d", labeled, tc.wantLabeled)
			}
			if sql != tc.wantSQL {
				t.Errorf("predicted query diverged over the remote transport\n got: %s\nwant: %s", sql, tc.wantSQL)
			}
			stats := s.Stats()
			if stats.Conflicts != (explore.ConflictStats{}) {
				t.Errorf("noise-free session reported conflicts: %+v", stats.Conflicts)
			}
			if len(stats.Degradations) != 0 {
				t.Errorf("fault-free remote session reported degradations: %v", stats.Degradations)
			}
			for i, h := range view.ShardHealth() {
				wantRemote := i == 1 || i == 3
				if h.Remote != wantRemote {
					t.Errorf("shard %d remote = %v, want %v", i, h.Remote, wantRemote)
				}
				if h.State != engine.ShardHealthy.String() {
					t.Errorf("shard %d state = %s after fault-free run", i, h.State)
				}
			}
		})
	}
}
