package eval

import (
	"github.com/explore-by-example/aide/internal/engine"
	"github.com/explore-by-example/aide/internal/explore"
	"github.com/explore-by-example/aide/internal/obs"
)

// obsFMeasure tracks the most recent F-measure any evaluated session
// reached: the effectiveness trajectory (Section 2.3) as a live gauge.
var obsFMeasure = obs.GetGauge("explore.f_measure")

// SimulatedUser labels samples against a ground-truth target query,
// exactly as the paper simulates users: "Given a target query, we
// simulate the user by executing the query to collect the exact target
// set of relevant tuples. We rely on this set to label the new sample
// set we extract in each iteration" (Section 6.1). It implements
// explore.Oracle.
type SimulatedUser struct {
	target Target
	// Reviewed counts every label request: the user's total reviewing
	// effort.
	Reviewed int
}

// NewSimulatedUser builds an oracle for the target.
func NewSimulatedUser(target Target) *SimulatedUser {
	return &SimulatedUser{target: target}
}

// Label implements explore.Oracle.
func (u *SimulatedUser) Label(v *engine.View, row int) bool {
	u.Reviewed++
	return u.target.Contains(v.NormPoint(row))
}

var _ explore.Oracle = (*SimulatedUser)(nil)

// Trace is the per-iteration accuracy record of one exploration session.
type Trace struct {
	// Samples is cumulative labeled samples after each iteration.
	Samples []int
	// F is the F-measure after each iteration.
	F []float64
	// IterDuration is the wall-clock system execution time of each
	// iteration.
	IterDuration []float64 // seconds
}

// SamplesToAccuracy returns the smallest cumulative sample count at which
// the trace reached the given F-measure, and ok=false when it never did.
func (t Trace) SamplesToAccuracy(f float64) (int, bool) {
	for i, v := range t.F {
		if v >= f {
			return t.Samples[i], true
		}
	}
	return 0, false
}

// MaxF returns the best F-measure the trace reached.
func (t Trace) MaxF() float64 {
	best := 0.0
	for _, v := range t.F {
		if v > best {
			best = v
		}
	}
	return best
}

// AvgIterSeconds returns the mean per-iteration system execution time.
func (t Trace) AvgIterSeconds() float64 {
	if len(t.IterDuration) == 0 {
		return 0
	}
	var sum float64
	for _, v := range t.IterDuration {
		sum += v
	}
	return sum / float64(len(t.IterDuration))
}

// RunTrace drives an explorer until it reaches stopF F-measure (or
// maxIter iterations), evaluating accuracy after every iteration against
// the target. evalView is the view accuracy is measured on — pass the
// full-data view even when the explorer runs on a sampled view, mirroring
// how the paper evaluates sampled-dataset runs against the real data.
func RunTrace(e explore.Explorer, evalView *engine.View, target Target, stopF float64, maxIter int) (Trace, error) {
	ev, err := NewEvaluator(evalView, target.Areas)
	if err != nil {
		return Trace{}, err
	}
	var tr Trace
	stop := func(res *explore.IterationResult) bool {
		m := ev.Measure(e.RelevantAreas())
		tr.Samples = append(tr.Samples, res.TotalLabeled)
		tr.F = append(tr.F, m.F)
		tr.IterDuration = append(tr.IterDuration, res.Duration.Seconds())
		obsFMeasure.Set(m.F)
		return stopF > 0 && m.F >= stopF
	}
	if _, err := explore.RunUntil(e, stop, maxIter); err != nil {
		return tr, err
	}
	return tr, nil
}
