package eval

import (
	"testing"

	"github.com/explore-by-example/aide/internal/dataset"
	"github.com/explore-by-example/aide/internal/engine"
	"github.com/explore-by-example/aide/internal/explore"
)

// TestGoldenBitIdentityWithReuse replays the three pinned golden
// sessions of TestGoldenBitIdentity over the compute-reuse stack —
// registry-shared views carrying a shared predicate-result cache, two
// of them sharing one view and one cache — and requires the exact same
// byte-for-byte SQL. This is the contract the cache and registry rest
// on: memoization and sharing may change where a Count/RowsIn answer
// comes from, never what it is.
func TestGoldenBitIdentityWithReuse(t *testing.T) {
	registry := engine.NewRegistry()
	cache := engine.NewCache(16 << 20)

	sdss := dataset.GenerateSDSS(20000, 7)
	v1, err := registry.Acquire(sdss, []string{"rowc", "colc"})
	if err != nil {
		t.Fatal(err)
	}
	defer registry.Release(v1)
	t1, err := GenerateTarget(v1, TargetSpec{NumAreas: 2, Size: Large}, 11)
	if err != nil {
		t.Fatal(err)
	}
	uni := dataset.GenerateUniform(10000, 2, 3)
	v2, err := registry.Acquire(uni, []string{"a0", "a1"})
	if err != nil {
		t.Fatal(err)
	}
	defer registry.Release(v2)
	t2, err := GenerateTarget(v2, TargetSpec{NumAreas: 1, Size: Large}, 5)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name      string
		view      *engine.View
		target    Target
		seed      int64
		discovery explore.DiscoveryStrategy
		maxIter   int
		wantSQL   string
	}{
		{
			name: "sdss-grid", view: v1, target: t1, seed: 42,
			discovery: explore.DiscoveryGrid, maxIter: 40,
			wantSQL: `SELECT * FROM PhotoObjAll WHERE (rowc >= 155.75593 AND rowc <= 237.073233 AND colc >= 1738.670318 AND colc <= 2048) OR (rowc >= 1112.251242 AND rowc <= 1221.56503 AND colc >= 1065.286244 AND colc <= 1239.969774);`,
		},
		{
			name: "uni-cluster", view: v2, target: t2, seed: 9,
			discovery: explore.DiscoveryClustering, maxIter: 40,
			wantSQL: `SELECT * FROM uniform WHERE (a0 >= 47.484197 AND a0 <= 55.360533 AND a1 >= 54.483519 AND a1 <= 63.225439);`,
		},
		{
			name: "sdss-hybrid", view: v1, target: t1, seed: 5,
			discovery: explore.DiscoveryHybrid, maxIter: 30,
			wantSQL: `SELECT * FROM PhotoObjAll WHERE (rowc >= 1109.266226 AND rowc <= 1218.146335 AND colc >= 1067.401043 AND colc <= 1239.421102) OR (rowc >= 0 AND rowc <= 277.633617 AND colc >= 1720.227043 AND colc <= 1854.032457);`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := explore.DefaultOptions()
			opts.Seed = tc.seed
			opts.Discovery = tc.discovery
			labeled, sql, _ := runGolden(t, tc.view.WithCache(cache), tc.target, opts, tc.maxIter)
			if labeled != 400 {
				t.Errorf("labeled = %d, want 400", labeled)
			}
			if sql != tc.wantSQL {
				t.Errorf("cached+shared session diverged from golden capture\n got: %s\nwant: %s", sql, tc.wantSQL)
			}
		})
	}
	// The first session again, now against a warm cache: its probes are
	// answered from memo entries and the output is still golden.
	opts := explore.DefaultOptions()
	opts.Seed = 42
	opts.Discovery = explore.DiscoveryGrid
	if _, sql, _ := runGolden(t, v1.WithCache(cache), t1, opts, 40); sql != cases[0].wantSQL {
		t.Errorf("warm-cache rerun diverged:\n got: %s\nwant: %s", sql, cases[0].wantSQL)
	}
	if s := cache.Stats(); s.Hits == 0 {
		t.Errorf("replaying a session against a warm shared cache produced no hits: %+v", s)
	}
}
