package eval

import (
	"fmt"
	"math/rand"

	"github.com/explore-by-example/aide/internal/engine"
	"github.com/explore-by-example/aide/internal/geom"
)

// SizeClass categorizes relevant-area sizes exactly as Section 6.1 does:
// the width of each attribute range as a percentage of its normalized
// domain.
type SizeClass int

const (
	// Small areas have per-dimension widths of 1-3% of the domain.
	Small SizeClass = iota
	// Medium areas have widths of 4-6%.
	Medium
	// Large areas have widths of 7-9%.
	Large
)

// String implements fmt.Stringer.
func (s SizeClass) String() string {
	switch s {
	case Small:
		return "small"
	case Medium:
		return "medium"
	case Large:
		return "large"
	default:
		return fmt.Sprintf("SizeClass(%d)", int(s))
	}
}

// WidthRange returns the normalized width interval of the class.
func (s SizeClass) WidthRange() (lo, hi float64) {
	switch s {
	case Small:
		return 1, 3
	case Medium:
		return 4, 6
	default:
		return 7, 9
	}
}

// Target is a ground-truth user interest: relevant objects are exactly
// those inside the union of the (normalized-space) areas. Targets with
// one area correspond to conjunctive range queries; multiple areas form
// disjunctive queries.
type Target struct {
	Areas []geom.Rect
}

// Contains reports whether a normalized point is relevant.
func (t Target) Contains(p geom.Point) bool {
	for _, a := range t.Areas {
		if a.Contains(p) {
			return true
		}
	}
	return false
}

// Query renders the target as a raw-space query against the view, useful
// for display and for the user-study simulator.
func (t Target) Query(v *engine.View) engine.Query {
	n := v.Normalizer()
	areas := make([]geom.Rect, len(t.Areas))
	for i, a := range t.Areas {
		areas[i] = n.ToRawRect(a)
	}
	return engine.Query{
		Table:   v.Table().Name(),
		Attrs:   v.Attrs(),
		Areas:   areas,
		Domains: n.ToRawRect(geom.NewRect(v.Dims())),
	}
}

// TargetSpec controls target generation.
type TargetSpec struct {
	// NumAreas is the number of disjoint relevant areas (the paper's
	// query complexity knob: 1, 3, 5, 7).
	NumAreas int
	// Size is the per-area size class.
	Size SizeClass
	// ActiveDims, when non-zero, constrains only the first ActiveDims
	// dimensions; the rest span the whole domain. This models the paper's
	// multi-dimensional experiments where "target queries have
	// conjunctions on two attributes" and the remaining exploration
	// attributes are irrelevant (Section 6.3).
	ActiveDims int
	// MinRows is the minimum row count per area; areas in empty space
	// would make the target unreachable. Default 10.
	MinRows int
	// DenseOnly requires each area's density to be at least the space's
	// average (targets "on dense regions", Section 6.4).
	DenseOnly bool
	// MaxTries bounds placement attempts per area (default 2000).
	MaxTries int
}

// GenerateTarget places NumAreas disjoint relevant areas in the view's
// normalized space, each holding at least MinRows rows. Generation is
// deterministic for a given seed.
func GenerateTarget(v *engine.View, spec TargetSpec, seed int64) (Target, error) {
	if spec.NumAreas < 1 {
		return Target{}, fmt.Errorf("eval: NumAreas = %d", spec.NumAreas)
	}
	d := v.Dims()
	active := spec.ActiveDims
	if active <= 0 || active > d {
		active = d
	}
	minRows := spec.MinRows
	if minRows <= 0 {
		minRows = 10
	}
	maxTries := spec.MaxTries
	if maxTries <= 0 {
		maxTries = 2000
	}
	loW, hiW := spec.Size.WidthRange()
	rng := rand.New(rand.NewSource(seed))

	avgDensity := float64(v.NumRows()) / geom.NewRect(d).Volume()

	var areas []geom.Rect
	for len(areas) < spec.NumAreas {
		placed := false
		for try := 0; try < maxTries; try++ {
			r := make(geom.Rect, d)
			for dim := 0; dim < d; dim++ {
				if dim >= active {
					r[dim] = geom.Interval{Lo: geom.NormMin, Hi: geom.NormMax}
					continue
				}
				w := loW + rng.Float64()*(hiW-loW)
				lo := rng.Float64() * (geom.NormMax - w)
				r[dim] = geom.Interval{Lo: lo, Hi: lo + w}
			}
			// Disjoint from already placed areas (with a small margin so
			// boundary slabs don't collide).
			overlap := false
			for _, prev := range areas {
				if r.Expand(2, nil).Overlaps(prev) {
					overlap = true
					break
				}
			}
			if overlap {
				continue
			}
			count := v.Count(r)
			if count < minRows {
				continue
			}
			if spec.DenseOnly && float64(count)/r.Volume() < avgDensity {
				continue
			}
			areas = append(areas, r)
			placed = true
			break
		}
		if !placed {
			return Target{}, fmt.Errorf("eval: could not place area %d/%d (size %v) after %d tries",
				len(areas)+1, spec.NumAreas, spec.Size, maxTries)
		}
	}
	return Target{Areas: areas}, nil
}
