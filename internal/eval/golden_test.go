package eval

import (
	"fmt"
	"testing"

	"github.com/explore-by-example/aide/internal/dataset"
	"github.com/explore-by-example/aide/internal/engine"
	"github.com/explore-by-example/aide/internal/explore"
)

// The golden sessions below pin the exact predicted queries of three
// full steering runs, captured before the conflict ledger and resource
// budgets were introduced. They are the bit-identity property: a default
// configuration — no noise, no budget, default conflict policy — must
// reproduce the historical output byte for byte, proving the robustness
// machinery sits entirely off the unconstrained hot path (nil training
// weights, no degradations, unchanged rng consumption).
//
// If one of these fails after an intentional algorithm change, re-derive
// the strings with a throwaway main that prints FinalQuery().SQL() for
// the same seeds — but never to paper over an accidental divergence.

func runGolden(t *testing.T, view *engine.View, target Target, opts explore.Options, maxIter int) (int, string, *explore.Session) {
	t.Helper()
	user := NewSimulatedUser(target)
	s, err := explore.NewSession(view, user, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := explore.RunUntil(s, func(r *explore.IterationResult) bool { return r.TotalLabeled >= 400 }, maxIter); err != nil {
		t.Fatal(err)
	}
	return s.LabeledCount(), s.FinalQuery().SQL(), s
}

func TestGoldenBitIdentity(t *testing.T) {
	sdss := dataset.GenerateSDSS(20000, 7)
	v1, err := engine.NewView(sdss, []string{"rowc", "colc"})
	if err != nil {
		t.Fatal(err)
	}
	t1, err := GenerateTarget(v1, TargetSpec{NumAreas: 2, Size: Large}, 11)
	if err != nil {
		t.Fatal(err)
	}
	uni := dataset.GenerateUniform(10000, 2, 3)
	v2, err := engine.NewView(uni, []string{"a0", "a1"})
	if err != nil {
		t.Fatal(err)
	}
	t2, err := GenerateTarget(v2, TargetSpec{NumAreas: 1, Size: Large}, 5)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name        string
		view        *engine.View
		target      Target
		seed        int64
		discovery   explore.DiscoveryStrategy
		maxIter     int
		wantLabeled int
		wantSQL     string
	}{
		{
			name: "sdss-grid", view: v1, target: t1, seed: 42,
			discovery: explore.DiscoveryGrid, maxIter: 40, wantLabeled: 400,
			wantSQL: `SELECT * FROM PhotoObjAll WHERE (rowc >= 155.75593 AND rowc <= 237.073233 AND colc >= 1738.670318 AND colc <= 2048) OR (rowc >= 1112.251242 AND rowc <= 1221.56503 AND colc >= 1065.286244 AND colc <= 1239.969774);`,
		},
		{
			name: "uni-cluster", view: v2, target: t2, seed: 9,
			discovery: explore.DiscoveryClustering, maxIter: 40, wantLabeled: 400,
			wantSQL: `SELECT * FROM uniform WHERE (a0 >= 47.484197 AND a0 <= 55.360533 AND a1 >= 54.483519 AND a1 <= 63.225439);`,
		},
		{
			name: "sdss-hybrid", view: v1, target: t1, seed: 5,
			discovery: explore.DiscoveryHybrid, maxIter: 30, wantLabeled: 400,
			wantSQL: `SELECT * FROM PhotoObjAll WHERE (rowc >= 1109.266226 AND rowc <= 1218.146335 AND colc >= 1067.401043 AND colc <= 1239.421102) OR (rowc >= 0 AND rowc <= 277.633617 AND colc >= 1720.227043 AND colc <= 1854.032457);`,
		},
	}
	// shards=0 is the plain unsharded view; the positive counts pin that
	// the sharded scatter-gather engine reproduces the same historical
	// bytes at every shard count — fault-free sharding is invisible.
	for _, shards := range []int{0, 1, 2, 4, 8} {
		for _, tc := range cases {
			name := tc.name
			if shards > 0 {
				name = fmt.Sprintf("%s/shards=%d", tc.name, shards)
			}
			t.Run(name, func(t *testing.T) {
				view := tc.view
				if shards > 0 {
					view = view.WithShards(engine.ShardOptions{Shards: shards})
				}
				opts := explore.DefaultOptions()
				opts.Seed = tc.seed
				opts.Discovery = tc.discovery
				labeled, sql, s := runGolden(t, view, tc.target, opts, tc.maxIter)
				if labeled != tc.wantLabeled {
					t.Errorf("labeled = %d, want %d", labeled, tc.wantLabeled)
				}
				if sql != tc.wantSQL {
					t.Errorf("predicted query diverged from pre-ledger capture\n got: %s\nwant: %s", sql, tc.wantSQL)
				}
				stats := s.Stats()
				if stats.Conflicts != (explore.ConflictStats{}) {
					t.Errorf("noise-free session reported conflicts: %+v", stats.Conflicts)
				}
				if len(stats.Degradations) != 0 {
					t.Errorf("unbudgeted session reported degradations: %v", stats.Degradations)
				}
			})
		}
	}
}

// TestBudgetlessOptionsBitIdentical is the same property stated
// differently: an explicitly-zero Budget and explicit ConflictLastWins
// must match the implicit defaults exactly, sample for sample.
func TestBudgetlessOptionsBitIdentical(t *testing.T) {
	uni := dataset.GenerateUniform(8000, 2, 21)
	v, err := engine.NewView(uni, []string{"a0", "a1"})
	if err != nil {
		t.Fatal(err)
	}
	target, err := GenerateTarget(v, TargetSpec{NumAreas: 1, Size: Medium}, 22)
	if err != nil {
		t.Fatal(err)
	}
	base := explore.DefaultOptions()
	base.Seed = 77
	explicit := base
	explicit.Budget = explore.Budget{}
	explicit.ConflictPolicy = explore.ConflictLastWins

	_, sqlA, sa := runGolden(t, v, target, base, 25)
	_, sqlB, sb := runGolden(t, v, target, explicit, 25)
	if sqlA != sqlB {
		t.Errorf("explicit zero budget diverged:\n base: %s\nexplicit: %s", sqlA, sqlB)
	}
	if sa.LabeledCount() != sb.LabeledCount() {
		t.Errorf("labeled counts differ: %d vs %d", sa.LabeledCount(), sb.LabeledCount())
	}
}
