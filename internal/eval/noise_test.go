package eval

import (
	"errors"
	"testing"

	"github.com/explore-by-example/aide/internal/dataset"
	"github.com/explore-by-example/aide/internal/engine"
	"github.com/explore-by-example/aide/internal/explore"
)

// TestNoiseSweepGracefulDegradation drives full sessions against an
// oracle that flips each answer with increasing probability and checks
// the robustness contract: every noisy session completes without error,
// and accuracy degrades gracefully — monotonic within a tolerance rather
// than collapsing — as the flip rate grows. Run with -race in CI.
func TestNoiseSweepGracefulDegradation(t *testing.T) {
	sdss := dataset.GenerateSDSS(20000, 7)
	v, err := engine.NewView(sdss, []string{"rowc", "colc"})
	if err != nil {
		t.Fatal(err)
	}
	target, err := GenerateTarget(v, TargetSpec{NumAreas: 1, Size: Large}, 31)
	if err != nil {
		t.Fatal(err)
	}

	// Improvement tolerance: a noisier run may luck into a slightly
	// better fit, but a higher flip rate must never beat a lower one by
	// more than this.
	const tol = 0.15
	rates := []float64{0, 0.05, 0.1, 0.2}
	maxF := make([]float64, len(rates))

	for i, rate := range rates {
		user := NewSimulatedUser(target)
		oracle := explore.NewNoisyOracle(user, rate, 1234)
		opts := explore.DefaultOptions()
		opts.Seed = 99
		s, err := explore.NewSession(v, oracle, opts)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := RunTrace(s, v, target, 0, 40)
		if err != nil {
			t.Fatalf("rate %v: session failed: %v", rate, err)
		}
		maxF[i] = tr.MaxF()
		stats := s.Stats()
		t.Logf("rate=%.2f maxF=%.3f flips=%d conflicts=%+v", rate, maxF[i], oracle.Flips(), stats.Conflicts)
		if rate == 0 {
			if oracle.Flips() != 0 {
				t.Errorf("rate 0 flipped %d answers", oracle.Flips())
			}
			if stats.Conflicts != (explore.ConflictStats{}) {
				t.Errorf("rate 0 reported conflicts: %+v", stats.Conflicts)
			}
		} else if oracle.Flips() == 0 {
			t.Errorf("rate %v flipped no answers over %d reviews", rate, user.Reviewed)
		}
		if rate >= 0.1 && stats.Conflicts.ConflictEvents == 0 {
			t.Errorf("rate %v: no conflicts detected despite %d flips", rate, oracle.Flips())
		}
	}

	if maxF[0] < 0.7 {
		t.Errorf("noise-free session only reached F=%.3f", maxF[0])
	}
	for i := 1; i < len(rates); i++ {
		if maxF[i] > maxF[i-1]+tol {
			t.Errorf("F at rate %v (%.3f) beats rate %v (%.3f) beyond tolerance %v",
				rates[i], maxF[i], rates[i-1], maxF[i-1], tol)
		}
	}
	if maxF[len(maxF)-1] > maxF[0]+tol {
		t.Errorf("20%% noise (F=%.3f) outperformed clean run (F=%.3f)", maxF[len(maxF)-1], maxF[0])
	}
}

// TestNoisyStrictPolicyErrors checks that the strict-error policy turns
// the first contradiction into a typed, non-panicking failure.
func TestNoisyStrictPolicyErrors(t *testing.T) {
	uni := dataset.GenerateUniform(10000, 2, 3)
	v, err := engine.NewView(uni, []string{"a0", "a1"})
	if err != nil {
		t.Fatal(err)
	}
	target, err := GenerateTarget(v, TargetSpec{NumAreas: 1, Size: Large}, 5)
	if err != nil {
		t.Fatal(err)
	}
	user := NewSimulatedUser(target)
	oracle := explore.NewNoisyOracle(user, 0.3, 7)
	opts := explore.DefaultOptions()
	opts.Seed = 99
	opts.ConflictPolicy = explore.ConflictStrict
	s, err := explore.NewSession(v, oracle, opts)
	if err != nil {
		t.Fatal(err)
	}
	_, runErr := explore.RunUntil(s, nil, 40)
	if runErr == nil {
		t.Skip("no row was ever re-proposed with a flipped label")
	}
	var ce *explore.ConflictError
	if !errors.As(runErr, &ce) {
		t.Fatalf("error is %T (%v), want *explore.ConflictError", runErr, runErr)
	}
	if ce.Row < 0 {
		t.Errorf("conflict error has invalid row %d", ce.Row)
	}
}
