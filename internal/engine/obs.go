package engine

import (
	"time"

	"github.com/explore-by-example/aide/internal/obs"
)

// Process-wide engine metrics, resolved once. Per-view counts remain in
// View.Stats; these aggregate across every view so /v1/metrics reflects
// total engine work regardless of how many views a server hosts.
var (
	obsQueries      = obs.GetCounter("engine.queries")
	obsRowsExamined = obs.GetCounter("engine.rows_examined")
	obsSampleCalls  = obs.GetCounter("engine.sample_calls")
	obsPathIndex    = obs.GetCounter("engine.path_index")
	obsPathGrid     = obs.GetCounter("engine.path_grid")
	obsQuerySeconds = obs.GetHistogram("engine.query_seconds")
	obsInvalidRects = obs.GetCounter("engine.invalid_rects")
)

// observeQuery records one engine query: call as
// `defer observeQuery(time.Now())` at the top of each query entry point.
func observeQuery(start time.Time) {
	obsQueries.Inc()
	obsQuerySeconds.Observe(time.Since(start).Seconds())
}
