package engine

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"github.com/explore-by-example/aide/internal/dataset"
	"github.com/explore-by-example/aide/internal/faultinject"
	"github.com/explore-by-example/aide/internal/geom"
)

// shardCounts is the shard-count matrix every bit-identity assertion
// pins, matching the golden tests in internal/eval.
var shardCounts = []int{1, 2, 4, 8}

// singleDimRects yields rects constrained in exactly one dimension —
// the SampleRect covering-index fast path.
func singleDimRects(n, d int, rng *rand.Rand) []geom.Rect {
	out := make([]geom.Rect, 0, n)
	for i := 0; i < n; i++ {
		r := make(geom.Rect, d)
		for j := range r {
			r[j] = geom.Interval{Lo: geom.NormMin, Hi: geom.NormMax}
		}
		lo := rng.Float64() * 80
		r[i%d] = geom.Interval{Lo: lo, Hi: lo + 5 + rng.Float64()*15}
		out = append(out, r)
	}
	return out
}

func TestShardedBitIdenticalToUnsharded(t *testing.T) {
	tab := dataset.GenerateSDSS(20_000, 7)
	attrs := []string{"rowc", "colc"}
	base, err := NewViewWorkers(tab, attrs, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	rects := append(randomRects(40, 2, rng), singleDimRects(10, 2, rng)...)
	for _, shards := range shardCounts {
		sv := base.WithShards(ShardOptions{Shards: shards})
		if sv.ShardCount() != shards {
			t.Fatalf("ShardCount = %d, want %d", sv.ShardCount(), shards)
		}
		if sv.Fingerprint() != base.Fingerprint() {
			t.Fatalf("shards=%d changed the fingerprint", shards)
		}
		for ri, rect := range rects {
			if got, want := sv.Count(rect), base.Count(rect); got != want {
				t.Fatalf("shards=%d rect %d: Count = %d, want %d", shards, ri, got, want)
			}
			if got, want := sv.RowsIn(rect), base.RowsIn(rect); !reflect.DeepEqual(got, want) {
				t.Fatalf("shards=%d rect %d: RowsIn differs (%d vs %d rows)", shards, ri, len(got), len(want))
			}
			ra := rand.New(rand.NewSource(int64(ri) + 100))
			rb := rand.New(rand.NewSource(int64(ri) + 100))
			if got, want := sv.SampleRect(rect, 17, ra), base.SampleRect(rect, 17, rb); !reflect.DeepEqual(got, want) {
				t.Fatalf("shards=%d rect %d: SampleRect differs\n got %v\nwant %v", shards, ri, got, want)
			}
		}
		for i := 0; i+2 < len(rects); i += 3 {
			set := rects[i : i+3]
			if got, want := sv.RowsInAny(set), base.RowsInAny(set); !reflect.DeepEqual(got, want) {
				t.Fatalf("shards=%d: RowsInAny differs at %d", shards, i)
			}
		}
	}
}

func TestShardedCacheBitIdentical(t *testing.T) {
	tab := dataset.GenerateSDSS(10_000, 3)
	base, err := NewViewWorkers(tab, []string{"rowc", "colc"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	sv := base.WithShards(ShardOptions{Shards: 4}).WithCache(NewCache(1 << 20))
	rng := rand.New(rand.NewSource(5))
	rects := randomRects(20, 2, rng)
	for ri, rect := range rects {
		c1, r1 := sv.Count(rect), sv.RowsIn(rect)
		c2, r2 := sv.Count(rect), sv.RowsIn(rect) // second round answered from the per-shard cache partitions
		if c1 != c2 || !reflect.DeepEqual(r1, r2) {
			t.Fatalf("rect %d: cached shard results differ", ri)
		}
		if want := base.Count(rect); c2 != want {
			t.Fatalf("rect %d: cached sharded Count = %d, want %d", ri, c2, want)
		}
	}
	if st := sv.Cache().Stats(); st.Hits == 0 {
		t.Fatal("per-shard cache partitions never hit")
	}
}

// shardedPair returns a 4-shard view over a small SDSS table plus the
// expected total row count.
func shardedPair(t *testing.T, opts ShardOptions) *View {
	t.Helper()
	tab := dataset.GenerateSDSS(8_000, 9)
	base, err := NewViewWorkers(tab, []string{"rowc", "colc"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	return base.WithShards(opts)
}

func TestShardPartialDegradationAndExactAPIs(t *testing.T) {
	sv := shardedPair(t, ShardOptions{Shards: 4})
	sv, tracker := sv.WithShardTracker()
	full := geom.R(0, 100, 0, 100)
	wantTotal := sv.NumRows()

	// Fault-free: exact, no degradation.
	n, err := sv.CountExact(full)
	if err != nil || n != wantTotal {
		t.Fatalf("fault-free CountExact = (%d, %v), want (%d, nil)", n, err, wantTotal)
	}
	if name, partial := tracker.Drain(); partial {
		t.Fatalf("fault-free run recorded degradation %q", name)
	}

	// Shard 2 hard-fails: partial results with the named degradation,
	// ErrPartialResult from the exact variants — never a silent answer.
	faultinject.Activate(faultinject.New(faultinject.Config{
		Seed: 1, ErrorRate: 1,
		Points: []string{faultinject.PointAt(FaultShardScan, 2)},
	}))
	defer faultinject.Deactivate()

	shard2Rows := sv.shards.shards[2].nrows
	got := sv.Count(full)
	if want := wantTotal - shard2Rows; got != want {
		t.Fatalf("degraded Count = %d, want %d (total %d minus shard 2's %d)", got, want, wantTotal, shard2Rows)
	}
	name, partial := tracker.Drain()
	if !partial || name != "shard_partial:3/4" {
		t.Fatalf("Drain = (%q, %v), want (shard_partial:3/4, true)", name, partial)
	}
	if _, err := sv.CountExact(full); !errors.Is(err, ErrPartialResult) {
		t.Fatalf("CountExact under shard failure = %v, want ErrPartialResult", err)
	}
	if _, err := sv.RowsInExact(full); !errors.Is(err, ErrPartialResult) {
		t.Fatalf("RowsInExact under shard failure = %v, want ErrPartialResult", err)
	}
	if tracker.Err() == nil {
		t.Fatal("tracker.Err() = nil with partials pending")
	}
	tracker.Drain()

	rows := sv.RowsIn(full)
	if len(rows) != wantTotal-shard2Rows {
		t.Fatalf("degraded RowsIn returned %d rows, want %d", len(rows), wantTotal-shard2Rows)
	}
}

func TestSupervisorTransitionsDeterministic(t *testing.T) {
	run := func() ([]ShardTransition, []string) {
		sv := shardedPair(t, ShardOptions{Shards: 4, CooldownOps: 3})
		full := geom.R(0, 100, 0, 100)
		want := sv.NumRows()
		faultinject.Activate(faultinject.New(faultinject.Config{
			Seed: 42, ErrorRate: 1,
			Points: []string{faultinject.PointAt(FaultShardScan, 1)},
		}))
		// Ops 1-2: shard 1 fails (both attempts) -> suspect -> quarantined.
		sv.Count(full)
		sv.Count(full)
		if st := sv.shards.sup.state(1); st != ShardQuarantined {
			t.Fatalf("after 2 failed ops shard 1 = %v, want quarantined", st)
		}
		// Ops 3-4: quarantined, skipped without attempting.
		sv.Count(full)
		sv.Count(full)
		// Faults clear; op 5 admits the recovery probe (tick 5 - tick 2 >= 3).
		faultinject.Deactivate()
		if got := sv.Count(full); got != want {
			t.Fatalf("post-recovery Count = %d, want %d", got, want)
		}
		if st := sv.shards.sup.state(1); st != ShardHealthy {
			t.Fatalf("after successful probe shard 1 = %v, want healthy", st)
		}
		var states []string
		for _, h := range sv.ShardHealth() {
			states = append(states, h.State)
		}
		return sv.ShardTransitions(), states
	}
	log1, states1 := run()
	log2, states2 := run()
	if !reflect.DeepEqual(log1, log2) {
		t.Fatalf("transition logs differ between identically seeded runs:\n%v\n%v", log1, log2)
	}
	if !reflect.DeepEqual(states1, states2) {
		t.Fatalf("health snapshots differ: %v vs %v", states1, states2)
	}
	wantLog := []ShardTransition{
		{Tick: 1, Shard: 1, From: ShardHealthy, To: ShardSuspect},
		{Tick: 2, Shard: 1, From: ShardSuspect, To: ShardQuarantined},
		{Tick: 5, Shard: 1, From: ShardQuarantined, To: ShardRecovering},
		{Tick: 5, Shard: 1, From: ShardRecovering, To: ShardHealthy},
	}
	if !reflect.DeepEqual(log1, wantLog) {
		t.Fatalf("transition log = %v, want %v", log1, wantLog)
	}
}

func TestShardProbeFailureRequarantines(t *testing.T) {
	sv := shardedPair(t, ShardOptions{Shards: 2, CooldownOps: 2})
	full := geom.R(0, 100, 0, 100)
	faultinject.Activate(faultinject.New(faultinject.Config{
		Seed: 3, ErrorRate: 1,
		Points: []string{faultinject.PointAt(FaultShardScan, 0)},
	}))
	defer faultinject.Deactivate()
	for i := 0; i < 5; i++ { // quarantine at op 2, probe fails at op 4, re-quarantine
		sv.Count(full)
	}
	log := sv.ShardTransitions()
	want := []ShardTransition{
		{Tick: 1, Shard: 0, From: ShardHealthy, To: ShardSuspect},
		{Tick: 2, Shard: 0, From: ShardSuspect, To: ShardQuarantined},
		{Tick: 4, Shard: 0, From: ShardQuarantined, To: ShardRecovering},
		{Tick: 4, Shard: 0, From: ShardRecovering, To: ShardQuarantined},
	}
	if !reflect.DeepEqual(log, want) {
		t.Fatalf("transition log = %v, want %v", log, want)
	}
}

func TestShardPanicIsolation(t *testing.T) {
	sv := shardedPair(t, ShardOptions{Shards: 4})
	sv, tracker := sv.WithShardTracker()
	full := geom.R(0, 100, 0, 100)
	// Budget 2 covers both sequential attempts of shard 3's first op:
	// the injected panics must become that shard's failure, not the
	// query's.
	faultinject.Activate(faultinject.New(faultinject.Config{
		Seed: 1, PanicBudget: 2,
		Points: []string{faultinject.PointAt(FaultShardScan, 3)},
	}))
	defer faultinject.Deactivate()
	got := sv.Count(full)
	if want := sv.NumRows() - sv.shards.shards[3].nrows; got != want {
		t.Fatalf("Count with panicking shard = %d, want %d", got, want)
	}
	if name, partial := tracker.Drain(); !partial || name != "shard_partial:3/4" {
		t.Fatalf("panic isolation recorded (%q, %v)", name, partial)
	}
	// Budget exhausted: the next op is served in full and heals the shard.
	if got := sv.Count(full); got != sv.NumRows() {
		t.Fatalf("post-budget Count = %d, want %d", got, sv.NumRows())
	}
	if st := sv.shards.sup.state(3); st != ShardHealthy {
		t.Fatalf("shard 3 = %v after successful op, want healthy", st)
	}
}

func TestShardLatencyInjectionKeepsResultsIdentical(t *testing.T) {
	tab := dataset.GenerateSDSS(6_000, 5)
	base, err := NewViewWorkers(tab, []string{"rowc", "colc"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]int, 0, 8)
	rng := rand.New(rand.NewSource(2))
	rects := randomRects(8, 2, rng)
	for _, r := range rects {
		want = append(want, base.Count(r))
	}
	// Latency plus hedging: straggler shards get a hedged second
	// attempt, and whichever attempt wins must produce the identical
	// result — latency never changes bits.
	sv := base.WithShards(ShardOptions{Shards: 4, HedgeAfter: 2 * time.Millisecond})
	faultinject.Activate(faultinject.New(faultinject.Config{
		Seed: 9, LatencyRate: 0.5, Latency: 5 * time.Millisecond,
		Points: []string{FaultShardScan},
	}))
	defer faultinject.Deactivate()
	for i, r := range rects {
		if got := sv.Count(r); got != want[i] {
			t.Fatalf("rect %d: Count under latency+hedge = %d, want %d", i, got, want[i])
		}
	}
}

func TestShardDeadlineDegradesAndRecovers(t *testing.T) {
	sv := shardedPair(t, ShardOptions{Shards: 2, Deadline: 3 * time.Millisecond, CooldownOps: 1})
	sv, tracker := sv.WithShardTracker()
	full := geom.R(0, 100, 0, 100)
	faultinject.Activate(faultinject.New(faultinject.Config{
		Seed: 4, LatencyRate: 1, Latency: 50 * time.Millisecond,
		Points: []string{faultinject.PointAt(FaultShardScan, 1)},
	}))
	got := sv.Count(full)
	if want := sv.NumRows() - sv.shards.shards[1].nrows; got != want {
		t.Fatalf("Count with shard past deadline = %d, want %d", got, want)
	}
	if name, partial := tracker.Drain(); !partial || name != "shard_partial:1/2" {
		t.Fatalf("deadline degradation = (%q, %v)", name, partial)
	}
	faultinject.Deactivate()
	// Drive the supervisor through quarantine and recovery.
	for i := 0; i < 6 && sv.shards.sup.state(1) != ShardHealthy; i++ {
		sv.Count(full)
	}
	if got := sv.Count(full); got != sv.NumRows() {
		t.Fatalf("post-recovery Count = %d, want %d", got, sv.NumRows())
	}
}

func TestShardedCancellationRecordsNothing(t *testing.T) {
	sv := shardedPair(t, ShardOptions{Shards: 4})
	sv, tracker := sv.WithShardTracker()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cv := sv.WithContext(ctx)
	if rows := cv.RowsIn(geom.R(0, 100, 0, 100)); rows != nil {
		t.Fatalf("cancelled sharded RowsIn returned %d rows", len(rows))
	}
	if name, partial := tracker.Drain(); partial {
		t.Fatalf("cancelled scan recorded degradation %q", name)
	}
	for _, h := range cv.ShardHealth() {
		if h.State != "healthy" {
			t.Fatalf("cancelled scan moved shard %d to %s", h.Index, h.State)
		}
	}
}

func TestWithShardsZeroIsUnsharded(t *testing.T) {
	v := latticeView(t)
	c := v.WithShards(ShardOptions{Shards: 0})
	if c.ShardCount() != 0 || c.ShardHealth() != nil || c.ShardTransitions() != nil {
		t.Fatal("Shards=0 must stay unsharded")
	}
	if got := c.Count(geom.R(0, 50, 0, 50)); got != v.Count(geom.R(0, 50, 0, 50)) {
		t.Fatal("unsharded copy diverged")
	}
}

func TestShardsExceedRows(t *testing.T) {
	// More shards than meaningfully splittable data: empty shards must
	// scatter/gather cleanly.
	schema := dataset.Schema{{Name: "x", Min: 0, Max: 9}, {Name: "y", Min: 0, Max: 9}}
	b := dataset.NewBuilder("tiny", schema)
	b.Add(1, 1)
	b.Add(8, 8)
	v, err := NewView(b.Build(), []string{"x", "y"})
	if err != nil {
		t.Fatal(err)
	}
	sv := v.WithShards(ShardOptions{Shards: 4})
	full := geom.R(0, 100, 0, 100)
	if got := sv.Count(full); got != 2 {
		t.Fatalf("Count = %d, want 2", got)
	}
	if got := sv.RowsIn(full); !reflect.DeepEqual(got, v.RowsIn(full)) {
		t.Fatalf("RowsIn = %v", got)
	}
}

func TestAcquireShardedWorkersSharesAndFingerprints(t *testing.T) {
	r := NewRegistry()
	tab := dataset.GenerateSDSS(5_000, 1)
	attrs := []string{"rowc", "colc"}
	plain, err := r.AcquireWorkers(tab, attrs, 1)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := r.AcquireShardedWorkers(tab, attrs, 1, ShardOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := r.AcquireShardedWorkers(tab, attrs, 1, ShardOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Fatal("same (table, attrs, workers, shards) must share one view")
	}
	if s1 == plain {
		t.Fatal("sharded and unsharded acquisitions must be distinct entries")
	}
	if s1.Fingerprint() != plain.Fingerprint() {
		t.Fatal("shard count changed the content fingerprint")
	}
	if r.Len() != 2 {
		t.Fatalf("registry holds %d entries, want 2", r.Len())
	}
	r.Release(s1)
	r.Release(s2)
	r.Release(plain)
	if r.Len() != 0 {
		t.Fatalf("registry holds %d entries after release", r.Len())
	}
}
