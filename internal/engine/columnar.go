package engine

import (
	"math"
	"math/bits"
	"slices"

	"github.com/explore-by-example/aide/internal/geom"
	"github.com/explore-by-example/aide/internal/par"
)

// gridIndex partitions the normalized space into cellsPerDim^d equal
// cells and stores the view's rows columnar, counting-sorted by flat
// cell id: slot s holds row rows[s], cell id owns the slot range
// [offsets[id], offsets[id+1]), and slabs[d][s] is the row's normalized
// value along dimension d. Per-cell zonemaps (min/max per dimension)
// let scans answer covered and disjoint cells from metadata alone;
// only cells whose zonemaps straddle the query rect touch the slabs,
// and those run a word-wise range filter over contiguous columns.
type gridIndex struct {
	dims        int
	cellsPerDim int
	cellWidth   float64
	// Columnar (SoA) layout, rows counting-sorted by cell id. Within a
	// cell, slots hold rows in ascending row-id order — the invariant
	// every deterministic-order contract in this package leans on.
	offsets []int32     // len cells+1; cell id -> slot range
	rows    []int32     // slot -> row id
	rows64  []int       // rows widened to int: row-id emission is memmove, not a per-element conversion loop
	slabs   [][]float64 // [dim][slot] -> normalized value
	// Zonemaps: actual min/max of each cell's rows per dimension (not
	// the cell's geometric bounds — zonemaps are tighter and prove
	// containment/disjointness the geometry can't). Empty cells hold
	// (+Inf, -Inf); cells containing a NaN value are poisoned to
	// (-Inf, +Inf) so they always take the per-row path, which mirrors
	// Contains' NaN semantics exactly.
	zoneMin [][]float64 // [dim][cell]
	zoneMax [][]float64
}

// numCells returns the total flat cell count.
func (g *gridIndex) numCells() int { return len(g.offsets) - 1 }

// cellRows returns the row ids of one cell (ascending).
func (g *gridIndex) cellRows(id int32) []int32 {
	return g.rows[g.offsets[id]:g.offsets[id+1]]
}

// buildGridIndex picks a resolution so the average cell holds a modest
// number of rows without exploding the cell count in high dimensions.
// Cell assignment (the per-row coordinate arithmetic) is chunked across
// the worker pool; rows are then laid out cell-major in one flat
// counting-sort pass, so each cell's slots stay in ascending row order
// regardless of worker count. The column slabs and zonemaps derive from
// that fixed layout dimension-by-dimension, also worker-count-invariant.
func buildGridIndex(ncols [][]float64, rows, workers int) *gridIndex {
	d := len(ncols)
	// Target ~64 rows per cell, capped to keep memory bounded.
	target := float64(rows) / 64
	if target < 1 {
		target = 1
	}
	per := int(math.Ceil(math.Pow(target, 1/float64(d))))
	maxPer := []int{0, 4096, 512, 64, 24, 12, 8, 6, 5}
	capPer := 5
	if d < len(maxPer) {
		capPer = maxPer[d]
	}
	if per > capPer {
		per = capPer
	}
	if per < 2 {
		per = 2
	}
	g := &gridIndex{
		dims:        d,
		cellsPerDim: per,
		cellWidth:   (geom.NormMax - geom.NormMin) / float64(per),
	}
	total := 1
	for i := 0; i < d; i++ {
		total *= per
	}
	g.offsets = make([]int32, total+1)
	g.zoneMin = make([][]float64, d)
	g.zoneMax = make([][]float64, d)
	g.slabs = make([][]float64, d)
	if rows == 0 {
		for i := 0; i < d; i++ {
			g.zoneMin[i] = make([]float64, total)
			g.zoneMax[i] = make([]float64, total)
			for c := 0; c < total; c++ {
				g.zoneMin[i][c] = math.Inf(1)
				g.zoneMax[i][c] = math.Inf(-1)
			}
		}
		return g
	}
	// Pass 1 (parallel): flat cell id of every row.
	ids := make([]int32, rows)
	par.For(kernelIndex, workers, rows, 1024, func(_, lo, hi int) {
		for r := lo; r < hi; r++ {
			ids[r] = int32(g.cellOf(ncols, r))
		}
	})
	// Pass 2 (sequential, cheap integer work): counting sort into the
	// slot array, rows ascending within each cell.
	counts := g.offsets
	for _, id := range ids {
		counts[id+1]++
	}
	for i := 1; i <= total; i++ {
		counts[i] += counts[i-1]
	}
	g.rows = make([]int32, rows)
	next := make([]int32, total)
	copy(next, counts[:total])
	for r := 0; r < rows; r++ {
		id := ids[r]
		g.rows[next[id]] = int32(r)
		next[id]++
	}
	g.rows64 = make([]int, rows)
	for s, r := range g.rows {
		g.rows64[s] = int(r)
	}
	// Pass 3 (parallel per dimension): gather each column into slot
	// order and fold the per-cell zonemaps in the same sweep.
	par.For(kernelIndex, workers, d, 1, func(_, dlo, dhi int) {
		for i := dlo; i < dhi; i++ {
			col := ncols[i]
			slab := make([]float64, rows)
			zmin := make([]float64, total)
			zmax := make([]float64, total)
			for c := 0; c < total; c++ {
				lo, hi := counts[c], counts[c+1]
				cmin, cmax := math.Inf(1), math.Inf(-1)
				nan := false
				for s := lo; s < hi; s++ {
					v := col[g.rows[s]]
					slab[s] = v
					if v != v {
						nan = true
						continue
					}
					if v < cmin {
						cmin = v
					}
					if v > cmax {
						cmax = v
					}
				}
				if nan {
					cmin, cmax = math.Inf(-1), math.Inf(1)
				}
				zmin[c], zmax[c] = cmin, cmax
			}
			g.slabs[i] = slab
			g.zoneMin[i] = zmin
			g.zoneMax[i] = zmax
		}
	})
	return g
}

// cellOf returns the flat cell id of row r.
func (g *gridIndex) cellOf(ncols [][]float64, r int) int {
	id := 0
	for i := 0; i < g.dims; i++ {
		c := int((ncols[i][r] - geom.NormMin) / g.cellWidth)
		if c >= g.cellsPerDim {
			c = g.cellsPerDim - 1
		}
		if c < 0 {
			c = 0
		}
		id = id*g.cellsPerDim + c
	}
	return id
}

// cellRange returns the [lo,hi] cell coordinates overlapping interval iv
// along one dimension, and whether the overlap is non-empty.
func (g *gridIndex) cellRange(iv geom.Interval) (int, int, bool) {
	if iv.Hi < geom.NormMin || iv.Lo > geom.NormMax || iv.Lo > iv.Hi {
		return 0, 0, false
	}
	lo := int(math.Floor((math.Max(iv.Lo, geom.NormMin) - geom.NormMin) / g.cellWidth))
	hi := int(math.Floor((math.Min(iv.Hi, geom.NormMax) - geom.NormMin) / g.cellWidth))
	if lo >= g.cellsPerDim {
		lo = g.cellsPerDim - 1
	}
	if hi >= g.cellsPerDim {
		hi = g.cellsPerDim - 1
	}
	return lo, hi, true
}

// coveredRange returns the sub-range of cell coordinates [lo,hi] along
// dimension dim whose cells lie geometrically inside rect[dim]
// (empty when lo' > hi'). Coverage is monotone in the coordinate, so
// only the two endpoints need the float comparisons — which are the
// exact expressions visitCells' full flag uses, keeping the geometric
// notion of "covered" bit-identical across the scan paths.
func (g *gridIndex) coveredRange(iv geom.Interval, lo, hi int) (int, int) {
	cLo, cHi := lo, hi
	if cellLo := geom.NormMin + float64(lo)*g.cellWidth; cellLo < iv.Lo {
		cLo = lo + 1
	}
	if cellLo := geom.NormMin + float64(hi)*g.cellWidth; cellLo+g.cellWidth > iv.Hi {
		cHi = hi - 1
	}
	return cLo, cHi
}

// cellBlock is one non-empty grid cell overlapping a query rect: its
// flat id, slot range, row ids, and whether the cell lies geometrically
// entirely inside the rect (no per-row verification needed).
type cellBlock struct {
	id   int32
	off  int32 // first slot
	rows []int32
	full bool
}

// collectCells returns the non-empty cells overlapping rect in row-major
// (odometer) order — the deterministic work list SampleRect chunks
// over. buf, when non-nil, is reused as the backing array (its contents
// are overwritten); pass nil to allocate fresh.
func (g *gridIndex) collectCells(rect geom.Rect, buf []cellBlock) []cellBlock {
	out := buf[:0]
	g.visitCells(rect, func(id int32, rows []int32, full bool) bool {
		out = append(out, cellBlock{id: id, off: g.offsets[id], rows: rows, full: full})
		return true
	})
	return out
}

// visitCells invokes fn for every non-empty cell overlapping rect, in
// row-major cell order. full is true when the cell lies geometrically
// entirely inside rect, so its rows need no verification. fn returning
// false stops the visit. This is the sequential reference walk; the
// production scans use collectCellRuns + walkRun.
func (g *gridIndex) visitCells(rect geom.Rect, fn func(id int32, rows []int32, full bool) bool) {
	lo := make([]int, g.dims)
	hi := make([]int, g.dims)
	for i := 0; i < g.dims; i++ {
		l, h, ok := g.cellRange(rect[i])
		if !ok {
			return
		}
		lo[i], hi[i] = l, h
	}
	coord := make([]int, g.dims)
	copy(coord, lo)
	for {
		id := 0
		full := true
		for i := 0; i < g.dims; i++ {
			id = id*g.cellsPerDim + coord[i]
			cellLo := geom.NormMin + float64(coord[i])*g.cellWidth
			cellHi := cellLo + g.cellWidth
			if cellLo < rect[i].Lo || cellHi > rect[i].Hi {
				full = false
			}
		}
		if rows := g.cellRows(int32(id)); len(rows) > 0 {
			if !fn(int32(id), rows, full) {
				return
			}
		}
		// Advance odometer.
		i := g.dims - 1
		for ; i >= 0; i-- {
			coord[i]++
			if coord[i] <= hi[i] {
				break
			}
			coord[i] = lo[i]
		}
		if i < 0 {
			return
		}
	}
}

// cellRun is a maximal innermost-dimension span of grid cells
// overlapping a query rect. Because cell ids are row-major, the run's
// cells have contiguous flat ids starting at idStart — and therefore
// contiguous slot ranges — which is what lets Count/RowsIn answer whole
// sub-spans with offset arithmetic. [fullLo, fullHi] is the range of
// innermost coordinates whose cells are geometrically covered by the
// rect (empty when fullLo > fullHi, e.g. when any outer dimension of
// this run is only partially covered).
type cellRun struct {
	idStart int32
	loInner int32
	n       int32
	fullLo  int32
	fullHi  int32
}

// collectCellRuns returns the cell runs overlapping rect in ascending
// flat-id (row-major) order — the work list Count/RowsIn chunk over.
// buf, when non-nil, is reused as the backing array.
func (g *gridIndex) collectCellRuns(rect geom.Rect, buf []cellRun) []cellRun {
	out := buf[:0]
	d := g.dims
	lo := make([]int, d)
	hi := make([]int, d)
	for i := 0; i < d; i++ {
		l, h, ok := g.cellRange(rect[i])
		if !ok {
			return out
		}
		lo[i], hi[i] = l, h
	}
	inner := d - 1
	iFullLo, iFullHi := g.coveredRange(rect[inner], lo[inner], hi[inner])
	n := int32(hi[inner] - lo[inner] + 1)
	coord := make([]int, d) // odometer over the outer dimensions
	copy(coord, lo)
	for {
		idStart := 0
		outerFull := true
		for i := 0; i < inner; i++ {
			idStart = idStart*g.cellsPerDim + coord[i]
			cellLo := geom.NormMin + float64(coord[i])*g.cellWidth
			if cellLo < rect[i].Lo || cellLo+g.cellWidth > rect[i].Hi {
				outerFull = false
			}
		}
		idStart = idStart*g.cellsPerDim + lo[inner]
		run := cellRun{
			idStart: int32(idStart),
			loInner: int32(lo[inner]),
			n:       n,
			fullLo:  1, // empty covered range
			fullHi:  0,
		}
		if outerFull {
			run.fullLo, run.fullHi = int32(iFullLo), int32(iFullHi)
		}
		out = append(out, run)
		i := inner - 1
		for ; i >= 0; i-- {
			coord[i]++
			if coord[i] <= hi[i] {
				break
			}
			coord[i] = lo[i]
		}
		if i < 0 {
			return out
		}
	}
}

// Zonemap classification of one cell against a query rect.
const (
	zonePartial  = iota // zonemap straddles the rect: per-row filter needed
	zoneCovered         // every row provably inside the rect
	zoneDisjoint        // no row can be inside the rect
)

// zoneClassify classifies a non-empty cell by its zonemap. NaN-poisoned
// cells ((-Inf,+Inf) bounds) always classify partial unless the rect is
// unbounded on the poisoned dimensions — in which case Contains admits
// NaN rows too, so zoneCovered stays truthful.
func (g *gridIndex) zoneClassify(rect geom.Rect, id int32) int {
	covered := true
	for i := 0; i < g.dims; i++ {
		zmin, zmax := g.zoneMin[i][id], g.zoneMax[i][id]
		if zmax < rect[i].Lo || zmin > rect[i].Hi {
			return zoneDisjoint
		}
		if zmin < rect[i].Lo || zmax > rect[i].Hi {
			covered = false
		}
	}
	if covered {
		return zoneCovered
	}
	return zonePartial
}

// zoneCoveredCell reports whether the cell's zonemap proves every one of
// its rows lies inside rect.
func (g *gridIndex) zoneCoveredCell(rect geom.Rect, id int32) bool {
	for i := 0; i < g.dims; i++ {
		if g.zoneMin[i][id] < rect[i].Lo || g.zoneMax[i][id] > rect[i].Hi {
			return false
		}
	}
	return true
}

// walkRun decomposes one cell run into segments in ascending slot
// order: fullSpan(lo, hi) for maximal slot spans whose rows are all
// provably inside rect (geometrically covered middle cells and
// zonemap-covered boundary cells, merged across adjacent and empty
// cells), and partial(id, off, end) for cells that need the per-row
// range filter. Zonemap-disjoint cells are skipped entirely. The
// decomposition is a pure function of (run, rect), so parallel scan
// passes replay it deterministically.
func (g *gridIndex) walkRun(run cellRun, rect geom.Rect, fullSpan func(lo, hi int32), partial func(id, off, end int32)) {
	spanLo, spanEnd := int32(-1), int32(-1)
	flush := func() {
		if spanLo >= 0 {
			fullSpan(spanLo, spanEnd)
			spanLo = -1
		}
	}
	for k := int32(0); k < run.n; k++ {
		inner := run.loInner + k
		if inner >= run.fullLo && inner <= run.fullHi {
			// Geometrically covered middle: one offsets lookup covers the
			// whole sub-span, empty cells and all.
			idLo := run.idStart + (run.fullLo - run.loInner)
			idHi := run.idStart + (run.fullHi - run.loInner)
			if spanLo < 0 {
				spanLo = g.offsets[idLo]
			}
			spanEnd = g.offsets[idHi+1]
			k = run.fullHi - run.loInner
			continue
		}
		id := run.idStart + k
		off, end := g.offsets[id], g.offsets[id+1]
		if off == end {
			continue // empty cell: slots stay contiguous, span survives
		}
		switch g.zoneClassify(rect, id) {
		case zoneCovered:
			if spanLo < 0 {
				spanLo = off
			}
			spanEnd = end
		case zoneDisjoint:
			flush() // rows present but excluded: the slot span breaks here
		default:
			flush()
			partial(id, off, end)
		}
	}
	flush()
}

// evalCellBits appends one bit per slot of cell id to dst (bit i of
// word w covers slot off+64w+i), set when the row passes every range
// clause of rect. Clauses the cell's zonemap already satisfies are
// skipped; the remaining clauses each sweep their contiguous column
// slab building a per-clause word that is ANDed into the result — the
// word-wise conjunction the columnar layout exists for. The match
// predicate is exactly Contains' (!(v < lo || v > hi)), NaN semantics
// included.
func (g *gridIndex) evalCellBits(rect geom.Rect, id, off, end int32, dst []uint64) []uint64 {
	n := int(end - off)
	nw := (n + 63) >> 6
	base := len(dst)
	dst = slices.Grow(dst, nw)[:base+nw]
	words := dst[base:]
	first := true
	for d := 0; d < g.dims; d++ {
		lo, hi := rect[d].Lo, rect[d].Hi
		if g.zoneMin[d][id] >= lo && g.zoneMax[d][id] <= hi {
			continue // zonemap satisfies this clause for every row
		}
		col := g.slabs[d][off:end]
		if first {
			for w := 0; w < nw; w++ {
				b := w << 6
				m := n - b
				if m > 64 {
					m = 64
				}
				var bw uint64
				for i := 0; i < m; i++ {
					v := col[b+i]
					keep := uint64(1)
					if v < lo || v > hi {
						keep = 0
					}
					bw |= keep << uint(i)
				}
				words[w] = bw
			}
			first = false
			continue
		}
		for w := 0; w < nw; w++ {
			if words[w] == 0 {
				continue
			}
			b := w << 6
			m := n - b
			if m > 64 {
				m = 64
			}
			var bw uint64
			for i := 0; i < m; i++ {
				v := col[b+i]
				keep := uint64(1)
				if v < lo || v > hi {
					keep = 0
				}
				bw |= keep << uint(i)
			}
			words[w] &= bw
		}
	}
	if first {
		// Every clause was zonemap-satisfied. Callers route such cells to
		// the span path, but stay correct if one lands here.
		for w := 0; w < nw; w++ {
			words[w] = ^uint64(0)
		}
		if tail := n & 63; tail != 0 {
			words[nw-1] = (uint64(1) << uint(tail)) - 1
		}
	}
	return dst
}

// countCell returns how many of the cell's rows lie inside rect,
// without materializing a bitmap: each clause the zonemap doesn't
// already satisfy sweeps its contiguous column slab, folding a
// branchless 0/1 per row. The common boundary cell straddles the rect
// in exactly one dimension, so this is usually a single column sweep.
func (g *gridIndex) countCell(rect geom.Rect, id, off, end int32) int {
	n := int(end - off)
	var a0, a1 int
	na := 0
	for d := 0; d < g.dims; d++ {
		if g.zoneMin[d][id] >= rect[d].Lo && g.zoneMax[d][id] <= rect[d].Hi {
			continue
		}
		switch na {
		case 0:
			a0 = d
		case 1:
			a1 = d
		}
		na++
	}
	switch na {
	case 0:
		return n
	case 1:
		lo, hi := rect[a0].Lo, rect[a0].Hi
		col := g.slabs[a0][off:end]
		matched := 0
		for _, v := range col {
			keep := 1
			if v < lo || v > hi {
				keep = 0
			}
			matched += keep
		}
		return matched
	case 2:
		lo0, hi0 := rect[a0].Lo, rect[a0].Hi
		lo1, hi1 := rect[a1].Lo, rect[a1].Hi
		col0 := g.slabs[a0][off:end]
		col1 := g.slabs[a1][off:end]
		matched := 0
		for i, v := range col0 {
			keep := 1
			if v < lo0 || v > hi0 {
				keep = 0
			}
			w := col1[i]
			if w < lo1 || w > hi1 {
				keep = 0
			}
			matched += keep
		}
		return matched
	}
	// Three or more straddled clauses: corner cells in high dimensions.
	matched := 0
	for s := off; s < end; s++ {
		keep := 1
		for d := 0; d < g.dims; d++ {
			if v := g.slabs[d][s]; v < rect[d].Lo || v > rect[d].Hi {
				keep = 0
				break
			}
		}
		matched += keep
	}
	return matched
}

// slotBitmap is a dense bitmap over the view's slots (one bit per row,
// in cell-major slot order). Query.Execute builds one per query so a
// disjunction of areas becomes bitwise OR instead of re-scans and
// map-based dedup.
type slotBitmap []uint64

func newSlotBitmap(slots int) slotBitmap {
	return make(slotBitmap, (slots+63)>>6)
}

// setRange sets slots [lo, hi).
func (b slotBitmap) setRange(lo, hi int32) {
	if lo >= hi {
		return
	}
	wlo, whi := int(lo>>6), int((hi-1)>>6)
	first := ^uint64(0) << uint(lo&63)
	last := ^uint64(0) >> uint(63-(hi-1)&63)
	if wlo == whi {
		b[wlo] |= first & last
		return
	}
	b[wlo] |= first
	for w := wlo + 1; w < whi; w++ {
		b[w] = ^uint64(0)
	}
	b[whi] |= last
}

// orCellBits ORs a cell bitmap (as produced by evalCellBits, based at
// slot off) into the slot bitmap.
func (b slotBitmap) orCellBits(off int32, words []uint64) {
	for w, bw := range words {
		for bw != 0 {
			t := bits.TrailingZeros64(bw)
			s := int(off) + w<<6 + t
			b[s>>6] |= 1 << uint(s&63)
			bw &= bw - 1
		}
	}
}

// count returns the number of set slots.
func (b slotBitmap) count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}
