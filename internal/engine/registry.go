package engine

import (
	"strings"
	"sync"

	"github.com/explore-by-example/aide/internal/dataset"
	"github.com/explore-by-example/aide/internal/obs"
)

var (
	obsRegistryHits   = obs.GetCounter("engine.registry.hits")
	obsRegistryMisses = obs.GetCounter("engine.registry.misses")
	obsRegistryDrops  = obs.GetCounter("engine.registry.drops")
	obsRegistryViews  = obs.GetGauge("engine.registry.views")
)

// regKey identifies one shareable view: table content (fingerprint, not
// pointer — two loads of the same dataset share), the ordered
// exploration attributes, the index-build worker knob, and the shard
// count (0 = unsharded). Shard timing knobs (deadline, hedge) are
// deliberately not part of the key: they are server-wide policy, and
// the first Acquire's values win for a shared view.
type regKey struct {
	table   uint64
	attrs   string
	workers int
	shards  int
}

// regEntry is one refcounted registry slot. ready closes when the build
// finishes; waiters then read view/err.
type regEntry struct {
	key   regKey
	refs  int
	ready chan struct{}
	view  *View
	err   error
}

// Registry is a refcounted, process-wide pool of shared Views. All
// sessions over the same (dataset, attrs, workers) triple get one
// immutable View whose covering and grid indexes were built exactly
// once: after the first Acquire, creating a session costs O(1) instead
// of O(index build). Concurrent first Acquires are single-flighted —
// one caller builds, the rest wait for the same view.
//
// Acquire and Release bracket a view's use; when the last reference is
// released the view is dropped and the memory becomes collectable.
// Callers typically wrap the shared view per session (WithWorkers,
// WithContext, WithCache, WithScanBuffer are all cheap struct copies)
// but must pass the exact pointer Acquire returned back to Release.
type Registry struct {
	mu      sync.Mutex
	entries map[regKey]*regEntry
	byView  map[*View]*regEntry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		entries: make(map[regKey]*regEntry),
		byView:  make(map[*View]*regEntry),
	}
}

// SharedViews is the process-wide default registry, the one aideserver
// registers its datasets with.
var SharedViews = NewRegistry()

// Acquire returns the shared view over the named attributes of tab with
// the default worker knob, building it on first use.
func (r *Registry) Acquire(tab *dataset.Table, attrs []string) (*View, error) {
	return r.AcquireWorkers(tab, attrs, 0)
}

// AcquireWorkers is Acquire with an explicit index-build worker count
// (0 automatic, 1 sequential). Each successful call takes one reference
// that must be returned with Release.
func (r *Registry) AcquireWorkers(tab *dataset.Table, attrs []string, workers int) (*View, error) {
	return r.AcquireShardedWorkers(tab, attrs, workers, ShardOptions{})
}

// AcquireShardedWorkers is AcquireWorkers for sharded views: the shared
// view scatters queries across opts.Shards cell-range shards
// (opts.Shards <= 0 builds the plain unsharded view). Sharding leaves
// the view's fingerprint unchanged — shard count is execution policy,
// not content — so durable logs recover against any shard count.
func (r *Registry) AcquireShardedWorkers(tab *dataset.Table, attrs []string, workers int, opts ShardOptions) (*View, error) {
	shards := opts.Shards
	if shards < 0 {
		shards = 0
	}
	key := regKey{table: TableFingerprint(tab), attrs: strings.Join(attrs, "\x00"), workers: workers, shards: shards}
	r.mu.Lock()
	if e, ok := r.entries[key]; ok {
		e.refs++
		r.mu.Unlock()
		<-e.ready
		if e.err != nil {
			// The builder already removed the failed entry; the bumped ref
			// dies with it.
			return nil, e.err
		}
		obsRegistryHits.Inc()
		return e.view, nil
	}
	e := &regEntry{key: key, refs: 1, ready: make(chan struct{})}
	r.entries[key] = e
	r.mu.Unlock()
	obsRegistryMisses.Inc()

	v, err := NewViewWorkers(tab, attrs, workers)
	if err == nil && shards > 0 {
		v = v.WithShards(opts)
	}
	r.mu.Lock()
	e.view, e.err = v, err
	if err != nil {
		delete(r.entries, key)
	} else {
		r.byView[v] = e
	}
	r.updateGauge()
	r.mu.Unlock()
	close(e.ready)
	return v, err
}

// Release returns one reference on a view obtained from Acquire. When
// the last reference goes, the view is dropped from the registry. It
// reports whether v was a registry view at all (false for views built
// directly with NewView — a convenience so shutdown paths can release
// unconditionally).
func (r *Registry) Release(v *View) bool {
	if v == nil {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.byView[v]
	if !ok {
		return false
	}
	e.refs--
	if e.refs <= 0 {
		delete(r.entries, e.key)
		delete(r.byView, v)
		obsRegistryDrops.Inc()
		r.updateGauge()
	}
	return true
}

// Len returns the number of live shared views.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}

// Refs returns the reference count of the entry holding v (0 when v is
// not a registry view). Test and diagnostics hook.
func (r *Registry) Refs(v *View) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.byView[v]; ok {
		return e.refs
	}
	return 0
}

// updateGauge mirrors the global registry's size into obs; callers hold
// r.mu. Private registries (tests, benchmarks) leave the gauge alone.
func (r *Registry) updateGauge() {
	if r == SharedViews {
		obsRegistryViews.Set(float64(len(r.entries)))
	}
}
