package engine

import (
	"math/rand"
	"os"
	"reflect"
	"strconv"
	"testing"

	"github.com/explore-by-example/aide/internal/dataset"
	"github.com/explore-by-example/aide/internal/faultinject"
	"github.com/explore-by-example/aide/internal/geom"
)

// chaosSeed returns the fault-injection seed, from AIDE_FAULT_SEED when
// the CI chaos matrix sets it.
func chaosSeed(t *testing.T) int64 {
	t.Helper()
	env := os.Getenv("AIDE_FAULT_SEED")
	if env == "" {
		return 1
	}
	seed, err := strconv.ParseInt(env, 10, 64)
	if err != nil {
		t.Fatalf("bad AIDE_FAULT_SEED %q: %v", env, err)
	}
	return seed
}

// TestChaosShardFaultFreeInjectorIsInvisible pins chaos property (a): an
// ACTIVE injector whose rates never fire leaves the sharded engine
// bit-identical to the unsharded reference — the fault hooks themselves
// are off the result path.
func TestChaosShardFaultFreeInjectorIsInvisible(t *testing.T) {
	tab := dataset.GenerateSDSS(8_000, 5)
	base, err := NewViewWorkers(tab, []string{"rowc", "colc"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Activate(faultinject.New(faultinject.Config{
		Seed:   chaosSeed(t),
		Points: []string{FaultShardScan, FaultShardBuild, FaultShardSample},
	}))
	defer faultinject.Deactivate()
	sv := base.WithShards(ShardOptions{Shards: 4})
	rng := rand.New(rand.NewSource(chaosSeed(t)))
	for ri, rect := range randomRects(25, 2, rng) {
		if got, want := sv.Count(rect), base.Count(rect); got != want {
			t.Fatalf("rect %d: Count = %d, want %d", ri, got, want)
		}
		if got, want := sv.RowsIn(rect), base.RowsIn(rect); !reflect.DeepEqual(got, want) {
			t.Fatalf("rect %d: RowsIn diverged under idle injector", ri)
		}
	}
}

// TestChaosShardPartialNeverWrong is the never-a-silent-wrong-answer
// invariant under randomized shard failures: every scatter either
// matches the unsharded reference bit-for-bit (no degradation reported)
// or reports shard_partial and returns a strict subset of the reference
// rows. After faults clear, the supervisor recovers every shard and
// answers are exact again.
func TestChaosShardPartialNeverWrong(t *testing.T) {
	seed := chaosSeed(t)
	tab := dataset.GenerateSDSS(8_000, 5)
	base, err := NewViewWorkers(tab, []string{"rowc", "colc"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	sv := base.WithShards(ShardOptions{Shards: 4, CooldownOps: 2})
	sv, tracker := sv.WithShardTracker()

	faultinject.Activate(faultinject.New(faultinject.Config{
		Seed: seed, ErrorRate: 0.3,
		Points: []string{FaultShardScan},
	}))
	rng := rand.New(rand.NewSource(seed))
	sawPartial := false
	for ri, rect := range randomRects(30, 2, rng) {
		want := base.RowsIn(rect)
		got := sv.RowsIn(rect)
		name, partial := tracker.Drain()
		if !partial {
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("rect %d: undegraded result differs from reference", ri)
			}
			continue
		}
		sawPartial = true
		if name == "" {
			t.Fatalf("rect %d: partial result with empty degradation name", ri)
		}
		ref := make(map[int]struct{}, len(want))
		for _, r := range want {
			ref[r] = struct{}{}
		}
		for _, r := range got {
			if _, ok := ref[r]; !ok {
				t.Fatalf("rect %d: degraded result contains row %d absent from reference", ri, r)
			}
		}
		if len(got) > len(want) {
			t.Fatalf("rect %d: degraded result larger than reference (%d > %d)", ri, len(got), len(want))
		}
	}
	if !sawPartial {
		t.Fatalf("seed %d: 30 ops at ErrorRate 0.3 never degraded — injector not reaching shards", seed)
	}

	// Faults clear: drive the supervisor through cooldown probes until
	// every shard is healthy, then results must be exact again.
	faultinject.Deactivate()
	full := geom.R(0, 100, 0, 100)
	healthyAll := func() bool {
		for _, h := range sv.ShardHealth() {
			if h.State != ShardHealthy.String() {
				return false
			}
		}
		return true
	}
	for i := 0; i < 20 && !healthyAll(); i++ {
		sv.Count(full)
	}
	if !healthyAll() {
		t.Fatalf("shards never recovered after faults cleared: %+v", sv.ShardHealth())
	}
	tracker.Drain()
	rng = rand.New(rand.NewSource(seed + 1))
	for ri, rect := range randomRects(10, 2, rng) {
		if got, want := sv.RowsIn(rect), base.RowsIn(rect); !reflect.DeepEqual(got, want) {
			t.Fatalf("rect %d: post-recovery result differs from reference", ri)
		}
	}
	if name, partial := tracker.Drain(); partial {
		t.Fatalf("post-recovery ops still degraded: %q", name)
	}
}
