package engine

import "sync"

// Scatter-gather used to allocate its scan state — cell runs, bitmap
// arenas, segment lists, and above all the per-shard row-id buffers —
// fresh on every attempt, which is why the sharded scan path weighed
// in at ~5x the unsharded bytes/op. The pools here close that gap:
// shard cores borrow their scratch per attempt, and the per-shard row
// buffers they return are adopted by the gather and recycled once the
// rows are copied into the final result. Only the final, caller-owned
// slice is freshly allocated per query.
//
// Candidate blocks from geometrically-full cells are never pooled —
// they are subslices of the immutable grid index, not scratch.

// shardScratch is one attempt's worth of shard-core scan state. Hedged
// attempts on the same shard each borrow their own, so cores stay safe
// for concurrent calls.
type shardScratch struct {
	runs   []cellRun
	blocks []cellBlock
	arena  []uint64
	segs   []scanSeg
}

var shardScratchPool = sync.Pool{New: func() any { return &shardScratch{} }}

func getShardScratch() *shardScratch  { return shardScratchPool.Get().(*shardScratch) }
func putShardScratch(s *shardScratch) { shardScratchPool.Put(s) }

// rowBufPool recycles row-id buffers that flow from shard backends to
// the gather. Ownership transfers with the buffer: a core (or a cache
// hit copy, or the remote client's decoder) hands its buffer to the
// scatter result, and gatherRows releases it after copying the rows
// into the caller's slice.
var rowBufPool sync.Pool

// minPooledRows keeps trivially small buffers out of the pool; they
// cost nothing to allocate and would evict useful large ones.
const minPooledRows = 256

// getRowBuf returns a length-n row buffer, reusing a pooled one when
// its capacity suffices.
func getRowBuf(n int) []int {
	if v := rowBufPool.Get(); v != nil {
		if buf := v.([]int); cap(buf) >= n {
			return buf[:n]
		}
	}
	return make([]int, n)
}

// releaseRowBuf returns a row buffer to the pool once its contents have
// been copied out. The caller must not touch buf afterwards.
func releaseRowBuf(buf []int) {
	if cap(buf) >= minPooledRows {
		rowBufPool.Put(buf[:0:cap(buf)]) //nolint:staticcheck // slice header boxing is noise next to the buffer it recycles
	}
}
