package engine

// This file is the sharded scatter-gather execution layer. WithShards
// splits a view's columnar grid into N contiguous cell-range shards —
// each owning its own slot slab range, rebased CSR offsets,
// per-dimension covering indexes and predicate-cache partition — and
// routes Count/RowsIn/RowsInAny/SampleRect through a supervised
// fan-out: every shard runs a sequential core, a per-shard supervisor
// tracks health (supervisor.go) with retries, optional deadlines and
// hedged second attempts, and the gather step reassembles results in
// shard order. Because shards cut at cell boundaries and gather in
// cell order, a fault-free sharded query is bit-identical to the
// unsharded path at any shard count; when a shard cannot serve, the
// query returns the healthy shards' rows plus a named degradation
// ("shard_partial:n/N") through the view's ShardTracker — never a
// silent wrong answer — and the *Exact variants return
// ErrPartialResult instead.

import (
	"context"
	"errors"
	"fmt"
	"math/bits"
	"math/rand"
	"slices"
	"sort"
	"sync"
	"time"

	"github.com/explore-by-example/aide/internal/faultinject"
	"github.com/explore-by-example/aide/internal/geom"
	"github.com/explore-by-example/aide/internal/obs"
	"github.com/explore-by-example/aide/internal/par"
)

// Per-shard fault points. Chaos tests select them with the base name
// (every shard) or faultinject.PointAt(name, i) (one shard).
const (
	// FaultShardScan fires inside Count/RowsIn/RowsInAny shard attempts.
	FaultShardScan = "engine.shard.scan"
	// FaultShardSample fires inside SampleRect shard attempts.
	FaultShardSample = "engine.shard.sample"
	// FaultShardBuild fires while a shard's indexes are being split.
	FaultShardBuild = "engine.shard.build"
)

// engine_shard_ops{state}: per-shard operation outcomes. Children are
// resolved once so the scatter hot path pays one atomic per outcome.
var (
	obsShardOK      = obs.GetCounterVec("engine_shard_ops", "state").With("ok")
	obsShardFailed  = obs.GetCounterVec("engine_shard_ops", "state").With("failed")
	obsShardSkipped = obs.GetCounterVec("engine_shard_ops", "state").With("skipped")
	// obsScatterRounds counts scatter fan-outs (one per sharded engine
	// operation; each round costs one backend call per healthy shard).
	// Sessions should spend O(1) rounds per iteration via ExecuteBatch —
	// aidebench records the measured ratio as
	// shard_roundtrips_per_iteration.
	obsScatterRounds = obs.GetCounter("engine.shard_scatter_rounds")
	obsShardRetried  = obs.GetCounterVec("engine_shard_ops", "state").With("retried")
	obsShardHedged   = obs.GetCounterVec("engine_shard_ops", "state").With("hedged")
	obsShardPartial  = obs.GetCounterVec("engine_shard_ops", "state").With("partial")
)

// ErrPartialResult is returned by the *Exact query variants when one or
// more shards could not serve and the result therefore covers only the
// healthy subset of the data.
var ErrPartialResult = errors.New("engine: partial result: one or more shards unavailable")

// errShardDeadline is the per-attempt deadline error; it drives the
// retry/supervision path like any other shard failure.
var errShardDeadline = errors.New("engine: shard attempt deadline exceeded")

// ShardOptions configures WithShards.
type ShardOptions struct {
	// Shards is the shard count. <= 0 leaves the view unsharded; 1 builds
	// a single-shard set that still exercises the scatter path.
	Shards int
	// Deadline bounds each shard attempt; 0 disables. An attempt past
	// its deadline counts as a failure (and is retried while attempts
	// remain); the abandoned goroutine finishes in the background and
	// its result is discarded.
	Deadline time.Duration
	// HedgeAfter launches a second, concurrent attempt for a shard whose
	// first attempt is still running after this long; 0 disables. The
	// first attempt to finish wins. Hedged attempts do not roll injected
	// faults, so a shard's fault stream consumption stays deterministic.
	HedgeAfter time.Duration
	// MaxAttempts is the sequential attempt budget per shard per
	// operation (retries use full-jitter backoff); 0 means 2.
	MaxAttempts int
	// CooldownOps is how many operations a quarantined shard sits out
	// before a recovery probe; 0 means 8.
	CooldownOps int
	// CooldownTime, when positive, measures the quarantine cooldown in
	// wall time instead of scatter operations: a quarantined shard is
	// probed once this long has elapsed since it entered quarantine.
	// The supervisor's clock is injectable (tests walk the full state
	// machine without sleeping). Zero keeps the CooldownOps behavior.
	CooldownTime time.Duration
}

// shard is one cell-range partition of a view's grid. Its grid shares
// the parent's zonemaps and subslices the parent's slot arrays; only
// the rebased offsets and the filtered covering indexes are new memory.
type shard struct {
	index  int
	grid   *gridIndex
	sorted [][]int32 // per-dimension covering index, rows in this shard only
	nrows  int
}

// shardSet is the sharded execution state hung off a View. It is
// immutable after construction apart from the supervisor, which is
// internally synchronized, so view copies share it freely. backends is
// the execution route per shard: the in-process localShard by default,
// a remote (shardrpc) backend where WithShardBackends overrode it.
type shardSet struct {
	n        int
	opts     ShardOptions
	shards   []*shard
	backends []ShardBackend
	remote   []bool // which backends were overridden by WithShardBackends
	sup      *supervisor
	domain   *par.Domain
}

// shardSalt is the predicate-cache key partition for one shard: index+1
// so shard 0 never collides with the unsharded salt 0.
func shardSalt(i int) uint64 { return uint64(i) + 1 }

// WithShards returns a view sharing this view's table, indexes and
// stats whose queries scatter across opts.Shards cell-range shards (see
// the package comment at the top of this file). opts.Shards <= 0
// returns an unsharded copy. The returned view keeps the receiver's
// fingerprint: shard count is an execution detail, not a content
// change, so WAL logs written against any shard count recover against
// any other.
func (v *View) WithShards(opts ShardOptions) *View {
	c := *v
	if opts.Shards <= 0 {
		c.shards = nil
		return &c
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = 2
	}
	c.shards = buildShardSet(v, opts)
	return &c
}

// ShardCount returns the view's shard count, 0 when unsharded.
func (v *View) ShardCount() int {
	if v.shards == nil {
		return 0
	}
	return v.shards.n
}

// ShardHealthInfo is one shard's health snapshot, as served by
// /healthz and /v1/slo.
type ShardHealthInfo struct {
	Index            int    `json:"index"`
	State            string `json:"state"`
	Rows             int    `json:"rows"`
	ConsecutiveFails int    `json:"consecutive_fails,omitempty"`
	// Remote marks shards routed to an out-of-process backend
	// (WithShardBackends) instead of the in-process cores.
	Remote bool `json:"remote,omitempty"`
}

// ShardHealth returns a snapshot of every shard's supervised state,
// nil when the view is unsharded.
func (v *View) ShardHealth() []ShardHealthInfo {
	if v.shards == nil {
		return nil
	}
	states, fails := v.shards.sup.snapshot()
	out := make([]ShardHealthInfo, v.shards.n)
	for i := range out {
		out[i] = ShardHealthInfo{
			Index:            i,
			State:            states[i].String(),
			Rows:             v.shards.backends[i].NumRows(),
			ConsecutiveFails: fails[i],
			Remote:           v.shards.remote[i],
		}
	}
	return out
}

// WithShardBackends returns a view copy whose shard execution routes
// the listed shard indexes through the given backends — remote shard
// workers, typically (internal/shardrpc) — while unlisted indexes keep
// their in-process cores: a mixed local/remote topology. The copy gets
// its own supervisor (backend health is a property of the topology,
// not of the shared base view) but shares the immutable shard
// partitions, so the fingerprint and the bit-identity contract are
// unchanged. It errors when the view is unsharded or an index is out
// of range.
func (v *View) WithShardBackends(backends map[int]ShardBackend) (*View, error) {
	if len(backends) == 0 {
		c := *v
		return &c, nil
	}
	if v.shards == nil {
		return nil, fmt.Errorf("engine: WithShardBackends on an unsharded view")
	}
	old := v.shards
	ns := &shardSet{
		n:        old.n,
		opts:     old.opts,
		shards:   old.shards,
		backends: make([]ShardBackend, old.n),
		remote:   make([]bool, old.n),
		sup:      newSupervisor(old.n, old.opts),
		domain:   old.domain,
	}
	copy(ns.backends, old.backends)
	copy(ns.remote, old.remote)
	for i, b := range backends {
		if i < 0 || i >= old.n {
			return nil, fmt.Errorf("engine: shard backend index %d out of range [0,%d)", i, old.n)
		}
		if b == nil {
			return nil, fmt.Errorf("engine: nil backend for shard %d", i)
		}
		ns.backends[i] = b
		ns.remote[i] = true
	}
	c := *v
	c.shards = ns
	return &c, nil
}

// ShardTransitions returns the supervisor's bounded transition log,
// nil when the view is unsharded.
func (v *View) ShardTransitions() []ShardTransition {
	if v.shards == nil {
		return nil
	}
	return v.shards.sup.transitions()
}

// ShardTracker accumulates partial-result events between drains. Wire
// one per session with WithShardTracker; the exploration loop drains it
// every iteration into IterationResult.Degradations, so a quarantined
// shard surfaces as a named degradation instead of a silently small
// answer.
type ShardTracker struct {
	mu           sync.Mutex
	events       int
	worstHealthy int
	total        int
}

// note records one partial operation that was served by healthy of
// total shards.
func (t *ShardTracker) note(healthy, total int) {
	t.mu.Lock()
	if t.events == 0 || healthy < t.worstHealthy {
		t.worstHealthy = healthy
	}
	t.events++
	t.total = total
	t.mu.Unlock()
}

// Drain returns the named degradation for the partial operations since
// the last drain — "shard_partial:n/N" where n is the worst healthy
// shard count observed — and resets. ok is false when every operation
// was complete.
func (t *ShardTracker) Drain() (string, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.events == 0 {
		return "", false
	}
	name := ShardPartialDegradation(t.worstHealthy, t.total)
	t.events = 0
	return name, true
}

// Err returns ErrPartialResult when partial operations are pending
// (without draining them), nil otherwise.
func (t *ShardTracker) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.events != 0 {
		return ErrPartialResult
	}
	return nil
}

// ShardPartialDegradation formats the named degradation for a query
// served by healthy of total shards.
func ShardPartialDegradation(healthy, total int) string {
	return fmt.Sprintf("shard_partial:%d/%d", healthy, total)
}

// WithShardTracker returns a view copy that records partial-result
// events into the returned tracker, plus the tracker. On an unsharded
// view the tracker is inert (returned for uniformity).
func (v *View) WithShardTracker() (*View, *ShardTracker) {
	c := *v
	c.tracker = &ShardTracker{}
	return &c, c.tracker
}

// noteShardOutcome publishes a partial-result event: the partial
// counter always, the session tracker when one is wired.
func (v *View) noteShardOutcome(healthy int) {
	if healthy >= v.shards.n {
		return
	}
	obsShardPartial.Inc()
	if v.tracker != nil {
		v.tracker.note(healthy, v.shards.n)
	}
}

// buildShardSet splits v's grid at cell boundaries into opts.Shards
// contiguous ranges balanced by row count. Cells never straddle a cut,
// so every global scan order (cell-major slots, per-dimension sorted
// indexes) is exactly the shard-order concatenation (or ordered merge)
// of the per-shard orders — the invariant the bit-identity guarantee
// rests on.
func buildShardSet(v *View, opts ShardOptions) *shardSet {
	g := v.grid
	n := opts.Shards
	cells := g.numCells()
	rows := len(g.rows)
	cuts := make([]int, n+1)
	cuts[n] = cells
	for i := 1; i < n; i++ {
		target := int32(i * rows / n)
		c := sort.Search(cells, func(c int) bool { return g.offsets[c] >= target })
		if c < cuts[i-1] {
			c = cuts[i-1]
		}
		cuts[i] = c
	}
	// rowShard maps row id -> owning shard, for filtering the covering
	// indexes in one pass per dimension.
	rowShard := make([]int32, rows)
	ss := &shardSet{
		n:        n,
		opts:     opts,
		shards:   make([]*shard, n),
		backends: make([]ShardBackend, n),
		remote:   make([]bool, n),
		sup:      newSupervisor(n, opts),
		domain:   par.NewDomain("engine.shards", 4*n),
	}
	for i := 0; i < n; i++ {
		pt := faultinject.PointAt(FaultShardBuild, i)
		faultinject.Latency(pt)
		faultinject.Panic(pt)
		slotLo := g.offsets[cuts[i]]
		slotHi := g.offsets[cuts[i+1]]
		sg := &gridIndex{
			dims:        g.dims,
			cellsPerDim: g.cellsPerDim,
			cellWidth:   g.cellWidth,
			offsets:     make([]int32, len(g.offsets)),
			rows:        g.rows[slotLo:slotHi],
			rows64:      g.rows64[slotLo:slotHi],
			slabs:       make([][]float64, g.dims),
			zoneMin:     g.zoneMin, // shared: cell-id indexed, cells never straddle a cut
			zoneMax:     g.zoneMax,
		}
		// Clamp-and-rebase the CSR offsets: cells outside the shard's
		// range collapse to empty (off == end), which walkRun skips while
		// keeping covered-middle spans — clamped — correct.
		for c, o := range g.offsets {
			if o < slotLo {
				o = slotLo
			} else if o > slotHi {
				o = slotHi
			}
			sg.offsets[c] = o - slotLo
		}
		for d := range sg.slabs {
			sg.slabs[d] = g.slabs[d][slotLo:slotHi]
		}
		for s := slotLo; s < slotHi; s++ {
			rowShard[g.rows[s]] = int32(i)
		}
		ss.shards[i] = &shard{
			index:  i,
			grid:   sg,
			sorted: make([][]int32, len(v.sorted)),
			nrows:  int(slotHi - slotLo),
		}
		ss.backends[i] = &localShard{sh: ss.shards[i], ncols: v.ncols}
	}
	// Filter each global covering index by shard membership, preserving
	// (value, row id) order within each shard.
	for d := range v.sorted {
		for i := 0; i < n; i++ {
			ss.shards[i].sorted[d] = make([]int32, 0, ss.shards[i].nrows)
		}
		for _, r := range v.sorted[d] {
			sh := ss.shards[rowShard[r]]
			sh.sorted[d] = append(sh.sorted[d], r)
		}
	}
	return ss
}

// scatterShards fans fn across every admitted shard, one goroutine per
// shard, supervising each: per-attempt fault hooks and panic recovery,
// full-jitter retries, optional per-attempt deadlines and a hedged
// second attempt for stragglers. It returns per-shard results with a
// validity mask and the number of shards that served. A cancelled ctx
// short-circuits without recording supervisor outcomes or failures:
// cancelled results are discarded by contract, so they must not move
// health state or look like degradations.
func scatterShards[T any](ss *shardSet, ctx context.Context, point string, fn func(b ShardBackend) (T, error)) (res []T, ok []bool, healthy int) {
	tick := ss.sup.beginOp()
	obsScatterRounds.Inc()
	res = make([]T, ss.n)
	ok = make([]bool, ss.n)
	ss.domain.Scatter(ss.n, func(i int) {
		if ctx.Err() != nil {
			return
		}
		admitted, _ := ss.sup.admit(i, tick)
		if !admitted {
			obsShardSkipped.Inc()
			return
		}
		val, err := runShardAttempts(ss, ctx, point, i, fn)
		if ctx.Err() != nil {
			// Cancelled mid-attempt: the result is discarded by contract,
			// so neither health state nor failure counts may move.
			return
		}
		if err != nil {
			ss.sup.record(i, tick, false)
			obsShardFailed.Inc()
			return
		}
		ss.sup.record(i, tick, true)
		obsShardOK.Inc()
		res[i] = val
		ok[i] = true
	})
	if ctx.Err() != nil {
		// ctx errors are sticky: any goroutine that skipped recording saw
		// the same cancellation. Report full health so the discarded
		// result records no degradation.
		return res, make([]bool, ss.n), ss.n
	}
	for i := range ok {
		if ok[i] {
			healthy++
		}
	}
	return res, ok, healthy
}

// runShardAttempts runs up to MaxAttempts sequential supervised
// attempts for one shard, with full-jitter backoff between them.
func runShardAttempts[T any](ss *shardSet, ctx context.Context, point string, i int, fn func(b ShardBackend) (T, error)) (T, error) {
	pt := faultinject.PointAt(point, i)
	var zero T
	var err error
	// Jitter timing comes from a per-call rng — it shapes retry timing
	// only, never results, so it needs no seeding discipline.
	var jitter *rand.Rand
	for a := 0; a < ss.opts.MaxAttempts; a++ {
		if a > 0 {
			obsShardRetried.Inc()
			if jitter == nil {
				jitter = rand.New(rand.NewSource(int64(i) + 1))
			}
			backoff := time.Duration(jitter.Int63n(int64((200 * time.Microsecond) << uint(a))))
			select {
			case <-ctx.Done():
				return zero, ctx.Err()
			case <-time.After(backoff):
			}
		}
		var val T
		val, err = attemptShard(ss, ctx, pt, i, fn)
		if err == nil {
			return val, nil
		}
		if ctx.Err() != nil {
			return zero, ctx.Err()
		}
	}
	return zero, err
}

// attemptShard runs one attempt. With no deadline and no hedging
// configured — the default — it executes inline on the scatter
// goroutine: no extra goroutines, no timers, nothing on the fault-free
// hot path. Otherwise the attempt runs on the shard domain with a
// deadline timer and an optional hedged duplicate; whichever attempt
// finishes first (successfully) wins, and abandoned attempts drain
// into a buffered channel in the background.
func attemptShard[T any](ss *shardSet, ctx context.Context, pt string, i int, fn func(b ShardBackend) (T, error)) (T, error) {
	if ss.opts.Deadline == 0 && ss.opts.HedgeAfter == 0 {
		return execShard(ss, i, pt, true, fn)
	}
	type result struct {
		val T
		err error
	}
	ch := make(chan result, 2) // primary + hedge; buffered so abandoned attempts never block
	ss.domain.Go(func() {
		val, err := execShard(ss, i, pt, true, fn)
		ch <- result{val, err}
	})
	var deadline, hedge <-chan time.Time
	if ss.opts.Deadline > 0 {
		dt := time.NewTimer(ss.opts.Deadline)
		defer dt.Stop()
		deadline = dt.C
	}
	if ss.opts.HedgeAfter > 0 {
		ht := time.NewTimer(ss.opts.HedgeAfter)
		defer ht.Stop()
		hedge = ht.C
	}
	outstanding := 1
	var zero T
	var firstErr error
	for {
		select {
		case r := <-ch:
			outstanding--
			if r.err == nil {
				return r.val, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
			if outstanding == 0 {
				return zero, firstErr
			}
		case <-hedge:
			hedge = nil
			obsShardHedged.Inc()
			outstanding++
			ss.domain.Go(func() {
				// Hedged attempts skip the fault hooks: the shard's
				// injected-fault stream advances once per sequential
				// attempt regardless of hedging, keeping chaos runs
				// deterministic.
				val, err := execShard(ss, i, pt, false, fn)
				ch <- result{val, err}
			})
		case <-deadline:
			return zero, errShardDeadline
		case <-ctx.Done():
			return zero, ctx.Err()
		}
	}
}

// execShard runs the shard backend with per-attempt fault hooks and
// panic isolation: an injected (or real) panic inside one shard's core
// becomes that shard's attempt error, never the query's. Remote
// backends additionally surface their own transport errors (breaker
// open, torn frame) through the same error path.
func execShard[T any](ss *shardSet, i int, pt string, rollFaults bool, fn func(b ShardBackend) (T, error)) (val T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("engine: shard %d panic: %v", i, r)
		}
	}()
	if rollFaults {
		faultinject.Latency(pt)
		faultinject.Panic(pt)
		if e := faultinject.Err(pt); e != nil {
			return val, e
		}
	}
	return fn(ss.backends[i])
}

// ---------------------------------------------------------------------
// Sharded query cores and gathers. Every core is sequential and pure
// over the shard's immutable indexes (local scratch only): attempts may
// run concurrently with their own hedges, and shardSets are shared
// across sessions.

// count is Count restricted to one shard: the same zonemap/offset
// walk as the unsharded kernel, sequential. Caching happens
// coordinator-side in countShardedCore so local and remote backends
// share one cache discipline.
func (sh *shard) count(rect geom.Rect) ShardCount {
	g := sh.grid
	var out ShardCount
	sc := getShardScratch()
	runs := g.collectCellRuns(rect, sc.runs)
	for _, run := range runs {
		g.walkRun(run, rect,
			func(slo, shi int32) { out.Matched += int64(shi - slo) },
			func(id, off, end int32) {
				out.Examined += int64(end - off)
				out.Matched += int64(g.countCell(rect, id, off, end))
			})
	}
	sc.runs = runs
	putShardScratch(sc)
	return out
}

// rowsIn is RowsIn restricted to one shard, rows in ascending slot
// (cell-major) order — the shard-order concatenation of these is
// exactly the unsharded order.
func (sh *shard) rowsIn(rect geom.Rect) ShardRows {
	// Two passes, mirroring the unsharded RowsIn: pass 1 sizes the
	// result exactly (match spans + boundary-cell bitmaps recorded in
	// pooled scratch), pass 2 fills a pooled right-sized buffer. No
	// append growth, no garbage — the gather recycles the buffer after
	// copying it out.
	g := sh.grid
	var out ShardRows
	sc := getShardScratch()
	runs := g.collectCellRuns(rect, sc.runs)
	arena := sc.arena[:0]
	segs := sc.segs[:0]
	var matched int64
	for _, run := range runs {
		g.walkRun(run, rect,
			func(slo, shi int32) {
				matched += int64(shi - slo)
				segs = append(segs, scanSeg{lo: slo, hi: shi})
			},
			func(id, off, end int32) {
				out.Examined += int64(end - off)
				base := len(arena)
				arena = g.evalCellBits(rect, id, off, end, arena)
				for _, w := range arena[base:] {
					matched += int64(bits.OnesCount64(w))
				}
				segs = append(segs, scanSeg{lo: off, hi: end, partial: true})
			})
	}
	if matched > 0 {
		rows := getRowBuf(int(matched))
		k, aw := 0, 0
		for _, sg := range segs {
			if !sg.partial {
				k += copy(rows[k:], g.rows64[sg.lo:sg.hi])
				continue
			}
			nw := int(sg.hi-sg.lo+63) >> 6
			for w := 0; w < nw; w++ {
				bw := arena[aw+w]
				s := int(sg.lo) + w<<6
				for bw != 0 {
					t := bits.TrailingZeros64(bw)
					rows[k] = g.rows64[s+t]
					k++
					bw &= bw - 1
				}
			}
			aw += nw
		}
		out.Rows = rows
	}
	sc.runs, sc.arena, sc.segs = runs, arena, segs
	putShardScratch(sc)
	return out
}

// rowsAny is RowsInAny restricted to one shard: a dense bitmap over the
// shard's slots ORs every rect, then materializes once in slot order.
func (sh *shard) rowsAny(rects []geom.Rect) ShardRows {
	g := sh.grid
	bm := newSlotBitmap(len(g.rows))
	var out ShardRows
	var scratch []uint64
	for _, rect := range rects {
		for _, run := range g.collectCellRuns(rect, nil) {
			g.walkRun(run, rect,
				func(slo, shi int32) { bm.setRange(slo, shi) },
				func(id, off, end int32) {
					out.Examined += int64(end - off)
					scratch = g.evalCellBits(rect, id, off, end, scratch[:0])
					bm.orCellBits(off, scratch)
				})
		}
	}
	if n := bm.count(); n > 0 {
		out.Rows = make([]int, 0, n)
		emitBits(&out.Rows, g, 0, []uint64(bm))
	}
	return out
}

// sampleGrid is SampleRect's grid path restricted to one shard: full
// cells contribute their row blocks, boundary cells their verified
// survivors, both in cell order.
func (sh *shard) sampleGrid(rect geom.Rect) ShardSample {
	g := sh.grid
	var out ShardSample
	sc := getShardScratch()
	blocks := g.collectCells(rect, sc.blocks)
	scratch := sc.arena
	for _, b := range blocks {
		if b.full {
			out.Full = append(out.Full, b.rows)
			continue
		}
		switch g.zoneClassify(rect, b.id) {
		case zoneCovered:
			for _, r := range b.rows {
				out.Partial = append(out.Partial, int(r))
			}
		case zoneDisjoint:
		default:
			out.Examined += int64(len(b.rows))
			end := b.off + int32(len(b.rows))
			scratch = g.evalCellBits(rect, b.id, b.off, end, scratch[:0])
			for w, bw := range scratch {
				for bw != 0 {
					t := bits.TrailingZeros64(bw)
					out.Partial = append(out.Partial, int(b.rows[w<<6+t]))
					bw &= bw - 1
				}
			}
		}
	}
	sc.blocks, sc.arena = blocks, scratch
	putShardScratch(sc)
	return out
}

// sortedSlice returns the shard's covering-index candidates for an
// interval of one dimension, in (value, row id) order.
func (sh *shard) sortedSlice(dim int, iv geom.Interval, vals []float64) []int32 {
	lo, hi := sortedRangeIn(sh.sorted[dim], vals, iv)
	return sh.sorted[dim][lo:hi]
}

// emitBits appends the row ids of set bits (based at slot off) to dst.
func emitBits(dst *[]int, g *gridIndex, off int32, words []uint64) {
	for w, bw := range words {
		for bw != 0 {
			t := bits.TrailingZeros64(bw)
			*dst = append(*dst, g.rows64[int(off)+w<<6+t])
			bw &= bw - 1
		}
	}
}

// countShardedCore scatters Count and sums the healthy shards. The
// per-shard predicate cache is consulted coordinator-side — keyed by
// shardSalt — so cached answers short-circuit local cores and remote
// round-trips alike.
func (v *View) countShardedCore(rect geom.Rect) (matched, healthy int) {
	cache := v.cache
	res, ok, healthy := scatterShards(v.shards, v.scanCtx(), FaultShardScan, func(b ShardBackend) (ShardCount, error) {
		salt := shardSalt(b.ShardIndex())
		if cache != nil {
			if e, hit := cache.get(kindCount, salt, rect); hit {
				return ShardCount{Matched: int64(e.count)}, nil
			}
		}
		out, err := b.Count(rect)
		if err != nil {
			return ShardCount{}, err
		}
		if cache != nil {
			cache.put(kindCount, salt, rect, int(out.Matched), nil)
		}
		return out, nil
	})
	var total ShardCount
	for i, r := range res {
		if ok[i] {
			total.Matched += r.Matched
			total.Examined += r.Examined
		}
	}
	v.stats.RowsExamined.Add(total.Examined)
	obsRowsExamined.Add(total.Examined)
	return int(total.Matched), healthy
}

// rowsShardedCore scatters RowsIn and concatenates in shard order.
func (v *View) rowsShardedCore(rect geom.Rect) (rows []int, healthy int) {
	cache := v.cache
	res, ok, healthy := scatterShards(v.shards, v.scanCtx(), FaultShardScan, func(b ShardBackend) (ShardRows, error) {
		salt := shardSalt(b.ShardIndex())
		if cache != nil {
			if e, hit := cache.get(kindRows, salt, rect); hit {
				out := ShardRows{}
				if e.rows != nil {
					out.Rows = getRowBuf(len(e.rows))
					copy(out.Rows, e.rows)
				}
				return out, nil
			}
		}
		out, err := b.RowsIn(rect)
		if err != nil {
			return ShardRows{}, err
		}
		if cache != nil {
			cache.put(kindRows, salt, rect, len(out.Rows), out.Rows)
		}
		return out, nil
	})
	return gatherRows(v, res, ok), healthy
}

// rowsAnyShardedCore scatters RowsInAny and concatenates in shard order.
func (v *View) rowsAnyShardedCore(rects []geom.Rect) (rows []int, healthy int) {
	res, ok, healthy := scatterShards(v.shards, v.scanCtx(), FaultShardScan, func(b ShardBackend) (ShardRows, error) {
		return b.RowsInAny(rects)
	})
	return gatherRows(v, res, ok), healthy
}

func gatherRows(v *View, res []ShardRows, ok []bool) []int {
	var examined int64
	n := 0
	for i := range res {
		if ok[i] {
			examined += res[i].Examined
			n += len(res[i].Rows)
		}
	}
	v.stats.RowsExamined.Add(examined)
	obsRowsExamined.Add(examined)
	if n == 0 {
		return nil
	}
	out := make([]int, 0, n)
	for i := range res {
		if ok[i] {
			out = append(out, res[i].Rows...)
			// The per-shard buffer's rows now live in out; recycle it.
			releaseRowBuf(res[i].Rows)
			res[i].Rows = nil
		}
	}
	return out
}

// sampleShardedCore runs SampleRect's scatter for both engine paths and
// reassembles the exact unsharded candidate layout (full blocks in cell
// order, then partial survivors in cell order; covering-index
// candidates merge back into global (value, row id) order), so the same
// rng state draws the same rows at any shard count.
func (v *View) sampleShardedCore(rect geom.Rect, n int, rng *rand.Rand) ([]int, int) {
	if dim := v.singleConstrainedDim(rect); dim >= 0 {
		obsPathIndex.Inc()
		vals := v.ncols[dim]
		iv := rect[dim]
		res, ok, healthy := scatterShards(v.shards, v.scanCtx(), FaultShardSample, func(b ShardBackend) ([]int32, error) {
			return b.SortedSlice(dim, iv)
		})
		if v.scanCtx().Err() != nil {
			return nil, healthy
		}
		var parts [][]int32
		matched := 0
		for i := range res {
			if ok[i] && len(res[i]) > 0 {
				parts = append(parts, res[i])
				matched += len(res[i])
			}
		}
		v.stats.RowsExamined.Add(int64(matched))
		obsRowsExamined.Add(int64(matched))
		if matched == 0 {
			return nil, healthy
		}
		merged := mergeSorted(parts, vals, matched)
		if n >= matched {
			out := make([]int, 0, matched)
			for _, r := range merged {
				out = append(out, int(r))
			}
			rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
			return out, healthy
		}
		out := make([]int, 0, n)
		for _, t := range floydSample(matched, n, rng) {
			out = append(out, int(merged[t]))
		}
		rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
		return out, healthy
	}

	obsPathGrid.Inc()
	res, ok, healthy := scatterShards(v.shards, v.scanCtx(), FaultShardSample, func(b ShardBackend) (ShardSample, error) {
		return b.SampleGrid(rect)
	})
	if v.scanCtx().Err() != nil {
		return nil, healthy
	}
	var full [][]int32
	fullTotal := 0
	var partial []int
	var examined int64
	for i := range res {
		if !ok[i] {
			continue
		}
		for _, b := range res[i].Full {
			full = append(full, b)
			fullTotal += len(b)
		}
		partial = append(partial, res[i].Partial...)
		examined += res[i].Examined
	}
	v.stats.RowsExamined.Add(examined)
	obsRowsExamined.Add(examined)
	total := fullTotal + len(partial)
	if total == 0 {
		return nil, healthy
	}
	if n >= total {
		out := make([]int, 0, total)
		for _, b := range full {
			for _, r := range b {
				out = append(out, int(r))
			}
		}
		out = append(out, partial...)
		rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
		return out, healthy
	}
	out := make([]int, 0, n)
	for _, idx := range floydSample(total, n, rng) {
		out = append(out, v.rowAt(full, partial, idx))
	}
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out, healthy
}

// mergeSorted k-way merges per-shard covering-index slices back into
// global (value, row id) order — sortedIndex's exact total order, so
// the merged sequence is identical to the unsharded index range.
func mergeSorted(parts [][]int32, vals []float64, total int) []int32 {
	if len(parts) == 1 {
		return parts[0]
	}
	out := make([]int32, 0, total)
	pos := make([]int, len(parts))
	for len(out) < total {
		best := -1
		var bestRow int32
		for p := range parts {
			if pos[p] >= len(parts[p]) {
				continue
			}
			r := parts[p][pos[p]]
			if best < 0 || less(vals, r, bestRow) {
				best, bestRow = p, r
			}
		}
		out = append(out, bestRow)
		pos[best]++
	}
	return out
}

// less is sortedIndex's comparator: ascending value, row id breaking
// ties.
func less(vals []float64, a, b int32) bool {
	va, vb := vals[a], vals[b]
	if va != vb {
		return va < vb
	}
	return a < b
}

// sortedRangeIn returns the half-open [lo, hi) positions in idx whose
// values fall inside iv — sortedRange generalized to any covering-index
// slice (the per-shard ones included).
func sortedRangeIn(idx []int32, vals []float64, iv geom.Interval) (int, int) {
	lo, _ := slices.BinarySearchFunc(idx, iv.Lo, func(r int32, t float64) int {
		switch {
		case vals[r] < t:
			return -1
		case vals[r] > t:
			return 1
		default:
			return 0
		}
	})
	hi := lo
	for hi < len(idx) && vals[idx[hi]] <= iv.Hi {
		hi++
	}
	return lo, hi
}

// CountExact is Count that refuses to degrade: on a sharded view with
// one or more shards unavailable it returns ErrPartialResult (the
// partial count alongside, for diagnostics). Exactness-critical callers
// — evaluation harnesses, the golden tests — use this instead of
// tolerating a silently partial answer.
func (v *View) CountExact(rect geom.Rect) (int, error) {
	if v.shards == nil {
		return v.Count(rect), nil
	}
	defer observeQuery(time.Now())
	v.stats.Queries.Add(1)
	if !v.validRect(rect) {
		obsInvalidRects.Inc()
		return 0, nil
	}
	obsPathGrid.Inc()
	matched, healthy := v.countShardedCore(rect)
	v.noteShardOutcome(healthy)
	if healthy < v.shards.n {
		return matched, ErrPartialResult
	}
	return matched, nil
}

// RowsInExact is RowsIn with CountExact's exactness contract.
func (v *View) RowsInExact(rect geom.Rect) ([]int, error) {
	if v.shards == nil {
		return v.RowsIn(rect), nil
	}
	defer observeQuery(time.Now())
	v.stats.Queries.Add(1)
	if !v.validRect(rect) {
		obsInvalidRects.Inc()
		return nil, nil
	}
	obsPathGrid.Inc()
	rows, healthy := v.rowsShardedCore(rect)
	v.noteShardOutcome(healthy)
	if healthy < v.shards.n {
		return rows, ErrPartialResult
	}
	return rows, nil
}
