package engine

import (
	"context"
	"math/rand"
	"testing"

	"github.com/explore-by-example/aide/internal/dataset"
	"github.com/explore-by-example/aide/internal/geom"
)

// TestWithContextUncancelledIdentical: binding a live context must not
// change any scan result.
func TestWithContextUncancelledIdentical(t *testing.T) {
	tab := dataset.GenerateUniform(20_000, 2, 5)
	v, err := NewView(tab, []string{"a0", "a1"})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cv := v.WithContext(ctx)
	rect := geom.R(10, 20, 60, 70)
	if a, b := v.Count(rect), cv.Count(rect); a != b {
		t.Fatalf("Count: %d vs %d with ctx", a, b)
	}
	ra, rb := v.RowsIn(rect), cv.RowsIn(rect)
	if len(ra) != len(rb) {
		t.Fatalf("RowsIn: %d vs %d rows", len(ra), len(rb))
	}
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("RowsIn row %d: %d vs %d", i, ra[i], rb[i])
		}
	}
	sa := v.SampleRect(rect, 25, rand.New(rand.NewSource(9)))
	sb := cv.SampleRect(rect, 25, rand.New(rand.NewSource(9)))
	if len(sa) != len(sb) {
		t.Fatalf("SampleRect: %d vs %d rows", len(sa), len(sb))
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("SampleRect row %d: %d vs %d", i, sa[i], sb[i])
		}
	}
}

// TestWithContextCancelledScanReturnsEarly: the contract is that a scan
// under a cancelled context returns quickly and the caller discards the
// result after checking ctx.Err().
func TestWithContextCancelledScanReturnsEarly(t *testing.T) {
	tab := dataset.GenerateUniform(50_000, 2, 5)
	v, err := NewView(tab, []string{"a0", "a1"})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cv := v.WithContext(ctx)
	rect := geom.R(0, 0, 100, 100)
	// Results under a cancelled ctx are unspecified; the call must simply
	// not block and the caller must notice cancellation.
	_ = cv.Count(rect)
	_ = cv.RowsIn(rect)
	_ = cv.SampleRect(rect, 10, rand.New(rand.NewSource(1)))
	if ctx.Err() == nil {
		t.Fatal("ctx should be cancelled")
	}
	// A nil rebind restores the never-cancelled default.
	nv := cv.WithContext(nil)
	if got, want := nv.Count(rect), v.Count(rect); got != want {
		t.Fatalf("Count after nil rebind = %d, want %d", got, want)
	}
}
