package engine

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"github.com/explore-by-example/aide/internal/dataset"
)

func TestRegistrySharesViews(t *testing.T) {
	tab := dataset.GenerateSDSS(5_000, 1)
	r := NewRegistry()
	a, err := r.Acquire(tab, []string{"rowc", "colc"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Acquire(tab, []string{"rowc", "colc"})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("second Acquire built a new view instead of sharing")
	}
	if got := r.Refs(a); got != 2 {
		t.Fatalf("refs = %d, want 2", got)
	}
	// Different attrs → different view.
	c, err := r.Acquire(tab, []string{"colc", "rowc"})
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Fatal("attr order must key distinct views")
	}
	if got := r.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2", got)
	}
	if !r.Release(a) || !r.Release(b) {
		t.Fatal("Release of registry views returned false")
	}
	if got := r.Len(); got != 1 {
		t.Fatalf("Len after releasing both refs = %d, want 1", got)
	}
	if r.Release(a) {
		t.Fatal("Release of a dropped view returned true")
	}
	plain, err := NewView(tab, []string{"rowc", "colc"})
	if err != nil {
		t.Fatal(err)
	}
	if r.Release(plain) {
		t.Fatal("Release of a non-registry view returned true")
	}
}

// TestRegistrySharesAcrossTableLoads asserts two separately generated
// but content-identical tables share one view — the registry keys by
// content fingerprint, not pointer.
func TestRegistrySharesAcrossTableLoads(t *testing.T) {
	t1 := dataset.GenerateSDSS(5_000, 1)
	t2 := dataset.GenerateSDSS(5_000, 1)
	if t1 == t2 {
		t.Fatal("want distinct table pointers")
	}
	r := NewRegistry()
	a, err := r.Acquire(t1, []string{"rowc", "colc"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Acquire(t2, []string{"rowc", "colc"})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("content-identical tables did not share a view")
	}
}

// TestRegistryConcurrentAcquire races many first acquirers and asserts
// they all get the same single-flighted view.
func TestRegistryConcurrentAcquire(t *testing.T) {
	tab := dataset.GenerateSDSS(10_000, 3)
	r := NewRegistry()
	const goroutines = 8
	views := make([]*View, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			v, err := r.AcquireWorkers(tab, []string{"rowc", "colc"}, 2)
			if err != nil {
				t.Error(err)
				return
			}
			views[g] = v
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if views[g] != views[0] {
			t.Fatal("concurrent acquirers got different views")
		}
	}
	if got := r.Refs(views[0]); got != goroutines {
		t.Fatalf("refs = %d, want %d", got, goroutines)
	}
	if got := r.Len(); got != 1 {
		t.Fatalf("Len = %d, want 1 (single-flight build)", got)
	}
}

func TestRegistryAcquireError(t *testing.T) {
	tab := dataset.GenerateSDSS(1_000, 1)
	r := NewRegistry()
	if _, err := r.Acquire(tab, []string{"no_such_attr"}); err == nil {
		t.Fatal("want error for unknown attribute")
	}
	if got := r.Len(); got != 0 {
		t.Fatalf("failed build left %d entries", got)
	}
	// The key must not be poisoned: a good acquire after a bad one works.
	if _, err := r.Acquire(tab, []string{"rowc"}); err != nil {
		t.Fatal(err)
	}
}

func TestFingerprint(t *testing.T) {
	t1 := dataset.GenerateSDSS(5_000, 1)
	v1, err := NewView(t1, []string{"rowc", "colc"})
	if err != nil {
		t.Fatal(err)
	}
	// Stable across rebuilds and worker counts.
	v1b, err := NewViewWorkers(t1, []string{"rowc", "colc"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if v1.Fingerprint() == "" || v1.Fingerprint() != v1b.Fingerprint() {
		t.Fatalf("fingerprint unstable: %q vs %q", v1.Fingerprint(), v1b.Fingerprint())
	}
	// Wrappers preserve it.
	if w := v1.WithWorkers(8).WithCache(NewCache(1 << 16)).WithScanBuffer(); w.Fingerprint() != v1.Fingerprint() {
		t.Fatal("wrappers changed the fingerprint")
	}
	// Different data, row count, or attrs → different fingerprint.
	cases := map[string]*View{}
	if t2 := dataset.GenerateSDSS(5_000, 2); true {
		v, err := NewView(t2, []string{"rowc", "colc"})
		if err != nil {
			t.Fatal(err)
		}
		cases["different seed"] = v
	}
	if t3 := dataset.GenerateSDSS(6_000, 1); true {
		v, err := NewView(t3, []string{"rowc", "colc"})
		if err != nil {
			t.Fatal(err)
		}
		cases["different row count"] = v
	}
	if v, err := NewView(t1, []string{"colc", "rowc"}); err == nil {
		cases["different attr order"] = v
	} else {
		t.Fatal(err)
	}
	for name, v := range cases {
		if v.Fingerprint() == v1.Fingerprint() {
			t.Fatalf("%s: fingerprints collide", name)
		}
	}
	// Sampled views see different rows.
	s, err := v1.Sampled(0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Fingerprint() == v1.Fingerprint() {
		t.Fatal("sampled view shares the full view's fingerprint")
	}
	// Identical regeneration matches (content hash, not pointer hash).
	if t1b := dataset.GenerateSDSS(5_000, 1); true {
		v, err := NewView(t1b, []string{"rowc", "colc"})
		if err != nil {
			t.Fatal(err)
		}
		if v.Fingerprint() != v1.Fingerprint() {
			t.Fatal("content-identical tables produced different fingerprints")
		}
	}
}

// TestScanBufferEquivalence asserts a scratch-bearing view returns the
// same results as the base view across a query sequence (the buffer is
// reused between queries, so corruption would show as cross-query
// bleed).
func TestScanBufferEquivalence(t *testing.T) {
	tab := dataset.GenerateSDSS(20_000, 21)
	base, err := NewView(tab, []string{"rowc", "colc"})
	if err != nil {
		t.Fatal(err)
	}
	buffered := base.WithScanBuffer()
	rng := rand.New(rand.NewSource(17))
	for _, rect := range randomRects(80, 2, rng) {
		if got, want := buffered.Count(rect), base.Count(rect); got != want {
			t.Fatalf("Count(%v): buffered %d, base %d", rect, got, want)
		}
		if got, want := buffered.RowsIn(rect), base.RowsIn(rect); !reflect.DeepEqual(got, want) {
			t.Fatalf("RowsIn(%v): buffered and base differ", rect)
		}
		seed := int64(rect[0].Lo * 1000)
		got := buffered.SampleRect(rect, 9, rand.New(rand.NewSource(seed)))
		want := base.SampleRect(rect, 9, rand.New(rand.NewSource(seed)))
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("SampleRect(%v): buffered and base differ", rect)
		}
	}
}
