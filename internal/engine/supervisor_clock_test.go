package engine

import (
	"testing"
	"time"
)

// TestSupervisorWallClockCooldown walks the full shard health lifecycle
// — healthy → suspect → quarantined → recovering → healthy, including a
// failed probe's re-quarantine — against the wall-time cooldown with an
// injected fake clock, so the whole walk runs without a single real
// sleep.
func TestSupervisorWallClockCooldown(t *testing.T) {
	const cooldown = 5 * time.Second
	sup := newSupervisor(2, ShardOptions{Shards: 2, CooldownTime: cooldown})
	clock := time.Unix(1700000000, 0)
	sup.now = func() time.Time { return clock }

	tick := sup.beginOp()
	if admitted, probe := sup.admit(0, tick); !admitted || probe {
		t.Fatalf("healthy shard: admitted=%v probe=%v", admitted, probe)
	}
	sup.record(0, tick, false)
	if got := sup.state(0); got != ShardSuspect {
		t.Fatalf("after 1 failure: %v, want suspect", got)
	}

	tick = sup.beginOp()
	if admitted, _ := sup.admit(0, tick); !admitted {
		t.Fatal("suspect shard not admitted")
	}
	sup.record(0, tick, false)
	if got := sup.state(0); got != ShardQuarantined {
		t.Fatalf("after 2 failures: %v, want quarantined", got)
	}

	// Quarantined: skipped no matter how many operations pass, because
	// the clock — not the op counter — owns the cooldown now.
	for i := 0; i < 50; i++ {
		tick = sup.beginOp()
		if admitted, _ := sup.admit(0, tick); admitted {
			t.Fatalf("op %d: quarantined shard admitted before cooldown elapsed", i)
		}
	}

	// One nanosecond short: still quarantined.
	clock = clock.Add(cooldown - time.Nanosecond)
	tick = sup.beginOp()
	if admitted, _ := sup.admit(0, tick); admitted {
		t.Fatal("admitted one nanosecond before cooldown elapsed")
	}

	// Cooldown elapses: exactly one probe is admitted; it fails, so the
	// shard re-quarantines with a fresh cooldown stamped at the new now.
	clock = clock.Add(time.Nanosecond)
	tick = sup.beginOp()
	admitted, probe := sup.admit(0, tick)
	if !admitted || !probe {
		t.Fatalf("after cooldown: admitted=%v probe=%v, want probe", admitted, probe)
	}
	if got := sup.state(0); got != ShardRecovering {
		t.Fatalf("probe state: %v, want recovering", got)
	}
	sup.record(0, tick, false)
	if got := sup.state(0); got != ShardQuarantined {
		t.Fatalf("after failed probe: %v, want quarantined", got)
	}
	tick = sup.beginOp()
	if admitted, _ := sup.admit(0, tick); admitted {
		t.Fatal("re-quarantined shard admitted without a second cooldown")
	}

	// Second cooldown elapses: the probe succeeds and the shard is
	// healthy again.
	clock = clock.Add(cooldown)
	tick = sup.beginOp()
	if admitted, probe := sup.admit(0, tick); !admitted || !probe {
		t.Fatalf("second probe: admitted=%v probe=%v", admitted, probe)
	}
	sup.record(0, tick, true)
	if got := sup.state(0); got != ShardHealthy {
		t.Fatalf("after successful probe: %v, want healthy", got)
	}

	// Shard 1 never failed and never moved.
	if got := sup.state(1); got != ShardHealthy {
		t.Fatalf("untouched shard: %v, want healthy", got)
	}

	want := []struct {
		from, to ShardState
	}{
		{ShardHealthy, ShardSuspect},
		{ShardSuspect, ShardQuarantined},
		{ShardQuarantined, ShardRecovering},
		{ShardRecovering, ShardQuarantined},
		{ShardQuarantined, ShardRecovering},
		{ShardRecovering, ShardHealthy},
	}
	log := sup.transitions()
	if len(log) != len(want) {
		t.Fatalf("transition log length = %d, want %d: %+v", len(log), len(want), log)
	}
	for i, w := range want {
		if log[i].Shard != 0 || log[i].From != w.from || log[i].To != w.to {
			t.Fatalf("transition %d = shard %d %v->%v, want shard 0 %v->%v",
				i, log[i].Shard, log[i].From, log[i].To, w.from, w.to)
		}
	}
}

// TestSupervisorOpTickCooldownUnchanged pins that leaving CooldownTime
// unset keeps the original operation-tick cooldown: the wall clock is
// never consulted.
func TestSupervisorOpTickCooldownUnchanged(t *testing.T) {
	sup := newSupervisor(1, ShardOptions{Shards: 1, CooldownOps: 3})
	sup.now = func() time.Time {
		t.Fatal("op-tick cooldown consulted the wall clock")
		return time.Time{}
	}

	var tick uint64
	for i := 0; i < 2; i++ {
		tick = sup.beginOp()
		sup.admit(0, tick)
		sup.record(0, tick, false)
	}
	if got := sup.state(0); got != ShardQuarantined {
		t.Fatalf("state = %v, want quarantined", got)
	}
	// Ops 3 and 4 are inside the cooldown window; op 5 (tick delta 3)
	// admits the probe.
	for i := 0; i < 2; i++ {
		tick = sup.beginOp()
		if admitted, _ := sup.admit(0, tick); admitted {
			t.Fatalf("op %d: admitted inside op-tick cooldown", i)
		}
	}
	tick = sup.beginOp()
	if admitted, probe := sup.admit(0, tick); !admitted || !probe {
		t.Fatalf("probe after op cooldown: admitted=%v probe=%v", admitted, probe)
	}
	sup.record(0, tick, true)
	if got := sup.state(0); got != ShardHealthy {
		t.Fatalf("state = %v, want healthy", got)
	}
}
