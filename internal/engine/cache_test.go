package engine

import (
	"context"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"github.com/explore-by-example/aide/internal/dataset"
	"github.com/explore-by-example/aide/internal/geom"
)

// TestCacheEquivalence asserts cached Count/RowsIn results are
// bit-identical to an uncached twin across random rects, and that
// repeats actually hit.
func TestCacheEquivalence(t *testing.T) {
	tab := dataset.GenerateSDSS(20_000, 7)
	plain, err := NewView(tab, []string{"rowc", "colc"})
	if err != nil {
		t.Fatal(err)
	}
	cache := NewCache(8 << 20)
	cached := plain.WithCache(cache)

	rng := rand.New(rand.NewSource(3))
	rects := randomRects(60, 2, rng)
	for pass := 0; pass < 2; pass++ {
		for _, rect := range rects {
			if got, want := cached.Count(rect), plain.Count(rect); got != want {
				t.Fatalf("pass %d Count(%v): cached %d, plain %d", pass, rect, got, want)
			}
			if got, want := cached.RowsIn(rect), plain.RowsIn(rect); !reflect.DeepEqual(got, want) {
				t.Fatalf("pass %d RowsIn(%v): cached and plain rows differ", pass, rect)
			}
		}
	}
	s := cache.Stats()
	if s.Hits == 0 {
		t.Fatalf("second pass over identical rects produced no hits: %+v", s)
	}
	if s.Bytes <= 0 || s.Entries == 0 {
		t.Fatalf("cache reports no occupancy after %d puts: %+v", len(rects)*2, s)
	}
}

// TestCacheHitReturnsPrivateCopy asserts a caller mutating RowsIn's
// result cannot poison later hits.
func TestCacheHitReturnsPrivateCopy(t *testing.T) {
	tab := dataset.GenerateSDSS(5_000, 1)
	plain, err := NewView(tab, []string{"rowc", "colc"})
	if err != nil {
		t.Fatal(err)
	}
	cached := plain.WithCache(NewCache(1 << 20))
	rect := geom.Rect{{Lo: 10, Hi: 60}, {Lo: 10, Hi: 60}}
	want := plain.RowsIn(rect)
	if len(want) == 0 {
		t.Fatal("test rect matched no rows")
	}
	first := cached.RowsIn(rect) // miss: fills the cache
	for i := range first {
		first[i] = -1
	}
	second := cached.RowsIn(rect) // hit
	if !reflect.DeepEqual(second, want) {
		t.Fatal("mutating a returned slice changed a later cache hit")
	}
	for i := range second {
		second[i] = -2
	}
	if third := cached.RowsIn(rect); !reflect.DeepEqual(third, want) {
		t.Fatal("mutating a hit's slice changed a later cache hit")
	}
}

// TestCacheEviction drives a tiny cache past its budget and checks it
// both evicts and keeps answering correctly.
func TestCacheEviction(t *testing.T) {
	tab := dataset.GenerateSDSS(20_000, 9)
	plain, err := NewView(tab, []string{"rowc", "colc"})
	if err != nil {
		t.Fatal(err)
	}
	cache := NewCache(0) // floored to the minimum budget
	cached := plain.WithCache(cache)
	rng := rand.New(rand.NewSource(5))
	for _, rect := range randomRects(300, 2, rng) {
		if got, want := cached.RowsIn(rect), plain.RowsIn(rect); !reflect.DeepEqual(got, want) {
			t.Fatalf("RowsIn(%v) diverged under eviction pressure", rect)
		}
	}
	s := cache.Stats()
	if s.Evictions == 0 {
		t.Fatalf("expected evictions from a minimum-size cache, got %+v", s)
	}
	if s.Bytes > s.MaxBytes {
		t.Fatalf("cache over budget: %d > %d", s.Bytes, s.MaxBytes)
	}
}

// TestCacheNeverStoresCancelledScans asserts a scan aborted by
// cancellation does not poison the cache for later callers.
func TestCacheNeverStoresCancelledScans(t *testing.T) {
	tab := dataset.GenerateSDSS(30_000, 2)
	plain, err := NewViewWorkers(tab, []string{"rowc", "colc"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewCache(1 << 20)
	cached := plain.WithCache(cache)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	dead := cached.WithContext(ctx)
	rect := geom.Rect{{Lo: 0, Hi: 90}, {Lo: 0, Hi: 90}}
	_ = dead.Count(rect)  // partial garbage, must not be stored
	_ = dead.RowsIn(rect) // partial garbage, must not be stored
	if got, want := cached.Count(rect), plain.Count(rect); got != want {
		t.Fatalf("Count after cancelled scan: got %d, want %d", got, want)
	}
	if got, want := cached.RowsIn(rect), plain.RowsIn(rect); !reflect.DeepEqual(got, want) {
		t.Fatal("RowsIn after cancelled scan diverged")
	}
}

// TestCacheConcurrentEquivalence hammers one shared cached view from 8
// goroutines with mixed cached Count/RowsIn and uncached SampleRect,
// asserting every result equals an uncached twin's. Run under -race this
// is the cache's concurrency safety net.
func TestCacheConcurrentEquivalence(t *testing.T) {
	tab := dataset.GenerateSDSS(20_000, 13)
	plain, err := NewViewWorkers(tab, []string{"rowc", "colc"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	shared := plain.WithCache(NewCache(4 << 20))

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Per-goroutine rects and rng: deterministic scripts whose
			// expected values come from the uncached twin, computed inline.
			rng := rand.New(rand.NewSource(int64(100 + g)))
			rects := randomRects(40, 2, rng)
			for i, rect := range rects {
				switch i % 3 {
				case 0:
					if got, want := shared.Count(rect), plain.Count(rect); got != want {
						errs <- "Count diverged"
						return
					}
				case 1:
					if got, want := shared.RowsIn(rect), plain.RowsIn(rect); !reflect.DeepEqual(got, want) {
						errs <- "RowsIn diverged"
						return
					}
				default:
					// SampleRect is rng-driven and must bypass the cache:
					// identical rng states on the shared and twin views must
					// produce identical samples.
					seed := int64(1000*g + i)
					got := shared.SampleRect(rect, 7, rand.New(rand.NewSource(seed)))
					want := plain.SampleRect(rect, 7, rand.New(rand.NewSource(seed)))
					if !reflect.DeepEqual(got, want) {
						errs <- "SampleRect diverged"
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
	if s := shared.Cache().Stats(); s.Hits == 0 {
		// 8 goroutines × overlapping rect scripts share rects across seeds
		// rarely; hits come from within-script repeats of RowsIn after
		// Count uses a different kind key, so just require lookups ran.
		if s.Misses == 0 {
			t.Fatalf("cache saw no traffic: %+v", s)
		}
	}
}
