// Package engine is AIDE's database substrate. The paper runs on MySQL
// with a covering index over the exploration attributes; this package
// provides the equivalent capability in-process: an exploration View over
// a table with (a) per-attribute sorted indexes, (b) a columnar
// multi-dimensional grid index over the normalized exploration space
// (flat SoA cell slabs with per-cell zonemaps), (c) uniform random
// sampling restricted to arbitrary hyper-rectangles (the paper's "sample
// extraction queries"), and (d) simple-random-sample datasets
// (Section 5.2's sampled-dataset optimization).
//
// All region arguments are in the normalized [0,100] space of geom; the
// View owns the normalizer that maps raw attribute values there.
package engine

import (
	"context"
	"fmt"
	"math"
	"math/bits"
	"math/rand"
	"slices"
	"sync/atomic"
	"time"

	"github.com/explore-by-example/aide/internal/dataset"
	"github.com/explore-by-example/aide/internal/faultinject"
	"github.com/explore-by-example/aide/internal/geom"
	"github.com/explore-by-example/aide/internal/par"
)

// Stats counts the work the engine performs on behalf of an exploration
// session. Counters are cumulative and safe for concurrent update.
type Stats struct {
	// Queries is the number of sample-extraction and evaluation queries
	// executed.
	Queries atomic.Int64
	// RowsExamined is the number of candidate rows the engine touched
	// (index entries scanned plus verification probes). Rows answered
	// from cell metadata alone (zonemaps, offset arithmetic) are free and
	// not counted.
	RowsExamined atomic.Int64
}

// Snapshot returns a plain copy of the counters.
func (s *Stats) Snapshot() (queries, rowsExamined int64) {
	return s.Queries.Load(), s.RowsExamined.Load()
}

// Reset zeroes the counters.
func (s *Stats) Reset() {
	s.Queries.Store(0)
	s.RowsExamined.Store(0)
}

// View is an indexed projection of a table onto d exploration attributes.
// It is immutable after construction and safe for concurrent readers.
type View struct {
	tab     *dataset.Table
	cols    []int // table column indexes of the exploration attributes
	norm    *geom.Normalizer
	ncols   [][]float64 // normalized column values, one slice per dimension
	grid    *gridIndex
	sorted  [][]int32 // per-dimension row ids in ascending value order
	stats   *Stats
	fp      string          // content fingerprint, set at build (fingerprint.go)
	cache   *Cache          // memoized Count/RowsIn results; nil = uncached
	buf     *scanBuf        // single-owner scan scratch; nil on shared views
	workers int             // scan worker knob: 0 auto, 1 sequential
	ctx     context.Context // scan cancellation; nil = never cancelled
	shards  *shardSet       // sharded scatter-gather execution; nil = unsharded (shard.go)
	tracker *ShardTracker   // per-session partial-result sink; nil = untracked
}

// scanBuf is per-owner scratch reused across grid scans. A view carrying
// one must be confined to a single goroutine (each exploration session
// wraps the shared view with its own via WithScanBuffer); the base
// shared view carries none and stays safe for concurrent readers.
// arenas and segs are indexed by scan-chunk id: each chunk of a parallel
// scan runs exactly once per call, so per-chunk slots never race.
type scanBuf struct {
	blocks []cellBlock
	runs   []cellRun
	arenas [][]uint64
	segs   [][]scanSeg
}

// scanSeg is one segment of a chunk's pass-1 scan decomposition: a slot
// range whose rows either all match (partial false) or filter through
// the chunk arena's next bitmap words (partial true). RowsIn's pass 2
// replays segments instead of re-walking and re-classifying cells.
type scanSeg struct {
	lo, hi  int32
	partial bool
}

// Parallel scan kernels. minScanRuns is the smallest number of cell runs
// worth chunking: below it, per-chunk bookkeeping dwarfs the scan.
var (
	kernelScan  = par.NewKernel("engine.scan")
	kernelIndex = par.NewKernel("engine.index_build")
)

const (
	minScanRuns   = 4
	minScanBlocks = 8
)

// NewView builds a View over the named exploration attributes, creating
// the covering index (normalized columns + columnar grid index) with the
// default worker count (AIDE_WORKERS or GOMAXPROCS).
func NewView(tab *dataset.Table, attrs []string) (*View, error) {
	return NewViewWorkers(tab, attrs, 0)
}

// NewViewWorkers is NewView with an explicit worker count for both index
// construction and subsequent scans: 0 means automatic, 1 forces the
// sequential path. The built view is identical at every worker count.
func NewViewWorkers(tab *dataset.Table, attrs []string, workers int) (*View, error) {
	cols, err := tab.ColumnIndexes(attrs)
	if err != nil {
		return nil, err
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("engine: view needs at least one attribute")
	}
	norm, err := tab.Normalizer(cols)
	if err != nil {
		return nil, err
	}
	v := &View{tab: tab, cols: cols, norm: norm, stats: &Stats{}, workers: workers}
	v.fp = viewFingerprint(tab, attrs)
	rows := tab.NumRows()
	v.ncols = make([][]float64, len(cols))
	v.sorted = make([][]int32, len(cols))
	// The per-attribute work items — normalize the column, then sort its
	// row ids — are independent, so attributes build concurrently; the
	// grid index then assigns rows to cells with a parallel coordinate
	// pass. Every step writes disjoint slots, so the result is identical
	// at any worker count.
	par.For(kernelIndex, workers, len(cols), 1, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			src := tab.Col(v.cols[i])
			nc := make([]float64, len(src))
			for r, raw := range src {
				nc[r] = norm.ToNormValue(i, raw)
			}
			v.ncols[i] = nc
			v.sorted[i] = sortedIndex(nc)
		}
	})
	v.grid = buildGridIndex(v.ncols, rows, workers)
	return v, nil
}

// WithWorkers returns a view sharing this view's table, indexes and
// stats, whose scans use the given worker count (0 automatic, 1
// sequential). It is the per-session worker knob: the underlying view
// stays immutable and safe for concurrent readers.
func (v *View) WithWorkers(workers int) *View {
	c := *v
	c.workers = workers
	return &c
}

// Workers returns the view's scan worker knob (0 = automatic).
func (v *View) Workers() int { return v.workers }

// WithContext returns a view sharing this view's table, indexes and
// stats whose scans cooperatively stop — at the next chunk boundary —
// once ctx is cancelled. A cancelled scan returns partial, meaningless
// results (Count/RowsIn/SampleRect keep their error-free signatures), so
// callers MUST check ctx.Err() after each query and discard results on
// cancellation; the steering loop in internal/explore does exactly that.
// A nil ctx restores the never-cancelled default.
func (v *View) WithContext(ctx context.Context) *View {
	c := *v
	if ctx == context.Background() {
		ctx = nil
	}
	c.ctx = ctx
	return &c
}

// WithScanBuffer returns a view sharing this view's table, indexes and
// stats that reuses private scratch buffers (cell-run lists, cell-block
// lists, bitmap arenas) across grid scans instead of allocating fresh
// ones per query. The returned view must be confined to one goroutine
// (sessions are); the receiver is unchanged and stays safe for
// concurrent readers.
func (v *View) WithScanBuffer() *View {
	c := *v
	c.buf = &scanBuf{}
	return &c
}

// collect returns the cell blocks overlapping rect, reusing the view's
// scan buffer when it has one. The returned slice is valid until the
// owner's next query.
func (v *View) collect(rect geom.Rect) []cellBlock {
	if v.buf == nil {
		return v.grid.collectCells(rect, nil)
	}
	v.buf.blocks = v.grid.collectCells(rect, v.buf.blocks)
	return v.buf.blocks
}

// collectRuns returns the cell runs overlapping rect, reusing the view's
// scan buffer when it has one. The returned slice is valid until the
// owner's next query.
func (v *View) collectRuns(rect geom.Rect) []cellRun {
	if v.buf == nil {
		return v.grid.collectCellRuns(rect, nil)
	}
	v.buf.runs = v.grid.collectCellRuns(rect, v.buf.runs)
	return v.buf.runs
}

// ensureArenas sizes the per-chunk scratch tables before a parallel
// scan launches. It must run on the caller's goroutine: the kernels only
// index the tables, never grow them, so per-chunk slots can't race.
func (v *View) ensureArenas(chunks int) {
	if v.buf == nil || len(v.buf.arenas) >= chunks {
		return
	}
	a := make([][]uint64, chunks)
	copy(a, v.buf.arenas)
	v.buf.arenas = a
	s := make([][]scanSeg, chunks)
	copy(s, v.buf.segs)
	v.buf.segs = s
}

// chunkArena returns the reusable bitmap arena for one scan chunk,
// reset to length zero. Chunk indexes are dense and each runs exactly
// once per scan, so per-chunk slots never race even though chunks
// execute on pool workers. Bufferless views get a fresh arena with
// enough capacity that a typical boundary shell never regrows it.
func (v *View) chunkArena(chunk int) []uint64 {
	if v.buf == nil {
		return make([]uint64, 0, 512)
	}
	return v.buf.arenas[chunk][:0]
}

// saveChunkArena stows a chunk's (possibly grown) arena back into the
// scan buffer for reuse by the next query.
func (v *View) saveChunkArena(chunk int, arena []uint64) {
	if v.buf != nil {
		v.buf.arenas[chunk] = arena
	}
}

// chunkSegs returns the reusable segment list for one scan chunk, reset
// to length zero; saveChunkSegs stows it back after the scan.
func (v *View) chunkSegs(chunk int) []scanSeg {
	if v.buf == nil {
		return make([]scanSeg, 0, 256)
	}
	return v.buf.segs[chunk][:0]
}

func (v *View) saveChunkSegs(chunk int, segs []scanSeg) {
	if v.buf != nil {
		v.buf.segs[chunk] = segs
	}
}

// scanCtx returns the view's cancellation context (Background when
// unset).
func (v *View) scanCtx() context.Context {
	if v.ctx == nil {
		return context.Background()
	}
	return v.ctx
}

// sortedIndex returns row ids ordered by ascending value: one column of
// the covering index. Range lookups on a single attribute binary-search
// this instead of walking grid cells. Equal values order by ascending
// row id — a total order, so a k-way merge of per-shard subsequences
// reproduces this exact sequence at any shard count.
func sortedIndex(vals []float64) []int32 {
	idx := make([]int32, len(vals))
	for i := range idx {
		idx[i] = int32(i)
	}
	slices.SortFunc(idx, func(a, b int32) int {
		va, vb := vals[a], vals[b]
		switch {
		case va < vb:
			return -1
		case va > vb:
			return 1
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	})
	return idx
}

// sortedRange returns the half-open [lo, hi) positions in sorted[dim]
// whose values fall inside iv.
func (v *View) sortedRange(dim int, iv geom.Interval) (int, int) {
	idx := v.sorted[dim]
	vals := v.ncols[dim]
	lo, _ := slices.BinarySearchFunc(idx, iv.Lo, func(r int32, t float64) int {
		switch {
		case vals[r] < t:
			return -1
		case vals[r] > t:
			return 1
		default:
			return 0
		}
	})
	// Advance lo past equal-to-Lo collisions resolved leftward by the
	// search; BinarySearchFunc returns the first match position already.
	hi := lo
	for hi < len(idx) && vals[idx[hi]] <= iv.Hi {
		hi++
	}
	// The linear advance above is O(matches); for the narrow boundary
	// slabs this fast path serves, matches are few relative to the table.
	return lo, hi
}

// singleConstrainedDim reports the only dimension of rect narrower than
// the full domain, or -1 when zero or several dimensions are constrained.
func (v *View) singleConstrainedDim(rect geom.Rect) int {
	dim := -1
	for i := range rect {
		if rect[i].Lo <= geom.NormMin && rect[i].Hi >= geom.NormMax {
			continue
		}
		if dim >= 0 {
			return -1
		}
		dim = i
	}
	return dim
}

// validRect reports whether rect is a well-formed query region for this
// view: the view's dimensionality with NaN-free, non-inverted intervals.
// An invalid rect matches no rows, so the scan entry points return empty
// results for it instead of feeding NaN into the grid-cell arithmetic
// (where int(NaN) would index out of range). ±Inf endpoints are fine:
// cellRange clamps them to the domain.
func (v *View) validRect(rect geom.Rect) bool {
	if len(rect) != len(v.cols) {
		return false
	}
	for _, iv := range rect {
		if math.IsNaN(iv.Lo) || math.IsNaN(iv.Hi) || iv.Lo > iv.Hi {
			return false
		}
	}
	return true
}

// Table returns the underlying table.
func (v *View) Table() *dataset.Table { return v.tab }

// Attrs returns the exploration attribute names in order.
func (v *View) Attrs() []string {
	out := make([]string, len(v.cols))
	for i, c := range v.cols {
		out[i] = v.tab.Schema()[c].Name
	}
	return out
}

// Dims returns the dimensionality of the exploration space.
func (v *View) Dims() int { return len(v.cols) }

// NumRows returns the number of rows visible through the view.
func (v *View) NumRows() int { return v.tab.NumRows() }

// Normalizer returns the raw<->normalized mapping for the view's
// attributes.
func (v *View) Normalizer() *geom.Normalizer { return v.norm }

// Stats returns the engine counters for this view.
func (v *View) Stats() *Stats { return v.stats }

// NormPoint returns row's exploration attributes in normalized space.
func (v *View) NormPoint(row int) geom.Point {
	p := make(geom.Point, len(v.ncols))
	for i := range v.ncols {
		p[i] = v.ncols[i][row]
	}
	return p
}

// RawPoint returns row's exploration attributes in raw space.
func (v *View) RawPoint(row int) geom.Point {
	return v.tab.Project(row, v.cols)
}

// FullRow returns the entire row (all table columns), the tuple a user
// would review.
func (v *View) FullRow(row int) geom.Point { return v.tab.Row(row) }

// Contains reports whether the row's normalized point lies in rect.
func (v *View) Contains(rect geom.Rect, row int) bool {
	for i := range v.ncols {
		if val := v.ncols[i][row]; val < rect[i].Lo || val > rect[i].Hi {
			return false
		}
	}
	return true
}

// MatchesAny reports whether the row lies in any of the rects.
func (v *View) MatchesAny(rects []geom.Rect, row int) bool {
	for _, r := range rects {
		if v.Contains(r, row) {
			return true
		}
	}
	return false
}

// Count returns the number of rows inside rect (normalized space).
// Maximal slot spans whose cells are covered by rect — geometrically or
// by their zonemaps — are answered from offset arithmetic alone; only
// boundary cells whose zonemaps straddle the rect run the columnar range
// filter. Cell runs are counted in parallel. With a cache attached
// (WithCache), repeated rects return the memoized count — bit-identical
// to a fresh scan, since the view is immutable.
func (v *View) Count(rect geom.Rect) int {
	defer observeQuery(time.Now())
	faultinject.Latency("engine.scan")
	faultinject.Panic("engine.scan")
	v.stats.Queries.Add(1)
	if !v.validRect(rect) {
		obsInvalidRects.Inc()
		return 0
	}
	if v.shards != nil {
		obsPathGrid.Inc()
		matched, healthy := v.countShardedCore(rect)
		v.noteShardOutcome(healthy)
		return matched
	}
	if v.cache != nil {
		if e, ok := v.cache.get(kindCount, 0, rect); ok {
			return e.count
		}
	}
	obsPathGrid.Inc()
	g := v.grid
	runs := v.collectRuns(rect)
	type counts struct{ matched, examined int64 }
	parts, err := par.MapCtx(v.scanCtx(), kernelScan, v.workers, len(runs), minScanRuns, func(_, lo, hi int) counts {
		var c counts
		for _, run := range runs[lo:hi] {
			g.walkRun(run, rect,
				func(slo, shi int32) { c.matched += int64(shi - slo) },
				func(id, off, end int32) {
					c.examined += int64(end - off)
					c.matched += int64(g.countCell(rect, id, off, end))
				})
		}
		return c
	})
	var total counts
	for _, c := range parts {
		total.matched += c.matched
		total.examined += c.examined
	}
	v.stats.RowsExamined.Add(total.examined)
	obsRowsExamined.Add(total.examined)
	if v.cache != nil && err == nil {
		// Never memoize a cancelled scan: its partial result is garbage by
		// contract, and a poisoned entry would outlive the cancellation.
		v.cache.put(kindCount, 0, rect, int(total.matched), nil)
	}
	return int(total.matched)
}

// RowsIn returns all row ids inside rect (normalized space). The order is
// unspecified but deterministic: grid cells in row-major order, rows
// ascending within each cell, independent of the worker count. The scan
// is two deterministic parallel passes over the overlapping cell runs:
// pass one answers metadata-covered slot spans from offsets and
// evaluates boundary cells into per-chunk match bitmaps (word-wise AND
// of the per-attribute range clauses); pass two converts spans and
// bitmaps into row ids, each chunk writing a disjoint range of the
// exactly-sized result. With a cache attached (WithCache), repeated
// rects return a copy of the memoized rows in that same order.
func (v *View) RowsIn(rect geom.Rect) []int {
	defer observeQuery(time.Now())
	faultinject.Latency("engine.scan")
	faultinject.Panic("engine.scan")
	v.stats.Queries.Add(1)
	if !v.validRect(rect) {
		obsInvalidRects.Inc()
		return nil
	}
	if v.shards != nil {
		obsPathGrid.Inc()
		rows, healthy := v.rowsShardedCore(rect)
		v.noteShardOutcome(healthy)
		return rows
	}
	if v.cache != nil {
		if e, ok := v.cache.get(kindRows, 0, rect); ok {
			if e.rows == nil {
				return nil
			}
			// Callers may mutate the returned slice, so every hit hands out
			// a private copy.
			out := make([]int, len(e.rows))
			copy(out, e.rows)
			return out
		}
	}
	obsPathGrid.Inc()
	g := v.grid
	runs := v.collectRuns(rect)
	// Pass 1: per-chunk match counts and boundary-cell bitmaps. The arena
	// holds each partial cell's bitmap consecutively in cell order, so
	// pass 2 can replay the same walk and consume words sequentially.
	type chunkScan struct {
		arena    []uint64
		segs     []scanSeg
		matched  int64
		examined int64
	}
	v.ensureArenas(par.ChunkCount(v.workers, len(runs), minScanRuns))
	parts, err := par.MapCtx(v.scanCtx(), kernelScan, v.workers, len(runs), minScanRuns, func(chunk, lo, hi int) chunkScan {
		c := chunkScan{arena: v.chunkArena(chunk), segs: v.chunkSegs(chunk)}
		for _, run := range runs[lo:hi] {
			g.walkRun(run, rect,
				func(slo, shi int32) {
					c.matched += int64(shi - slo)
					c.segs = append(c.segs, scanSeg{lo: slo, hi: shi})
				},
				func(id, off, end int32) {
					c.examined += int64(end - off)
					base := len(c.arena)
					c.arena = g.evalCellBits(rect, id, off, end, c.arena)
					for _, w := range c.arena[base:] {
						c.matched += int64(bits.OnesCount64(w))
					}
					c.segs = append(c.segs, scanSeg{lo: off, hi: end, partial: true})
				})
		}
		return c
	})
	if err != nil {
		// Cancelled mid-scan: the parts are torn garbage by contract.
		return nil
	}
	var examined, n int64
	for _, c := range parts {
		examined += c.examined
		n += c.matched
	}
	v.stats.RowsExamined.Add(examined)
	obsRowsExamined.Add(examined)
	if n == 0 {
		for chunk := range parts {
			v.saveChunkArena(chunk, parts[chunk].arena)
			v.saveChunkSegs(chunk, parts[chunk].segs)
		}
		if v.cache != nil {
			v.cache.put(kindRows, 0, rect, 0, nil)
		}
		return nil
	}
	// Pass 2: emit row ids by replaying each chunk's recorded segments —
	// full spans memmove out of the widened slot array, partial segments
	// walk their arena bitmap words. Chunk boundaries are recomputed
	// identically (same workers/n/minChunk), so parts[chunk] lines up
	// with its runs, and each chunk writes out[offs[chunk]:offs[chunk+1]]
	// — disjoint, deterministic, race-free.
	out := make([]int, n)
	pre := int64(0)
	offs := make([]int64, len(parts)+1)
	for i, c := range parts {
		offs[i] = pre
		pre += c.matched
	}
	offs[len(parts)] = pre
	err = par.ForCtx(v.scanCtx(), kernelScan, v.workers, len(runs), minScanRuns, func(chunk, _, _ int) {
		dst := out[offs[chunk]:offs[chunk+1]]
		arena := parts[chunk].arena
		k, aw := 0, 0
		for _, sg := range parts[chunk].segs {
			if !sg.partial {
				k += copy(dst[k:], g.rows64[sg.lo:sg.hi])
				continue
			}
			nw := int(sg.hi-sg.lo+63) >> 6
			for w := 0; w < nw; w++ {
				bw := arena[aw+w]
				s := int(sg.lo) + w<<6
				for bw != 0 {
					t := bits.TrailingZeros64(bw)
					dst[k] = g.rows64[s+t]
					k++
					bw &= bw - 1
				}
			}
			aw += nw
		}
		v.saveChunkArena(chunk, arena)
		v.saveChunkSegs(chunk, parts[chunk].segs)
	})
	if err != nil {
		return nil
	}
	if v.cache != nil {
		// The cache stores its own copy (see Cache.put): never a cancelled
		// scan's garbage, never memory the caller can mutate.
		v.cache.put(kindRows, 0, rect, len(out), out)
	}
	return out
}

// RowsInAny returns all row ids inside at least one of the rects — the
// disjunction primitive behind Query.Execute — in RowsIn's deterministic
// order (grid cells row-major, rows ascending within each cell). Each
// disjunct is evaluated with the same zonemap/offset metadata fast paths
// as RowsIn, but results accumulate by bitwise OR into one dense bitmap
// over the cell-major slot space, so overlapping areas dedup for free
// and row ids materialize exactly once at the end. A single-rect
// disjunction delegates to RowsIn to keep the predicate cache in play.
func (v *View) RowsInAny(rects []geom.Rect) []int {
	if len(rects) == 1 {
		return v.RowsIn(rects[0])
	}
	defer observeQuery(time.Now())
	faultinject.Latency("engine.scan")
	faultinject.Panic("engine.scan")
	v.stats.Queries.Add(1)
	if len(rects) == 0 {
		return nil
	}
	if v.shards != nil {
		valid := make([]geom.Rect, 0, len(rects))
		for _, rect := range rects {
			if v.validRect(rect) {
				valid = append(valid, rect)
			} else {
				obsInvalidRects.Inc()
			}
		}
		obsPathGrid.Inc()
		rows, healthy := v.rowsAnyShardedCore(valid)
		v.noteShardOutcome(healthy)
		return rows
	}
	g := v.grid
	bm := newSlotBitmap(len(g.rows))
	var examined int64
	var scratch []uint64
	for _, rect := range rects {
		if v.scanCtx().Err() != nil {
			return nil
		}
		if !v.validRect(rect) {
			obsInvalidRects.Inc()
			continue
		}
		obsPathGrid.Inc()
		for _, run := range v.collectRuns(rect) {
			g.walkRun(run, rect,
				func(slo, shi int32) { bm.setRange(slo, shi) },
				func(id, off, end int32) {
					examined += int64(end - off)
					scratch = g.evalCellBits(rect, id, off, end, scratch[:0])
					bm.orCellBits(off, scratch)
				})
		}
	}
	v.stats.RowsExamined.Add(examined)
	obsRowsExamined.Add(examined)
	n := bm.count()
	if n == 0 {
		return nil
	}
	out := make([]int, 0, n)
	for w, bw := range bm {
		base := w << 6
		for bw != 0 {
			t := bits.TrailingZeros64(bw)
			out = append(out, g.rows64[base+t])
			bw &= bw - 1
		}
	}
	return out
}

// scanRect visits every row inside rect via the grid index, invoking fn
// for each; fn returning false stops the scan. Rows of cells fully
// contained in rect are emitted without per-row verification. This is
// the sequential per-row reference path; Count/RowsIn use the chunked
// cell-run scan with the zonemap/offset metadata fast paths instead
// (benchmarked against this in bench_test.go).
func (v *View) scanRect(rect geom.Rect, fn func(row int) bool) {
	if !v.validRect(rect) {
		obsInvalidRects.Inc()
		return
	}
	obsPathGrid.Inc()
	examined := int64(0)
	defer func() {
		v.stats.RowsExamined.Add(examined)
		obsRowsExamined.Add(examined)
	}()
	v.grid.visitCells(rect, func(_ int32, rows []int32, full bool) bool {
		examined += int64(len(rows))
		for _, r := range rows {
			if full || v.Contains(rect, int(r)) {
				if !fn(int(r)) {
					return false
				}
			}
		}
		return true
	})
}

// Sampled returns a new View over a simple random sample of the
// underlying table (each row kept independently is approximated by a
// fixed-size SRS of round(fraction*n) rows), per Section 5.2. Attribute
// domains — and therefore the normalized space — are preserved.
func (v *View) Sampled(fraction float64, seed int64) (*View, error) {
	if fraction <= 0 || fraction > 1 {
		return nil, fmt.Errorf("engine: sample fraction %v out of (0,1]", fraction)
	}
	n := v.tab.NumRows()
	k := int(math.Round(fraction * float64(n)))
	if k < 1 {
		k = 1
	}
	rng := rand.New(rand.NewSource(seed))
	rows := rng.Perm(n)[:k]
	sub := v.tab.Subset(v.tab.Name()+"_sample", rows)
	return NewView(sub, v.Attrs())
}
