// Package engine is AIDE's database substrate. The paper runs on MySQL
// with a covering index over the exploration attributes; this package
// provides the equivalent capability in-process: an exploration View over
// a table with (a) per-attribute sorted indexes, (b) a multi-dimensional
// grid index over the normalized exploration space, (c) uniform random
// sampling restricted to arbitrary hyper-rectangles (the paper's "sample
// extraction queries"), and (d) simple-random-sample datasets
// (Section 5.2's sampled-dataset optimization).
//
// All region arguments are in the normalized [0,100] space of geom; the
// View owns the normalizer that maps raw attribute values there.
package engine

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"slices"
	"sync/atomic"
	"time"

	"github.com/explore-by-example/aide/internal/dataset"
	"github.com/explore-by-example/aide/internal/faultinject"
	"github.com/explore-by-example/aide/internal/geom"
	"github.com/explore-by-example/aide/internal/par"
)

// Stats counts the work the engine performs on behalf of an exploration
// session. Counters are cumulative and safe for concurrent update.
type Stats struct {
	// Queries is the number of sample-extraction and evaluation queries
	// executed.
	Queries atomic.Int64
	// RowsExamined is the number of candidate rows the engine touched
	// (index entries scanned plus verification probes).
	RowsExamined atomic.Int64
}

// Snapshot returns a plain copy of the counters.
func (s *Stats) Snapshot() (queries, rowsExamined int64) {
	return s.Queries.Load(), s.RowsExamined.Load()
}

// Reset zeroes the counters.
func (s *Stats) Reset() {
	s.Queries.Store(0)
	s.RowsExamined.Store(0)
}

// View is an indexed projection of a table onto d exploration attributes.
// It is immutable after construction and safe for concurrent readers.
type View struct {
	tab     *dataset.Table
	cols    []int // table column indexes of the exploration attributes
	norm    *geom.Normalizer
	ncols   [][]float64 // normalized column values, one slice per dimension
	grid    *gridIndex
	sorted  [][]int32 // per-dimension row ids in ascending value order
	stats   *Stats
	fp      string          // content fingerprint, set at build (fingerprint.go)
	cache   *Cache          // memoized Count/RowsIn results; nil = uncached
	buf     *scanBuf        // single-owner scan scratch; nil on shared views
	workers int             // scan worker knob: 0 auto, 1 sequential
	ctx     context.Context // scan cancellation; nil = never cancelled
}

// scanBuf is per-owner scratch reused across grid scans. A view carrying
// one must be confined to a single goroutine (each exploration session
// wraps the shared view with its own via WithScanBuffer); the base
// shared view carries none and stays safe for concurrent readers.
type scanBuf struct {
	blocks []cellBlock
}

// Parallel scan kernels. minScanBlocks is the smallest number of grid
// cells worth chunking: below it, per-chunk bookkeeping dwarfs the scan.
var (
	kernelScan  = par.NewKernel("engine.scan")
	kernelIndex = par.NewKernel("engine.index_build")
)

const minScanBlocks = 8

// NewView builds a View over the named exploration attributes, creating
// the covering index (normalized columns + grid index) with the default
// worker count (AIDE_WORKERS or GOMAXPROCS).
func NewView(tab *dataset.Table, attrs []string) (*View, error) {
	return NewViewWorkers(tab, attrs, 0)
}

// NewViewWorkers is NewView with an explicit worker count for both index
// construction and subsequent scans: 0 means automatic, 1 forces the
// sequential path. The built view is identical at every worker count.
func NewViewWorkers(tab *dataset.Table, attrs []string, workers int) (*View, error) {
	cols, err := tab.ColumnIndexes(attrs)
	if err != nil {
		return nil, err
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("engine: view needs at least one attribute")
	}
	norm, err := tab.Normalizer(cols)
	if err != nil {
		return nil, err
	}
	v := &View{tab: tab, cols: cols, norm: norm, stats: &Stats{}, workers: workers}
	v.fp = viewFingerprint(tab, attrs)
	rows := tab.NumRows()
	v.ncols = make([][]float64, len(cols))
	v.sorted = make([][]int32, len(cols))
	// The per-attribute work items — normalize the column, then sort its
	// row ids — are independent, so attributes build concurrently; the
	// grid index then assigns rows to cells with a parallel coordinate
	// pass. Every step writes disjoint slots, so the result is identical
	// at any worker count.
	par.For(kernelIndex, workers, len(cols), 1, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			src := tab.Col(v.cols[i])
			nc := make([]float64, len(src))
			for r, raw := range src {
				nc[r] = norm.ToNormValue(i, raw)
			}
			v.ncols[i] = nc
			v.sorted[i] = sortedIndex(nc)
		}
	})
	v.grid = buildGridIndex(v.ncols, rows, workers)
	return v, nil
}

// WithWorkers returns a view sharing this view's table, indexes and
// stats, whose scans use the given worker count (0 automatic, 1
// sequential). It is the per-session worker knob: the underlying view
// stays immutable and safe for concurrent readers.
func (v *View) WithWorkers(workers int) *View {
	c := *v
	c.workers = workers
	return &c
}

// Workers returns the view's scan worker knob (0 = automatic).
func (v *View) Workers() int { return v.workers }

// WithContext returns a view sharing this view's table, indexes and
// stats whose scans cooperatively stop — at the next chunk boundary —
// once ctx is cancelled. A cancelled scan returns partial, meaningless
// results (Count/RowsIn/SampleRect keep their error-free signatures), so
// callers MUST check ctx.Err() after each query and discard results on
// cancellation; the steering loop in internal/explore does exactly that.
// A nil ctx restores the never-cancelled default.
func (v *View) WithContext(ctx context.Context) *View {
	c := *v
	if ctx == context.Background() {
		ctx = nil
	}
	c.ctx = ctx
	return &c
}

// WithScanBuffer returns a view sharing this view's table, indexes and
// stats that reuses a private scratch buffer across grid scans instead
// of allocating a fresh cell list per query. The returned view must be
// confined to one goroutine (sessions are); the receiver is unchanged
// and stays safe for concurrent readers.
func (v *View) WithScanBuffer() *View {
	c := *v
	c.buf = &scanBuf{}
	return &c
}

// collect returns the cell blocks overlapping rect, reusing the view's
// scan buffer when it has one. The returned slice is valid until the
// owner's next query.
func (v *View) collect(rect geom.Rect) []cellBlock {
	if v.buf == nil {
		return v.grid.collectCells(rect, nil)
	}
	v.buf.blocks = v.grid.collectCells(rect, v.buf.blocks)
	return v.buf.blocks
}

// scanCtx returns the view's cancellation context (Background when
// unset).
func (v *View) scanCtx() context.Context {
	if v.ctx == nil {
		return context.Background()
	}
	return v.ctx
}

// sortedIndex returns row ids ordered by ascending value: one column of
// the covering index. Range lookups on a single attribute binary-search
// this instead of walking grid cells.
func sortedIndex(vals []float64) []int32 {
	idx := make([]int32, len(vals))
	for i := range idx {
		idx[i] = int32(i)
	}
	slices.SortFunc(idx, func(a, b int32) int {
		va, vb := vals[a], vals[b]
		switch {
		case va < vb:
			return -1
		case va > vb:
			return 1
		default:
			return 0
		}
	})
	return idx
}

// sortedRange returns the half-open [lo, hi) positions in sorted[dim]
// whose values fall inside iv.
func (v *View) sortedRange(dim int, iv geom.Interval) (int, int) {
	idx := v.sorted[dim]
	vals := v.ncols[dim]
	lo, _ := slices.BinarySearchFunc(idx, iv.Lo, func(r int32, t float64) int {
		switch {
		case vals[r] < t:
			return -1
		case vals[r] > t:
			return 1
		default:
			return 0
		}
	})
	// Advance lo past equal-to-Lo collisions resolved leftward by the
	// search; BinarySearchFunc returns the first match position already.
	hi := lo
	for hi < len(idx) && vals[idx[hi]] <= iv.Hi {
		hi++
	}
	// The linear advance above is O(matches); for the narrow boundary
	// slabs this fast path serves, matches are few relative to the table.
	return lo, hi
}

// singleConstrainedDim reports the only dimension of rect narrower than
// the full domain, or -1 when zero or several dimensions are constrained.
func (v *View) singleConstrainedDim(rect geom.Rect) int {
	dim := -1
	for i := range rect {
		if rect[i].Lo <= geom.NormMin && rect[i].Hi >= geom.NormMax {
			continue
		}
		if dim >= 0 {
			return -1
		}
		dim = i
	}
	return dim
}

// validRect reports whether rect is a well-formed query region for this
// view: the view's dimensionality with NaN-free, non-inverted intervals.
// An invalid rect matches no rows, so the scan entry points return empty
// results for it instead of feeding NaN into the grid-cell arithmetic
// (where int(NaN) would index out of range). ±Inf endpoints are fine:
// cellRange clamps them to the domain.
func (v *View) validRect(rect geom.Rect) bool {
	if len(rect) != len(v.cols) {
		return false
	}
	for _, iv := range rect {
		if math.IsNaN(iv.Lo) || math.IsNaN(iv.Hi) || iv.Lo > iv.Hi {
			return false
		}
	}
	return true
}

// Table returns the underlying table.
func (v *View) Table() *dataset.Table { return v.tab }

// Attrs returns the exploration attribute names in order.
func (v *View) Attrs() []string {
	out := make([]string, len(v.cols))
	for i, c := range v.cols {
		out[i] = v.tab.Schema()[c].Name
	}
	return out
}

// Dims returns the dimensionality of the exploration space.
func (v *View) Dims() int { return len(v.cols) }

// NumRows returns the number of rows visible through the view.
func (v *View) NumRows() int { return v.tab.NumRows() }

// Normalizer returns the raw<->normalized mapping for the view's
// attributes.
func (v *View) Normalizer() *geom.Normalizer { return v.norm }

// Stats returns the engine counters for this view.
func (v *View) Stats() *Stats { return v.stats }

// NormPoint returns row's exploration attributes in normalized space.
func (v *View) NormPoint(row int) geom.Point {
	p := make(geom.Point, len(v.ncols))
	for i := range v.ncols {
		p[i] = v.ncols[i][row]
	}
	return p
}

// RawPoint returns row's exploration attributes in raw space.
func (v *View) RawPoint(row int) geom.Point {
	return v.tab.Project(row, v.cols)
}

// FullRow returns the entire row (all table columns), the tuple a user
// would review.
func (v *View) FullRow(row int) geom.Point { return v.tab.Row(row) }

// Contains reports whether the row's normalized point lies in rect.
func (v *View) Contains(rect geom.Rect, row int) bool {
	for i := range v.ncols {
		if val := v.ncols[i][row]; val < rect[i].Lo || val > rect[i].Hi {
			return false
		}
	}
	return true
}

// MatchesAny reports whether the row lies in any of the rects.
func (v *View) MatchesAny(rects []geom.Rect, row int) bool {
	for _, r := range rects {
		if v.Contains(r, row) {
			return true
		}
	}
	return false
}

// Count returns the number of rows inside rect (normalized space). Cells
// fully contained in rect contribute len(rows) directly — no per-row
// verification or callback — and cell chunks are counted in parallel.
// With a cache attached (WithCache), repeated rects return the memoized
// count — bit-identical to a fresh scan, since the view is immutable.
func (v *View) Count(rect geom.Rect) int {
	defer observeQuery(time.Now())
	faultinject.Latency("engine.scan")
	faultinject.Panic("engine.scan")
	v.stats.Queries.Add(1)
	if !v.validRect(rect) {
		obsInvalidRects.Inc()
		return 0
	}
	if v.cache != nil {
		if e, ok := v.cache.get(kindCount, rect); ok {
			return e.count
		}
	}
	obsPathGrid.Inc()
	blocks := v.collect(rect)
	type counts struct{ matched, examined int64 }
	parts, err := par.MapCtx(v.scanCtx(), kernelScan, v.workers, len(blocks), minScanBlocks, func(_, lo, hi int) counts {
		var c counts
		for _, b := range blocks[lo:hi] {
			c.examined += int64(len(b.rows))
			if b.full {
				c.matched += int64(len(b.rows))
				continue
			}
			for _, r := range b.rows {
				if v.Contains(rect, int(r)) {
					c.matched++
				}
			}
		}
		return c
	})
	var total counts
	for _, c := range parts {
		total.matched += c.matched
		total.examined += c.examined
	}
	v.stats.RowsExamined.Add(total.examined)
	obsRowsExamined.Add(total.examined)
	if v.cache != nil && err == nil {
		// Never memoize a cancelled scan: its partial result is garbage by
		// contract, and a poisoned entry would outlive the cancellation.
		v.cache.put(kindCount, rect, int(total.matched), nil)
	}
	return int(total.matched)
}

// RowsIn returns all row ids inside rect (normalized space). The order is
// unspecified but deterministic: grid cells in row-major order, rows
// ascending within each cell, independent of the worker count (cell
// chunks are scanned in parallel into per-chunk buffers concatenated in
// cell order). With a cache attached (WithCache), repeated rects return
// a copy of the memoized rows in that same order.
func (v *View) RowsIn(rect geom.Rect) []int {
	defer observeQuery(time.Now())
	faultinject.Latency("engine.scan")
	faultinject.Panic("engine.scan")
	v.stats.Queries.Add(1)
	if !v.validRect(rect) {
		obsInvalidRects.Inc()
		return nil
	}
	if v.cache != nil {
		if e, ok := v.cache.get(kindRows, rect); ok {
			if e.rows == nil {
				return nil
			}
			// Callers may mutate the returned slice, so every hit hands out
			// a private copy.
			out := make([]int, len(e.rows))
			copy(out, e.rows)
			return out
		}
	}
	obsPathGrid.Inc()
	blocks := v.collect(rect)
	type chunkRows struct {
		rows     []int
		examined int64
	}
	parts, err := par.MapCtx(v.scanCtx(), kernelScan, v.workers, len(blocks), minScanBlocks, func(_, lo, hi int) chunkRows {
		var c chunkRows
		for _, b := range blocks[lo:hi] {
			c.examined += int64(len(b.rows))
			if b.full {
				for _, r := range b.rows {
					c.rows = append(c.rows, int(r))
				}
				continue
			}
			for _, r := range b.rows {
				if v.Contains(rect, int(r)) {
					c.rows = append(c.rows, int(r))
				}
			}
		}
		return c
	})
	var examined int64
	n := 0
	for _, c := range parts {
		examined += c.examined
		n += len(c.rows)
	}
	v.stats.RowsExamined.Add(examined)
	obsRowsExamined.Add(examined)
	if n == 0 {
		if v.cache != nil && err == nil {
			v.cache.put(kindRows, rect, 0, nil)
		}
		return nil
	}
	out := make([]int, 0, n)
	for _, c := range parts {
		out = append(out, c.rows...)
	}
	if v.cache != nil && err == nil {
		// The cache stores its own copy (see Cache.put): never a cancelled
		// scan's garbage, never memory the caller can mutate.
		v.cache.put(kindRows, rect, len(out), out)
	}
	return out
}

// scanRect visits every row inside rect via the grid index, invoking fn
// for each; fn returning false stops the scan. Rows of cells fully
// contained in rect are emitted without per-row verification. This is
// the sequential per-row reference path; Count/RowsIn use the chunked
// cell scan with the full-cell len() fast path instead (benchmarked
// against this in bench_test.go).
func (v *View) scanRect(rect geom.Rect, fn func(row int) bool) {
	if !v.validRect(rect) {
		obsInvalidRects.Inc()
		return
	}
	obsPathGrid.Inc()
	examined := int64(0)
	defer func() {
		v.stats.RowsExamined.Add(examined)
		obsRowsExamined.Add(examined)
	}()
	v.grid.visitCells(rect, func(rows []int32, full bool) bool {
		examined += int64(len(rows))
		for _, r := range rows {
			if full || v.Contains(rect, int(r)) {
				if !fn(int(r)) {
					return false
				}
			}
		}
		return true
	})
}

// Sampled returns a new View over a simple random sample of the
// underlying table (each row kept independently is approximated by a
// fixed-size SRS of round(fraction*n) rows), per Section 5.2. Attribute
// domains — and therefore the normalized space — are preserved.
func (v *View) Sampled(fraction float64, seed int64) (*View, error) {
	if fraction <= 0 || fraction > 1 {
		return nil, fmt.Errorf("engine: sample fraction %v out of (0,1]", fraction)
	}
	n := v.tab.NumRows()
	k := int(math.Round(fraction * float64(n)))
	if k < 1 {
		k = 1
	}
	rng := rand.New(rand.NewSource(seed))
	rows := rng.Perm(n)[:k]
	sub := v.tab.Subset(v.tab.Name()+"_sample", rows)
	return NewView(sub, v.Attrs())
}

// gridIndex partitions the normalized space into cellsPerDim^d equal
// cells and stores the row ids of each cell. It answers "which rows can
// fall inside this rectangle" with work proportional to the boundary
// shell of the rectangle.
type gridIndex struct {
	dims        int
	cellsPerDim int
	cellWidth   float64
	cells       [][]int32 // flat row-major cell -> row ids
}

// buildGridIndex picks a resolution so the average cell holds a modest
// number of rows without exploding the cell count in high dimensions.
// Cell assignment (the per-row coordinate arithmetic) is chunked across
// the worker pool; the cell lists are then laid out in one flat backing
// array via a counting pass, so each cell's rows stay in ascending row
// order regardless of worker count.
func buildGridIndex(ncols [][]float64, rows, workers int) *gridIndex {
	d := len(ncols)
	// Target ~64 rows per cell, capped to keep memory bounded.
	target := float64(rows) / 64
	if target < 1 {
		target = 1
	}
	per := int(math.Ceil(math.Pow(target, 1/float64(d))))
	maxPer := []int{0, 4096, 512, 64, 24, 12, 8, 6, 5}
	capPer := 5
	if d < len(maxPer) {
		capPer = maxPer[d]
	}
	if per > capPer {
		per = capPer
	}
	if per < 2 {
		per = 2
	}
	g := &gridIndex{
		dims:        d,
		cellsPerDim: per,
		cellWidth:   (geom.NormMax - geom.NormMin) / float64(per),
	}
	total := 1
	for i := 0; i < d; i++ {
		total *= per
	}
	g.cells = make([][]int32, total)
	if rows == 0 {
		return g
	}
	// Pass 1 (parallel): flat cell id of every row.
	ids := make([]int32, rows)
	par.For(kernelIndex, workers, rows, 1024, func(_, lo, hi int) {
		for r := lo; r < hi; r++ {
			ids[r] = int32(g.cellOf(ncols, r))
		}
	})
	// Pass 2 (sequential, cheap integer work): counting sort into one
	// shared backing array, rows ascending within each cell.
	counts := make([]int32, total+1)
	for _, id := range ids {
		counts[id+1]++
	}
	for i := 1; i <= total; i++ {
		counts[i] += counts[i-1]
	}
	backing := make([]int32, rows)
	next := make([]int32, total)
	copy(next, counts[:total])
	for r := 0; r < rows; r++ {
		id := ids[r]
		backing[next[id]] = int32(r)
		next[id]++
	}
	for id := 0; id < total; id++ {
		if lo, hi := counts[id], counts[id+1]; lo < hi {
			g.cells[id] = backing[lo:hi:hi]
		}
	}
	return g
}

// cellOf returns the flat cell id of row r.
func (g *gridIndex) cellOf(ncols [][]float64, r int) int {
	id := 0
	for i := 0; i < g.dims; i++ {
		c := int((ncols[i][r] - geom.NormMin) / g.cellWidth)
		if c >= g.cellsPerDim {
			c = g.cellsPerDim - 1
		}
		if c < 0 {
			c = 0
		}
		id = id*g.cellsPerDim + c
	}
	return id
}

// cellRange returns the [lo,hi] cell coordinates overlapping interval iv
// along one dimension, and whether the overlap is non-empty.
func (g *gridIndex) cellRange(iv geom.Interval) (int, int, bool) {
	if iv.Hi < geom.NormMin || iv.Lo > geom.NormMax || iv.Lo > iv.Hi {
		return 0, 0, false
	}
	lo := int(math.Floor((math.Max(iv.Lo, geom.NormMin) - geom.NormMin) / g.cellWidth))
	hi := int(math.Floor((math.Min(iv.Hi, geom.NormMax) - geom.NormMin) / g.cellWidth))
	if lo >= g.cellsPerDim {
		lo = g.cellsPerDim - 1
	}
	if hi >= g.cellsPerDim {
		hi = g.cellsPerDim - 1
	}
	return lo, hi, true
}

// cellBlock is one non-empty grid cell overlapping a query rect: its row
// ids and whether the cell lies entirely inside the rect (no per-row
// verification needed).
type cellBlock struct {
	rows []int32
	full bool
}

// collectCells returns the non-empty cells overlapping rect in row-major
// (odometer) order — the deterministic work list the parallel scans
// chunk over. buf, when non-nil, is reused as the backing array (its
// contents are overwritten); pass nil to allocate fresh.
func (g *gridIndex) collectCells(rect geom.Rect, buf []cellBlock) []cellBlock {
	out := buf[:0]
	g.visitCells(rect, func(rows []int32, full bool) bool {
		out = append(out, cellBlock{rows: rows, full: full})
		return true
	})
	return out
}

// visitCells invokes fn for every cell overlapping rect. full is true when
// the cell lies entirely inside rect, so its rows need no verification.
// fn returning false stops the visit.
func (g *gridIndex) visitCells(rect geom.Rect, fn func(rows []int32, full bool) bool) {
	lo := make([]int, g.dims)
	hi := make([]int, g.dims)
	for i := 0; i < g.dims; i++ {
		l, h, ok := g.cellRange(rect[i])
		if !ok {
			return
		}
		lo[i], hi[i] = l, h
	}
	coord := make([]int, g.dims)
	copy(coord, lo)
	for {
		id := 0
		full := true
		for i := 0; i < g.dims; i++ {
			id = id*g.cellsPerDim + coord[i]
			cellLo := geom.NormMin + float64(coord[i])*g.cellWidth
			cellHi := cellLo + g.cellWidth
			if cellLo < rect[i].Lo || cellHi > rect[i].Hi {
				full = false
			}
		}
		if rows := g.cells[id]; len(rows) > 0 {
			if !fn(rows, full) {
				return
			}
		}
		// Advance odometer.
		i := g.dims - 1
		for ; i >= 0; i-- {
			coord[i]++
			if coord[i] <= hi[i] {
				break
			}
			coord[i] = lo[i]
		}
		if i < 0 {
			return
		}
	}
}
