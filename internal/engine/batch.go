package engine

// This file is the batched execution path. ExecuteBatch evaluates N
// sub-queries (Count / RowsIn / SampleRect rectangles) in a single
// pass: on an unsharded view the grid-path sub-queries share one
// row-major walk over the union of their cell boxes (cells are pruned
// once, every covering rect is evaluated per cell with shared scan
// scratch); on a sharded view the whole batch rides ONE supervised
// scatter — one backend call (one RPC round-trip, for remote shards)
// per shard per batch instead of per query.
//
// The contract that makes this more than a fast path: batched sampling
// must consume the caller's rng in exactly the per-request order the
// sequential loop did. ExecuteBatch therefore evaluates every sample
// sub-query's candidate layout WITHOUT touching any rng; the draws
// happen lazily, one sub-query at a time, when the caller invokes
// BatchResults.Sample(i, rng) at the same point the sequential code
// would have called View.SampleRect. A caller that halts mid-batch
// (budget, cancellation, conflict) simply never draws the remaining
// sub-queries, leaving the rng stream exactly where the sequential
// loop would have left it.

import (
	"context"
	"fmt"
	"math/bits"
	"math/rand"
	"sync"
	"time"

	"github.com/explore-by-example/aide/internal/faultinject"
	"github.com/explore-by-example/aide/internal/geom"
)

// BatchKind selects the engine primitive a BatchQuery runs.
type BatchKind uint8

const (
	// BatchCount evaluates View.Count for the rect.
	BatchCount BatchKind = iota
	// BatchRows evaluates View.RowsIn for the rect.
	BatchRows
	// BatchSample evaluates View.SampleRect's candidate layout for the
	// rect; the rows are drawn later via BatchResults.Sample.
	BatchSample
)

// BatchQuery is one sub-query of a batch.
type BatchQuery struct {
	Kind BatchKind
	Rect geom.Rect
	// N is the sample size for BatchSample (ignored otherwise). N <= 0
	// yields an empty sample, like SampleRect.
	N int
}

// sampleCand is one sample sub-query's evaluated candidate layout —
// exactly the state SampleRect holds immediately before its rng draws:
// either the covering-index candidates in (value, row id) order, or
// the grid path's full blocks + verified partial rows in cell order.
type sampleCand struct {
	index   bool    // covering-index path (single constrained dimension)
	sorted  []int32 // index path: candidates in (value, row id) order
	full    [][]int32
	partial []int
}

func (c *sampleCand) total() int {
	if c.index {
		return len(c.sorted)
	}
	n := len(c.partial)
	for _, b := range c.full {
		n += len(b)
	}
	return n
}

// BatchResults holds a batch's evaluated results. Counts and rows are
// final; samples are lazy — Sample(i, rng) performs sub-query i's rng
// draws on demand, so the caller controls exactly which sub-queries
// consume rng state and in what order. The per-kind arrays are
// allocated only when the batch contains that kind, so a count-only
// batch (discovery's density probes) carries no sample/rows ballast.
type BatchResults struct {
	v       *View
	queries []BatchQuery
	counts  []int
	rows    [][]int
	cands   []sampleCand
	healthy int // shards that served the batch (n for unsharded views)
}

// Len returns the number of sub-queries.
func (r *BatchResults) Len() int { return len(r.queries) }

// Count returns sub-query i's matched-row count (0 for non-Count
// sub-queries).
func (r *BatchResults) Count(i int) int {
	if r.counts == nil {
		return 0
	}
	return r.counts[i]
}

// Rows returns sub-query i's matched rows (nil for non-Rows
// sub-queries). The slice is owned by the caller.
func (r *BatchResults) Rows(i int) []int {
	if r.rows == nil {
		return nil
	}
	return r.rows[i]
}

// Sample draws sub-query i's sample from its evaluated candidate
// layout, consuming rng exactly as View.SampleRect would have on the
// same view — same draws, same rows, same order. Each sub-query should
// be drawn at most once.
func (r *BatchResults) Sample(i int, rng *rand.Rand) []int {
	q := r.queries[i]
	if q.N <= 0 || r.cands == nil {
		return nil
	}
	c := &r.cands[i]
	total := c.total()
	if total == 0 {
		return nil
	}
	if c.index {
		if q.N >= total {
			out := make([]int, 0, total)
			for _, row := range c.sorted {
				out = append(out, int(row))
			}
			rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
			return out
		}
		out := make([]int, 0, q.N)
		for _, t := range floydSample(total, q.N, rng) {
			out = append(out, int(c.sorted[t]))
		}
		rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
		return out
	}
	if q.N >= total {
		out := make([]int, 0, total)
		for _, b := range c.full {
			for _, row := range b {
				out = append(out, int(row))
			}
		}
		out = append(out, c.partial...)
		rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
		return out
	}
	out := make([]int, 0, q.N)
	for _, idx := range floydSample(total, q.N, rng) {
		out = append(out, r.v.rowAt(c.full, c.partial, idx))
	}
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// Healthy returns how many shards served the batch (the shard count
// for a complete answer; always full on unsharded views).
func (r *BatchResults) Healthy() int { return r.healthy }

// ExecuteBatch evaluates the sub-queries in one pass and returns their
// results. Fault-free results are bit-identical to running each
// sub-query through Count/RowsIn/SampleRect sequentially (sample draws
// included, via the lazy Sample contract above); on a sharded view the
// whole batch is one scatter, so a failed shard degrades every
// sub-query to the healthy subset at once, noted through the view's
// ShardTracker as usual.
func (v *View) ExecuteBatch(queries []BatchQuery) *BatchResults {
	defer observeQuery(time.Now())
	faultinject.Latency("engine.scan")
	faultinject.Panic("engine.scan")
	v.stats.Queries.Add(int64(len(queries)))
	res := &BatchResults{v: v, queries: queries}
	for _, q := range queries {
		switch q.Kind {
		case BatchCount:
			if res.counts == nil {
				res.counts = make([]int, len(queries))
			}
		case BatchRows:
			if res.rows == nil {
				res.rows = make([][]int, len(queries))
			}
		case BatchSample:
			obsSampleCalls.Inc()
			if res.cands == nil {
				res.cands = make([]sampleCand, len(queries))
			}
		}
	}
	if v.shards != nil {
		res.healthy = v.shards.n
		if len(queries) > 0 {
			v.executeBatchSharded(res)
			v.noteShardOutcome(res.healthy)
		}
		return res
	}
	res.healthy = 1
	if len(queries) > 0 {
		v.executeBatchLocal(res)
	}
	return res
}

// batchScratch is the reusable coordinator-side evaluation scratch of
// one local batch: the grid-path work list, its query back-references,
// and the per-item result slots. Pooled so a steady stream of batches
// (one per session iteration) allocates only what escapes into
// BatchResults — the inner row/candidate slices — not the bookkeeping
// around them.
type batchScratch struct {
	items     []ShardBatchItem
	itemQuery []int
	out       []ShardBatchResult
}

var batchScratchPool = sync.Pool{New: func() any { return new(batchScratch) }}

// executeBatchLocal is the unsharded batch path: index-path samples
// slice the covering index directly, cached Count/Rows sub-queries are
// answered from the predicate cache, and everything else shares one
// multi-rect grid pass.
func (v *View) executeBatchLocal(res *BatchResults) {
	sc := batchScratchPool.Get().(*batchScratch)
	defer func() {
		// Drop references to the row/candidate slices that escaped into
		// res before pooling the slots for the next batch.
		clear(sc.out)
		batchScratchPool.Put(sc)
	}()
	items := sc.items[:0]
	itemQuery := sc.itemQuery[:0]
	for i, q := range res.queries {
		if q.Kind == BatchSample && q.N <= 0 {
			// SampleRect answers n<=0 before rect validation or any
			// evaluation; mirror that (and skip the wasted work).
			continue
		}
		if !v.validRect(q.Rect) {
			obsInvalidRects.Inc()
			continue
		}
		if q.Kind == BatchSample {
			if dim := v.singleConstrainedDim(q.Rect); dim >= 0 {
				obsPathIndex.Inc()
				lo, hi := v.sortedRange(dim, q.Rect[dim])
				v.stats.RowsExamined.Add(int64(hi - lo))
				obsRowsExamined.Add(int64(hi - lo))
				res.cands[i] = sampleCand{index: true, sorted: v.sorted[dim][lo:hi]}
				continue
			}
			items = append(items, ShardBatchItem{Kind: BatchSample, Rect: q.Rect})
			itemQuery = append(itemQuery, i)
			continue
		}
		if v.cache != nil {
			if q.Kind == BatchCount {
				if e, ok := v.cache.get(kindCount, 0, q.Rect); ok {
					res.counts[i] = e.count
					continue
				}
			} else {
				if e, ok := v.cache.get(kindRows, 0, q.Rect); ok {
					if e.rows != nil {
						out := make([]int, len(e.rows))
						copy(out, e.rows)
						res.rows[i] = out
					}
					continue
				}
			}
		}
		items = append(items, ShardBatchItem{Kind: q.Kind, Rect: q.Rect})
		itemQuery = append(itemQuery, i)
	}
	// One grid-path accounting update for the whole batch instead of an
	// atomic per sub-query.
	obsPathGrid.Add(int64(len(items)))
	sc.items, sc.itemQuery = items, itemQuery
	if len(items) == 0 {
		return
	}
	out := sc.out
	if cap(out) < len(items) {
		out = make([]ShardBatchResult, len(items))
	} else {
		out = out[:len(items)]
	}
	sc.out = out
	if err := batchGridEval(v.grid, v.scanCtx(), items, out); err != nil {
		// Cancelled mid-pass: partial results are garbage by contract.
		return
	}
	var examined int64
	for k, r := range out {
		i := itemQuery[k]
		switch items[k].Kind {
		case BatchCount:
			examined += r.Count.Examined
			res.counts[i] = int(r.Count.Matched)
			if v.cache != nil {
				v.cache.put(kindCount, 0, res.queries[i].Rect, res.counts[i], nil)
			}
		case BatchRows:
			examined += r.Rows.Examined
			res.rows[i] = r.Rows.Rows
			if v.cache != nil {
				v.cache.put(kindRows, 0, res.queries[i].Rect, len(r.Rows.Rows), r.Rows.Rows)
			}
		case BatchSample:
			examined += r.Sample.Examined
			res.cands[i] = sampleCand{full: r.Sample.Full, partial: r.Sample.Partial}
		}
	}
	v.stats.RowsExamined.Add(examined)
	obsRowsExamined.Add(examined)
}

// executeBatchSharded routes the whole batch through ONE supervised
// scatter: every shard receives the full miss list in a single backend
// call (one RPC round-trip for remote shards), with the per-shard
// predicate cache consulted coordinator-side exactly as the sequential
// sharded cores do. Gathering reassembles each sub-query in shard
// order, reproducing the unsharded layouts bit-identically.
func (v *View) executeBatchSharded(res *BatchResults) {
	items := make([]ShardBatchItem, 0, len(res.queries))
	itemQuery := make([]int, 0, len(res.queries))
	hasSample := false
	var gridItems int64
	for i, q := range res.queries {
		if q.Kind == BatchSample && q.N <= 0 {
			continue
		}
		if !v.validRect(q.Rect) {
			obsInvalidRects.Inc()
			continue
		}
		if q.Kind == BatchSample {
			hasSample = true
			if dim := v.singleConstrainedDim(q.Rect); dim >= 0 {
				obsPathIndex.Inc()
				items = append(items, ShardBatchItem{Kind: BatchSample, Sorted: true, Dim: dim, Iv: q.Rect[dim]})
				itemQuery = append(itemQuery, i)
				continue
			}
		}
		gridItems++
		items = append(items, ShardBatchItem{Kind: q.Kind, Rect: q.Rect})
		itemQuery = append(itemQuery, i)
	}
	obsPathGrid.Add(gridItems)
	if len(items) == 0 {
		return
	}
	// The whole batch advances each shard's injected-fault stream once.
	// Sample-bearing batches roll the sample point so sampling chaos
	// tests keep firing; pure scan batches roll the scan point.
	point := FaultShardScan
	if hasSample {
		point = FaultShardSample
	}
	cache := v.cache
	perShard, ok, healthy := scatterShards(v.shards, v.scanCtx(), point, func(b ShardBackend) ([]ShardBatchResult, error) {
		salt := shardSalt(b.ShardIndex())
		out := make([]ShardBatchResult, len(items))
		var miss []ShardBatchItem
		var missAt []int
		for k, it := range items {
			if cache != nil && !it.Sorted {
				switch it.Kind {
				case BatchCount:
					if e, hit := cache.get(kindCount, salt, it.Rect); hit {
						out[k].Count = ShardCount{Matched: int64(e.count)}
						continue
					}
				case BatchRows:
					if e, hit := cache.get(kindRows, salt, it.Rect); hit {
						if e.rows != nil {
							rows := make([]int, len(e.rows))
							copy(rows, e.rows)
							out[k].Rows.Rows = rows
						}
						continue
					}
				}
			}
			miss = append(miss, it)
			missAt = append(missAt, k)
		}
		if len(miss) == 0 {
			return out, nil
		}
		rs, err := b.ExecuteBatch(miss)
		if err != nil {
			return nil, err
		}
		if len(rs) != len(miss) {
			return nil, fmt.Errorf("engine: shard %d batch returned %d results for %d items", b.ShardIndex(), len(rs), len(miss))
		}
		for j, r := range rs {
			out[missAt[j]] = r
			if cache != nil && !miss[j].Sorted {
				switch miss[j].Kind {
				case BatchCount:
					cache.put(kindCount, salt, miss[j].Rect, int(r.Count.Matched), nil)
				case BatchRows:
					cache.put(kindRows, salt, miss[j].Rect, len(r.Rows.Rows), r.Rows.Rows)
				}
			}
		}
		return out, nil
	})
	res.healthy = healthy
	if v.scanCtx().Err() != nil {
		return
	}
	var examined int64
	for k, it := range items {
		i := itemQuery[k]
		switch {
		case it.Sorted:
			var parts [][]int32
			matched := 0
			for s := range perShard {
				if ok[s] && len(perShard[s][k].Sorted) > 0 {
					parts = append(parts, perShard[s][k].Sorted)
					matched += len(perShard[s][k].Sorted)
				}
			}
			examined += int64(matched)
			if matched > 0 {
				res.cands[i] = sampleCand{index: true, sorted: mergeSorted(parts, v.ncols[it.Dim], matched)}
			} else {
				res.cands[i] = sampleCand{index: true}
			}
		case it.Kind == BatchCount:
			var total int64
			for s := range perShard {
				if ok[s] {
					total += perShard[s][k].Count.Matched
					examined += perShard[s][k].Count.Examined
				}
			}
			res.counts[i] = int(total)
		case it.Kind == BatchRows:
			n := 0
			for s := range perShard {
				if ok[s] {
					n += len(perShard[s][k].Rows.Rows)
					examined += perShard[s][k].Rows.Examined
				}
			}
			if n > 0 {
				rows := make([]int, 0, n)
				for s := range perShard {
					if ok[s] {
						rows = append(rows, perShard[s][k].Rows.Rows...)
						releaseRowBuf(perShard[s][k].Rows.Rows)
					}
				}
				res.rows[i] = rows
			}
		default: // grid-path sample
			var c sampleCand
			for s := range perShard {
				if !ok[s] {
					continue
				}
				sm := perShard[s][k].Sample
				c.full = append(c.full, sm.Full...)
				c.partial = append(c.partial, sm.Partial...)
				examined += sm.Examined
			}
			res.cands[i] = c
		}
	}
	v.stats.RowsExamined.Add(examined)
	obsRowsExamined.Add(examined)
}

// batchGridEval evaluates every grid-path item of a batch against one
// grid index (the whole view's, or one shard's), writing per-item
// results into out. When the items' cell boxes overlap enough, all
// items share ONE row-major walk over the union box — each cell is
// located and pruned once, and every covering item evaluates it with
// shared scan scratch; widely scattered items fall back to per-item
// walks (still sharing scratch), since a union walk over mostly-empty
// space would visit far more cells than the items own. Both modes
// evaluate each (cell, item) pair with identical semantics, so results
// are bit-identical to the sequential kernels either way.
func batchGridEval(g *gridIndex, ctx context.Context, items []ShardBatchItem, out []ShardBatchResult) error {
	n := len(items)
	dims := g.dims
	ws := batchWalkPool.Get().(*batchWalkScratch)
	defer batchWalkPool.Put(ws)
	if cap(ws.boxes) < n {
		ws.boxes = make([]batchBox, n)
	}
	// One backing array for every box's coordinate ranges plus the union
	// bounds and the odometer: 4 slices per box + 3 shared.
	if need := (4*n + 3) * dims; cap(ws.backing) < need {
		ws.backing = make([]int, need)
	}
	boxes := ws.boxes[:n]
	backing := ws.backing
	carve := func() []int {
		s := backing[:dims:dims]
		backing = backing[dims:]
		return s
	}
	active := false
	uLo, uHi, coord := carve(), carve(), carve()
	unionCells, sumCells := 1, 0
	for d := 0; d < dims; d++ {
		uLo[d], uHi[d] = g.cellsPerDim, -1
	}
	for k := range items {
		b := &boxes[k]
		b.lo, b.hi, b.cLo, b.cHi = carve(), carve(), carve(), carve()
		b.ok = true
		cells := 1
		rect := items[k].Rect
		for d := 0; d < dims; d++ {
			lo, hi, ok := g.cellRange(rect[d])
			if !ok {
				b.ok = false
				break
			}
			b.lo[d], b.hi[d] = lo, hi
			b.cLo[d], b.cHi[d] = g.coveredRange(rect[d], lo, hi)
			cells *= hi - lo + 1
		}
		if !b.ok {
			continue
		}
		active = true
		sumCells += cells
		for d := 0; d < dims; d++ {
			if b.lo[d] < uLo[d] {
				uLo[d] = b.lo[d]
			}
			if b.hi[d] > uHi[d] {
				uHi[d] = b.hi[d]
			}
		}
	}
	if !active {
		return nil
	}
	for d := 0; d < dims; d++ {
		unionCells *= uHi[d] - uLo[d] + 1
	}
	var scratch []uint64
	// Cells are row-major, so the innermost dimension's cells have
	// contiguous flat ids: both walks below iterate each innermost run
	// with a single increment instead of re-deriving the id from the
	// odometer per cell.
	inner := dims - 1
	// A union walk pays one visit per union cell regardless of how many
	// items cover it — but every visited cell also pays a coverage check
	// per item, so it only wins when the boxes genuinely pile up. Walk
	// the union when it at least halves the visit count; scattered boxes
	// (a session's spread-out probes) take the per-item walks, which
	// never visit a cell their item doesn't own.
	if 2*unionCells <= sumCells {
		copy(coord, uLo)
		visited := 0
		for {
			base := 0
			for d := 0; d < inner; d++ {
				base = base*g.cellsPerDim + coord[d]
			}
			id := base*g.cellsPerDim + uLo[inner]
			for c := uLo[inner]; c <= uHi[inner]; c++ {
				if visited++; visited&63 == 0 && ctx.Err() != nil {
					return ctx.Err()
				}
				coord[inner] = c
				if off, end := g.offsets[id], g.offsets[id+1]; off != end {
					for k := range items {
						b := &boxes[k]
						if !b.covers(dims, coord) {
							continue
						}
						evalBatchCell(g, &items[k], &out[k], b.coveredAt(dims, coord), int32(id), off, end, &scratch)
					}
				}
				id++
			}
			d := inner - 1
			for ; d >= 0; d-- {
				coord[d]++
				if coord[d] <= uHi[d] {
					break
				}
				coord[d] = uLo[d]
			}
			if d < 0 {
				return nil
			}
		}
	}
	for k := range items {
		b := &boxes[k]
		if !b.ok {
			continue
		}
		copy(coord, b.lo)
		visited := 0
		for {
			base := 0
			for d := 0; d < inner; d++ {
				base = base*g.cellsPerDim + coord[d]
			}
			id := base*g.cellsPerDim + b.lo[inner]
			for c := b.lo[inner]; c <= b.hi[inner]; c++ {
				if visited++; visited&63 == 0 && ctx.Err() != nil {
					return ctx.Err()
				}
				coord[inner] = c
				if off, end := g.offsets[id], g.offsets[id+1]; off != end {
					evalBatchCell(g, &items[k], &out[k], b.coveredAt(dims, coord), int32(id), off, end, &scratch)
				}
				id++
			}
			d := inner - 1
			for ; d >= 0; d-- {
				coord[d]++
				if coord[d] <= b.hi[d] {
					break
				}
				coord[d] = b.lo[d]
			}
			if d < 0 {
				break
			}
		}
	}
	return nil
}

// batchWalkScratch is batchGridEval's reusable walk state — the item
// boxes and the integer backing their coordinate ranges are carved
// from. Everything in it is overwritten before use and nothing escapes
// into results, so pooling it is invisible to callers.
type batchWalkScratch struct {
	boxes   []batchBox
	backing []int
}

var batchWalkPool = sync.Pool{New: func() any { return new(batchWalkScratch) }}

// batchBox is one item's precomputed cell box: the overlapping cell
// coordinate range per dimension plus the geometrically covered
// sub-range (coveredRange — the exact expressions visitCells' full
// flag evaluates, so "covered" stays bit-identical across paths).
type batchBox struct {
	ok       bool
	lo, hi   []int
	cLo, cHi []int
}

func (b *batchBox) covers(dims int, coord []int) bool {
	if !b.ok {
		return false
	}
	for d := 0; d < dims; d++ {
		if coord[d] < b.lo[d] || coord[d] > b.hi[d] {
			return false
		}
	}
	return true
}

// coveredAt reports whether the cell at coord lies geometrically
// entirely inside the item's rect.
func (b *batchBox) coveredAt(dims int, coord []int) bool {
	for d := 0; d < dims; d++ {
		if coord[d] < b.cLo[d] || coord[d] > b.cHi[d] {
			return false
		}
	}
	return true
}

// evalBatchCell evaluates one (cell, item) pair with the sequential
// kernels' exact semantics: geometrically covered cells are answered
// from offsets alone, zonemap-covered cells emit whole blocks,
// zonemap-disjoint cells emit nothing, and straddling cells run the
// per-row columnar filter. Emission happens in the walk's row-major
// cell order with rows ascending per cell — the order every sequential
// kernel produces.
func evalBatchCell(g *gridIndex, it *ShardBatchItem, out *ShardBatchResult, covered bool, id, off, end int32, scratch *[]uint64) {
	switch it.Kind {
	case BatchCount:
		if covered {
			out.Count.Matched += int64(end - off)
			return
		}
		m, ex := g.countCellBatched(it.Rect, id, off, end)
		out.Count.Matched += m
		out.Count.Examined += ex
	case BatchRows:
		if covered {
			out.Rows.Rows = append(out.Rows.Rows, g.rows64[off:end]...)
			return
		}
		switch g.zoneClassify(it.Rect, id) {
		case zoneCovered:
			out.Rows.Rows = append(out.Rows.Rows, g.rows64[off:end]...)
		case zoneDisjoint:
		default:
			out.Rows.Examined += int64(end - off)
			*scratch = g.evalCellBits(it.Rect, id, off, end, (*scratch)[:0])
			emitBits(&out.Rows.Rows, g, off, *scratch)
		}
	case BatchSample:
		if covered {
			out.Sample.Full = append(out.Sample.Full, g.rows[off:end])
			return
		}
		switch g.zoneClassify(it.Rect, id) {
		case zoneCovered:
			for _, r := range g.rows[off:end] {
				out.Sample.Partial = append(out.Sample.Partial, int(r))
			}
		case zoneDisjoint:
		default:
			out.Sample.Examined += int64(end - off)
			*scratch = g.evalCellBits(it.Rect, id, off, end, (*scratch)[:0])
			emitPartialBits(&out.Sample.Partial, g, off, *scratch)
		}
	}
}

// countCellBatched is zoneClassify + countCell fused into one zonemap
// pass: the batch walk evaluates each (cell, item) pair exactly once,
// so the classify-then-count split the sequential kernels share would
// scan the cell's zonemap twice per pair. Classification, straddled-
// clause selection, sweeps, and the examined-row accounting (end-off
// for straddling cells, 0 when the zonemap alone answers) are all
// bit-identical to the sequential pair.
func (g *gridIndex) countCellBatched(rect geom.Rect, id, off, end int32) (matched, examined int64) {
	n := int64(end - off)
	var a0, a1 int
	na := 0
	for d := 0; d < g.dims; d++ {
		zmin, zmax := g.zoneMin[d][id], g.zoneMax[d][id]
		if zmax < rect[d].Lo || zmin > rect[d].Hi {
			return 0, 0
		}
		if zmin >= rect[d].Lo && zmax <= rect[d].Hi {
			continue
		}
		switch na {
		case 0:
			a0 = d
		case 1:
			a1 = d
		}
		na++
	}
	switch na {
	case 0:
		return n, 0
	case 1:
		lo, hi := rect[a0].Lo, rect[a0].Hi
		col := g.slabs[a0][off:end]
		m := 0
		for _, v := range col {
			keep := 1
			if v < lo || v > hi {
				keep = 0
			}
			m += keep
		}
		return int64(m), n
	case 2:
		lo0, hi0 := rect[a0].Lo, rect[a0].Hi
		lo1, hi1 := rect[a1].Lo, rect[a1].Hi
		col0 := g.slabs[a0][off:end]
		col1 := g.slabs[a1][off:end]
		m := 0
		for i, v := range col0 {
			keep := 1
			if v < lo0 || v > hi0 {
				keep = 0
			}
			w := col1[i]
			if w < lo1 || w > hi1 {
				keep = 0
			}
			m += keep
		}
		return int64(m), n
	}
	// Three or more straddled clauses: rare corner cells — the generic
	// sweep re-derives the clause set, which is fine off the hot path.
	return int64(g.countCell(rect, id, off, end)), n
}

// emitPartialBits appends the row ids of set bits (based at slot off)
// to dst as ints — emitBits for the sample path's partial list.
func emitPartialBits(dst *[]int, g *gridIndex, off int32, words []uint64) {
	for w, bw := range words {
		for bw != 0 {
			t := bits.TrailingZeros64(bw)
			*dst = append(*dst, int(g.rows[int(off)+w<<6+t]))
			bw &= bw - 1
		}
	}
}
