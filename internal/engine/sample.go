package engine

import (
	"math/bits"
	"math/rand"
	"slices"
	"time"

	"github.com/explore-by-example/aide/internal/faultinject"
	"github.com/explore-by-example/aide/internal/geom"
	"github.com/explore-by-example/aide/internal/par"
)

// SampleRect returns up to n distinct rows drawn uniformly at random from
// the rows inside rect (normalized space). This is the engine primitive
// behind every AIDE sample-extraction query: object discovery samples
// around cell centers, misclassified exploitation samples Chebyshev balls
// around false negatives, and boundary exploitation samples face slabs.
//
// The implementation uses the grid index: cells fully inside rect
// contribute their row lists wholesale; rows of partially overlapping
// cells are verified individually. Sampling is exact-uniform over the
// matching rows (not over cells), so skewed data does not bias results.
func (v *View) SampleRect(rect geom.Rect, n int, rng *rand.Rand) []int {
	defer observeQuery(time.Now())
	faultinject.Latency("engine.scan")
	faultinject.Panic("engine.scan")
	obsSampleCalls.Inc()
	v.stats.Queries.Add(1)
	if n <= 0 {
		return nil
	}
	if !v.validRect(rect) {
		obsInvalidRects.Inc()
		return nil
	}
	if v.shards != nil {
		// Both engine paths scatter per shard and reassemble the exact
		// unsharded candidate layout (shard.go), so the rng draws the
		// same rows at any shard count.
		out, healthy := v.sampleShardedCore(rect, n, rng)
		v.noteShardOutcome(healthy)
		return out
	}
	// Fast path: a rect constrained in exactly one dimension (the shape
	// of boundary-exploitation slabs with whole-domain sampling) is a
	// range scan of that attribute's sorted index — no grid walk.
	if dim := v.singleConstrainedDim(rect); dim >= 0 {
		obsPathIndex.Inc()
		lo, hi := v.sortedRange(dim, rect[dim])
		v.stats.RowsExamined.Add(int64(hi - lo))
		obsRowsExamined.Add(int64(hi - lo))
		matched := hi - lo
		if matched == 0 {
			return nil
		}
		if n >= matched {
			out := make([]int, 0, matched)
			for _, r := range v.sorted[dim][lo:hi] {
				out = append(out, int(r))
			}
			rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
			return out
		}
		out := make([]int, 0, n)
		for _, t := range floydSample(matched, n, rng) {
			out = append(out, int(v.sorted[dim][lo+t]))
		}
		rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
		return out
	}

	obsPathGrid.Inc()
	// Cell chunks are verified in parallel; per-chunk results concatenate
	// in cell order, so the candidate layout — and therefore the sampled
	// rows for a given rng state — is identical at every worker count.
	//
	// The layout contract is load-bearing: geometrically full cells form
	// the leading candidate blocks and boundary-cell survivors follow, in
	// cell order, rows ascending within each cell. Zonemaps never move a
	// cell between those groups — a zonemap-covered boundary cell emits
	// all of its rows into the partial group (same rows, same order, just
	// without touching the slabs), and a zonemap-disjoint one emits
	// nothing, exactly as per-row verification would.
	g := v.grid
	blocks := v.collect(rect)
	type chunkCand struct {
		full     [][]int32 // verified-by-construction candidate blocks
		partial  []int     // verified matching rows from boundary cells
		examined int64
	}
	v.ensureArenas(par.ChunkCount(v.workers, len(blocks), minScanBlocks))
	parts, _ := par.MapCtx(v.scanCtx(), kernelScan, v.workers, len(blocks), minScanBlocks, func(chunk, lo, hi int) chunkCand {
		var c chunkCand
		scratch := v.chunkArena(chunk)
		for _, b := range blocks[lo:hi] {
			if b.full {
				c.full = append(c.full, b.rows)
				continue
			}
			switch g.zoneClassify(rect, b.id) {
			case zoneCovered:
				for _, r := range b.rows {
					c.partial = append(c.partial, int(r))
				}
			case zoneDisjoint:
				// No row can match; emitting nothing is what the filter
				// would do, without the examination.
			default:
				c.examined += int64(len(b.rows))
				end := b.off + int32(len(b.rows))
				scratch = g.evalCellBits(rect, b.id, b.off, end, scratch[:0])
				for w, bw := range scratch {
					for bw != 0 {
						t := bits.TrailingZeros64(bw)
						c.partial = append(c.partial, int(b.rows[w<<6+t]))
						bw &= bw - 1
					}
				}
			}
		}
		v.saveChunkArena(chunk, scratch)
		return c
	})
	var full [][]int32
	fullTotal := 0
	var partial []int
	examined := int64(0)
	for _, c := range parts {
		for _, b := range c.full {
			full = append(full, b)
			fullTotal += len(b)
		}
		partial = append(partial, c.partial...)
		examined += c.examined
	}
	v.stats.RowsExamined.Add(examined)
	obsRowsExamined.Add(examined)

	total := fullTotal + len(partial)
	if total == 0 {
		return nil
	}
	if n >= total {
		out := make([]int, 0, total)
		for _, b := range full {
			for _, r := range b {
				out = append(out, int(r))
			}
		}
		out = append(out, partial...)
		rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
		return out
	}

	out := make([]int, 0, n)
	for _, idx := range floydSample(total, n, rng) {
		out = append(out, v.rowAt(full, partial, idx))
	}
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// floydSample returns n distinct indices in [0, total) via Floyd's
// algorithm, in ascending order. The sorted order (rather than map
// iteration order) keeps the caller's subsequent rng-driven shuffle — and
// therefore the whole sample — reproducible for a given rng state.
func floydSample(total, n int, rng *rand.Rand) []int {
	chosen := make(map[int]struct{}, n)
	for j := total - n; j < total; j++ {
		t := rng.Intn(j + 1)
		if _, dup := chosen[t]; dup {
			t = j
		}
		chosen[t] = struct{}{}
	}
	out := make([]int, 0, n)
	for idx := range chosen {
		out = append(out, idx)
	}
	slices.Sort(out)
	return out
}

// rowAt maps a flat candidate index to a row id: indexes cover the full
// blocks first, then the verified partial rows.
func (v *View) rowAt(full [][]int32, partial []int, idx int) int {
	for _, b := range full {
		if idx < len(b) {
			return int(b[idx])
		}
		idx -= len(b)
	}
	return partial[idx]
}

// SampleNear returns up to n rows within Chebyshev distance y of center
// (normalized space): the "f random samples within a normalized distance
// y on each dimension" of Section 4.2.
func (v *View) SampleNear(center geom.Point, y float64, n int, rng *rand.Rand) []int {
	return v.SampleRect(geom.RectAround(center, y, geom.NewRect(v.Dims())), n, rng)
}

// SampleAll returns n rows drawn uniformly from the entire view, the
// primitive behind the Random baseline of Section 6.2.
func (v *View) SampleAll(n int, rng *rand.Rand) []int {
	defer observeQuery(time.Now())
	obsSampleCalls.Inc()
	v.stats.Queries.Add(1)
	total := v.NumRows()
	if total == 0 || n <= 0 {
		return nil
	}
	if n >= total {
		out := rng.Perm(total)
		return out
	}
	out := floydSample(total, n, rng)
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// SampleOneNearCenter returns one random row within Chebyshev distance
// gamma of the given cell center, or -1 when the area holds no rows. This
// is the per-cell retrieval of the object discovery phase (Section 3):
// "for each cell, we identify the virtual center and we retrieve a single
// random object within distance gamma < delta/2 along each dimension".
func (v *View) SampleOneNearCenter(center geom.Point, gamma float64, rng *rand.Rand) int {
	rows := v.SampleNear(center, gamma, 1, rng)
	if len(rows) == 0 {
		return -1
	}
	return rows[0]
}

// DensityIn returns the number of rows inside rect divided by the total
// row count. Discovery uses cell density to adapt its sampling radius to
// skew (sparse cells get a larger gamma, Section 3).
func (v *View) DensityIn(rect geom.Rect) float64 {
	if v.NumRows() == 0 {
		return 0
	}
	return float64(v.Count(rect)) / float64(v.NumRows())
}
