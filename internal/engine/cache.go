package engine

import (
	"container/list"
	"math"
	"sync"
	"sync/atomic"

	"github.com/explore-by-example/aide/internal/geom"
	"github.com/explore-by-example/aide/internal/obs"
)

// Process-wide cache metrics, aggregated across every Cache instance so
// /v1/metrics reflects total reuse regardless of how many caches exist.
// Per-cache numbers come from Cache.Stats.
var (
	obsCacheHits      = obs.GetCounter("engine.cache.hits")
	obsCacheMisses    = obs.GetCounter("engine.cache.misses")
	obsCacheEvictions = obs.GetCounter("engine.cache.evictions")

	// engine_cache_ops{op="hit"|"miss"|"evict"} is the labeled mirror of
	// the counters above for Prometheus consumers; children are resolved
	// once here so the hot path stays one extra atomic per op.
	obsCacheOpHit   = obs.GetCounterVec("engine_cache_ops", "op").With("hit")
	obsCacheOpMiss  = obs.GetCounterVec("engine_cache_ops", "op").With("miss")
	obsCacheOpEvict = obs.GetCounterVec("engine_cache_ops", "op").With("evict")

	// Aggregate occupancy across every live Cache, maintained as deltas
	// on put/evict and exported as gauges at scrape time. A Cache dropped
	// without being emptied keeps its last occupancy counted — in the
	// server there is one long-lived cache per dataset, so in practice
	// the gauges track real memoized bytes/entries.
	cacheBytesTotal   atomic.Int64
	cacheEntriesTotal atomic.Int64
)

func init() {
	obs.Default.RegisterCollector(func(r *obs.Registry) {
		r.Gauge("engine.cache.bytes").Set(float64(cacheBytesTotal.Load()))
		r.Gauge("engine.cache.entries").Set(float64(cacheEntriesTotal.Load()))
	})
}

const (
	// cacheShardCount spreads the LRU over independently locked shards so
	// concurrent sessions over one shared view don't serialize on a single
	// mutex. Sharding is by rect hash, so a given rect always lands in the
	// same shard.
	cacheShardCount = 16

	// cacheQuantum is the grid rect endpoints snap to for HASHING ONLY:
	// near-identical floats land in the same bucket, where the exact
	// (bit-level) rect comparison decides whether the cached result
	// applies. Quantization never changes what a lookup returns — that
	// would break the cached-vs-uncached bit-identity guarantee — it only
	// co-locates near-misses so they overwrite each other instead of
	// piling up.
	cacheQuantum = 1e-6

	// minCacheBytes floors the budget so a Cache is never too small to
	// hold a single typical entry.
	minCacheBytes = 1 << 16
)

type cacheKind uint8

const (
	kindCount cacheKind = iota
	kindRows
)

// cacheKey is the bucket address of one memoized result: the result kind
// plus the quantized rect hash (salted by shard partition). Two distinct
// rects may share a key (quantization or plain hash collision); the
// entry's exact rect and salt disambiguate at lookup.
type cacheKey struct {
	kind cacheKind
	hash uint64
}

// cacheEntry is one memoized result. rect is a private clone compared
// bit-for-bit on lookup; rows is a private copy, copied again on every
// hit, because RowsIn callers may mutate the returned slice. salt is
// the shard partition the result belongs to (0 = whole view): a shard's
// entries answer only that shard's lookups, so partitions of one shared
// Cache never cross-contaminate.
type cacheEntry struct {
	key   cacheKey
	salt  uint64
	rect  geom.Rect
	count int
	rows  []int
	size  int64
}

// entrySize approximates an entry's memory footprint for the byte
// budget: struct + list element overhead, interval endpoints, row ids.
func entrySize(rect geom.Rect, rows []int) int64 {
	return 128 + int64(len(rect))*16 + int64(len(rows))*8
}

type cacheShard struct {
	mu    sync.Mutex
	lru   *list.List // front = most recently used
	table map[cacheKey]*list.Element
	bytes int64
}

// Cache is a bounded, sharded LRU memoizing Count and RowsIn results on
// immutable views. Because views never change after construction, a
// cached result is exactly the result a fresh scan would produce, so
// cached and uncached runs are bit-identical — pinned by equivalence
// tests. RNG-driven queries (SampleRect and friends) are never cached:
// their results depend on the caller's rng state, not just the rect.
//
// A Cache is safe for concurrent use and may back any number of views
// (attach with View.WithCache); sharing one Cache across all sessions
// over a dataset is what turns AIDE's heavily overlapping steering
// queries — grid-cell density counts during discovery, repeated
// evaluation scans — into cross-session cache hits.
type Cache struct {
	shardMax int64 // per-shard byte budget
	shards   [cacheShardCount]cacheShard

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

// CacheStats is a point-in-time snapshot of a Cache's counters and
// occupancy.
type CacheStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Entries   int
	Bytes     int64
	MaxBytes  int64
}

// HitRate returns hits / (hits + misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// NewCache returns a cache bounded to roughly maxBytes of memoized
// results (floored to a usable minimum). The budget is split evenly
// across shards; eviction is LRU per shard.
func NewCache(maxBytes int64) *Cache {
	if maxBytes < minCacheBytes {
		maxBytes = minCacheBytes
	}
	c := &Cache{shardMax: maxBytes / cacheShardCount}
	if c.shardMax < 1 {
		c.shardMax = 1
	}
	for i := range c.shards {
		c.shards[i].lru = list.New()
		c.shards[i].table = make(map[cacheKey]*list.Element)
	}
	return c
}

// Stats returns a snapshot of the cache's counters and occupancy.
func (c *Cache) Stats() CacheStats {
	s := CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		MaxBytes:  c.shardMax * cacheShardCount,
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		s.Entries += sh.lru.Len()
		s.Bytes += sh.bytes
		sh.mu.Unlock()
	}
	return s
}

// quantBits maps one rect endpoint into the hash domain: finite values
// snap to the cacheQuantum grid; non-finite or astronomically large
// values (which the grid cannot represent) hash their raw bits instead.
func quantBits(x float64) uint64 {
	if math.IsNaN(x) || math.Abs(x) > 1e15 {
		return math.Float64bits(x)
	}
	return uint64(int64(math.Round(x / cacheQuantum)))
}

// rectHash is FNV-1a over the kind, shard salt, dimensionality and
// quantized endpoints of rect. Distinct salts spread one rect's
// per-shard results across distinct buckets.
func rectHash(kind cacheKind, salt uint64, rect geom.Rect) uint64 {
	h := uint64(14695981039346656037)
	mix := func(u uint64) {
		for i := 0; i < 8; i++ {
			h ^= u & 0xff
			h *= 1099511628211
			u >>= 8
		}
	}
	mix(uint64(kind)<<32 | uint64(len(rect)))
	if salt != 0 {
		mix(salt)
	}
	for _, iv := range rect {
		mix(quantBits(iv.Lo))
		mix(quantBits(iv.Hi))
	}
	return h
}

// rectEqual reports exact floating-point equality of two rects — the
// lookup predicate that keeps cached results bit-identical to fresh
// scans. (-0 == 0 compares equal, which is correct: the two produce
// identical scan results.)
func rectEqual(a, b geom.Rect) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Lo != b[i].Lo || a[i].Hi != b[i].Hi {
			return false
		}
	}
	return true
}

// get returns the memoized entry for (kind, salt, rect), if any. The
// returned entry is immutable; callers must copy rows before handing
// them out.
func (c *Cache) get(kind cacheKind, salt uint64, rect geom.Rect) (*cacheEntry, bool) {
	key := cacheKey{kind: kind, hash: rectHash(kind, salt, rect)}
	s := &c.shards[key.hash%cacheShardCount]
	s.mu.Lock()
	if el, ok := s.table[key]; ok {
		e := el.Value.(*cacheEntry)
		if e.salt == salt && rectEqual(e.rect, rect) {
			s.lru.MoveToFront(el)
			s.mu.Unlock()
			c.hits.Add(1)
			obsCacheHits.Inc()
			obsCacheOpHit.Inc()
			return e, true
		}
	}
	s.mu.Unlock()
	c.misses.Add(1)
	obsCacheMisses.Inc()
	obsCacheOpMiss.Inc()
	return nil, false
}

// put memoizes a result, cloning rect and copying rows so the entry
// shares no memory with the caller. Inserting past the shard budget
// evicts LRU entries (possibly including the new one, when a single
// result exceeds the whole budget).
func (c *Cache) put(kind cacheKind, salt uint64, rect geom.Rect, count int, rows []int) {
	e := &cacheEntry{
		key:   cacheKey{kind: kind, hash: rectHash(kind, salt, rect)},
		salt:  salt,
		rect:  rect.Clone(),
		count: count,
		size:  entrySize(rect, rows),
	}
	if rows != nil {
		e.rows = make([]int, len(rows))
		copy(e.rows, rows)
	}
	s := &c.shards[e.key.hash%cacheShardCount]
	var byteDelta, entryDelta int64
	s.mu.Lock()
	if el, ok := s.table[e.key]; ok {
		// Same bucket: refresh (same rect) or overwrite (quantized
		// near-miss/collision) — either way the old entry goes.
		old := el.Value.(*cacheEntry)
		s.bytes -= old.size
		el.Value = e
		s.bytes += e.size
		s.lru.MoveToFront(el)
		byteDelta = e.size - old.size
	} else {
		s.table[e.key] = s.lru.PushFront(e)
		s.bytes += e.size
		byteDelta = e.size
		entryDelta = 1
	}
	evicted := int64(0)
	for s.bytes > c.shardMax {
		back := s.lru.Back()
		if back == nil {
			break
		}
		be := back.Value.(*cacheEntry)
		s.lru.Remove(back)
		delete(s.table, be.key)
		s.bytes -= be.size
		byteDelta -= be.size
		entryDelta--
		evicted++
	}
	s.mu.Unlock()
	cacheBytesTotal.Add(byteDelta)
	cacheEntriesTotal.Add(entryDelta)
	if evicted > 0 {
		c.evictions.Add(evicted)
		obsCacheEvictions.Add(evicted)
		obsCacheOpEvict.Add(evicted)
	}
}

// WithCache returns a view sharing this view's table, indexes and stats
// whose Count and RowsIn results are memoized in c. Attach one Cache to
// the shared view of a dataset and every session over it reuses each
// other's scans; results are bit-identical to the uncached view. A nil
// c disables caching.
func (v *View) WithCache(c *Cache) *View {
	cp := *v
	cp.cache = c
	return &cp
}

// Cache returns the cache attached to this view, or nil.
func (v *View) Cache() *Cache { return v.cache }
