package engine

import (
	"fmt"
	"strings"

	"github.com/explore-by-example/aide/internal/geom"
)

// Query is AIDE's final output: a disjunction of conjunctive range
// predicates over the exploration attributes, each disjunct one
// hyper-rectangle in raw attribute space. It is the "data extraction
// query" the framework translates the decision tree into (Section 2.2).
type Query struct {
	// Table is the table the query selects from.
	Table string
	// Attrs are the exploration attribute names, in the same order as
	// the rectangle dimensions.
	Attrs []string
	// Areas are the relevant areas in raw attribute space; the query
	// selects the union of these hyper-rectangles. An empty Areas slice
	// selects nothing.
	Areas []geom.Rect
	// Domains, when non-nil, holds the full raw domain of each attribute.
	// SQL rendering omits predicates that span the entire domain — this
	// is how attributes the classifier found irrelevant disappear from
	// the final query (Section 5.2, "identifying irrelevant attributes").
	Domains geom.Rect
}

// SQL renders the query as a SELECT statement, e.g.
//
//	SELECT * FROM trials WHERE (age >= 20 AND age <= 40 AND dosage >= 0 AND dosage <= 10)
//	   OR (age >= 0 AND age <= 20 AND dosage >= 10 AND dosage <= 15);
//
// matching the query-formulation example of Section 2.2.
func (q Query) SQL() string {
	var b strings.Builder
	fmt.Fprintf(&b, "SELECT * FROM %s", q.Table)
	if len(q.Areas) == 0 {
		b.WriteString(" WHERE FALSE;")
		return b.String()
	}
	b.WriteString(" WHERE ")
	for i, area := range q.Areas {
		if i > 0 {
			b.WriteString(" OR ")
		}
		b.WriteByte('(')
		wrote := false
		for d, attr := range q.Attrs {
			if q.Domains != nil && area[d].Lo <= q.Domains[d].Lo && area[d].Hi >= q.Domains[d].Hi {
				continue // attribute unconstrained in this disjunct
			}
			if wrote {
				b.WriteString(" AND ")
			}
			wrote = true
			fmt.Fprintf(&b, "%s >= %s AND %s <= %s",
				attr, trimFloat(area[d].Lo), attr, trimFloat(area[d].Hi))
		}
		if !wrote {
			b.WriteString("TRUE")
		}
		b.WriteByte(')')
	}
	b.WriteByte(';')
	return b.String()
}

// Matches reports whether a raw-space point (ordered like Attrs) satisfies
// the query.
func (q Query) Matches(p geom.Point) bool {
	for _, area := range q.Areas {
		if area.Contains(p) {
			return true
		}
	}
	return false
}

// NumAreas returns the number of disjuncts.
func (q Query) NumAreas() int { return len(q.Areas) }

// NormalizedAreas converts the query's raw areas into the normalized
// space of the given normalizer.
func (q Query) NormalizedAreas(n *geom.Normalizer) []geom.Rect {
	out := make([]geom.Rect, len(q.Areas))
	for i, a := range q.Areas {
		out[i] = n.ToNormRect(a)
	}
	return out
}

// Execute returns the ids of all rows the query selects when evaluated
// against the view, in the engine's deterministic scan order (grid cells
// row-major, rows ascending within each cell). The view's attributes
// must match q.Attrs. The disjunction over areas is evaluated as bitmap
// OR over the engine's cell-major slot space (RowsInAny), so overlapping
// areas dedup without re-scans or hashing.
func (q Query) Execute(v *View) ([]int, error) {
	if err := q.checkView(v); err != nil {
		return nil, err
	}
	return v.RowsInAny(q.NormalizedAreas(v.Normalizer())), nil
}

// Selectivity returns the fraction of rows the query selects.
func (q Query) Selectivity(v *View) (float64, error) {
	rows, err := q.Execute(v)
	if err != nil {
		return 0, err
	}
	if v.NumRows() == 0 {
		return 0, nil
	}
	return float64(len(rows)) / float64(v.NumRows()), nil
}

func (q Query) checkView(v *View) error {
	attrs := v.Attrs()
	if len(attrs) != len(q.Attrs) {
		return fmt.Errorf("engine: query has %d attrs, view has %d", len(q.Attrs), len(attrs))
	}
	for i := range attrs {
		if attrs[i] != q.Attrs[i] {
			return fmt.Errorf("engine: query attr %q != view attr %q at position %d", q.Attrs[i], attrs[i], i)
		}
	}
	for _, a := range q.Areas {
		if a.Dims() != len(q.Attrs) {
			return fmt.Errorf("engine: area has %d dims, query has %d attrs", a.Dims(), len(q.Attrs))
		}
	}
	return nil
}

// trimFloat renders a float compactly (no trailing zeros).
func trimFloat(v float64) string {
	s := fmt.Sprintf("%.6f", v)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}
