package engine

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/explore-by-example/aide/internal/geom"
)

// ParseQuery parses the SELECT dialect that Query.SQL emits — a
// disjunction of conjunctive range predicates — back into a Query, so
// predicted queries can be stored as text and re-executed later:
//
//	SELECT * FROM t WHERE (a >= 1 AND a <= 2 AND b >= 0 AND b <= 5) OR (a >= 7 AND a <= 9);
//	SELECT * FROM t WHERE FALSE;
//	SELECT * FROM t WHERE (TRUE);
//
// attrs fixes the attribute order of the resulting rectangles (the query
// text alone cannot define dimension order, and disjuncts may omit
// unconstrained attributes). domains supplies the per-attribute [min,max]
// used for omitted attributes; it may be nil only when every disjunct
// constrains every attribute on both sides.
func ParseQuery(sql string, attrs []string, domains geom.Rect) (Query, error) {
	if domains != nil && len(domains) != len(attrs) {
		return Query{}, fmt.Errorf("engine: %d domains for %d attrs", len(domains), len(attrs))
	}
	p := &sqlParser{input: sql}
	p.skipSpace()
	if err := p.keyword("SELECT"); err != nil {
		return Query{}, err
	}
	if err := p.token("*"); err != nil {
		return Query{}, err
	}
	if err := p.keyword("FROM"); err != nil {
		return Query{}, err
	}
	table, err := p.identifier()
	if err != nil {
		return Query{}, fmt.Errorf("engine: parsing table name: %w", err)
	}
	q := Query{Table: table, Attrs: attrs, Domains: domains}
	if err := p.keyword("WHERE"); err != nil {
		return Query{}, err
	}

	p.skipSpace()
	if p.tryKeyword("FALSE") {
		if err := p.finish(); err != nil {
			return Query{}, err
		}
		return q, nil
	}

	attrIdx := make(map[string]int, len(attrs))
	for i, a := range attrs {
		attrIdx[a] = i
	}

	for {
		area, err := p.disjunct(attrIdx, len(attrs), domains)
		if err != nil {
			return Query{}, err
		}
		q.Areas = append(q.Areas, area)
		p.skipSpace()
		if !p.tryKeyword("OR") {
			break
		}
	}
	if err := p.finish(); err != nil {
		return Query{}, err
	}
	return q, nil
}

// sqlParser is a hand-rolled recursive-descent parser for the emitted
// SQL subset.
type sqlParser struct {
	input string
	pos   int
}

func (p *sqlParser) errf(format string, args ...any) error {
	return fmt.Errorf("engine: parse error at byte %d: %s", p.pos, fmt.Sprintf(format, args...))
}

func (p *sqlParser) skipSpace() {
	for p.pos < len(p.input) {
		switch p.input[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

// keyword consumes a case-insensitive keyword or fails.
func (p *sqlParser) keyword(kw string) error {
	if !p.tryKeyword(kw) {
		return p.errf("expected %q", kw)
	}
	return nil
}

// tryKeyword consumes the keyword when present.
func (p *sqlParser) tryKeyword(kw string) bool {
	p.skipSpace()
	end := p.pos + len(kw)
	if end > len(p.input) {
		return false
	}
	if !strings.EqualFold(p.input[p.pos:end], kw) {
		return false
	}
	// Must not run into an identifier character.
	if end < len(p.input) && isIdentChar(p.input[end]) {
		return false
	}
	p.pos = end
	return true
}

// token consumes an exact punctuation token.
func (p *sqlParser) token(tok string) error {
	p.skipSpace()
	if !strings.HasPrefix(p.input[p.pos:], tok) {
		return p.errf("expected %q", tok)
	}
	p.pos += len(tok)
	return nil
}

// tryToken consumes tok when present.
func (p *sqlParser) tryToken(tok string) bool {
	p.skipSpace()
	if strings.HasPrefix(p.input[p.pos:], tok) {
		p.pos += len(tok)
		return true
	}
	return false
}

func isIdentChar(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

// identifier consumes an attribute or table name.
func (p *sqlParser) identifier() (string, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.input) && isIdentChar(p.input[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return "", p.errf("expected identifier")
	}
	return p.input[start:p.pos], nil
}

// number consumes a float literal.
func (p *sqlParser) number() (float64, error) {
	p.skipSpace()
	start := p.pos
	if p.pos < len(p.input) && (p.input[p.pos] == '-' || p.input[p.pos] == '+') {
		p.pos++
	}
	for p.pos < len(p.input) {
		c := p.input[p.pos]
		if (c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' {
			p.pos++
			continue
		}
		if (c == '-' || c == '+') && p.pos > start && (p.input[p.pos-1] == 'e' || p.input[p.pos-1] == 'E') {
			p.pos++
			continue
		}
		break
	}
	if p.pos == start {
		return 0, p.errf("expected number")
	}
	v, err := strconv.ParseFloat(p.input[start:p.pos], 64)
	if err != nil {
		return 0, p.errf("bad number %q: %v", p.input[start:p.pos], err)
	}
	return v, nil
}

// disjunct parses one parenthesized conjunction into a rectangle.
func (p *sqlParser) disjunct(attrIdx map[string]int, dims int, domains geom.Rect) (geom.Rect, error) {
	if err := p.token("("); err != nil {
		return nil, err
	}
	// Start from the domains (or unset markers when nil).
	area := make(geom.Rect, dims)
	set := make([][2]bool, dims) // per dim: lo set, hi set
	for i := range area {
		if domains != nil {
			area[i] = domains[i]
		}
	}
	if p.tryKeyword("TRUE") {
		if err := p.token(")"); err != nil {
			return nil, err
		}
		if domains == nil {
			return nil, p.errf("TRUE disjunct requires domains")
		}
		return area, nil
	}
	for {
		name, err := p.identifier()
		if err != nil {
			return nil, err
		}
		dim, ok := attrIdx[name]
		if !ok {
			return nil, p.errf("unknown attribute %q", name)
		}
		var isLower bool
		switch {
		case p.tryToken(">="):
			isLower = true
		case p.tryToken("<="):
			isLower = false
		default:
			return nil, p.errf("expected >= or <= after %q", name)
		}
		v, err := p.number()
		if err != nil {
			return nil, err
		}
		if isLower {
			area[dim].Lo = v
			set[dim][0] = true
		} else {
			area[dim].Hi = v
			set[dim][1] = true
		}
		if p.tryKeyword("AND") {
			continue
		}
		break
	}
	if err := p.token(")"); err != nil {
		return nil, err
	}
	if domains == nil {
		for d := range set {
			if !set[d][0] || !set[d][1] {
				return nil, p.errf("attribute %q not fully constrained and no domains given", keyFor(attrIdx, d))
			}
		}
	}
	return area, nil
}

// finish consumes the optional trailing semicolon and requires EOF.
func (p *sqlParser) finish() error {
	p.tryToken(";")
	p.skipSpace()
	if p.pos != len(p.input) {
		return p.errf("unexpected trailing input %q", p.input[p.pos:])
	}
	return nil
}

func keyFor(m map[string]int, dim int) string {
	for k, v := range m {
		if v == dim {
			return k
		}
	}
	return fmt.Sprintf("dim%d", dim)
}
