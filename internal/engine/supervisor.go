package engine

import (
	"sync"
	"sync/atomic"
	"time"
)

// ShardState is one step of a shard's supervised health lifecycle.
//
//	Healthy ──fail──▶ Suspect ──fail──▶ Quarantined
//	   ▲                 │                   │ cooldown ops elapse
//	   │              success                ▼
//	   └────────────────┴──────────── Recovering ──fail──▶ Quarantined
//	                                      │success
//	                                      ▶ Healthy
//
// Outcomes are recorded at operation level (after retries and hedges
// have been exhausted), so one slow attempt never moves a shard: only
// an operation the shard could not serve at all does. Two consecutive
// failed operations quarantine; a quarantined shard is skipped —
// queries degrade to partial results — until a cooldown measured in
// scatter operations elapses, after which one probe operation is
// admitted (Recovering). The probe's outcome decides: success restores
// Healthy, failure re-quarantines for another cooldown.
type ShardState int32

const (
	ShardHealthy ShardState = iota
	ShardSuspect
	ShardQuarantined
	ShardRecovering
)

// String returns the lowercase state name used in health endpoints and
// metrics.
func (s ShardState) String() string {
	switch s {
	case ShardHealthy:
		return "healthy"
	case ShardSuspect:
		return "suspect"
	case ShardQuarantined:
		return "quarantined"
	case ShardRecovering:
		return "recovering"
	}
	return "unknown"
}

// ShardTransition is one recorded state change: at operation tick Tick,
// shard Shard moved From -> To. The supervisor keeps a bounded log so
// chaos tests can assert the exact transition sequence is deterministic
// under a seeded injector.
type ShardTransition struct {
	Tick  uint64
	Shard int
	From  ShardState
	To    ShardState
}

// quarantineFails is how many consecutive failed operations move a
// shard from healthy to quarantined (via suspect).
const quarantineFails = 2

// defaultCooldownOps is how many scatter operations a quarantined shard
// sits out before a probe is admitted.
const defaultCooldownOps = 8

// maxTransitionLog bounds the supervisor's transition history.
const maxTransitionLog = 256

// supervisor tracks per-shard health across scatter operations. All
// state sits behind one mutex — transitions are rare (failures only)
// and the per-operation cost for a healthy shard is one short critical
// section in admit plus one in record.
//
// The quarantine cooldown has two modes. The default counts scatter
// operations (deterministic under test, load-proportional in
// production). When ShardOptions.CooldownTime is positive the cooldown
// is wall time instead, read through the injectable now func so tests
// walk the full state machine against a fake clock without sleeping.
type supervisor struct {
	tick         atomic.Uint64 // scatter operations started; the clock op-cooldowns count in
	cooldown     uint64
	cooldownTime time.Duration    // > 0 switches quarantine cooldown to wall time
	now          func() time.Time // injectable clock; time.Now outside tests

	mu              sync.Mutex
	states          []ShardState
	fails           []int    // consecutive failed operations per shard
	quarantinedAt   []uint64 // tick of the most recent quarantine entry
	quarantinedWhen []time.Time
	log             []ShardTransition
}

func newSupervisor(n int, opts ShardOptions) *supervisor {
	cooldownOps := opts.CooldownOps
	if cooldownOps <= 0 {
		cooldownOps = defaultCooldownOps
	}
	return &supervisor{
		cooldown:        uint64(cooldownOps),
		cooldownTime:    opts.CooldownTime,
		now:             time.Now,
		states:          make([]ShardState, n),
		fails:           make([]int, n),
		quarantinedAt:   make([]uint64, n),
		quarantinedWhen: make([]time.Time, n),
	}
}

// beginOp advances the operation clock; every scatter calls it exactly
// once, so cooldowns are measured in operations, not wall time —
// deterministic under test.
func (s *supervisor) beginOp() uint64 { return s.tick.Add(1) }

// admit decides whether shard i participates in the operation that
// started at tick. A quarantined shard whose cooldown has elapsed is
// moved to recovering and admitted as a probe.
func (s *supervisor) admit(i int, tick uint64) (admitted, probe bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch s.states[i] {
	case ShardHealthy, ShardSuspect:
		return true, false
	case ShardRecovering:
		return true, true
	default: // ShardQuarantined
		if s.cooldownElapsed(i, tick) {
			s.transition(i, tick, ShardRecovering)
			return true, true
		}
		return false, false
	}
}

// cooldownElapsed reports whether shard i has sat out its quarantine:
// wall time when CooldownTime is configured, operation ticks otherwise.
// Callers hold s.mu.
func (s *supervisor) cooldownElapsed(i int, tick uint64) bool {
	if s.cooldownTime > 0 {
		return s.now().Sub(s.quarantinedWhen[i]) >= s.cooldownTime
	}
	return tick-s.quarantinedAt[i] >= s.cooldown
}

// record notes the outcome of shard i's operation (post-retry,
// post-hedge) and applies the state machine.
func (s *supervisor) record(i int, tick uint64, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ok {
		s.fails[i] = 0
		if s.states[i] != ShardHealthy {
			s.transition(i, tick, ShardHealthy)
		}
		return
	}
	s.fails[i]++
	switch s.states[i] {
	case ShardHealthy:
		s.transition(i, tick, ShardSuspect)
	case ShardSuspect:
		if s.fails[i] >= quarantineFails {
			s.quarantine(i, tick)
		}
	case ShardRecovering:
		// Failed probe: back to quarantine for another cooldown.
		s.quarantine(i, tick)
	}
}

// quarantine stamps both cooldown clocks and enters quarantine; callers
// hold s.mu.
func (s *supervisor) quarantine(i int, tick uint64) {
	s.quarantinedAt[i] = tick
	if s.cooldownTime > 0 {
		s.quarantinedWhen[i] = s.now()
	}
	s.transition(i, tick, ShardQuarantined)
}

// transition applies and logs a state change; callers hold s.mu.
func (s *supervisor) transition(i int, tick uint64, to ShardState) {
	from := s.states[i]
	if from == to {
		return
	}
	s.states[i] = to
	if len(s.log) >= maxTransitionLog {
		copy(s.log, s.log[1:])
		s.log = s.log[:maxTransitionLog-1]
	}
	s.log = append(s.log, ShardTransition{Tick: tick, Shard: i, From: from, To: to})
}

// state returns shard i's current state.
func (s *supervisor) state(i int) ShardState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.states[i]
}

// snapshot returns a copy of every shard's state and consecutive-fail
// count.
func (s *supervisor) snapshot() ([]ShardState, []int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	states := make([]ShardState, len(s.states))
	copy(states, s.states)
	fails := make([]int, len(s.fails))
	copy(fails, s.fails)
	return states, fails
}

// transitions returns a copy of the bounded transition log.
func (s *supervisor) transitions() []ShardTransition {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ShardTransition, len(s.log))
	copy(out, s.log)
	return out
}
