package engine

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/explore-by-example/aide/internal/dataset"
	"github.com/explore-by-example/aide/internal/geom"
)

// gridTable builds a 10x10 lattice table with values 0..9 in each of two
// columns, 100 rows total, domains [0,9].
func gridTable(t *testing.T) *dataset.Table {
	t.Helper()
	schema := dataset.Schema{
		{Name: "x", Min: 0, Max: 9},
		{Name: "y", Min: 0, Max: 9},
	}
	b := dataset.NewBuilder("lattice", schema)
	for x := 0; x < 10; x++ {
		for y := 0; y < 10; y++ {
			b.Add(float64(x), float64(y))
		}
	}
	return b.Build()
}

func latticeView(t *testing.T) *View {
	t.Helper()
	v, err := NewView(gridTable(t), []string{"x", "y"})
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestNewViewErrors(t *testing.T) {
	tab := gridTable(t)
	if _, err := NewView(tab, []string{"z"}); err == nil {
		t.Error("unknown attribute should error")
	}
	if _, err := NewView(tab, nil); err == nil {
		t.Error("empty attribute list should error")
	}
}

func TestViewBasics(t *testing.T) {
	v := latticeView(t)
	if v.Dims() != 2 || v.NumRows() != 100 {
		t.Fatalf("dims=%d rows=%d", v.Dims(), v.NumRows())
	}
	attrs := v.Attrs()
	if attrs[0] != "x" || attrs[1] != "y" {
		t.Errorf("Attrs = %v", attrs)
	}
	// Row 0 is (0,0): normalized (0,0). Row 99 is (9,9): normalized (100,100).
	p := v.NormPoint(0)
	if p[0] != 0 || p[1] != 0 {
		t.Errorf("NormPoint(0) = %v", p)
	}
	p = v.NormPoint(99)
	if math.Abs(p[0]-100) > 1e-9 || math.Abs(p[1]-100) > 1e-9 {
		t.Errorf("NormPoint(99) = %v", p)
	}
	raw := v.RawPoint(99)
	if raw[0] != 9 || raw[1] != 9 {
		t.Errorf("RawPoint(99) = %v", raw)
	}
	if got := v.FullRow(99); got[0] != 9 || got[1] != 9 {
		t.Errorf("FullRow = %v", got)
	}
}

func TestCountAndRowsIn(t *testing.T) {
	v := latticeView(t)
	// Normalized rect [0,50]x[0,50] covers raw x,y in [0,4.5]: 5x5 = 25 rows.
	rect := geom.R(0, 50, 0, 50)
	if got := v.Count(rect); got != 25 {
		t.Errorf("Count = %d, want 25", got)
	}
	rows := v.RowsIn(rect)
	if len(rows) != 25 {
		t.Fatalf("RowsIn returned %d rows", len(rows))
	}
	for _, r := range rows {
		p := v.RawPoint(r)
		if p[0] > 4.5 || p[1] > 4.5 {
			t.Errorf("row %d = %v outside rect", r, p)
		}
	}
}

func TestCountFullDomain(t *testing.T) {
	v := latticeView(t)
	if got := v.Count(geom.NewRect(2)); got != 100 {
		t.Errorf("full-domain Count = %d, want 100", got)
	}
}

func TestCountEmptyRegion(t *testing.T) {
	v := latticeView(t)
	// Between lattice points: raw (0.3, 0.3) +- tiny.
	rect := geom.R(2, 3, 2, 3)
	if got := v.Count(rect); got != 0 {
		t.Errorf("Count = %d, want 0", got)
	}
}

func TestSampleRectUniformAndExact(t *testing.T) {
	v := latticeView(t)
	rng := rand.New(rand.NewSource(1))
	rect := geom.R(0, 50, 0, 50) // 25 matching rows
	got := v.SampleRect(rect, 10, rng)
	if len(got) != 10 {
		t.Fatalf("got %d rows, want 10", len(got))
	}
	seen := map[int]bool{}
	for _, r := range got {
		if seen[r] {
			t.Error("duplicate row in sample")
		}
		seen[r] = true
		if !v.Contains(rect, r) {
			t.Errorf("sampled row %d outside rect", r)
		}
	}
	// Requesting more than available returns all matching rows.
	all := v.SampleRect(rect, 1000, rng)
	if len(all) != 25 {
		t.Errorf("oversample returned %d rows, want 25", len(all))
	}
}

func TestSampleRectEmpty(t *testing.T) {
	v := latticeView(t)
	rng := rand.New(rand.NewSource(1))
	if got := v.SampleRect(geom.R(2, 3, 2, 3), 5, rng); got != nil {
		t.Errorf("empty region sample = %v", got)
	}
	if got := v.SampleRect(geom.NewRect(2), 0, rng); got != nil {
		t.Errorf("n=0 sample = %v", got)
	}
}

func TestSampleRectCoverage(t *testing.T) {
	// Over many draws of size 1, every matching row should appear:
	// sampling is uniform over rows, not cells.
	v := latticeView(t)
	rng := rand.New(rand.NewSource(7))
	rect := geom.R(0, 30, 0, 30) // raw [0,2.7]^2 -> 9 rows
	counts := map[int]int{}
	for i := 0; i < 2000; i++ {
		rows := v.SampleRect(rect, 1, rng)
		if len(rows) != 1 {
			t.Fatal("expected one row")
		}
		counts[rows[0]]++
	}
	if len(counts) != 9 {
		t.Fatalf("distinct rows sampled = %d, want 9", len(counts))
	}
	for r, c := range counts {
		if c < 100 {
			t.Errorf("row %d sampled only %d/2000 times; sampling biased", r, c)
		}
	}
}

func TestSampleAll(t *testing.T) {
	v := latticeView(t)
	rng := rand.New(rand.NewSource(3))
	got := v.SampleAll(20, rng)
	if len(got) != 20 {
		t.Fatalf("len = %d", len(got))
	}
	seen := map[int]bool{}
	for _, r := range got {
		if seen[r] {
			t.Error("duplicate")
		}
		seen[r] = true
	}
	if got := v.SampleAll(500, rng); len(got) != 100 {
		t.Errorf("oversample len = %d, want 100", len(got))
	}
	if got := v.SampleAll(0, rng); got != nil {
		t.Errorf("n=0 = %v", got)
	}
}

func TestSampleNearAndOneNearCenter(t *testing.T) {
	v := latticeView(t)
	rng := rand.New(rand.NewSource(5))
	// Center at normalized (50,50); radius 10 covers raw [3.6,5.4]^2 -> rows x,y in {4,5}.
	rows := v.SampleNear(geom.Point{50, 50}, 10, 100, rng)
	if len(rows) != 4 {
		t.Errorf("SampleNear found %d rows, want 4", len(rows))
	}
	r := v.SampleOneNearCenter(geom.Point{50, 50}, 10, rng)
	if r < 0 {
		t.Error("SampleOneNearCenter found nothing")
	}
	r = v.SampleOneNearCenter(geom.Point{25, 25}, 1, rng)
	if r != -1 {
		t.Errorf("expected -1 in empty area, got %d", r)
	}
}

func TestDensityIn(t *testing.T) {
	v := latticeView(t)
	got := v.DensityIn(geom.R(0, 50, 0, 50))
	if math.Abs(got-0.25) > 1e-9 {
		t.Errorf("DensityIn = %v, want 0.25", got)
	}
}

func TestSampledView(t *testing.T) {
	v := latticeView(t)
	s, err := v.Sampled(0.2, 42)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumRows() != 20 {
		t.Errorf("sampled rows = %d, want 20", s.NumRows())
	}
	// Normalized space is preserved: domains come from the schema.
	if s.Normalizer().Dims() != 2 {
		t.Error("normalizer dims wrong")
	}
	if _, err := v.Sampled(0, 1); err == nil {
		t.Error("fraction 0 should error")
	}
	if _, err := v.Sampled(1.5, 1); err == nil {
		t.Error("fraction >1 should error")
	}
}

func TestStatsCount(t *testing.T) {
	v := latticeView(t)
	v.Stats().Reset()
	rng := rand.New(rand.NewSource(1))
	v.Count(geom.NewRect(2))
	v.SampleRect(geom.R(0, 50, 0, 50), 3, rng)
	q, _ := v.Stats().Snapshot()
	if q != 2 {
		t.Errorf("queries = %d, want 2", q)
	}
	v.Stats().Reset()
	q, rows := v.Stats().Snapshot()
	if q != 0 || rows != 0 {
		t.Error("Reset did not zero counters")
	}
}

func TestQuerySQL(t *testing.T) {
	q := Query{
		Table: "trials",
		Attrs: []string{"age", "dosage"},
		Areas: []geom.Rect{
			geom.R(0, 20, 10, 15),
			geom.R(20, 40, 0, 10),
		},
	}
	want := "SELECT * FROM trials WHERE (age >= 0 AND age <= 20 AND dosage >= 10 AND dosage <= 15) OR (age >= 20 AND age <= 40 AND dosage >= 0 AND dosage <= 10);"
	if got := q.SQL(); got != want {
		t.Errorf("SQL() = %q, want %q", got, want)
	}
}

func TestQuerySQLEmpty(t *testing.T) {
	q := Query{Table: "t", Attrs: []string{"x"}}
	if got := q.SQL(); got != "SELECT * FROM t WHERE FALSE;" {
		t.Errorf("SQL() = %q", got)
	}
}

func TestQueryMatches(t *testing.T) {
	q := Query{
		Attrs: []string{"x", "y"},
		Areas: []geom.Rect{geom.R(0, 1, 0, 1), geom.R(5, 6, 5, 6)},
	}
	if !q.Matches(geom.Point{0.5, 0.5}) || !q.Matches(geom.Point{5.5, 5.5}) {
		t.Error("point in area should match")
	}
	if q.Matches(geom.Point{3, 3}) {
		t.Error("point outside areas should not match")
	}
	if q.NumAreas() != 2 {
		t.Error("NumAreas wrong")
	}
}

func TestQueryExecute(t *testing.T) {
	v := latticeView(t)
	q := Query{
		Table: "lattice",
		Attrs: []string{"x", "y"},
		Areas: []geom.Rect{
			geom.R(0, 1, 0, 1),   // 4 rows
			geom.R(1, 2, 1, 2),   // 4 rows, 1 shared with above
			geom.R(20, 10, 0, 1), // empty (inverted)
		},
	}
	rows, err := q.Execute(v)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Errorf("Execute returned %d rows, want 7 (dedup overlap)", len(rows))
	}
	sel, err := q.Selectivity(v)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sel-0.07) > 1e-9 {
		t.Errorf("Selectivity = %v, want 0.07", sel)
	}
}

func TestQueryExecuteChecksView(t *testing.T) {
	v := latticeView(t)
	q := Query{Table: "lattice", Attrs: []string{"x"}, Areas: []geom.Rect{geom.R(0, 1)}}
	if _, err := q.Execute(v); err == nil {
		t.Error("attr count mismatch should error")
	}
	q = Query{Table: "lattice", Attrs: []string{"y", "x"}, Areas: []geom.Rect{geom.R(0, 1, 0, 1)}}
	if _, err := q.Execute(v); err == nil {
		t.Error("attr order mismatch should error")
	}
	q = Query{Table: "lattice", Attrs: []string{"x", "y"}, Areas: []geom.Rect{geom.R(0, 1)}}
	if _, err := q.Execute(v); err == nil {
		t.Error("area dim mismatch should error")
	}
}

func TestTrimFloat(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		1.5:     "1.5",
		-2.25:   "-2.25",
		10:      "10",
		3.14159: "3.14159",
	}
	for in, want := range cases {
		if got := trimFloat(in); got != want {
			t.Errorf("trimFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestGridIndexHighDim(t *testing.T) {
	// 5-D view exercises the capped cells-per-dim path.
	tab := dataset.GenerateUniform(5000, 5, 11)
	v, err := NewView(tab, tab.Schema().Names())
	if err != nil {
		t.Fatal(err)
	}
	rect := geom.R(0, 50, 0, 50, 0, 50, 0, 50, 0, 50)
	count := v.Count(rect)
	// Expected ~ 5000 / 32 = 156.
	if count < 80 || count > 260 {
		t.Errorf("5-D octant count = %d, want ~156", count)
	}
	rng := rand.New(rand.NewSource(2))
	rows := v.SampleRect(rect, 10, rng)
	for _, r := range rows {
		if !v.Contains(rect, r) {
			t.Error("sample outside rect")
		}
	}
}

// Property: Count(rect) equals a brute-force scan for random rects.
func TestQuickCountMatchesBruteForce(t *testing.T) {
	tab := dataset.GenerateUniform(2000, 2, 21)
	v, err := NewView(tab, []string{"a0", "a1"})
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rect := make(geom.Rect, 2)
		for i := range rect {
			a := rng.Float64() * 100
			b := rng.Float64() * 100
			if a > b {
				a, b = b, a
			}
			rect[i] = geom.Interval{Lo: a, Hi: b}
		}
		want := 0
		for r := 0; r < v.NumRows(); r++ {
			if rect.Contains(v.NormPoint(r)) {
				want++
			}
		}
		return v.Count(rect) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: all sampled rows satisfy the rect, and sample sizes are
// min(n, matching).
func TestQuickSampleRectContract(t *testing.T) {
	tab := dataset.GenerateUniform(1000, 3, 31)
	v, err := NewView(tab, []string{"a0", "a1", "a2"})
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rect := make(geom.Rect, 3)
		for i := range rect {
			a := rng.Float64() * 100
			w := rng.Float64() * 50
			rect[i] = geom.Interval{Lo: a, Hi: math.Min(a+w, 100)}
		}
		n := 1 + rng.Intn(30)
		rows := v.SampleRect(rect, n, rng)
		matching := v.Count(rect)
		wantLen := n
		if matching < n {
			wantLen = matching
		}
		if len(rows) != wantLen {
			return false
		}
		seen := map[int]bool{}
		for _, r := range rows {
			if seen[r] || !v.Contains(rect, r) {
				return false
			}
			seen[r] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestQuerySQLDomainsEliminateUnconstrained(t *testing.T) {
	q := Query{
		Table:   "t",
		Attrs:   []string{"x", "y"},
		Areas:   []geom.Rect{geom.R(10, 20, 0, 9)},
		Domains: geom.R(0, 9, 0, 9),
	}
	// y spans its whole domain [0,9]: it must vanish from the SQL.
	want := "SELECT * FROM t WHERE (x >= 10 AND x <= 20);"
	if got := q.SQL(); got != want {
		t.Errorf("SQL = %q, want %q", got, want)
	}
	// All attributes unconstrained renders TRUE.
	q.Areas = []geom.Rect{geom.R(0, 9, 0, 9)}
	want = "SELECT * FROM t WHERE (TRUE);"
	if got := q.SQL(); got != want {
		t.Errorf("SQL = %q, want %q", got, want)
	}
}

func TestQuerySQLWithoutDomainsKeepsAll(t *testing.T) {
	q := Query{
		Table: "t",
		Attrs: []string{"x"},
		Areas: []geom.Rect{geom.R(0, 9)},
	}
	want := "SELECT * FROM t WHERE (x >= 0 AND x <= 9);"
	if got := q.SQL(); got != want {
		t.Errorf("SQL = %q, want %q", got, want)
	}
}

// Property: the sorted-index fast path (rect constrained in exactly one
// dimension) agrees with a brute-force scan.
func TestQuickSingleDimFastPath(t *testing.T) {
	tab := dataset.GenerateSDSS(3000, 41)
	v, err := NewView(tab, []string{"rowc", "colc"})
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dim := rng.Intn(2)
		lo := rng.Float64() * 95
		slab := geom.NewRect(2)
		slab[dim] = geom.Interval{Lo: lo, Hi: lo + rng.Float64()*10}
		want := 0
		for r := 0; r < v.NumRows(); r++ {
			if slab.Contains(v.NormPoint(r)) {
				want++
			}
		}
		n := 1 + rng.Intn(25)
		rows := v.SampleRect(slab, n, rng)
		wantLen := n
		if want < n {
			wantLen = want
		}
		if len(rows) != wantLen {
			return false
		}
		seen := map[int]bool{}
		for _, r := range rows {
			if seen[r] || !slab.Contains(v.NormPoint(r)) {
				return false
			}
			seen[r] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// The fast path is uniform over matching rows, like the grid path.
func TestSingleDimFastPathUniform(t *testing.T) {
	v := latticeView(t) // 10x10 lattice
	rng := rand.New(rand.NewSource(9))
	// Slab over x in [0, 30]: raw x in {0,1,2} -> 30 rows.
	slab := geom.R(0, 30, 0, 100)
	counts := map[int]int{}
	for i := 0; i < 3000; i++ {
		rows := v.SampleRect(slab, 1, rng)
		if len(rows) != 1 {
			t.Fatal("want one row")
		}
		counts[rows[0]]++
	}
	if len(counts) != 30 {
		t.Fatalf("distinct rows = %d, want 30", len(counts))
	}
	for r, c := range counts {
		if c < 40 {
			t.Errorf("row %d sampled %d/3000 times; biased", r, c)
		}
	}
}
