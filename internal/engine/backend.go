package engine

// This file is the shard execution boundary. ShardBackend is the
// complete query surface of ONE shard — everything the scatter-gather
// layer in shard.go needs from a shard, and nothing else — so the same
// supervised fan-out drives two implementations: localShard (below),
// which runs the sequential cores in-process over the shard's slab
// slices, and internal/shardrpc's remote client, which ships the same
// operations over a framed wire protocol to a worker process holding a
// bit-identical copy of the shard. Results are plain data (row ids,
// counts, candidate blocks); randomness, caching and gather order stay
// coordinator-side, which is what makes a remote shard bit-identical
// to a local one.

import (
	"context"

	"github.com/explore-by-example/aide/internal/geom"
)

// ShardCount is one shard's Count contribution: rows matched plus the
// rows-examined accounting the gather folds into the view stats.
type ShardCount struct {
	Matched  int64
	Examined int64
}

// ShardRows is one shard's RowsIn/RowsInAny contribution, rows in the
// shard's ascending slot (cell-major) order.
type ShardRows struct {
	Rows     []int
	Examined int64
}

// ShardSample is one shard's SampleRect grid-path contribution: the
// geometrically-full cells' row blocks and the boundary cells' verified
// survivors, both in cell order. The coordinator reassembles the exact
// unsharded candidate layout from these before drawing.
type ShardSample struct {
	Full     [][]int32
	Partial  []int
	Examined int64
}

// ShardBatchItem is one sub-query of a batched scatter, as shipped to a
// ShardBackend (and, for remote shards, over shardrpc's opBatch frame
// in one round-trip). Kind selects the grid primitive; Sorted items are
// covering-index slices instead (Dim/Iv used, Rect ignored).
type ShardBatchItem struct {
	Kind   BatchKind
	Sorted bool
	Rect   geom.Rect
	Dim    int
	Iv     geom.Interval
}

// ShardBatchResult is one shard's answer to one ShardBatchItem; exactly
// one field group is populated, matching the item's kind.
type ShardBatchResult struct {
	Count  ShardCount
	Rows   ShardRows
	Sample ShardSample
	Sorted []int32
}

// ShardBackend serves one shard's queries. Implementations must be
// safe for concurrent calls (attempts may overlap their own hedges) and
// must return results bit-identical to the in-process shard cores: the
// scatter layer treats every backend — local or remote — as the same
// shard, and the bit-identity guarantee rests on it.
//
// Errors are the fault-isolation channel: a backend that cannot serve
// (worker dead, breaker open, torn frame) returns an error and the
// supervised scatter degrades to the named shard_partial:n/N contract;
// it must never return a partially wrong answer with a nil error.
type ShardBackend interface {
	// ShardIndex is the shard's position in the view's shard set.
	ShardIndex() int
	// NumRows is the number of rows the shard owns.
	NumRows() int
	// Ping verifies the backend can serve (health probe; the remote
	// implementation round-trips the wire).
	Ping() error
	// Count counts the shard's rows inside rect.
	Count(rect geom.Rect) (ShardCount, error)
	// RowsIn returns the shard's row ids inside rect in slot order.
	RowsIn(rect geom.Rect) (ShardRows, error)
	// RowsInAny returns the shard's row ids inside at least one rect,
	// deduplicated, in slot order.
	RowsInAny(rects []geom.Rect) (ShardRows, error)
	// SampleGrid returns the shard's SampleRect candidate layout for
	// rect (full blocks + verified partial rows, cell order).
	SampleGrid(rect geom.Rect) (ShardSample, error)
	// SortedSlice returns the shard's covering-index row ids for an
	// interval of one dimension, in (value, row id) order.
	SortedSlice(dim int, iv geom.Interval) ([]int32, error)
	// ExecuteBatch answers every item of a batch in one call — one
	// round-trip for remote backends — with results positionally
	// aligned to items and each bit-identical to the corresponding
	// single-item method.
	ExecuteBatch(items []ShardBatchItem) ([]ShardBatchResult, error)
	// Close releases backend resources (connections, for the remote
	// implementation). Local backends are no-ops.
	Close() error
}

// localShard is the in-process ShardBackend: the shard's sequential
// cores over its slab slices, plus the parent view's normalized columns
// for covering-index lookups. It never errors — local failures surface
// as panics, which the scatter layer isolates per attempt.
type localShard struct {
	sh    *shard
	ncols [][]float64 // parent view's normalized columns, for SortedSlice
}

func (l *localShard) ShardIndex() int { return l.sh.index }
func (l *localShard) NumRows() int    { return l.sh.nrows }
func (l *localShard) Ping() error     { return nil }
func (l *localShard) Close() error    { return nil }

func (l *localShard) Count(rect geom.Rect) (ShardCount, error) {
	return l.sh.count(rect), nil
}

func (l *localShard) RowsIn(rect geom.Rect) (ShardRows, error) {
	return l.sh.rowsIn(rect), nil
}

func (l *localShard) RowsInAny(rects []geom.Rect) (ShardRows, error) {
	return l.sh.rowsAny(rects), nil
}

func (l *localShard) SampleGrid(rect geom.Rect) (ShardSample, error) {
	return l.sh.sampleGrid(rect), nil
}

func (l *localShard) SortedSlice(dim int, iv geom.Interval) ([]int32, error) {
	return l.sh.sortedSlice(dim, iv, l.ncols[dim]), nil
}

func (l *localShard) ExecuteBatch(items []ShardBatchItem) ([]ShardBatchResult, error) {
	out := make([]ShardBatchResult, len(items))
	var grid []ShardBatchItem
	var gridAt []int
	for k, it := range items {
		if it.Sorted {
			out[k].Sorted = l.sh.sortedSlice(it.Dim, it.Iv, l.ncols[it.Dim])
			continue
		}
		grid = append(grid, it)
		gridAt = append(gridAt, k)
	}
	if len(grid) > 0 {
		// Cancellation is coordinator-side: the scatter discards results
		// it no longer wants, so the shard pass runs to completion.
		gout := make([]ShardBatchResult, len(grid))
		if err := batchGridEval(l.sh.grid, context.Background(), grid, gout); err != nil {
			return nil, err
		}
		for j, k := range gridAt {
			out[k] = gout[j]
		}
	}
	return out, nil
}

// LocalShardBackends returns the in-process backend for every shard of
// a sharded view, nil when the view is unsharded. This is the worker
// surface: a shardrpc server (cmd/aideshard) builds the same sharded
// view from the same dataset and serves a subset of these over the
// wire.
func (v *View) LocalShardBackends() []ShardBackend {
	if v.shards == nil {
		return nil
	}
	out := make([]ShardBackend, v.shards.n)
	for i, sh := range v.shards.shards {
		out[i] = &localShard{sh: sh, ncols: v.ncols}
	}
	return out
}
