package engine

import (
	"testing"

	"github.com/explore-by-example/aide/internal/geom"
)

// FuzzParseQuery drives the hand-rolled SQL parser with arbitrary input:
// it must never panic, and anything it accepts must render back to SQL
// it accepts again (idempotent round trip).
func FuzzParseQuery(f *testing.F) {
	f.Add("SELECT * FROM t WHERE FALSE;")
	f.Add("SELECT * FROM t WHERE (x >= 1 AND x <= 2);")
	f.Add("SELECT * FROM t WHERE (x >= 1 AND x <= 2) OR (y >= 0 AND y <= 5);")
	f.Add("select * from t where (TRUE)")
	f.Add("SELECT * FROM t WHERE (x >= -1.5e2 AND x <= 1e3)")
	f.Add("")
	f.Add("SELECT")
	f.Add("SELECT * FROM t WHERE (x >= 1 AND x <= ")
	f.Add("SELECT * FROM t WHERE ((((")

	attrs := []string{"x", "y"}
	domains := geom.R(0, 100, 0, 100)
	f.Fuzz(func(t *testing.T, sql string) {
		q, err := ParseQuery(sql, attrs, domains)
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Accepted input round-trips: the rendered SQL parses again to
		// the same areas.
		again, err := ParseQuery(q.SQL(), attrs, domains)
		if err != nil {
			t.Fatalf("accepted %q but rejected own rendering %q: %v", sql, q.SQL(), err)
		}
		if len(again.Areas) != len(q.Areas) {
			t.Fatalf("round trip changed area count: %d vs %d", len(again.Areas), len(q.Areas))
		}
	})
}
