package engine

import (
	"math"
	"math/rand"
	"testing"

	"github.com/explore-by-example/aide/internal/geom"
)

// FuzzParseQuery drives the hand-rolled SQL parser with arbitrary input:
// it must never panic, and anything it accepts must render back to SQL
// it accepts again (idempotent round trip).
func FuzzParseQuery(f *testing.F) {
	f.Add("SELECT * FROM t WHERE FALSE;")
	f.Add("SELECT * FROM t WHERE (x >= 1 AND x <= 2);")
	f.Add("SELECT * FROM t WHERE (x >= 1 AND x <= 2) OR (y >= 0 AND y <= 5);")
	f.Add("select * from t where (TRUE)")
	f.Add("SELECT * FROM t WHERE (x >= -1.5e2 AND x <= 1e3)")
	f.Add("")
	f.Add("SELECT")
	f.Add("SELECT * FROM t WHERE (x >= 1 AND x <= ")
	f.Add("SELECT * FROM t WHERE ((((")

	attrs := []string{"x", "y"}
	domains := geom.R(0, 100, 0, 100)
	f.Fuzz(func(t *testing.T, sql string) {
		q, err := ParseQuery(sql, attrs, domains)
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Accepted input round-trips: the rendered SQL parses again to
		// the same areas.
		again, err := ParseQuery(q.SQL(), attrs, domains)
		if err != nil {
			t.Fatalf("accepted %q but rejected own rendering %q: %v", sql, q.SQL(), err)
		}
		if len(again.Areas) != len(q.Areas) {
			t.Fatalf("round trip changed area count: %d vs %d", len(again.Areas), len(q.Areas))
		}
	})
}

// FuzzRectQuery throws arbitrary rect coordinates and table shapes at the
// columnar grid engine and checks the pruned/bitmap paths against the
// naive per-row Contains scan. Invalid rects (NaN edges, Lo > Hi) must
// yield zero results; valid rects — including degenerate, inverted-ish
// boundary and out-of-domain ones — must match the reference exactly.
func FuzzRectQuery(f *testing.F) {
	f.Add(int64(1), uint8(0), 0.0, 100.0, 0.0, 100.0)    // empty table, full domain
	f.Add(int64(2), uint8(1), 50.0, 50.0, 50.0, 50.0)    // single row, degenerate rect
	f.Add(int64(3), uint8(40), 10.0, 90.0, 10.0, 90.0)   // lattice-edge rect
	f.Add(int64(4), uint8(200), 25.0, 75.0, 0.0, 100.0)  // one tight dim, one open
	f.Add(int64(5), uint8(120), -5.0, 105.0, 30.0, 30.5) // out-of-domain edges
	f.Add(int64(6), uint8(90), 60.0, 40.0, 0.0, 100.0)   // inverted: invalid
	f.Add(int64(7), uint8(90), math.NaN(), 100.0, 0.0, 100.0)
	f.Fuzz(func(t *testing.T, seed int64, rows uint8, lo0, hi0, lo1, hi1 float64) {
		rng := rand.New(rand.NewSource(seed))
		tab := randomColumnarTable(2, int(rows), rng, true)
		v, err := NewViewWorkers(tab, tab.Schema().Names(), 1+int(seed&3))
		if err != nil {
			t.Fatal(err)
		}
		rect := geom.Rect{{Lo: lo0, Hi: hi0}, {Lo: lo1, Hi: hi1}}
		valid := !math.IsNaN(lo0) && !math.IsNaN(hi0) && lo0 <= hi0 &&
			!math.IsNaN(lo1) && !math.IsNaN(hi1) && lo1 <= hi1
		count := v.Count(rect)
		got := v.RowsIn(rect)
		if !valid {
			if count != 0 || len(got) != 0 {
				t.Fatalf("invalid rect %v: Count=%d rows=%d, want empty", rect, count, len(got))
			}
			return
		}
		want := naiveRows(v, rect)
		if count != len(want) {
			t.Fatalf("rect %v: Count=%d, naive=%d", rect, count, len(want))
		}
		equalRowSets(t, "RowsIn", got, want)
		union := v.RowsInAny([]geom.Rect{rect, rect})
		equalRowSets(t, "RowsInAny self-union", union, want)
	})
}
