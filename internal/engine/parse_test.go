package engine

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/explore-by-example/aide/internal/geom"
)

func TestParseQueryRoundTrip(t *testing.T) {
	q := Query{
		Table: "trials",
		Attrs: []string{"age", "dosage"},
		Areas: []geom.Rect{
			geom.R(0, 20, 10, 15),
			geom.R(20, 40, 0, 10),
		},
	}
	got, err := ParseQuery(q.SQL(), q.Attrs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Table != "trials" || len(got.Areas) != 2 {
		t.Fatalf("parsed = %+v", got)
	}
	for i := range q.Areas {
		if !got.Areas[i].Equal(q.Areas[i]) {
			t.Errorf("area %d = %v, want %v", i, got.Areas[i], q.Areas[i])
		}
	}
}

func TestParseQueryFalse(t *testing.T) {
	got, err := ParseQuery("SELECT * FROM t WHERE FALSE;", []string{"x"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Table != "t" || len(got.Areas) != 0 {
		t.Errorf("parsed = %+v", got)
	}
}

func TestParseQueryDomainsFillOmittedAttrs(t *testing.T) {
	domains := geom.R(0, 100, 0, 60)
	sql := "SELECT * FROM t WHERE (age >= 20 AND age <= 40);"
	got, err := ParseQuery(sql, []string{"age", "dosage"}, domains)
	if err != nil {
		t.Fatal(err)
	}
	want := geom.R(20, 40, 0, 60)
	if !got.Areas[0].Equal(want) {
		t.Errorf("area = %v, want %v", got.Areas[0], want)
	}
}

func TestParseQueryTrueDisjunct(t *testing.T) {
	domains := geom.R(0, 9)
	got, err := ParseQuery("SELECT * FROM t WHERE (TRUE);", []string{"x"}, domains)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Areas[0].Equal(domains) {
		t.Errorf("area = %v", got.Areas[0])
	}
	// Without domains, TRUE cannot be resolved.
	if _, err := ParseQuery("SELECT * FROM t WHERE (TRUE);", []string{"x"}, nil); err == nil {
		t.Error("TRUE without domains should error")
	}
}

func TestParseQueryCaseInsensitiveKeywords(t *testing.T) {
	sql := "select * from t where (x >= 1 and x <= 2) or (x >= 5 and x <= 6)"
	got, err := ParseQuery(sql, []string{"x"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Areas) != 2 {
		t.Errorf("areas = %d", len(got.Areas))
	}
}

func TestParseQueryScientificAndSignedNumbers(t *testing.T) {
	sql := "SELECT * FROM t WHERE (x >= -1.5e2 AND x <= 1e3);"
	got, err := ParseQuery(sql, []string{"x"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Areas[0][0].Lo != -150 || got.Areas[0][0].Hi != 1000 {
		t.Errorf("area = %v", got.Areas[0])
	}
}

func TestParseQueryErrors(t *testing.T) {
	cases := []struct {
		name, sql string
	}{
		{"not select", "DELETE FROM t"},
		{"missing star", "SELECT x FROM t WHERE FALSE"},
		{"missing from", "SELECT * t WHERE FALSE"},
		{"missing where", "SELECT * FROM t (x >= 1 AND x <= 2)"},
		{"unknown attribute", "SELECT * FROM t WHERE (y >= 1 AND y <= 2)"},
		{"bad operator", "SELECT * FROM t WHERE (x > 1 AND x <= 2)"},
		{"bad number", "SELECT * FROM t WHERE (x >= abc AND x <= 2)"},
		{"unclosed paren", "SELECT * FROM t WHERE (x >= 1 AND x <= 2"},
		{"trailing garbage", "SELECT * FROM t WHERE (x >= 1 AND x <= 2) nonsense"},
		{"half constrained no domains", "SELECT * FROM t WHERE (x >= 1)"},
	}
	for _, tc := range cases {
		if _, err := ParseQuery(tc.sql, []string{"x"}, nil); err == nil {
			t.Errorf("%s: expected error for %q", tc.name, tc.sql)
		}
	}
}

func TestParseQueryDomainArityCheck(t *testing.T) {
	if _, err := ParseQuery("SELECT * FROM t WHERE FALSE", []string{"x", "y"}, geom.R(0, 1)); err == nil {
		t.Error("domain arity mismatch should error")
	}
}

// Property: SQL -> ParseQuery round-trips any generated query with
// matching semantics (same matches over random points).
func TestQuickParseRoundTripSemantics(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 1 + rng.Intn(3)
		attrs := make([]string, d)
		for i := range attrs {
			attrs[i] = string(rune('a' + i))
		}
		domains := make(geom.Rect, d)
		for i := range domains {
			domains[i] = geom.Interval{Lo: 0, Hi: 100}
		}
		nAreas := rng.Intn(4)
		q := Query{Table: "t", Attrs: attrs, Domains: domains}
		for a := 0; a < nAreas; a++ {
			r := make(geom.Rect, d)
			for i := range r {
				lo := float64(int(rng.Float64()*90*8)) / 8 // dyadic: exact decimal rendering
				r[i] = geom.Interval{Lo: lo, Hi: lo + float64(int(rng.Float64()*10*8))/8}
			}
			q.Areas = append(q.Areas, r)
		}
		parsed, err := ParseQuery(q.SQL(), attrs, domains)
		if err != nil {
			return false
		}
		// Compare semantics pointwise.
		for s := 0; s < 50; s++ {
			p := make(geom.Point, d)
			for i := range p {
				p[i] = rng.Float64() * 100
			}
			if q.Matches(p) != parsed.Matches(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
