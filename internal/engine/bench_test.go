package engine

import (
	"math/rand"
	"testing"

	"github.com/explore-by-example/aide/internal/dataset"
	"github.com/explore-by-example/aide/internal/geom"
)

// Micro-benchmarks for the engine primitives behind AIDE's
// sample-extraction queries. These quantify the substrate costs the
// paper attributes to MySQL: region counting, region sampling, and
// whole-domain boundary-slab sampling (the expensive case of §5.2).

func benchView(b *testing.B, rows int) *View {
	b.Helper()
	tab := dataset.GenerateSDSS(rows, 1)
	v, err := NewView(tab, []string{"rowc", "colc"})
	if err != nil {
		b.Fatal(err)
	}
	return v
}

func BenchmarkViewBuild100k(b *testing.B) {
	tab := dataset.GenerateSDSS(100_000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewView(tab, []string{"rowc", "colc"}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCountSmallRect(b *testing.B) {
	v := benchView(b, 100_000)
	rect := geom.R(40, 48, 40, 48)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Count(rect)
	}
}

// BenchmarkCountLargeRect exercises Count's fast path on a rect
// dominated by fully-contained grid cells: their rows are summed via
// len() with no per-row verification or callback.
func BenchmarkCountLargeRect(b *testing.B) {
	v := benchView(b, 100_000)
	rect := geom.R(10, 90, 10, 90)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Count(rect)
	}
}

// BenchmarkCountLargeRectPerRow is the pre-fast-path reference: the same
// count through scanRect's per-row closure. The gap between this and
// BenchmarkCountLargeRect is the win of summing full cells wholesale.
func BenchmarkCountLargeRectPerRow(b *testing.B) {
	v := benchView(b, 100_000)
	rect := geom.R(10, 90, 10, 90)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		v.scanRect(rect, func(int) bool { n++; return true })
	}
}

func BenchmarkSampleRectSmall(b *testing.B) {
	v := benchView(b, 100_000)
	rect := geom.R(40, 48, 40, 48)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.SampleRect(rect, 10, rng)
	}
}

// BenchmarkSampleBoundarySlab samples a face slab spanning the whole
// domain in one dimension — the query shape of boundary exploitation
// with whole-domain sampling, the paper's most expensive extraction.
func BenchmarkSampleBoundarySlab(b *testing.B) {
	v := benchView(b, 100_000)
	slab := geom.R(0, 100, 49, 51)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.SampleRect(slab, 5, rng)
	}
}

func BenchmarkSampleAll(b *testing.B) {
	v := benchView(b, 100_000)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.SampleAll(20, rng)
	}
}

func BenchmarkQueryExecute(b *testing.B) {
	v := benchView(b, 100_000)
	q := Query{
		Table: "PhotoObjAll",
		Attrs: []string{"rowc", "colc"},
		Areas: []geom.Rect{
			{{Lo: 100, Hi: 300}, {Lo: 100, Hi: 400}},
			{{Lo: 900, Hi: 1100}, {Lo: 1500, Hi: 1800}},
		},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.Execute(v); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSampledViewBuild(b *testing.B) {
	v := benchView(b, 100_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := v.Sampled(0.1, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
