package engine

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/explore-by-example/aide/internal/dataset"
	"github.com/explore-by-example/aide/internal/geom"
)

// randomBatch builds a mixed batch over the rect generators the shard
// equivalence tests use: grid-path counts/rows/samples, covering-index
// samples (single constrained dimension), plus the edge cases the
// sequential API defines behavior for (n<=0, inverted rects).
func randomBatch(dims int, rng *rand.Rand) []BatchQuery {
	n := 4 + rng.Intn(20)
	grid := randomRects(n, dims, rng)
	single := singleDimRects(n, dims, rng)
	out := make([]BatchQuery, 0, n)
	for i := 0; i < n; i++ {
		rect := grid[i]
		if rng.Intn(3) == 0 {
			rect = single[i]
		}
		q := BatchQuery{Rect: rect}
		switch rng.Intn(4) {
		case 0:
			q.Kind = BatchCount
		case 1:
			q.Kind = BatchRows
		default:
			q.Kind = BatchSample
			q.N = rng.Intn(25)
			if rng.Intn(12) == 0 {
				q.N = -1
			}
		}
		if rng.Intn(16) == 0 {
			// Inverted interval: validRect rejects it in both paths.
			d := rng.Intn(dims)
			q.Rect = q.Rect.Clone()
			q.Rect[d] = geom.Interval{Lo: 60, Hi: 40}
		}
		out = append(out, q)
	}
	return out
}

// runSequential is the reference: each sub-query through the sequential
// engine API in order, sharing one rng exactly like the session loop.
func runSequential(v *View, queries []BatchQuery, rng *rand.Rand) (counts []int, rows [][]int, samples [][]int) {
	counts = make([]int, len(queries))
	rows = make([][]int, len(queries))
	samples = make([][]int, len(queries))
	for i, q := range queries {
		switch q.Kind {
		case BatchCount:
			counts[i] = v.Count(q.Rect)
		case BatchRows:
			rows[i] = v.RowsIn(q.Rect)
		case BatchSample:
			samples[i] = v.SampleRect(q.Rect, q.N, rng)
		}
	}
	return counts, rows, samples
}

// drainBatch executes the batch and draws every sample in request
// order, the way the session loop consumes BatchResults.
func drainBatch(v *View, queries []BatchQuery, rng *rand.Rand) (counts []int, rows [][]int, samples [][]int) {
	br := v.ExecuteBatch(queries)
	counts = make([]int, len(queries))
	rows = make([][]int, len(queries))
	samples = make([][]int, len(queries))
	for i, q := range queries {
		switch q.Kind {
		case BatchCount:
			counts[i] = br.Count(i)
		case BatchRows:
			rows[i] = br.Rows(i)
		case BatchSample:
			samples[i] = br.Sample(i, rng)
		}
	}
	return counts, rows, samples
}

// TestBatchEquivalence pins the tentpole contract: ExecuteBatch +
// in-order lazy draws is bit-identical to the sequential per-request
// loop — same counts, same rows, same sampled rows from the same rng
// stream — at every shard count, with and without a predicate cache.
func TestBatchEquivalence(t *testing.T) {
	tab := dataset.GenerateSDSS(20_000, 7)
	base, err := NewViewWorkers(tab, []string{"rowc", "colc"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	views := map[string]*View{
		"unsharded": base,
		"cached":    base.WithCache(NewCache(1 << 20)),
	}
	for _, shards := range []int{1, 4} {
		sv := base.WithShards(ShardOptions{Shards: shards})
		views[map[int]string{1: "sharded1", 4: "sharded4"}[shards]] = sv
	}
	views["sharded4cached"] = views["sharded4"].WithCache(NewCache(1 << 20))

	gen := rand.New(rand.NewSource(3))
	for round := 0; round < 12; round++ {
		queries := randomBatch(2, gen)
		seed := int64(round + 100)
		wantCounts, wantRows, wantSamples := runSequential(base, queries, rand.New(rand.NewSource(seed)))
		for name, v := range views {
			// Twice per view: the second pass exercises cache hits on the
			// cached views and pooled buffers everywhere.
			for pass := 0; pass < 2; pass++ {
				counts, rows, samples := drainBatch(v, queries, rand.New(rand.NewSource(seed)))
				if !reflect.DeepEqual(counts, wantCounts) {
					t.Fatalf("round %d %s pass %d: counts = %v, want %v", round, name, pass, counts, wantCounts)
				}
				if !reflect.DeepEqual(rows, wantRows) {
					t.Fatalf("round %d %s pass %d: rows differ", round, name, pass)
				}
				if !reflect.DeepEqual(samples, wantSamples) {
					t.Fatalf("round %d %s pass %d: samples differ\n got %v\nwant %v", round, name, pass, samples, wantSamples)
				}
			}
		}
	}
}

// TestBatchHaltLeavesRNGSequential pins the halt contract: a caller
// that stops drawing mid-batch (budget, cancellation, conflict) leaves
// the rng exactly where the sequential loop would have — the remaining
// sub-queries never consume rng state.
func TestBatchHaltLeavesRNGSequential(t *testing.T) {
	tab := dataset.GenerateSDSS(8_000, 5)
	base, err := NewViewWorkers(tab, []string{"rowc", "colc"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	sharded := base.WithShards(ShardOptions{Shards: 4})
	gen := rand.New(rand.NewSource(9))
	queries := randomBatch(2, gen)
	var sampleIdx []int
	for i, q := range queries {
		if q.Kind == BatchSample {
			sampleIdx = append(sampleIdx, i)
		}
	}
	if len(sampleIdx) < 2 {
		t.Fatal("batch generator produced too few sample queries")
	}
	for halt := 0; halt <= len(sampleIdx); halt++ {
		seqRng := rand.New(rand.NewSource(42))
		for _, i := range sampleIdx[:halt] {
			base.SampleRect(queries[i].Rect, queries[i].N, seqRng)
		}
		for _, v := range []*View{base, sharded} {
			batchRng := rand.New(rand.NewSource(42))
			br := v.ExecuteBatch(queries)
			for _, i := range sampleIdx[:halt] {
				br.Sample(i, batchRng)
			}
			for probe := 0; probe < 4; probe++ {
				if got, want := batchRng.Int63(), seqRng.Int63(); got != want {
					t.Fatalf("halt=%d shards=%d: rng diverged at probe %d", halt, v.ShardCount(), probe)
				}
			}
			// Re-sync the reference stream consumed by the probes.
			seqRng = rand.New(rand.NewSource(42))
			for _, i := range sampleIdx[:halt] {
				base.SampleRect(queries[i].Rect, queries[i].N, seqRng)
			}
		}
	}
}

// TestBatchGridEvalUnionAndPerItemAgree forces both kernel modes over
// the same items: tightly overlapping rects take the shared union walk,
// scattered rects the per-item fallback, and both must match the
// sequential cores cell for cell. The scattered set makes the union box
// mostly empty space, which is exactly when the fallback triggers.
func TestBatchGridEvalUnionAndPerItemAgree(t *testing.T) {
	tab := dataset.GenerateSDSS(12_000, 11)
	base, err := NewViewWorkers(tab, []string{"rowc", "colc"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	overlapping := make([]BatchQuery, 0, 8)
	scattered := make([]BatchQuery, 0, 8)
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 8; i++ {
		lo := 40 + rng.Float64()*10
		overlapping = append(overlapping, BatchQuery{Kind: BatchRows, Rect: geom.R(lo, lo+8, lo-5, lo+3)})
		clo := float64((i * 12) % 90)
		scattered = append(scattered, BatchQuery{Kind: BatchRows, Rect: geom.R(clo, clo+2, clo, clo+2)})
	}
	for name, queries := range map[string][]BatchQuery{"overlapping": overlapping, "scattered": scattered} {
		_, wantRows, _ := runSequential(base, queries, rand.New(rand.NewSource(1)))
		_, rows, _ := drainBatch(base, queries, rand.New(rand.NewSource(1)))
		if !reflect.DeepEqual(rows, wantRows) {
			t.Fatalf("%s: batched rows differ from sequential", name)
		}
	}
}
