package engine

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"math"

	"github.com/explore-by-example/aide/internal/dataset"
)

// TableFingerprint returns a cheap content hash identifying a table: its
// name, schema (column names and domains), row count, and the values of
// the first and last rows. It is O(columns), not O(rows) — enough to
// tell "same dataset" from "different dataset" for registry keying and
// WAL-recovery sanity checks, not a cryptographic digest. Tables with
// equal fingerprints are treated as interchangeable by the view
// registry.
func TableFingerprint(tab *dataset.Table) uint64 {
	h := fnv.New64a()
	var b [8]byte
	w64 := func(u uint64) {
		binary.LittleEndian.PutUint64(b[:], u)
		h.Write(b[:])
	}
	wf := func(f float64) { w64(math.Float64bits(f)) }
	io.WriteString(h, tab.Name())
	h.Write([]byte{0})
	for _, col := range tab.Schema() {
		io.WriteString(h, col.Name)
		h.Write([]byte{0})
		wf(col.Min)
		wf(col.Max)
	}
	n := tab.NumRows()
	w64(uint64(n))
	if n > 0 {
		for _, v := range tab.Row(0) {
			wf(v)
		}
		for _, v := range tab.Row(n - 1) {
			wf(v)
		}
	}
	return h.Sum64()
}

// viewFingerprint combines the table fingerprint with the ordered
// exploration attributes: two views agree iff they project the same data
// onto the same attributes.
func viewFingerprint(tab *dataset.Table, attrs []string) string {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], TableFingerprint(tab))
	h.Write(b[:])
	for _, a := range attrs {
		io.WriteString(h, a)
		h.Write([]byte{0})
	}
	return fmt.Sprintf("aide-fp1-%016x", h.Sum64())
}

// Fingerprint returns a stable content hash of the view: table identity
// (name, schema, row count, first/last rows) plus the ordered
// exploration attributes. The service writes it into each session's WAL
// create record and asserts it on recovery, so a resurrected session
// never silently binds to a different dataset; the view registry keys
// shared views by the same table hash. Worker knobs, contexts, caches
// and scan buffers do not affect the fingerprint.
func (v *View) Fingerprint() string { return v.fp }
