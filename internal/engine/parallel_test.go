package engine

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/explore-by-example/aide/internal/dataset"
	"github.com/explore-by-example/aide/internal/geom"
)

// randomRects yields n random query rects in d dims, mixing narrow boxes,
// wide slabs and the full domain — the shapes the steering loop issues.
func randomRects(n, d int, rng *rand.Rand) []geom.Rect {
	out := make([]geom.Rect, 0, n)
	for i := 0; i < n; i++ {
		r := make(geom.Rect, d)
		for j := range r {
			switch rng.Intn(3) {
			case 0: // narrow box
				lo := rng.Float64() * 90
				r[j] = geom.Interval{Lo: lo, Hi: lo + rng.Float64()*10}
			case 1: // wide slab
				lo := rng.Float64() * 50
				r[j] = geom.Interval{Lo: lo, Hi: lo + 30 + rng.Float64()*50}
			default: // unconstrained
				r[j] = geom.Interval{Lo: geom.NormMin, Hi: geom.NormMax}
			}
		}
		out = append(out, r)
	}
	return out
}

// TestViewBuildParallelEquivalence asserts NewViewWorkers builds the same
// indexes at every worker count.
func TestViewBuildParallelEquivalence(t *testing.T) {
	tab := dataset.GenerateSDSS(20_000, 7)
	attrs := []string{"ra", "dec", "rowc", "field"}
	seq, err := NewViewWorkers(tab, attrs, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		got, err := NewViewWorkers(tab, attrs, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.ncols, seq.ncols) {
			t.Fatalf("workers=%d: normalized columns differ", workers)
		}
		if !reflect.DeepEqual(got.sorted, seq.sorted) {
			t.Fatalf("workers=%d: sorted indexes differ", workers)
		}
		if got.grid.cellsPerDim != seq.grid.cellsPerDim ||
			!reflect.DeepEqual(got.grid.offsets, seq.grid.offsets) ||
			!reflect.DeepEqual(got.grid.rows, seq.grid.rows) {
			t.Fatalf("workers=%d: grid cell layout differs", workers)
		}
		if !reflect.DeepEqual(got.grid.slabs, seq.grid.slabs) {
			t.Fatalf("workers=%d: column slabs differ", workers)
		}
		if !reflect.DeepEqual(got.grid.zoneMin, seq.grid.zoneMin) ||
			!reflect.DeepEqual(got.grid.zoneMax, seq.grid.zoneMax) {
			t.Fatalf("workers=%d: zonemaps differ", workers)
		}
	}
}

// TestScanParallelEquivalence asserts Count, RowsIn and SampleRect return
// identical results (and identical examined-row accounting) at workers=1
// and workers=8 across random rects.
func TestScanParallelEquivalence(t *testing.T) {
	tab := dataset.GenerateSDSS(30_000, 3)
	base, err := NewViewWorkers(tab, []string{"rowc", "colc"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	parV := base.WithWorkers(8)
	// Give the parallel view its own stats so accounting can be compared.
	parV.stats = &Stats{}

	rng := rand.New(rand.NewSource(11))
	for _, rect := range randomRects(40, 2, rng) {
		base.stats.Reset()
		parV.stats.Reset()
		if got, want := parV.Count(rect), base.Count(rect); got != want {
			t.Fatalf("Count(%v): workers=8 got %d, workers=1 got %d", rect, got, want)
		}
		if got, want := parV.RowsIn(rect), base.RowsIn(rect); !reflect.DeepEqual(got, want) {
			t.Fatalf("RowsIn(%v): workers=8 returned %d rows in different order/content than workers=1 (%d rows)",
				rect, len(got), len(want))
		}
		_, seqExam := base.stats.Snapshot()
		_, parExam := parV.stats.Snapshot()
		if seqExam != parExam {
			t.Fatalf("rect %v: rows examined %d (workers=1) vs %d (workers=8)", rect, seqExam, parExam)
		}

		// Sampling must be bit-identical for the same rng state because
		// the candidate layout is worker-count independent.
		seqRng := rand.New(rand.NewSource(99))
		parRng := rand.New(rand.NewSource(99))
		want := base.SampleRect(rect, 15, seqRng)
		got := parV.SampleRect(rect, 15, parRng)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("SampleRect(%v): workers=8 sampled %v, workers=1 sampled %v", rect, got, want)
		}
	}
}

// TestCountMatchesScanRect pins the full-cell fast path to the per-row
// reference scan.
func TestCountMatchesScanRect(t *testing.T) {
	tab := dataset.GenerateSDSS(10_000, 5)
	v, err := NewView(tab, []string{"rowc", "colc"})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	for _, rect := range randomRects(25, 2, rng) {
		want := 0
		v.scanRect(rect, func(int) bool { want++; return true })
		if got := v.Count(rect); got != want {
			t.Fatalf("Count(%v) = %d, scanRect counts %d", rect, got, want)
		}
	}
}
