package engine

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"github.com/explore-by-example/aide/internal/dataset"
	"github.com/explore-by-example/aide/internal/geom"
)

// This file holds the oracle tests for the columnar grid engine: every
// pruned / bitmap / parallel fast path in Count, RowsIn and RowsInAny
// must return exactly what a naive per-row Contains scan returns, on
// tables engineered to hit empty cells, single-row cells, duplicate-value
// cells and rect edges that land exactly on cell boundaries or data
// values. Run with -race to exercise the deterministic parallel replay.

// gridVisible reports whether row's grid cell is overlapped by rect —
// the pruning granularity at which the engine can see a row. For rows
// with finite coordinates this is implied by Contains (cell assignment
// is monotone in the value, with the same clamping as cellRange), so it
// only changes the reference for NaN coordinates: NaN lands in cell 0
// along its dimension (cellOf's negative clamp), and the engine — old
// row-major and new columnar alike — only reaches such a row when the
// rect's cell range includes that cell.
func gridVisible(v *View, rect geom.Rect, row int) bool {
	g := v.grid
	id := g.cellOf(v.ncols, row)
	for i := g.dims - 1; i >= 0; i-- {
		c := id % g.cellsPerDim
		id /= g.cellsPerDim
		lo, hi, ok := g.cellRange(rect[i])
		if !ok || c < lo || c > hi {
			return false
		}
	}
	return true
}

// naiveRows is the reference implementation: scan every row with the
// same Contains predicate the engine documents, restricted to rows whose
// grid cell the rect reaches (see gridVisible — NaN only).
func naiveRows(v *View, rect geom.Rect) []int {
	var out []int
	for r := 0; r < v.NumRows(); r++ {
		if v.Contains(rect, r) && gridVisible(v, rect, r) {
			out = append(out, r)
		}
	}
	return out
}

func naiveRowsAny(v *View, rects []geom.Rect) []int {
	var out []int
	for r := 0; r < v.NumRows(); r++ {
		for _, rect := range rects {
			if v.Contains(rect, r) && gridVisible(v, rect, r) {
				out = append(out, r)
				break
			}
		}
	}
	return out
}

// randomColumnarTable builds a d-dim table whose raw values equal their
// normalized values (domain [0,100]), mixing uniform points, clustered
// duplicates (single-value cells), exact cell-boundary values and a few
// NaNs — the cases that stress zonemap classification.
func randomColumnarTable(d, rows int, rng *rand.Rand, withNaN bool) *dataset.Table {
	schema := make(dataset.Schema, d)
	for i := range schema {
		schema[i] = dataset.Column{Name: fmt.Sprintf("c%d", i), Min: geom.NormMin, Max: geom.NormMax}
	}
	b := dataset.NewBuilder("columnar-prop", schema)
	vals := make([]float64, d)
	for r := 0; r < rows; r++ {
		for j := range vals {
			switch rng.Intn(5) {
			case 0: // clustered duplicate: tiny value alphabet
				vals[j] = float64(rng.Intn(4)) * 25
			case 1: // exact boundary-ish lattice values
				vals[j] = float64(rng.Intn(11)) * 10
			case 2:
				if withNaN && rng.Intn(8) == 0 {
					vals[j] = math.NaN()
				} else {
					vals[j] = rng.Float64() * 100
				}
			default:
				vals[j] = rng.Float64() * 100
			}
		}
		b.Add(vals...)
	}
	return b.Build()
}

// boundaryRects augments randomRects with rects whose edges sit exactly
// on cell boundaries and on data values present in the table, including
// degenerate Lo==Hi rects and the empty-domain corner.
func boundaryRects(d int, rng *rand.Rand) []geom.Rect {
	rects := randomRects(8, d, rng)
	exact := func(lo, hi float64) geom.Rect {
		r := make(geom.Rect, d)
		for j := range r {
			r[j] = geom.Interval{Lo: lo, Hi: hi}
		}
		return r
	}
	rects = append(rects,
		exact(0, 0),     // degenerate at domain min
		exact(100, 100), // degenerate at domain max
		exact(25, 75),   // edges on the duplicate-value alphabet
		exact(10, 90),   // edges on the lattice alphabet
		exact(0, 100),   // full domain
		exact(50, 50),   // degenerate interior, likely single/empty cells
	)
	// A rect with one unconstrained dim and one tight dim (zonemap
	// covered in one axis, partial in the other).
	mixed := make(geom.Rect, d)
	for j := range mixed {
		if j == 0 {
			mixed[j] = geom.Interval{Lo: 30, Hi: 30.5}
		} else {
			mixed[j] = geom.Interval{Lo: geom.NormMin, Hi: geom.NormMax}
		}
	}
	return append(rects, mixed)
}

func equalRows(t *testing.T, label string, got, want []int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d rows, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: row %d: got %d want %d", label, i, got[i], want[i])
		}
	}
}

// equalRowSets compares engine output (deterministic cell-major order)
// against the naive reference (ascending row order) as sets, and also
// asserts the engine emitted no duplicates.
func equalRowSets(t *testing.T, label string, got, want []int) {
	t.Helper()
	sorted := append([]int(nil), got...)
	sort.Ints(sorted)
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			t.Fatalf("%s: duplicate row %d in result", label, sorted[i])
		}
	}
	equalRows(t, label, sorted, want)
}

// TestColumnarMatchesNaiveReference is the main oracle property: for
// randomized tables and rects, Count / RowsIn agree exactly with the
// naive scan, across worker counts and with scan-buffer reuse.
func TestColumnarMatchesNaiveReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cases := []struct {
		d, rows int
		nan     bool
	}{
		{1, 0, false},   // empty table
		{1, 1, false},   // single row
		{2, 3, false},   // fewer rows than cells: mostly empty cells
		{2, 60, false},  // sparse: many single-row cells
		{2, 400, true},  // dense with NaN-poisoned cells
		{3, 250, false}, // 3-dim odometer / run decomposition
		{3, 500, true},
	}
	for ci, tc := range cases {
		tab := randomColumnarTable(tc.d, tc.rows, rng, tc.nan)
		attrs := tab.Schema().Names()
		for _, workers := range []int{1, 4} {
			v, err := NewViewWorkers(tab, attrs, workers)
			if err != nil {
				t.Fatal(err)
			}
			vb := v.WithScanBuffer()
			for ri, rect := range boundaryRects(tc.d, rng) {
				label := fmt.Sprintf("case=%d w=%d rect=%d", ci, workers, ri)
				want := naiveRows(v, rect)
				if got := v.Count(rect); got != len(want) {
					t.Fatalf("%s: Count=%d want %d", label, got, len(want))
				}
				equalRowSets(t, label+" RowsIn", v.RowsIn(rect), want)
				// Scan-buffer path must be bit-identical too.
				if got := vb.Count(rect); got != len(want) {
					t.Fatalf("%s: buffered Count=%d want %d", label, got, len(want))
				}
				equalRowSets(t, label+" buffered RowsIn", vb.RowsIn(rect), want)
			}
		}
	}
}

// TestRowsInAnyMatchesNaiveReference checks the bitmap-OR disjunction
// path: the union over k rects equals the naive MatchesAny scan, with
// rows deduplicated and in ascending order.
func TestRowsInAnyMatchesNaiveReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, d := range []int{1, 2, 3} {
		tab := randomColumnarTable(d, 300, rng, d == 2)
		attrs := tab.Schema().Names()
		for _, workers := range []int{1, 4} {
			v, err := NewViewWorkers(tab, attrs, workers)
			if err != nil {
				t.Fatal(err)
			}
			for trial := 0; trial < 6; trial++ {
				k := 1 + rng.Intn(4)
				rects := boundaryRects(d, rng)[:k]
				// Overlapping copies stress dedup.
				rects = append(rects, rects[0])
				want := naiveRowsAny(v, rects)
				label := fmt.Sprintf("d=%d w=%d trial=%d", d, workers, trial)
				equalRowSets(t, label, v.RowsInAny(rects), want)
			}
		}
	}
}

// TestColumnarDeterministicAcrossWorkers pins the cross-worker
// bit-identity contract: any worker count yields the same rows in the
// same order.
func TestColumnarDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	tab := randomColumnarTable(2, 800, rng, true)
	attrs := tab.Schema().Names()
	ref, err := NewViewWorkers(tab, attrs, 1)
	if err != nil {
		t.Fatal(err)
	}
	rects := boundaryRects(2, rng)
	for _, workers := range []int{2, 3, 8} {
		v, err := NewViewWorkers(tab, attrs, workers)
		if err != nil {
			t.Fatal(err)
		}
		for ri, rect := range rects {
			label := fmt.Sprintf("w=%d rect=%d", workers, ri)
			equalRows(t, label, v.RowsIn(rect), ref.RowsIn(rect))
			if got, want := v.Count(rect), ref.Count(rect); got != want {
				t.Fatalf("%s: Count=%d want %d", label, got, want)
			}
		}
	}
}
