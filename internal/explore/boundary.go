package explore

import (
	"math"

	"github.com/explore-by-example/aide/internal/geom"
)

// planBoundary builds the sampling requests of the boundary exploitation
// phase (Section 5): for each face of each predicted relevant area, a
// slab of half-width x around the boundary is sampled so the tree can
// shrink or expand the area toward the user's true boundary.
//
// It returns the requests plus the slabs themselves (recorded for the
// next iteration's non-overlapping-sampling-areas check).
//
// Three optimizations from Section 5.2 are applied, each gated by an
// option:
//
//   - Adaptive sample size: each face's budget is scaled by pc_j, the
//     fraction by which the boundary moved since the previous iteration,
//     plus an error floor er — T_boundary = sum_j pc_j * (alpha_max/(k*2d))
//   - er*(k*2d).
//   - Non-overlapping sampling areas: a slab whose boundary did not move
//     and which lies inside the previous iteration's sampled slabs is
//     reduced to the error floor.
//   - Whole-domain sampling: non-boundary dimensions of a slab span the
//     entire domain, so irrelevant attributes get unskewed coverage and
//     fall out of the tree.
func (s *Session) planBoundary(res *IterationResult) ([]sampleRequest, []geom.Rect) {
	areas := s.areas
	k := len(areas)
	if k == 0 {
		return nil, nil
	}
	d := s.view.Dims()
	faces := k * 2 * d
	base := float64(s.opts.AlphaMax) / float64(faces)
	if cap := s.opts.Budget.MaxSamplesPerIteration; cap > 0 {
		// Budgeted sessions shrink the per-face budget so boundary demand
		// alone cannot exceed the iteration's sample cap.
		if capped := float64(cap) / float64(faces); capped < base {
			base = capped
			s.degrade(res, DegradeBoundaryFaceShrink)
		}
	}

	var reqs []sampleRequest
	var slabs []geom.Rect
	for _, area := range areas {
		prev, matched := matchArea(area, s.prevAreas)
		for dim := 0; dim < d; dim++ {
			for _, upper := range []bool{false, true} {
				// pc_j: normalized boundary movement since last iteration.
				pc := 1.0
				if matched {
					cur := area[dim].Lo
					old := prev[dim].Lo
					if upper {
						cur, old = area[dim].Hi, prev[dim].Hi
					}
					pc = math.Abs(cur-old) / (geom.NormMax - geom.NormMin)
					if pc > 1 {
						pc = 1
					}
				}

				slab := area.FaceSlab(dim, upper, s.opts.BoundaryX, s.bounds, s.opts.DomainSampling)
				slabs = append(slabs, slab)

				n := int(math.Ceil(base))
				if s.opts.AdaptiveBoundary {
					n = int(math.Round(pc*base)) + s.opts.BoundaryErr
				}
				if s.opts.NonOverlapSampling && pc < 1e-6 && s.coveredLastIteration(slab) {
					// Unmoved boundary, already-sampled slab: only the
					// error floor, to cover the case where the lack of
					// movement was luck rather than an accurate fit.
					n = s.opts.BoundaryErr
				}
				if n <= 0 {
					continue
				}
				reqs = append(reqs, sampleRequest{rect: slab, n: n, phase: PhaseBoundary})
			}
		}
	}
	return reqs, slabs
}

// coveredLastIteration reports whether slab overlaps a slab sampled in
// the previous iteration by at least OverlapSkipFrac of its volume.
func (s *Session) coveredLastIteration(slab geom.Rect) bool {
	for _, old := range s.lastSlabs {
		if slab.OverlapFraction(old) >= s.opts.OverlapSkipFrac {
			return true
		}
	}
	return false
}

// matchArea pairs a current relevant area with the previous iteration's
// area it most overlaps, so boundary movement can be measured between
// "the same" area across iterations. ok is false when nothing overlaps
// (a newly discovered area: every face is treated as fully changed).
func matchArea(area geom.Rect, prev []geom.Rect) (geom.Rect, bool) {
	var best geom.Rect
	bestFrac := 0.0
	for _, p := range prev {
		if f := area.OverlapFraction(p); f > bestFrac {
			bestFrac = f
			best = p
		}
	}
	if best == nil {
		return nil, false
	}
	return best, true
}
