package explore

import (
	"reflect"
	"testing"

	"github.com/explore-by-example/aide/internal/dataset"
	"github.com/explore-by-example/aide/internal/engine"
	"github.com/explore-by-example/aide/internal/geom"
)

// runSession drives a full steering session at the given worker count and
// returns its final query SQL, stats and labeled set.
func runSession(t *testing.T, workers int, discovery DiscoveryStrategy) (string, SessionStats, []geom.Point, []bool) {
	t.Helper()
	tab := dataset.GenerateClusters(8000, 2, []dataset.ClusterSpec{
		{Center: []float64{30, 35}, Std: 8, Weight: 0.5},
		{Center: []float64{70, 65}, Std: 10, Weight: 0.5},
	}, 0.1, 7)
	v, err := engine.NewViewWorkers(tab, []string{"a0", "a1"}, workers)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Seed = 17
	opts.Workers = workers
	opts.Discovery = discovery
	s, err := NewSession(v, rectOracle(geom.R(25, 45, 25, 45)), opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if _, err := s.RunIteration(); err != nil {
			t.Fatal(err)
		}
	}
	points, labels := s.LabeledPoints()
	return s.FinalQuery().SQL(), s.Stats(), points, labels
}

// TestSessionParallelEquivalence is the end-to-end determinism gate:
// a full steering session — discovery, misclassified exploitation,
// boundary exploitation, CART training, k-means clustering, every engine
// scan — must produce identical results at workers=1 and workers=8.
func TestSessionParallelEquivalence(t *testing.T) {
	for _, disc := range []DiscoveryStrategy{DiscoveryGrid, DiscoveryClustering} {
		sqlSeq, statsSeq, pointsSeq, labelsSeq := runSession(t, 1, disc)
		sqlPar, statsPar, pointsPar, labelsPar := runSession(t, 8, disc)
		if sqlSeq != sqlPar {
			t.Fatalf("%v: final query differs\nworkers=1: %s\nworkers=8: %s", disc, sqlSeq, sqlPar)
		}
		if !reflect.DeepEqual(pointsSeq, pointsPar) || !reflect.DeepEqual(labelsSeq, labelsPar) {
			t.Fatalf("%v: labeled training sets differ (%d vs %d samples)", disc, len(pointsSeq), len(pointsPar))
		}
		// Timing fields aside, effort accounting must match exactly.
		statsSeq.ExecTime, statsPar.ExecTime = 0, 0
		statsSeq.TrainTime, statsPar.TrainTime = 0, 0
		if !reflect.DeepEqual(statsSeq, statsPar) {
			t.Fatalf("%v: session stats differ\nworkers=1: %+v\nworkers=8: %+v", disc, statsSeq, statsPar)
		}
	}
}

func TestOptionsWorkersValidation(t *testing.T) {
	v := testView(t, 100, 1)
	opts := DefaultOptions()
	opts.Workers = -1
	if _, err := NewSession(v, rectOracle(), opts); err == nil {
		t.Error("negative Workers should error")
	}
	opts = DefaultOptions()
	opts.Workers = 4
	s, err := NewSession(v, rectOracle(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Options().Tree.Workers; got != 4 {
		t.Errorf("Tree.Workers = %d, want 4 (inherited from Options.Workers)", got)
	}
	if got := s.View().Workers(); got != 4 {
		t.Errorf("view Workers = %d, want 4", got)
	}
}
