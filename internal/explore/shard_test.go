package explore

import (
	"strings"
	"testing"

	"github.com/explore-by-example/aide/internal/engine"
	"github.com/explore-by-example/aide/internal/faultinject"
	"github.com/explore-by-example/aide/internal/geom"
)

// TestShardedSessionBitIdentical pins that a steering session over a
// sharded view labels the same rows and predicts the same areas as one
// over the plain view — the engine's shard-count bit-identity carried
// all the way through the exploration loop.
func TestShardedSessionBitIdentical(t *testing.T) {
	target := geom.R(30, 60, 30, 60)
	run := func(shards int) ([]geom.Point, []bool, []geom.Rect) {
		v := testView(t, 5000, 7)
		if shards > 0 {
			v = v.WithShards(engine.ShardOptions{Shards: shards})
		}
		s, err := NewSession(v, rectOracle(target), DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 8; i++ {
			if _, err := s.RunIteration(); err != nil {
				t.Fatal(err)
			}
		}
		pts, labs := s.LabeledPoints()
		return pts, labs, s.RelevantAreas()
	}
	wantPts, wantLabs, wantAreas := run(0)
	for _, shards := range []int{1, 2, 4, 8} {
		pts, labs, areas := run(shards)
		if len(pts) != len(wantPts) {
			t.Fatalf("shards=%d labeled %d rows, unsharded labeled %d", shards, len(pts), len(wantPts))
		}
		for i := range pts {
			if labs[i] != wantLabs[i] || pts[i].ChebyshevDist(wantPts[i]) != 0 {
				t.Fatalf("shards=%d sample %d diverged", shards, i)
			}
		}
		if len(areas) != len(wantAreas) {
			t.Fatalf("shards=%d predicted %d areas, want %d", shards, len(areas), len(wantAreas))
		}
		for i := range areas {
			if !areas[i].Equal(wantAreas[i]) {
				t.Fatalf("shards=%d area %d = %v, want %v", shards, i, areas[i], wantAreas[i])
			}
		}
	}
}

// TestShardedSessionDegradesOnShardFailure pins the partial-failure
// contract end to end: a hard-failing shard shows up as a named
// "shard_partial:n/N" degradation on the iteration result, and the
// session keeps running on the surviving shards.
func TestShardedSessionDegradesOnShardFailure(t *testing.T) {
	v := testView(t, 5000, 7).WithShards(engine.ShardOptions{Shards: 4})
	s, err := NewSession(v, rectOracle(geom.R(30, 60, 30, 60)), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Activate(faultinject.New(faultinject.Config{
		Seed: 1, ErrorRate: 1,
		Points: []string{faultinject.PointAt(engine.FaultShardScan, 1)},
	}))
	defer faultinject.Deactivate()
	res, err := s.RunIteration()
	if err != nil {
		t.Fatal(err)
	}
	found := ""
	for _, d := range res.Degradations {
		if strings.HasPrefix(d, DegradeShardPartialPrefix+":") {
			found = d
		}
	}
	if found != "shard_partial:3/4" {
		t.Fatalf("degradations = %v, want shard_partial:3/4", res.Degradations)
	}
	if res.NewSamples == 0 {
		t.Fatal("degraded iteration labeled nothing — healthy shards should still serve")
	}
	if s.Stats().Degradations[len(s.Stats().Degradations)-1] != found {
		t.Fatal("session stats did not carry the shard degradation")
	}

	// Faults cleared: the supervisor recovers the shard and later
	// iterations run clean.
	faultinject.Deactivate()
	clean := false
	for i := 0; i < 12 && !clean; i++ {
		res, err := s.RunIteration()
		if err != nil {
			t.Fatal(err)
		}
		clean = true
		for _, d := range res.Degradations {
			if strings.HasPrefix(d, DegradeShardPartialPrefix) {
				clean = false
			}
		}
	}
	if !clean {
		t.Fatal("session never recovered to degradation-free iterations after faults cleared")
	}
}
