package explore

import (
	"math/rand"
	"testing"

	"github.com/explore-by-example/aide/internal/dataset"
	"github.com/explore-by-example/aide/internal/engine"
	"github.com/explore-by-example/aide/internal/geom"
)

// Edge cases and failure injection for the session loop.

func TestAllIrrelevantOracleTerminates(t *testing.T) {
	// A user for whom nothing is relevant: the session must keep running
	// without a classifier, exhaust the space gracefully, and predict an
	// empty query.
	v := testView(t, 2000, 101)
	opts := DefaultOptions()
	opts.MaxZoomLevels = 1
	s, err := NewSession(v, rectOracle( /* no targets */ ), opts)
	if err != nil {
		t.Fatal(err)
	}
	results, err := RunUntil(s, nil, 300)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) >= 300 {
		t.Error("session did not terminate on an exhausted space")
	}
	if got := s.RelevantAreas(); got != nil {
		t.Errorf("predicted areas for an all-irrelevant user: %v", got)
	}
	q := s.FinalQuery()
	if q.SQL() != "SELECT * FROM uniform WHERE FALSE;" {
		t.Errorf("SQL = %q", q.SQL())
	}
}

func TestAllRelevantOracle(t *testing.T) {
	// Everything is relevant: no irrelevant class ever forms, so the tree
	// cannot train; the session must not crash and must not claim areas.
	v := testView(t, 2000, 102)
	s, err := NewSession(v, OracleFunc(func(*engine.View, int) bool { return true }), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunUntil(s, nil, 10); err != nil {
		t.Fatal(err)
	}
	if s.Tree() != nil {
		t.Error("tree trained with a single class")
	}
}

func TestSingleRowTable(t *testing.T) {
	tab := dataset.GenerateUniform(1, 2, 103)
	v, err := engine.NewView(tab, []string{"a0", "a1"})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(v, rectOracle(geom.NewRect(2)), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.RunIteration()
	if err != nil {
		t.Fatal(err)
	}
	if res.NewSamples != 1 {
		t.Errorf("NewSamples = %d, want 1", res.NewSamples)
	}
}

func TestTinyTargetNeverFoundStillTerminates(t *testing.T) {
	// A target far smaller than the deepest zoom level can resolve: the
	// session should sweep everything it can and stop, not spin.
	v := testView(t, 3000, 104)
	opts := DefaultOptions()
	opts.MaxZoomLevels = 1
	s, err := NewSession(v, rectOracle(geom.R(10, 10.01, 10, 10.01)), opts)
	if err != nil {
		t.Fatal(err)
	}
	results, err := RunUntil(s, nil, 500)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) >= 500 {
		t.Error("session spun on an unfindable target")
	}
}

func TestPhaseDrivenBudget(t *testing.T) {
	// SamplesPerIteration = 0 means no cap: the first iteration sweeps
	// the entire discovery hierarchy.
	v := testView(t, 20000, 105)
	opts := DefaultOptions()
	opts.SamplesPerIteration = 0
	opts.MaxZoomLevels = 1
	s, err := NewSession(v, rectOracle(geom.R(40, 55, 40, 55)), opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.RunIteration()
	if err != nil {
		t.Fatal(err)
	}
	if res.NewSamples < 16 {
		t.Errorf("unbounded first iteration sampled only %d", res.NewSamples)
	}
}

func TestDegenerateRangeHint(t *testing.T) {
	// A hint thinner than one cell still works: discovery explores the
	// single overlapping cell chain.
	v := testView(t, 20000, 106)
	opts := DefaultOptions()
	opts.RangeHint = geom.R(40, 42, 40, 42)
	s, err := NewSession(v, rectOracle(geom.R(40, 42, 40, 42)), opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunUntil(s, nil, 30); err != nil {
		t.Fatal(err)
	}
	if s.LabeledCount() == 0 {
		t.Error("no samples labeled under a thin range hint")
	}
}

func TestRelevantAreasAreMerged(t *testing.T) {
	// The public RelevantAreas must return merged rectangles: strictly
	// fewer or equal to the raw tree leaves.
	v := testView(t, 20000, 107)
	s, err := NewSession(v, rectOracle(geom.R(30, 45, 50, 65)), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunUntil(s, func(r *IterationResult) bool { return r.TotalLabeled >= 300 }, 30); err != nil {
		t.Fatal(err)
	}
	if s.tree == nil {
		t.Skip("no tree formed")
	}
	raw := len(s.areas)
	merged := len(s.RelevantAreas())
	if merged > raw {
		t.Errorf("merged %d > raw %d areas", merged, raw)
	}
}

func TestIterationResultAccounting(t *testing.T) {
	v := testView(t, 20000, 108)
	s, err := NewSession(v, rectOracle(geom.R(30, 45, 50, 65)), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cumulative := 0
	for i := 0; i < 15; i++ {
		res, err := s.RunIteration()
		if err != nil {
			t.Fatal(err)
		}
		cumulative += res.NewSamples
		if res.TotalLabeled != cumulative {
			t.Fatalf("iteration %d: TotalLabeled=%d, cumulative=%d", i, res.TotalLabeled, cumulative)
		}
		sum := res.PhaseSamples[0] + res.PhaseSamples[1] + res.PhaseSamples[2]
		if sum != res.NewSamples {
			t.Fatalf("iteration %d: phase samples %v sum %d != NewSamples %d",
				i, res.PhaseSamples, sum, res.NewSamples)
		}
		if res.NewRelevant > res.NewSamples {
			t.Fatalf("iteration %d: more relevant than samples", i)
		}
		if res.Duration < res.TrainDuration {
			t.Fatalf("iteration %d: train time exceeds total time", i)
		}
	}
}

// The session must work on 1-D exploration spaces.
func TestOneDimensionalSpace(t *testing.T) {
	tab := dataset.GenerateUniform(10000, 1, 109)
	v, err := engine.NewView(tab, []string{"a0"})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(v, rectOracle(geom.R(30, 40)), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunUntil(s, func(r *IterationResult) bool { return r.TotalLabeled >= 150 }, 20); err != nil {
		t.Fatal(err)
	}
	areas := s.RelevantAreas()
	if len(areas) == 0 {
		t.Fatal("no 1-D areas found")
	}
	if f := geom.R(30, 40).OverlapFraction(areas[0]); f < 0.5 {
		t.Errorf("1-D area overlap %v", f)
	}
}

// The paper assumes a noise-free relevance system (§2.1); this test
// documents graceful degradation beyond that assumption: with 5% label
// noise the session must neither crash nor collapse — the predicted area
// should still overlap the target substantially.
func TestNoisyOracleDegradesGracefully(t *testing.T) {
	v := testView(t, 20000, 301)
	target := geom.R(30, 48, 50, 68)
	flips := 0
	rng := rand.New(rand.NewSource(301))
	oracle := OracleFunc(func(view *engine.View, row int) bool {
		truth := target.Contains(view.NormPoint(row))
		if rng.Float64() < 0.05 {
			flips++
			return !truth
		}
		return truth
	})
	s, err := NewSession(v, oracle, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunUntil(s, func(r *IterationResult) bool { return r.TotalLabeled >= 600 }, 60); err != nil {
		t.Fatal(err)
	}
	if flips == 0 {
		t.Fatal("noise never injected")
	}
	best := 0.0
	for _, a := range s.RelevantAreas() {
		if f := target.OverlapFraction(a); f > best {
			best = f
		}
	}
	if best < 0.3 {
		t.Errorf("best overlap under 5%% noise = %v; degradation too severe", best)
	}
}
