package explore

import (
	"errors"
	"testing"
	"time"

	"github.com/explore-by-example/aide/internal/dataset"
	"github.com/explore-by-example/aide/internal/engine"
)

func fuzzView(t *testing.T, n int, seed int64) *engine.View {
	t.Helper()
	tab := dataset.GenerateUniform(n, 2, seed)
	v, err := engine.NewView(tab, []string{"a0", "a1"})
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// checkInvariants asserts the session's training-set bookkeeping is
// internally consistent regardless of what the oracle did.
func checkInvariants(t *testing.T, s *Session) {
	t.Helper()
	if len(s.rows) != len(s.labels) || len(s.rows) != len(s.points) {
		t.Fatalf("ragged training set: %d rows, %d labels, %d points", len(s.rows), len(s.labels), len(s.points))
	}
	pos := 0
	for _, lab := range s.labels {
		if lab {
			pos++
		}
	}
	if pos != s.nPos {
		t.Fatalf("nPos = %d, training set has %d positives", s.nPos, pos)
	}
	if len(s.idxOf) != len(s.rows) {
		t.Fatalf("idxOf has %d entries for %d rows", len(s.idxOf), len(s.rows))
	}
	for row, i := range s.idxOf {
		if i < 0 || i >= len(s.rows) || s.rows[i] != row {
			t.Fatalf("idxOf[%d] = %d out of sync with rows", row, i)
		}
		if s.labelOf[row] != s.labels[i] {
			t.Fatalf("labelOf[%d] = %v, labels[%d] = %v", row, s.labelOf[row], i, s.labels[i])
		}
	}
}

// FuzzSessionFeedback feeds arbitrary — including self-contradictory —
// label streams through full steering iterations under every conflict
// policy. The session must never panic, never corrupt its training-set
// bookkeeping, and only fail with a ConflictError (strict policy only).
func FuzzSessionFeedback(f *testing.F) {
	f.Add(int64(1), uint8(0), []byte{0xAA, 0x55})
	f.Add(int64(7), uint8(1), []byte{0xFF, 0x00, 0x13})
	f.Add(int64(42), uint8(2), []byte{0x01})
	f.Add(int64(-3), uint8(0), []byte{})
	f.Fuzz(func(t *testing.T, seed int64, policyRaw uint8, feedback []byte) {
		v := fuzzView(t, 300, 5)
		policy := ConflictPolicy(int(policyRaw) % int(numConflictPolicies))
		calls := 0
		oracle := OracleFunc(func(view *engine.View, row int) bool {
			if len(feedback) == 0 {
				return row%2 == 0
			}
			b := feedback[(calls/8)%len(feedback)]
			bit := b>>(uint(calls)%8)&1 == 1
			calls++
			return bit
		})
		opts := DefaultOptions()
		opts.Seed = seed
		opts.ConflictPolicy = policy
		s, err := NewSession(v, oracle, opts)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := RunUntil(s, nil, 5); err != nil {
			var ce *ConflictError
			if policy == ConflictStrict && errors.As(err, &ce) {
				checkInvariants(t, s)
				return // contradiction under strict policy is the contract
			}
			t.Fatalf("session failed: %v", err)
		}
		checkInvariants(t, s)
	})
}

// FuzzBudget throws arbitrary budget values at session construction and
// a few iterations: negatives must be rejected with ErrBadBudget, and
// any accepted budget must be enforced without panics.
func FuzzBudget(f *testing.F) {
	f.Add(int64(1), 10, int64(1_000_000), 5, 7, int64(1<<20))
	f.Add(int64(2), 0, int64(0), 0, 0, int64(0))
	f.Add(int64(3), -1, int64(-5), -2, -3, int64(-1))
	f.Add(int64(4), 1, int64(1), 1, 1, int64(1))
	f.Fuzz(func(t *testing.T, seed int64, maxRows int, maxIterNanos int64, maxSamples, maxNodes int, maxMem int64) {
		v := fuzzView(t, 200, 9)
		opts := DefaultOptions()
		opts.Seed = seed
		opts.Budget = Budget{
			MaxLabeledRows:         maxRows,
			MaxIterationTime:       time.Duration(maxIterNanos),
			MaxSamplesPerIteration: maxSamples,
			MaxTreeNodes:           maxNodes,
			MaxMemBytes:            maxMem,
		}
		negative := maxRows < 0 || maxIterNanos < 0 || maxSamples < 0 || maxNodes < 0 || maxMem < 0
		s, err := NewSession(v, rectOracle(), opts)
		if err != nil {
			if errors.Is(err, ErrBadBudget) && negative {
				return
			}
			t.Fatalf("unexpected construction error: %v", err)
		}
		if negative {
			t.Fatal("negative budget accepted")
		}
		for i := 0; i < 3; i++ {
			res, err := s.RunIteration()
			if err != nil {
				t.Fatalf("iteration %d: %v", i, err)
			}
			if maxRows > 0 && res.TotalLabeled > maxRows {
				t.Fatalf("labeled %d rows over budget %d", res.TotalLabeled, maxRows)
			}
			if maxSamples > 0 && res.NewSamples > maxSamples {
				t.Fatalf("iteration labeled %d samples over cap %d", res.NewSamples, maxSamples)
			}
			if tr := s.Tree(); tr != nil && maxNodes > 0 && tr.NumNodes() > maxNodes {
				t.Fatalf("tree has %d nodes over cap %d", tr.NumNodes(), maxNodes)
			}
		}
		checkInvariants(t, s)
	})
}
