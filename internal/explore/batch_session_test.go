package explore

import (
	"reflect"
	"testing"

	"github.com/explore-by-example/aide/internal/geom"
)

// TestDiagnosticsMemoized pins the selectivity memo: the view is
// immutable, so a second Diagnostics call over the same prediction must
// answer entirely from the memo — zero engine queries — and return the
// same evidence.
func TestDiagnosticsMemoized(t *testing.T) {
	v := testView(t, 5000, 7)
	s, err := NewSession(v, rectOracle(geom.R(30, 60, 30, 60)), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6 && s.Tree() == nil; i++ {
		if _, err := s.RunIteration(); err != nil {
			t.Fatal(err)
		}
	}
	if s.Tree() == nil {
		t.Fatal("session never trained a classifier")
	}
	stats := s.View().Stats()
	before := stats.Queries.Load()
	first := s.Diagnostics()
	if len(first) == 0 {
		t.Fatal("no diagnostics for a session with a prediction")
	}
	if stats.Queries.Load() == before {
		t.Fatal("first Diagnostics call issued no engine queries — memo test is vacuous")
	}
	mid := stats.Queries.Load()
	second := s.Diagnostics()
	if d := stats.Queries.Load() - mid; d != 0 {
		t.Fatalf("repeat Diagnostics issued %d engine queries, want 0 (memoized)", d)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("memoized Diagnostics diverged from the freshly computed call")
	}

	// The memo keys by exact area: a new prediction after another
	// iteration may add areas, and only the genuinely new rects are
	// recounted (no assertion on the count here — just that the call
	// still answers correctly after the memo warmed up).
	if _, err := s.RunIteration(); err != nil {
		t.Fatal(err)
	}
	if got := s.Diagnostics(); len(got) == 0 {
		t.Fatal("diagnostics vanished after an iteration")
	}
}
