package explore

import (
	"context"
	"errors"
	"testing"

	"github.com/explore-by-example/aide/internal/engine"
	"github.com/explore-by-example/aide/internal/geom"
)

func TestRunIterationCtxUncancelledMatchesRunIteration(t *testing.T) {
	target := geom.R(10, 30, 10, 30)
	a, err := NewSession(testView(t, 5000, 301), rectOracle(target), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSession(testView(t, 5000, 301), rectOracle(target), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 0; i < 6; i++ {
		ra, err := a.RunIteration()
		if err != nil {
			t.Fatal(err)
		}
		rb, err := b.RunIterationCtx(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if ra.NewSamples != rb.NewSamples || ra.NewRelevant != rb.NewRelevant {
			t.Fatalf("iteration %d diverged: (%d,%d) vs (%d,%d)",
				i, ra.NewSamples, ra.NewRelevant, rb.NewSamples, rb.NewRelevant)
		}
	}
	aAreas, bAreas := a.RelevantAreas(), b.RelevantAreas()
	if len(aAreas) != len(bAreas) {
		t.Fatalf("areas: %d vs %d", len(aAreas), len(bAreas))
	}
	for i := range aAreas {
		if !aAreas[i].Equal(bAreas[i]) {
			t.Errorf("area %d differs", i)
		}
	}
}

func TestRunIterationCtxPreCancelled(t *testing.T) {
	s, err := NewSession(testView(t, 2000, 302), rectOracle(geom.R(10, 30, 10, 30)), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.RunIterationCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if s.Stats().Iterations != 0 || s.LabeledCount() != 0 {
		t.Errorf("pre-cancelled iteration did work: %d iters, %d labels",
			s.Stats().Iterations, s.LabeledCount())
	}
	// The session is still usable with a live context.
	if _, err := s.RunIteration(); err != nil {
		t.Fatal(err)
	}
	if s.Stats().Iterations != 1 {
		t.Errorf("retry did not advance: %d iterations", s.Stats().Iterations)
	}
}

func TestRunIterationCtxCancelMidIteration(t *testing.T) {
	v := testView(t, 5000, 303)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Cancel from inside the oracle: the third label pulls the plug
	// mid-discovery, exactly like a client disconnect between samples.
	calls := 0
	oracle := OracleFunc(func(view *engine.View, row int) bool {
		calls++
		if calls == 3 {
			cancel()
		}
		return geom.R(10, 30, 10, 30).Contains(view.NormPoint(row))
	})
	s, err := NewSession(v, oracle, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.RunIterationCtx(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// Labels recorded before the cancel are kept (real user effort) but
	// the iteration did not complete and stopped promptly after the
	// cancel — at most one more label can slip in from an in-flight
	// sample request.
	if got := s.LabeledCount(); got < 3 || got > 4 {
		t.Errorf("labeled count after cancel = %d, want 3 or 4", got)
	}
	if s.Stats().Iterations != 0 {
		t.Errorf("cancelled iteration advanced the counter: %d", s.Stats().Iterations)
	}
	// Retrying with a fresh context succeeds and does not re-ask for
	// the labels already given.
	before := s.LabeledCount()
	res, err := s.RunIteration()
	if err != nil {
		t.Fatal(err)
	}
	if s.Stats().Iterations != 1 {
		t.Errorf("retry did not advance: %d iterations", s.Stats().Iterations)
	}
	if res.TotalLabeled < before {
		t.Errorf("retry lost labels: %d < %d", res.TotalLabeled, before)
	}
}

func TestRunIterationCtxNilContext(t *testing.T) {
	s, err := NewSession(testView(t, 1000, 304), rectOracle(geom.R(10, 30, 10, 30)), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunIterationCtx(nil); err != nil { //nolint:staticcheck // nil ctx tolerance is part of the contract
		t.Fatal(err)
	}
}
