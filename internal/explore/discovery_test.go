package explore

import (
	"testing"

	"github.com/explore-by-example/aide/internal/dataset"
	"github.com/explore-by-example/aide/internal/engine"
	"github.com/explore-by-example/aide/internal/geom"
)

// clusteredView builds a 2-D view whose data concentrates around two
// dense blobs, the skewed-space scenario of Section 3.1.
func clusteredView(t testing.TB, n int, seed int64) *engine.View {
	t.Helper()
	specs := []dataset.ClusterSpec{
		{Center: []float64{20, 20}, Std: 5, Weight: 1},
		{Center: []float64{75, 75}, Std: 5, Weight: 1},
	}
	tab := dataset.GenerateClusters(n, 2, specs, 0.05, seed)
	v, err := engine.NewView(tab, []string{"a0", "a1"})
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestClusteringDiscoveryFindsDenseTarget(t *testing.T) {
	v := clusteredView(t, 20000, 1)
	target := geom.R(15, 25, 15, 25) // sits on the first dense blob
	opts := DefaultOptions()
	opts.Discovery = DiscoveryClustering
	s, err := NewSession(v, rectOracle(target), opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunUntil(s, func(r *IterationResult) bool {
		return s.discoveryHits > 0
	}, 10); err != nil {
		t.Fatal(err)
	}
	if s.discoveryHits == 0 {
		t.Error("clustering discovery never hit a dense-region target in 10 iterations")
	}
}

func TestClusteringDiscoveryBeatsGridOnSkew(t *testing.T) {
	// On a skewed space with a dense-region target, clustering discovery
	// should need no more samples than grid discovery to first hit the
	// target (Figure 10(c)'s qualitative claim). Compare first-hit effort
	// over a few seeds.
	sumGrid, sumCluster := 0, 0
	for seed := int64(1); seed <= 3; seed++ {
		v := clusteredView(t, 20000, seed)
		target := geom.R(16, 24, 16, 24)
		for _, strat := range []DiscoveryStrategy{DiscoveryGrid, DiscoveryClustering} {
			opts := DefaultOptions()
			opts.Seed = seed
			opts.Discovery = strat
			s, err := NewSession(v, rectOracle(target), opts)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := RunUntil(s, func(r *IterationResult) bool {
				return s.discoveryHits > 0
			}, 60); err != nil {
				t.Fatal(err)
			}
			if strat == DiscoveryGrid {
				sumGrid += s.LabeledCount()
			} else {
				sumCluster += s.LabeledCount()
			}
		}
	}
	if sumCluster > sumGrid*2 {
		t.Errorf("clustering needed %d samples vs grid %d on a dense target", sumCluster, sumGrid)
	}
}

func TestHybridDiscoveryFallsBackToGrid(t *testing.T) {
	// Target in a sparse corner: clustering levels concentrate on the
	// blobs and exhaust; hybrid must fall back to the grid and still find
	// it.
	v := clusteredView(t, 20000, 5)
	target := geom.R(40, 60, 40, 60) // between the blobs: sparse
	opts := DefaultOptions()
	opts.Discovery = DiscoveryHybrid
	opts.MaxIterations = 400
	s, err := NewSession(v, rectOracle(target), opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunUntil(s, func(r *IterationResult) bool {
		return s.discoveryHits > 0
	}, 400); err != nil {
		t.Fatal(err)
	}
	hd, ok := s.disc.(*hybridDiscovery)
	if !ok {
		t.Fatal("expected hybrid discovery")
	}
	if s.discoveryHits == 0 {
		t.Error("hybrid discovery never found the sparse target")
	}
	if !hd.switched {
		t.Log("hybrid found the target before switching to grid (acceptable)")
	}
}

func TestGridDiscoveryZoomsIntoUnproductiveCells(t *testing.T) {
	v := testView(t, 20000, 6)
	opts := DefaultOptions()
	opts.SamplesPerIteration = 0 // unbounded: one iteration per level sweep
	s, err := NewSession(v, rectOracle(geom.R(10, 12, 10, 12)), opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.RunIteration()
	if err != nil {
		t.Fatal(err)
	}
	// Unbounded budget walks level 0 and every zoom level in one go.
	gd := s.disc.(*gridDiscovery)
	if gd.curLevel == 0 {
		t.Errorf("discovery never descended past level 0 (samples %d)", res.NewSamples)
	}
	if res.NewSamples <= 16 {
		t.Errorf("expected zooming to sample more than level 0's 16 cells, got %d", res.NewSamples)
	}
}

func TestGridDiscoverySkipsEmptyCells(t *testing.T) {
	// Data only in [0,25]^2 (normalized): the other 12 level-0 cells are
	// empty and must not consume labels; zooming into them is pointless.
	tab := dataset.GenerateClusters(3000, 2, []dataset.ClusterSpec{
		{Center: []float64{12, 12}, Std: 4, Weight: 1},
	}, 0, 7)
	v, err := engine.NewView(tab, []string{"a0", "a1"})
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.SamplesPerIteration = 0
	opts.MaxZoomLevels = 1
	s, err := NewSession(v, rectOracle(), opts) // nothing relevant
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.RunIteration()
	if err != nil {
		t.Fatal(err)
	}
	// Non-empty cells: a handful around the blob across two levels; far
	// fewer than the 16+64 total cells.
	if res.NewSamples > 30 {
		t.Errorf("sampled %d times; empty cells apparently consumed effort", res.NewSamples)
	}
}

func TestClusterDiscoveryRespectsRangeHint(t *testing.T) {
	v := clusteredView(t, 20000, 8)
	hint := geom.R(0, 50, 0, 50)
	opts := DefaultOptions()
	opts.Discovery = DiscoveryClustering
	opts.RangeHint = hint
	outside := 0
	oracle := OracleFunc(func(view *engine.View, row int) bool {
		if !hint.Contains(view.NormPoint(row)) {
			outside++
		}
		return false
	})
	s, err := NewSession(v, oracle, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunUntil(s, nil, 10); err != nil {
		t.Fatal(err)
	}
	// Cluster centroids are fit only on in-hint rows; their sampling
	// balls can slightly poke out, so allow a modest fraction.
	if s.LabeledCount() > 0 {
		frac := float64(outside) / float64(s.LabeledCount())
		if frac > 0.2 {
			t.Errorf("%.0f%% of clustering-discovery samples outside hint", frac*100)
		}
	}
}

func TestNewDiscovererUnknownStrategy(t *testing.T) {
	v := testView(t, 100, 9)
	opts := DefaultOptions()
	opts.Discovery = DiscoveryStrategy(42)
	if _, err := NewSession(v, rectOracle(), opts); err == nil {
		t.Error("unknown strategy should error")
	}
}

func TestClusterLevelKOverride(t *testing.T) {
	v := clusteredView(t, 5000, 10)
	opts := DefaultOptions()
	opts.Discovery = DiscoveryClustering
	opts.ClusterLevelK = []int{2, 8}
	s, err := NewSession(v, rectOracle(), opts)
	if err != nil {
		t.Fatal(err)
	}
	cd := s.disc.(*clusterDiscovery)
	if len(cd.levels) != 2 {
		t.Fatalf("levels = %d, want 2", len(cd.levels))
	}
	if len(cd.levels[0]) != 2 || len(cd.levels[1]) != 8 {
		t.Errorf("level sizes = %d,%d, want 2,8", len(cd.levels[0]), len(cd.levels[1]))
	}
	// Every level-1 node is the child of exactly one level-0 node.
	childCount := 0
	for i := range cd.levels[0] {
		childCount += len(cd.levels[0][i].children)
	}
	if childCount != 8 {
		t.Errorf("total children = %d, want 8", childCount)
	}
}

func TestMisclassPerObjectVsClusteredQueries(t *testing.T) {
	// With many false negatives and few discovery hits, the clustered
	// strategy must plan fewer extraction queries.
	v := testView(t, 20000, 11)
	opts := DefaultOptions()
	s, err := NewSession(v, rectOracle(geom.R(30, 44, 30, 44)), opts)
	if err != nil {
		t.Fatal(err)
	}
	// Run until there are false negatives to plan around.
	var fns []geom.Point
	for i := 0; i < 60; i++ {
		if _, err := s.RunIteration(); err != nil {
			t.Fatal(err)
		}
		if s.tree != nil {
			if fns = s.falseNegatives(); len(fns) > 1 {
				break
			}
		}
	}
	if len(fns) < 2 {
		t.Skip("never accumulated 2+ false negatives with this seed")
	}
	s.opts.Misclass = MisclassPerObject
	perObj := s.planMisclass(&IterationResult{})
	s.opts.Misclass = MisclassClustered
	clustered := s.planMisclass(&IterationResult{})
	if len(perObj) != len(fns) {
		t.Errorf("per-object planned %d queries for %d FNs", len(perObj), len(fns))
	}
	if s.discoveryHits > 0 && s.discoveryHits < len(fns) && len(clustered) > len(perObj) {
		t.Errorf("clustered planned %d queries, per-object %d", len(clustered), len(perObj))
	}
	// Total sample demand per FN is f in both strategies.
	demand := func(reqs []sampleRequest) int {
		n := 0
		for _, r := range reqs {
			n += r.n
		}
		return n
	}
	if demand(perObj) != len(fns)*s.opts.F {
		t.Errorf("per-object demand = %d, want %d", demand(perObj), len(fns)*s.opts.F)
	}
	if demand(clustered) != len(fns)*s.opts.F {
		t.Errorf("clustered demand = %d, want %d (f x cluster size summed)", demand(clustered), len(fns)*s.opts.F)
	}
}

func TestPlanBoundaryShape(t *testing.T) {
	v := testView(t, 20000, 12)
	opts := DefaultOptions()
	opts.AdaptiveBoundary = false
	s, err := NewSession(v, rectOracle(geom.R(30, 45, 50, 65)), opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40 && len(s.areas) == 0; i++ {
		if _, err := s.RunIteration(); err != nil {
			t.Fatal(err)
		}
	}
	if len(s.areas) == 0 {
		t.Skip("no areas formed with this seed")
	}
	reqs, slabs := s.planBoundary(&IterationResult{})
	wantFaces := len(s.areas) * 2 * v.Dims()
	if len(slabs) != wantFaces {
		t.Errorf("slabs = %d, want %d (one per face)", len(slabs), wantFaces)
	}
	if len(reqs) != wantFaces {
		t.Errorf("non-adaptive requests = %d, want %d", len(reqs), wantFaces)
	}
	for _, rq := range reqs {
		if rq.phase != PhaseBoundary {
			t.Error("wrong phase on boundary request")
		}
		// With DomainSampling, exactly one dimension is narrow (2x width)
		// and the rest span the domain.
		narrow := 0
		for d := 0; d < v.Dims(); d++ {
			if rq.rect[d].Width() <= 2*s.opts.BoundaryX+1e-9 {
				narrow++
			}
		}
		if narrow == 0 {
			t.Errorf("slab %v has no narrow dimension", rq.rect)
		}
	}
}

func TestPlanBoundaryAdaptiveShrinksBudget(t *testing.T) {
	v := testView(t, 20000, 13)
	opts := DefaultOptions()
	s, err := NewSession(v, rectOracle(geom.R(30, 45, 50, 65)), opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60 && len(s.areas) == 0; i++ {
		if _, err := s.RunIteration(); err != nil {
			t.Fatal(err)
		}
	}
	if len(s.areas) == 0 {
		t.Skip("no areas formed")
	}
	// Pretend the previous areas equal the current ones: zero movement.
	s.prevAreas = make([]geom.Rect, len(s.areas))
	for i, a := range s.areas {
		s.prevAreas[i] = a.Clone()
	}
	reqs, _ := s.planBoundary(&IterationResult{})
	for _, rq := range reqs {
		if rq.n > s.opts.BoundaryErr {
			t.Errorf("unmoved boundary got %d samples, want <= er=%d", rq.n, s.opts.BoundaryErr)
		}
	}
}
