package explore

import (
	"testing"

	"github.com/explore-by-example/aide/internal/dataset"
	"github.com/explore-by-example/aide/internal/engine"
	"github.com/explore-by-example/aide/internal/geom"
	"github.com/explore-by-example/aide/internal/obs"
)

// TestIterationSpanTree scripts a 3-iteration session and asserts the
// trace shape: one root span per iteration, a discovery child in the
// first, phase/train children once a classifier exists, and engine-query
// leaves under the phases.
func TestIterationSpanTree(t *testing.T) {
	tab := dataset.GenerateUniform(5_000, 2, 1)
	v, err := engine.NewView(tab, []string{"a0", "a1"})
	if err != nil {
		t.Fatal(err)
	}
	target := geom.R(20, 70, 25, 75)
	oracle := OracleFunc(func(v *engine.View, row int) bool {
		return target.Contains(v.NormPoint(row))
	})
	opts := DefaultOptions()
	opts.Seed = 3
	opts.SamplesPerIteration = 15
	s, err := NewSession(v, oracle, opts)
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorder(16)
	s.SetRecorder(rec)
	if s.Recorder() != rec {
		t.Fatal("Recorder() did not return the attached recorder")
	}

	for i := 0; i < 3; i++ {
		if _, err := s.RunIteration(); err != nil {
			t.Fatal(err)
		}
	}

	spans := rec.Snapshot()
	if len(spans) != 3 {
		t.Fatalf("recorded %d root spans, want 3", len(spans))
	}
	for i, sp := range spans {
		if sp.Name != "iteration" {
			t.Errorf("span %d name = %q", i, sp.Name)
		}
		if sp.Attrs["iteration"] != i {
			t.Errorf("span %d iteration attr = %v", i, sp.Attrs["iteration"])
		}
		if len(sp.Children) == 0 {
			t.Fatalf("span %d has no children", i)
		}
		names := map[string]int{}
		for _, c := range sp.Children {
			names[c.Name]++
		}
		// Every iteration retrains (or clears) the classifier.
		if names["train"] != 1 {
			t.Errorf("span %d children = %v, want one train span", i, names)
		}
		if sp.Attrs["new_samples"] == nil || sp.Attrs["total_labeled"] == nil {
			t.Errorf("span %d missing summary attrs: %v", i, sp.Attrs)
		}
	}
	// Iteration 0 is discovery-only, and its discovery span carries the
	// per-cell engine queries as leaves.
	first := spans[0]
	var disc *obs.SpanData
	for i := range first.Children {
		if first.Children[i].Name == "discovery" {
			disc = &first.Children[i]
		}
	}
	if disc == nil {
		t.Fatal("first iteration has no discovery span")
	}
	if len(disc.Children) == 0 {
		t.Error("discovery span has no engine query children")
	}
	for _, q := range disc.Children {
		if q.Name != "engine.sample_near" {
			t.Errorf("discovery leaf = %q", q.Name)
		}
	}
	// By iteration 3 a classifier exists, so later iterations should show
	// misclassified/boundary exploitation somewhere.
	foundPhase := false
	for _, sp := range spans[1:] {
		for _, c := range sp.Children {
			if c.Name == "misclassified" || c.Name == "boundary" {
				foundPhase = true
				for _, q := range c.Children {
					if q.Name != "engine.sample_rect" {
						t.Errorf("%s leaf = %q", c.Name, q.Name)
					}
				}
			}
		}
	}
	if !foundPhase {
		t.Error("no misclassified/boundary phase spans after iteration 0")
	}
}

// TestSessionWithoutRecorder ensures tracing stays off (and free of
// panics) when no recorder is attached.
func TestSessionWithoutRecorder(t *testing.T) {
	tab := dataset.GenerateUniform(1_000, 2, 1)
	v, err := engine.NewView(tab, []string{"a0", "a1"})
	if err != nil {
		t.Fatal(err)
	}
	oracle := OracleFunc(func(*engine.View, int) bool { return false })
	s, err := NewSession(v, oracle, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunIteration(); err != nil {
		t.Fatal(err)
	}
	if s.Recorder() != nil {
		t.Error("recorder should default to nil")
	}
}
