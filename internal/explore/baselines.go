package explore

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/explore-by-example/aide/internal/cart"
	"github.com/explore-by-example/aide/internal/engine"
	"github.com/explore-by-example/aide/internal/geom"
	"github.com/explore-by-example/aide/internal/grid"
)

// baseline holds the state shared by the Random and Random-Grid
// exploration baselines of Section 6.2: a labeled set and a decision
// tree, but none of AIDE's strategic sample selection.
type baseline struct {
	view    *engine.View
	oracle  Oracle
	rng     *rand.Rand
	perIter int

	labelOf map[int]bool
	rows    []int
	points  []geom.Point
	labels  []bool
	nPos    int

	tree  *cart.Tree
	areas []geom.Rect
	iter  int
}

func newBaseline(view *engine.View, oracle Oracle, perIter int, seed int64) (*baseline, error) {
	if view == nil || oracle == nil {
		return nil, fmt.Errorf("explore: nil view or oracle")
	}
	if perIter <= 0 {
		perIter = 20
	}
	return &baseline{
		view:    view,
		oracle:  oracle,
		rng:     rand.New(rand.NewSource(seed)),
		perIter: perIter,
		labelOf: make(map[int]bool),
	}, nil
}

func (b *baseline) label(row int, res *IterationResult) bool {
	if lab, ok := b.labelOf[row]; ok {
		return lab
	}
	lab := b.oracle.Label(b.view, row)
	b.labelOf[row] = lab
	b.rows = append(b.rows, row)
	b.points = append(b.points, b.view.NormPoint(row))
	b.labels = append(b.labels, lab)
	if lab {
		b.nPos++
		res.NewRelevant++
	}
	res.NewSamples++
	res.PhaseSamples[PhaseDiscovery]++
	return lab
}

func (b *baseline) retrain(res *IterationResult) error {
	if b.nPos > 0 && b.nPos < len(b.rows) {
		tree, err := cart.Train(b.points, b.labels, cart.DefaultParams())
		if err != nil {
			return err
		}
		b.tree = tree
		b.areas = tree.RelevantAreas(geom.NewRect(b.view.Dims()))
	} else {
		b.tree = nil
		b.areas = nil
	}
	res.TotalLabeled = len(b.rows)
	res.RelevantAreas = len(b.areas)
	return nil
}

// LabeledCount implements Explorer.
func (b *baseline) LabeledCount() int { return len(b.rows) }

// RelevantAreas implements Explorer.
func (b *baseline) RelevantAreas() []geom.Rect {
	if len(b.areas) == 0 {
		return nil
	}
	return cart.MergeAreas(b.areas)
}

// FinalQuery implements Explorer.
func (b *baseline) FinalQuery() engine.Query {
	norm := b.view.Normalizer()
	merged := b.RelevantAreas()
	areas := make([]geom.Rect, len(merged))
	for i, a := range merged {
		areas[i] = norm.ToRawRect(a)
	}
	return engine.Query{
		Table:   b.view.Table().Name(),
		Attrs:   b.view.Attrs(),
		Areas:   areas,
		Domains: norm.ToRawRect(geom.NewRect(b.view.Dims())),
	}
}

// Random selects SamplesPerIteration uniformly random tuples each
// iteration, presents them for feedback, and trains a classifier — no
// steering at all (Section 6.2's Random baseline).
type Random struct {
	baseline
}

// NewRandom builds the Random baseline explorer.
func NewRandom(view *engine.View, oracle Oracle, perIter int, seed int64) (*Random, error) {
	b, err := newBaseline(view, oracle, perIter, seed)
	if err != nil {
		return nil, err
	}
	return &Random{baseline: *b}, nil
}

// RunIteration implements Explorer.
func (r *Random) RunIteration() (*IterationResult, error) {
	start := time.Now()
	res := &IterationResult{Iteration: r.iter}
	r.iter++
	// Oversample to compensate for rows that were already labeled.
	for _, row := range r.view.SampleAll(r.perIter*3, r.rng) {
		if res.NewSamples >= r.perIter {
			break
		}
		r.label(row, res)
	}
	if err := r.retrain(res); err != nil {
		return nil, err
	}
	res.Duration = time.Since(start)
	return res, nil
}

// RandomGrid is the Random-Grid baseline of Section 6.2: like Random, but
// samples are drawn one per grid cell (random cell order, random object
// near the cell center), which spreads them across the exploration space.
// When a level's cells are exhausted it descends to the next level.
type RandomGrid struct {
	baseline
	g        *grid.Grid
	frontier []grid.Cell
	level    int
	maxLevel int
	gamma    float64
}

// NewRandomGrid builds the Random-Grid baseline explorer. beta0 is the
// level-0 granularity (the paper uses the same grid as AIDE).
func NewRandomGrid(view *engine.View, oracle Oracle, perIter, beta0 int, seed int64) (*RandomGrid, error) {
	b, err := newBaseline(view, oracle, perIter, seed)
	if err != nil {
		return nil, err
	}
	if beta0 <= 0 {
		beta0 = 4
	}
	g, err := grid.New(view.Dims(), beta0)
	if err != nil {
		return nil, err
	}
	rg := &RandomGrid{baseline: *b, g: g, maxLevel: 6}
	rg.reload()
	return rg, nil
}

// reload fills the frontier with the cells of the current level in
// random order.
func (r *RandomGrid) reload() {
	r.frontier = r.g.CellsAt(r.level)
	r.rng.Shuffle(len(r.frontier), func(i, j int) {
		r.frontier[i], r.frontier[j] = r.frontier[j], r.frontier[i]
	})
	r.gamma = 0.7 * r.g.Width(r.level) / 2
}

// RunIteration implements Explorer.
func (r *RandomGrid) RunIteration() (*IterationResult, error) {
	start := time.Now()
	res := &IterationResult{Iteration: r.iter}
	r.iter++
	attempts := 0
	maxAttempts := r.perIter * 50
	for res.NewSamples < r.perIter && attempts < maxAttempts {
		attempts++
		if len(r.frontier) == 0 {
			if r.level >= r.maxLevel {
				break
			}
			r.level++
			r.reload()
		}
		cell := r.frontier[0]
		r.frontier = r.frontier[1:]
		row := r.view.SampleOneNearCenter(r.g.Center(cell), r.gamma, r.rng)
		if row < 0 {
			continue
		}
		r.label(row, res)
	}
	if err := r.retrain(res); err != nil {
		return nil, err
	}
	res.Duration = time.Since(start)
	return res, nil
}

var (
	_ Explorer = (*Session)(nil)
	_ Explorer = (*Random)(nil)
	_ Explorer = (*RandomGrid)(nil)
)
