package explore

import (
	"time"

	"github.com/explore-by-example/aide/internal/engine"
	"github.com/explore-by-example/aide/internal/geom"
)

// Oracle supplies relevance labels: the human in the loop, or the
// simulated user of the evaluation harness. The paper assumes a binary,
// non-noisy relevance system where labels never change (Section 2.1);
// this implementation relaxes that: when exploration re-proposes an
// already-labeled row, Label is consulted again and any contradiction is
// resolved under the session's ConflictPolicy. Oracles backed by a human
// should memoize their answers to avoid re-prompting (the bundled CLI
// and service oracles do).
type Oracle interface {
	// Label reports whether the given row of the view is relevant to the
	// exploration task.
	Label(v *engine.View, row int) bool
}

// OracleFunc adapts a function to the Oracle interface.
type OracleFunc func(v *engine.View, row int) bool

// Label implements Oracle.
func (f OracleFunc) Label(v *engine.View, row int) bool { return f(v, row) }

// Phase identifies which exploration phase extracted a sample.
type Phase int

const (
	// PhaseDiscovery is relevant object discovery (Section 3).
	PhaseDiscovery Phase = iota
	// PhaseMisclass is misclassified exploitation (Section 4).
	PhaseMisclass
	// PhaseBoundary is boundary exploitation (Section 5).
	PhaseBoundary
	numPhases
)

// String implements fmt.Stringer.
func (p Phase) String() string {
	switch p {
	case PhaseDiscovery:
		return "discovery"
	case PhaseMisclass:
		return "misclassified"
	case PhaseBoundary:
		return "boundary"
	default:
		return "unknown"
	}
}

// IterationResult summarizes one steering iteration.
type IterationResult struct {
	// Iteration is the 0-based iteration number.
	Iteration int
	// NewSamples is the number of freshly labeled tuples shown to the
	// user this iteration.
	NewSamples int
	// NewRelevant counts how many of them the user labeled relevant.
	NewRelevant int
	// PhaseSamples breaks NewSamples down by extraction phase.
	PhaseSamples [3]int
	// TotalLabeled is the cumulative label count (the user effort so
	// far).
	TotalLabeled int
	// RelevantAreas is the number of relevant areas the current
	// classifier predicts.
	RelevantAreas int
	// Duration is the system execution time of the iteration: space
	// exploration + sample extraction + classifier training, i.e. the
	// user wait time (Section 6.1's efficiency metric). It excludes the
	// user's own reviewing time.
	Duration time.Duration
	// TrainDuration is the classifier-training share of Duration.
	TrainDuration time.Duration
	// PhaseDurations breaks the sample-extraction share of Duration down
	// by phase (discovery, misclassified, boundary); training is
	// TrainDuration.
	PhaseDurations [3]time.Duration
	// Conflicts counts label contradictions detected this iteration.
	Conflicts int
	// Degradations lists the budget degradations active this iteration
	// (see the Degrade* constants), deduplicated, in first-trip order.
	// Empty means the iteration ran unconstrained.
	Degradations []string
}

// Explorer is the common surface of AIDE and the baseline strategies
// (Random and Random-Grid, Section 6.2), letting the evaluation harness
// drive them interchangeably.
type Explorer interface {
	// RunIteration executes one steering iteration.
	RunIteration() (*IterationResult, error)
	// RelevantAreas returns the current predicted relevant areas in
	// normalized space (merged, may be empty).
	RelevantAreas() []geom.Rect
	// LabeledCount returns the cumulative number of labeled samples.
	LabeledCount() int
	// FinalQuery renders the current prediction as a raw-space query.
	FinalQuery() engine.Query
}

// RunUntil drives an explorer until stop returns true or maxIter
// iterations elapse, returning all iteration results. A nil stop runs to
// maxIter. Iterations that cannot make progress (no new samples, e.g.
// space exhausted) terminate the loop early.
func RunUntil(e Explorer, stop func(*IterationResult) bool, maxIter int) ([]*IterationResult, error) {
	var out []*IterationResult
	idle := 0
	for i := 0; i < maxIter; i++ {
		res, err := e.RunIteration()
		if err != nil {
			return out, err
		}
		out = append(out, res)
		if stop != nil && stop(res) {
			break
		}
		if res.NewSamples == 0 {
			idle++
			if idle >= 3 {
				break // exploration space exhausted
			}
		} else {
			idle = 0
		}
	}
	return out, nil
}
