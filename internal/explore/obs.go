package explore

import (
	"math"
	"time"

	"github.com/explore-by-example/aide/internal/engine"
	"github.com/explore-by-example/aide/internal/geom"
	"github.com/explore-by-example/aide/internal/obs"
)

// Process-wide steering-loop metrics, resolved once.
var (
	obsIterations       = obs.GetCounter("explore.iterations")
	obsSamplesProposed  = obs.GetCounter("explore.samples_proposed")
	obsLabelsReceived   = obs.GetCounter("explore.labels_received")
	obsLabelsRelevant   = obs.GetCounter("explore.labels_relevant")
	obsAreasPredicted   = obs.GetGauge("explore.areas_predicted")
	obsIterationSeconds = obs.GetHistogram("explore.iteration_seconds")
	obsTrainSeconds     = obs.GetHistogram("explore.train_seconds")

	// aide_iteration_seconds{phase} attributes iteration wall time to the
	// steering phases plus classifier training; children are resolved once
	// so per-iteration cost is one histogram observe per active phase.
	obsIterPhaseVec = obs.GetHistogramVec("aide_iteration_seconds", "phase")
	obsPhaseSeconds = [numPhases]*obs.Histogram{
		PhaseDiscovery: obsIterPhaseVec.With(PhaseDiscovery.String()),
		PhaseMisclass:  obsIterPhaseVec.With(PhaseMisclass.String()),
		PhaseBoundary:  obsIterPhaseVec.With(PhaseBoundary.String()),
	}
	obsTrainPhaseSeconds = obsIterPhaseVec.With("train")
)

// SetRecorder attaches a trace recorder to the session: every subsequent
// RunIteration publishes one root span ("iteration") with child spans for
// the steering phases, CART retraining, and each sample-extraction query.
// A nil recorder (the default) disables tracing at zero cost.
func (s *Session) SetRecorder(r *obs.Recorder) { s.rec = r }

// Recorder returns the attached trace recorder, or nil.
func (s *Session) Recorder() *obs.Recorder { return s.rec }

// SetFlightRecorder attaches a flight recorder: every subsequent
// RunIteration records one wide event (phase timings, sample and budget
// state, cache deltas, convergence signals). Recording is observational
// only — a session with a recorder stays bit-identical to one without.
// A nil recorder (the default) disables flight recording.
func (s *Session) SetFlightRecorder(f *obs.FlightRecorder) { s.flight = f }

// FlightRecorder returns the attached flight recorder, or nil.
func (s *Session) FlightRecorder() *obs.FlightRecorder { return s.flight }

// SetSpanAnnotator registers a callback invoked with each iteration's
// root span right after it is created, before any phase runs. The
// service uses it to stamp the request ids that drove the session since
// the previous iteration, correlating /v1/sessions/{id}/trace with
// request logs. The callback runs on the session goroutine.
func (s *Session) SetSpanAnnotator(fn func(*obs.Span)) { s.annotate = fn }

// recordFlight emits one wide event for a completed iteration to the
// attached flight recorder. It runs once per iteration on the session
// goroutine, after the classifier is published — never on the
// per-sample hot path — and reads session state without mutating it, so
// flight recording cannot perturb steering.
func (s *Session) recordFlight(res *IterationResult, budget int, cacheBefore engine.CacheStats, queriesBefore [3]int) {
	if s.flight == nil {
		return
	}
	ev := obs.FlightEvent{
		Iteration:      res.Iteration,
		Time:           time.Now(),
		DurationMS:     float64(res.Duration) / float64(time.Millisecond),
		NewSamples:     res.NewSamples,
		NewRelevant:    res.NewRelevant,
		TotalLabeled:   res.TotalLabeled,
		MaxLabeledRows: s.opts.Budget.MaxLabeledRows,
		Conflicts:      res.Conflicts,
		Degradations:   res.Degradations,
		RelevantAreas:  res.RelevantAreas,
	}
	if budget < math.MaxInt32 {
		// MaxInt32 is the internal stand-in for "unlimited"; report 0.
		ev.SamplesRequested = budget
	}
	for p, d := range res.PhaseDurations {
		if d > 0 {
			if ev.PhaseMS == nil {
				ev.PhaseMS = make(map[string]float64, numPhases+1)
			}
			ev.PhaseMS[Phase(p).String()] = float64(d) / float64(time.Millisecond)
		}
	}
	if res.TrainDuration > 0 {
		if ev.PhaseMS == nil {
			ev.PhaseMS = make(map[string]float64, 1)
		}
		ev.PhaseMS["train"] = float64(res.TrainDuration) / float64(time.Millisecond)
	}
	for p, n := range res.PhaseSamples {
		if n > 0 {
			if ev.PhaseSamples == nil {
				ev.PhaseSamples = make(map[string]int, numPhases)
			}
			ev.PhaseSamples[Phase(p).String()] = n
		}
	}
	for p := range s.stats.PhaseQueries {
		if d := s.stats.PhaseQueries[p] - queriesBefore[p]; d > 0 {
			if ev.PhaseQueries == nil {
				ev.PhaseQueries = make(map[string]int, numPhases)
			}
			ev.PhaseQueries[Phase(p).String()] = d
		}
	}
	if c := s.view.Cache(); c != nil {
		// Deltas over the view's cache; a cache shared across sessions
		// attributes concurrent traffic to whichever iteration scrapes it.
		now := c.Stats()
		ev.CacheHits = now.Hits - cacheBefore.Hits
		ev.CacheMisses = now.Misses - cacheBefore.Misses
	}
	if s.tree != nil {
		ev.TreeNodes = s.tree.NumNodes()
	}
	if len(s.areas) > 0 {
		ev.Predicate = s.FinalQuery().SQL()
	}
	s.flight.Record(ev)
}

// sampleOneNearCenter wraps View.SampleOneNearCenter with a per-query
// trace span under the current phase span. Discovery calls this for its
// per-cell (or per-cluster) retrieval queries.
func (s *Session) sampleOneNearCenter(center geom.Point, gamma float64) int {
	qs := s.phaseSpan.Child("engine.sample_near")
	row := s.view.SampleOneNearCenter(center, gamma, s.rng)
	qs.SetAttr("gamma", gamma)
	qs.SetAttr("hit", row >= 0)
	qs.End()
	return row
}

// drawOneNear is sampleOneNearCenter's batched twin: the retrieval query
// already ran inside an ExecuteBatch, so this only draws the row (the
// rng-consuming step) and emits the same per-query span the sequential
// helper did.
func (s *Session) drawOneNear(br *engine.BatchResults, idx int, gamma float64) int {
	qs := s.phaseSpan.Child("engine.sample_near")
	rows := br.Sample(idx, s.rng)
	qs.SetAttr("gamma", gamma)
	qs.SetAttr("hit", len(rows) > 0)
	qs.End()
	if len(rows) == 0 {
		return -1
	}
	return rows[0]
}
