package explore

import (
	"github.com/explore-by-example/aide/internal/geom"
	"github.com/explore-by-example/aide/internal/obs"
)

// Process-wide steering-loop metrics, resolved once.
var (
	obsIterations       = obs.GetCounter("explore.iterations")
	obsSamplesProposed  = obs.GetCounter("explore.samples_proposed")
	obsLabelsReceived   = obs.GetCounter("explore.labels_received")
	obsLabelsRelevant   = obs.GetCounter("explore.labels_relevant")
	obsAreasPredicted   = obs.GetGauge("explore.areas_predicted")
	obsIterationSeconds = obs.GetHistogram("explore.iteration_seconds")
	obsTrainSeconds     = obs.GetHistogram("explore.train_seconds")
)

// SetRecorder attaches a trace recorder to the session: every subsequent
// RunIteration publishes one root span ("iteration") with child spans for
// the steering phases, CART retraining, and each sample-extraction query.
// A nil recorder (the default) disables tracing at zero cost.
func (s *Session) SetRecorder(r *obs.Recorder) { s.rec = r }

// Recorder returns the attached trace recorder, or nil.
func (s *Session) Recorder() *obs.Recorder { return s.rec }

// sampleOneNearCenter wraps View.SampleOneNearCenter with a per-query
// trace span under the current phase span. Discovery calls this for its
// per-cell (or per-cluster) retrieval queries.
func (s *Session) sampleOneNearCenter(center geom.Point, gamma float64) int {
	qs := s.phaseSpan.Child("engine.sample_near")
	row := s.view.SampleOneNearCenter(center, gamma, s.rng)
	qs.SetAttr("gamma", gamma)
	qs.SetAttr("hit", row >= 0)
	qs.End()
	return row
}
