package explore

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"github.com/explore-by-example/aide/internal/obs"
)

// ErrBadBudget marks a Budget rejected at construction.
var ErrBadBudget = errors.New("explore: invalid budget")

// Budget caps the resources one session may consume. Every field is a
// soft ceiling with a deterministic degradation rather than a hard
// failure: when a cap trips, the session sheds the most expendable work
// (fewer clusters, smaller boundary budgets, shallower trees, grid
// instead of k-means discovery) and records what it gave up in the
// iteration's Degradations list, so callers can tell a converged answer
// from a budget-shaped one. The zero value means unlimited everywhere.
type Budget struct {
	// MaxLabeledRows caps the total labeling effort: once reached, no new
	// rows are shown to the oracle (re-labeling already-seen rows is still
	// allowed) and the session idles to a stop.
	MaxLabeledRows int
	// MaxIterationTime bounds one iteration's wall-clock time: when
	// exceeded mid-iteration, remaining sample extraction is abandoned and
	// the iteration proceeds straight to retraining. Degradations become
	// timing-dependent, so set it only when interactivity beats
	// reproducibility.
	MaxIterationTime time.Duration
	// MaxSamplesPerIteration caps new labels per iteration, on top of
	// Options.SamplesPerIteration (the smaller wins).
	MaxSamplesPerIteration int
	// MaxTreeNodes caps the CART classifier's node count (mapped to
	// cart.Params.MaxNodes).
	MaxTreeNodes int
	// MaxMemBytes bounds the session's large auxiliary allocations.
	// Cluster-based discovery falls back to the grid strategy when its
	// estimated footprint would exceed the cap.
	MaxMemBytes int64
}

// validate rejects negative caps (zero = unlimited).
func (b *Budget) validate() error {
	if b.MaxLabeledRows < 0 {
		return fmt.Errorf("%w: MaxLabeledRows = %d", ErrBadBudget, b.MaxLabeledRows)
	}
	if b.MaxIterationTime < 0 {
		return fmt.Errorf("%w: MaxIterationTime = %v", ErrBadBudget, b.MaxIterationTime)
	}
	if b.MaxSamplesPerIteration < 0 {
		return fmt.Errorf("%w: MaxSamplesPerIteration = %d", ErrBadBudget, b.MaxSamplesPerIteration)
	}
	if b.MaxTreeNodes < 0 {
		return fmt.Errorf("%w: MaxTreeNodes = %d", ErrBadBudget, b.MaxTreeNodes)
	}
	if b.MaxMemBytes < 0 {
		return fmt.Errorf("%w: MaxMemBytes = %d", ErrBadBudget, b.MaxMemBytes)
	}
	return nil
}

// Degradation kinds recorded in IterationResult.Degradations. Each names
// the subsystem that shed work and what it shed.
const (
	// DegradeDiscoveryGridFallback: cluster-based discovery was replaced
	// by the grid strategy because fitting the k-means hierarchy would
	// exceed Budget.MaxMemBytes.
	DegradeDiscoveryGridFallback = "discovery:grid_fallback"
	// DegradeMisclassClusterCap: misclassified exploitation grouped false
	// negatives into fewer clusters than it wanted.
	DegradeMisclassClusterCap = "misclass:cluster_cap"
	// DegradeBoundaryFaceShrink: boundary exploitation shrank its
	// per-face sample budget.
	DegradeBoundaryFaceShrink = "boundary:face_shrink"
	// DegradeCartNodeCap: classifier training stopped splitting at
	// Budget.MaxTreeNodes.
	DegradeCartNodeCap = "cart:node_cap"
	// DegradeMaxLabeledRows: the session refused new samples because the
	// total labeling budget is spent.
	DegradeMaxLabeledRows = "labels:max_labeled_rows"
	// DegradeIterTimeCap: sample extraction was abandoned mid-iteration
	// because Budget.MaxIterationTime elapsed.
	DegradeIterTimeCap = "iteration:time_cap"
	// DegradeIterSamplesCap: Budget.MaxSamplesPerIteration trimmed the
	// iteration's sample budget below what the phases wanted.
	DegradeIterSamplesCap = "iteration:samples_cap"

	// DegradeShardPartialPrefix prefixes engine shard degradations of the
	// form "shard_partial:n/N" (engine.ShardPartialDegradation): n of N
	// shards answered, the rest were quarantined or failed past their
	// retry budget. The ratio varies per event, so the trip counter
	// collapses it to the stable prefix.
	DegradeShardPartialPrefix = "shard_partial"
)

// Process-wide robustness metrics. Budget trips get one counter per
// degradation kind, resolved lazily (':' is not valid in a metric name).
var (
	obsLabelConflicts = obs.GetCounter("aide_label_conflicts_total")
	obsDegradations   = obs.GetCounter("aide_degradations_total")
)

func budgetTripCounter(kind string) *obs.Counter {
	if strings.HasPrefix(kind, DegradeShardPartialPrefix+":") {
		// "shard_partial:3/4" and "shard_partial:1/4" are one failure
		// mode; keep the metric name stable (and '/'-free).
		kind = DegradeShardPartialPrefix
	}
	return obs.GetCounter("aide_budget_trips_total." + strings.ReplaceAll(kind, ":", "_"))
}

// degrade records one degradation on the iteration result (deduplicated)
// and bumps the process-wide counters on first occurrence per iteration.
func (s *Session) degrade(res *IterationResult, kind string) {
	for _, d := range res.Degradations {
		if d == kind {
			return
		}
	}
	res.Degradations = append(res.Degradations, kind)
	obsDegradations.Inc()
	budgetTripCounter(kind).Inc()
}

// iterTimeUp reports whether the active iteration has exhausted
// Budget.MaxIterationTime.
func (s *Session) iterTimeUp() bool {
	return s.opts.Budget.MaxIterationTime > 0 &&
		time.Since(s.iterStart) >= s.opts.Budget.MaxIterationTime
}

// stepHalted reports whether a sampling loop must stop mid-phase: the
// iteration was cancelled, a strict-policy label conflict tripped, or
// the iteration time budget ran out (recorded as a degradation).
func (s *Session) stepHalted(res *IterationResult) bool {
	if s.cancelled() || s.conflictErr != nil {
		return true
	}
	if s.iterTimeUp() {
		s.degrade(res, DegradeIterTimeCap)
		return true
	}
	return false
}
