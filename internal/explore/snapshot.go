package explore

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"

	"github.com/explore-by-example/aide/internal/cart"
	"github.com/explore-by-example/aide/internal/engine"
	"github.com/explore-by-example/aide/internal/geom"
	"github.com/explore-by-example/aide/internal/grid"
)

// Session persistence. Real exploration sessions are human-paced — a
// systematic review can span days — so a session must survive process
// restarts. Save serializes the labeled set, options, phase state and
// discovery frontier; Resume reconstructs a session over the same view.
//
// The restored session continues from the identical exploration state
// (same frontier, same labeled set, same predicted areas after its first
// retrain). Random choices after the restore draw from a reseeded
// generator, so a resumed session is deterministic given the snapshot but
// not bit-identical to the uninterrupted run.

// snapshotMagic guards the stream format.
const snapshotMagic = "AIDEsess1"

// sessionSnapshot is the gob wire format. Exported fields for gob only.
type sessionSnapshot struct {
	Options   Options
	Rows      []int
	Labels    []bool
	Iter      int
	Hits      int
	LastSlabs []geom.Rect
	PrevAreas []geom.Rect
	Stats     SessionStats
	Discovery discoverySnapshot
	TableName string
	TableRows int
	Attrs     []string

	// Conflict-ledger vote tallies per row and session-permanent
	// degradations. Absent (nil) in snapshots from older versions; Resume
	// then rebuilds a single-vote ledger from Labels.
	LedgerPos map[int]int
	LedgerNeg map[int]int
	PermDegr  []string
}

// discoverySnapshot captures the strategy state.
type discoverySnapshot struct {
	Kind string // "grid", "cluster", "hybrid"

	// Grid state.
	GridFrontier []grid.Cell
	GridNext     []grid.Cell
	GridMaxLevel int
	GridCurLevel int

	// Cluster state: full levels plus frontier/next as (level, index)
	// references.
	ClusterLevels  [][]clusterNodeSnapshot
	ClusterFront   [][2]int
	ClusterNext    [][2]int
	HybridSwitched bool
}

type clusterNodeSnapshot struct {
	Center   geom.Point
	Radius   float64
	Children []int
	Level    int
}

// Save writes the session state to w.
func (s *Session) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(snapshotMagic); err != nil {
		return err
	}
	snap := sessionSnapshot{
		Options:   s.opts,
		Rows:      s.rows,
		Labels:    s.labels,
		Iter:      s.iter,
		Hits:      s.discoveryHits,
		LastSlabs: s.lastSlabs,
		PrevAreas: s.prevAreas,
		Stats:     s.stats,
		TableName: s.view.Table().Name(),
		TableRows: s.view.NumRows(),
		Attrs:     s.view.Attrs(),
		LedgerPos: make(map[int]int, len(s.ledger.votes)),
		LedgerNeg: make(map[int]int, len(s.ledger.votes)),
		PermDegr:  s.permDegr,
	}
	for row, v := range s.ledger.votes {
		snap.LedgerPos[row] = v.pos
		snap.LedgerNeg[row] = v.neg
	}
	var err error
	snap.Discovery, err = snapshotDiscovery(s.disc)
	if err != nil {
		return err
	}
	if err := gob.NewEncoder(bw).Encode(snap); err != nil {
		return fmt.Errorf("explore: encoding session: %w", err)
	}
	return bw.Flush()
}

func snapshotDiscovery(d discoverer) (discoverySnapshot, error) {
	switch dd := d.(type) {
	case *gridDiscovery:
		return discoverySnapshot{
			Kind:         "grid",
			GridFrontier: dd.frontier,
			GridNext:     dd.next,
			GridMaxLevel: dd.maxLevel,
			GridCurLevel: dd.curLevel,
		}, nil
	case *clusterDiscovery:
		snap := discoverySnapshot{Kind: "cluster"}
		snap.ClusterLevels, snap.ClusterFront, snap.ClusterNext = snapshotCluster(dd)
		return snap, nil
	case *hybridDiscovery:
		snap := discoverySnapshot{Kind: "hybrid", HybridSwitched: dd.switched}
		snap.ClusterLevels, snap.ClusterFront, snap.ClusterNext = snapshotCluster(dd.cluster)
		if dd.switched && dd.grid != nil {
			snap.GridFrontier = dd.grid.frontier
			snap.GridNext = dd.grid.next
			snap.GridMaxLevel = dd.grid.maxLevel
			snap.GridCurLevel = dd.grid.curLevel
		}
		return snap, nil
	default:
		return discoverySnapshot{}, fmt.Errorf("explore: cannot snapshot discovery %T", d)
	}
}

func snapshotCluster(cd *clusterDiscovery) ([][]clusterNodeSnapshot, [][2]int, [][2]int) {
	levels := make([][]clusterNodeSnapshot, len(cd.levels))
	index := map[*clusterNode][2]int{}
	for l := range cd.levels {
		levels[l] = make([]clusterNodeSnapshot, len(cd.levels[l]))
		for i := range cd.levels[l] {
			n := &cd.levels[l][i]
			index[n] = [2]int{l, i}
			levels[l][i] = clusterNodeSnapshot{
				Center:   n.center,
				Radius:   n.radius,
				Children: n.children,
				Level:    n.level,
			}
		}
	}
	refs := func(nodes []*clusterNode) [][2]int {
		out := make([][2]int, len(nodes))
		for i, n := range nodes {
			out[i] = index[n]
		}
		return out
	}
	return levels, refs(cd.frontier), refs(cd.next)
}

// Resume reconstructs a session from a snapshot over the given view and
// oracle. The view must match the one the session was saved from (same
// table name, row count and exploration attributes). Labels recorded in
// the snapshot are NOT re-requested from the oracle.
func Resume(r io.Reader, view *engine.View, oracle Oracle) (*Session, error) {
	if view == nil || oracle == nil {
		return nil, fmt.Errorf("explore: nil view or oracle")
	}
	br := bufio.NewReader(r)
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("explore: reading snapshot magic: %w", err)
	}
	if string(magic) != snapshotMagic {
		return nil, fmt.Errorf("explore: not a session snapshot (magic %q)", magic)
	}
	var snap sessionSnapshot
	if err := gob.NewDecoder(br).Decode(&snap); err != nil {
		return nil, fmt.Errorf("explore: decoding session: %w", err)
	}
	if snap.TableName != view.Table().Name() || snap.TableRows != view.NumRows() {
		return nil, fmt.Errorf("explore: snapshot is for table %q (%d rows), view is %q (%d rows)",
			snap.TableName, snap.TableRows, view.Table().Name(), view.NumRows())
	}
	attrs := view.Attrs()
	if len(attrs) != len(snap.Attrs) {
		return nil, fmt.Errorf("explore: snapshot has %d attrs, view has %d", len(snap.Attrs), len(attrs))
	}
	for i := range attrs {
		if attrs[i] != snap.Attrs[i] {
			return nil, fmt.Errorf("explore: snapshot attr %q != view attr %q", snap.Attrs[i], attrs[i])
		}
	}
	if len(snap.Rows) != len(snap.Labels) {
		return nil, fmt.Errorf("explore: corrupt snapshot: %d rows vs %d labels", len(snap.Rows), len(snap.Labels))
	}

	if snap.Options.Workers != 0 {
		view = view.WithWorkers(snap.Options.Workers)
	}
	s := &Session{
		view:   view,
		oracle: oracle,
		opts:   snap.Options,
		// Reseed deterministically from the snapshot; see the package
		// comment above about determinism across restores.
		rng:           rand.New(rand.NewSource(snap.Options.Seed*31 + int64(snap.Iter) + 1)),
		labelOf:       make(map[int]bool, len(snap.Rows)),
		idxOf:         make(map[int]int, len(snap.Rows)),
		ledger:        newLabelLedger(),
		permDegr:      snap.PermDegr,
		iter:          snap.Iter,
		discoveryHits: snap.Hits,
		lastSlabs:     snap.LastSlabs,
		prevAreas:     snap.PrevAreas,
		stats:         snap.Stats,
	}
	if snap.Options.RangeHint != nil {
		s.bounds = snap.Options.RangeHint.Clone()
	} else {
		s.bounds = geom.NewRect(view.Dims())
	}
	for i, row := range snap.Rows {
		if row < 0 || row >= view.NumRows() {
			return nil, fmt.Errorf("explore: corrupt snapshot: row %d out of range", row)
		}
		s.idxOf[row] = len(s.rows)
		s.rows = append(s.rows, row)
		s.labels = append(s.labels, snap.Labels[i])
		s.points = append(s.points, view.NormPoint(row))
		s.labelOf[row] = snap.Labels[i]
		if snap.Labels[i] {
			s.nPos++
		}
		// Restore the conflict ledger's vote tallies; a pre-ledger
		// snapshot has no tallies, so each label seeds one unanimous vote.
		if pos, neg := snap.LedgerPos[row], snap.LedgerNeg[row]; pos > 0 || neg > 0 {
			s.ledger.seed(row, pos, neg)
		} else if snap.Labels[i] {
			s.ledger.seed(row, 1, 0)
		} else {
			s.ledger.seed(row, 0, 1)
		}
	}
	// The event/flip counters live in the persisted stats; carry them back
	// into the ledger so post-resume conflict accounting keeps counting.
	s.ledger.events = snap.Stats.Conflicts.ConflictEvents
	s.ledger.flips = snap.Stats.Conflicts.LabelFlips
	var err error
	s.disc, err = restoreDiscovery(s, snap.Discovery)
	if err != nil {
		return nil, err
	}
	// Rebuild the classifier so areas/prediction are immediately
	// available (they are derived state).
	if s.nPos > 0 && s.nPos < len(s.rows) {
		tree, err := cart.TrainWeighted(s.points, s.labels, s.ledger.weights(s.rows), s.opts.Tree)
		if err != nil {
			return nil, fmt.Errorf("explore: retraining after resume: %w", err)
		}
		s.tree = tree
		s.areas = tree.RelevantAreas(s.bounds)
	}
	return s, nil
}

func restoreDiscovery(s *Session, snap discoverySnapshot) (discoverer, error) {
	switch snap.Kind {
	case "grid":
		g, err := grid.New(s.view.Dims(), s.opts.Beta0)
		if err != nil {
			return nil, err
		}
		gd := &gridDiscovery{
			g:        g,
			frontier: snap.GridFrontier,
			next:     snap.GridNext,
			maxLevel: snap.GridMaxLevel,
			curLevel: snap.GridCurLevel,
		}
		gd.avgCount = float64(s.view.NumRows()) / float64(g.NumCells(gd.curLevel))
		return gd, nil
	case "cluster":
		return restoreCluster(snap)
	case "hybrid":
		cd, err := restoreCluster(snap)
		if err != nil {
			return nil, err
		}
		hd := &hybridDiscovery{cluster: cd, session: s, switched: snap.HybridSwitched}
		if snap.HybridSwitched {
			g, err := grid.New(s.view.Dims(), s.opts.Beta0)
			if err != nil {
				return nil, err
			}
			hd.grid = &gridDiscovery{
				g:        g,
				frontier: snap.GridFrontier,
				next:     snap.GridNext,
				maxLevel: snap.GridMaxLevel,
				curLevel: snap.GridCurLevel,
			}
			hd.grid.avgCount = float64(s.view.NumRows()) / float64(g.NumCells(hd.grid.curLevel))
		}
		return hd, nil
	default:
		return nil, fmt.Errorf("explore: unknown discovery kind %q in snapshot", snap.Kind)
	}
}

func restoreCluster(snap discoverySnapshot) (*clusterDiscovery, error) {
	cd := &clusterDiscovery{}
	cd.levels = make([][]clusterNode, len(snap.ClusterLevels))
	for l := range snap.ClusterLevels {
		cd.levels[l] = make([]clusterNode, len(snap.ClusterLevels[l]))
		for i, n := range snap.ClusterLevels[l] {
			cd.levels[l][i] = clusterNode{
				center:   n.Center,
				radius:   n.Radius,
				children: n.Children,
				level:    n.Level,
			}
		}
	}
	deref := func(refs [][2]int) ([]*clusterNode, error) {
		out := make([]*clusterNode, len(refs))
		for i, ref := range refs {
			l, idx := ref[0], ref[1]
			if l < 0 || l >= len(cd.levels) || idx < 0 || idx >= len(cd.levels[l]) {
				return nil, fmt.Errorf("explore: corrupt snapshot: cluster ref %v", ref)
			}
			out[i] = &cd.levels[l][idx]
		}
		return out, nil
	}
	var err error
	if cd.frontier, err = deref(snap.ClusterFront); err != nil {
		return nil, err
	}
	if cd.next, err = deref(snap.ClusterNext); err != nil {
		return nil, err
	}
	return cd, nil
}
