package explore

import (
	"strings"
	"testing"

	"github.com/explore-by-example/aide/internal/geom"
)

func TestDiagnostics(t *testing.T) {
	v := testView(t, 20000, 401)
	target := geom.R(30, 45, 50, 65)
	s, err := NewSession(v, rectOracle(target), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunUntil(s, func(r *IterationResult) bool { return r.TotalLabeled >= 300 }, 30); err != nil {
		t.Fatal(err)
	}
	infos := s.Diagnostics()
	if len(infos) == 0 {
		t.Skip("no areas formed with this seed")
	}
	if len(infos) != len(s.RelevantAreas()) {
		t.Fatalf("diagnostics %d != areas %d", len(infos), len(s.RelevantAreas()))
	}
	var totalSupport int
	for i, info := range infos {
		if info.Support < 0 || info.Violations < 0 {
			t.Errorf("area %d negative counts: %+v", i, info)
		}
		if info.Selectivity < 0 || info.Selectivity > 1 {
			t.Errorf("area %d selectivity %v", i, info.Selectivity)
		}
		if info.RawArea.Dims() != info.Area.Dims() {
			t.Errorf("area %d raw/norm dims differ", i)
		}
		totalSupport += info.Support
	}
	// The predicted areas must collectively hold a decent share of the
	// relevant labels (the tree built them around those labels).
	if totalSupport < s.Stats().TotalRelevant/2 {
		t.Errorf("areas hold %d of %d relevant labels", totalSupport, s.Stats().TotalRelevant)
	}
	// Support should dominate violations: CART optimizes homogeneity.
	var totalViolations int
	for _, info := range infos {
		totalViolations += info.Violations
	}
	if totalViolations > totalSupport {
		t.Errorf("violations %d exceed support %d", totalViolations, totalSupport)
	}
}

func TestDiagnosticsString(t *testing.T) {
	v := testView(t, 20000, 402)
	s, err := NewSession(v, rectOracle(geom.R(30, 45, 50, 65)), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Before any areas exist.
	if got := s.DiagnosticsString(); !strings.Contains(got, "no predicted areas") {
		t.Errorf("empty diagnostics = %q", got)
	}
	if _, err := RunUntil(s, func(r *IterationResult) bool { return r.TotalLabeled >= 300 }, 30); err != nil {
		t.Fatal(err)
	}
	if len(s.RelevantAreas()) == 0 {
		t.Skip("no areas formed")
	}
	got := s.DiagnosticsString()
	for _, want := range []string{"area 1:", "a0 in [", "support"} {
		if !strings.Contains(got, want) {
			t.Errorf("diagnostics missing %q:\n%s", want, got)
		}
	}
}
