package explore

import (
	"github.com/explore-by-example/aide/internal/geom"
	"github.com/explore-by-example/aide/internal/kmeans"
)

// planMisclass builds the sampling requests of the misclassified
// exploitation phase (Section 4). False negatives — objects the user
// labeled relevant but the current tree classifies irrelevant — mark
// relevant areas the model has not yet carved out; sampling around them
// feeds the classifier enough relevant tuples to predict the area.
//
// With MisclassClustered, false negatives are first grouped with k-means
// into k clusters, where k is the number of relevant objects found by the
// discovery phase (the paper's indicator for how many relevant areas were
// already "hit"); one sample-extraction query then serves each cluster.
// Clustering only runs when it reduces the number of extraction queries
// (k < #false negatives), exactly as Section 4.2 specifies.
func (s *Session) planMisclass(res *IterationResult) []sampleRequest {
	fns := s.falseNegatives()
	if len(fns) == 0 {
		return nil
	}
	k := s.discoveryHits
	if cap := s.opts.Budget.MaxSamplesPerIteration; cap > 0 {
		// Budgeted sessions bound the cluster count so the plan — and its
		// per-cluster extraction queries — stays proportionate to the
		// sample cap (each cluster asks for F samples per member).
		maxK := cap / s.opts.F
		if maxK < 1 {
			maxK = 1
		}
		if k > maxK {
			k = maxK
			s.degrade(res, DegradeMisclassClusterCap)
		}
	}
	if s.opts.Misclass == MisclassClustered && k > 0 && k < len(fns) {
		if reqs := s.planMisclassClustered(fns, k); reqs != nil {
			return reqs
		}
	}
	// Per-object sampling: f random samples within normalized distance y
	// on each dimension from every false negative (Figure 4).
	reqs := make([]sampleRequest, 0, len(fns))
	for _, fn := range fns {
		reqs = append(reqs, sampleRequest{
			rect:  geom.RectAround(fn, s.opts.Y, s.bounds),
			n:     s.opts.F,
			phase: PhaseMisclass,
		})
	}
	return reqs
}

// planMisclassClustered issues one request per false-negative cluster:
// f x c samples within a distance y of the farthest cluster member in
// each dimension, where c is the cluster size (Figure 5).
func (s *Session) planMisclassClustered(fns []geom.Point, k int) []sampleRequest {
	res, err := kmeans.ClusterCtx(s.iterCtx(), fns, kmeans.Params{K: k, Workers: s.opts.Workers}, s.rng)
	if err != nil {
		return nil
	}
	reqs := make([]sampleRequest, 0, len(res.Centroids))
	for c := range res.Centroids {
		if res.Sizes[c] == 0 {
			continue
		}
		rect, ok := res.BoundingRect(fns, c, s.opts.Y, s.bounds)
		if !ok {
			continue
		}
		reqs = append(reqs, sampleRequest{
			rect:  rect,
			n:     s.opts.F * res.Sizes[c],
			phase: PhaseMisclass,
		})
	}
	return reqs
}

// falseNegatives returns the normalized points of labeled-relevant
// samples the current tree classifies as irrelevant. (False positives
// are rare under CART's homogeneity-driven splits and are handled by
// boundary exploitation instead; see Section 4.1.)
func (s *Session) falseNegatives() []geom.Point {
	var out []geom.Point
	for i := range s.rows {
		if s.labels[i] && !s.tree.Predict(s.points[i]) {
			out = append(out, s.points[i])
		}
	}
	return out
}

// falsePositives returns labeled-irrelevant samples the tree classifies
// relevant (exported within the package for diagnostics and tests).
func (s *Session) falsePositives() []geom.Point {
	var out []geom.Point
	for i := range s.rows {
		if !s.labels[i] && s.tree.Predict(s.points[i]) {
			out = append(out, s.points[i])
		}
	}
	return out
}
