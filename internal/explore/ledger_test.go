package explore

import (
	"errors"
	"testing"

	"github.com/explore-by-example/aide/internal/engine"
	"github.com/explore-by-example/aide/internal/geom"
)

func TestLedgerPolicies(t *testing.T) {
	cases := []struct {
		name   string
		policy ConflictPolicy
		// events: label sequence for one row; want: resolved label after
		// each event (ignored when wantErrAt >= 0 cuts the run short).
		events    []bool
		want      []bool
		wantErrAt int // index of the event that must error, -1 for none
	}{
		{"last-wins flip", ConflictLastWins, []bool{true, false, true}, []bool{true, false, true}, -1},
		{"majority holds", ConflictMajority, []bool{true, true, false}, []bool{true, true, true}, -1},
		{"majority flips", ConflictMajority, []bool{true, false, false}, []bool{true, true, false}, -1},
		{"majority tie keeps current", ConflictMajority, []bool{true, false}, []bool{true, true}, -1},
		{"strict errors on contradiction", ConflictStrict, []bool{true, true, false}, []bool{true, true}, 2},
		{"strict tolerates agreement", ConflictStrict, []bool{false, false, false}, []bool{false, false, false}, -1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			l := newLabelLedger()
			cur := false
			for i, lab := range tc.events {
				resolved, changed, err := l.record(7, lab, i, cur, tc.policy)
				if tc.wantErrAt == i {
					if err == nil {
						t.Fatalf("event %d: no error under strict policy", i)
					}
					var ce *ConflictError
					if !errors.As(err, &ce) || ce.Row != 7 {
						t.Fatalf("event %d: error = %v, want ConflictError for row 7", i, err)
					}
					return
				}
				if err != nil {
					t.Fatalf("event %d: unexpected error %v", i, err)
				}
				if resolved != tc.want[i] {
					t.Errorf("event %d: resolved = %v, want %v", i, resolved, tc.want[i])
				}
				if changed != (i > 0 && resolved != cur) {
					t.Errorf("event %d: changed = %v inconsistent with resolution", i, changed)
				}
				cur = resolved
			}
		})
	}
}

func TestLedgerWeights(t *testing.T) {
	l := newLabelLedger()
	l.record(1, true, 0, true, ConflictLastWins) // unanimous
	l.record(2, true, 0, true, ConflictLastWins) // will conflict 2:1
	l.record(2, true, 1, true, ConflictLastWins)
	l.record(2, false, 2, true, ConflictLastWins)

	if w := l.weights([]int{1}); w != nil {
		t.Errorf("conflict-free rows must yield nil weights, got %v", w)
	}
	w := l.weights([]int{1, 2})
	if w == nil {
		t.Fatal("conflicted row yielded nil weights")
	}
	if w[0] != 1 {
		t.Errorf("unanimous row weight = %v, want 1", w[0])
	}
	if want := 2.0 / 3.0; w[1] != want {
		t.Errorf("2:1 conflicted row weight = %v, want %v", w[1], want)
	}
	st := l.stats()
	if st.ConflictingRows != 1 || st.ConflictEvents != 1 || st.LabelFlips != 1 {
		t.Errorf("stats = %+v, want 1 row / 1 event / 1 flip", st)
	}
}

func TestParseConflictPolicy(t *testing.T) {
	for in, want := range map[string]ConflictPolicy{
		"":             ConflictLastWins,
		"last-wins":    ConflictLastWins,
		"last":         ConflictLastWins,
		"majority":     ConflictMajority,
		"strict":       ConflictStrict,
		"strict-error": ConflictStrict,
	} {
		got, err := ParseConflictPolicy(in)
		if err != nil || got != want {
			t.Errorf("ParseConflictPolicy(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseConflictPolicy("bogus"); err == nil {
		t.Error("unknown policy accepted")
	}
	for _, p := range []ConflictPolicy{ConflictLastWins, ConflictMajority, ConflictStrict} {
		back, err := ParseConflictPolicy(p.String())
		if err != nil || back != p {
			t.Errorf("round-trip of %v failed: %v, %v", p, back, err)
		}
	}
}

func TestLabelRowConflictResolution(t *testing.T) {
	v := testView(t, 100, 12)
	answers := []bool{true, false, false}
	i := 0
	oracle := OracleFunc(func(view *engine.View, row int) bool {
		a := answers[i%len(answers)]
		i++
		return a
	})
	opts := DefaultOptions()
	opts.ConflictPolicy = ConflictMajority
	s, err := NewSession(v, oracle, opts)
	if err != nil {
		t.Fatal(err)
	}
	res := &IterationResult{}
	s.labelRow(5, PhaseDiscovery, res) // true
	if got := s.labelOf[5]; !got {
		t.Fatal("first label not recorded")
	}
	s.labelRow(5, PhaseDiscovery, res) // false: 1-1 tie keeps true
	if got := s.labelOf[5]; !got {
		t.Error("majority tie flipped the label")
	}
	s.labelRow(5, PhaseDiscovery, res) // false: 1-2 flips to false
	if got := s.labelOf[5]; got {
		t.Error("majority did not flip the label at 1-2")
	}
	if s.labels[s.idxOf[5]] != s.labelOf[5] {
		t.Error("training-set label out of sync with labelOf")
	}
	if s.nPos != 0 {
		t.Errorf("nPos = %d after flip to irrelevant, want 0", s.nPos)
	}
	st := s.ledger.stats()
	if st.ConflictingRows != 1 || st.ConflictEvents != 2 {
		t.Errorf("stats = %+v, want 1 conflicting row and 2 events", st)
	}
}

func TestNoisyOracleDeterministic(t *testing.T) {
	base := rectOracle(geom.R(0, 50, 0, 50))
	v := testView(t, 200, 3)
	a := NewNoisyOracle(base, 0.3, 42)
	b := NewNoisyOracle(base, 0.3, 42)
	for row := 0; row < 200; row++ {
		if a.Label(v, row) != b.Label(v, row) {
			t.Fatalf("same-seed noisy oracles diverged at row %d", row)
		}
	}
	if a.Flips() == 0 {
		t.Error("rate 0.3 flipped nothing over 200 rows")
	}
	if a.Flips() != b.Flips() {
		t.Errorf("flip counts differ: %d vs %d", a.Flips(), b.Flips())
	}
	zero := NewNoisyOracle(base, 0, 42)
	for row := 0; row < 200; row++ {
		if zero.Label(v, row) != base.Label(v, row) {
			t.Fatalf("rate 0 altered an answer at row %d", row)
		}
	}
	if zero.Flips() != 0 {
		t.Errorf("rate 0 reported %d flips", zero.Flips())
	}
}
