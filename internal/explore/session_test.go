package explore

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/explore-by-example/aide/internal/dataset"
	"github.com/explore-by-example/aide/internal/engine"
	"github.com/explore-by-example/aide/internal/geom"
)

// testView builds a uniform 2-D view with n rows.
func testView(t testing.TB, n int, seed int64) *engine.View {
	t.Helper()
	tab := dataset.GenerateUniform(n, 2, seed)
	v, err := engine.NewView(tab, []string{"a0", "a1"})
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// rectOracle labels rows relevant when their normalized point falls in
// any target rect.
func rectOracle(targets ...geom.Rect) Oracle {
	return OracleFunc(func(v *engine.View, row int) bool {
		p := v.NormPoint(row)
		for _, r := range targets {
			if r.Contains(p) {
				return true
			}
		}
		return false
	})
}

func TestNewSessionValidation(t *testing.T) {
	v := testView(t, 100, 1)
	if _, err := NewSession(nil, rectOracle(), DefaultOptions()); err == nil {
		t.Error("nil view should error")
	}
	if _, err := NewSession(v, nil, DefaultOptions()); err == nil {
		t.Error("nil oracle should error")
	}
	opts := DefaultOptions()
	opts.RangeHint = geom.R(0, 10) // wrong dims
	if _, err := NewSession(v, rectOracle(), opts); err == nil {
		t.Error("RangeHint dim mismatch should error")
	}
	opts = DefaultOptions()
	opts.DistanceHint = -1
	if _, err := NewSession(v, rectOracle(), opts); err == nil {
		t.Error("negative DistanceHint should error")
	}
	opts = DefaultOptions()
	opts.SamplesPerIteration = -1
	if _, err := NewSession(v, rectOracle(), opts); err == nil {
		t.Error("negative SamplesPerIteration should error")
	}
}

func TestOptionsValidateFillsDefaults(t *testing.T) {
	var o Options
	if err := o.validate(2); err != nil {
		t.Fatal(err)
	}
	if o.Beta0 != 4 || o.F != 10 || o.AlphaMax != 10 || o.MaxIterations != 200 {
		t.Errorf("defaults not filled: %+v", o)
	}
}

func TestFirstIterationIsDiscoveryOnly(t *testing.T) {
	v := testView(t, 5000, 2)
	s, err := NewSession(v, rectOracle(geom.R(40, 60, 40, 60)), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.RunIteration()
	if err != nil {
		t.Fatal(err)
	}
	if res.Iteration != 0 {
		t.Errorf("iteration = %d", res.Iteration)
	}
	if res.PhaseSamples[PhaseMisclass] != 0 || res.PhaseSamples[PhaseBoundary] != 0 {
		t.Errorf("first iteration used non-discovery phases: %v", res.PhaseSamples)
	}
	if res.NewSamples == 0 || res.NewSamples > 20 {
		t.Errorf("NewSamples = %d, want 1..20", res.NewSamples)
	}
	if res.NewSamples != res.PhaseSamples[PhaseDiscovery] {
		t.Error("discovery should account for all first-iteration samples")
	}
}

func TestSessionConvergesOnEasyTarget(t *testing.T) {
	v := testView(t, 20000, 3)
	target := geom.R(30, 45, 50, 65) // 15-wide: bigger than Large, easy
	s, err := NewSession(v, rectOracle(target), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	results, err := RunUntil(s, func(r *IterationResult) bool {
		return r.TotalLabeled >= 600
	}, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("no iterations ran")
	}
	areas := s.RelevantAreas()
	if len(areas) == 0 {
		t.Fatal("no relevant areas predicted")
	}
	// The biggest predicted area should overlap the target substantially.
	bestOverlap := 0.0
	for _, a := range areas {
		if f := target.OverlapFraction(a); f > bestOverlap {
			bestOverlap = f
		}
	}
	if bestOverlap < 0.5 {
		t.Errorf("best overlap with target = %v, want > 0.5 (areas: %v)", bestOverlap, areas)
	}
}

func TestSessionUsesAllThreePhases(t *testing.T) {
	v := testView(t, 20000, 4)
	s, err := NewSession(v, rectOracle(geom.R(30, 45, 50, 65)), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunUntil(s, func(r *IterationResult) bool {
		return r.TotalLabeled >= 400
	}, 40); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	for p := PhaseDiscovery; p < numPhases; p++ {
		if st.PhaseSamples[p] == 0 {
			t.Errorf("phase %v contributed no samples: %v", p, st.PhaseSamples)
		}
	}
	if st.TotalLabeled != s.LabeledCount() {
		t.Error("stats TotalLabeled disagrees with LabeledCount")
	}
	if st.ExecTime <= 0 {
		t.Error("ExecTime not recorded")
	}
}

func TestSessionDeterministicForSeed(t *testing.T) {
	run := func() []geom.Rect {
		v := testView(t, 10000, 5)
		s, err := NewSession(v, rectOracle(geom.R(20, 35, 20, 35)), DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := RunUntil(s, nil, 15); err != nil {
			t.Fatal(err)
		}
		return s.RelevantAreas()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("different area counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Errorf("area %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestSessionRespectsBudget(t *testing.T) {
	v := testView(t, 20000, 6)
	opts := DefaultOptions()
	opts.SamplesPerIteration = 7
	s, err := NewSession(v, rectOracle(geom.R(30, 45, 50, 65)), opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		res, err := s.RunIteration()
		if err != nil {
			t.Fatal(err)
		}
		if res.NewSamples > 7 {
			t.Fatalf("iteration %d used %d samples, budget 7", i, res.NewSamples)
		}
	}
}

func TestPhaseDisableFlags(t *testing.T) {
	v := testView(t, 20000, 7)
	opts := DefaultOptions()
	opts.DisableMisclass = true
	opts.DisableBoundary = true
	s, err := NewSession(v, rectOracle(geom.R(30, 45, 50, 65)), opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunUntil(s, nil, 20); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.PhaseSamples[PhaseMisclass] != 0 || st.PhaseSamples[PhaseBoundary] != 0 {
		t.Errorf("disabled phases still sampled: %v", st.PhaseSamples)
	}
	if st.PhaseSamples[PhaseDiscovery] == 0 {
		t.Error("discovery should still run")
	}
}

func TestRangeHintRestrictsExploration(t *testing.T) {
	v := testView(t, 20000, 8)
	hint := geom.R(0, 50, 0, 50)
	opts := DefaultOptions()
	opts.RangeHint = hint
	var outside int
	oracle := OracleFunc(func(view *engine.View, row int) bool {
		p := view.NormPoint(row)
		if !hint.Contains(p) {
			outside++
		}
		return geom.R(20, 35, 20, 35).Contains(p)
	})
	s, err := NewSession(v, oracle, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunUntil(s, nil, 20); err != nil {
		t.Fatal(err)
	}
	// A small tolerance: boundary slabs at the hint edge may poke out by
	// the slab half-width.
	if frac := float64(outside) / float64(s.LabeledCount()); frac > 0.05 {
		t.Errorf("%.1f%% of samples outside the range hint", frac*100)
	}
}

func TestDistanceHintStartsDeeper(t *testing.T) {
	v := testView(t, 20000, 9)
	opts := DefaultOptions()
	opts.DistanceHint = 5 // relevant areas at least 5 wide -> level 3 (width 3.125)
	s, err := NewSession(v, rectOracle(geom.R(20, 26, 20, 26)), opts)
	if err != nil {
		t.Fatal(err)
	}
	gd, ok := s.disc.(*gridDiscovery)
	if !ok {
		t.Fatal("expected grid discovery")
	}
	if gd.curLevel != 3 {
		t.Errorf("start level = %d, want 3", gd.curLevel)
	}
	if len(gd.frontier) != 32*32 {
		t.Errorf("frontier = %d cells, want 1024", len(gd.frontier))
	}
}

func TestFinalQuerySQL(t *testing.T) {
	v := testView(t, 20000, 10)
	s, err := NewSession(v, rectOracle(geom.R(30, 45, 50, 65)), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunUntil(s, func(r *IterationResult) bool { return r.TotalLabeled >= 300 }, 30); err != nil {
		t.Fatal(err)
	}
	q := s.FinalQuery()
	if q.Table != "uniform" {
		t.Errorf("table = %q", q.Table)
	}
	sql := q.SQL()
	if !strings.Contains(sql, "SELECT * FROM uniform WHERE") {
		t.Errorf("SQL = %q", sql)
	}
	if !strings.Contains(sql, "a0 >=") {
		t.Errorf("SQL missing predicates: %q", sql)
	}
	// The query should execute against the view.
	rows, err := q.Execute(v)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Error("final query selects nothing")
	}
}

func TestTrimRequests(t *testing.T) {
	reqs := []sampleRequest{
		{n: 10, phase: PhaseMisclass},
		{n: 10, phase: PhaseBoundary},
	}
	got := trimRequests(reqs, 30)
	if len(got) != 2 || got[0].n != 10 || got[1].n != 10 {
		t.Errorf("under-budget requests were modified: %+v", got)
	}
	got = trimRequests(reqs, 10)
	total := 0
	for _, r := range got {
		total += r.n
	}
	if total != 10 {
		t.Errorf("trimmed total = %d, want 10", total)
	}
	// Order preserved: misclassified stays first.
	if len(got) > 0 && got[0].phase != PhaseMisclass {
		t.Error("trim reordered requests")
	}
	// Tiny budget keeps at least something.
	got = trimRequests(reqs, 1)
	total = 0
	for _, r := range got {
		total += r.n
	}
	if total != 1 {
		t.Errorf("trimmed to %d, want 1", total)
	}
}

func TestTrimRequestsZeroBudget(t *testing.T) {
	got := trimRequests([]sampleRequest{{n: 5}}, 0)
	for _, r := range got {
		if r.n > 0 {
			t.Errorf("zero budget produced requests: %+v", got)
		}
	}
}

func TestMatchArea(t *testing.T) {
	cur := geom.R(10, 20, 10, 20)
	prev := []geom.Rect{
		geom.R(50, 60, 50, 60),
		geom.R(12, 22, 10, 20), // strong overlap
	}
	m, ok := matchArea(cur, prev)
	if !ok || !m.Equal(prev[1]) {
		t.Errorf("matchArea = %v, %v", m, ok)
	}
	_, ok = matchArea(cur, []geom.Rect{geom.R(50, 60, 50, 60)})
	if ok {
		t.Error("non-overlapping areas should not match")
	}
	_, ok = matchArea(cur, nil)
	if ok {
		t.Error("empty prev should not match")
	}
}

func TestExplorerInterfacesAndStrings(t *testing.T) {
	if DiscoveryGrid.String() != "grid" || DiscoveryClustering.String() != "clustering" || DiscoveryHybrid.String() != "hybrid" {
		t.Error("DiscoveryStrategy.String wrong")
	}
	if DiscoveryStrategy(99).String() == "" {
		t.Error("unknown strategy should still render")
	}
	if MisclassClustered.String() != "clustered" || MisclassPerObject.String() != "per-object" {
		t.Error("MisclassStrategy.String wrong")
	}
	if PhaseDiscovery.String() != "discovery" || PhaseMisclass.String() != "misclassified" || PhaseBoundary.String() != "boundary" {
		t.Error("Phase.String wrong")
	}
	if Phase(9).String() != "unknown" {
		t.Error("unknown phase should render 'unknown'")
	}
}

func TestRunUntilStopsWhenIdle(t *testing.T) {
	// A tiny table exhausts quickly; RunUntil must terminate early.
	v := testView(t, 30, 11)
	opts := DefaultOptions()
	opts.MaxZoomLevels = 1
	s, err := NewSession(v, rectOracle(geom.R(0, 50, 0, 50)), opts)
	if err != nil {
		t.Fatal(err)
	}
	results, err := RunUntil(s, nil, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) >= 100 {
		t.Errorf("RunUntil did not stop on idle (%d iterations)", len(results))
	}
	if s.LabeledCount() > 30 {
		t.Error("labeled more rows than exist")
	}
}

func TestLabelRowDedup(t *testing.T) {
	v := testView(t, 100, 12)
	calls := 0
	oracle := OracleFunc(func(view *engine.View, row int) bool {
		calls++
		return false
	})
	s, err := NewSession(v, oracle, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res := &IterationResult{}
	s.labelRow(5, PhaseDiscovery, res)
	s.labelRow(5, PhaseDiscovery, res)
	// The second sighting re-consults the oracle (conflict detection) but
	// must not add a second training sample.
	if calls != 2 {
		t.Errorf("oracle called %d times for a twice-proposed row, want 2", calls)
	}
	if res.NewSamples != 1 {
		t.Errorf("NewSamples = %d, want 1", res.NewSamples)
	}
	if n := len(s.rows); n != 1 {
		t.Errorf("training set has %d rows, want 1", n)
	}
	if s.stats.Conflicts != (ConflictStats{}) && s.ledger.stats() != (ConflictStats{}) {
		t.Errorf("consistent re-label reported conflicts: %+v", s.ledger.stats())
	}
}

func TestFalseNegativesAndPositives(t *testing.T) {
	v := testView(t, 5000, 13)
	target := geom.R(40, 55, 40, 55)
	s, err := NewSession(v, rectOracle(target), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Run until a tree exists.
	for i := 0; i < 30 && s.tree == nil; i++ {
		if _, err := s.RunIteration(); err != nil {
			t.Fatal(err)
		}
	}
	if s.tree == nil {
		t.Skip("no tree formed (target never hit with this seed)")
	}
	fns := s.falseNegatives()
	fps := s.falsePositives()
	// All false negatives must be labeled relevant and predicted not.
	for _, p := range fns {
		if !s.tree.Predict(p) == false {
			t.Error("false negative predicted relevant")
		}
	}
	_ = fps // count varies; just exercise the path
}

func TestBaselineRandomConverges(t *testing.T) {
	v := testView(t, 10000, 14)
	target := geom.R(20, 60, 20, 60) // huge target: random sampling finds it fast
	r, err := NewRandom(v, rectOracle(target), 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunUntil(r, func(res *IterationResult) bool { return res.TotalLabeled >= 300 }, 30); err != nil {
		t.Fatal(err)
	}
	areas := r.RelevantAreas()
	if len(areas) == 0 {
		t.Fatal("random baseline predicted nothing")
	}
	best := 0.0
	for _, a := range areas {
		if f := target.OverlapFraction(a); f > best {
			best = f
		}
	}
	if best < 0.4 {
		t.Errorf("random baseline best overlap %v", best)
	}
	q := r.FinalQuery()
	if q.Table != "uniform" || len(q.Areas) == 0 {
		t.Error("random baseline FinalQuery malformed")
	}
}

func TestBaselineRandomGridSpreadsSamples(t *testing.T) {
	v := testView(t, 10000, 15)
	rg, err := NewRandomGrid(v, rectOracle(geom.R(20, 40, 20, 40)), 16, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rg.RunIteration()
	if err != nil {
		t.Fatal(err)
	}
	if res.NewSamples != 16 {
		t.Fatalf("NewSamples = %d, want 16", res.NewSamples)
	}
	// 16 samples from 16 level-0 cells: each sampled point should be in a
	// distinct cell.
	cells := map[string]bool{}
	for row := range rg.labelOf {
		p := v.NormPoint(row)
		cells[rg.g.CellOf(0, p).Key()] = true
	}
	if len(cells) < 12 {
		t.Errorf("samples concentrated in %d cells, want spread", len(cells))
	}
	if rg.LabeledCount() != 16 {
		t.Error("LabeledCount wrong")
	}
}

func TestBaselineValidation(t *testing.T) {
	v := testView(t, 100, 16)
	if _, err := NewRandom(nil, rectOracle(), 20, 1); err == nil {
		t.Error("nil view should error")
	}
	if _, err := NewRandomGrid(v, nil, 20, 4, 1); err == nil {
		t.Error("nil oracle should error")
	}
	// Zero perIter and beta default sanely.
	r, err := NewRandom(v, rectOracle(), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.perIter != 20 {
		t.Error("perIter default not applied")
	}
	rg, err := NewRandomGrid(v, rectOracle(), 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rg.perIter != 20 {
		t.Error("perIter default not applied")
	}
}

func TestOracleFuncAdapter(t *testing.T) {
	v := testView(t, 10, 17)
	f := OracleFunc(func(view *engine.View, row int) bool { return row%2 == 0 })
	if !f.Label(v, 2) || f.Label(v, 3) {
		t.Error("OracleFunc adapter broken")
	}
}

func TestRunUntilPropagatesErrors(t *testing.T) {
	e := &errExplorer{}
	if _, err := RunUntil(e, nil, 5); err == nil {
		t.Error("RunUntil should propagate explorer errors")
	}
}

type errExplorer struct{}

func (e *errExplorer) RunIteration() (*IterationResult, error) {
	return nil, errTest
}
func (e *errExplorer) RelevantAreas() []geom.Rect { return nil }
func (e *errExplorer) LabeledCount() int          { return 0 }
func (e *errExplorer) FinalQuery() engine.Query   { return engine.Query{} }

var errTest = &testError{}

type testError struct{}

func (*testError) Error() string { return "test error" }

// Sanity: the random source is used, not global rand.
func TestNoGlobalRandDependence(t *testing.T) {
	rand.Seed(1) //nolint:staticcheck // intentionally perturbing global state
	v := testView(t, 5000, 18)
	s1, _ := NewSession(v, rectOracle(geom.R(10, 30, 10, 30)), DefaultOptions())
	r1, err := s1.RunIteration()
	if err != nil {
		t.Fatal(err)
	}
	rand.Seed(99) //nolint:staticcheck
	s2, _ := NewSession(v, rectOracle(geom.R(10, 30, 10, 30)), DefaultOptions())
	r2, err := s2.RunIteration()
	if err != nil {
		t.Fatal(err)
	}
	if r1.NewSamples != r2.NewSamples || r1.NewRelevant != r2.NewRelevant {
		t.Error("session depends on global rand state")
	}
}
