package explore

import (
	"encoding/binary"
	"fmt"
	"math"
	"strings"

	"github.com/explore-by-example/aide/internal/engine"
	"github.com/explore-by-example/aide/internal/geom"
)

// AreaInfo describes one predicted relevant area with the evidence behind
// it, so a user can judge each disjunct of the final query before running
// it ("this area is backed by 14 relevant labels; that one by 2").
type AreaInfo struct {
	// Area is the predicted relevant area in normalized space.
	Area geom.Rect
	// RawArea is the same area in raw attribute space (the query's
	// coordinates).
	RawArea geom.Rect
	// Support is the number of labeled-relevant samples inside the area.
	Support int
	// Violations is the number of labeled-irrelevant samples inside the
	// area (residual false positives the boundary phase has not yet
	// carved away).
	Violations int
	// Selectivity is the fraction of all rows the area selects.
	Selectivity float64
}

// rectMemoKey is an exact (bit-level) map key for a rect: selectivity
// memoization must never conflate two areas that merely format alike.
func rectMemoKey(r geom.Rect) string {
	b := make([]byte, 0, 16*len(r))
	for _, iv := range r {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(iv.Lo))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(iv.Hi))
	}
	return string(b)
}

// Diagnostics returns per-area evidence for the current prediction,
// ordered as RelevantAreas. The view is immutable, so each area's row
// count is memoized on the session: repeated calls (a UI panel polling
// between iterations) cost no engine scans, and the counts a call does
// need run as one batch.
func (s *Session) Diagnostics() []AreaInfo {
	areas := s.RelevantAreas()
	if len(areas) == 0 {
		return nil
	}
	norm := s.view.Normalizer()
	total := float64(s.view.NumRows())
	keys := make([]string, len(areas))
	for i, a := range areas {
		keys[i] = rectMemoKey(a)
	}
	if total > 0 {
		if s.selCounts == nil {
			s.selCounts = make(map[string]int)
		}
		var missQ []engine.BatchQuery
		var missKeys []string
		seen := make(map[string]bool)
		for i, a := range areas {
			if _, ok := s.selCounts[keys[i]]; ok || seen[keys[i]] {
				continue
			}
			seen[keys[i]] = true
			missKeys = append(missKeys, keys[i])
			missQ = append(missQ, engine.BatchQuery{Kind: engine.BatchCount, Rect: a})
		}
		if len(missQ) > 0 {
			br := s.view.ExecuteBatch(missQ)
			for i, k := range missKeys {
				s.selCounts[k] = br.Count(i)
			}
		}
	}
	out := make([]AreaInfo, len(areas))
	for i, a := range areas {
		info := AreaInfo{Area: a, RawArea: norm.ToRawRect(a)}
		for j, p := range s.points {
			if !a.Contains(p) {
				continue
			}
			if s.labels[j] {
				info.Support++
			} else {
				info.Violations++
			}
		}
		if total > 0 {
			info.Selectivity = float64(s.selCounts[keys[i]]) / total
		}
		out[i] = info
	}
	return out
}

// DiagnosticsString renders Diagnostics as a compact table with the
// view's attribute names.
func (s *Session) DiagnosticsString() string {
	infos := s.Diagnostics()
	if len(infos) == 0 {
		return "no predicted areas\n"
	}
	attrs := s.view.Attrs()
	var b strings.Builder
	for i, info := range infos {
		fmt.Fprintf(&b, "area %d: ", i+1)
		for d, attr := range attrs {
			if d > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s in [%.4g, %.4g]", attr, info.RawArea[d].Lo, info.RawArea[d].Hi)
		}
		fmt.Fprintf(&b, "\n        support %d relevant label(s), %d conflicting, selects %.2f%% of rows\n",
			info.Support, info.Violations, info.Selectivity*100)
	}
	return b.String()
}
