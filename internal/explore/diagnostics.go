package explore

import (
	"fmt"
	"strings"

	"github.com/explore-by-example/aide/internal/geom"
)

// AreaInfo describes one predicted relevant area with the evidence behind
// it, so a user can judge each disjunct of the final query before running
// it ("this area is backed by 14 relevant labels; that one by 2").
type AreaInfo struct {
	// Area is the predicted relevant area in normalized space.
	Area geom.Rect
	// RawArea is the same area in raw attribute space (the query's
	// coordinates).
	RawArea geom.Rect
	// Support is the number of labeled-relevant samples inside the area.
	Support int
	// Violations is the number of labeled-irrelevant samples inside the
	// area (residual false positives the boundary phase has not yet
	// carved away).
	Violations int
	// Selectivity is the fraction of all rows the area selects.
	Selectivity float64
}

// Diagnostics returns per-area evidence for the current prediction,
// ordered as RelevantAreas. It issues one count query per area.
func (s *Session) Diagnostics() []AreaInfo {
	areas := s.RelevantAreas()
	if len(areas) == 0 {
		return nil
	}
	norm := s.view.Normalizer()
	total := float64(s.view.NumRows())
	out := make([]AreaInfo, len(areas))
	for i, a := range areas {
		info := AreaInfo{Area: a, RawArea: norm.ToRawRect(a)}
		for j, p := range s.points {
			if !a.Contains(p) {
				continue
			}
			if s.labels[j] {
				info.Support++
			} else {
				info.Violations++
			}
		}
		if total > 0 {
			info.Selectivity = float64(s.view.Count(a)) / total
		}
		out[i] = info
	}
	return out
}

// DiagnosticsString renders Diagnostics as a compact table with the
// view's attribute names.
func (s *Session) DiagnosticsString() string {
	infos := s.Diagnostics()
	if len(infos) == 0 {
		return "no predicted areas\n"
	}
	attrs := s.view.Attrs()
	var b strings.Builder
	for i, info := range infos {
		fmt.Fprintf(&b, "area %d: ", i+1)
		for d, attr := range attrs {
			if d > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s in [%.4g, %.4g]", attr, info.RawArea[d].Lo, info.RawArea[d].Hi)
		}
		fmt.Fprintf(&b, "\n        support %d relevant label(s), %d conflicting, selects %.2f%% of rows\n",
			info.Support, info.Violations, info.Selectivity*100)
	}
	return b.String()
}
