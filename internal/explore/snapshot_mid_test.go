package explore

import (
	"bytes"
	"testing"

	"github.com/explore-by-example/aide/internal/geom"
)

// Mid-transition snapshot coverage: sessions saved while a discovery
// hierarchy is partially exploited or an exploitation phase is active.
// These states are exactly what crash recovery replays from the WAL, so
// a round-trip must preserve them field for field.

// TestSaveResumeClusterMidZoom snapshots a clustering session caught
// between levels: the level-0 frontier is partially consumed and the
// zoom queue already holds children of unproductive clusters.
func TestSaveResumeClusterMidZoom(t *testing.T) {
	v := clusteredView(t, 10000, 310)
	opts := DefaultOptions()
	opts.Discovery = DiscoveryClustering
	// A small budget guarantees the frontier cannot be drained in one
	// iteration; an oracle with no targets makes every cluster
	// unproductive, so children pile up in the zoom queue.
	opts.SamplesPerIteration = 5
	s, err := NewSession(v, rectOracle(), opts)
	if err != nil {
		t.Fatal(err)
	}
	orig := s.disc.(*clusterDiscovery)
	mid := false
	for i := 0; i < 10; i++ {
		if _, err := s.RunIteration(); err != nil {
			t.Fatal(err)
		}
		if len(orig.frontier) > 0 && len(orig.next) > 0 {
			mid = true
			break
		}
	}
	if !mid {
		t.Fatalf("never reached mid-zoom state: frontier=%d next=%d",
			len(orig.frontier), len(orig.next))
	}

	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := Resume(bytes.NewReader(buf.Bytes()), v, rectOracle())
	if err != nil {
		t.Fatal(err)
	}
	cd := r.disc.(*clusterDiscovery)
	if len(cd.frontier) != len(orig.frontier) || len(cd.next) != len(orig.next) {
		t.Fatalf("frontier/next = %d/%d, want %d/%d",
			len(cd.frontier), len(cd.next), len(orig.frontier), len(orig.next))
	}
	// Element-wise: the restored queues must reference the same nodes
	// in the same order, not merely have the same lengths.
	for i := range orig.frontier {
		if cd.frontier[i].center.Dist(orig.frontier[i].center) != 0 ||
			cd.frontier[i].level != orig.frontier[i].level {
			t.Fatalf("frontier[%d] differs after resume", i)
		}
	}
	for i := range orig.next {
		if cd.next[i].center.Dist(orig.next[i].center) != 0 ||
			cd.next[i].level != orig.next[i].level {
			t.Fatalf("next[%d] differs after resume", i)
		}
	}
	// The restored queues must point into the restored levels (aliasing,
	// not copies), or zooming would walk a detached hierarchy.
	found := false
	for i := range cd.levels[cd.frontier[0].level] {
		if &cd.levels[cd.frontier[0].level][i] == cd.frontier[0] {
			found = true
			break
		}
	}
	if !found {
		t.Error("restored frontier node is not aliased into levels")
	}
	if _, err := r.RunIteration(); err != nil {
		t.Fatal(err)
	}
}

// TestSaveResumeBoundaryPhaseActive snapshots a session after the
// boundary-exploitation phase has run, with slabs and previous areas
// recorded, and checks the resumed session re-enters the phase.
func TestSaveResumeBoundaryPhaseActive(t *testing.T) {
	v := testView(t, 8000, 311)
	target := geom.R(25, 45, 30, 55)
	s, err := NewSession(v, rectOracle(target), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 15 && len(s.lastSlabs) == 0; i++ {
		if _, err := s.RunIteration(); err != nil {
			t.Fatal(err)
		}
	}
	if len(s.lastSlabs) == 0 {
		t.Fatal("boundary phase never activated")
	}
	if len(s.prevAreas) == 0 {
		t.Fatal("no previous areas recorded")
	}

	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := Resume(bytes.NewReader(buf.Bytes()), v, rectOracle(target))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.lastSlabs) != len(s.lastSlabs) {
		t.Fatalf("lastSlabs: %d vs %d", len(r.lastSlabs), len(s.lastSlabs))
	}
	for i := range s.lastSlabs {
		if !r.lastSlabs[i].Equal(s.lastSlabs[i]) {
			t.Errorf("slab %d differs after resume", i)
		}
	}
	if len(r.prevAreas) != len(s.prevAreas) {
		t.Fatalf("prevAreas: %d vs %d", len(r.prevAreas), len(s.prevAreas))
	}
	for i := range s.prevAreas {
		if !r.prevAreas[i].Equal(s.prevAreas[i]) {
			t.Errorf("prevArea %d differs after resume", i)
		}
	}
	// The resumed session keeps exploiting the boundary: its next
	// iteration issues boundary sample-extraction queries.
	before := r.Stats().PhaseQueries[PhaseBoundary]
	if _, err := r.RunIteration(); err != nil {
		t.Fatal(err)
	}
	if r.Stats().PhaseQueries[PhaseBoundary] <= before {
		t.Error("resumed session issued no boundary queries")
	}
}
