package explore

import (
	"errors"
	"testing"
	"time"

	"github.com/explore-by-example/aide/internal/geom"
)

func TestBudgetValidation(t *testing.T) {
	bad := []Budget{
		{MaxLabeledRows: -1},
		{MaxIterationTime: -time.Second},
		{MaxSamplesPerIteration: -1},
		{MaxTreeNodes: -1},
		{MaxMemBytes: -1},
	}
	for _, b := range bad {
		opts := DefaultOptions()
		opts.Budget = b
		_, err := NewSession(testView(t, 100, 1), rectOracle(), opts)
		if !errors.Is(err, ErrBadBudget) {
			t.Errorf("budget %+v: err = %v, want ErrBadBudget", b, err)
		}
	}
	opts := DefaultOptions()
	opts.Budget = Budget{} // zero = unlimited, always valid
	if _, err := NewSession(testView(t, 100, 1), rectOracle(), opts); err != nil {
		t.Errorf("zero budget rejected: %v", err)
	}
}

func TestBudgetMaxLabeledRows(t *testing.T) {
	v := testView(t, 5000, 4)
	opts := DefaultOptions()
	opts.Budget.MaxLabeledRows = 60
	s, err := NewSession(v, rectOracle(geom.R(30, 60, 30, 60)), opts)
	if err != nil {
		t.Fatal(err)
	}
	results, err := RunUntil(s, nil, 50)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.LabeledCount(); got > 60 {
		t.Errorf("labeled %d rows, budget was 60", got)
	}
	if len(results) >= 50 {
		t.Error("session did not idle to a stop after the labeling budget")
	}
	found := false
	for _, r := range results {
		for _, d := range r.Degradations {
			if d == DegradeMaxLabeledRows {
				found = true
			}
		}
	}
	if !found {
		t.Error("no iteration reported the max-labeled-rows degradation")
	}
}

func TestBudgetMaxSamplesPerIteration(t *testing.T) {
	v := testView(t, 5000, 4)
	opts := DefaultOptions()
	opts.SamplesPerIteration = 20
	opts.Budget.MaxSamplesPerIteration = 8
	s, err := NewSession(v, rectOracle(geom.R(30, 60, 30, 60)), opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		res, err := s.RunIteration()
		if err != nil {
			t.Fatal(err)
		}
		if res.NewSamples > 8 {
			t.Fatalf("iteration %d labeled %d new samples, cap is 8", i, res.NewSamples)
		}
		if res.NewSamples > 0 && !hasDegradation(res, DegradeIterSamplesCap) {
			t.Fatalf("iteration %d missing samples-cap degradation: %v", i, res.Degradations)
		}
	}
}

func TestBudgetMaxTreeNodes(t *testing.T) {
	v := testView(t, 8000, 4)
	opts := DefaultOptions()
	opts.Budget.MaxTreeNodes = 5
	s, err := NewSession(v, rectOracle(geom.R(20, 40, 20, 40), geom.R(60, 80, 60, 80)), opts)
	if err != nil {
		t.Fatal(err)
	}
	capped := false
	for i := 0; i < 25; i++ {
		res, err := s.RunIteration()
		if err != nil {
			t.Fatal(err)
		}
		if tr := s.Tree(); tr != nil {
			if n := tr.NumNodes(); n > 5 {
				t.Fatalf("tree has %d nodes, budget is 5", n)
			}
			if tr.Capped() {
				capped = true
				if !hasDegradation(res, DegradeCartNodeCap) {
					t.Fatalf("capped tree but no node-cap degradation: %v", res.Degradations)
				}
			}
		}
	}
	if !capped {
		t.Error("node budget of 5 never capped any tree over 25 iterations")
	}
}

func TestBudgetMemFallbackToGrid(t *testing.T) {
	v := testView(t, 5000, 4)
	opts := DefaultOptions()
	opts.Discovery = DiscoveryClustering
	opts.Budget.MaxMemBytes = 1024 // far below the clustering estimate
	s, err := NewSession(v, rectOracle(geom.R(30, 60, 30, 60)), opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.disc.(*gridDiscovery); !ok {
		t.Fatalf("discovery is %T, want grid fallback under 1KiB budget", s.disc)
	}
	res, err := s.RunIteration()
	if err != nil {
		t.Fatal(err)
	}
	if !hasDegradation(res, DegradeDiscoveryGridFallback) {
		t.Errorf("grid fallback not reported: %v", res.Degradations)
	}
	// The permanent degradation must reappear on every iteration.
	res2, err := s.RunIteration()
	if err != nil {
		t.Fatal(err)
	}
	if !hasDegradation(res2, DegradeDiscoveryGridFallback) {
		t.Errorf("grid fallback missing from second iteration: %v", res2.Degradations)
	}
}

func TestBudgetIterationTimeCap(t *testing.T) {
	v := testView(t, 5000, 4)
	opts := DefaultOptions()
	opts.SamplesPerIteration = 0 // unbounded: only time can stop it
	opts.Budget.MaxIterationTime = time.Nanosecond
	s, err := NewSession(v, rectOracle(geom.R(30, 60, 30, 60)), opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.RunIteration()
	if err != nil {
		t.Fatal(err)
	}
	if !hasDegradation(res, DegradeIterTimeCap) {
		t.Errorf("1ns time budget not reported as degradation: %v", res.Degradations)
	}
}

func hasDegradation(res *IterationResult, kind string) bool {
	for _, d := range res.Degradations {
		if d == kind {
			return true
		}
	}
	return false
}
