package explore

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"

	"github.com/explore-by-example/aide/internal/cart"
	"github.com/explore-by-example/aide/internal/engine"
	"github.com/explore-by-example/aide/internal/geom"
	"github.com/explore-by-example/aide/internal/obs"
)

// Session is an AIDE exploration session: the full steering loop of
// Figure 1 over one engine.View. Sessions are single-goroutine; create
// one per exploration task.
type Session struct {
	view   *engine.View
	oracle Oracle
	opts   Options
	rng    *rand.Rand
	bounds geom.Rect // exploration bounds: RangeHint or the full domain

	// Labeled training set. rows, points and labels are parallel; idxOf
	// maps a row id to its index in them so conflict resolution can flip a
	// label in place.
	labelOf map[int]bool
	idxOf   map[int]int
	rows    []int
	points  []geom.Point
	labels  []bool
	nPos    int

	// ledger records every labeling event for conflict detection;
	// conflictErr is the sticky failure of the strict-error policy.
	ledger      *labelLedger
	conflictErr error

	// permDegr holds degradations decided once for the whole session
	// (e.g. the discovery grid fallback); they are re-reported on every
	// iteration result. iterStart anchors the MaxIterationTime budget.
	permDegr  []string
	iterStart time.Time

	// shardTracker collects partial-result events from the session's
	// sharded view (nil for unsharded views). Drained once per iteration
	// into the result's Degradations, so a quarantined shard is a named
	// degradation, never a silent wrong answer.
	shardTracker *engine.ShardTracker

	tree  *cart.Tree
	areas []geom.Rect // current relevant areas (normalized, unmerged)

	prevAreas []geom.Rect // relevant areas after the previous iteration
	lastSlabs []geom.Rect // boundary slabs sampled in the previous iteration

	disc          discoverer
	discoveryHits int // relevant objects found by discovery: the paper's k indicator

	// selCounts memoizes Diagnostics' per-area row counts (the view is
	// immutable, so a rect's count never changes within a session).
	selCounts map[string]int

	rec       *obs.Recorder       // per-iteration trace sink (nil: tracing off)
	phaseSpan *obs.Span           // active phase span while a phase executes
	flight    *obs.FlightRecorder // per-iteration wide events (nil: off)
	annotate  func(*obs.Span)     // stamps request ids on the root span

	// ctx is the active iteration's cancellation context (nil between
	// iterations and for plain RunIteration calls). Discovery steps and
	// phase loops poll it so a deadline or client disconnect abandons the
	// iteration within one engine chunk boundary.
	ctx context.Context

	iter  int
	stats SessionStats
}

// SessionStats aggregates effort and timing over a session.
type SessionStats struct {
	// Iterations run so far.
	Iterations int
	// TotalLabeled is the user's total labeling effort.
	TotalLabeled int
	// TotalRelevant counts relevant labels among them.
	TotalRelevant int
	// PhaseSamples breaks TotalLabeled down by phase.
	PhaseSamples [3]int
	// PhaseQueries counts the sample-extraction queries each phase issued
	// (one per sampling area: grid cell / cluster, misclassified object or
	// cluster of them, boundary slab). The clustered misclassified
	// exploitation exists precisely to shrink this number (Section 4.2).
	PhaseQueries [3]int
	// ExecTime is the cumulative system execution time (user wait time).
	ExecTime time.Duration
	// TrainTime is the classifier-training share of ExecTime.
	TrainTime time.Duration
	// Conflicts summarizes label contradictions seen so far.
	Conflicts ConflictStats
	// Degradations lists the budget degradations of the most recent
	// iteration (including session-permanent ones).
	Degradations []string
}

// sampleRequest is one planned sample-extraction query.
type sampleRequest struct {
	rect  geom.Rect
	n     int
	phase Phase
}

// NewSession creates a session over the view. The oracle provides labels;
// opts tunes every knob (start from DefaultOptions).
func NewSession(view *engine.View, oracle Oracle, opts Options) (*Session, error) {
	if view == nil {
		return nil, fmt.Errorf("explore: nil view")
	}
	if oracle == nil {
		return nil, fmt.Errorf("explore: nil oracle")
	}
	if err := opts.validate(view.Dims()); err != nil {
		return nil, err
	}
	if opts.Workers != 0 {
		// Route this session's scans through the requested worker count
		// without touching the (possibly shared) underlying view.
		view = view.WithWorkers(opts.Workers)
	}
	if opts.CacheBytes > 0 && view.Cache() == nil {
		// Session-private predicate result cache; a shared cache already on
		// the view wins, keeping cross-session reuse.
		view = view.WithCache(engine.NewCache(opts.CacheBytes))
	}
	// Sessions are single-goroutine, so the session's view copy gets a
	// private scan scratch buffer; the underlying shared view (and any
	// other session's copy) is untouched.
	view = view.WithScanBuffer()
	var tracker *engine.ShardTracker
	if view.ShardCount() > 0 {
		// Sharded view: attach a session-private tracker so partial
		// results degrade this session's iterations by name.
		view, tracker = view.WithShardTracker()
	}
	s := &Session{
		view:    view,
		oracle:  oracle,
		opts:    opts,
		rng:     rand.New(rand.NewSource(opts.Seed)),
		labelOf: make(map[int]bool),
		idxOf:   make(map[int]int),
		ledger:  newLabelLedger(),
	}
	s.shardTracker = tracker
	if opts.RangeHint != nil {
		s.bounds = opts.RangeHint.Clone()
	} else {
		s.bounds = geom.NewRect(view.Dims())
	}
	var err error
	s.disc, err = newDiscoverer(s)
	if err != nil {
		return nil, err
	}
	return s, nil
}

// View returns the session's view.
func (s *Session) View() *engine.View { return s.view }

// Options returns the session's (validated) options.
func (s *Session) Options() Options { return s.opts }

// Stats returns cumulative session statistics.
func (s *Session) Stats() SessionStats { return s.stats }

// LabeledCount implements Explorer.
func (s *Session) LabeledCount() int { return len(s.rows) }

// Tree returns the current classifier, or nil before one exists.
func (s *Session) Tree() *cart.Tree { return s.tree }

// RunIteration implements Explorer: it plans the iteration's sample set
// from the three phases (Equation 2: S_i = T_discovery + T_misclass +
// T_boundary), extracts and labels the samples, and retrains the
// classifier.
func (s *Session) RunIteration() (*IterationResult, error) {
	return s.RunIterationCtx(context.Background())
}

// cancelled reports whether the active iteration context is done.
func (s *Session) cancelled() bool {
	return s.ctx != nil && s.ctx.Err() != nil
}

// iterCtx returns the active iteration context (Background outside an
// iteration or for plain RunIteration calls).
func (s *Session) iterCtx() context.Context {
	if s.ctx == nil {
		return context.Background()
	}
	return s.ctx
}

// abort closes the open trace spans and wraps the cancellation error.
func (s *Session) abort(root *obs.Span, ctx context.Context) (*IterationResult, error) {
	s.phaseSpan.End()
	s.phaseSpan = nil
	root.SetAttr("cancelled", true)
	root.End()
	return nil, fmt.Errorf("explore: iteration %d cancelled: %w", s.iter, ctx.Err())
}

// RunIterationCtx is RunIteration with cooperative cancellation: once
// ctx is cancelled the iteration abandons its work — engine scans and
// classifier training stop at the next chunk/node boundary, discovery
// stops at the next cell — and returns an error wrapping ctx.Err(). The
// session state stays consistent: labels already recorded this iteration
// are kept (they are real user effort and re-running the iteration will
// not re-ask them), but the iteration counter does not advance and no
// classifier is published, so the caller may retry RunIterationCtx with
// a fresh context or abandon the session. An uncancelled ctx behaves
// exactly like RunIteration.
func (s *Session) RunIterationCtx(ctx context.Context) (*IterationResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("explore: iteration %d cancelled: %w", s.iter, err)
	}
	if s.conflictErr != nil {
		// A strict-policy conflict is sticky: the training set is tainted
		// and the user must resolve the contradiction out of band.
		return nil, s.conflictErr
	}
	if ctx != context.Background() {
		// Bind the iteration context to the session and its view so
		// engine scans issued by the phase planners observe cancellation
		// at chunk boundaries.
		s.ctx = ctx
		baseView := s.view
		s.view = baseView.WithContext(ctx)
		defer func() {
			s.view = baseView
			s.ctx = nil
		}()
	}
	start := time.Now()
	s.iterStart = start
	res := &IterationResult{Iteration: s.iter}
	conflictsBefore := s.ledger.events
	// Session-permanent degradations (e.g. the discovery grid fallback)
	// apply to every iteration; re-report them so each result is
	// self-describing.
	for _, d := range s.permDegr {
		s.degrade(res, d)
	}

	root := s.rec.Start("iteration")
	root.SetAttr("iteration", s.iter)
	if s.annotate != nil {
		s.annotate(root)
	}
	// Flight-recorder baselines: cache counters and query counts are
	// cumulative, so the iteration's event reports deltas against these.
	var cacheBefore engine.CacheStats
	if s.flight != nil && s.view.Cache() != nil {
		cacheBefore = s.view.Cache().Stats()
	}
	queriesBefore := s.stats.PhaseQueries

	budget := s.opts.SamplesPerIteration
	if budget == 0 {
		budget = math.MaxInt32
	}
	if cap := s.opts.Budget.MaxSamplesPerIteration; cap > 0 && cap < budget {
		budget = cap
		s.degrade(res, DegradeIterSamplesCap)
	}

	// Phases 2 and 3 need a classifier; the first iteration is discovery
	// only (Section 3: "no other phases are applied in the first
	// iteration").
	if s.tree != nil {
		var reqs []sampleRequest
		if !s.opts.DisableMisclass {
			reqs = append(reqs, s.planMisclass(res)...)
		}
		var slabs []geom.Rect
		if !s.opts.DisableBoundary {
			var breqs []sampleRequest
			breqs, slabs = s.planBoundary(res)
			reqs = append(reqs, breqs...)
		}
		reqs = trimRequests(reqs, budget)
		if len(reqs) > 0 {
			// The whole exploitation sample set runs as ONE engine batch —
			// one scatter per shard per iteration instead of one per
			// request. Rows are drawn lazily per request below, so the rng
			// stream (and therefore every label and golden) is bit-identical
			// to the old sequential loop, including when a budget or
			// conflict stop abandons the tail mid-batch.
			queries := make([]engine.BatchQuery, len(reqs))
			for i, rq := range reqs {
				queries[i] = engine.BatchQuery{Kind: engine.BatchSample, Rect: rq.rect, N: rq.n}
			}
			bs := root.Child("engine.execute_batch")
			batchStart := time.Now()
			br := s.view.ExecuteBatch(queries)
			batchTime := time.Since(batchStart)
			bs.SetAttr("queries", len(queries))
			bs.End()
			if s.cancelled() {
				return s.abort(root, ctx)
			}
			// The batch wall time is shared effort; attribute it to phases
			// in proportion to their request counts so per-phase durations
			// keep summing to roughly the iteration's engine time.
			var perPhase [3]int
			for _, rq := range reqs {
				perPhase[rq.phase]++
			}
			for p, n := range perPhase {
				if n > 0 {
					res.PhaseDurations[p] += batchTime * time.Duration(n) / time.Duration(len(reqs))
				}
			}
			// Requests arrive grouped by phase (misclassified before
			// boundary); one child span covers each contiguous phase run.
			curPhase := Phase(-1)
			segStart := time.Now()
			for i, rq := range reqs {
				if s.cancelled() {
					return s.abort(root, ctx)
				}
				if s.stepHalted(res) {
					break // budget or conflict stop: keep what we have
				}
				if rq.phase != curPhase {
					if curPhase >= 0 {
						res.PhaseDurations[curPhase] += time.Since(segStart)
					}
					segStart = time.Now()
					s.phaseSpan.End()
					s.phaseSpan = root.Child(rq.phase.String())
					curPhase = rq.phase
				}
				s.stats.PhaseQueries[rq.phase]++
				qs := s.phaseSpan.Child("engine.sample_rect")
				rows := br.Sample(i, s.rng)
				qs.SetAttr("requested", rq.n)
				qs.SetAttr("returned", len(rows))
				qs.End()
				for _, row := range rows {
					s.labelRow(row, rq.phase, res)
				}
			}
			if curPhase >= 0 {
				res.PhaseDurations[curPhase] += time.Since(segStart)
			}
			s.phaseSpan.End()
			s.phaseSpan = nil
		}
		s.lastSlabs = slabs
	}

	// Remaining effort goes to discovery ("we used the remaining of 20
	// samples to sample unexplored yet grid cells", Section 6.2).
	if remaining := budget - res.NewSamples; remaining > 0 && !s.stepHalted(res) {
		discStart := time.Now()
		s.phaseSpan = root.Child(PhaseDiscovery.String())
		before := res.NewSamples
		s.disc.step(s, remaining, res)
		s.phaseSpan.SetAttr("samples", res.NewSamples-before)
		s.phaseSpan.End()
		s.phaseSpan = nil
		res.PhaseDurations[PhaseDiscovery] += time.Since(discStart)
		if s.cancelled() {
			return s.abort(root, ctx)
		}
	}

	if s.conflictErr != nil {
		// Strict-error policy: the contradiction aborts the iteration
		// before a classifier trained on tainted labels is published.
		root.SetAttr("conflict", true)
		root.End()
		return nil, s.conflictErr
	}

	// Retrain the classifier on the grown training set.
	trainStart := time.Now()
	ts := root.Child("train")
	s.prevAreas = s.areas
	if s.nPos > 0 && s.nPos < len(s.rows) {
		// Conflict-free sessions get a nil weight slice, which routes
		// training through the exact unweighted integer path — the session
		// stays bit-identical to one without the ledger. Conflicted rows
		// train with their agreement ratio as weight.
		tree, err := cart.TrainWeightedCtx(s.iterCtx(), s.points, s.labels, s.ledger.weights(s.rows), s.opts.Tree)
		if err != nil {
			ts.End()
			root.End()
			return nil, fmt.Errorf("explore: training classifier: %w", err)
		}
		s.tree = tree
		s.areas = tree.RelevantAreas(s.bounds)
		if tree.Capped() {
			s.degrade(res, DegradeCartNodeCap)
		}
	} else {
		s.tree = nil
		s.areas = nil
	}
	ts.SetAttr("training_set", len(s.rows))
	ts.End()
	res.TrainDuration = time.Since(trainStart)
	res.Duration = time.Since(start)
	res.TotalLabeled = len(s.rows)
	res.RelevantAreas = len(s.areas)
	res.Conflicts = s.ledger.events - conflictsBefore
	if s.shardTracker != nil {
		// Surface shard-level partial results from this iteration's engine
		// scans as a named degradation ("shard_partial:n/N").
		if name, partial := s.shardTracker.Drain(); partial {
			s.degrade(res, name)
		}
	}

	s.iter++
	s.stats.Iterations++
	s.stats.TotalLabeled = len(s.rows)
	s.stats.ExecTime += res.Duration
	s.stats.TrainTime += res.TrainDuration
	s.stats.Conflicts = s.ledger.stats()
	s.stats.Degradations = res.Degradations

	obsIterations.Inc()
	obsIterationSeconds.Observe(res.Duration.Seconds())
	obsTrainSeconds.Observe(res.TrainDuration.Seconds())
	obsAreasPredicted.Set(float64(res.RelevantAreas))
	for p, d := range res.PhaseDurations {
		if d > 0 {
			obsPhaseSeconds[p].Observe(d.Seconds())
		}
	}
	obsTrainPhaseSeconds.Observe(res.TrainDuration.Seconds())
	root.SetAttr("new_samples", res.NewSamples)
	root.SetAttr("new_relevant", res.NewRelevant)
	root.SetAttr("total_labeled", res.TotalLabeled)
	root.SetAttr("areas", res.RelevantAreas)
	if res.Conflicts > 0 {
		root.SetAttr("conflicts", res.Conflicts)
	}
	if len(res.Degradations) > 0 {
		root.SetAttr("degradations", strings.Join(res.Degradations, ","))
	}
	root.End()
	s.recordFlight(res, budget, cacheBefore, queriesBefore)
	return res, nil
}

// labelRow shows one tuple to the oracle and records the labeling event
// in the conflict ledger. A row the session has already labeled is shown
// again: the oracle's fresh answer either confirms the current label (a
// no-op) or contradicts it, in which case the session's ConflictPolicy
// decides the row's effective label — the paper's silent keep-the-first
// behavior systematically trusted the oldest (least informed) answer.
// It returns the row's effective label and whether a new training sample
// was added.
func (s *Session) labelRow(row int, phase Phase, res *IterationResult) (relevant, isNew bool) {
	obsSamplesProposed.Inc()
	if s.conflictErr != nil {
		return s.labelOf[row], false
	}
	if cur, ok := s.labelOf[row]; ok {
		lab := s.oracle.Label(s.view, row)
		obsLabelsReceived.Inc()
		resolved, changed, err := s.ledger.record(row, lab, s.iter, cur, s.opts.ConflictPolicy)
		if err != nil {
			s.conflictErr = err
			return cur, false
		}
		if changed {
			i := s.idxOf[row]
			s.labelOf[row] = resolved
			s.labels[i] = resolved
			if resolved {
				s.nPos++
				s.stats.TotalRelevant++
			} else {
				s.nPos--
				s.stats.TotalRelevant--
			}
		}
		return s.labelOf[row], false
	}
	if max := s.opts.Budget.MaxLabeledRows; max > 0 && len(s.rows) >= max {
		// Labeling budget spent: refuse new rows. The session then idles
		// to a stop (RunUntil's no-progress detection) instead of failing.
		s.degrade(res, DegradeMaxLabeledRows)
		return false, false
	}
	lab := s.oracle.Label(s.view, row)
	obsLabelsReceived.Inc()
	if lab {
		obsLabelsRelevant.Inc()
	}
	s.ledger.record(row, lab, s.iter, lab, s.opts.ConflictPolicy)
	s.labelOf[row] = lab
	s.idxOf[row] = len(s.rows)
	s.rows = append(s.rows, row)
	s.points = append(s.points, s.view.NormPoint(row))
	s.labels = append(s.labels, lab)
	if lab {
		s.nPos++
		res.NewRelevant++
		s.stats.TotalRelevant++
	}
	res.NewSamples++
	res.PhaseSamples[phase]++
	s.stats.PhaseSamples[phase]++
	return lab, true
}

// LabeledPoints returns copies of the labeled samples' normalized points
// and their labels, in labeling order — the data a front-end plots.
func (s *Session) LabeledPoints() ([]geom.Point, []bool) {
	points := make([]geom.Point, len(s.points))
	for i, p := range s.points {
		points[i] = p.Clone()
	}
	labels := make([]bool, len(s.labels))
	copy(labels, s.labels)
	return points, labels
}

// RelevantAreas implements Explorer: the current prediction as merged
// normalized rectangles.
func (s *Session) RelevantAreas() []geom.Rect {
	if len(s.areas) == 0 {
		return nil
	}
	return cart.MergeAreas(s.areas)
}

// FinalQuery implements Explorer: it translates the classifier into the
// data-extraction query of Section 2.2, in raw attribute space.
func (s *Session) FinalQuery() engine.Query {
	norm := s.view.Normalizer()
	merged := s.RelevantAreas()
	areas := make([]geom.Rect, len(merged))
	for i, a := range merged {
		areas[i] = norm.ToRawRect(a)
	}
	domains := norm.ToRawRect(geom.NewRect(s.view.Dims()))
	return engine.Query{
		Table:   s.view.Table().Name(),
		Attrs:   s.view.Attrs(),
		Areas:   areas,
		Domains: domains,
	}
}

// trimRequests enforces the per-iteration budget over planned requests,
// preserving request order (misclassified exploitation is planned before
// boundary exploitation, matching the paper's priority). Counts shrink
// proportionally; requests that fall to zero are dropped.
func trimRequests(reqs []sampleRequest, budget int) []sampleRequest {
	total := 0
	for _, r := range reqs {
		total += r.n
	}
	if total <= budget {
		return reqs
	}
	scale := float64(budget) / float64(total)
	out := make([]sampleRequest, 0, len(reqs))
	used := 0
	for _, r := range reqs {
		n := int(math.Floor(float64(r.n) * scale))
		if n <= 0 {
			continue
		}
		if used+n > budget {
			n = budget - used
		}
		if n <= 0 {
			break
		}
		r.n = n
		out = append(out, r)
		used += n
	}
	// Distribute leftover budget to the earliest requests.
	for i := 0; used < budget && i < len(out); i++ {
		out[i].n++
		used++
	}
	// A budget smaller than the request count can starve everything in
	// the proportional pass; fall back to the highest-priority request.
	if len(out) == 0 && budget > 0 && len(reqs) > 0 {
		first := reqs[0]
		if first.n > budget {
			first.n = budget
		}
		out = append(out, first)
	}
	return out
}
