package explore

import (
	"fmt"
	"math/rand"

	"github.com/explore-by-example/aide/internal/engine"
)

// The paper assumes a non-noisy relevance system: each object has one
// true label and the user never contradicts themselves (Section 2.1).
// Real users do. The label ledger keeps every labeling event per row so
// the session can detect contradictions, resolve them under a
// configurable policy, and down-weight flip-flopping rows during
// classifier training instead of silently trusting whichever label
// happened to arrive first.

// ConflictPolicy selects how a session resolves contradictory labels for
// the same row.
type ConflictPolicy int

const (
	// ConflictLastWins keeps the most recent label (the default: users
	// refine their intent as exploration progresses, so later labels are
	// usually better informed).
	ConflictLastWins ConflictPolicy = iota
	// ConflictMajority keeps the label with the most votes across all
	// labeling events for the row; a tie keeps the current label.
	ConflictMajority
	// ConflictStrict treats any contradiction as fatal: the iteration
	// aborts with a *ConflictError so the caller can surface the
	// inconsistency to the user.
	ConflictStrict
	numConflictPolicies
)

// String implements fmt.Stringer.
func (p ConflictPolicy) String() string {
	switch p {
	case ConflictLastWins:
		return "last-wins"
	case ConflictMajority:
		return "majority"
	case ConflictStrict:
		return "strict-error"
	default:
		return fmt.Sprintf("ConflictPolicy(%d)", int(p))
	}
}

// ParseConflictPolicy parses the textual policy names accepted by the
// CLI and HTTP API. The empty string maps to the default policy.
func ParseConflictPolicy(s string) (ConflictPolicy, error) {
	switch s {
	case "", "last-wins", "last":
		return ConflictLastWins, nil
	case "majority":
		return ConflictMajority, nil
	case "strict-error", "strict":
		return ConflictStrict, nil
	default:
		return 0, fmt.Errorf("explore: unknown conflict policy %q (want last-wins, majority or strict-error)", s)
	}
}

// ConflictError reports a label contradiction under ConflictStrict.
type ConflictError struct {
	// Row is the conflicting row id.
	Row int
	// Iteration is the iteration during which the contradiction arrived.
	Iteration int
}

// Error implements error.
func (e *ConflictError) Error() string {
	return fmt.Sprintf("explore: conflicting labels for row %d (iteration %d) under strict-error policy", e.Row, e.Iteration)
}

// ConflictStats summarizes label disagreement over a session.
type ConflictStats struct {
	// ConflictingRows is the number of distinct rows that received both a
	// relevant and an irrelevant label at least once.
	ConflictingRows int `json:"conflicting_rows"`
	// ConflictEvents counts labeling events that contradicted the row's
	// then-current resolved label, including events the policy rejected.
	ConflictEvents int `json:"conflict_events"`
	// LabelFlips counts how often conflict resolution actually changed a
	// row's effective label.
	LabelFlips int `json:"label_flips"`
}

// rowVotes accumulates the labeling events of one row.
type rowVotes struct {
	pos, neg int
}

// conflicted reports whether the row has received both labels.
func (v *rowVotes) conflicted() bool { return v.pos > 0 && v.neg > 0 }

// labelLedger records every labeling event and resolves contradictions.
type labelLedger struct {
	votes  map[int]*rowVotes
	events int // contradiction events (see ConflictStats.ConflictEvents)
	flips  int // resolved label changes
}

func newLabelLedger() *labelLedger {
	return &labelLedger{votes: make(map[int]*rowVotes)}
}

// record adds one labeling event for row and returns the row's resolved
// label under the policy. changed reports whether the resolved label
// differs from cur (the row's current effective label; ignored for the
// first event). Under ConflictStrict a contradiction returns a
// *ConflictError and leaves the resolved label at cur.
func (l *labelLedger) record(row int, lab bool, iter int, cur bool, policy ConflictPolicy) (resolved, changed bool, err error) {
	v := l.votes[row]
	if v == nil {
		v = &rowVotes{}
		l.votes[row] = v
	}
	first := v.pos == 0 && v.neg == 0
	if lab {
		v.pos++
	} else {
		v.neg++
	}
	if first {
		return lab, false, nil
	}
	if lab != cur {
		l.events++
		obsLabelConflicts.Inc()
	}
	switch policy {
	case ConflictStrict:
		if v.conflicted() {
			return cur, false, &ConflictError{Row: row, Iteration: iter}
		}
		resolved = lab
	case ConflictMajority:
		switch {
		case v.pos > v.neg:
			resolved = true
		case v.neg > v.pos:
			resolved = false
		default:
			resolved = cur // tie keeps the current label
		}
	default: // ConflictLastWins
		resolved = lab
	}
	if resolved != cur {
		l.flips++
	}
	return resolved, resolved != cur, nil
}

// seed installs a vote tally for row without running conflict
// resolution. Snapshot restore uses it to rebuild the ledger.
func (l *labelLedger) seed(row, pos, neg int) {
	if pos == 0 && neg == 0 {
		return
	}
	l.votes[row] = &rowVotes{pos: pos, neg: neg}
}

// weights returns per-row training weights in the order of rows, or nil
// when no row is conflicted. A conflicted row's weight is the agreement
// ratio max(pos,neg)/(pos+neg) — always in (0.5, 1] — so a row the user
// flip-flopped on pulls less on the classifier; unanimous rows keep
// weight 1. The nil return on conflict-free sessions lets training take
// the exact unweighted integer path, preserving bit-identical behavior.
func (l *labelLedger) weights(rows []int) []float64 {
	any := false
	for _, row := range rows {
		if v := l.votes[row]; v != nil && v.conflicted() {
			any = true
			break
		}
	}
	if !any {
		return nil
	}
	w := make([]float64, len(rows))
	for i, row := range rows {
		w[i] = 1
		if v := l.votes[row]; v != nil && v.conflicted() {
			maj := v.pos
			if v.neg > maj {
				maj = v.neg
			}
			w[i] = float64(maj) / float64(v.pos+v.neg)
		}
	}
	return w
}

// stats returns the ledger's conflict summary.
func (l *labelLedger) stats() ConflictStats {
	n := 0
	for _, v := range l.votes {
		if v.conflicted() {
			n++
		}
	}
	return ConflictStats{ConflictingRows: n, ConflictEvents: l.events, LabelFlips: l.flips}
}

// NoisyOracle wraps an oracle and flips each answer with a fixed
// probability, simulating an inaccurate user. The flips are driven by a
// dedicated seeded rng, independent of the session's, so a noisy run is
// reproducible and a rate of 0 is bit-identical to the bare oracle.
type NoisyOracle struct {
	inner Oracle
	rate  float64
	rng   *rand.Rand
	flips int
}

// NewNoisyOracle wraps inner with the given flip probability in [0, 1].
func NewNoisyOracle(inner Oracle, flipRate float64, seed int64) *NoisyOracle {
	if flipRate < 0 {
		flipRate = 0
	}
	if flipRate > 1 {
		flipRate = 1
	}
	return &NoisyOracle{inner: inner, rate: flipRate, rng: rand.New(rand.NewSource(seed))}
}

// Label implements Oracle.
func (o *NoisyOracle) Label(v *engine.View, row int) bool {
	lab := o.inner.Label(v, row)
	if o.rate > 0 && o.rng.Float64() < o.rate {
		o.flips++
		return !lab
	}
	return lab
}

// Flips returns how many answers have been flipped so far.
func (o *NoisyOracle) Flips() int { return o.flips }
