// Package explore implements AIDE's automatic query steering framework —
// the paper's core contribution. A Session drives the iterative
// explore-by-example loop of Figure 1: it strategically extracts sample
// tuples, obtains relevance labels from an Oracle (a human or a simulated
// user), trains a CART classifier over the labeled set, and converges to
// a predicted query selecting the user's relevant areas.
//
// Sample selection combines the paper's three phases:
//
//   - relevant object discovery over a hierarchical grid or k-means
//     cluster hierarchy (Section 3),
//   - misclassified (false-negative) exploitation, per-object or
//     cluster-grouped (Section 4), and
//   - boundary exploitation of the predicted relevant areas with adaptive
//     sample sizing, non-overlapping sampling areas and whole-domain
//     sampling of non-boundary attributes (Section 5).
package explore

import (
	"fmt"

	"github.com/explore-by-example/aide/internal/cart"
	"github.com/explore-by-example/aide/internal/geom"
)

// DiscoveryStrategy selects how the relevant-object-discovery phase picks
// sampling areas.
type DiscoveryStrategy int

const (
	// DiscoveryGrid explores a hierarchical equal-width grid (the
	// skew-agnostic default of Section 3).
	DiscoveryGrid DiscoveryStrategy = iota
	// DiscoveryClustering samples around k-means centroids, concentrating
	// effort in dense regions (the skew-aware optimization of
	// Section 3.1).
	DiscoveryClustering
	// DiscoveryHybrid starts with clustering and falls back to the grid
	// once the cluster hierarchy is exhausted or user interests appear to
	// lie in sparse regions (the hybrid strategy discussed in
	// Section 6.4).
	DiscoveryHybrid
)

// String implements fmt.Stringer.
func (d DiscoveryStrategy) String() string {
	switch d {
	case DiscoveryGrid:
		return "grid"
	case DiscoveryClustering:
		return "clustering"
	case DiscoveryHybrid:
		return "hybrid"
	default:
		return fmt.Sprintf("DiscoveryStrategy(%d)", int(d))
	}
}

// MisclassStrategy selects how false negatives are exploited.
type MisclassStrategy int

const (
	// MisclassClustered groups false negatives with k-means and issues
	// one sample-extraction query per cluster when that reduces query
	// count (the paper's optimization, Section 4.2). It automatically
	// degrades to per-object sampling when clustering would not help.
	MisclassClustered MisclassStrategy = iota
	// MisclassPerObject always samples around each false negative
	// independently (the baseline the optimization is compared against
	// in Figure 10(e)).
	MisclassPerObject
)

// String implements fmt.Stringer.
func (m MisclassStrategy) String() string {
	switch m {
	case MisclassClustered:
		return "clustered"
	case MisclassPerObject:
		return "per-object"
	default:
		return fmt.Sprintf("MisclassStrategy(%d)", int(m))
	}
}

// Options configures a Session. The zero value is not usable; start from
// DefaultOptions.
type Options struct {
	// Seed drives every random choice in the session; equal seeds give
	// identical sessions.
	Seed int64

	// SamplesPerIteration caps the new labels requested from the user
	// each iteration (the paper's evaluation protocol uses 20). Zero
	// means phase-driven: every phase takes what it wants.
	SamplesPerIteration int

	// Beta0 is the cells-per-dimension of exploration level 0
	// (the paper's beta).
	Beta0 int
	// MaxZoomLevels bounds how many levels below 0 discovery may zoom.
	MaxZoomLevels int
	// GammaFrac is the per-cell sampling radius as a fraction of half the
	// cell width: gamma = GammaFrac * delta/2, honoring gamma < delta/2.
	GammaFrac float64
	// SparseGammaFrac replaces GammaFrac for cells whose density is below
	// SparseDensityFrac of the level average ("sparse cells should use a
	// higher gamma value than dense ones", Section 3).
	SparseGammaFrac float64
	// SparseDensityFrac defines sparseness relative to the average cell
	// density at the current level.
	SparseDensityFrac float64

	// Discovery picks the discovery strategy.
	Discovery DiscoveryStrategy
	// ClusterLevelK lists the k (cluster count) of each clustering
	// exploration level, highest (coarsest) level first. Only used by
	// DiscoveryClustering and DiscoveryHybrid. When empty, levels are
	// derived from Beta0 and the dimensionality.
	ClusterLevelK []int
	// ClusterSampleSize is how many rows are sampled to fit the k-means
	// levels (clustering the full table would defeat interactivity).
	ClusterSampleSize int

	// Misclass picks the false-negative exploitation strategy.
	Misclass MisclassStrategy
	// F is the number of samples collected around each false negative
	// (or per cluster member): the paper's f, recommended 10-25.
	F int
	// Y is the normalized Chebyshev radius of misclassified sampling
	// areas: the paper's y.
	Y float64

	// AlphaMax caps the boundary-exploitation samples per iteration: the
	// paper's alpha_max.
	AlphaMax int
	// BoundaryX is the half-width of boundary sampling slabs: the
	// paper's x (a conservative 1 normalized unit by default).
	BoundaryX float64
	// AdaptiveBoundary scales each face's sample budget by how much the
	// boundary moved since the last iteration (Section 5.2, "adaptive
	// sample size").
	AdaptiveBoundary bool
	// BoundaryErr is the error floor er: samples still collected from
	// unmodified boundaries.
	BoundaryErr int
	// NonOverlapSampling skips slabs that heavily overlap the previous
	// iteration's slab for an unmoved boundary (Section 5.2,
	// "non-overlapping sampling areas").
	NonOverlapSampling bool
	// OverlapSkipFrac is the overlap fraction above which such a slab is
	// skipped.
	OverlapSkipFrac float64
	// DomainSampling samples non-boundary dimensions over their whole
	// domain, letting the tree drop attributes irrelevant to the user
	// (Section 5.2, "identifying irrelevant attributes").
	DomainSampling bool

	// DisableMisclass turns the misclassified-exploitation phase off
	// (ablation support, Figure 8(f)).
	DisableMisclass bool
	// DisableBoundary turns the boundary-exploitation phase off
	// (ablation support, Figure 8(f)).
	DisableBoundary bool

	// DistanceHint, when positive, promises that every relevant area is
	// at least this wide (normalized units) in every constrained
	// dimension; discovery starts directly at the exploration level whose
	// cell width is at most the hint (Section 3.1).
	DistanceHint float64
	// RangeHint, when non-nil, restricts exploration to this normalized
	// region (Section 3.1's range-based hint).
	RangeHint geom.Rect

	// Tree configures the CART classifier.
	Tree cart.Params

	// MaxIterations bounds RunUntil loops.
	MaxIterations int

	// ConflictPolicy selects how contradictory labels for the same row are
	// resolved (default ConflictLastWins).
	ConflictPolicy ConflictPolicy

	// Budget caps the session's resource consumption; exceeding a cap
	// degrades the iteration deterministically instead of failing it. The
	// zero value is unlimited.
	Budget Budget

	// Workers sets the worker count for the session's parallel hot paths
	// (CART split search, engine grid scans, k-means assignment): 0 means
	// automatic (the AIDE_WORKERS environment variable, else GOMAXPROCS),
	// 1 forces the sequential paths. Every kernel produces results
	// independent of the worker count, so sessions with equal seeds stay
	// identical at any Workers setting.
	Workers int

	// CacheBytes, when positive, attaches a session-private predicate
	// result cache of roughly this many bytes to the view (memoizing
	// Count/RowsIn; see engine.Cache) — unless the view already carries a
	// shared cache, which then wins so cross-session reuse is preserved.
	// Cached sessions are bit-identical to uncached ones; the knob trades
	// memory for repeated-scan latency only. Zero disables; negative is
	// rejected.
	CacheBytes int64
}

// DefaultOptions returns the configuration matching the paper's
// evaluation setup (Section 6.2): 20 samples per iteration, beta=4 grid,
// f=10, y=3, x=1, all optimizations enabled. AlphaMax (the paper leaves
// its value unspecified) is 40: with the adaptive budget on, actual
// boundary demand stays near the error floor, and the headroom is what
// makes the fixed-vs-adaptive contrast of Figure 10(f) meaningful.
func DefaultOptions() Options {
	return Options{
		Seed:                1,
		SamplesPerIteration: 20,
		Beta0:               4,
		MaxZoomLevels:       4,
		GammaFrac:           0.7,
		SparseGammaFrac:     0.98,
		SparseDensityFrac:   0.3,
		Discovery:           DiscoveryGrid,
		ClusterSampleSize:   2000,
		Misclass:            MisclassClustered,
		F:                   10,
		Y:                   3,
		AlphaMax:            40,
		BoundaryX:           1,
		AdaptiveBoundary:    true,
		BoundaryErr:         2,
		NonOverlapSampling:  true,
		OverlapSkipFrac:     0.9,
		DomainSampling:      true,
		Tree:                cart.DefaultParams(),
		MaxIterations:       200,
	}
}

// validate fills defaults for zero fields and rejects nonsensical values.
func (o *Options) validate(dims int) error {
	if o.Beta0 <= 0 {
		o.Beta0 = 4
	}
	if o.MaxZoomLevels < 0 {
		return fmt.Errorf("explore: MaxZoomLevels = %d", o.MaxZoomLevels)
	}
	if o.GammaFrac <= 0 || o.GammaFrac >= 1 {
		o.GammaFrac = 0.7
	}
	if o.SparseGammaFrac <= 0 || o.SparseGammaFrac >= 1 {
		o.SparseGammaFrac = 0.98
	}
	if o.SparseDensityFrac <= 0 {
		o.SparseDensityFrac = 0.3
	}
	if o.ClusterSampleSize <= 0 {
		o.ClusterSampleSize = 2000
	}
	if o.F <= 0 {
		o.F = 10
	}
	if o.Y <= 0 {
		o.Y = 3
	}
	if o.AlphaMax <= 0 {
		o.AlphaMax = 10
	}
	if o.BoundaryX <= 0 {
		o.BoundaryX = 1
	}
	if o.BoundaryErr < 0 {
		o.BoundaryErr = 1
	}
	if o.OverlapSkipFrac <= 0 || o.OverlapSkipFrac > 1 {
		o.OverlapSkipFrac = 0.9
	}
	if o.MaxIterations <= 0 {
		o.MaxIterations = 200
	}
	if o.Workers < 0 {
		return fmt.Errorf("explore: Workers = %d", o.Workers)
	}
	if o.CacheBytes < 0 {
		return fmt.Errorf("explore: CacheBytes = %d", o.CacheBytes)
	}
	if o.ConflictPolicy < 0 || o.ConflictPolicy >= numConflictPolicies {
		return fmt.Errorf("explore: ConflictPolicy = %d", int(o.ConflictPolicy))
	}
	if err := o.Budget.validate(); err != nil {
		return err
	}
	if o.Tree.Workers == 0 {
		o.Tree.Workers = o.Workers
	}
	if o.Budget.MaxTreeNodes > 0 &&
		(o.Tree.MaxNodes == 0 || o.Tree.MaxNodes > o.Budget.MaxTreeNodes) {
		o.Tree.MaxNodes = o.Budget.MaxTreeNodes
	}
	if err := o.Tree.Validate(); err != nil {
		return err
	}
	if o.SamplesPerIteration < 0 {
		return fmt.Errorf("explore: SamplesPerIteration = %d", o.SamplesPerIteration)
	}
	if o.RangeHint != nil && o.RangeHint.Dims() != dims {
		return fmt.Errorf("explore: RangeHint has %d dims, exploration space has %d", o.RangeHint.Dims(), dims)
	}
	if o.DistanceHint < 0 {
		return fmt.Errorf("explore: DistanceHint = %v", o.DistanceHint)
	}
	return nil
}
