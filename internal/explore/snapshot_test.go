package explore

import (
	"bytes"
	"strings"
	"testing"

	"github.com/explore-by-example/aide/internal/dataset"
	"github.com/explore-by-example/aide/internal/engine"
	"github.com/explore-by-example/aide/internal/geom"
)

func TestSaveResumeRoundTrip(t *testing.T) {
	v := testView(t, 20000, 201)
	target := geom.R(30, 45, 50, 65)
	s, err := NewSession(v, rectOracle(target), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := s.RunIteration(); err != nil {
			t.Fatal(err)
		}
	}
	beforeLabeled := s.LabeledCount()
	beforeAreas := s.RelevantAreas()
	beforeStats := s.Stats()

	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}

	// Oracle of the resumed session must not be asked about already
	// labeled rows.
	oracleCalls := 0
	oracle := OracleFunc(func(view *engine.View, row int) bool {
		oracleCalls++
		return target.Contains(view.NormPoint(row))
	})
	r, err := Resume(bytes.NewReader(buf.Bytes()), v, oracle)
	if err != nil {
		t.Fatal(err)
	}
	if r.LabeledCount() != beforeLabeled {
		t.Fatalf("restored labeled = %d, want %d", r.LabeledCount(), beforeLabeled)
	}
	if oracleCalls != 0 {
		t.Errorf("resume re-asked the oracle %d times", oracleCalls)
	}
	if got := r.Stats(); got.TotalLabeled != beforeStats.TotalLabeled ||
		got.PhaseSamples != beforeStats.PhaseSamples {
		t.Errorf("restored stats %+v, want %+v", got, beforeStats)
	}
	// Derived state (the classifier's areas) matches exactly: training is
	// deterministic over the same labeled set.
	afterAreas := r.RelevantAreas()
	if len(afterAreas) != len(beforeAreas) {
		t.Fatalf("areas %d vs %d", len(afterAreas), len(beforeAreas))
	}
	for i := range beforeAreas {
		if !afterAreas[i].Equal(beforeAreas[i]) {
			t.Errorf("area %d differs after resume", i)
		}
	}

	// The resumed session keeps exploring productively.
	for i := 0; i < 10; i++ {
		if _, err := r.RunIteration(); err != nil {
			t.Fatal(err)
		}
	}
	if r.LabeledCount() <= beforeLabeled {
		t.Error("resumed session made no progress")
	}
	if oracleCalls == 0 {
		t.Error("resumed session never consulted the oracle")
	}
}

func TestResumeValidation(t *testing.T) {
	v := testView(t, 5000, 202)
	s, err := NewSession(v, rectOracle(geom.R(10, 30, 10, 30)), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunIteration(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}

	if _, err := Resume(strings.NewReader("garbage"), v, rectOracle()); err == nil {
		t.Error("garbage snapshot should error")
	}
	if _, err := Resume(bytes.NewReader(buf.Bytes()), nil, rectOracle()); err == nil {
		t.Error("nil view should error")
	}
	// Mismatched view: different row count.
	other := testView(t, 100, 203)
	if _, err := Resume(bytes.NewReader(buf.Bytes()), other, rectOracle()); err == nil {
		t.Error("mismatched view should error")
	}
	// Mismatched attrs.
	tab := dataset.GenerateUniform(5000, 3, 202)
	v3, err := engine.NewView(tab, []string{"a0", "a1", "a2"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Resume(bytes.NewReader(buf.Bytes()), v3, rectOracle()); err == nil {
		t.Error("attr mismatch should error")
	}
}

func TestSaveResumeClusterDiscovery(t *testing.T) {
	v := clusteredView(t, 10000, 204)
	opts := DefaultOptions()
	opts.Discovery = DiscoveryClustering
	s, err := NewSession(v, rectOracle(geom.R(15, 25, 15, 25)), opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := s.RunIteration(); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := Resume(bytes.NewReader(buf.Bytes()), v, rectOracle(geom.R(15, 25, 15, 25)))
	if err != nil {
		t.Fatal(err)
	}
	cd, ok := r.disc.(*clusterDiscovery)
	if !ok {
		t.Fatalf("restored discovery is %T", r.disc)
	}
	orig := s.disc.(*clusterDiscovery)
	if len(cd.levels) != len(orig.levels) {
		t.Errorf("levels %d vs %d", len(cd.levels), len(orig.levels))
	}
	if len(cd.frontier) != len(orig.frontier) || len(cd.next) != len(orig.next) {
		t.Errorf("frontier/next sizes differ: %d/%d vs %d/%d",
			len(cd.frontier), len(cd.next), len(orig.frontier), len(orig.next))
	}
	if _, err := r.RunIteration(); err != nil {
		t.Fatal(err)
	}
}

func TestSaveResumeHybridDiscovery(t *testing.T) {
	v := clusteredView(t, 10000, 205)
	opts := DefaultOptions()
	opts.Discovery = DiscoveryHybrid
	s, err := NewSession(v, rectOracle(), opts) // nothing relevant: forces the switch eventually
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if _, err := s.RunIteration(); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := Resume(bytes.NewReader(buf.Bytes()), v, rectOracle())
	if err != nil {
		t.Fatal(err)
	}
	hd, ok := r.disc.(*hybridDiscovery)
	if !ok {
		t.Fatalf("restored discovery is %T", r.disc)
	}
	if hd.switched != s.disc.(*hybridDiscovery).switched {
		t.Error("hybrid switch flag lost")
	}
	if _, err := r.RunIteration(); err != nil {
		t.Fatal(err)
	}
}

func TestSaveResumeGridFrontierPreserved(t *testing.T) {
	v := testView(t, 20000, 206)
	s, err := NewSession(v, rectOracle(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunIteration(); err != nil {
		t.Fatal(err)
	}
	origFrontier := len(s.disc.(*gridDiscovery).frontier)
	origNext := len(s.disc.(*gridDiscovery).next)

	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := Resume(bytes.NewReader(buf.Bytes()), v, rectOracle())
	if err != nil {
		t.Fatal(err)
	}
	gd := r.disc.(*gridDiscovery)
	if len(gd.frontier) != origFrontier || len(gd.next) != origNext {
		t.Errorf("frontier/next = %d/%d, want %d/%d",
			len(gd.frontier), len(gd.next), origFrontier, origNext)
	}
}
