package explore

import (
	"fmt"
	"math"

	"github.com/explore-by-example/aide/internal/engine"
	"github.com/explore-by-example/aide/internal/geom"
	"github.com/explore-by-example/aide/internal/grid"
	"github.com/explore-by-example/aide/internal/kmeans"
)

// discoverer is the strategy interface of the relevant-object-discovery
// phase: step consumes up to budget new labels, pushing samples from yet
// unexplored areas to the user.
type discoverer interface {
	step(s *Session, budget int, res *IterationResult)
	// exhausted reports that the strategy has no sampling areas left.
	exhausted() bool
}

// newDiscoverer builds the discovery strategy selected by the options.
// Under a MaxMemBytes budget, cluster-based strategies fall back to the
// grid when fitting the k-means hierarchy would exceed the cap — the
// grid needs no auxiliary sample matrix. The fallback is decided once at
// session construction, so it is deterministic and recorded as a
// session-permanent degradation.
func newDiscoverer(s *Session) (discoverer, error) {
	strategy := s.opts.Discovery
	if strategy != DiscoveryGrid && s.opts.Budget.MaxMemBytes > 0 &&
		clusterMemEstimate(s) > s.opts.Budget.MaxMemBytes {
		s.permDegr = append(s.permDegr, DegradeDiscoveryGridFallback)
		strategy = DiscoveryGrid
	}
	switch strategy {
	case DiscoveryGrid:
		return newGridDiscovery(s)
	case DiscoveryClustering:
		return newClusterDiscovery(s)
	case DiscoveryHybrid:
		cd, err := newClusterDiscovery(s)
		if err != nil {
			return nil, err
		}
		return &hybridDiscovery{cluster: cd, session: s}, nil
	default:
		return nil, fmt.Errorf("explore: unknown discovery strategy %v", s.opts.Discovery)
	}
}

// clusterMemEstimate approximates the footprint of fitting the k-means
// discovery hierarchy: the normalized sample matrix dominates, with a 2x
// factor covering assignments, centroids and scratch across levels.
func clusterMemEstimate(s *Session) int64 {
	return int64(s.opts.ClusterSampleSize) * int64(s.view.Dims()+2) * 8 * 2
}

// gridDiscovery walks the hierarchical exploration grid of Section 3:
// one sample near each cell's virtual center, zooming into cells that
// produced no relevant object.
type gridDiscovery struct {
	g        *grid.Grid
	frontier []grid.Cell // cells awaiting their sample at the current depth
	next     []grid.Cell // zoom queue: children of unproductive cells
	maxLevel int
	avgCount float64 // expected rows per cell at the frontier's level
	curLevel int
}

func newGridDiscovery(s *Session) (*gridDiscovery, error) {
	g, err := grid.New(s.view.Dims(), s.opts.Beta0)
	if err != nil {
		return nil, err
	}
	level := 0
	if s.opts.DistanceHint > 0 {
		// Distance-based hint (Section 3.1): start at the level whose
		// cell width guarantees one hit per relevant area.
		level = g.LevelForWidth(s.opts.DistanceHint)
	}
	d := &gridDiscovery{g: g, maxLevel: level + s.opts.MaxZoomLevels, curLevel: level}
	if s.opts.RangeHint != nil {
		d.frontier = g.CellsIn(level, s.opts.RangeHint)
	} else {
		d.frontier = g.CellsAt(level)
	}
	// Shuffle so a small per-iteration budget spreads across the space
	// rather than scanning row-major.
	s.rng.Shuffle(len(d.frontier), func(i, j int) {
		d.frontier[i], d.frontier[j] = d.frontier[j], d.frontier[i]
	})
	d.avgCount = float64(s.view.NumRows()) / float64(g.NumCells(level))
	return d, nil
}

func (d *gridDiscovery) exhausted() bool {
	return len(d.frontier) == 0 && len(d.next) == 0
}

func (d *gridDiscovery) step(s *Session, budget int, res *IterationResult) {
	for budget > 0 {
		if s.stepHalted(res) {
			return // iteration abandoned; frontier state stays consistent
		}
		if len(d.frontier) == 0 {
			if len(d.next) == 0 {
				return
			}
			// Promote the zoom queue to the frontier: descend one level.
			d.frontier, d.next = d.next, nil
			d.curLevel = d.frontier[0].Level
			d.avgCount = float64(s.view.NumRows()) / float64(d.g.NumCells(d.curLevel))
			s.rng.Shuffle(len(d.frontier), func(i, j int) {
				d.frontier[i], d.frontier[j] = d.frontier[j], d.frontier[i]
			})
		}
		// Work a window of frontier cells per engine pass: wide enough
		// that one round usually fills the budget even when some cells
		// are empty or re-hit already-labeled rows.
		w := 2*budget + 8
		if w > len(d.frontier) {
			w = len(d.frontier)
		}
		window := d.frontier[:w]

		// Stage 1: one rng-free Count batch decides which cells hold rows
		// and their density-adaptive radius. Sparse cells search a larger
		// area around the center to improve the chance of a hit
		// (Section 3).
		counts := make([]engine.BatchQuery, w)
		for i, cell := range window {
			counts[i] = engine.BatchQuery{Kind: engine.BatchCount, Rect: d.g.Rect(cell)}
		}
		cb := s.view.ExecuteBatch(counts)

		// Stage 2: one sample batch over the non-empty cells. Planning is
		// rng-free; rows are drawn lazily in cell order below, so the rng
		// stream matches the old one-query-per-cell loop exactly.
		full := geom.NewRect(s.view.Dims())
		sampleAt := make([]int, w) // window index -> sample batch index
		var sampleQ []engine.BatchQuery
		var gammas []float64
		for i, cell := range window {
			sampleAt[i] = -1
			count := cb.Count(i)
			if count == 0 {
				continue // empty cell: nothing to retrieve, nothing to zoom for
			}
			frac := s.opts.GammaFrac
			if float64(count) < s.opts.SparseDensityFrac*d.avgCount {
				frac = s.opts.SparseGammaFrac
			}
			gamma := frac * d.g.Width(cell.Level) / 2
			sampleAt[i] = len(sampleQ)
			gammas = append(gammas, gamma)
			sampleQ = append(sampleQ, engine.BatchQuery{
				Kind: engine.BatchSample,
				N:    1,
				Rect: geom.RectAround(d.g.Center(cell), gamma, full),
			})
		}
		var sb *engine.BatchResults
		if len(sampleQ) > 0 {
			sb = s.view.ExecuteBatch(sampleQ)
		}

		// Stage 3: draw, label and zoom cell by cell. Cells the budget (or
		// a halt) never reaches stay on the frontier, their draws never
		// planned into the rng stream.
		consumed := 0
		for i, cell := range window {
			if budget <= 0 || s.stepHalted(res) {
				break
			}
			consumed = i + 1
			si := sampleAt[i]
			if si < 0 {
				continue
			}
			s.stats.PhaseQueries[PhaseDiscovery]++
			row := s.drawOneNear(sb, si, gammas[si])
			relevant := false
			if row >= 0 {
				var isNew bool
				relevant, isNew = s.labelRow(row, PhaseDiscovery, res)
				if isNew {
					budget--
				}
				if relevant {
					s.discoveryHits++
				}
			}
			if !relevant && cell.Level < d.maxLevel {
				// No relevant object from this cell: sub-areas may still
				// overlap a relevant area, so zoom in (Section 3).
				d.next = append(d.next, d.g.Children(cell)...)
			}
		}
		d.frontier = d.frontier[consumed:]
	}
}

// clusterNode is one sampling area of the clustering-based hierarchy.
type clusterNode struct {
	center   geom.Point
	radius   float64 // Chebyshev radius of the cluster
	children []int   // indexes into the next level's node list
	level    int
}

// clusterDiscovery implements the skew-aware optimization of Section 3.1:
// k-means over a database sample defines the sampling areas, so effort
// concentrates where the data is dense. Zooming descends to the
// finer-grained clusters nearest the unproductive centroid.
type clusterDiscovery struct {
	levels   [][]clusterNode
	frontier []*clusterNode
	next     []*clusterNode
}

func newClusterDiscovery(s *Session) (*clusterDiscovery, error) {
	// Fit the hierarchy on a sample of the data (clustering millions of
	// rows would destroy interactivity).
	sample := s.view.SampleAll(s.opts.ClusterSampleSize, s.rng)
	if s.opts.RangeHint != nil {
		var kept []int
		for _, row := range sample {
			if s.opts.RangeHint.Contains(s.view.NormPoint(row)) {
				kept = append(kept, row)
			}
		}
		sample = kept
	}
	if len(sample) == 0 {
		return nil, fmt.Errorf("explore: no rows available to fit clustering discovery")
	}
	points := make([]geom.Point, len(sample))
	for i, row := range sample {
		points[i] = s.view.NormPoint(row)
	}

	ks := s.opts.ClusterLevelK
	if len(ks) == 0 {
		// Default hierarchy: level 0 matches the grid's cell count, each
		// deeper level has 2^d times more clusters, capped so clusters
		// keep enough members to define meaningful radii (and so the
		// k-means fits stay cheap enough for an interactive session).
		d := s.view.Dims()
		k := 1
		for i := 0; i < d; i++ {
			k *= s.opts.Beta0
		}
		maxK := len(points) / 8
		if maxK < 1 {
			maxK = 1
		}
		for l := 0; l <= s.opts.MaxZoomLevels; l++ {
			kl := min(k<<(uint(l)*uint(d)), maxK)
			ks = append(ks, kl)
			if kl == maxK {
				break // deeper levels would be identical
			}
		}
	}

	cd := &clusterDiscovery{}
	for l, k := range ks {
		resK, err := kmeans.Cluster(points, kmeans.Params{K: k, MaxIters: 20, Workers: s.opts.Workers}, s.rng)
		if err != nil {
			return nil, fmt.Errorf("explore: clustering level %d: %w", l, err)
		}
		nodes := make([]clusterNode, len(resK.Centroids))
		for c := range resK.Centroids {
			nodes[c] = clusterNode{
				center: resK.Centroids[c],
				radius: resK.Radius(points, c),
				level:  l,
			}
		}
		cd.levels = append(cd.levels, nodes)
	}
	// Wire children: a node's children are the next level's nodes whose
	// centroid is nearest to it.
	for l := 0; l+1 < len(cd.levels); l++ {
		parents := cd.levels[l]
		for ci := range cd.levels[l+1] {
			child := &cd.levels[l+1][ci]
			best, bestD := 0, math.Inf(1)
			for pi := range parents {
				if dd := parents[pi].center.Dist(child.center); dd < bestD {
					best, bestD = pi, dd
				}
			}
			parents[best].children = append(parents[best].children, ci)
		}
	}
	for i := range cd.levels[0] {
		cd.frontier = append(cd.frontier, &cd.levels[0][i])
	}
	s.rng.Shuffle(len(cd.frontier), func(i, j int) {
		cd.frontier[i], cd.frontier[j] = cd.frontier[j], cd.frontier[i]
	})
	return cd, nil
}

func (d *clusterDiscovery) exhausted() bool {
	return len(d.frontier) == 0 && len(d.next) == 0
}

func (d *clusterDiscovery) step(s *Session, budget int, res *IterationResult) {
	for budget > 0 {
		if s.stepHalted(res) {
			return // iteration abandoned; frontier state stays consistent
		}
		if len(d.frontier) == 0 {
			if len(d.next) == 0 {
				return
			}
			d.frontier, d.next = d.next, nil
			s.rng.Shuffle(len(d.frontier), func(i, j int) {
				d.frontier[i], d.frontier[j] = d.frontier[j], d.frontier[i]
			})
		}
		// Work a window of clusters per engine pass. "One object per
		// cluster within distance gamma < delta along each dimension from
		// the cluster's centroid, where delta is the radius of the
		// cluster" (Section 3.1) — every cluster's retrieval query goes
		// into one batch, rows drawn lazily in cluster order.
		w := 2*budget + 8
		if w > len(d.frontier) {
			w = len(d.frontier)
		}
		window := d.frontier[:w]
		full := geom.NewRect(s.view.Dims())
		queries := make([]engine.BatchQuery, w)
		gammas := make([]float64, w)
		for i, node := range window {
			gamma := s.opts.GammaFrac * node.radius
			if gamma <= 0 {
				gamma = 0.5 // degenerate single-point cluster
			}
			gammas[i] = gamma
			queries[i] = engine.BatchQuery{
				Kind: engine.BatchSample,
				N:    1,
				Rect: geom.RectAround(node.center, gamma, full),
			}
		}
		br := s.view.ExecuteBatch(queries)
		consumed := 0
		for i, node := range window {
			if budget <= 0 || s.stepHalted(res) {
				break
			}
			consumed = i + 1
			s.stats.PhaseQueries[PhaseDiscovery]++
			row := s.drawOneNear(br, i, gammas[i])
			relevant := false
			if row >= 0 {
				var isNew bool
				relevant, isNew = s.labelRow(row, PhaseDiscovery, res)
				if isNew {
					budget--
				}
				if relevant {
					s.discoveryHits++
				}
			}
			if !relevant && node.level+1 < len(d.levels) {
				for _, ci := range node.children {
					d.next = append(d.next, &d.levels[node.level+1][ci])
				}
			}
		}
		d.frontier = d.frontier[consumed:]
	}
}

// hybridDiscovery explores dense areas first via clustering, then falls
// back to the grid so sparse regions are still covered — the hybrid
// strategy Section 6.4 concludes would be best.
type hybridDiscovery struct {
	cluster  *clusterDiscovery
	grid     *gridDiscovery
	session  *Session
	switched bool
}

func (d *hybridDiscovery) exhausted() bool {
	if !d.switched {
		return false // grid phase still pending
	}
	return d.grid.exhausted()
}

func (d *hybridDiscovery) step(s *Session, budget int, res *IterationResult) {
	if !d.switched {
		before := res.PhaseSamples[PhaseDiscovery]
		d.cluster.step(s, budget, res)
		budget -= res.PhaseSamples[PhaseDiscovery] - before
		if !d.cluster.exhausted() || budget <= 0 {
			return
		}
		g, err := newGridDiscovery(s)
		if err != nil {
			return // clustering already covered what it could
		}
		d.grid = g
		d.switched = true
	}
	d.grid.step(s, budget, res)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
