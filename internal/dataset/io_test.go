package dataset

import (
	"bytes"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	orig := GenerateUniform(100, 3, 1)
	var buf bytes.Buffer
	if err := orig.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, "uniform", orig.Schema())
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != orig.NumRows() || got.NumCols() != orig.NumCols() {
		t.Fatalf("shape = %dx%d", got.NumRows(), got.NumCols())
	}
	for r := 0; r < orig.NumRows(); r++ {
		for c := 0; c < orig.NumCols(); c++ {
			if got.Value(r, c) != orig.Value(r, c) {
				t.Fatalf("value (%d,%d) = %v, want %v", r, c, got.Value(r, c), orig.Value(r, c))
			}
		}
	}
	// Declared schema domains survive the round trip.
	if got.Schema()[0] != orig.Schema()[0] {
		t.Errorf("schema changed: %+v vs %+v", got.Schema()[0], orig.Schema()[0])
	}
}

func TestReadCSVDerivedSchema(t *testing.T) {
	in := "price, bids\n10,3\n50,7\n30,5\n"
	tab, err := ReadCSV(strings.NewReader(in), "items", nil)
	if err != nil {
		t.Fatal(err)
	}
	s := tab.Schema()
	if s[0].Name != "price" || s[0].Min != 10 || s[0].Max != 50 {
		t.Errorf("derived schema = %+v", s[0])
	}
	if s[1].Name != "bids" || s[1].Min != 3 || s[1].Max != 7 {
		t.Errorf("derived schema = %+v", s[1])
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader(""), "t", nil); err == nil {
		t.Error("empty input should error")
	}
	if _, err := ReadCSV(strings.NewReader("a,b\n1,x\n"), "t", nil); err == nil {
		t.Error("non-numeric cell should error")
	}
	// Schema mismatches.
	sch := Schema{{Name: "a", Min: 0, Max: 1}}
	if _, err := ReadCSV(strings.NewReader("a,b\n1,2\n"), "t", sch); err == nil {
		t.Error("column count mismatch should error")
	}
	sch = Schema{{Name: "x", Min: 0, Max: 1}, {Name: "b", Min: 0, Max: 1}}
	if _, err := ReadCSV(strings.NewReader("a,b\n1,2\n"), "t", sch); err == nil {
		t.Error("column name mismatch should error")
	}
}

func TestReadCSVHeaderOnly(t *testing.T) {
	tab, err := ReadCSV(strings.NewReader("a,b\n"), "t", nil)
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 0 {
		t.Errorf("rows = %d", tab.NumRows())
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	orig := GenerateSDSS(500, 3)
	var buf bytes.Buffer
	if err := orig.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name() != orig.Name() {
		t.Errorf("name = %q", got.Name())
	}
	if got.NumRows() != orig.NumRows() {
		t.Fatalf("rows = %d", got.NumRows())
	}
	for r := 0; r < orig.NumRows(); r += 37 {
		for c := 0; c < orig.NumCols(); c++ {
			if got.Value(r, c) != orig.Value(r, c) {
				t.Fatalf("value (%d,%d) differs", r, c)
			}
		}
	}
}

func TestReadBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("not a table")); err == nil {
		t.Error("garbage should be rejected")
	}
	if _, err := ReadBinary(strings.NewReader("AIDE")); err == nil {
		t.Error("truncated magic should be rejected")
	}
	if _, err := ReadBinary(strings.NewReader("AIDEtbl1garbagegarbage")); err == nil {
		t.Error("bad gob payload should be rejected")
	}
}

func TestCSVPrecision(t *testing.T) {
	// Full float64 precision survives 'g'/-1 formatting.
	sch := Schema{{Name: "v", Min: 0, Max: 1}}
	b := NewBuilder("t", sch)
	b.Add(0.1234567890123456789)
	b.Add(1e-300)
	tab := b.Build()
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, "t", sch)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < tab.NumRows(); r++ {
		if got.Value(r, 0) != tab.Value(r, 0) {
			t.Errorf("row %d: %v != %v", r, got.Value(r, 0), tab.Value(r, 0))
		}
	}
}
