package dataset

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func smallSchema() Schema {
	return Schema{
		{Name: "x", Min: 0, Max: 100},
		{Name: "y", Min: 0, Max: 10},
	}
}

func TestNewTableShapeChecks(t *testing.T) {
	s := smallSchema()
	if _, err := NewTable("t", s, [][]float64{{1, 2}}); err == nil {
		t.Error("column count mismatch should error")
	}
	if _, err := NewTable("t", s, [][]float64{{1, 2}, {3}}); err == nil {
		t.Error("row count mismatch should error")
	}
	tab, err := NewTable("t", s, [][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 2 || tab.NumCols() != 2 {
		t.Errorf("shape = %dx%d", tab.NumRows(), tab.NumCols())
	}
	if tab.Name() != "t" {
		t.Errorf("Name = %q", tab.Name())
	}
}

func TestTableAccessors(t *testing.T) {
	tab, err := NewTable("t", smallSchema(), [][]float64{{1, 2, 3}, {4, 5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if tab.Value(1, 0) != 2 || tab.Value(2, 1) != 6 {
		t.Error("Value wrong")
	}
	row := tab.Row(0)
	if row[0] != 1 || row[1] != 4 {
		t.Errorf("Row = %v", row)
	}
	p := tab.Project(2, []int{1})
	if len(p) != 1 || p[0] != 6 {
		t.Errorf("Project = %v", p)
	}
	if got := tab.Col(1); got[0] != 4 {
		t.Errorf("Col = %v", got)
	}
}

func TestSchemaIndexAndNames(t *testing.T) {
	s := smallSchema()
	if s.Index("y") != 1 {
		t.Error("Index(y) wrong")
	}
	if s.Index("missing") != -1 {
		t.Error("Index(missing) should be -1")
	}
	names := s.Names()
	if names[0] != "x" || names[1] != "y" {
		t.Errorf("Names = %v", names)
	}
}

func TestColumnIndexes(t *testing.T) {
	tab, _ := NewTable("t", smallSchema(), [][]float64{{1}, {2}})
	idx, err := tab.ColumnIndexes([]string{"y", "x"})
	if err != nil {
		t.Fatal(err)
	}
	if idx[0] != 1 || idx[1] != 0 {
		t.Errorf("ColumnIndexes = %v", idx)
	}
	if _, err := tab.ColumnIndexes([]string{"nope"}); err == nil {
		t.Error("unknown column should error")
	}
}

func TestNormalizerUsesSchemaDomains(t *testing.T) {
	tab, _ := NewTable("t", smallSchema(), [][]float64{{50}, {5}})
	n, err := tab.Normalizer([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	norm := n.ToNorm([]float64{50, 5})
	if math.Abs(norm[0]-50) > 1e-9 || math.Abs(norm[1]-50) > 1e-9 {
		t.Errorf("norm = %v", norm)
	}
	if _, err := tab.Normalizer([]int{7}); err == nil {
		t.Error("out-of-range column should error")
	}
}

func TestSubset(t *testing.T) {
	tab, _ := NewTable("t", smallSchema(), [][]float64{{1, 2, 3, 4}, {5, 6, 7, 8}})
	sub := tab.Subset("sub", []int{3, 1})
	if sub.NumRows() != 2 {
		t.Fatalf("rows = %d", sub.NumRows())
	}
	if sub.Value(0, 0) != 4 || sub.Value(1, 1) != 6 {
		t.Errorf("subset values wrong: %v %v", sub.Value(0, 0), sub.Value(1, 1))
	}
	if sub.Name() != "sub" {
		t.Errorf("Name = %q", sub.Name())
	}
}

func TestColumnStats(t *testing.T) {
	tab, _ := NewTable("t", smallSchema(), [][]float64{{1, 2, 3}, {0, 0, 0}})
	s := tab.ColumnStats(0)
	if s.Min != 1 || s.Max != 3 || math.Abs(s.Mean-2) > 1e-9 {
		t.Errorf("Stats = %+v", s)
	}
	wantStd := math.Sqrt(2.0 / 3.0)
	if math.Abs(s.Std-wantStd) > 1e-9 {
		t.Errorf("Std = %v, want %v", s.Std, wantStd)
	}
	empty, _ := NewTable("e", smallSchema(), [][]float64{{}, {}})
	if empty.ColumnStats(0) != (Stats{}) {
		t.Error("empty stats should be zero")
	}
}

func TestBuilder(t *testing.T) {
	b := NewBuilder("b", smallSchema())
	b.Add(1, 2)
	b.Add(3, 4)
	tab := b.Build()
	if tab.NumRows() != 2 || tab.Value(1, 1) != 4 {
		t.Error("builder produced wrong table")
	}
}

func TestBuilderPanicsOnArity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBuilder("b", smallSchema()).Add(1)
}

func TestSortedIndex(t *testing.T) {
	tab, _ := NewTable("t", smallSchema(), [][]float64{{3, 1, 2}, {0, 0, 0}})
	idx := tab.SortedIndex(0)
	want := []int{1, 2, 0}
	for i := range want {
		if idx[i] != want[i] {
			t.Fatalf("SortedIndex = %v, want %v", idx, want)
		}
	}
}

func TestGenerateSDSSDeterministic(t *testing.T) {
	a := GenerateSDSS(500, 42)
	b := GenerateSDSS(500, 42)
	for c := 0; c < a.NumCols(); c++ {
		for r := 0; r < a.NumRows(); r++ {
			if a.Value(r, c) != b.Value(r, c) {
				t.Fatalf("row %d col %d differs between same-seed runs", r, c)
			}
		}
	}
	c := GenerateSDSS(500, 43)
	same := true
	for r := 0; r < a.NumRows() && same; r++ {
		same = a.Value(r, 0) == c.Value(r, 0)
	}
	if same {
		t.Error("different seeds produced identical rowc column")
	}
}

func TestGenerateSDSSDomains(t *testing.T) {
	tab := GenerateSDSS(2000, 7)
	for c, col := range tab.Schema() {
		s := tab.ColumnStats(c)
		if s.Min < col.Min-1e-9 || s.Max > col.Max+1e-9 {
			t.Errorf("column %s out of domain: data [%g,%g] domain [%g,%g]",
				col.Name, s.Min, s.Max, col.Min, col.Max)
		}
	}
}

// rowc/colc should be roughly uniform; dec should be skewed
// (concentrated). We compare the fraction of mass in the densest decile.
func TestGenerateSDSSSkewShape(t *testing.T) {
	tab := GenerateSDSS(20000, 11)
	frac := func(col int) float64 {
		idx := tab.Schema()[col]
		counts := make([]int, 10)
		data := tab.Col(col)
		for _, v := range data {
			b := int((v - idx.Min) / (idx.Max - idx.Min) * 10)
			if b > 9 {
				b = 9
			}
			if b < 0 {
				b = 0
			}
			counts[b]++
		}
		sort.Ints(counts)
		return float64(counts[9]) / float64(len(data))
	}
	if f := frac(0); f > 0.15 {
		t.Errorf("rowc densest decile fraction %v, want near 0.10 (uniform)", f)
	}
	if f := frac(3); f < 0.2 {
		t.Errorf("dec densest decile fraction %v, want skewed (>0.2)", f)
	}
	if f := frac(2); f < 0.15 {
		t.Errorf("ra densest decile fraction %v, want skewed (>0.15)", f)
	}
}

func TestGenerateAuction(t *testing.T) {
	tab := GenerateAuction(5000, 3)
	if tab.NumCols() != 7 {
		t.Fatalf("cols = %d", tab.NumCols())
	}
	for c, col := range tab.Schema() {
		s := tab.ColumnStats(c)
		if s.Min < col.Min-1e-9 || s.Max > col.Max+1e-9 {
			t.Errorf("column %s out of domain: [%g,%g] not in [%g,%g]",
				col.Name, s.Min, s.Max, col.Min, col.Max)
		}
	}
	// price_diff must be consistent: current - initial (when positive).
	ip := tab.Schema().Index("initial_price")
	cp := tab.Schema().Index("current_price")
	pd := tab.Schema().Index("price_diff")
	for r := 0; r < tab.NumRows(); r++ {
		want := tab.Value(r, cp) - tab.Value(r, ip)
		if want < 0 {
			want = 0
		}
		if want > 1500 {
			want = 1500
		}
		if math.Abs(tab.Value(r, pd)-want) > 1e-9 {
			t.Fatalf("row %d price_diff = %v, want %v", r, tab.Value(r, pd), want)
		}
	}
}

func TestGenerateUniform(t *testing.T) {
	tab := GenerateUniform(3000, 3, 5)
	if tab.NumCols() != 3 || tab.NumRows() != 3000 {
		t.Fatalf("shape = %dx%d", tab.NumRows(), tab.NumCols())
	}
	if tab.Schema()[2].Name != "a2" {
		t.Errorf("attr name = %q", tab.Schema()[2].Name)
	}
	s := tab.ColumnStats(1)
	if math.Abs(s.Mean-50) > 3 {
		t.Errorf("uniform mean = %v, want ~50", s.Mean)
	}
}

func TestGenerateClusters(t *testing.T) {
	specs := []ClusterSpec{
		{Center: []float64{20, 20}, Std: 3, Weight: 1},
		{Center: []float64{80, 80}, Std: 3, Weight: 1},
	}
	tab := GenerateClusters(10000, 2, specs, 0.1, 9)
	// Most points should be near one of the centers.
	near := 0
	for r := 0; r < tab.NumRows(); r++ {
		x, y := tab.Value(r, 0), tab.Value(r, 1)
		if (math.Abs(x-20) < 10 && math.Abs(y-20) < 10) ||
			(math.Abs(x-80) < 10 && math.Abs(y-80) < 10) {
			near++
		}
	}
	if f := float64(near) / float64(tab.NumRows()); f < 0.7 {
		t.Errorf("fraction near centers = %v, want > 0.7", f)
	}
}

func TestGenerateClustersBackgroundOnly(t *testing.T) {
	tab := GenerateClusters(1000, 2, nil, 0, 1)
	// No specs: totalW == 0 forces the uniform path.
	s := tab.ColumnStats(0)
	if math.Abs(s.Mean-50) > 5 {
		t.Errorf("background-only mean = %v, want ~50", s.Mean)
	}
}

func TestItoa(t *testing.T) {
	cases := map[int]string{0: "0", 7: "7", 10: "10", 123: "123"}
	for in, want := range cases {
		if got := itoa(in); got != want {
			t.Errorf("itoa(%d) = %q, want %q", in, got, want)
		}
	}
}

// Property: Subset preserves values under any index permutation.
func TestQuickSubsetPreservesValues(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		tab := GenerateUniform(n, 2, seed)
		k := 1 + rng.Intn(n)
		rows := make([]int, k)
		for i := range rows {
			rows[i] = rng.Intn(n)
		}
		sub := tab.Subset("s", rows)
		for i, r := range rows {
			for c := 0; c < 2; c++ {
				if sub.Value(i, c) != tab.Value(r, c) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: SortedIndex yields non-decreasing values and is a permutation.
func TestQuickSortedIndex(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(100)
		tab := GenerateUniform(n, 1, seed)
		idx := tab.SortedIndex(0)
		if len(idx) != n {
			return false
		}
		seen := make([]bool, n)
		prev := math.Inf(-1)
		for _, r := range idx {
			if r < 0 || r >= n || seen[r] {
				return false
			}
			seen[r] = true
			v := tab.Value(r, 0)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	tab, _ := NewTable("t", smallSchema(), [][]float64{{0, 25, 50, 75, 100}, {0, 0, 0, 0, 0}})
	h := tab.Histogram(0, 4)
	want := []int{1, 1, 1, 2} // 100 clamps into the last bin
	if len(h) != 4 {
		t.Fatalf("bins = %d", len(h))
	}
	for i := range want {
		if h[i] != want[i] {
			t.Errorf("bin %d = %d, want %d", i, h[i], want[i])
		}
	}
	if got := tab.Histogram(0, 0); got != nil {
		t.Error("bins<=0 should return nil")
	}
}

func TestHistogramConstantColumn(t *testing.T) {
	tab, _ := NewTable("t", Schema{{Name: "c", Min: 5, Max: 5}}, [][]float64{{5, 5, 5}})
	h := tab.Histogram(0, 3)
	if h[0] != 3 {
		t.Errorf("constant column histogram = %v", h)
	}
}
