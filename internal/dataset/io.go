package dataset

import (
	"bufio"
	"encoding/csv"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// ErrNonFinite marks imports rejected because a value was NaN or ±Inf.
// The exploration space is built from finite attribute domains; a single
// non-finite value would poison normalization and every index over the
// column, so imports fail fast instead.
var ErrNonFinite = errors.New("dataset: non-finite value")

// This file provides table import/export: CSV for interchange with other
// tools, and a gob-based binary format for fast save/restore of generated
// datasets (regenerating tens of millions of synthetic rows is slower
// than reloading them).

// WriteCSV writes the table as CSV with a header row of column names.
// Names are escaped per RFC 4180 (a name containing commas, quotes or
// newlines is quoted); numeric values never need escaping.
func (t *Table) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	hw := csv.NewWriter(bw)
	if err := hw.Write(t.schema.Names()); err != nil {
		return err
	}
	hw.Flush()
	if err := hw.Error(); err != nil {
		return err
	}
	for r := 0; r < t.rows; r++ {
		for c := range t.cols {
			if c > 0 {
				if err := bw.WriteByte(','); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.FormatFloat(t.cols[c][r], 'g', -1, 64)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV reads a numeric CSV with a header row. When schema is nil, one
// is derived: column names from the header and domains from the observed
// min/max. When a schema is given, its names must match the header and
// its declared domains are kept (useful when a sample of a larger dataset
// must preserve the full dataset's normalized space).
func ReadCSV(r io.Reader, name string, schema Schema) (*Table, error) {
	cr := csv.NewReader(bufio.NewReader(r))
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV header: %w", err)
	}
	names := make([]string, len(header))
	for i, h := range header {
		names[i] = strings.TrimSpace(h)
		if names[i] == "" {
			return nil, fmt.Errorf("dataset: CSV column %d has an empty name", i+1)
		}
	}
	if schema != nil {
		if len(schema) != len(names) {
			return nil, fmt.Errorf("dataset: schema has %d columns, CSV has %d", len(schema), len(names))
		}
		for i := range schema {
			if schema[i].Name != names[i] {
				return nil, fmt.Errorf("dataset: schema column %d is %q, CSV header says %q", i, schema[i].Name, names[i])
			}
		}
	}
	cols := make([][]float64, len(names))
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading CSV: %w", err)
		}
		line++
		if len(rec) != len(names) {
			return nil, fmt.Errorf("dataset: line %d has %d fields, want %d", line, len(rec), len(names))
		}
		for i, s := range rec {
			v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d column %q: %w", line, names[i], err)
			}
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("%w: line %d column %q: %v", ErrNonFinite, line, names[i], v)
			}
			cols[i] = append(cols[i], v)
		}
	}
	if schema == nil {
		schema = make(Schema, len(names))
		for i, n := range names {
			lo, hi := 0.0, 0.0
			if len(cols[i]) > 0 {
				lo, hi = cols[i][0], cols[i][0]
				for _, v := range cols[i] {
					if v < lo {
						lo = v
					}
					if v > hi {
						hi = v
					}
				}
			}
			schema[i] = Column{Name: n, Min: lo, Max: hi}
		}
	}
	return NewTable(name, schema, cols)
}

// binaryTable is the gob wire format. Fields are exported for gob only.
type binaryTable struct {
	Name   string
	Schema Schema
	Cols   [][]float64
}

// binaryMagic guards against feeding arbitrary gob streams to ReadBinary.
const binaryMagic = "AIDEtbl1"

// WriteBinary writes the table in the library's binary format.
func (t *Table) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	enc := gob.NewEncoder(bw)
	if err := enc.Encode(binaryTable{Name: t.name, Schema: t.schema, Cols: t.cols}); err != nil {
		return fmt.Errorf("dataset: encoding table: %w", err)
	}
	return bw.Flush()
}

// ReadBinary reads a table written by WriteBinary.
func ReadBinary(r io.Reader) (*Table, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("dataset: reading magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("dataset: not an AIDE table file (magic %q)", magic)
	}
	var bt binaryTable
	if err := gob.NewDecoder(br).Decode(&bt); err != nil {
		return nil, fmt.Errorf("dataset: decoding table: %w", err)
	}
	for c, col := range bt.Cols {
		name := fmt.Sprintf("#%d", c)
		if c < len(bt.Schema) {
			name = bt.Schema[c].Name
		}
		for r, v := range col {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("%w: row %d column %q: %v", ErrNonFinite, r+1, name, v)
			}
		}
	}
	return NewTable(bt.Name, bt.Schema, bt.Cols)
}
