package dataset

import (
	"strings"
	"testing"
)

// FuzzReadCSV feeds arbitrary bytes to the CSV reader: it must never
// panic, and any table it accepts must survive a write/read round trip.
func FuzzReadCSV(f *testing.F) {
	f.Add("a,b\n1,2\n")
	f.Add("a\n")
	f.Add("")
	f.Add("a,b\n1\n")
	f.Add("x, y \n 1 , 2 \n3,4\n")
	f.Add("a,b\n1e309,2\n")
	f.Add("a,b\nNaN,Inf\n")
	f.Fuzz(func(t *testing.T, data string) {
		tab, err := ReadCSV(strings.NewReader(data), "fuzz", nil)
		if err != nil {
			return
		}
		var buf strings.Builder
		if err := tab.WriteCSV(&buf); err != nil {
			t.Fatalf("accepted table failed to write: %v", err)
		}
		again, err := ReadCSV(strings.NewReader(buf.String()), "fuzz", nil)
		if err != nil {
			t.Fatalf("rendering of accepted table rejected: %v", err)
		}
		if again.NumRows() != tab.NumRows() || again.NumCols() != tab.NumCols() {
			t.Fatalf("round trip changed shape: %dx%d vs %dx%d",
				again.NumRows(), again.NumCols(), tab.NumRows(), tab.NumCols())
		}
	})
}

// FuzzReadBinary must reject arbitrary bytes without panicking.
func FuzzReadBinary(f *testing.F) {
	f.Add([]byte("AIDEtbl1"))
	f.Add([]byte(""))
	f.Add([]byte("AIDEtbl1\x00\x01\x02"))
	f.Fuzz(func(t *testing.T, data []byte) {
		tab, err := ReadBinary(strings.NewReader(string(data)))
		if err == nil && tab == nil {
			t.Fatal("nil table with nil error")
		}
	})
}
