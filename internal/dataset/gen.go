package dataset

import (
	"math"
	"math/rand"
)

// The generators below are deterministic given a seed and reproduce the
// statistical properties AIDE's evaluation depends on: the SDSS table has
// roughly uniform attributes (rowc, colc) and skewed ones (dec, ra,
// field), matching Section 6.1 of the paper; the AuctionMark ITEM table is
// highly skewed with correlated price/bid attributes, matching the user
// study of Section 6.5.

// SDSS PhotoObjAll attribute domains. rowc/colc are CCD pixel coordinates
// (roughly uniform over the frame), ra/dec are sky coordinates
// (concentrated along survey stripes), field/fieldID identify the imaging
// run (skewed toward long runs).
const (
	sdssRowcMax    = 1489
	sdssColcMax    = 2048
	sdssRaMax      = 360
	sdssDecMin     = -25
	sdssDecMax     = 85
	sdssFieldMax   = 1000
	sdssFieldIDMax = 1 << 20
)

// SDSSSchema returns the schema of the synthetic PhotoObjAll table.
func SDSSSchema() Schema {
	return Schema{
		{Name: "rowc", Min: 0, Max: sdssRowcMax},
		{Name: "colc", Min: 0, Max: sdssColcMax},
		{Name: "ra", Min: 0, Max: sdssRaMax},
		{Name: "dec", Min: sdssDecMin, Max: sdssDecMax},
		{Name: "field", Min: 0, Max: sdssFieldMax},
		{Name: "fieldID", Min: 0, Max: sdssFieldIDMax},
	}
}

// GenerateSDSS builds a synthetic PhotoObjAll table with n rows.
//
// Distributions:
//   - rowc, colc: uniform over the CCD frame (the paper's default "dense
//     exploration space on rowc and colc").
//   - ra: mixture of survey stripes — Gaussian bumps at fixed right
//     ascensions plus a uniform background (skewed).
//   - dec: Gaussian concentration around the survey's central declination
//     band, clipped to the domain (skewed).
//   - field: truncated exponential — early fields of a run are far more
//     common (skewed).
//   - fieldID: Zipf-like over the id space (skewed).
func GenerateSDSS(n int, seed int64) *Table {
	rng := rand.New(rand.NewSource(seed))
	rowc := make([]float64, n)
	colc := make([]float64, n)
	ra := make([]float64, n)
	dec := make([]float64, n)
	field := make([]float64, n)
	fieldID := make([]float64, n)

	// Stripe centers for the ra mixture, mimicking SDSS imaging stripes.
	stripes := []float64{30, 120, 150, 185, 220, 330}
	zipf := rand.NewZipf(rng, 1.3, 8, sdssFieldIDMax-1)

	for i := 0; i < n; i++ {
		rowc[i] = rng.Float64() * sdssRowcMax
		colc[i] = rng.Float64() * sdssColcMax

		if rng.Float64() < 0.85 {
			c := stripes[rng.Intn(len(stripes))]
			ra[i] = clamp(c+rng.NormFloat64()*12, 0, sdssRaMax)
		} else {
			ra[i] = rng.Float64() * sdssRaMax
		}

		dec[i] = clamp(25+rng.NormFloat64()*18, sdssDecMin, sdssDecMax)

		f := -math.Log(1-rng.Float64()) * (sdssFieldMax / 5)
		field[i] = clamp(f, 0, sdssFieldMax)

		fieldID[i] = float64(zipf.Uint64())
	}

	cols := [][]float64{rowc, colc, ra, dec, field, fieldID}
	t, err := NewTable("PhotoObjAll", SDSSSchema(), cols)
	if err != nil {
		panic(err) // shapes are correct by construction
	}
	return t
}

// AuctionMark ITEM attribute domains (Section 6.5: seven attributes).
const (
	aucInitialPriceMax = 1000
	aucCurrentPriceMax = 2000
	aucNumBidsMax      = 300
	aucNumCommentsMax  = 60
	aucNumDaysMax      = 30
	aucPriceDiffMax    = 1500
	aucDaysToCloseMax  = 14
)

// AuctionSchema returns the schema of the synthetic AuctionMark ITEM
// table: initial price, current price, number of bids, number of
// comments, number of days the item has been in auction, difference
// between initial and current price, and days until the auction closes.
func AuctionSchema() Schema {
	return Schema{
		{Name: "initial_price", Min: 0, Max: aucInitialPriceMax},
		{Name: "current_price", Min: 0, Max: aucCurrentPriceMax},
		{Name: "num_bids", Min: 0, Max: aucNumBidsMax},
		{Name: "num_comments", Min: 0, Max: aucNumCommentsMax},
		{Name: "days_in_auction", Min: 0, Max: aucNumDaysMax},
		{Name: "price_diff", Min: 0, Max: aucPriceDiffMax},
		{Name: "days_to_close", Min: 0, Max: aucDaysToCloseMax},
	}
}

// GenerateAuction builds a synthetic ITEM table with n rows. Prices follow
// a log-normal (most items cheap, a long expensive tail); bids and
// comments are bursty and correlated with item popularity; the derived
// price_diff column is consistent with the two price columns. The result
// is a highly skewed exploration space whose dense regions sit at low
// prices and low bid counts, matching the user-study characteristics.
func GenerateAuction(n int, seed int64) *Table {
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder("ITEM", AuctionSchema())
	for i := 0; i < n; i++ {
		initial := clamp(math.Exp(3+rng.NormFloat64()*1.1), 0, aucInitialPriceMax)
		// Popularity drives bids, comments, and price growth.
		popularity := rng.Float64()
		bids := clamp(math.Floor(-math.Log(1-rng.Float64())*30*popularity), 0, aucNumBidsMax)
		growth := 1 + 0.02*bids + math.Abs(rng.NormFloat64())*0.1
		current := clamp(initial*growth, 0, aucCurrentPriceMax)
		comments := clamp(math.Floor(bids*0.15+-math.Log(1-rng.Float64())*2), 0, aucNumCommentsMax)
		daysIn := clamp(math.Floor(rng.Float64()*aucNumDaysMax), 0, aucNumDaysMax)
		diff := clamp(current-initial, 0, aucPriceDiffMax)
		toClose := clamp(math.Floor(-math.Log(1-rng.Float64())*4), 0, aucDaysToCloseMax)
		b.Add(initial, current, bids, comments, daysIn, diff, toClose)
	}
	return b.Build()
}

// GenerateUniform builds a table with d attributes named a0..a(d-1), each
// uniform over [0,100]. Useful for controlled tests where analytic
// expectations are easy.
func GenerateUniform(n, d int, seed int64) *Table {
	rng := rand.New(rand.NewSource(seed))
	schema := make(Schema, d)
	cols := make([][]float64, d)
	for j := 0; j < d; j++ {
		schema[j] = Column{Name: attrName(j), Min: 0, Max: 100}
		cols[j] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			cols[j][i] = rng.Float64() * 100
		}
	}
	t, err := NewTable("uniform", schema, cols)
	if err != nil {
		panic(err)
	}
	return t
}

// ClusterSpec describes one Gaussian cluster for GenerateClusters.
type ClusterSpec struct {
	Center []float64 // cluster mean per dimension, in [0,100]
	Std    float64   // per-dimension standard deviation
	Weight float64   // relative share of rows
}

// GenerateClusters builds a table with d attributes (domains [0,100])
// drawn from a mixture of Gaussian clusters plus a uniform background
// fraction. It produces the skewed, dense-region-dominated spaces used to
// evaluate the clustering-based discovery optimization (Section 3.1).
func GenerateClusters(n, d int, specs []ClusterSpec, background float64, seed int64) *Table {
	rng := rand.New(rand.NewSource(seed))
	schema := make(Schema, d)
	cols := make([][]float64, d)
	for j := 0; j < d; j++ {
		schema[j] = Column{Name: attrName(j), Min: 0, Max: 100}
		cols[j] = make([]float64, n)
	}
	var totalW float64
	for _, s := range specs {
		totalW += s.Weight
	}
	for i := 0; i < n; i++ {
		if rng.Float64() < background || totalW == 0 {
			for j := 0; j < d; j++ {
				cols[j][i] = rng.Float64() * 100
			}
			continue
		}
		// Pick a cluster by weight.
		pick := rng.Float64() * totalW
		var spec ClusterSpec
		for _, s := range specs {
			pick -= s.Weight
			spec = s
			if pick <= 0 {
				break
			}
		}
		for j := 0; j < d; j++ {
			c := 50.0
			if j < len(spec.Center) {
				c = spec.Center[j]
			}
			cols[j][i] = clamp(c+rng.NormFloat64()*spec.Std, 0, 100)
		}
	}
	t, err := NewTable("clusters", schema, cols)
	if err != nil {
		panic(err)
	}
	return t
}

func attrName(j int) string {
	return "a" + itoa(j)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
