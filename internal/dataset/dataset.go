// Package dataset provides the in-memory tables AIDE explores and
// deterministic synthetic generators standing in for the paper's SDSS
// PhotoObjAll and AuctionMark ITEM datasets.
//
// Tables are stored column-major: each attribute is one contiguous
// []float64. This mirrors the access pattern of AIDE's sample-extraction
// queries, which touch only the handful of exploration attributes (the
// paper always runs with a covering index so queries never read full
// rows).
package dataset

import (
	"fmt"
	"math"
	"sort"

	"github.com/explore-by-example/aide/internal/geom"
)

// Column describes one attribute of a table.
type Column struct {
	// Name is the attribute name, e.g. "rowc".
	Name string
	// Min and Max are the attribute's domain bounds used for
	// normalization. They are fixed per schema (not recomputed from data)
	// so that sampled datasets keep the same normalized space.
	Min, Max float64
}

// Schema is an ordered list of columns.
type Schema []Column

// Index returns the position of the named column, or -1.
func (s Schema) Index(name string) int {
	for i, c := range s {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Names returns the column names in order.
func (s Schema) Names() []string {
	out := make([]string, len(s))
	for i, c := range s {
		out[i] = c.Name
	}
	return out
}

// Table is an immutable column-major table. Build one with NewTable or a
// Builder; after construction the data must not be mutated (the query
// engine builds indexes over it).
type Table struct {
	name   string
	schema Schema
	cols   [][]float64
	rows   int
}

// NewTable constructs a table from column-major data. Every column slice
// must have the same length. The column data is used directly (not
// copied); callers must not mutate it afterwards.
func NewTable(name string, schema Schema, cols [][]float64) (*Table, error) {
	if len(cols) != len(schema) {
		return nil, fmt.Errorf("dataset: %d columns for %d schema entries", len(cols), len(schema))
	}
	rows := 0
	if len(cols) > 0 {
		rows = len(cols[0])
	}
	for i, c := range cols {
		if len(c) != rows {
			return nil, fmt.Errorf("dataset: column %q has %d rows, want %d", schema[i].Name, len(c), rows)
		}
	}
	return &Table{name: name, schema: schema, cols: cols, rows: rows}, nil
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema.
func (t *Table) Schema() Schema { return t.schema }

// NumRows returns the row count.
func (t *Table) NumRows() int { return t.rows }

// NumCols returns the column count.
func (t *Table) NumCols() int { return len(t.cols) }

// Value returns the value at (row, col).
func (t *Table) Value(row, col int) float64 { return t.cols[col][row] }

// Col returns the backing slice for a column. Callers must treat it as
// read-only.
func (t *Table) Col(col int) []float64 { return t.cols[col] }

// Row materializes one row as a point over all columns.
func (t *Table) Row(row int) geom.Point {
	p := make(geom.Point, len(t.cols))
	for c := range t.cols {
		p[c] = t.cols[c][row]
	}
	return p
}

// Project materializes one row restricted to the given column indexes.
func (t *Table) Project(row int, cols []int) geom.Point {
	p := make(geom.Point, len(cols))
	for i, c := range cols {
		p[i] = t.cols[c][row]
	}
	return p
}

// Normalizer builds a geom.Normalizer over the given columns using the
// schema's declared domains.
func (t *Table) Normalizer(cols []int) (*geom.Normalizer, error) {
	mins := make([]float64, len(cols))
	maxs := make([]float64, len(cols))
	for i, c := range cols {
		if c < 0 || c >= len(t.schema) {
			return nil, fmt.Errorf("dataset: column index %d out of range", c)
		}
		mins[i] = t.schema[c].Min
		maxs[i] = t.schema[c].Max
	}
	return geom.NewNormalizer(mins, maxs)
}

// ColumnIndexes resolves column names to indexes, failing on unknown
// names.
func (t *Table) ColumnIndexes(names []string) ([]int, error) {
	out := make([]int, len(names))
	for i, n := range names {
		idx := t.schema.Index(n)
		if idx < 0 {
			return nil, fmt.Errorf("dataset: unknown column %q (have %v)", n, t.schema.Names())
		}
		out[i] = idx
	}
	return out, nil
}

// Subset returns a new table containing the given rows (in order). Used by
// the engine's sampled-dataset support (Section 5.2 of the paper).
func (t *Table) Subset(name string, rows []int) *Table {
	cols := make([][]float64, len(t.cols))
	for c := range t.cols {
		col := make([]float64, len(rows))
		src := t.cols[c]
		for i, r := range rows {
			col[i] = src[r]
		}
		cols[c] = col
	}
	return &Table{name: name, schema: t.schema, cols: cols, rows: len(rows)}
}

// Stats summarizes one column: min, max, mean, and standard deviation of
// the actual data (as opposed to the declared domain).
type Stats struct {
	Min, Max, Mean, Std float64
}

// ColumnStats computes Stats for a column. It returns zeros for an empty
// table.
func (t *Table) ColumnStats(col int) Stats {
	data := t.cols[col]
	if len(data) == 0 {
		return Stats{}
	}
	s := Stats{Min: data[0], Max: data[0]}
	var sum, sumSq float64
	for _, v := range data {
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
		sum += v
		sumSq += v * v
	}
	n := float64(len(data))
	s.Mean = sum / n
	variance := sumSq/n - s.Mean*s.Mean
	if variance > 0 {
		s.Std = math.Sqrt(variance)
	}
	return s
}

// Builder accumulates rows and produces a Table. It is convenient for
// generators and tests; hot paths should construct columns directly.
type Builder struct {
	name   string
	schema Schema
	cols   [][]float64
}

// NewBuilder creates a builder for the given schema.
func NewBuilder(name string, schema Schema) *Builder {
	cols := make([][]float64, len(schema))
	return &Builder{name: name, schema: schema, cols: cols}
}

// Add appends one row. It panics if the value count mismatches the schema;
// that is a programming error, not a data error.
func (b *Builder) Add(values ...float64) {
	if len(values) != len(b.schema) {
		panic(fmt.Sprintf("dataset: Add got %d values for %d columns", len(values), len(b.schema)))
	}
	for i, v := range values {
		b.cols[i] = append(b.cols[i], v)
	}
}

// Build finalizes the table. The builder must not be reused afterwards.
func (b *Builder) Build() *Table {
	t, err := NewTable(b.name, b.schema, b.cols)
	if err != nil {
		// NewTable only fails on shape mismatches, which Add prevents.
		panic(err)
	}
	return t
}

// SortedIndex returns row indexes ordered by ascending column value, the
// building block for the engine's per-attribute sorted (covering)
// indexes.
func (t *Table) SortedIndex(col int) []int {
	idx := make([]int, t.rows)
	for i := range idx {
		idx[i] = i
	}
	data := t.cols[col]
	sort.Slice(idx, func(a, b int) bool { return data[idx[a]] < data[idx[b]] })
	return idx
}

// Histogram counts the column's values in bins equal-width buckets over
// the declared domain. Values outside the domain clamp into the edge
// buckets; a degenerate (constant) domain puts everything in bucket 0.
// Useful for skew inspection and terminal visualization.
func (t *Table) Histogram(col, bins int) []int {
	if bins <= 0 {
		return nil
	}
	out := make([]int, bins)
	c := t.schema[col]
	width := (c.Max - c.Min) / float64(bins)
	for _, v := range t.cols[col] {
		b := 0
		if width > 0 {
			b = int((v - c.Min) / width)
		}
		if b < 0 {
			b = 0
		}
		if b >= bins {
			b = bins - 1
		}
		out[b]++
	}
	return out
}
