package faultinject

import (
	"errors"
	"testing"
	"time"
)

func TestInactiveHooksAreNoOps(t *testing.T) {
	Deactivate()
	if Active() {
		t.Fatal("no injector should be active")
	}
	if err := Err("engine.scan"); err != nil {
		t.Fatalf("Err with no injector = %v", err)
	}
	Latency("engine.scan")
	Panic("engine.scan")
	if n, short := ShortWrite("durable.append", 100); short || n != 100 {
		t.Fatalf("ShortWrite with no injector = (%d, %v)", n, short)
	}
}

func TestSeededDecisionsAreReproducible(t *testing.T) {
	run := func() []bool {
		inj := New(Config{Seed: 42, ErrorRate: 0.5})
		Activate(inj)
		defer Deactivate()
		out := make([]bool, 64)
		for i := range out {
			out[i] = Err("p") != nil
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs between identically seeded runs", i)
		}
	}
	any := false
	for _, v := range a {
		any = any || v
	}
	if !any {
		t.Error("rate 0.5 over 64 draws fired nothing")
	}
}

func TestErrReturnsErrInjected(t *testing.T) {
	inj := New(Config{Seed: 1, ErrorRate: 1})
	Activate(inj)
	defer Deactivate()
	if err := Err("p"); !errors.Is(err, ErrInjected) {
		t.Fatalf("Err = %v, want ErrInjected", err)
	}
	if errs, _, _, _ := inj.Counts(); errs != 1 {
		t.Errorf("error count = %d", errs)
	}
}

func TestPanicBudget(t *testing.T) {
	inj := New(Config{Seed: 1, PanicBudget: 2})
	Activate(inj)
	defer Deactivate()
	fired := 0
	for i := 0; i < 5; i++ {
		func() {
			defer func() {
				if recover() != nil {
					fired++
				}
			}()
			Panic("p")
		}()
	}
	if fired != 2 {
		t.Fatalf("panics fired = %d, want 2 (budget)", fired)
	}
}

func TestPointFilter(t *testing.T) {
	inj := New(Config{Seed: 1, ErrorRate: 1, Points: []string{"only.this"}})
	Activate(inj)
	defer Deactivate()
	if err := Err("other.point"); err != nil {
		t.Fatalf("filtered point fired: %v", err)
	}
	if err := Err("only.this"); err == nil {
		t.Fatal("enabled point did not fire")
	}
}

func TestShortWriteTruncates(t *testing.T) {
	inj := New(Config{Seed: 7, PartialRate: 1})
	Activate(inj)
	defer Deactivate()
	n, short := ShortWrite("p", 50)
	if !short {
		t.Fatal("rate 1 did not truncate")
	}
	if n < 0 || n >= 50 {
		t.Fatalf("truncated length %d out of [0, 50)", n)
	}
}

func TestLatencySleeps(t *testing.T) {
	inj := New(Config{Seed: 1, LatencyRate: 1, Latency: 10 * time.Millisecond})
	Activate(inj)
	defer Deactivate()
	start := time.Now()
	Latency("p")
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Fatalf("Latency slept %v, want >= 10ms", d)
	}
}
