package faultinject

import (
	"errors"
	"math/rand"
	"testing"
	"time"
)

func TestInactiveHooksAreNoOps(t *testing.T) {
	Deactivate()
	if Active() {
		t.Fatal("no injector should be active")
	}
	if err := Err("engine.scan"); err != nil {
		t.Fatalf("Err with no injector = %v", err)
	}
	Latency("engine.scan")
	Panic("engine.scan")
	if n, short := ShortWrite("durable.append", 100); short || n != 100 {
		t.Fatalf("ShortWrite with no injector = (%d, %v)", n, short)
	}
}

func TestSeededDecisionsAreReproducible(t *testing.T) {
	run := func() []bool {
		inj := New(Config{Seed: 42, ErrorRate: 0.5})
		Activate(inj)
		defer Deactivate()
		out := make([]bool, 64)
		for i := range out {
			out[i] = Err("p") != nil
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs between identically seeded runs", i)
		}
	}
	any := false
	for _, v := range a {
		any = any || v
	}
	if !any {
		t.Error("rate 0.5 over 64 draws fired nothing")
	}
}

func TestErrReturnsErrInjected(t *testing.T) {
	inj := New(Config{Seed: 1, ErrorRate: 1})
	Activate(inj)
	defer Deactivate()
	if err := Err("p"); !errors.Is(err, ErrInjected) {
		t.Fatalf("Err = %v, want ErrInjected", err)
	}
	if errs, _, _, _ := inj.Counts(); errs != 1 {
		t.Errorf("error count = %d", errs)
	}
}

func TestPanicBudget(t *testing.T) {
	inj := New(Config{Seed: 1, PanicBudget: 2})
	Activate(inj)
	defer Deactivate()
	fired := 0
	for i := 0; i < 5; i++ {
		func() {
			defer func() {
				if recover() != nil {
					fired++
				}
			}()
			Panic("p")
		}()
	}
	if fired != 2 {
		t.Fatalf("panics fired = %d, want 2 (budget)", fired)
	}
}

func TestPointFilter(t *testing.T) {
	inj := New(Config{Seed: 1, ErrorRate: 1, Points: []string{"only.this"}})
	Activate(inj)
	defer Deactivate()
	if err := Err("other.point"); err != nil {
		t.Fatalf("filtered point fired: %v", err)
	}
	if err := Err("only.this"); err == nil {
		t.Fatal("enabled point did not fire")
	}
}

func TestShortWriteTruncates(t *testing.T) {
	inj := New(Config{Seed: 7, PartialRate: 1})
	Activate(inj)
	defer Deactivate()
	n, short := ShortWrite("p", 50)
	if !short {
		t.Fatal("rate 1 did not truncate")
	}
	if n < 0 || n >= 50 {
		t.Fatalf("truncated length %d out of [0, 50)", n)
	}
}

func TestPointAtFormat(t *testing.T) {
	if got := PointAt("engine.shard.scan", 3); got != "engine.shard.scan[3]" {
		t.Fatalf("PointAt = %q", got)
	}
	if got := PointAt("p", 0); got != "p[0]" {
		t.Fatalf("PointAt = %q", got)
	}
}

func TestDeriveIndependentStreams(t *testing.T) {
	// Derive is a pure function of (seed, point): same inputs pin the
	// same stream seed, different shard indexes pin different ones.
	const seed = 42
	points := []string{
		PointAt("engine.shard.scan", 0),
		PointAt("engine.shard.scan", 1),
		PointAt("engine.shard.scan", 2),
		PointAt("engine.shard.sample", 0),
	}
	seen := map[int64]string{}
	for _, p := range points {
		d := Derive(seed, p)
		if d2 := Derive(seed, p); d2 != d {
			t.Fatalf("Derive(%d, %q) unstable: %d vs %d", seed, p, d, d2)
		}
		if prev, dup := seen[d]; dup {
			t.Fatalf("Derive collision: %q and %q both -> %d", prev, p, d)
		}
		seen[d] = p
	}
	if Derive(seed, points[0]) == Derive(seed+1, points[0]) {
		t.Fatal("Derive ignores the seed")
	}
}

func TestPerPointStreamsArePinnedToDerivedSeeds(t *testing.T) {
	// Each point's decision sequence must be exactly the Float64 stream
	// of rand seeded with Derive(seed, point) — the contract that lets a
	// future multi-process shard reproduce its own stream from
	// (AIDE_FAULT_SEED, shard index) alone — and interleaving calls to
	// other points must not perturb it.
	const seed, rate = 7, 0.5
	inj := New(Config{Seed: seed, ErrorRate: rate})
	Activate(inj)
	defer Deactivate()
	pts := []string{PointAt("engine.shard.scan", 0), PointAt("engine.shard.scan", 1)}
	got := map[string][]bool{}
	for i := 0; i < 32; i++ {
		for _, p := range pts { // interleave the two streams
			got[p] = append(got[p], Err(p) != nil)
		}
	}
	for _, p := range pts {
		ref := rand.New(rand.NewSource(Derive(seed, p)))
		for i, fired := range got[p] {
			if want := ref.Float64() < rate; fired != want {
				t.Fatalf("point %q decision %d = %v, want %v (stream not pinned to Derive seed)", p, i, fired, want)
			}
		}
	}
	if slicesEqual(got[pts[0]], got[pts[1]]) {
		t.Fatal("distinct shard indexes produced identical 32-draw sequences")
	}
}

func slicesEqual(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestIndexedPointSelectors(t *testing.T) {
	// A base-name selector enables every indexed instance; an indexed
	// selector enables exactly that instance.
	inj := New(Config{Seed: 1, ErrorRate: 1, Points: []string{"engine.shard.scan"}})
	Activate(inj)
	if err := Err(PointAt("engine.shard.scan", 2)); err == nil {
		t.Fatal("base selector did not enable indexed instance")
	}
	if err := Err(PointAt("engine.shard.sample", 0)); err != nil {
		t.Fatalf("unselected point fired: %v", err)
	}
	Deactivate()

	inj = New(Config{Seed: 1, ErrorRate: 1, Points: []string{PointAt("engine.shard.scan", 1)}})
	Activate(inj)
	defer Deactivate()
	if err := Err(PointAt("engine.shard.scan", 1)); err == nil {
		t.Fatal("indexed selector did not enable its instance")
	}
	if err := Err(PointAt("engine.shard.scan", 0)); err != nil {
		t.Fatalf("other shard index fired under indexed selector: %v", err)
	}
}

func TestLatencySleeps(t *testing.T) {
	inj := New(Config{Seed: 1, LatencyRate: 1, Latency: 10 * time.Millisecond})
	Activate(inj)
	defer Deactivate()
	start := time.Now()
	Latency("p")
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Fatalf("Latency slept %v, want >= 10ms", d)
	}
}
