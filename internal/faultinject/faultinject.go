// Package faultinject is a deterministic, seed-driven fault injector
// for resilience testing. Hooks are compiled into the engine, durable
// and service layers permanently — no build tags — but cost a single
// atomic pointer load while no injector is active, which is the
// production state. Chaos tests activate an Injector (seeded so a run is
// reproducible for a given AIDE_FAULT_SEED) and the hooks start firing:
//
//   - Err(point): returns a synthetic error with probability ErrorRate.
//   - Latency(point): sleeps Latency with probability LatencyRate.
//   - Panic(point): panics, at most PanicBudget times per injector.
//   - ShortWrite(point, n): asks for a truncated write of k < n bytes
//     with probability PartialRate (simulating a torn disk write).
//
// Points are dotted path names ("engine.scan", "durable.append",
// "service.request", "session.iterate"). A non-empty Config.Points set
// restricts injection to the listed points; an empty set enables every
// point. Every fired fault increments aide_faults_injected_total plus a
// per-kind counter (faultinject.<kind>).
//
// Determinism caveat: decisions are drawn from one seeded PRNG in call
// order, so a single-goroutine sequence of hook calls is exactly
// reproducible. When several goroutines hit hooks concurrently the
// interleaving — and therefore which call receives which fault — may
// vary between runs; the injected fault *kinds* and totals remain
// seed-driven, and none of the faults may change computed results (that
// is what the chaos tests assert).
package faultinject

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"github.com/explore-by-example/aide/internal/obs"
)

var (
	obsFaults       = obs.GetCounter("aide_faults_injected_total")
	obsFaultErrs    = obs.GetCounter("faultinject.errors")
	obsFaultLatency = obs.GetCounter("faultinject.latencies")
	obsFaultPanics  = obs.GetCounter("faultinject.panics")
	obsFaultShort   = obs.GetCounter("faultinject.short_writes")
)

// ErrInjected is the error returned by Err hooks; callers can branch on
// it with errors.Is when a test needs to tell injected failures apart
// from real ones.
var ErrInjected = errors.New("faultinject: injected error")

// Config tunes an Injector. All rates are probabilities in [0, 1].
type Config struct {
	// Seed drives every injection decision.
	Seed int64
	// ErrorRate is the probability Err returns ErrInjected.
	ErrorRate float64
	// LatencyRate is the probability Latency sleeps, and Latency how long.
	LatencyRate float64
	Latency     time.Duration
	// PanicBudget caps how many times Panic fires over the injector's
	// lifetime (0: never). Each Panic call with remaining budget fires.
	PanicBudget int
	// PartialRate is the probability ShortWrite truncates.
	PartialRate float64
	// Points, when non-empty, restricts injection to these point names.
	Points []string
}

// Injector draws fault decisions from a seeded PRNG.
type Injector struct {
	mu          sync.Mutex
	rng         *rand.Rand
	cfg         Config
	panicsLeft  int
	points      map[string]bool
	errFired    atomic.Int64
	panicFired  atomic.Int64
	latencyHits atomic.Int64
	shortHits   atomic.Int64
}

// New builds an injector from cfg. It is inert until Activate.
func New(cfg Config) *Injector {
	inj := &Injector{
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		cfg:        cfg,
		panicsLeft: cfg.PanicBudget,
	}
	if len(cfg.Points) > 0 {
		inj.points = make(map[string]bool, len(cfg.Points))
		for _, p := range cfg.Points {
			inj.points[p] = true
		}
	}
	return inj
}

// Counts reports how many faults of each kind this injector fired.
func (inj *Injector) Counts() (errs, panics, latencies, shortWrites int64) {
	return inj.errFired.Load(), inj.panicFired.Load(),
		inj.latencyHits.Load(), inj.shortHits.Load()
}

// active is the process-wide injector; nil (the default) disables every
// hook at the cost of one atomic load.
var active atomic.Pointer[Injector]

// Activate installs inj as the process-wide injector. Pass the same
// injector to inspect its counters afterwards.
func Activate(inj *Injector) { active.Store(inj) }

// Deactivate removes the active injector, returning hooks to their
// zero-cost state. Tests must call it (defer) so injectors do not leak
// across tests.
func Deactivate() { active.Store(nil) }

// Active reports whether an injector is installed.
func Active() bool { return active.Load() != nil }

func (inj *Injector) enabled(point string) bool {
	return inj.points == nil || inj.points[point]
}

// roll returns true with probability rate, drawing from the seeded rng.
func (inj *Injector) roll(rate float64) bool {
	if rate <= 0 {
		return false
	}
	inj.mu.Lock()
	ok := inj.rng.Float64() < rate
	inj.mu.Unlock()
	return ok
}

// Err returns ErrInjected with the configured probability, else nil.
func Err(point string) error {
	inj := active.Load()
	if inj == nil || !inj.enabled(point) {
		return nil
	}
	if !inj.roll(inj.cfg.ErrorRate) {
		return nil
	}
	inj.errFired.Add(1)
	obsFaults.Inc()
	obsFaultErrs.Inc()
	return ErrInjected
}

// Latency sleeps for the configured duration with the configured
// probability.
func Latency(point string) {
	inj := active.Load()
	if inj == nil || !inj.enabled(point) {
		return
	}
	if !inj.roll(inj.cfg.LatencyRate) {
		return
	}
	inj.latencyHits.Add(1)
	obsFaults.Inc()
	obsFaultLatency.Inc()
	time.Sleep(inj.cfg.Latency)
}

// Panic panics with an identifiable value while the injector has panic
// budget left.
func Panic(point string) {
	inj := active.Load()
	if inj == nil || !inj.enabled(point) {
		return
	}
	inj.mu.Lock()
	fire := inj.panicsLeft > 0
	if fire {
		inj.panicsLeft--
	}
	inj.mu.Unlock()
	if !fire {
		return
	}
	inj.panicFired.Add(1)
	obsFaults.Inc()
	obsFaultPanics.Inc()
	panic("faultinject: injected panic at " + point)
}

// ShortWrite reports whether a write of n bytes should be truncated and,
// if so, to how many bytes (strictly fewer than n). Callers simulate a
// torn write by writing only the returned prefix and failing the
// operation.
func ShortWrite(point string, n int) (int, bool) {
	inj := active.Load()
	if inj == nil || !inj.enabled(point) || n <= 0 {
		return n, false
	}
	if !inj.roll(inj.cfg.PartialRate) {
		return n, false
	}
	inj.mu.Lock()
	k := inj.rng.Intn(n)
	inj.mu.Unlock()
	inj.shortHits.Add(1)
	obsFaults.Inc()
	obsFaultShort.Inc()
	return k, true
}
