// Package faultinject is a deterministic, seed-driven fault injector
// for resilience testing. Hooks are compiled into the engine, durable
// and service layers permanently — no build tags — but cost a single
// atomic pointer load while no injector is active, which is the
// production state. Chaos tests activate an Injector (seeded so a run is
// reproducible for a given AIDE_FAULT_SEED) and the hooks start firing:
//
//   - Err(point): returns a synthetic error with probability ErrorRate.
//   - Latency(point): sleeps Latency with probability LatencyRate.
//   - Panic(point): panics, at most PanicBudget times per injector.
//   - ShortWrite(point, n): asks for a truncated write of k < n bytes
//     with probability PartialRate (simulating a torn disk write).
//
// Points are dotted path names ("engine.scan", "durable.append",
// "service.request", "session.iterate"). Indexed instances of a point —
// one per shard, say — are named with PointAt ("engine.shard.scan[3]").
// A non-empty Config.Points set restricts injection to the listed
// points; an entry matches either the exact name or, for indexed
// points, the base name before the '[' (so "engine.shard.scan" selects
// every shard and "engine.shard.scan[1]" exactly one). An empty set
// enables every point. Every fired fault increments
// aide_faults_injected_total plus a per-kind counter
// (faultinject.<kind>).
//
// Determinism: each point name owns its own PRNG stream, seeded by
// Derive(Config.Seed, point), so the sequence of decisions at one point
// depends only on the seed and how many hook calls that point has made
// — not on how calls at different points interleave. A fixed
// per-point call order (the engine's sequential per-shard attempt
// discipline) is therefore exactly reproducible even under concurrent
// scatter, and independent shards draw independent streams from one
// AIDE_FAULT_SEED. None of the injected faults may change computed
// results (that is what the chaos tests assert).
package faultinject

import (
	"errors"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/explore-by-example/aide/internal/obs"
)

var (
	obsFaults       = obs.GetCounter("aide_faults_injected_total")
	obsFaultErrs    = obs.GetCounter("faultinject.errors")
	obsFaultLatency = obs.GetCounter("faultinject.latencies")
	obsFaultPanics  = obs.GetCounter("faultinject.panics")
	obsFaultShort   = obs.GetCounter("faultinject.short_writes")
)

// ErrInjected is the error returned by Err hooks; callers can branch on
// it with errors.Is when a test needs to tell injected failures apart
// from real ones.
var ErrInjected = errors.New("faultinject: injected error")

// Network-class fault points for the shardrpc remote-shard transport,
// declared here so chaos harnesses can select them without importing
// the transport. Like the engine.shard.* points they are indexed per
// shard with PointAt, so each shard's wire faults draw an independent
// derived stream from one AIDE_FAULT_SEED:
//
//   - FaultShardRPCDial: Err = connection refused (worker down),
//     Latency = slow connect.
//   - FaultShardRPCWrite: ShortWrite = torn request frame (the
//     connection is closed mid-frame), Err = send failure.
//   - FaultShardRPCRead: Err = mid-stream disconnect while awaiting or
//     decoding the response, Latency = response latency spike.
const (
	FaultShardRPCDial  = "shardrpc.dial"
	FaultShardRPCRead  = "shardrpc.read"
	FaultShardRPCWrite = "shardrpc.write"
)

// Config tunes an Injector. All rates are probabilities in [0, 1].
type Config struct {
	// Seed drives every injection decision.
	Seed int64
	// ErrorRate is the probability Err returns ErrInjected.
	ErrorRate float64
	// LatencyRate is the probability Latency sleeps, and Latency how long.
	LatencyRate float64
	Latency     time.Duration
	// PanicBudget caps how many times Panic fires over the injector's
	// lifetime (0: never). Each Panic call with remaining budget fires.
	PanicBudget int
	// PartialRate is the probability ShortWrite truncates.
	PartialRate float64
	// Points, when non-empty, restricts injection to these point names.
	Points []string
}

// Injector draws fault decisions from per-point seeded PRNG streams.
type Injector struct {
	mu          sync.Mutex
	streams     map[string]*rand.Rand // lazily created, seeded Derive(Seed, point)
	cfg         Config
	panicsLeft  int
	points      map[string]bool
	errFired    atomic.Int64
	panicFired  atomic.Int64
	latencyHits atomic.Int64
	shortHits   atomic.Int64
}

// New builds an injector from cfg. It is inert until Activate.
func New(cfg Config) *Injector {
	inj := &Injector{
		streams:    make(map[string]*rand.Rand),
		cfg:        cfg,
		panicsLeft: cfg.PanicBudget,
	}
	if len(cfg.Points) > 0 {
		inj.points = make(map[string]bool, len(cfg.Points))
		for _, p := range cfg.Points {
			inj.points[p] = true
		}
	}
	return inj
}

// PointAt names the index'th instance of a per-instance fault point:
// PointAt("engine.shard.scan", 3) == "engine.shard.scan[3]". Each
// instance owns an independent decision stream (see Derive), and the
// Points selector matches either the instance or its base name.
func PointAt(point string, index int) string {
	return point + "[" + strconv.Itoa(index) + "]"
}

// Derive mixes a point name into a base seed (FNV-1a over the seed
// bytes then the name), yielding the independent deterministic stream
// seed that point's PRNG uses. Exported so tests can pin the derived
// sequences and so future multi-process shards can reproduce a shard's
// stream from (AIDE_FAULT_SEED, shard index) alone.
func Derive(seed int64, point string) int64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < 8; i++ {
		h ^= uint64(seed >> (8 * i) & 0xff)
		h *= prime64
	}
	for i := 0; i < len(point); i++ {
		h ^= uint64(point[i])
		h *= prime64
	}
	return int64(h)
}

// stream returns the point's PRNG, creating it on first use. Callers
// must hold inj.mu.
func (inj *Injector) stream(point string) *rand.Rand {
	r := inj.streams[point]
	if r == nil {
		r = rand.New(rand.NewSource(Derive(inj.cfg.Seed, point)))
		inj.streams[point] = r
	}
	return r
}

// Counts reports how many faults of each kind this injector fired.
func (inj *Injector) Counts() (errs, panics, latencies, shortWrites int64) {
	return inj.errFired.Load(), inj.panicFired.Load(),
		inj.latencyHits.Load(), inj.shortHits.Load()
}

// active is the process-wide injector; nil (the default) disables every
// hook at the cost of one atomic load.
var active atomic.Pointer[Injector]

// Activate installs inj as the process-wide injector. Pass the same
// injector to inspect its counters afterwards.
func Activate(inj *Injector) { active.Store(inj) }

// Deactivate removes the active injector, returning hooks to their
// zero-cost state. Tests must call it (defer) so injectors do not leak
// across tests.
func Deactivate() { active.Store(nil) }

// Active reports whether an injector is installed.
func Active() bool { return active.Load() != nil }

func (inj *Injector) enabled(point string) bool {
	if inj.points == nil || inj.points[point] {
		return true
	}
	// Indexed points ("engine.shard.scan[3]") also match a selector
	// naming their base ("engine.shard.scan" = every instance).
	if i := strings.IndexByte(point, '['); i > 0 && inj.points[point[:i]] {
		return true
	}
	return false
}

// roll returns true with probability rate, drawing from the point's
// seeded stream.
func (inj *Injector) roll(point string, rate float64) bool {
	if rate <= 0 {
		return false
	}
	inj.mu.Lock()
	ok := inj.stream(point).Float64() < rate
	inj.mu.Unlock()
	return ok
}

// Err returns ErrInjected with the configured probability, else nil.
func Err(point string) error {
	inj := active.Load()
	if inj == nil || !inj.enabled(point) {
		return nil
	}
	if !inj.roll(point, inj.cfg.ErrorRate) {
		return nil
	}
	inj.errFired.Add(1)
	obsFaults.Inc()
	obsFaultErrs.Inc()
	return ErrInjected
}

// Latency sleeps for the configured duration with the configured
// probability.
func Latency(point string) {
	inj := active.Load()
	if inj == nil || !inj.enabled(point) {
		return
	}
	if !inj.roll(point, inj.cfg.LatencyRate) {
		return
	}
	inj.latencyHits.Add(1)
	obsFaults.Inc()
	obsFaultLatency.Inc()
	time.Sleep(inj.cfg.Latency)
}

// Panic panics with an identifiable value while the injector has panic
// budget left.
func Panic(point string) {
	inj := active.Load()
	if inj == nil || !inj.enabled(point) {
		return
	}
	inj.mu.Lock()
	fire := inj.panicsLeft > 0
	if fire {
		inj.panicsLeft--
	}
	inj.mu.Unlock()
	if !fire {
		return
	}
	inj.panicFired.Add(1)
	obsFaults.Inc()
	obsFaultPanics.Inc()
	panic("faultinject: injected panic at " + point)
}

// ShortWrite reports whether a write of n bytes should be truncated and,
// if so, to how many bytes (strictly fewer than n). Callers simulate a
// torn write by writing only the returned prefix and failing the
// operation.
func ShortWrite(point string, n int) (int, bool) {
	inj := active.Load()
	if inj == nil || !inj.enabled(point) || n <= 0 {
		return n, false
	}
	if !inj.roll(point, inj.cfg.PartialRate) {
		return n, false
	}
	inj.mu.Lock()
	k := inj.stream(point).Intn(n)
	inj.mu.Unlock()
	inj.shortHits.Add(1)
	obsFaults.Inc()
	obsFaultShort.Inc()
	return k, true
}
