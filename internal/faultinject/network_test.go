package faultinject

import (
	"math/rand"
	"testing"
)

// TestShardRPCNetworkPointsDerivedStreams pins the network fault
// points' seed-stream contract: every (point, shard index) pair of the
// shardrpc transport draws from its own Derive-pinned stream, so one
// shard's connection refusals never perturb another shard's torn
// frames, and a chaos run replays exactly from AIDE_FAULT_SEED alone.
func TestShardRPCNetworkPointsDerivedStreams(t *testing.T) {
	const seed, rate = 11, 0.5
	base := []string{FaultShardRPCDial, FaultShardRPCRead, FaultShardRPCWrite}

	// Each (point, shard) pair derives a distinct, stable stream seed.
	seen := map[int64]string{}
	for _, b := range base {
		for shard := 0; shard < 4; shard++ {
			p := PointAt(b, shard)
			d := Derive(seed, p)
			if d2 := Derive(seed, p); d2 != d {
				t.Fatalf("Derive(%d, %q) unstable: %d vs %d", seed, p, d, d2)
			}
			if prev, dup := seen[d]; dup {
				t.Fatalf("Derive collision: %q and %q both -> %d", prev, p, d)
			}
			seen[d] = p
		}
	}

	// Interleaved decisions across dial/read/write for two shards match
	// each point's own Derive-seeded Float64 stream exactly.
	inj := New(Config{Seed: seed, ErrorRate: rate})
	Activate(inj)
	defer Deactivate()
	var pts []string
	for _, b := range base {
		pts = append(pts, PointAt(b, 0), PointAt(b, 1))
	}
	got := map[string][]bool{}
	for i := 0; i < 32; i++ {
		for _, p := range pts {
			got[p] = append(got[p], Err(p) != nil)
		}
	}
	for _, p := range pts {
		ref := rand.New(rand.NewSource(Derive(seed, p)))
		for i, fired := range got[p] {
			if want := ref.Float64() < rate; fired != want {
				t.Fatalf("point %q decision %d = %v, want %v", p, i, fired, want)
			}
		}
	}
}

// TestShardRPCNetworkPointSelectors pins that a base-name selector
// (what the chaos tests pass in Config.Points) enables every per-shard
// instance of a network point without enabling the other transports'
// points.
func TestShardRPCNetworkPointSelectors(t *testing.T) {
	inj := New(Config{Seed: 1, ErrorRate: 1, Points: []string{FaultShardRPCDial}})
	Activate(inj)
	defer Deactivate()
	for shard := 0; shard < 3; shard++ {
		if err := Err(PointAt(FaultShardRPCDial, shard)); err == nil {
			t.Fatalf("base selector did not enable %q", PointAt(FaultShardRPCDial, shard))
		}
	}
	if err := Err(PointAt(FaultShardRPCRead, 0)); err != nil {
		t.Fatalf("unselected read point fired: %v", err)
	}
	if err := Err(PointAt(FaultShardRPCWrite, 0)); err != nil {
		t.Fatalf("unselected write point fired: %v", err)
	}
}
