package obs

import (
	"encoding/json"
	"testing"
)

func TestSpanTree(t *testing.T) {
	r := NewRecorder(8)
	root := r.Start("iteration")
	root.SetAttr("iteration", 3)
	c1 := root.Child("discovery")
	q := c1.Child("engine.sample")
	q.SetAttr("rows", 5)
	q.End()
	c1.End()
	c2 := root.Child("train")
	c2.End()
	root.End()

	snap := r.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot has %d spans, want 1", len(snap))
	}
	got := snap[0]
	if got.Name != "iteration" || got.Attrs["iteration"] != 3 {
		t.Errorf("root = %+v", got)
	}
	if len(got.Children) != 2 || got.Children[0].Name != "discovery" || got.Children[1].Name != "train" {
		t.Fatalf("children = %+v", got.Children)
	}
	leaf := got.Children[0].Children
	if len(leaf) != 1 || leaf[0].Name != "engine.sample" || leaf[0].Attrs["rows"] != 5 {
		t.Errorf("query span = %+v", leaf)
	}
	if got.DurationMS < 0 {
		t.Errorf("duration = %v", got.DurationMS)
	}
	if _, err := json.Marshal(snap); err != nil {
		t.Errorf("snapshot not serializable: %v", err)
	}
}

func TestRecorderRingBound(t *testing.T) {
	r := NewRecorder(3)
	for i := 0; i < 10; i++ {
		s := r.Start("iter")
		s.SetAttr("i", i)
		s.End()
	}
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("ring holds %d, want 3", len(snap))
	}
	// Oldest-first of the last three: 7, 8, 9.
	for i, want := range []int{7, 8, 9} {
		if snap[i].Attrs["i"] != want {
			t.Errorf("snap[%d].i = %v, want %d", i, snap[i].Attrs["i"], want)
		}
	}
	if r.Total() != 10 {
		t.Errorf("total = %d, want 10", r.Total())
	}
}

func TestNilSafety(t *testing.T) {
	var r *Recorder
	s := r.Start("x") // nil recorder -> nil span
	if s != nil {
		t.Fatal("nil recorder should yield nil span")
	}
	// All operations on a nil span are no-ops.
	c := s.Child("y")
	c.SetAttr("k", 1)
	c.End()
	s.End()
	if got := r.Snapshot(); got != nil {
		t.Errorf("nil recorder snapshot = %v", got)
	}
	if r.Total() != 0 {
		t.Errorf("nil recorder total = %d", r.Total())
	}
}

func TestUnendedChildInheritsRootEnd(t *testing.T) {
	r := NewRecorder(1)
	root := r.Start("iter")
	root.Child("left-open") // never ended
	root.End()
	snap := r.Snapshot()
	if len(snap) != 1 || len(snap[0].Children) != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap[0].Children[0].DurationMS < 0 {
		t.Errorf("child duration negative: %v", snap[0].Children[0].DurationMS)
	}
}
