package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// This file renders the registry in the Prometheus text exposition
// format (version 0.0.4), so standard scrapers consume the same metrics
// /v1/metrics serves as JSON. Internal metric names use dots
// (engine.cache.hits); exposition sanitizes them to the Prometheus
// charset (engine_cache_hits). Histograms expose the full cumulative
// bucket layout, not just the JSON summary quantiles.

// promName sanitizes an internal metric name to the Prometheus name
// charset [a-zA-Z_:][a-zA-Z0-9_:]*.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteRune(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promLabelName sanitizes a label key: like promName but ':' is not
// allowed in label names.
func promLabelName(name string) string {
	return strings.ReplaceAll(promName(name), ":", "_")
}

// promEscape escapes a label value per the exposition format.
func promEscape(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// promFloat formats a sample value.
func promFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promFamily is one metric family ready to render: a TYPE line followed
// by its sample lines, each line complete with labels.
type promFamily struct {
	name  string
	kind  string // counter, gauge, histogram
	lines []string
}

// labelPair renders `{key="value"}` or "" when key is empty.
func labelPair(key, value string) string {
	if key == "" {
		return ""
	}
	return fmt.Sprintf("{%s=%q}", promLabelName(key), promEscape(value))
}

// histLines renders one histogram series (with an optional extra label)
// as cumulative _bucket/_sum/_count lines.
func histLines(name string, h *Histogram, labelKey, labelValue string) []string {
	bounds, counts := h.Buckets()
	lines := make([]string, 0, len(bounds)+3)
	extra := ""
	if labelKey != "" {
		extra = fmt.Sprintf("%s=%q,", promLabelName(labelKey), promEscape(labelValue))
	}
	cum := int64(0)
	for i, bound := range bounds {
		cum += counts[i]
		lines = append(lines, fmt.Sprintf("%s_bucket{%sle=%q} %d", name, extra, promFloat(bound), cum))
	}
	cum += counts[len(bounds)]
	lines = append(lines, fmt.Sprintf("%s_bucket{%sle=\"+Inf\"} %d", name, extra, cum))
	suffix := ""
	if labelKey != "" {
		suffix = labelPair(labelKey, labelValue)
	}
	lines = append(lines,
		fmt.Sprintf("%s_sum%s %s", name, suffix, promFloat(h.Sum())),
		fmt.Sprintf("%s_count%s %d", name, suffix, cum))
	return lines
}

// WritePrometheus writes every metric in the Prometheus text exposition
// format: families sorted by name, one # TYPE line per family, labeled
// vectors as one family with per-value sample lines, histograms with
// cumulative le buckets. Registered collectors run first.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.collect()
	r.mu.RLock()
	fams := make([]promFamily, 0,
		len(r.counters)+len(r.gauges)+len(r.hists)+
			len(r.counterVecs)+len(r.gaugeVecs)+len(r.histVecs))
	for name, c := range r.counters {
		n := promName(name)
		fams = append(fams, promFamily{n, "counter",
			[]string{fmt.Sprintf("%s %d", n, c.Value())}})
	}
	for name, g := range r.gauges {
		n := promName(name)
		fams = append(fams, promFamily{n, "gauge",
			[]string{fmt.Sprintf("%s %s", n, promFloat(g.Value()))}})
	}
	for name, h := range r.hists {
		n := promName(name)
		fams = append(fams, promFamily{n, "histogram", histLines(n, h, "", "")})
	}
	for name, cv := range r.counterVecs {
		n := promName(name)
		f := promFamily{name: n, kind: "counter"}
		for _, s := range cv.v.snapshot() {
			f.lines = append(f.lines,
				fmt.Sprintf("%s%s %d", n, labelPair(cv.v.label, s.value), s.metric.Value()))
		}
		fams = append(fams, f)
	}
	for name, gv := range r.gaugeVecs {
		n := promName(name)
		f := promFamily{name: n, kind: "gauge"}
		for _, s := range gv.v.snapshot() {
			f.lines = append(f.lines,
				fmt.Sprintf("%s%s %s", n, labelPair(gv.v.label, s.value), promFloat(s.metric.Value())))
		}
		fams = append(fams, f)
	}
	for name, hv := range r.histVecs {
		n := promName(name)
		f := promFamily{name: n, kind: "histogram"}
		for _, s := range hv.v.snapshot() {
			f.lines = append(f.lines, histLines(n, s.metric, hv.v.label, s.value)...)
		}
		fams = append(fams, f)
	}
	r.mu.RUnlock()

	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	bw := bufio.NewWriter(w)
	for _, f := range fams {
		if len(f.lines) == 0 {
			continue
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		for _, line := range f.lines {
			bw.WriteString(line)
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// PromHandler returns an http.Handler serving WritePrometheus — the
// /metrics scrape endpoint.
func (r *Registry) PromHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// ValidateExposition checks a Prometheus text exposition payload: every
// line is a comment or a well-formed sample, no series (name + label
// set) appears twice, and no family declares # TYPE twice. It exists
// for the CI scrape smoke test and returns the first violation found.
func ValidateExposition(data []byte) error {
	seenSeries := make(map[string]int)
	seenType := make(map[string]int)
	sc := bufio.NewScanner(strings.NewReader(string(data)))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && fields[1] == "TYPE" {
				if len(fields) != 4 {
					return fmt.Errorf("line %d: malformed TYPE comment %q", lineNo, line)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown metric type %q", lineNo, fields[3])
				}
				if prev, dup := seenType[fields[2]]; dup {
					return fmt.Errorf("line %d: duplicate TYPE for %s (first at line %d)", lineNo, fields[2], prev)
				}
				seenType[fields[2]] = lineNo
			}
			continue
		}
		series, value, err := parseSampleLine(line)
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			return fmt.Errorf("line %d: bad sample value %q", lineNo, value)
		}
		if prev, dup := seenSeries[series]; dup {
			return fmt.Errorf("line %d: duplicate series %s (first at line %d)", lineNo, series, prev)
		}
		seenSeries[series] = lineNo
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(seenSeries) == 0 {
		return fmt.Errorf("no samples in exposition")
	}
	return nil
}

// parseSampleLine splits one sample line into its series identity
// (name plus label set) and value, validating the name charset and
// label syntax.
func parseSampleLine(line string) (series, value string, err error) {
	name := line
	labels := ""
	rest := ""
	if i := strings.IndexByte(line, '{'); i >= 0 {
		j := strings.IndexByte(line, '}')
		if j < i {
			return "", "", fmt.Errorf("malformed labels in %q", line)
		}
		name = line[:i]
		labels = line[i : j+1]
		rest = line[j+1:]
	} else if sp := strings.IndexAny(line, " \t"); sp >= 0 {
		name = line[:sp]
		rest = line[sp:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", "", fmt.Errorf("want 'name value [timestamp]', got %q", line)
	}
	if !validPromName(name) {
		return "", "", fmt.Errorf("invalid metric name %q", name)
	}
	return name + labels, fields[0], nil
}

// validPromName reports whether name matches [a-zA-Z_:][a-zA-Z0-9_:]*.
func validPromName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
