package obs

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestFlightRecorderRing(t *testing.T) {
	f := NewFlightRecorder("s1", 4, nil)
	for i := 0; i < 10; i++ {
		f.Record(FlightEvent{Iteration: i})
	}
	if f.Total() != 10 {
		t.Errorf("total = %d, want 10", f.Total())
	}
	snap := f.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("retained = %d, want 4", len(snap))
	}
	for i, ev := range snap {
		if want := 6 + i; ev.Iteration != want {
			t.Errorf("snap[%d].Iteration = %d, want %d (oldest first)", i, ev.Iteration, want)
		}
		if ev.Session != "s1" || ev.Schema != FlightEventSchema {
			t.Errorf("snap[%d] not stamped: %+v", i, ev)
		}
	}
}

func TestFlightRecorderNil(t *testing.T) {
	var f *FlightRecorder
	f.Record(FlightEvent{}) // must not panic
	if f.Total() != 0 || f.Snapshot() != nil || f.SinkErr() != nil {
		t.Error("nil recorder not inert")
	}
}

func TestFlightJournalRoundtrip(t *testing.T) {
	var sink strings.Builder
	f := NewFlightRecorder("s2", 8, &sink)
	for i := 0; i < 3; i++ {
		f.Record(FlightEvent{
			Iteration:  i,
			Time:       time.Date(2026, 8, 8, 0, 0, i, 0, time.UTC),
			DurationMS: float64(i) * 1.5,
			PhaseMS:    map[string]float64{"discovery": float64(i)},
			Predicate:  fmt.Sprintf("x > %d", i),
		})
	}
	if err := f.SinkErr(); err != nil {
		t.Fatal(err)
	}
	events, err := ReadJournal(strings.NewReader(sink.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("events = %d, want 3", len(events))
	}
	for i, ev := range events {
		if ev.Iteration != i || ev.Session != "s2" || ev.PhaseMS["discovery"] != float64(i) {
			t.Errorf("event %d mismatch: %+v", i, ev)
		}
	}
}

func TestReadJournalSkipsAndFails(t *testing.T) {
	// Blank lines and newer-schema events are skipped.
	in := fmt.Sprintf("{\"schema\":1,\"iteration\":0}\n\n{\"schema\":%d,\"iteration\":1}\n{\"schema\":1,\"iteration\":2}\n",
		FlightEventSchema+1)
	events, err := ReadJournal(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[0].Iteration != 0 || events[1].Iteration != 2 {
		t.Errorf("events = %+v, want iterations 0 and 2", events)
	}
	// A malformed line fails the read.
	if _, err := ReadJournal(strings.NewReader("{\"schema\":1}\nnot json\n")); err == nil {
		t.Error("malformed journal line accepted")
	}
}

func TestFlightRecorderWriteJSONL(t *testing.T) {
	f := NewFlightRecorder("s3", 2, nil)
	for i := 0; i < 5; i++ {
		f.Record(FlightEvent{Iteration: i})
	}
	var b strings.Builder
	if err := f.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	events, err := ReadJournal(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[0].Iteration != 3 || events[1].Iteration != 4 {
		t.Errorf("round-tripped ring = %+v, want iterations 3,4", events)
	}
}
